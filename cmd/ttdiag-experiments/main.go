// Command ttdiag-experiments regenerates every table and figure of the
// paper's evaluation. Without flags it runs the full suite; use -list to see
// the available experiment IDs and -run to execute a single one.
//
// Usage:
//
//	ttdiag-experiments [-list] [-run id] [-runs n] [-seed s] [-workers n]
//	                   [-cpuprofile f] [-memprofile f]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"ttdiag/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ttdiag-experiments", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list the registered experiments and exit")
		id         = fs.String("run", "", "run a single experiment by ID (default: all)")
		runs       = fs.Int("runs", 100, "Monte-Carlo repetitions per experiment class")
		seed       = fs.Int64("seed", 2007, "master seed for randomised campaigns")
		workers    = fs.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical at any value")
		out        = fs.String("out", "", "also write the rendered artifacts to this file")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %-10s %s\n", e.ID, e.Ref, e.Title)
		}
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush unreachable allocations so the profile reflects live + cumulative state
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	p := experiments.Params{Seed: *seed, Runs: *runs, Workers: *workers, Out: w}
	if *id != "" {
		return experiments.Run(*id, p)
	}
	return experiments.RunAll(p)
}
