// Command ttdiag-experiments regenerates every table and figure of the
// paper's evaluation. Without flags it runs the full suite; use -list to see
// the available experiment IDs and -run to execute a single one.
//
// Usage:
//
//	ttdiag-experiments [-list] [-run id] [-runs n] [-seed s] [-workers n]
//	                   [-batched] [-fleet n] [-shards n] [-splitting n]
//	                   [-levels n] [-metrics f] [-trace f] [-progress]
//	                   [-progress-addr a] [-cpuprofile f] [-memprofile f]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"ttdiag/internal/experiments"
	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ttdiag-experiments", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list the registered experiments and exit")
		id         = fs.String("run", "", "run a single experiment by ID (default: all)")
		runs       = fs.Int("runs", 100, "Monte-Carlo repetitions per experiment class")
		seed       = fs.Int64("seed", 2007, "master seed for randomised campaigns")
		workers    = fs.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical at any value")
		batched    = fs.Bool("batched", false, "lane-packed batched execution for the campaigns that support it (identical output, ~5.8x faster; ignored with -trace)")
		fleetN     = fs.Int("fleet", 0, "pin fleet-resilience to this fleet-wide node count (0 = default sweep)")
		shards     = fs.Int("shards", 0, "pin fleet-resilience to this shard count (0 = default sweep)")
		splitN     = fs.Int("splitting", 0, "rare-event splitting trials per level (0 = default 14000)")
		levels     = fs.Int("levels", 0, "rare-event splitting level count; penalty threshold is levels-1 (0 = default 8)")
		out        = fs.String("out", "", "also write the rendered artifacts to this file")
		metricsOut = fs.String("metrics", "", "write a versioned machine-readable metrics report (JSON) to this file")
		traceOut   = fs.String("trace", "", "stream simulation trace events (JSONL) to this file; forces -workers=1 so the event order is deterministic")
		progress   = fs.Bool("progress", false, "print wall-clock campaign progress (runs/s) to stderr")
		progrAddr  = fs.String("progress-addr", "", "serve progress counters over HTTP expvar (/debug/vars) at this address")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %-10s %s\n", e.ID, e.Ref, e.Title)
		}
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // flush unreachable allocations so the profile reflects live + cumulative state
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	p := experiments.Params{
		Seed: *seed, Runs: *runs, Workers: *workers, Out: w, Batched: *batched,
		FleetNodes: *fleetN, FleetShards: *shards,
		SplitEffort: *splitN, SplitLevels: *levels,
	}

	var rep *metrics.Report
	if *metricsOut != "" {
		rep = metrics.NewReport("ttdiag-experiments", *seed, *runs)
		p.Metrics = rep
	}
	var jw *trace.JSONLWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jw = trace.NewJSONLWriter(f)
		p.Trace = jw
		// A concurrent campaign would interleave trace events in scheduling
		// order; serial execution keeps the stream reproducible.
		p.Workers = 1
	}
	if *progress || *progrAddr != "" {
		var pw io.Writer
		if *progress {
			pw = os.Stderr
		}
		prog := metrics.NewProgress(pw, "experiments", 0)
		p.Progress = prog.RunDone
		if *progrAddr != "" {
			prog.PublishExpvar("ttdiag.progress")
			addr, err := metrics.StartDebugServer(*progrAddr)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "ttdiag-experiments: progress at http://%s/debug/vars, profiles at http://%s/debug/pprof/\n", addr, addr)
		}
		defer prog.Finish()
	}

	runExp := func() error {
		if *id != "" {
			return experiments.Run(*id, p)
		}
		return experiments.RunAll(p)
	}
	if err := runExp(); err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if dc, ok := p.Trace.(trace.DropCounter); ok {
		if n := dc.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "ttdiag-experiments: warning: trace sink evicted %d events; the JSONL stream is incomplete\n", n)
			rep.SetTraceDropped(n)
		}
	}
	if rep != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}
