package main

import (
	"os"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig2", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	if err := run([]string{"-run", "sec8-bursts", "-runs", "2", "-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestOutFlag(t *testing.T) {
	path := t.TempDir() + "/report.txt"
	if err := run([]string{"-run", "fig2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("report file empty")
	}
}
