package main

import (
	"encoding/json"
	"os"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig2", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	if err := run([]string{"-run", "sec8-bursts", "-runs", "2", "-workers", "2",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestOutFlag(t *testing.T) {
	path := t.TempDir() + "/report.txt"
	if err := run([]string{"-run", "fig2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("report file empty")
	}
}

func TestMetricsFlag(t *testing.T) {
	path := t.TempDir() + "/metrics.json"
	if err := run([]string{"-run", "sec8-pr", "-runs", "2", "-metrics", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep metrics.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != metrics.ReportVersion || rep.Tool != "ttdiag-experiments" {
		t.Fatalf("bad report header: %+v", rep)
	}
	snap, ok := rep.Experiments["sec8-pr"]
	if !ok {
		t.Fatalf("report misses sec8-pr: %v", rep.Experiments)
	}
	if snap.Counters["protocol/steps"] == 0 || len(snap.Series) == 0 {
		t.Fatalf("report under-filled: %+v", snap)
	}
}

func TestTraceFlag(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := run([]string{"-run", "sec8-pr", "-runs", "2", "-workers", "4", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	notes := 0
	for _, e := range events {
		if e.Kind == trace.KindNote {
			notes++
		}
	}
	if notes != 2 {
		t.Fatalf("got %d run-boundary notes, want 2 (trace must force serial execution)", notes)
	}
}

func TestProgressFlags(t *testing.T) {
	// -progress-addr "127.0.0.1:0" binds an ephemeral port; the run must
	// still terminate and the progress counter must have fired.
	if err := run([]string{"-run", "fig2", "-runs", "1", "-progress", "-progress-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
