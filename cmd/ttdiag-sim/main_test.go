package main

import (
	"encoding/json"
	"os"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

func TestVariants(t *testing.T) {
	cases := [][]string{
		{"-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-variant", "membership", "-blind", "1:2:8", "-rounds", "18", "-quiet"},
		{"-variant", "lowlat", "-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-variant", "ttpc", "-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-malicious", "2", "-rounds", "10", "-quiet"},
		{"-crash", "3:5", "-rounds", "12", "-p", "4", "-quiet"},
		{"-scenario", "lightning", "-rounds", "100", "-p", "17", "-quiet"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-variant", "nope"},
		{"-burst", "garbage"},
		{"-burst", "1:2"},
		{"-blind", "x:y:z"},
		{"-crash", "zzz"},
		{"-scenario", "hurricane"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v): expected error", args)
		}
	}
}

func TestGanttFlag(t *testing.T) {
	if err := run([]string{"-burst", "6:3:1", "-crash", "2:10", "-p", "4", "-rounds", "20", "-quiet", "-gantt"}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordFlag(t *testing.T) {
	path := t.TempDir() + "/flight.jsonl"
	if err := run([]string{"-burst", "6:3:1", "-rounds", "10", "-quiet", "-record", path}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("transcript empty")
	}
}

func TestMetricsFlag(t *testing.T) {
	for _, variant := range []string{"diag", "membership"} {
		path := t.TempDir() + "/metrics.json"
		args := []string{"-variant", variant, "-rounds", "16", "-quiet", "-metrics", path}
		if variant == "diag" {
			args = append(args, "-burst", "6:3:1")
		} else {
			args = append(args, "-blind", "1:2:8")
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep metrics.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		snap, ok := rep.Experiments[variant]
		if !ok {
			t.Fatalf("%s: report misses its snapshot: %v", variant, rep.Experiments)
		}
		if snap.Counters["protocol/steps"] == 0 || len(snap.Series) == 0 {
			t.Fatalf("%s: report under-filled: %+v", variant, snap)
		}
	}
	if err := run([]string{"-variant", "ttpc", "-rounds", "4", "-metrics", t.TempDir() + "/m.json"}); err == nil {
		t.Fatal("-metrics on ttpc accepted")
	}
}

func TestTraceJSONLFlag(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := run([]string{"-burst", "6:3:1", "-rounds", "10", "-quiet", "-gantt", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace stream empty")
	}
}
