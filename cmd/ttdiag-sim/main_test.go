package main

import (
	"os"
	"testing"
)

func TestVariants(t *testing.T) {
	cases := [][]string{
		{"-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-variant", "membership", "-blind", "1:2:8", "-rounds", "18", "-quiet"},
		{"-variant", "lowlat", "-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-variant", "ttpc", "-burst", "6:3:1", "-rounds", "12", "-quiet"},
		{"-malicious", "2", "-rounds", "10", "-quiet"},
		{"-crash", "3:5", "-rounds", "12", "-p", "4", "-quiet"},
		{"-scenario", "lightning", "-rounds", "100", "-p", "17", "-quiet"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-variant", "nope"},
		{"-burst", "garbage"},
		{"-burst", "1:2"},
		{"-blind", "x:y:z"},
		{"-crash", "zzz"},
		{"-scenario", "hurricane"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v): expected error", args)
		}
	}
}

func TestGanttFlag(t *testing.T) {
	if err := run([]string{"-burst", "6:3:1", "-crash", "2:10", "-p", "4", "-rounds", "20", "-quiet", "-gantt"}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordFlag(t *testing.T) {
	path := t.TempDir() + "/flight.jsonl"
	if err := run([]string{"-burst", "6:3:1", "-rounds", "10", "-quiet", "-record", path}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("transcript empty")
	}
}
