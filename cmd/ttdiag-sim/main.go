// Command ttdiag-sim runs an interactive-style scenario on the simulation
// stack and prints a round-by-round trace: transmissions with their
// ground-truth outcome class, diagnostic-job executions, agreed health
// vectors, isolations and view changes.
//
// Usage:
//
//	ttdiag-sim [-variant diag|membership|lowlat|ttpc] [-n nodes] [-rounds k]
//	           [-burst round:slot:slots] [-blind rcv:sender:round]
//	           [-malicious node] [-crash node:round] [-scenario blinking|lightning]
//	           [-p P] [-r R] [-seed s] [-quiet] [-metrics f] [-trace f]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/membership"
	"ttdiag/internal/metrics"
	"ttdiag/internal/replay"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-sim:", err)
		os.Exit(1)
	}
}

type options struct {
	variant  string
	n        int
	rounds   int
	burst    string
	blind    string
	mal      int
	crash    string
	scenario string
	p        int64
	r        int64
	seed     int64
	quiet    bool
	gantt    bool
	record   string
	metrics  string
	traceOut string
}

func run(args []string) error {
	fs := flag.NewFlagSet("ttdiag-sim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.variant, "variant", "diag", "protocol variant: diag, membership, lowlat or ttpc")
	fs.IntVar(&o.n, "n", 4, "number of nodes")
	fs.IntVar(&o.rounds, "rounds", 20, "rounds to simulate")
	fs.StringVar(&o.burst, "burst", "", "inject a benign burst: round:slot:slots")
	fs.StringVar(&o.blind, "blind", "", "asymmetric receive fault: receiver:sender:round")
	fs.IntVar(&o.mal, "malicious", 0, "node broadcasting random syndromes (0 = none)")
	fs.StringVar(&o.crash, "crash", "", "crash a node: node:round")
	fs.StringVar(&o.scenario, "scenario", "", "abnormal transient scenario: blinking or lightning")
	fs.Int64Var(&o.p, "p", 197, "penalty threshold P")
	fs.Int64Var(&o.r, "r", 1_000_000, "reward threshold R")
	fs.Int64Var(&o.seed, "seed", 2007, "random seed")
	fs.BoolVar(&o.quiet, "quiet", false, "only print the final summary")
	fs.BoolVar(&o.gantt, "gantt", false, "print an ASCII round timeline at the end")
	fs.StringVar(&o.record, "record", "", "write a flight-recorder bus transcript (JSONL) to this file")
	fs.StringVar(&o.metrics, "metrics", "", "write a versioned metrics report (JSON) to this file (diag and membership variants)")
	fs.StringVar(&o.traceOut, "trace", "", "stream simulation trace events (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return simulate(o)
}

func parseTriple(s string) (a, b, c int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("want x:y:z, got %q", s)
	}
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &a, &b, &c); err != nil {
		return 0, 0, 0, fmt.Errorf("parse %q: %v", s, err)
	}
	return a, b, c, nil
}

func parsePair(s string) (a, b int, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &a, &b); err != nil {
		return 0, 0, fmt.Errorf("parse %q: %v", s, err)
	}
	return a, b, nil
}

func disturbances(o options, sched *tdma.Schedule) ([]tdma.Disturbance, error) {
	var ds []tdma.Disturbance
	if o.burst != "" {
		round, slot, slots, err := parseTriple(o.burst)
		if err != nil {
			return nil, err
		}
		ds = append(ds, fault.NewTrain(fault.SlotBurst(sched, round, slot, slots)))
	}
	if o.blind != "" {
		rcv, sender, round, err := parseTriple(o.blind)
		if err != nil {
			return nil, err
		}
		ds = append(ds, fault.ReceiverBlind{
			Receiver: tdma.NodeID(rcv), Senders: []tdma.NodeID{tdma.NodeID(sender)},
			FromRound: round, ToRound: round + 1,
		})
	}
	if o.mal > 0 {
		ds = append(ds, fault.NewMaliciousSyndrome(tdma.NodeID(o.mal),
			rng.NewSource(o.seed).Stream("malicious")))
	}
	if o.crash != "" {
		node, round, err := parsePair(o.crash)
		if err != nil {
			return nil, err
		}
		ds = append(ds, fault.Crash(tdma.NodeID(node), round))
	}
	switch o.scenario {
	case "":
	case "blinking":
		ds = append(ds, fault.BlinkingLight().Train(0))
	case "lightning":
		ds = append(ds, fault.LightningBolt().Train(0))
	default:
		return nil, fmt.Errorf("unknown scenario %q", o.scenario)
	}
	return ds, nil
}

func simulate(o options) error {
	cfg := sim.ClusterConfig{
		N:  o.n,
		PR: core.PRConfig{PenaltyThreshold: o.p, RewardThreshold: o.r},
	}
	if o.metrics != "" && o.variant != "diag" && o.variant != "membership" {
		return fmt.Errorf("-metrics supports the diag and membership variants, not %q", o.variant)
	}
	var jw *trace.JSONLWriter
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jw = trace.NewJSONLWriter(f)
		cfg.Sink = jw
	}
	runVariant := func() error {
		switch o.variant {
		case "diag":
			return simulateDiag(o, cfg)
		case "membership":
			return simulateMembership(o, cfg)
		case "lowlat":
			return simulateLowLat(o, cfg)
		case "ttpc":
			return simulateTTPC(o, cfg)
		default:
			return fmt.Errorf("unknown variant %q", o.variant)
		}
	}
	if err := runVariant(); err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// simTelemetry is the single-run metrics wiring of the -metrics flag: one
// registry shared by the lock-step cluster, standard protocol counters on
// every node, penalty trajectories on the node-1 observer.
type simTelemetry struct {
	reg *metrics.Registry
	sys *sim.RunMetrics
}

func newSimTelemetry(o options) *simTelemetry {
	if o.metrics == "" {
		return nil
	}
	reg := metrics.New()
	return &simTelemetry{reg: reg, sys: sim.NewRunMetrics(reg)}
}

// attach wires every protocol's StepMetrics; protoOf must return node id's
// protocol. A nil receiver is a no-op.
func (t *simTelemetry) attach(n int, protoOf func(id int) *core.Protocol) {
	if t == nil {
		return
	}
	sm := core.NewStepMetrics(t.reg)
	smObs := *sm
	smObs.PenaltySeries = make([]*metrics.Series, n+1)
	for j := 1; j <= n; j++ {
		smObs.PenaltySeries[j] = t.reg.Series(fmt.Sprintf("penalty/node%d", j), 1024)
	}
	protoOf(1).SetMetrics(&smObs)
	for id := 2; id <= n; id++ {
		protoOf(id).SetMetrics(sm)
	}
}

// write folds the run's ground truth and writes the report file; col and
// views may be nil when the variant has no collector or membership layer.
func (t *simTelemetry) write(o options, eng *sim.Engine, col *sim.Collector, views []*sim.MembershipRunner) error {
	if t == nil {
		return nil
	}
	t.sys.ObserveTruth(eng)
	if col != nil {
		t.sys.ObserveIsolationLatency(eng, col)
	}
	t.sys.ObserveViews(views)
	rep := metrics.NewReport("ttdiag-sim", o.seed, 1)
	rep.Set(o.variant, t.reg.Snapshot())
	f, err := os.Create(o.metrics)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.WriteJSON(f)
}

func printHV(o options, observer int, out core.RoundOutput, sched *tdma.Schedule) {
	if o.quiet || out.ConsHV == nil || observer != 1 {
		return
	}
	at := sched.RoundStart(out.Round)
	extra := ""
	if len(out.Isolated) > 0 {
		extra = fmt.Sprintf("  ISOLATED %v", out.Isolated)
	}
	if len(out.Reintegrated) > 0 {
		extra += fmt.Sprintf("  REINTEGRATED %v", out.Reintegrated)
	}
	if out.ConsHV.CountFaulty() > 0 || extra != "" {
		fmt.Printf("%10v round %-4d cons_hv(round %d) = %s%s\n", at, out.Round, out.DiagnosedRound, out.ConsHV, extra)
	}
}

func simulateDiag(o options, cfg sim.ClusterConfig) error {
	var rec trace.Recorder
	if o.gantt {
		if cfg.Sink != nil {
			cfg.Sink = trace.Tee{cfg.Sink, &rec}
		} else {
			cfg.Sink = &rec
		}
	}
	eng, runners, err := sim.NewDiagnosticCluster(cfg)
	if err != nil {
		return err
	}
	tel := newSimTelemetry(o)
	tel.attach(o.n, func(id int) *core.Protocol { return runners[id].Protocol() })
	if o.record != "" {
		f, err := os.Create(o.record)
		if err != nil {
			return err
		}
		defer f.Close()
		w := replay.NewWriter(f)
		var recErr error
		eng.OnReport = func(rep *tdma.TxReport) {
			if err := w.RecordReport(rep); err != nil && recErr == nil {
				recErr = err
			}
		}
		defer func() {
			if recErr != nil {
				fmt.Fprintln(os.Stderr, "ttdiag-sim: transcript:", recErr)
			}
		}()
	}
	ds, err := disturbances(o, eng.Schedule())
	if err != nil {
		return err
	}
	for _, d := range ds {
		eng.Bus().AddDisturbance(d)
	}
	col := sim.NewCollector()
	for id := 1; id <= o.n; id++ {
		id := id
		col.HookDiag(id, runners[id])
		inner := runners[id].OnOutput
		runners[id].OnOutput = func(out core.RoundOutput) {
			if inner != nil {
				inner(out)
			}
			printHV(o, id, out, eng.Schedule())
		}
	}
	if err := eng.RunRounds(o.rounds); err != nil {
		return err
	}
	if err := tel.write(o, eng, col, nil); err != nil {
		return err
	}
	fmt.Printf("\nsimulated %d rounds (%v of bus time), %d isolation decision(s)\n",
		o.rounds, time.Duration(o.rounds)*eng.Schedule().RoundLen(), len(col.Isolations))
	active := runners[1].Last().Active
	var alive []int
	for id := 1; id <= o.n; id++ {
		if active[id] {
			alive = append(alive, id)
		}
	}
	fmt.Printf("active nodes: %v\n", alive)
	if o.gantt {
		events := rec.Events()
		// Node 1's isolations/reintegrations already arrive through its causal
		// flight recorder (ClusterConfig.Sink); synthesize only the other
		// observers' decisions from the collector to avoid duplicate marks.
		for _, iso := range col.Isolations {
			if iso.Observer == 1 {
				continue
			}
			events = append(events, trace.Event{
				Round: iso.Round, Kind: trace.KindIsolation,
				Node: iso.Observer, Subject: iso.Node,
			})
		}
		for _, re := range col.Reintegrations {
			if re.Observer == 1 {
				continue
			}
			events = append(events, trace.Event{
				Round: re.Round, Kind: trace.KindReintegration,
				Node: re.Observer, Subject: re.Node,
			})
		}
		fmt.Println()
		fmt.Print(trace.Gantt{Nodes: o.n}.Render(events))
	}
	return nil
}

func simulateMembership(o options, cfg sim.ClusterConfig) error {
	eng, runners, err := sim.NewMembershipCluster(cfg)
	if err != nil {
		return err
	}
	tel := newSimTelemetry(o)
	tel.attach(o.n, func(id int) *core.Protocol { return runners[id].Service().Protocol() })
	ds, err := disturbances(o, eng.Schedule())
	if err != nil {
		return err
	}
	for _, d := range ds {
		eng.Bus().AddDisturbance(d)
	}
	runners[1].OnOutput = func(out membership.Output) {
		printHV(o, 1, out.Diag, eng.Schedule())
		if out.ViewChanged && !o.quiet {
			fmt.Printf("%10v round %-4d NEW VIEW %d: members %v\n",
				eng.Schedule().RoundStart(out.Diag.Round), out.Diag.Round, out.View.ID, out.View.Members)
		}
	}
	if err := eng.RunRounds(o.rounds); err != nil {
		return err
	}
	if err := tel.write(o, eng, nil, runners); err != nil {
		return err
	}
	v := runners[1].View()
	fmt.Printf("\nfinal view %d: members %v (formed at round %d)\n", v.ID, v.Members, v.FormedAtRound)
	return nil
}

func simulateLowLat(o options, cfg sim.ClusterConfig) error {
	eng, runners, err := sim.NewLowLatCluster(cfg)
	if err != nil {
		return err
	}
	ds, err := disturbances(o, eng.Schedule())
	if err != nil {
		return err
	}
	for _, d := range ds {
		eng.Bus().AddDisturbance(d)
	}
	faultyVerdicts := 0
	runners[1].OnVerdict = func(v lowlat.Verdict) {
		if v.Health == core.Faulty {
			faultyVerdicts++
			if !o.quiet {
				fmt.Printf("verdict: slot (%d, round %d) FAULTY (decided during round %d)\n",
					v.Node, v.Round, eng.Round())
			}
		}
	}
	if err := eng.RunRounds(o.rounds); err != nil {
		return err
	}
	fmt.Printf("\nsimulated %d rounds, %d faulty per-slot verdicts at node 1\n", o.rounds, faultyVerdicts)
	return nil
}

func simulateTTPC(o options, cfg sim.ClusterConfig) error {
	eng, nodes, err := sim.NewTTPCCluster(cfg)
	if err != nil {
		return err
	}
	ds, err := disturbances(o, eng.Schedule())
	if err != nil {
		return err
	}
	for _, d := range ds {
		eng.Bus().AddDisturbance(d)
	}
	if err := eng.RunRounds(o.rounds); err != nil {
		return err
	}
	for id := 1; id <= o.n; id++ {
		var members []int
		for j := 1; j <= o.n; j++ {
			if nodes[id].Members()[j] {
				members = append(members, j)
			}
		}
		fmt.Printf("node %d: alive=%v members=%v\n", id, nodes[id].Alive(), members)
	}
	return nil
}
