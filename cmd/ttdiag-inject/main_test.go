package main

import "testing"

func TestSingleCampaign(t *testing.T) {
	if err := run([]string{"-campaign", "pr", "-runs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestAllCampaignsSmall(t *testing.T) {
	if err := run([]string{"-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCampaign(t *testing.T) {
	if err := run([]string{"-campaign", "nope"}); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
