// Command ttdiag-inject runs the Sec. 8 fault-injection validation
// campaigns: the twelve burst classes, the penalty/reward class, the four
// malicious-node classes and the clique-detection class — 100 repetitions
// each by default, audited against the protocol's proved properties
// (Theorem 1 correctness/completeness/consistency, Theorem 2 membership
// liveness and agreement).
//
// Usage:
//
//	ttdiag-inject [-campaign bursts|pr|malicious|clique|all] [-runs n] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ttdiag/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-inject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ttdiag-inject", flag.ContinueOnError)
	var (
		campaign = fs.String("campaign", "all", "campaign to run: bursts, pr, malicious, clique or all")
		runs     = fs.Int("runs", 100, "repetitions per experiment class (the paper uses 100)")
		seed     = fs.Int64("seed", 2007, "master seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := experiments.Params{Seed: *seed, Runs: *runs, Out: os.Stdout}

	campaigns := []struct {
		name string
		fn   func(experiments.Params) ([]experiments.CampaignRow, error)
	}{
		{name: "bursts", fn: experiments.BurstCampaign},
		{name: "pr", fn: experiments.PRCampaign},
		{name: "malicious", fn: experiments.MaliciousCampaign},
		{name: "clique", fn: experiments.CliqueCampaign},
	}

	total, passed := 0, 0
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "campaign\texperiment class\tpassed\tfirst failure")
	ran := 0
	for _, c := range campaigns {
		if *campaign != "all" && *campaign != c.name {
			continue
		}
		ran++
		rows, err := c.fn(p)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%d/%d\t%s\n", c.name, r.Class, r.Passed, r.Runs, r.FirstFailure)
			total += r.Runs
			passed += r.Passed
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown campaign %q", *campaign)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d/%d injection experiments passed their audits\n", passed, total)
	if passed != total {
		return fmt.Errorf("%d experiments failed", total-passed)
	}
	return nil
}
