// Command ttdiag-lint runs the repository's determinism analyzer
// (internal/lint) over the module source and prints every finding in a
// stable, file:line:col-sorted format, so CI output is deterministic and
// greppable.
//
// Usage:
//
//	ttdiag-lint [-root dir] [patterns ...]
//
// Patterns default to ./... and are resolved relative to the module root
// (the nearest parent directory of the working directory that contains a
// go.mod, unless -root overrides it). Exit status: 0 when the tree is
// clean, 1 when findings were reported, 2 on usage or analysis errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ttdiag/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttdiag-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "root directory to analyze (default: nearest parent with go.mod)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ttdiag-lint [-root dir] [patterns ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *root == "" {
		r, err := findModuleRoot(".")
		if err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
		*root = r
	}
	diags, err := lint.Run(*root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ttdiag-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ttdiag-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (use -root)", dir)
		}
		dir = parent
	}
}
