// Command ttdiag-lint runs the repository's static-analysis suite: the
// determinism and ownership rules of internal/lint over the module source,
// and optionally the escape-analysis allocation gate of internal/lint/escape
// over the hot-path packages. Findings print in a stable, file:line:col
// sorted format, so CI output is deterministic and greppable.
//
// Usage:
//
//	ttdiag-lint [-root dir] [-rules r1,r2] [-json] [-escapes] [-update-escapes] [patterns ...]
//
// Patterns default to ./... and are resolved relative to the module root
// (the nearest parent directory of the working directory that contains a
// go.mod, unless -root overrides it). -rules restricts the run to a
// comma-separated subset of the registered rules. -escapes additionally
// diffs the compiler's escape analysis against internal/lint/escape.golden,
// reporting grown sites as escape-gate findings; -update-escapes rewrites
// that allowlist from the current build instead of checking it.
//
// With -json the findings are emitted as one JSON array on stdout, each
// element {"file", "line", "col", "rule", "message"} — escape-gate findings
// carry line and col 0 because the allowlist is position-independent.
//
// Exit status: 0 when the tree is clean, 1 when findings were reported, 2 on
// usage or analysis errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ttdiag/internal/lint"
	"ttdiag/internal/lint/escape"
)

// goldenRel locates the escape allowlist relative to the module root.
const goldenRel = "internal/lint/escape.golden"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json element schema, shared by rule and gate findings.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ttdiag-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "root directory to analyze (default: nearest parent with go.mod)")
	ruleList := fs.String("rules", "", "comma-separated rule subset (default: all; known: "+strings.Join(lint.RuleNames(), ", ")+")")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	escapes := fs.Bool("escapes", false, "also diff escape analysis against "+goldenRel)
	updateEscapes := fs.Bool("update-escapes", false, "rewrite "+goldenRel+" from the current build and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: ttdiag-lint [-root dir] [-rules r1,r2] [-json] [-escapes] [-update-escapes] [patterns ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *root == "" {
		r, err := findModuleRoot(".")
		if err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
		*root = r
	}

	if *updateEscapes {
		rep, err := escape.Analyze(*root, nil)
		if err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
		path := filepath.Join(*root, filepath.FromSlash(goldenRel))
		if err := rep.WriteFile(path); err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
		total := 0
		for _, n := range rep.Counts {
			total += n
		}
		fmt.Fprintf(stderr, "ttdiag-lint: wrote %s: %d sites (%d distinct) under %s\n",
			goldenRel, total, len(rep.Counts), rep.Toolchain)
		return 0
	}

	var ruleNames []string
	if *ruleList != "" {
		for _, name := range strings.Split(*ruleList, ",") {
			if name = strings.TrimSpace(name); name != "" {
				ruleNames = append(ruleNames, name)
			}
		}
	}
	diags, err := lint.RunRules(*root, fs.Args(), ruleNames)
	if err != nil {
		fmt.Fprintln(stderr, "ttdiag-lint:", err)
		return 2
	}
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Col:     d.Position.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}

	if *escapes {
		gate, err := checkEscapes(*root, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
		findings = append(findings, gate...)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "ttdiag-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "ttdiag-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// checkEscapes diffs the current escape analysis against the committed
// allowlist. Grown sites return as findings; shrunk sites and a toolchain
// mismatch only warn — the latter because -m output is not comparable across
// compiler releases (CI pins the toolchain, so there the mismatch never
// happens).
func checkEscapes(root string, stderr io.Writer) ([]jsonFinding, error) {
	golden, err := escape.Load(filepath.Join(root, filepath.FromSlash(goldenRel)))
	if err != nil {
		return nil, fmt.Errorf("%s unreadable (generate it with -update-escapes): %w", goldenRel, err)
	}
	current, err := escape.Analyze(root, nil)
	if err != nil {
		return nil, err
	}
	grown, shrunk, err := escape.Diff(golden, current)
	if err != nil {
		fmt.Fprintf(stderr, "ttdiag-lint: warning: escape gate skipped: %v\n", err)
		return nil, nil
	}
	var findings []jsonFinding
	for _, d := range grown {
		file, msg, _ := strings.Cut(d.Key, ": ")
		findings = append(findings, jsonFinding{
			File: file,
			Rule: "escape-gate",
			Message: fmt.Sprintf("%s (%d site(s), allowlist has %d); keep the value on the stack or regenerate %s with -update-escapes and justify the allocation in review",
				msg, d.Current, d.Golden, goldenRel),
		})
	}
	for _, d := range shrunk {
		fmt.Fprintf(stderr, "ttdiag-lint: note: escape site shrunk: %s (%d -> %d); regenerate %s with -update-escapes to tighten the gate\n",
			d.Key, d.Golden, d.Current, goldenRel)
	}
	return findings, nil
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (use -root)", dir)
		}
		dir = parent
	}
}
