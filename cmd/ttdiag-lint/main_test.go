package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestExitNonZeroOnFindings drives the CLI over each negative fixture and
// requires exit status 1 with the file:line-sorted format on stdout.
func TestExitNonZeroOnFindings(t *testing.T) {
	for _, pkg := range []string{"./internal/core", "./internal/cluster"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-root", fixtureRoot(t), pkg}, &out, &errOut)
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr: %s)", pkg, code, errOut.String())
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) == 0 {
			t.Fatalf("%s: no findings printed", pkg)
		}
		for _, line := range lines {
			// file:line:col: rule: message
			parts := strings.SplitN(line, ":", 5)
			if len(parts) != 5 {
				t.Fatalf("%s: malformed diagnostic %q", pkg, line)
			}
		}
		if !sortedByFileLine(lines) {
			t.Fatalf("%s: diagnostics not sorted:\n%s", pkg, out.String())
		}
	}
}

func sortedByFileLine(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] && !sameFileAscendingLines(lines[i-1], lines[i]) {
			return false
		}
	}
	return true
}

// sameFileAscendingLines tolerates lexicographic inversions caused by line
// numbers of different widths within one file (9 < 10 but "9" > "1").
func sameFileAscendingLines(a, b string) bool {
	fa := strings.SplitN(a, ":", 2)[0]
	fb := strings.SplitN(b, ":", 2)[0]
	return fa == fb
}

// TestExitZeroOnCleanPackage checks the clean fixture and the exempt one.
func TestExitZeroOnCleanPackage(t *testing.T) {
	for _, pkg := range []string{"./internal/tdma", "./internal/rng"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-root", fixtureRoot(t), pkg}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, want 0\nstdout: %s\nstderr: %s", pkg, code, out.String(), errOut.String())
		}
		if out.Len() != 0 {
			t.Fatalf("%s: unexpected output %q", pkg, out.String())
		}
	}
}

// TestExitTwoOnError checks usage and analysis failures.
func TestExitTwoOnError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-root", fixtureRoot(t), "./no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("missing package: exit %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRulesSubset restricts the run to one rule and rejects unknown names.
func TestRulesSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-root", fixtureRoot(t), "-rules", "no-wallclock", "./internal/core"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.Contains(line, ": no-wallclock: ") {
			t.Errorf("non-subset finding leaked through: %q", line)
		}
	}
	if code := run([]string{"-root", fixtureRoot(t), "-rules", "no-such-rule"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule: exit %d, want 2", code)
	}
}

// TestJSONOutput checks the -json schema: an array of objects with file,
// line, col, rule and message, still exit 1 on findings.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-root", fixtureRoot(t), "-json", "./internal/core"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestJSONCleanTree pins the clean-tree shape: an empty JSON array, exit 0.
func TestJSONCleanTree(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-root", fixtureRoot(t), "-json", "./internal/tdma"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean tree emitted %q, want []", got)
	}
}

// TestEscapesRequiresGolden: -escapes against a root without an allowlist is
// a hard error pointing at -update-escapes, not a silent pass.
func TestEscapesRequiresGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-root", fixtureRoot(t), "-escapes", "./internal/tdma"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-update-escapes") {
		t.Errorf("error does not mention the regeneration flag: %s", errOut.String())
	}
}
