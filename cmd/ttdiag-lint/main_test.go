package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestExitNonZeroOnFindings drives the CLI over each negative fixture and
// requires exit status 1 with the file:line-sorted format on stdout.
func TestExitNonZeroOnFindings(t *testing.T) {
	for _, pkg := range []string{"./internal/core", "./internal/cluster"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-root", fixtureRoot(t), pkg}, &out, &errOut)
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr: %s)", pkg, code, errOut.String())
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) == 0 {
			t.Fatalf("%s: no findings printed", pkg)
		}
		for _, line := range lines {
			// file:line:col: rule: message
			parts := strings.SplitN(line, ":", 5)
			if len(parts) != 5 {
				t.Fatalf("%s: malformed diagnostic %q", pkg, line)
			}
		}
		if !sortedByFileLine(lines) {
			t.Fatalf("%s: diagnostics not sorted:\n%s", pkg, out.String())
		}
	}
}

func sortedByFileLine(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] && !sameFileAscendingLines(lines[i-1], lines[i]) {
			return false
		}
	}
	return true
}

// sameFileAscendingLines tolerates lexicographic inversions caused by line
// numbers of different widths within one file (9 < 10 but "9" > "1").
func sameFileAscendingLines(a, b string) bool {
	fa := strings.SplitN(a, ":", 2)[0]
	fb := strings.SplitN(b, ":", 2)[0]
	return fa == fb
}

// TestExitZeroOnCleanPackage checks the clean fixture and the exempt one.
func TestExitZeroOnCleanPackage(t *testing.T) {
	for _, pkg := range []string{"./internal/tdma", "./internal/rng"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-root", fixtureRoot(t), pkg}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, want 0\nstdout: %s\nstderr: %s", pkg, code, out.String(), errOut.String())
		}
		if out.Len() != 0 {
			t.Fatalf("%s: unexpected output %q", pkg, out.String())
		}
	}
}

// TestExitTwoOnError checks usage and analysis failures.
func TestExitTwoOnError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-root", fixtureRoot(t), "./no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("missing package: exit %d, want 2", code)
	}
	if code := run([]string{"-badflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
