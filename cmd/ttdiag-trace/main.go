// Command ttdiag-trace queries JSONL causal traces written by the simulators
// and experiments (-trace), and bisects divergences between two scenario
// variants.
//
// Usage:
//
//	ttdiag-trace filter   -in f.jsonl [-run i] [-node n] [-subject n] [-kind k] [-from r] [-to r]
//	ttdiag-trace timeline -in f.jsonl [-run i] [-node n]
//	ttdiag-trace explain  -in f.jsonl [-run i] -node n [-round r]
//	ttdiag-trace diff     -a x.jsonl -b y.jsonl
//	ttdiag-trace bisect   [-n nodes] [-rounds k] [-p P] [-r R] [-reint T]
//	                      [-every node:k:from:to] [-inject round:slot:slots] [-scalar]
//
// filter prints matching events; timeline prints each node's isolation
// spans; explain prints the causal chain (accusations, penalty trajectory,
// isolation) that ended in a node's isolation; diff reports the first event
// where two traces diverge. bisect re-executes a scenario on two sides — the
// base cluster vs one with an extra injected burst (-inject) and/or a
// forced-scalar representation (-scalar) — and binary-searches the first
// divergent round via run checkpointing, printing both sides' causal events
// at that round.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ttdiag/internal/bisect"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ttdiag-trace filter|timeline|explain|diff|bisect [flags]")
	}
	switch cmd := args[0]; cmd {
	case "filter":
		return runFilter(args[1:], out)
	case "timeline":
		return runTimeline(args[1:], out)
	case "explain":
		return runExplain(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "bisect":
		return runBisect(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q (want filter, timeline, explain, diff or bisect)", cmd)
	}
}

// loadRun reads a JSONL trace and selects one repetition. Multi-run streams
// (the experiments harness separates repetitions with note events) need an
// explicit -run index; runIdx -1 accepts only single-run streams.
func loadRun(path string, runIdx int) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, err
	}
	runs := trace.SplitRuns(events)
	switch {
	case len(runs) == 0:
		return nil, fmt.Errorf("%s: empty trace", path)
	case runIdx < 0 && len(runs) > 1:
		return nil, fmt.Errorf("%s holds %d runs — pick one with -run", path, len(runs))
	case runIdx < 0:
		return runs[0], nil
	case runIdx >= len(runs):
		return nil, fmt.Errorf("%s holds %d runs, -run %d is out of range", path, len(runs), runIdx)
	default:
		return runs[runIdx], nil
	}
}

func runFilter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttdiag-trace filter", flag.ContinueOnError)
	in := fs.String("in", "", "JSONL trace file")
	runIdx := fs.Int("run", -1, "repetition index in a multi-run trace")
	node := fs.Int("node", 0, "only events observed by this node (0 = any)")
	subject := fs.Int("subject", 0, "only events about this node (0 = any)")
	kind := fs.String("kind", "", "only events of this kind (e.g. isolation, penalty)")
	from := fs.Int("from", 0, "first round (inclusive)")
	to := fs.Int("to", -1, "last round (exclusive; -1 = end)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("filter: -in is required")
	}
	var wantKind trace.Kind
	if *kind != "" {
		k, err := trace.ParseKind(*kind)
		if err != nil {
			return err
		}
		wantKind = k
	}
	events, err := loadRun(*in, *runIdx)
	if err != nil {
		return err
	}
	matched := 0
	for _, e := range events {
		if *node != 0 && e.Node != *node {
			continue
		}
		if *subject != 0 && e.Subject != *subject {
			continue
		}
		if wantKind != 0 && e.Kind != wantKind {
			continue
		}
		if e.Round < *from || (*to >= 0 && e.Round >= *to) {
			continue
		}
		matched++
		fmt.Fprintln(out, e)
	}
	fmt.Fprintf(out, "%d of %d events matched\n", matched, len(events))
	return nil
}

func runTimeline(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttdiag-trace timeline", flag.ContinueOnError)
	in := fs.String("in", "", "JSONL trace file")
	runIdx := fs.Int("run", -1, "repetition index in a multi-run trace")
	node := fs.Int("node", 0, "only this node's spans (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("timeline: -in is required")
	}
	events, err := loadRun(*in, *runIdx)
	if err != nil {
		return err
	}
	spans := trace.Timeline(events)
	printed := 0
	for _, iv := range spans {
		if *node != 0 && iv.Node != *node {
			continue
		}
		printed++
		if iv.To < 0 {
			fmt.Fprintf(out, "node %d: isolated r%d.. (still isolated at end of trace)\n", iv.Node, iv.From)
		} else {
			fmt.Fprintf(out, "node %d: isolated r%d..r%d (%d rounds)\n", iv.Node, iv.From, iv.To, iv.To-iv.From)
		}
	}
	if printed == 0 {
		fmt.Fprintln(out, "no isolations in the trace")
	}
	return nil
}

func runExplain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttdiag-trace explain", flag.ContinueOnError)
	in := fs.String("in", "", "JSONL trace file")
	runIdx := fs.Int("run", -1, "repetition index in a multi-run trace")
	node := fs.Int("node", 0, "the isolated node to explain")
	round := fs.Int("round", -1, "round of the isolation (-1 = the node's last isolation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Positional shorthand: explain <node> <round>.
	if rest := fs.Args(); len(rest) > 0 {
		if _, err := fmt.Sscanf(rest[0], "%d", node); err != nil {
			return fmt.Errorf("explain: bad node %q", rest[0])
		}
		if len(rest) > 1 {
			if _, err := fmt.Sscanf(rest[1], "%d", round); err != nil {
				return fmt.Errorf("explain: bad round %q", rest[1])
			}
		}
	}
	if *in == "" || *node == 0 {
		return fmt.Errorf("explain: -in and a node are required (explain -in f.jsonl <node> [round])")
	}
	events, err := loadRun(*in, *runIdx)
	if err != nil {
		return err
	}
	chain, err := trace.Explain(events, *node, *round)
	if err != nil {
		return err
	}
	iso := chain[len(chain)-1]
	fmt.Fprintf(out, "node %d isolated at round %d (penalty %d > threshold %d):\n",
		*node, iso.Round, iso.Penalty, iso.Threshold)
	for _, e := range chain {
		fmt.Fprintln(out, e)
	}
	return nil
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttdiag-trace diff", flag.ContinueOnError)
	fileA := fs.String("a", "", "first JSONL trace")
	fileB := fs.String("b", "", "second JSONL trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fileA == "" || *fileB == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	read := func(path string) ([]trace.Event, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadJSONL(f)
	}
	a, err := read(*fileA)
	if err != nil {
		return err
	}
	b, err := read(*fileB)
	if err != nil {
		return err
	}
	i := trace.FirstDivergence(a, b)
	if i < 0 {
		fmt.Fprintf(out, "traces identical (%d events)\n", len(a))
		return nil
	}
	fmt.Fprintf(out, "traces diverge at event %d:\n", i)
	if i < len(a) {
		fmt.Fprintf(out, "  %s: %s\n", *fileA, a[i])
	} else {
		fmt.Fprintf(out, "  %s: (ends after %d events)\n", *fileA, len(a))
	}
	if i < len(b) {
		fmt.Fprintf(out, "  %s: %s\n", *fileB, b[i])
	} else {
		fmt.Fprintf(out, "  %s: (ends after %d events)\n", *fileB, len(b))
	}
	return nil
}

func runBisect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttdiag-trace bisect", flag.ContinueOnError)
	n := fs.Int("n", 4, "number of nodes")
	rounds := fs.Int("rounds", 64, "search horizon in rounds")
	p := fs.Int64("p", 2, "penalty threshold P")
	r := fs.Int64("r", 3, "reward threshold R")
	reint := fs.Int64("reint", 4, "reintegration threshold")
	every := fs.String("every", "3:1:4:9", "shared fault on both sides: node:k:from:to (empty = none)")
	inject := fs.String("inject", "", "extra burst on side B only: round:slot:slots")
	scalar := fs.Bool("scalar", false, "run side B on the scalar representation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inject == "" && !*scalar {
		return fmt.Errorf("bisect: nothing distinguishes the sides — pass -inject and/or -scalar")
	}
	build := func(name string, forceScalar bool) (bisect.Side, error) {
		rec := &trace.Recorder{}
		cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
			N: *n,
			PR: core.PRConfig{
				PenaltyThreshold: *p, RewardThreshold: *r, ReintegrationThreshold: *reint,
			},
			Sink:        rec,
			ForceScalar: forceScalar,
		})
		if err != nil {
			return bisect.Side{}, err
		}
		cl.Reset()
		if *every != "" {
			var node, k, from, to int
			if _, err := fmt.Sscanf(*every, "%d:%d:%d:%d", &node, &k, &from, &to); err != nil {
				return bisect.Side{}, fmt.Errorf("bisect: -every wants node:k:from:to, got %q", *every)
			}
			cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(tdma.NodeID(node), k, from, to))
		}
		return bisect.Side{Name: name, Cluster: cl, Rec: rec}, nil
	}
	a, err := build("A", false)
	if err != nil {
		return err
	}
	b, err := build("B", *scalar)
	if err != nil {
		return err
	}
	if *inject != "" {
		var round, slot, slots int
		if _, err := fmt.Sscanf(*inject, "%d:%d:%d", &round, &slot, &slots); err != nil {
			return fmt.Errorf("bisect: -inject wants round:slot:slots, got %q", *inject)
		}
		b.Cluster.Eng.Bus().AddDisturbance(fault.NewTrain(
			fault.SlotBurst(b.Cluster.Eng.Schedule(), round, slot, slots)))
	}
	rep, err := bisect.FirstDivergence(a, b, *rounds)
	if err != nil {
		return err
	}
	if !rep.Diverged {
		fmt.Fprintf(out, "no divergence within %d rounds (%d probe)\n", *rounds, rep.Probes)
		return nil
	}
	where := fmt.Sprintf("node %d state", rep.Node)
	if rep.Node == 0 {
		where = "ground truth only"
	}
	fmt.Fprintf(out, "first divergent round: %d (%s; %d probes over %d rounds)\n",
		rep.Round, where, rep.Probes, *rounds)
	dump := func(name string, events []trace.Event) {
		fmt.Fprintf(out, "side %s causal events in round %d:\n", name, rep.Round)
		if len(events) == 0 {
			fmt.Fprintln(out, "  (none)")
			return
		}
		for _, e := range events {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	dump("A", rep.EventsA)
	dump("B", rep.EventsB)
	return nil
}
