package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
	"ttdiag/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace testdata")

const goldenTrace = "testdata/sec8-bursts.trace.jsonl"

// genSec8BurstTrace reruns the sec8-bursts scenario geometry (prototype node
// schedule, single-slot bursts in node 3's sending slot) with isolation-grade
// thresholds, streaming node 1's causal flight recorder plus the engine
// events to JSONL. The whole pipeline is deterministic, so the bytes are
// golden.
func genSec8BurstTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	jw := trace.NewJSONLWriter(&buf)
	cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
		N:    4,
		Ls:   []int{2, 0, 3, 1},
		PR:   core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 3, ReintegrationThreshold: 4},
		Sink: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	var bursts []fault.Burst
	for r := 6; r <= 10; r++ {
		bursts = append(bursts, fault.SlotBurst(cl.Eng.Schedule(), r, 3, 1))
	}
	cl.Eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := cl.Eng.RunRounds(28); err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTrace pins the JSONL trace of the burst scenario byte for byte —
// any change to the causal event schema or emission order shows up here.
// Regenerate with: go test ./cmd/ttdiag-trace -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	got := genSec8BurstTrace(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTrace), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTrace, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace drifted from %s (regenerate with -update if intended)", goldenTrace)
	}
}

// goldenIsolation locates node 3's isolation in the golden trace.
func goldenIsolation(t *testing.T) trace.Event {
	t.Helper()
	events, err := loadRun(goldenTrace, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == trace.KindIsolation && e.Subject == 3 {
			return e
		}
	}
	t.Fatal("golden trace holds no isolation of node 3")
	return trace.Event{}
}

// TestExplainGolden is the acceptance check: `explain 3 <round>` against the
// sec8-bursts golden trace must reproduce the causal chain — the penalty
// ramp crossing the threshold, ending in the isolation with its trajectory —
// and agree with trace.Explain computed directly on the decoded events.
func TestExplainGolden(t *testing.T) {
	iso := goldenIsolation(t)
	var out bytes.Buffer
	err := run([]string{"explain", "-in", goldenTrace,
		fmt.Sprint(iso.Subject), fmt.Sprint(iso.Round)}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	head := fmt.Sprintf("node 3 isolated at round %d (penalty %d > threshold %d):",
		iso.Round, iso.Penalty, iso.Threshold)
	if !strings.HasPrefix(got, head) {
		t.Fatalf("explain output starts\n%s\nwant prefix\n%s", got, head)
	}
	events, err := loadRun(goldenTrace, -1)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := trace.Explain(events, 3, iso.Round)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 3 {
		t.Fatalf("golden chain too short to be a ramp: %v", chain)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")[1:]
	if len(lines) != len(chain) {
		t.Fatalf("explain printed %d chain events, want %d", len(lines), len(chain))
	}
	for i, e := range chain {
		if lines[i] != e.String() {
			t.Fatalf("chain line %d:\n got %q\nwant %q", i, lines[i], e.String())
		}
	}
	last := chain[len(chain)-1]
	if last.Kind != trace.KindIsolation || !strings.Contains(last.Detail, "trajectory") {
		t.Fatalf("chain does not end in the isolation with its trajectory: %+v", last)
	}
	var prev int64
	for _, e := range chain[:len(chain)-1] {
		if e.Kind != trace.KindPenalty && e.Kind != trace.KindAccusation {
			t.Fatalf("chain holds a non-causal event: %+v", e)
		}
		if e.Kind == trace.KindPenalty {
			if e.Penalty <= prev {
				t.Fatalf("penalty ramp not increasing: %v", chain)
			}
			prev = e.Penalty
		}
	}
}

// TestTimelineGolden: node 3's burst-window isolation span must appear, with
// its reintegration closing the interval.
func TestTimelineGolden(t *testing.T) {
	iso := goldenIsolation(t)
	var out bytes.Buffer
	if err := run([]string{"timeline", "-in", goldenTrace}, &out); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("node 3: isolated r%d..r", iso.Round)
	if !strings.Contains(out.String(), want) {
		t.Fatalf("timeline output %q lacks %q", out.String(), want)
	}
}

func TestFilterGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"filter", "-in", goldenTrace, "-kind", "isolation"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "isolation") || !strings.Contains(out.String(), "->n3") {
		t.Fatalf("filter output lacks node 3's isolation: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"filter", "-in", goldenTrace, "-kind", "no-such-kind"}, &out); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDiffCLI(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, events []trace.Event) string {
		var buf bytes.Buffer
		for _, e := range events {
			if err := trace.WriteJSONL(&buf, e); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := []trace.Event{
		{Round: 1, Kind: trace.KindPenalty, Node: 1, Subject: 3, Penalty: 1, Threshold: 2},
		{Round: 2, Kind: trace.KindPenalty, Node: 1, Subject: 3, Penalty: 2, Threshold: 2},
	}
	fork := append([]trace.Event(nil), base...)
	fork[1].Penalty = 9
	a, b := write("a.jsonl", base), write("b.jsonl", fork)

	var out bytes.Buffer
	if err := run([]string{"diff", "-a", a, "-b", a}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traces identical (2 events)") {
		t.Fatalf("identical diff output: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"diff", "-a", a, "-b", b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "diverge at event 1") {
		t.Fatalf("divergent diff output: %q", out.String())
	}
}

// TestBisectCLI pins the acceptance property end to end: an artificially
// injected single-slot burst at round 13 is localized to exactly round 13,
// in exactly 1 + log2(32) probes.
func TestBisectCLI(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"bisect", "-rounds", "32", "-inject", "13:1:1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "first divergent round: 13") {
		t.Fatalf("bisect did not localize round 13:\n%s", got)
	}
	if !strings.Contains(got, "6 probes over 32 rounds") {
		t.Fatalf("bisect probe count drifted from 1+log2(32)=6:\n%s", got)
	}
	if !strings.Contains(got, "side A causal events") || !strings.Contains(got, "side B causal events") {
		t.Fatalf("bisect output lacks the causal dumps:\n%s", got)
	}
}

func TestBisectCLIScalarEquivalence(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bisect", "-rounds", "32", "-scalar"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no divergence within 32 rounds") {
		t.Fatalf("packed vs scalar bisect output: %q", out.String())
	}
}

func TestBisectCLIRejectsIdenticalSides(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"bisect"}, &out); err == nil {
		t.Fatal("bisect with identical sides accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no command accepted")
	}
	if err := run([]string{"nope"}, &out); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"explain", "-in", goldenTrace}, &out); err == nil {
		t.Fatal("explain without a node accepted")
	}
}
