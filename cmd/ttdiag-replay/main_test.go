package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTranscript(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.jsonl")
	lines := `{"round":0,"slot":1,"payload":"Dw==","valid":[false,true,true,true,true]}
{"round":0,"slot":2,"payload":"Dw==","valid":[false,true,true,true,true]}
{"round":0,"slot":3,"payload":"Dw==","valid":[false,true,true,true,true]}
{"round":0,"slot":4,"payload":"Dw==","valid":[false,true,true,true,true]}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayCLI(t *testing.T) {
	path := writeTranscript(t)
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-faulty-only", "-observer", "2", "-ls", "0,1,2,3"}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCLIErrors(t *testing.T) {
	path := writeTranscript(t)
	cases := [][]string{
		{},
		{"-in", "/does/not/exist"},
		{"-in", path, "-observer", "9"},
		{"-in", path, "-ls", "zero,one"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v): expected error", args)
		}
	}
}
