// Command ttdiag-replay is the flight-recorder analyzer: it reads a bus
// transcript recorded with `ttdiag-sim -record file.jsonl` and re-runs the
// diagnostic protocol offline, reconstructing the health vectors and
// isolation decisions the cluster must have taken. Use it for post-mortem
// analysis: why was this node isolated, and when did the votes turn?
//
// Usage:
//
//	ttdiag-replay -in transcript.jsonl [-n nodes] [-observer id]
//	              [-ls l1,l2,...] [-p P] [-r R] [-faulty-only]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ttdiag/internal/core"
	"ttdiag/internal/replay"
	"ttdiag/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttdiag-replay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ttdiag-replay", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "transcript file (JSONL, required)")
		n          = fs.Int("n", 4, "number of nodes in the recorded system")
		observer   = fs.Int("observer", 1, "node whose diagnosis to reconstruct")
		lsFlag     = fs.String("ls", "", "comma-separated job positions l_1,...,l_N (default: staircase)")
		p          = fs.Int64("p", 197, "penalty threshold P of the recorded deployment")
		r          = fs.Int64("r", 1_000_000, "reward threshold R of the recorded deployment")
		faultyOnly = fs.Bool("faulty-only", false, "print only rounds with non-healthy vectors or isolations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := replay.Read(f, *n)
	if err != nil {
		return err
	}

	cfg := sim.ClusterConfig{
		N:  *n,
		PR: core.PRConfig{PenaltyThreshold: *p, RewardThreshold: *r},
	}
	if *lsFlag != "" {
		parts := strings.Split(*lsFlag, ",")
		ls := make([]int, 0, len(parts))
		for _, part := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("parse -ls: %w", err)
			}
			ls = append(ls, v)
		}
		cfg.Ls = ls
	}

	diags, err := replay.Replay(log, cfg, *observer)
	if err != nil {
		return err
	}
	fmt.Printf("transcript: rounds 0..%d, %d-node system; reconstructing observer %d\n\n",
		log.LastRound(), *n, *observer)
	printed := 0
	for _, d := range diags {
		interesting := d.ConsHV.CountFaulty() > 0 || len(d.Isolated) > 0
		if *faultyOnly && !interesting {
			continue
		}
		extra := ""
		if len(d.Isolated) > 0 {
			extra = fmt.Sprintf("   ISOLATED %v", d.Isolated)
		}
		fmt.Printf("round %-5d cons_hv(round %d) = %s%s\n", d.Round, d.DiagnosedRound, d.ConsHV, extra)
		printed++
	}
	if printed == 0 {
		fmt.Println("no matching rounds (the transcript looks clean)")
	}
	return nil
}
