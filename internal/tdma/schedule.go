// Package tdma models the time-triggered substrate the diagnostic protocol
// runs on: a synchronous system where N nodes share a broadcast bus using a
// TDMA access scheme. It provides the global communication schedule (rounds
// and sending slots), communication controllers with interface variables and
// per-variable validity bits, a local collision detector, and a broadcast bus
// whose deliveries can be perturbed by pluggable disturbances (see package
// fault).
//
// The package corresponds to the system model of Sec. 3 of the paper: node
// IDs follow the order of the sending slots, interface variables are updated
// at most once per round in sending order, and validity bits abstract the
// platform's local error-detection mechanisms.
package tdma

import (
	"fmt"
	"time"
)

// NodeID identifies a node. IDs are 1-based and assigned following the order
// of the sending slots in the TDMA round, as in the paper's system model.
type NodeID int

// Schedule is the global communication schedule: a periodic TDMA round of N
// sending slots, slot s being owned by node s. Slots are equally sized by
// default; platforms with heterogeneous frame lengths (e.g. ARINC 659
// tables) can declare per-slot durations with NewCustomSchedule — the
// protocol layer is agnostic, only the slot geometry changes.
type Schedule struct {
	n       int
	slotLen time.Duration // uniform slot length; 0 when offsets is set
	// offsets[s] is the start of slot s+1 within the round; offsets[n] is
	// the round length. Nil for uniform schedules.
	offsets []time.Duration
}

// NewSchedule builds a schedule for n nodes with the given round length and
// equally sized slots. The round length must divide evenly into n slots.
func NewSchedule(n int, roundLen time.Duration) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("tdma: need at least 2 nodes, got %d", n)
	}
	if roundLen <= 0 {
		return nil, fmt.Errorf("tdma: round length must be positive, got %v", roundLen)
	}
	if roundLen%time.Duration(n) != 0 {
		return nil, fmt.Errorf("tdma: round length %v not divisible into %d slots", roundLen, n)
	}
	return &Schedule{n: n, slotLen: roundLen / time.Duration(n)}, nil
}

// NewCustomSchedule builds a schedule with per-slot durations; slotLens[i]
// is the length of slot i+1.
func NewCustomSchedule(slotLens []time.Duration) (*Schedule, error) {
	n := len(slotLens)
	if n < 2 {
		return nil, fmt.Errorf("tdma: need at least 2 slots, got %d", n)
	}
	offsets := make([]time.Duration, n+1)
	for i, l := range slotLens {
		if l <= 0 {
			return nil, fmt.Errorf("tdma: slot %d has non-positive length %v", i+1, l)
		}
		offsets[i+1] = offsets[i] + l
	}
	return &Schedule{n: n, offsets: offsets}, nil
}

// MustSchedule is NewSchedule for statically known-good parameters; it panics
// on error and is intended for tests and examples.
func MustSchedule(n int, roundLen time.Duration) *Schedule {
	s, err := NewSchedule(n, roundLen)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of nodes (and slots per round).
func (s *Schedule) N() int { return s.n }

// Uniform reports whether all slots have the same length.
func (s *Schedule) Uniform() bool { return s.offsets == nil }

// SlotLen returns the duration of one sending slot on uniform schedules; on
// custom schedules it returns the length of the shortest slot (the relevant
// bound for burst-overlap reasoning).
func (s *Schedule) SlotLen() time.Duration {
	if s.offsets == nil {
		return s.slotLen
	}
	min := s.offsets[1] - s.offsets[0]
	for i := 2; i <= s.n; i++ {
		if l := s.offsets[i] - s.offsets[i-1]; l < min {
			min = l
		}
	}
	return min
}

// SlotLenOf returns the duration of the given slot (1-based).
func (s *Schedule) SlotLenOf(slot int) time.Duration {
	if s.offsets == nil {
		return s.slotLen
	}
	if !s.ValidSlot(slot) {
		return 0
	}
	return s.offsets[slot] - s.offsets[slot-1]
}

// RoundLen returns the duration of one TDMA round.
func (s *Schedule) RoundLen() time.Duration {
	if s.offsets == nil {
		return s.slotLen * time.Duration(s.n)
	}
	return s.offsets[s.n]
}

// RoundStart returns the simulated time at which the given round begins.
// Rounds are 0-based.
func (s *Schedule) RoundStart(round int) time.Duration {
	return time.Duration(round) * s.RoundLen()
}

// SlotWindow returns the [start, end) window of the given slot (1-based) in
// the given round (0-based).
func (s *Schedule) SlotWindow(round, slot int) (start, end time.Duration) {
	if s.offsets == nil {
		start = s.RoundStart(round) + time.Duration(slot-1)*s.slotLen
		return start, start + s.slotLen
	}
	base := s.RoundStart(round)
	return base + s.offsets[slot-1], base + s.offsets[slot]
}

// SlotOwner returns the node that owns the given slot.
func (s *Schedule) SlotOwner(slot int) NodeID { return NodeID(slot) }

// At locates simulated time t on the slot grid, returning the 0-based round
// and 1-based slot containing it. Negative times map to round 0, slot 1.
func (s *Schedule) At(t time.Duration) (round, slot int) {
	if t < 0 {
		return 0, 1
	}
	round = int(t / s.RoundLen())
	within := t - s.RoundStart(round)
	if s.offsets == nil {
		slot = int(within/s.slotLen) + 1
		if slot > s.n {
			slot = s.n
		}
		return round, slot
	}
	for slot = 1; slot < s.n; slot++ {
		if within < s.offsets[slot] {
			return round, slot
		}
	}
	return round, s.n
}

// ValidSlot reports whether slot is a valid 1-based slot index.
func (s *Schedule) ValidSlot(slot int) bool { return slot >= 1 && slot <= s.n }
