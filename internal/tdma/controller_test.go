package tdma

import "testing"

// populate drives a controller through a representative mix of state: valid
// deliveries, an invalid one, an empty-but-valid one, an isolation mark, a
// staged outbox, and collision verdicts.
func populate(t *testing.T, c *Controller) {
	t.Helper()
	c.ApplyDelivery(1, Delivery{Payload: []byte{0xA1, 0xA2, 0xA3}, Valid: true})
	c.ApplyDelivery(2, Delivery{Payload: []byte{0xB1}, Valid: true})
	c.ApplyDelivery(3, Delivery{Valid: false}) // locally detected faulty frame
	c.ApplyDelivery(4, Delivery{Valid: true})  // valid but empty: nil value, valid bit up
	c.SetIgnored(2, true)                      // isolated after delivery
	c.WriteInterface([]byte{0xC1, 0xC2})
	c.RecordCollision(5, true)
	c.RecordCollision(7, false)
}

// sameState fails the test unless dst and src expose identical observable
// state through every accessor.
func sameState(t *testing.T, dst, src *Controller) {
	t.Helper()
	for j := 1; j <= src.N(); j++ {
		sv, sok := src.ReadValue(NodeID(j))
		dv, dok := dst.ReadValue(NodeID(j))
		if sok != dok || string(sv) != string(dv) || (sv == nil) != (dv == nil) {
			t.Fatalf("sender %d: dst value %v/%v, src %v/%v", j, dv, dok, sv, sok)
		}
		if dst.Ignored(NodeID(j)) != src.Ignored(NodeID(j)) {
			t.Fatalf("sender %d: ignored mismatch", j)
		}
	}
	if dst.ValidMask() != src.ValidMask() {
		t.Fatalf("validMask %#x != %#x", dst.ValidMask(), src.ValidMask())
	}
	if string(dst.Outbox()) != string(src.Outbox()) {
		t.Fatalf("outbox %v != %v", dst.Outbox(), src.Outbox())
	}
	for round := 0; round < 2*collisionHistory; round++ {
		sc, sok := src.Collision(round)
		dc, dok := dst.Collision(round)
		if sc != dc || sok != dok {
			t.Fatalf("round %d: collision %v/%v != %v/%v", round, dc, dok, sc, sok)
		}
	}
}

func TestControllerCopyStateFrom(t *testing.T) {
	src, err := NewController(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewController(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, src)
	if err := dst.CopyStateFrom(src); err != nil {
		t.Fatal(err)
	}
	sameState(t, dst, src)

	// No shared mutable memory: mutating src afterwards must not leak into dst.
	src.ApplyDelivery(1, Delivery{Payload: []byte{0xEE, 0xEE, 0xEE}, Valid: true})
	src.WriteInterface([]byte{0xEF})
	if v, _ := dst.ReadValue(1); string(v) != "\xA1\xA2\xA3" {
		t.Fatalf("dst value aliased src scratch: %v", v)
	}
	if string(dst.Outbox()) != "\xC1\xC2" {
		t.Fatalf("dst outbox aliased src scratch: %v", dst.Outbox())
	}

	// Copying into a dirty controller fully overwrites its previous state.
	dirty, err := NewController(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	dirty.ApplyDelivery(3, Delivery{Payload: []byte{9, 9, 9, 9, 9, 9}, Valid: true})
	dirty.RecordCollision(1, true)
	if err := dirty.CopyStateFrom(src); err != nil {
		t.Fatal(err)
	}
	sameState(t, dirty, src)
}

func TestControllerCopyStateFromRejectsMismatch(t *testing.T) {
	a, _ := NewController(1, 4)
	b, _ := NewController(2, 4)
	c, _ := NewController(1, 5)
	if err := a.CopyStateFrom(b); err == nil {
		t.Fatal("copy across node ids must fail")
	}
	if err := a.CopyStateFrom(c); err == nil {
		t.Fatal("copy across system sizes must fail")
	}
}

// TestControllerCopyStateFromAllocs pins the zero-alloc steady state: after
// one warm copy has grown the destination's scratch buffers, further copies
// from the same source shape allocate nothing.
func TestControllerCopyStateFromAllocs(t *testing.T) {
	src, _ := NewController(1, 4)
	dst, _ := NewController(1, 4)
	populate(t, src)
	if err := dst.CopyStateFrom(src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := dst.CopyStateFrom(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CopyStateFrom allocates %.1f/op in steady state, want 0", allocs)
	}
}
