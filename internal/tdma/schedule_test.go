package tdma

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewScheduleValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		round   time.Duration
		wantErr bool
	}{
		{name: "paper_setup", n: 4, round: 2500 * time.Microsecond},
		{name: "one_node", n: 1, round: time.Millisecond, wantErr: true},
		{name: "zero_round", n: 4, round: 0, wantErr: true},
		{name: "negative_round", n: 4, round: -time.Millisecond, wantErr: true},
		{name: "indivisible", n: 3, round: 2500 * time.Microsecond, wantErr: true},
		{name: "large_cluster", n: 64, round: 6400 * time.Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := NewSchedule(tt.n, tt.round)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if s.N() != tt.n {
				t.Errorf("N() = %d, want %d", s.N(), tt.n)
			}
			if s.RoundLen() != tt.round {
				t.Errorf("RoundLen() = %v, want %v", s.RoundLen(), tt.round)
			}
		})
	}
}

func TestMustSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule did not panic on invalid input")
		}
	}()
	MustSchedule(1, time.Millisecond)
}

func TestScheduleGeometryPaperSetup(t *testing.T) {
	// The prototype of Sec. 8: N = 4, TDMA round T = 2.5 ms.
	s := MustSchedule(4, 2500*time.Microsecond)
	if got, want := s.SlotLen(), 625*time.Microsecond; got != want {
		t.Fatalf("SlotLen() = %v, want %v", got, want)
	}
	start, end := s.SlotWindow(0, 1)
	if start != 0 || end != 625*time.Microsecond {
		t.Errorf("slot (0,1) window = [%v, %v)", start, end)
	}
	start, end = s.SlotWindow(2, 3)
	if want := 2*s.RoundLen() + 2*s.SlotLen(); start != want {
		t.Errorf("slot (2,3) start = %v, want %v", start, want)
	}
	if want := 2*s.RoundLen() + 3*s.SlotLen(); end != want {
		t.Errorf("slot (2,3) end = %v, want %v", end, want)
	}
}

func TestScheduleAtInvertsSlotWindow(t *testing.T) {
	s := MustSchedule(4, 2500*time.Microsecond)
	if err := quick.Check(func(r uint16, sl uint8, frac uint8) bool {
		round := int(r % 1000)
		slot := int(sl%4) + 1
		start, end := s.SlotWindow(round, slot)
		// Probe a point strictly inside the window.
		t0 := start + time.Duration(frac)*(end-start-1)/255
		gr, gs := s.At(t0)
		return gr == round && gs == slot
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAtBoundaries(t *testing.T) {
	s := MustSchedule(4, 2500*time.Microsecond)
	r, sl := s.At(-time.Second)
	if r != 0 || sl != 1 {
		t.Errorf("At(negative) = (%d,%d), want (0,1)", r, sl)
	}
	r, sl = s.At(0)
	if r != 0 || sl != 1 {
		t.Errorf("At(0) = (%d,%d), want (0,1)", r, sl)
	}
	// Exactly at the start of round 1.
	r, sl = s.At(s.RoundLen())
	if r != 1 || sl != 1 {
		t.Errorf("At(roundLen) = (%d,%d), want (1,1)", r, sl)
	}
}

func TestSlotOwnerFollowsSlotOrder(t *testing.T) {
	s := MustSchedule(6, 6*time.Millisecond)
	for slot := 1; slot <= 6; slot++ {
		if got := s.SlotOwner(slot); got != NodeID(slot) {
			t.Errorf("SlotOwner(%d) = %d", slot, got)
		}
	}
}

func TestValidSlot(t *testing.T) {
	s := MustSchedule(4, 4*time.Millisecond)
	for _, tt := range []struct {
		slot int
		want bool
	}{{0, false}, {1, true}, {4, true}, {5, false}, {-1, false}} {
		if got := s.ValidSlot(tt.slot); got != tt.want {
			t.Errorf("ValidSlot(%d) = %v, want %v", tt.slot, got, tt.want)
		}
	}
}

func TestNewCustomScheduleValidation(t *testing.T) {
	if _, err := NewCustomSchedule([]time.Duration{time.Millisecond}); err == nil {
		t.Error("single slot accepted")
	}
	if _, err := NewCustomSchedule([]time.Duration{time.Millisecond, 0}); err == nil {
		t.Error("zero slot length accepted")
	}
	if _, err := NewCustomSchedule([]time.Duration{time.Millisecond, -time.Millisecond}); err == nil {
		t.Error("negative slot length accepted")
	}
}

func TestCustomScheduleGeometry(t *testing.T) {
	// An ARINC-659-style table: heterogeneous frame lengths.
	lens := []time.Duration{
		250 * time.Microsecond,
		1 * time.Millisecond,
		500 * time.Microsecond,
		750 * time.Microsecond,
	}
	s, err := NewCustomSchedule(lens)
	if err != nil {
		t.Fatal(err)
	}
	if s.Uniform() {
		t.Error("custom schedule reported uniform")
	}
	if got, want := s.RoundLen(), 2500*time.Microsecond; got != want {
		t.Fatalf("RoundLen = %v, want %v", got, want)
	}
	if got := s.SlotLen(); got != 250*time.Microsecond {
		t.Fatalf("SlotLen (min) = %v", got)
	}
	for slot, want := range map[int]time.Duration{1: lens[0], 2: lens[1], 3: lens[2], 4: lens[3]} {
		if got := s.SlotLenOf(slot); got != want {
			t.Errorf("SlotLenOf(%d) = %v, want %v", slot, got, want)
		}
	}
	if got := s.SlotLenOf(0); got != 0 {
		t.Errorf("SlotLenOf(0) = %v", got)
	}
	// Windows tile the round exactly.
	var cursor time.Duration
	for slot := 1; slot <= 4; slot++ {
		start, end := s.SlotWindow(1, slot)
		if start != s.RoundStart(1)+cursor {
			t.Fatalf("slot %d start = %v", slot, start)
		}
		cursor += lens[slot-1]
		if end != s.RoundStart(1)+cursor {
			t.Fatalf("slot %d end = %v", slot, end)
		}
	}
}

func TestCustomScheduleAt(t *testing.T) {
	lens := []time.Duration{250 * time.Microsecond, time.Millisecond, 500 * time.Microsecond, 750 * time.Microsecond}
	s, err := NewCustomSchedule(lens)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for slot := 1; slot <= 4; slot++ {
			start, end := s.SlotWindow(round, slot)
			mid := start + (end-start)/2
			gr, gs := s.At(mid)
			if gr != round || gs != slot {
				t.Fatalf("At(mid of %d/%d) = (%d,%d)", round, slot, gr, gs)
			}
		}
	}
	if r, sl := s.At(-time.Second); r != 0 || sl != 1 {
		t.Fatalf("At(negative) = (%d,%d)", r, sl)
	}
}

func TestUniformScheduleReportsUniform(t *testing.T) {
	s := MustSchedule(4, 2500*time.Microsecond)
	if !s.Uniform() {
		t.Error("uniform schedule reported custom")
	}
	if got := s.SlotLenOf(2); got != 625*time.Microsecond {
		t.Errorf("SlotLenOf = %v", got)
	}
}
