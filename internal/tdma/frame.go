package tdma

import "time"

// Transmission describes one broadcast of a node's interface variable in its
// sending slot, including its window on the simulated-time axis so that
// continuous-time disturbances (bursts with arbitrary phase) can decide
// whether they overlap it.
type Transmission struct {
	// Sender is the transmitting node; in this model slot s belongs to
	// node s, so Slot == int(Sender).
	Sender NodeID
	// Round is the 0-based TDMA round of the transmission.
	Round int
	// Slot is the 1-based sending slot.
	Slot int
	// Start and End delimit the slot window on the simulated clock; all
	// times are simulated nanoseconds from simulation start.
	Start, End time.Duration
	// Payload is the transmitted value of the sender's interface variable.
	Payload []byte
}

// Delivery is what one receiver observes for one transmission.
type Delivery struct {
	// Valid mirrors the validity bit set by the receiver's communication
	// controller: true iff the message passed local error detection
	// (syntactically correct, timely).
	Valid bool
	// Payload is the observed value. It equals the transmitted payload for
	// fault-free deliveries, may differ under malicious faults, and is nil
	// when Valid is false.
	Payload []byte
}

// Disturbance perturbs the behaviour of the bus. Implementations live in
// package fault; the zero set of disturbances yields a perfect bus.
//
// A Disturbance is applied as a filter chain: it receives the delivery as
// decided so far and returns the (possibly degraded) delivery. Conforming
// implementations only ever degrade a delivery (clear validity, corrupt the
// payload); they never restore validity, since a broadcast bus cannot
// un-corrupt a frame.
type Disturbance interface {
	// Deliver transforms the delivery of tx observed by receiver rcv.
	Deliver(tx *Transmission, rcv NodeID, d Delivery) Delivery
	// SenderCollision transforms the sender-side collision-detector verdict
	// for tx: true means the sender's controller could not read its own
	// message back from the bus.
	SenderCollision(tx *Transmission, collided bool) bool
}

// Disturbances composes several disturbances, applied in order.
type Disturbances []Disturbance

var _ Disturbance = Disturbances(nil)

// Deliver applies every disturbance in order.
func (ds Disturbances) Deliver(tx *Transmission, rcv NodeID, d Delivery) Delivery {
	for _, dist := range ds {
		d = dist.Deliver(tx, rcv, d)
	}
	return d
}

// SenderCollision applies every disturbance in order.
func (ds Disturbances) SenderCollision(tx *Transmission, collided bool) bool {
	for _, dist := range ds {
		collided = dist.SenderCollision(tx, collided)
	}
	return collided
}
