package tdma

import (
	"testing"
	"testing/quick"
	"time"

	"ttdiag/internal/trace"
)

func newTestBus(t *testing.T, n int) (*Bus, []*Controller) {
	t.Helper()
	sched := MustSchedule(n, time.Duration(n)*625*time.Microsecond)
	bus := NewBus(sched, nil)
	ctrls := make([]*Controller, n+1)
	for id := 1; id <= n; id++ {
		c, err := NewController(NodeID(id), n)
		if err != nil {
			t.Fatalf("NewController(%d): %v", id, err)
		}
		if err := bus.Attach(c); err != nil {
			t.Fatalf("Attach(%d): %v", id, err)
		}
		ctrls[id] = c
	}
	return bus, ctrls
}

func TestFaultFreeBroadcastUpdatesAllReceivers(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	ctrls[2].WriteInterface([]byte{0xAB})
	rep, err := bus.TransmitSlot(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Classify(); got != OutcomeCorrect {
		t.Fatalf("Classify() = %v, want correct", got)
	}
	if rep.Collision {
		t.Fatal("unexpected collision on clean bus")
	}
	for id := 1; id <= 4; id++ {
		v, ok := ctrls[id].ReadValue(2)
		if !ok {
			t.Fatalf("node %d: validity bit not set", id)
		}
		if len(v) != 1 || v[0] != 0xAB {
			t.Fatalf("node %d: got payload %v", id, v)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(0, 4); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := NewController(5, 4); err == nil {
		t.Error("id beyond N accepted")
	}
	if _, err := NewController(1, 1); err == nil {
		t.Error("1-node system accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	sched := MustSchedule(4, 2500*time.Microsecond)
	bus := NewBus(sched, nil)
	c, _ := NewController(1, 4)
	if err := bus.Attach(c); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach(c); err == nil {
		t.Error("double attach accepted")
	}
	wrong, _ := NewController(1, 6)
	if err := bus.Attach(wrong); err == nil {
		t.Error("controller with wrong N accepted")
	}
}

func TestTransmitSlotRequiresAllControllers(t *testing.T) {
	sched := MustSchedule(4, 2500*time.Microsecond)
	bus := NewBus(sched, nil)
	c, _ := NewController(1, 4)
	if err := bus.Attach(c); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.TransmitSlot(0, 1); err == nil {
		t.Error("transmit with missing controllers accepted")
	}
	if _, err := bus.TransmitSlot(0, 9); err == nil {
		t.Error("invalid slot accepted")
	}
}

// dropAll invalidates every delivery and trips the collision detector,
// emulating a bus-wide disturbance.
type dropAll struct{}

func (dropAll) Deliver(*Transmission, NodeID, Delivery) Delivery { return Delivery{} }
func (dropAll) SenderCollision(*Transmission, bool) bool         { return true }

func TestBenignFaultClearsValidityEverywhere(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	bus.AddDisturbance(dropAll{})
	ctrls[3].WriteInterface([]byte{1})
	rep, err := bus.TransmitSlot(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Classify(); got != OutcomeBenign {
		t.Fatalf("Classify() = %v, want benign", got)
	}
	if !rep.Collision {
		t.Fatal("collision detector did not trip")
	}
	for id := 1; id <= 4; id++ {
		if _, ok := ctrls[id].ReadValue(3); ok {
			t.Fatalf("node %d: validity bit still set", id)
		}
	}
	collided, ok := ctrls[3].Collision(5)
	if !ok || !collided {
		t.Fatalf("sender collision history = (%v,%v), want (true,true)", collided, ok)
	}
}

// blindOne invalidates deliveries to a single receiver (asymmetric fault).
type blindOne struct{ rcv NodeID }

func (b blindOne) Deliver(_ *Transmission, rcv NodeID, d Delivery) Delivery {
	if rcv == b.rcv {
		return Delivery{}
	}
	return d
}
func (blindOne) SenderCollision(_ *Transmission, c bool) bool { return c }

func TestAsymmetricFaultClassification(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	bus.AddDisturbance(blindOne{rcv: 4})
	ctrls[1].WriteInterface([]byte{7})
	rep, err := bus.TransmitSlot(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Classify(); got != OutcomeAsymmetric {
		t.Fatalf("Classify() = %v, want asymmetric", got)
	}
	if _, ok := ctrls[4].ReadValue(1); ok {
		t.Error("blinded receiver has validity bit set")
	}
	if _, ok := ctrls[2].ReadValue(1); !ok {
		t.Error("unblinded receiver lost the message")
	}
	if rep.Collision {
		t.Error("asymmetric receive fault tripped the sender collision detector")
	}
}

// corruptPayload substitutes the payload without clearing validity
// (symmetric malicious fault).
type corruptPayload struct{ with []byte }

func (m corruptPayload) Deliver(_ *Transmission, _ NodeID, d Delivery) Delivery {
	if d.Valid {
		d.Payload = m.with
	}
	return d
}
func (corruptPayload) SenderCollision(_ *Transmission, c bool) bool { return c }

func TestMaliciousFaultClassification(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	bus.AddDisturbance(corruptPayload{with: []byte{0xEE}})
	ctrls[2].WriteInterface([]byte{0x11})
	rep, err := bus.TransmitSlot(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Classify(); got != OutcomeMalicious {
		t.Fatalf("Classify() = %v, want malicious", got)
	}
	v, ok := ctrls[1].ReadValue(2)
	if !ok || len(v) != 1 || v[0] != 0xEE {
		t.Fatalf("receiver observed %v/%v, want corrupted payload", v, ok)
	}
}

func TestIgnoredSenderTrafficDropped(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	ctrls[2].WriteInterface([]byte{0xAB})
	if _, err := bus.TransmitSlot(0, 2); err != nil {
		t.Fatal(err)
	}
	ctrls[1].SetIgnored(2, true)
	if _, ok := ctrls[1].ReadValue(2); ok {
		t.Fatal("value still valid right after isolation")
	}
	ctrls[2].WriteInterface([]byte{0xCD})
	if _, err := bus.TransmitSlot(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctrls[1].ReadValue(2); ok {
		t.Fatal("isolated sender's traffic not ignored")
	}
	if v, ok := ctrls[3].ReadValue(2); !ok || v[0] != 0xCD {
		t.Fatal("other receivers affected by node 1's ignore mask")
	}
	if !ctrls[1].Ignored(2) {
		t.Fatal("Ignored(2) = false")
	}
	ctrls[1].SetIgnored(2, false)
	ctrls[2].WriteInterface([]byte{0xEF})
	if _, err := bus.TransmitSlot(2, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := ctrls[1].ReadValue(2); !ok || v[0] != 0xEF {
		t.Fatal("reintegrated sender's traffic still ignored")
	}
}

func TestCollisionHistoryWindow(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	ctrls[1].WriteInterface([]byte{1})
	for round := 0; round < collisionHistory+4; round++ {
		if _, err := bus.TransmitSlot(round, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := ctrls[1].Collision(0); ok {
		t.Error("round 0 verdict still available beyond history window")
	}
	if collided, ok := ctrls[1].Collision(collisionHistory + 3); !ok || collided {
		t.Errorf("latest round verdict = (%v,%v), want (false,true)", collided, ok)
	}
	if _, ok := ctrls[1].Collision(-1); ok {
		t.Error("negative round reported as known")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	ctrls[1].WriteInterface([]byte{9})
	if _, err := bus.TransmitSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	values, valid := ctrls[2].Snapshot()
	if !valid[1] || values[1][0] != 9 {
		t.Fatalf("snapshot wrong: %v %v", values[1], valid[1])
	}
	values[1][0] = 0
	v, _ := ctrls[2].ReadValue(1)
	if v[0] != 9 {
		t.Fatal("snapshot mutation leaked into controller state")
	}
}

func TestWriteInterfaceCopiesPayload(t *testing.T) {
	c, _ := NewController(1, 4)
	p := []byte{1, 2}
	c.WriteInterface(p)
	p[0] = 9
	if c.Outbox()[0] != 1 {
		t.Fatal("WriteInterface did not copy the payload")
	}
}

func TestBusTraceEvents(t *testing.T) {
	sched := MustSchedule(4, 2500*time.Microsecond)
	var rec trace.Recorder
	bus := NewBus(sched, &rec)
	for id := 1; id <= 4; id++ {
		c, _ := NewController(NodeID(id), 4)
		if err := bus.Attach(c); err != nil {
			t.Fatal(err)
		}
	}
	bus.Controller(1).WriteInterface([]byte{1})
	if _, err := bus.TransmitSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	evs := rec.Filter(trace.KindTransmit)
	if len(evs) != 1 || evs[0].Node != 1 || evs[0].Detail != "correct" {
		t.Fatalf("trace events = %+v", evs)
	}
}

func TestOutcomeClassString(t *testing.T) {
	for _, tt := range []struct {
		class OutcomeClass
		want  string
	}{
		{OutcomeCorrect, "correct"},
		{OutcomeBenign, "benign"},
		{OutcomeMalicious, "malicious"},
		{OutcomeAsymmetric, "asymmetric"},
	} {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestClearDisturbances(t *testing.T) {
	bus, ctrls := newTestBus(t, 4)
	bus.AddDisturbance(dropAll{})
	ctrls[1].WriteInterface([]byte{1})
	if _, err := bus.TransmitSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctrls[2].ReadValue(1); ok {
		t.Fatal("disturbance inactive")
	}
	bus.ClearDisturbances()
	if _, err := bus.TransmitSlot(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctrls[2].ReadValue(1); !ok {
		t.Fatal("disturbance still active after ClearDisturbances")
	}
}

// Property: Classify is total and matches its definition on random
// per-receiver outcomes.
func TestClassifyProperty(t *testing.T) {
	if err := quick.Check(func(bits uint16, altered uint8) bool {
		rep := &TxReport{
			Tx:         Transmission{Sender: 2, Payload: []byte{0x55}},
			Deliveries: make([]Delivery, 5),
		}
		invalid, valid, changed := 0, 0, 0
		for r := 1; r <= 4; r++ {
			if NodeID(r) == rep.Tx.Sender {
				rep.Deliveries[r] = Delivery{Valid: true, Payload: rep.Tx.Payload}
				continue
			}
			if bits&(1<<uint(r)) != 0 {
				invalid++
				continue
			}
			valid++
			pay := rep.Tx.Payload
			if altered&(1<<uint(r)) != 0 {
				pay = []byte{0xAA}
				changed++
			}
			rep.Deliveries[r] = Delivery{Valid: true, Payload: pay}
		}
		got := rep.Classify()
		switch {
		case invalid > 0 && valid > 0:
			return got == OutcomeAsymmetric
		case invalid > 0:
			return got == OutcomeBenign
		case changed > 0:
			return got == OutcomeMalicious
		default:
			return got == OutcomeCorrect
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisturbancesChainOrder(t *testing.T) {
	// The chain applies in order and can only degrade.
	chain := Disturbances{
		corruptPayload{with: []byte{0x01}},
		corruptPayload{with: []byte{0x02}},
	}
	tx := &Transmission{Sender: 1, Payload: []byte{0xFF}}
	d := chain.Deliver(tx, 2, Delivery{Valid: true, Payload: tx.Payload})
	if !d.Valid || d.Payload[0] != 0x02 {
		t.Fatalf("chain result %+v, want last corruption to win", d)
	}
	chain = Disturbances{dropAll{}, corruptPayload{with: []byte{0x02}}}
	d = chain.Deliver(tx, 2, Delivery{Valid: true, Payload: tx.Payload})
	if d.Valid {
		t.Fatal("corruptor revived a dropped delivery")
	}
	if !chain.SenderCollision(tx, false) {
		t.Fatal("collision lost through the chain")
	}
	var empty Disturbances
	if d := empty.Deliver(tx, 2, Delivery{Valid: true, Payload: tx.Payload}); !d.Valid {
		t.Fatal("empty chain corrupted a delivery")
	}
}
