package tdma

import (
	"fmt"

	"ttdiag/internal/trace"
)

// OutcomeClass is the ground-truth classification of one transmission under
// the Customizable Fault-Effect Model (Sec. 4): it describes the
// communication errors actually produced on the bus, independent of what any
// protocol later diagnoses. Experiments use it to audit correctness,
// completeness and consistency.
type OutcomeClass int

// Ground-truth transmission outcome classes.
const (
	// OutcomeCorrect: every receiver got the original payload, validity 1.
	OutcomeCorrect OutcomeClass = iota + 1
	// OutcomeBenign: the message was locally detectable by all receivers.
	OutcomeBenign
	// OutcomeMalicious: all receivers got the same, locally undetectable
	// but semantically incorrect message.
	OutcomeMalicious
	// OutcomeAsymmetric: the message was locally detectable by at least one
	// but not all receivers.
	OutcomeAsymmetric
)

// String returns the paper's name for the class.
func (o OutcomeClass) String() string {
	switch o {
	case OutcomeCorrect:
		return "correct"
	case OutcomeBenign:
		return "benign"
	case OutcomeMalicious:
		return "malicious"
	case OutcomeAsymmetric:
		return "asymmetric"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TxReport is the bus's record of one slot transmission: what was sent, what
// every receiver observed, and the sender-side collision verdict.
type TxReport struct {
	Tx Transmission
	// Deliveries[r] (1-based) is what receiver r observed. The sender's own
	// entry reflects its loop-back reception.
	Deliveries []Delivery
	// Collision is the sender-side collision-detector verdict.
	Collision bool
}

// Clone returns a retain-safe deep copy of the report: the bus reuses the
// report (and the payload slices it references) for the next slot, so
// observers that keep reports across slots must clone them first.
func (r *TxReport) Clone() *TxReport {
	cp := *r
	cp.Tx.Payload = append([]byte(nil), r.Tx.Payload...)
	cp.Deliveries = make([]Delivery, len(r.Deliveries))
	for i, d := range r.Deliveries {
		d.Payload = append([]byte(nil), d.Payload...)
		cp.Deliveries[i] = d
	}
	return &cp
}

// Classify returns the ground-truth outcome class of the transmission with
// respect to the receivers other than the sender.
func (r *TxReport) Classify() OutcomeClass {
	var invalid, valid, altered int
	for rcv := 1; rcv < len(r.Deliveries); rcv++ {
		if NodeID(rcv) == r.Tx.Sender {
			continue
		}
		d := r.Deliveries[rcv]
		if !d.Valid {
			invalid++
			continue
		}
		valid++
		if !bytesEqual(d.Payload, r.Tx.Payload) {
			altered++
		}
	}
	switch {
	case invalid > 0 && valid > 0:
		return OutcomeAsymmetric
	case invalid > 0:
		return OutcomeBenign
	case altered > 0:
		return OutcomeMalicious
	default:
		return OutcomeCorrect
	}
}

// Bus is the shared broadcast medium. It executes slot transmissions
// according to the global communication schedule, applying the configured
// disturbances per receiver, updating every attached controller, and
// reporting ground truth for audits.
type Bus struct {
	sched *Schedule
	ctrls []*Controller // 1-based by node ID
	dist  Disturbances
	sink  trace.Sink

	// payloadBuf, tx and report are the bus's reusable in-flight frame: the
	// staged payload copy, the transmission handed to disturbances and the
	// per-slot transmission report are overwritten on every TransmitSlot
	// instead of allocated per slot.
	payloadBuf []byte
	tx         Transmission
	report     TxReport
}

// NewBus creates a bus for the given schedule. All N controllers must be
// attached before the first transmission.
func NewBus(sched *Schedule, sink trace.Sink) *Bus {
	if sink == nil {
		sink = trace.Discard{}
	}
	return &Bus{
		sched:  sched,
		ctrls:  make([]*Controller, sched.N()+1),
		sink:   sink,
		report: TxReport{Deliveries: make([]Delivery, sched.N()+1)},
	}
}

// Schedule returns the bus's global communication schedule.
func (b *Bus) Schedule() *Schedule { return b.sched }

// Attach registers a controller on the bus.
func (b *Bus) Attach(c *Controller) error {
	if c.N() != b.sched.N() {
		return fmt.Errorf("tdma: controller for %d nodes attached to %d-node bus", c.N(), b.sched.N())
	}
	if int(c.ID()) >= len(b.ctrls) || c.ID() < 1 {
		return fmt.Errorf("tdma: controller id %d out of range", c.ID())
	}
	if b.ctrls[c.ID()] != nil {
		return fmt.Errorf("tdma: controller %d already attached", c.ID())
	}
	b.ctrls[c.ID()] = c
	return nil
}

// Controller returns the attached controller of the given node, or nil.
func (b *Bus) Controller(id NodeID) *Controller {
	if id < 1 || int(id) >= len(b.ctrls) {
		return nil
	}
	return b.ctrls[id]
}

// AddDisturbance appends a disturbance to the bus's filter chain.
func (b *Bus) AddDisturbance(d Disturbance) { b.dist = append(b.dist, d) }

// ClearDisturbances removes all disturbances.
func (b *Bus) ClearDisturbances() { b.dist = nil }

// TransmitSlot executes the transmission of the given slot (1-based) in the
// given round (0-based): the slot owner's staged interface value is
// broadcast, each receiver's controller is updated with its (possibly
// disturbed) delivery, and the sender's collision detector is refreshed.
//
// The returned report is bus-owned scratch, overwritten by the next
// TransmitSlot — observers that keep reports across slots must use
// TxReport.Clone.
//
//ttdiag:noretain
func (b *Bus) TransmitSlot(round, slot int) (*TxReport, error) {
	if !b.sched.ValidSlot(slot) {
		return nil, fmt.Errorf("tdma: invalid slot %d", slot)
	}
	sender := b.sched.SlotOwner(slot)
	sc := b.ctrls[sender]
	if sc == nil {
		return nil, fmt.Errorf("tdma: no controller attached for node %d", sender)
	}
	start, end := b.sched.SlotWindow(round, slot)
	b.payloadBuf = append(b.payloadBuf[:0], sc.Outbox()...)
	// The transmission is built in bus-owned scratch: handing a pointer to
	// the disturbance interface would otherwise heap-allocate it every slot.
	tx := &b.tx
	*tx = Transmission{
		Sender:  sender,
		Round:   round,
		Slot:    slot,
		Start:   start,
		End:     end,
		Payload: b.payloadBuf,
	}

	report := &b.report
	report.Tx = *tx
	report.Collision = false
	for rcv := 1; rcv <= b.sched.N(); rcv++ {
		rc := b.ctrls[rcv]
		if rc == nil {
			return nil, fmt.Errorf("tdma: no controller attached for node %d", rcv)
		}
		d := Delivery{Valid: true, Payload: tx.Payload}
		d = b.dist.Deliver(tx, NodeID(rcv), d)
		if !d.Valid {
			d.Payload = nil
		}
		report.Deliveries[rcv] = d
		rc.ApplyDelivery(sender, d)
	}

	// The sender's loop-back validity is governed by its local collision
	// detector: if the message could not be read back from the bus, the
	// loop-back copy is invalid too.
	report.Collision = b.dist.SenderCollision(tx, false)
	sc.RecordCollision(round, report.Collision)
	if report.Collision {
		sc.ApplyDelivery(sender, Delivery{})
	}

	b.sink.Record(trace.Event{
		At:     start,
		Round:  round,
		Kind:   trace.KindTransmit,
		Node:   int(sender),
		Detail: report.Classify().String(),
	})
	return report, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
