package tdma

import "fmt"

// collisionHistory is how many rounds of collision-detector verdicts a
// controller retains. The protocol only ever queries the diagnosed round,
// which trails the current round by at most three rounds; a deeper window is
// kept for diagnostics.
const collisionHistory = 16

// Controller models a node's communication controller: it holds the node's
// copies of the interface variables <v_1 ... v_N> together with their
// validity bits, stages the node's own outgoing value, and records the local
// collision-detector verdict for the node's own sending slots.
//
// A Controller is driven by a bus — the lock-step Bus in this package or the
// channel-based bus of the concurrent runtime — which calls ApplyDelivery and
// RecordCollision in slot order, and read by the node's application-level
// jobs. It is not safe for concurrent use; the concurrent runtime confines
// each controller to its node's goroutine.
type Controller struct {
	id NodeID
	n  int

	// values[j] and valid[j] (1-based) are the local copies of interface
	// variable j and its validity bit. Each entry aliases valBuf[j], a
	// per-sender scratch buffer reused across deliveries so the steady-state
	// delivery path performs no allocation.
	values [][]byte
	valid  []bool
	valBuf [][]byte

	// validMask mirrors valid[] as a bit mask (bit j-1 = sender j) for the
	// first 64 senders, feeding the bit-packed diagnostic hot path without a
	// per-round scan. Senders beyond 64 are tracked only in valid[].
	validMask uint64

	// outbox is the staged value of this node's own interface variable,
	// transmitted at the node's next sending slot. Its backing array is
	// reused across writes.
	outbox []byte

	// ignored marks senders whose traffic must be ignored because the
	// diagnostic protocol isolated them.
	ignored []bool

	// collRound/collVerdict form a small ring of collision-detector
	// verdicts for this node's own transmissions, indexed by round.
	collRound   [collisionHistory]int
	collVerdict [collisionHistory]bool
	collSeen    [collisionHistory]bool
}

// NewController returns a controller for node id in an n-node system.
func NewController(id NodeID, n int) (*Controller, error) {
	if n < 2 {
		return nil, fmt.Errorf("tdma: controller needs at least 2 nodes, got %d", n)
	}
	if id < 1 || int(id) > n {
		return nil, fmt.Errorf("tdma: controller id %d out of range 1..%d", id, n)
	}
	return &Controller{
		id:      id,
		n:       n,
		values:  make([][]byte, n+1),
		valid:   make([]bool, n+1),
		valBuf:  make([][]byte, n+1),
		ignored: make([]bool, n+1),
	}, nil
}

// Reset returns the controller to its freshly constructed state — all
// interface copies cleared, validity bits down, outbox empty, isolation
// marks lifted, collision history wiped — while keeping its internal
// buffers for reuse across campaign repetitions.
func (c *Controller) Reset() {
	for j := 1; j <= c.n; j++ {
		c.values[j] = nil
		c.valid[j] = false
		c.ignored[j] = false
	}
	c.validMask = 0
	c.outbox = c.outbox[:0]
	c.collRound = [collisionHistory]int{}
	c.collVerdict = [collisionHistory]bool{}
	c.collSeen = [collisionHistory]bool{}
}

// ID returns the node this controller belongs to.
func (c *Controller) ID() NodeID { return c.id }

// N returns the number of nodes in the system.
func (c *Controller) N() int { return c.n }

// WriteInterface stages payload as the node's own interface-variable value;
// it will be broadcast at the node's next sending slot. The payload is
// copied into controller-owned scratch — the caller keeps ownership of its
// slice.
//
//ttdiag:noretain params
func (c *Controller) WriteInterface(payload []byte) {
	c.outbox = append(c.outbox[:0], payload...)
}

// ReadValue returns the local copy of interface variable j and its validity
// bit. The returned slice is controller-owned scratch: it must not be
// modified and is overwritten by the next delivery from j — callers must not
// retain it across slots.
//
//ttdiag:noretain
func (c *Controller) ReadValue(j NodeID) (payload []byte, valid bool) {
	if j < 1 || int(j) > c.n {
		return nil, false
	}
	return c.values[j], c.valid[j]
}

// ReadAll returns the controller's interface-variable copies and validity
// bits, both indexed 1..N (index 0 unused). Both slices and every payload
// they reference are controller-owned: they must not be modified, and they
// are overwritten in place by subsequent deliveries — callers must not
// retain them across slots. Use Snapshot for a retain-safe deep copy.
//
//ttdiag:noretain
func (c *Controller) ReadAll() (values [][]byte, valid []bool) {
	return c.values, c.valid
}

// ValidMask returns the validity bits of the first 64 interface variables as
// a bit mask (bit j-1 = sender j), the packed-path form of ReadAll's valid
// slice. Being a value, it is retain-safe.
func (c *Controller) ValidMask() uint64 { return c.validMask }

// setValid updates one validity bit together with its mask mirror.
func (c *Controller) setValid(sender NodeID, valid bool) {
	c.valid[sender] = valid
	if sender >= 1 && sender <= 64 {
		bit := uint64(1) << uint(sender-1)
		if valid {
			c.validMask |= bit
		} else {
			c.validMask &^= bit
		}
	}
}

// Snapshot returns copies of all interface-variable values and validity bits,
// both indexed 1..N (index 0 unused). It is what a diagnostic job reads at
// the start of its execution (Alg. 1, lines 1-2). Unlike ReadAll, the copies
// are freshly allocated and retain-safe; the hot path uses ReadAll and
// decodes in place instead.
func (c *Controller) Snapshot() (values [][]byte, valid []bool) {
	values = make([][]byte, c.n+1)
	valid = make([]bool, c.n+1)
	for j := 1; j <= c.n; j++ {
		if c.values[j] != nil {
			values[j] = append([]byte(nil), c.values[j]...)
		}
		valid[j] = c.valid[j]
	}
	return values, valid
}

// SetIgnored marks (or unmarks) a sender as isolated: subsequent traffic from
// it is dropped and its validity bit forced to false, as required once the
// diagnostic protocol isolates a node.
func (c *Controller) SetIgnored(sender NodeID, ignored bool) {
	if sender < 1 || int(sender) > c.n {
		return
	}
	c.ignored[sender] = ignored
	if ignored {
		c.values[sender] = nil
		c.setValid(sender, false)
	}
}

// Ignored reports whether traffic from sender is currently ignored.
func (c *Controller) Ignored(sender NodeID) bool {
	if sender < 1 || int(sender) > c.n {
		return false
	}
	return c.ignored[sender]
}

// Collision returns the collision-detector verdict for this node's own
// transmission in the given round: collided == true means the controller
// could not read its own message back from the bus. ok is false when the
// round is outside the retained history.
func (c *Controller) Collision(round int) (collided, ok bool) {
	i := round % collisionHistory
	if i < 0 {
		return false, false
	}
	if !c.collSeen[i] || c.collRound[i] != round {
		return false, false
	}
	return c.collVerdict[i], true
}

// ApplyDelivery installs what this node observed for a transmission: the
// interface-variable copy is updated together with its validity bit
// (invalid deliveries clear the value, modelling the controller discarding a
// locally detected faulty frame). The payload is copied into the
// controller's per-sender scratch buffer, so the delivery's slice stays
// owned by the caller.
//
//ttdiag:noretain params
func (c *Controller) ApplyDelivery(sender NodeID, d Delivery) {
	if sender < 1 || int(sender) > c.n {
		return
	}
	if c.ignored[sender] || !d.Valid || len(d.Payload) == 0 {
		c.values[sender] = nil
		c.setValid(sender, !c.ignored[sender] && d.Valid)
		return
	}
	c.valBuf[sender] = append(c.valBuf[sender][:0], d.Payload...)
	c.values[sender] = c.valBuf[sender]
	c.setValid(sender, true)
}

// RecordCollision stores the collision-detector verdict for the node's own
// transmission in the given round.
func (c *Controller) RecordCollision(round int, collided bool) {
	i := round % collisionHistory
	if i < 0 {
		return
	}
	c.collRound[i] = round
	c.collVerdict[i] = collided
	c.collSeen[i] = true
}

// Outbox returns the currently staged outgoing payload (nil if none). The
// returned slice is controller-owned scratch, overwritten in place by the
// next WriteInterface — callers must not retain it.
//
//ttdiag:noretain
func (c *Controller) Outbox() []byte { return c.outbox }

// CopyStateFrom overwrites this controller's complete observable state —
// interface copies, validity bits and mask, staged outbox, isolation marks,
// collision history — with src's, deep-copying every payload into this
// controller's own scratch buffers. Both controllers must model the same
// node of the same system; src is left untouched and the two share no
// mutable memory afterwards. Once this controller's per-sender buffers have
// grown to src's payload sizes the copy allocates nothing, which is what
// makes it the in-memory checkpoint path for splitting clones.
func (c *Controller) CopyStateFrom(src *Controller) error {
	if c.id != src.id || c.n != src.n {
		return fmt.Errorf("tdma: CopyStateFrom across controllers (dst node %d/%d, src node %d/%d)",
			c.id, c.n, src.id, src.n)
	}
	for j := 1; j <= c.n; j++ {
		if src.values[j] == nil {
			c.values[j] = nil
		} else {
			c.valBuf[j] = append(c.valBuf[j][:0], src.values[j]...)
			c.values[j] = c.valBuf[j]
		}
		c.valid[j] = src.valid[j]
		c.ignored[j] = src.ignored[j]
	}
	c.validMask = src.validMask
	c.outbox = append(c.outbox[:0], src.outbox...)
	c.collRound = src.collRound
	c.collVerdict = src.collVerdict
	c.collSeen = src.collSeen
	return nil
}
