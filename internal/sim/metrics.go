package sim

import (
	"ttdiag/internal/metrics"
	"ttdiag/internal/tdma"
)

// RunMetrics bundles the per-run system-level instruments of one simulated
// cluster: ground-truth transmission outcomes (the collision counts of the
// Customizable Fault-Effect Model), isolation latency in rounds, and
// membership view changes. Like core.StepMetrics, every field is optional
// and a nil *RunMetrics is a complete no-op, so campaign code can call the
// observers unconditionally.
type RunMetrics struct {
	// Ground-truth transmission outcome counts (tdma.OutcomeClass): TxBenign
	// is the bus-collision count — locally detectable corrupted
	// transmissions — while TxMalicious/TxAsymmetric count the undetectable
	// and two-faced ones.
	TxCorrect    *metrics.Counter
	TxBenign     *metrics.Counter
	TxMalicious  *metrics.Counter
	TxAsymmetric *metrics.Counter
	// IsolationLatency observes, for every node an observer isolated, the
	// distance in rounds from the node's first ground-truth fault to the
	// isolation decision.
	IsolationLatency *metrics.Histogram
	// ViewChanges counts installed membership view transitions, summed over
	// the observing nodes (the initial view is not a transition).
	ViewChanges *metrics.Counter
}

// isolationLatencyBounds are the histogram bucket bounds, in rounds; the
// paper's detection latencies are a handful of rounds, so the buckets
// resolve that range and fold everything slower into overflow.
var isolationLatencyBounds = []int64{2, 4, 8, 16, 32, 64}

// NewRunMetrics wires a RunMetrics to the registry under the standard
// system instrument names. A nil registry yields all-nil (no-op)
// instruments.
func NewRunMetrics(reg *metrics.Registry) *RunMetrics {
	return &RunMetrics{
		TxCorrect:        reg.Counter("tx/correct"),
		TxBenign:         reg.Counter("tx/benign"),
		TxMalicious:      reg.Counter("tx/malicious"),
		TxAsymmetric:     reg.Counter("tx/asymmetric"),
		IsolationLatency: reg.Histogram("pr/isolation_latency_rounds", isolationLatencyBounds...),
		ViewChanges:      reg.Counter("membership/view_changes"),
	}
}

// ObserveTruth folds the run's ground-truth transmission classification
// of every executed round into the outcome counters. It accepts any
// TruthSource — the lock-step engine or one lane of a batched cluster.
func (m *RunMetrics) ObserveTruth(src TruthSource) {
	if m == nil {
		return
	}
	for round := 0; round < src.Round(); round++ {
		truth := src.Truth(round)
		for slot := 1; slot < len(truth); slot++ {
			switch truth[slot] {
			case tdma.OutcomeCorrect:
				m.TxCorrect.Inc()
			case tdma.OutcomeBenign:
				m.TxBenign.Inc()
			case tdma.OutcomeMalicious:
				m.TxMalicious.Inc()
			case tdma.OutcomeAsymmetric:
				m.TxAsymmetric.Inc()
			}
		}
	}
}

// ObserveIsolationLatency observes, for every node the collector saw
// isolated, the rounds elapsed between the node's first ground-truth
// non-correct transmission and its first isolation decision. A node
// isolated without any ground-truth fault on record (a false conviction —
// the audits would flag it) is observed with latency 0 so it still shows up
// in the histogram count.
func (m *RunMetrics) ObserveIsolationLatency(src TruthSource, col *Collector) {
	if m == nil || col == nil || src.Round() == 0 {
		return
	}
	// Every truth row spans slots 1..N, so the system width falls out of the
	// first executed round without needing the schedule.
	n := len(src.Truth(0)) - 1
	for id := 1; id <= n; id++ {
		iso := col.FirstIsolation(id)
		if iso < 0 {
			continue
		}
		latency := 0
		if fault := firstFaultRound(src, id); fault >= 0 && fault <= iso {
			latency = iso - fault
		}
		m.IsolationLatency.Observe(int64(latency))
	}
}

// firstFaultRound returns the first executed round in which node id's
// transmission was classified non-correct by the ground truth, -1 if none.
func firstFaultRound(src TruthSource, id int) int {
	for round := 0; round < src.Round(); round++ {
		truth := src.Truth(round)
		if id < len(truth) {
			if c := truth[id]; c != 0 && c != tdma.OutcomeCorrect {
				return round
			}
		}
	}
	return -1
}

// ObserveViews adds every runner's installed view transitions (history
// length minus the initial view) to the view-change counter.
func (m *RunMetrics) ObserveViews(runners []*MembershipRunner) {
	if m == nil {
		return
	}
	for _, r := range runners {
		if r == nil {
			continue
		}
		if h := len(r.Service().History()); h > 1 {
			m.ViewChanges.Add(int64(h - 1))
		}
	}
}
