package sim

import (
	"fmt"

	"ttdiag/internal/core"
	"ttdiag/internal/tdma"
)

// NewDynamicDiagnosticCluster wires an engine in which every node's
// diagnostic job executes at a different position each round:
// position(id, round) plays the role of the schedule information the OS
// provides at run time under dynamic node scheduling (Sec. 10).
//
// Soundness requires two things, both enforced here:
//
//   - each node's read point is pinned to round start (the engine captures
//     an interface snapshot before slot 1, core runs with Dynamic set), so
//     the wandering execution time cannot lose interface values;
//   - each node's position stays on a fixed side of its own sending slot
//     (sides[id-1], true = always before the slot, i.e. send_curr_round),
//     because the transmission round of a staged write must be static for
//     send alignment. A position crossing the declared side fails the
//     round with an explicit error.
func NewDynamicDiagnosticCluster(cfg ClusterConfig, sides []bool, position func(id, round int) int) (*Engine, []*DiagRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if position == nil {
		return nil, nil, fmt.Errorf("sim: dynamic cluster needs a position function")
	}
	if len(sides) != cfg.N {
		return nil, nil, fmt.Errorf("sim: sides has %d entries, want %d", len(sides), cfg.N)
	}
	for id := 1; id <= cfg.N; id++ {
		if cfg.AllSendCurrRound && !sides[id-1] {
			return nil, nil, fmt.Errorf("sim: AllSendCurrRound set but node %d is scheduled after its slot", id)
		}
		if !sides[id-1] && id == cfg.N {
			return nil, nil, fmt.Errorf("sim: node %d owns the last slot and cannot be scheduled after it", id)
		}
	}
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*DiagRunner, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		id := id
		scr := sides[id-1]
		nodeCfg := core.Config{
			N:                cfg.N,
			ID:               id,
			Dynamic:          true,
			SendCurrRound:    scr,
			AllSendCurrRound: cfg.AllSendCurrRound,
			Mode:             core.ModeDiagnostic,
			PR:               cfg.PR,
		}
		r, err := NewDiagRunner(nodeCfg)
		if err != nil {
			return nil, nil, err
		}
		posFn := func(round int) (int, error) {
			p := position(id, round)
			if scr && p >= id {
				return 0, fmt.Errorf("job position %d is after the node's slot, but the node declared send_curr_round", p)
			}
			if !scr && p < id {
				return 0, fmt.Errorf("job position %d is before the node's slot, but the node declared !send_curr_round", p)
			}
			return p, nil
		}
		if err := eng.AddDynamicNode(tdma.NodeID(id), posFn, r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}
