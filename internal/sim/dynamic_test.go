package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
)

// dynPosition builds a per-round position function that wanders within the
// declared side of each node's slot.
func dynPosition(n int, sides []bool, seed int64) func(id, round int) int {
	streams := make([]*rng.Stream, n+1)
	src := rng.NewSource(seed)
	for id := 1; id <= n; id++ {
		streams[id] = src.Stream("dyn")
	}
	// Positions must be deterministic per (id, round): precompute lazily.
	cache := make(map[[2]int]int)
	return func(id, round int) int {
		key := [2]int{id, round}
		if p, ok := cache[key]; ok {
			return p
		}
		var p int
		if sides[id-1] {
			p = streams[id].Intn(id) // 0..id-1: before the slot
		} else {
			p = id + streams[id].Intn(n-id) // id..n-1: after the slot
		}
		cache[key] = p
		return p
	}
}

func TestDynamicSchedulingFaultFree(t *testing.T) {
	sides := []bool{true, false, true, true}
	pos := dynPosition(4, sides, 5)
	eng, runners, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides, pos)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		if err := eng.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Fault-free: every health vector must be all-healthy and agreed even
	// though the job positions wander (stale entries only matter when the
	// referenced rounds differ in content).
	for id := 1; id <= 4; id++ {
		out := runners[id].Last()
		if out.ConsHV == nil || out.ConsHV.CountFaulty() != 0 {
			t.Fatalf("node %d: cons_hv %v", id, out.ConsHV)
		}
		if !out.ConsHV.Equal(runners[1].Last().ConsHV) {
			t.Fatalf("health vectors disagree")
		}
	}
}

// TestDynamicSchedulingBenignFault injects a single benign fault under
// wandering schedules: the agreed diagnosis must stay consistent at every
// node and the fault must be detected (the staleness of individual voters is
// outvoted inside the fault margin).
func TestDynamicSchedulingBenignFault(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sides := []bool{true, false, true, true}
		pos := dynPosition(4, sides, seed)
		eng, runners, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides, pos)
		if err != nil {
			t.Fatal(err)
		}
		const faultRound = 10
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 3, 1)))
		detections := make(map[int]bool)
		var hvs []core.Syndrome
		for id := 1; id <= 4; id++ {
			id := id
			runners[id].OnOutput = func(out core.RoundOutput) {
				if out.ConsHV == nil || out.DiagnosedRound != faultRound {
					return
				}
				detections[id] = out.ConsHV[3] == core.Faulty
				hvs = append(hvs, out.ConsHV)
			}
		}
		if err := eng.RunRounds(24); err != nil {
			t.Fatal(err)
		}
		if len(hvs) != 4 {
			t.Fatalf("seed %d: %d health vectors for the fault round", seed, len(hvs))
		}
		for _, hv := range hvs[1:] {
			if !hv.Equal(hvs[0]) {
				t.Fatalf("seed %d: consistency violated under dynamic scheduling: %v vs %v", seed, hv, hvs[0])
			}
		}
		for id := 1; id <= 4; id++ {
			if !detections[id] {
				t.Fatalf("seed %d: node %d missed the fault", seed, id)
			}
		}
	}
}

func TestDynamicValidation(t *testing.T) {
	sides := []bool{true, true, true, true}
	if _, _, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides, nil); err == nil {
		t.Error("nil position function accepted")
	}
	if _, _, err := NewDynamicDiagnosticCluster(ClusterConfig{}, []bool{true}, func(id, round int) int { return 0 }); err == nil {
		t.Error("short sides accepted")
	}
	// The last slot's owner cannot run after its own slot.
	badSides := []bool{true, true, true, false}
	if _, _, err := NewDynamicDiagnosticCluster(ClusterConfig{}, badSides, func(id, round int) int { return 0 }); err == nil {
		t.Error("node N scheduled after its slot accepted")
	}
	// AllSendCurrRound with an after-slot node.
	mixed := []bool{true, false, true, true}
	if _, _, err := NewDynamicDiagnosticCluster(ClusterConfig{AllSendCurrRound: true, Ls: Staircase(4)},
		mixed, func(id, round int) int { return 0 }); err == nil {
		t.Error("AllSendCurrRound with after-slot node accepted")
	}
}

// TestDynamicSideCrossingRejected: a position that crosses the node's
// declared side of its sending slot must fail the round.
func TestDynamicSideCrossingRejected(t *testing.T) {
	sides := []bool{true, true, true, true}
	// Node 2 declared before-slot but positioned after it in round 3.
	pos := func(id, round int) int {
		if id == 2 && round == 3 {
			return 3
		}
		return 0
	}
	eng, _, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides, pos)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.RunRounds(6)
	if err == nil {
		t.Fatal("side-crossing dynamic position accepted")
	}
}

// TestDynamicEquivalentToPinnedStatic: with the read point pinned at round
// start, a dynamic cluster must produce bit-identical health vectors to a
// static cluster with the corresponding l=0 / after-slot schedule.
func TestDynamicEquivalentToPinnedStatic(t *testing.T) {
	sides := []bool{true, false, true, true}
	pos := dynPosition(4, sides, 11)
	dynEng, dynRunners, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides, pos)
	if err != nil {
		t.Fatal(err)
	}
	// Static reference: read point 0 for SCR nodes; after-slot nodes read
	// at their position... the pinned-snapshot semantics correspond to
	// l = 0 for every node, with node 2's write going out one round later.
	statEng, statRunners, err := NewDynamicDiagnosticCluster(ClusterConfig{}, sides,
		func(id, round int) int {
			if sides[id-1] {
				return 0
			}
			return id
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{dynEng, statEng} {
		e.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(e.Schedule(), 8, 3, 1)))
	}
	for k := 0; k < 20; k++ {
		if err := dynEng.RunRound(); err != nil {
			t.Fatal(err)
		}
		if err := statEng.RunRound(); err != nil {
			t.Fatal(err)
		}
		for id := 1; id <= 4; id++ {
			d, s := dynRunners[id].Last(), statRunners[id].Last()
			if (d.ConsHV == nil) != (s.ConsHV == nil) {
				t.Fatalf("round %d node %d: warm-up divergence", k, id)
			}
			if d.ConsHV != nil && !d.ConsHV.Equal(s.ConsHV) {
				t.Fatalf("round %d node %d: dynamic %v != static %v", k, id, d.ConsHV, s.ConsHV)
			}
		}
	}
}

func TestProtocolDynamicConfig(t *testing.T) {
	// Dynamic mode skips the L/SendCurrRound consistency check.
	p, err := core.NewProtocol(core.Config{
		N: 4, ID: 2, L: 0, SendCurrRound: false, Dynamic: true,
		PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := core.RoundInput{
		Round:    0,
		DMs:      make([]core.Syndrome, 5),
		Validity: core.NewSyndrome(4, core.Healthy),
	}
	if _, err := p.Step(in); err != nil {
		t.Fatalf("dynamic step failed: %v", err)
	}
	// Static mode still enforces the consistency check.
	if _, err := core.NewProtocol(core.Config{
		N: 4, ID: 2, L: 0, SendCurrRound: false,
		PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
	}); err == nil {
		t.Fatal("static config with inconsistent L accepted")
	}
}
