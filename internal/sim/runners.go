package sim

import (
	"fmt"
	"math/bits"

	"ttdiag/internal/core"
	"ttdiag/internal/membership"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

// inputScratch is a runner-owned reusable backing for core.RoundInput: the
// DM slice, the per-sender decode targets, the validity vector and the
// collision-detector closure are allocated once and overwritten every round
// (the protocol copies its inputs in, so reuse after Step is safe).
type inputScratch struct {
	dms      []core.Syndrome // n+1; entry j aliases rows[j] or is nil (ε)
	rows     []core.Syndrome // n+1 preallocated decode destinations
	validity core.Syndrome
	// prows is the packed-path equivalent of rows: per-sender two-word
	// syndromes fed to core.Protocol.StepPacked.
	prows []core.BitSyndrome
	// collision is cached per controller so the hot path does not allocate
	// a fresh closure every round.
	collision core.CollisionFn
	ctrl      *tdma.Controller
}

// bindCollision (re)caches the collision-detector closure for ctrl.
func (sc *inputScratch) bindCollision(ctrl *tdma.Controller) {
	if sc.ctrl == ctrl {
		return
	}
	sc.ctrl = ctrl
	sc.collision = func(r int) core.Opinion {
		if collided, ok := ctrl.Collision(r); ok && collided {
			return core.Faulty
		}
		return core.Healthy
	}
}

// build converts interface-variable values and validity bits (from a live
// read or a stored round-start snapshot) into the protocol's round input:
// decoded diagnostic messages (nil = ε for invalid or undecodable payloads),
// the validity-bit vector, and the collision-detector query. The returned
// input aliases the scratch and is valid until the next build; values and
// valid stay caller-owned (typically controller scratch) and are only read.
//
//ttdiag:noretain
func (sc *inputScratch) build(round, n int, values [][]byte, valid []bool, ctrl *tdma.Controller) core.RoundInput {
	if sc.dms == nil {
		sc.dms = make([]core.Syndrome, n+1)
		sc.rows = make([]core.Syndrome, n+1)
		for j := 1; j <= n; j++ {
			sc.rows[j] = core.NewSyndrome(n, core.Faulty)
		}
		sc.validity = core.NewSyndrome(n, core.Healthy)
	}
	sc.bindCollision(ctrl)
	in := core.RoundInput{
		Round:     round,
		DMs:       sc.dms,
		Validity:  sc.validity,
		Collision: sc.collision,
	}
	for j := 1; j <= n; j++ {
		in.DMs[j] = nil
		if !valid[j] {
			in.Validity[j] = core.Faulty
			continue
		}
		in.Validity[j] = core.Healthy
		if err := core.DecodeSyndromeInto(sc.rows[j], values[j]); err != nil {
			// A syntactically wrong payload is locally detectable.
			in.Validity[j] = core.Faulty
			continue
		}
		in.DMs[j] = sc.rows[j]
	}
	return in
}

// buildRoundInput converts the controller's live interface state into the
// protocol's round input (a scratch-aliasing view, like build's).
//
//ttdiag:noretain
func (sc *inputScratch) buildRoundInput(round, n int, ctrl *tdma.Controller) core.RoundInput {
	values, valid := ctrl.ReadAll()
	return sc.build(round, n, values, valid, ctrl)
}

// buildPacked is build for the bit-packed hot path (N <= core.MaxPackedN):
// the validity bits arrive as a mask, each valid payload is word-loaded
// straight into planes, and an undecodable payload drops out of both the
// presence and validity masks — exactly the ε + invalid outcome of the
// scalar build. The returned input aliases sc.prows (the protocol copies
// rows in, so reuse after the step is safe).
//
//ttdiag:noretain
func (sc *inputScratch) buildPacked(round, n int, values [][]byte, validMask uint64, ctrl *tdma.Controller) core.PackedRoundInput {
	if sc.prows == nil {
		sc.prows = make([]core.BitSyndrome, n+1)
	}
	sc.bindCollision(ctrl)
	all := core.PlaneMask(n)
	var present uint64
	for rem := validMask & all; rem != 0; rem &= rem - 1 {
		j := bits.TrailingZeros64(rem) + 1
		row, err := core.BitSyndromeFromWire(values[j], n)
		if err != nil {
			// A syntactically wrong payload is locally detectable.
			continue
		}
		sc.prows[j] = row
		present |= rem & -rem
	}
	return core.PackedRoundInput{
		Round:     round,
		Rows:      sc.prows,
		Present:   present,
		Validity:  core.BitSyndrome{Op: present, Known: all},
		Collision: sc.collision,
	}
}

// applyActivity propagates the protocol's activity vector into the node's
// controller: traffic from isolated nodes is ignored, reintegrated nodes are
// heard again. When the reintegration extension is enabled (observe), the
// controller keeps listening to isolated nodes so that their fault-free
// behaviour can be observed and rewarded; the activity vector still tells
// the applications the node is down.
func applyActivity(ctrl *tdma.Controller, active []bool, observe bool) {
	for j := 1; j < len(active); j++ {
		ctrl.SetIgnored(tdma.NodeID(j), !active[j] && !observe)
	}
}

// activityCache elides the per-node SetIgnored sweep on the packed path when
// the activity mask did not change since the last application — the common
// case of every steady-state round. Skipping is sound because SetIgnored is
// idempotent: an already-ignored sender keeps being dropped by ApplyDelivery
// without re-marking, and an already-heard sender needs no unmarking.
type activityCache struct {
	ctrl *tdma.Controller
	mask uint64
	have bool
}

func (c *activityCache) reset() { c.have = false }

func (c *activityCache) apply(ctrl *tdma.Controller, out core.RoundOutput, packed, observe bool) {
	if packed && c.have && c.ctrl == ctrl && c.mask == out.ActiveMask {
		return
	}
	applyActivity(ctrl, out.Active, observe)
	c.ctrl, c.mask, c.have = ctrl, out.ActiveMask, packed
}

// DiagRunner adapts a core.Protocol to the engine: it snapshots the
// controller, steps the protocol, applies isolation decisions to the
// controller, and stages the dissemination payload.
type DiagRunner struct {
	proto   *core.Protocol
	last    core.RoundOutput
	scratch inputScratch
	act     activityCache
	// OnOutput, when set, observes every round output (used by collectors).
	OnOutput func(core.RoundOutput)

	// Round-start interface snapshot, captured by the engine for
	// dynamically scheduled nodes (core.Config.Dynamic). The value buffers
	// are runner-owned and reused across rounds.
	snapRound     int
	snapValues    [][]byte
	snapValid     []bool
	snapValidMask uint64
	haveSnap      bool
}

// CaptureSnapshot implements SnapshotTaker: it pins the node's read point to
// round start, which is what makes dynamic execution times sound (see
// core.Config.Dynamic).
func (r *DiagRunner) CaptureSnapshot(round int, ctrl *tdma.Controller) {
	if !r.proto.Config().Dynamic {
		return
	}
	values, valid := ctrl.ReadAll()
	n := r.proto.Config().N
	if r.snapValues == nil {
		r.snapValues = make([][]byte, n+1)
		r.snapValid = make([]bool, n+1)
	}
	for j := 1; j <= n; j++ {
		r.snapValues[j] = append(r.snapValues[j][:0], values[j]...)
		r.snapValid[j] = valid[j]
	}
	r.snapValidMask = ctrl.ValidMask()
	r.snapRound = round
	r.haveSnap = true
}

// ResetForRun returns the runner (and its protocol) to the freshly
// constructed state so one instance can be reused across campaign
// repetitions: the protocol restarts its warm-up, the last output and the
// dynamic-scheduling snapshot are dropped, and any OnOutput observer is
// detached (campaign loops attach a fresh collector per repetition).
func (r *DiagRunner) ResetForRun() {
	r.proto.Reset()
	r.last = core.RoundOutput{}
	r.OnOutput = nil
	r.haveSnap = false
	r.act.reset()
}

// ResetConfig is ResetForRun with a configuration swap (same N), used when a
// reused cluster changes per-repetition parameters such as the internal
// schedule position L.
func (r *DiagRunner) ResetConfig(cfg core.Config) error {
	if err := r.proto.ResetConfig(cfg); err != nil {
		return err
	}
	r.last = core.RoundOutput{}
	r.OnOutput = nil
	r.haveSnap = false
	r.act.reset()
	return nil
}

var _ Runner = (*DiagRunner)(nil)

// NewDiagRunner builds the runner and its protocol instance.
func NewDiagRunner(cfg core.Config) (*DiagRunner, error) {
	return newDiagRunner(cfg, false)
}

// NewScalarDiagRunner is NewDiagRunner pinned to the scalar reference
// representation (see ClusterConfig.ForceScalar); the divergence bisector
// runs packed and scalar variants of the same cluster side by side with it.
func NewScalarDiagRunner(cfg core.Config) (*DiagRunner, error) {
	return newDiagRunner(cfg, true)
}

func newDiagRunner(cfg core.Config, forceScalar bool) (*DiagRunner, error) {
	build := core.NewProtocol
	if forceScalar {
		build = core.NewScalarProtocol
	}
	proto, err := build(cfg)
	if err != nil {
		return nil, err
	}
	return &DiagRunner{proto: proto}, nil
}

// Protocol returns the wrapped protocol.
func (r *DiagRunner) Protocol() *core.Protocol { return r.proto }

// Last returns the most recent round output.
func (r *DiagRunner) Last() core.RoundOutput { return r.last }

// Run implements Runner. Within the packed bound it feeds the protocol
// plane-form inputs straight off the controller's validity mask — no
// []Opinion or []bool materialisation on the hot path.
func (r *DiagRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	cfg := r.proto.Config()
	dynamic := cfg.Dynamic
	if dynamic && (!r.haveSnap || r.snapRound != round) {
		return nil, fmt.Errorf("sim: node %d: dynamic protocol without a round-%d snapshot", cfg.ID, round)
	}
	var out core.RoundOutput
	var err error
	if r.proto.Packed() {
		var in core.PackedRoundInput
		if dynamic {
			in = r.scratch.buildPacked(round, cfg.N, r.snapValues, r.snapValidMask, ctrl)
		} else {
			values, _ := ctrl.ReadAll()
			in = r.scratch.buildPacked(round, cfg.N, values, ctrl.ValidMask(), ctrl)
		}
		out, err = r.proto.StepPacked(in)
	} else {
		var in core.RoundInput
		if dynamic {
			in = r.scratch.build(round, cfg.N, r.snapValues, r.snapValid, ctrl)
		} else {
			in = r.scratch.buildRoundInput(round, cfg.N, ctrl)
		}
		out, err = r.proto.Step(in)
	}
	if err != nil {
		return nil, err
	}
	r.act.apply(ctrl, out, r.proto.Packed(), cfg.PR.ReintegrationThreshold > 0)
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Send, nil
}

// MembershipRunner adapts a membership.Service to the engine.
type MembershipRunner struct {
	svc     *membership.Service
	last    membership.Output
	scratch inputScratch
	act     activityCache
	// OnOutput, when set, observes every round output.
	OnOutput func(membership.Output)
	// sink, when set, receives a KindViewChange causal event whenever a new
	// view is installed. The cluster builders wire it for node 1 only (view
	// synchrony makes every obedient node's transitions identical, so one
	// observer suffices); like the engine sink it is cluster wiring, not a
	// per-run observer, and survives ResetForRun.
	sink trace.Sink
}

// ResetForRun returns the runner (and its membership service) to the freshly
// constructed state so one instance can be reused across campaign
// repetitions; any OnOutput observer is detached.
func (r *MembershipRunner) ResetForRun() {
	r.svc.Reset()
	r.last = membership.Output{}
	r.OnOutput = nil
	r.act.reset()
}

var _ Runner = (*MembershipRunner)(nil)

// NewMembershipRunner builds the runner and its membership service.
func NewMembershipRunner(cfg core.Config) (*MembershipRunner, error) {
	svc, err := membership.New(cfg)
	if err != nil {
		return nil, err
	}
	return &MembershipRunner{svc: svc}, nil
}

// NewScalarMembershipRunner is NewMembershipRunner pinned to the scalar
// reference representation (see ClusterConfig.ForceScalar).
func NewScalarMembershipRunner(cfg core.Config) (*MembershipRunner, error) {
	svc, err := membership.NewScalar(cfg)
	if err != nil {
		return nil, err
	}
	return &MembershipRunner{svc: svc}, nil
}

// Service returns the wrapped membership service.
func (r *MembershipRunner) Service() *membership.Service { return r.svc }

// Last returns the most recent round output.
func (r *MembershipRunner) Last() membership.Output { return r.last }

// View returns the node's current membership view.
func (r *MembershipRunner) View() membership.View { return r.svc.View() }

// Run implements Runner; like DiagRunner.Run it stays in plane form within
// the packed bound.
func (r *MembershipRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	proto := r.svc.Protocol()
	cfg := proto.Config()
	var out membership.Output
	var err error
	if proto.Packed() {
		values, _ := ctrl.ReadAll()
		out, err = r.svc.StepPacked(r.scratch.buildPacked(round, cfg.N, values, ctrl.ValidMask(), ctrl))
	} else {
		out, err = r.svc.Step(r.scratch.buildRoundInput(round, cfg.N, ctrl))
	}
	if err != nil {
		return nil, err
	}
	r.act.apply(ctrl, out.Diag, proto.Packed(), cfg.PR.ReintegrationThreshold > 0)
	if r.sink != nil && out.ViewChanged {
		r.sink.Record(trace.Event{
			Round:  round,
			Kind:   trace.KindViewChange,
			Node:   cfg.ID,
			Detail: fmt.Sprintf("view %d installed (%d members)", out.View.ID, len(out.View.Members)),
		})
	}
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Diag.Send, nil
}
