package sim

import (
	"fmt"

	"ttdiag/internal/core"
	"ttdiag/internal/membership"
	"ttdiag/internal/tdma"
)

// inputScratch is a runner-owned reusable backing for core.RoundInput: the
// DM slice, the per-sender decode targets, the validity vector and the
// collision-detector closure are allocated once and overwritten every round
// (the protocol copies its inputs in, so reuse after Step is safe).
type inputScratch struct {
	dms      []core.Syndrome // n+1; entry j aliases rows[j] or is nil (ε)
	rows     []core.Syndrome // n+1 preallocated decode destinations
	validity core.Syndrome
	// collision is cached per controller so the hot path does not allocate
	// a fresh closure every round.
	collision core.CollisionFn
	ctrl      *tdma.Controller
}

// build converts interface-variable values and validity bits (from a live
// read or a stored round-start snapshot) into the protocol's round input:
// decoded diagnostic messages (nil = ε for invalid or undecodable payloads),
// the validity-bit vector, and the collision-detector query. The returned
// input aliases the scratch and is valid until the next build.
func (sc *inputScratch) build(round, n int, values [][]byte, valid []bool, ctrl *tdma.Controller) core.RoundInput {
	if sc.dms == nil {
		sc.dms = make([]core.Syndrome, n+1)
		sc.rows = make([]core.Syndrome, n+1)
		for j := 1; j <= n; j++ {
			sc.rows[j] = core.NewSyndrome(n, core.Faulty)
		}
		sc.validity = core.NewSyndrome(n, core.Healthy)
	}
	if sc.ctrl != ctrl {
		sc.ctrl = ctrl
		sc.collision = func(r int) core.Opinion {
			if collided, ok := ctrl.Collision(r); ok && collided {
				return core.Faulty
			}
			return core.Healthy
		}
	}
	in := core.RoundInput{
		Round:     round,
		DMs:       sc.dms,
		Validity:  sc.validity,
		Collision: sc.collision,
	}
	for j := 1; j <= n; j++ {
		in.DMs[j] = nil
		if !valid[j] {
			in.Validity[j] = core.Faulty
			continue
		}
		in.Validity[j] = core.Healthy
		if err := core.DecodeSyndromeInto(sc.rows[j], values[j]); err != nil {
			// A syntactically wrong payload is locally detectable.
			in.Validity[j] = core.Faulty
			continue
		}
		in.DMs[j] = sc.rows[j]
	}
	return in
}

// buildRoundInput converts the controller's live interface state into the
// protocol's round input.
func (sc *inputScratch) buildRoundInput(round, n int, ctrl *tdma.Controller) core.RoundInput {
	values, valid := ctrl.ReadAll()
	return sc.build(round, n, values, valid, ctrl)
}

// applyActivity propagates the protocol's activity vector into the node's
// controller: traffic from isolated nodes is ignored, reintegrated nodes are
// heard again. When the reintegration extension is enabled (observe), the
// controller keeps listening to isolated nodes so that their fault-free
// behaviour can be observed and rewarded; the activity vector still tells
// the applications the node is down.
func applyActivity(ctrl *tdma.Controller, active []bool, observe bool) {
	for j := 1; j < len(active); j++ {
		ctrl.SetIgnored(tdma.NodeID(j), !active[j] && !observe)
	}
}

// DiagRunner adapts a core.Protocol to the engine: it snapshots the
// controller, steps the protocol, applies isolation decisions to the
// controller, and stages the dissemination payload.
type DiagRunner struct {
	proto   *core.Protocol
	last    core.RoundOutput
	scratch inputScratch
	// OnOutput, when set, observes every round output (used by collectors).
	OnOutput func(core.RoundOutput)

	// Round-start interface snapshot, captured by the engine for
	// dynamically scheduled nodes (core.Config.Dynamic). The value buffers
	// are runner-owned and reused across rounds.
	snapRound  int
	snapValues [][]byte
	snapValid  []bool
	haveSnap   bool
}

// CaptureSnapshot implements SnapshotTaker: it pins the node's read point to
// round start, which is what makes dynamic execution times sound (see
// core.Config.Dynamic).
func (r *DiagRunner) CaptureSnapshot(round int, ctrl *tdma.Controller) {
	if !r.proto.Config().Dynamic {
		return
	}
	values, valid := ctrl.ReadAll()
	n := r.proto.Config().N
	if r.snapValues == nil {
		r.snapValues = make([][]byte, n+1)
		r.snapValid = make([]bool, n+1)
	}
	for j := 1; j <= n; j++ {
		r.snapValues[j] = append(r.snapValues[j][:0], values[j]...)
		r.snapValid[j] = valid[j]
	}
	r.snapRound = round
	r.haveSnap = true
}

// ResetForRun returns the runner (and its protocol) to the freshly
// constructed state so one instance can be reused across campaign
// repetitions: the protocol restarts its warm-up, the last output and the
// dynamic-scheduling snapshot are dropped, and any OnOutput observer is
// detached (campaign loops attach a fresh collector per repetition).
func (r *DiagRunner) ResetForRun() {
	r.proto.Reset()
	r.last = core.RoundOutput{}
	r.OnOutput = nil
	r.haveSnap = false
}

// ResetConfig is ResetForRun with a configuration swap (same N), used when a
// reused cluster changes per-repetition parameters such as the internal
// schedule position L.
func (r *DiagRunner) ResetConfig(cfg core.Config) error {
	if err := r.proto.ResetConfig(cfg); err != nil {
		return err
	}
	r.last = core.RoundOutput{}
	r.OnOutput = nil
	r.haveSnap = false
	return nil
}

var _ Runner = (*DiagRunner)(nil)

// NewDiagRunner builds the runner and its protocol instance.
func NewDiagRunner(cfg core.Config) (*DiagRunner, error) {
	proto, err := core.NewProtocol(cfg)
	if err != nil {
		return nil, err
	}
	return &DiagRunner{proto: proto}, nil
}

// Protocol returns the wrapped protocol.
func (r *DiagRunner) Protocol() *core.Protocol { return r.proto }

// Last returns the most recent round output.
func (r *DiagRunner) Last() core.RoundOutput { return r.last }

// Run implements Runner.
func (r *DiagRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	var in core.RoundInput
	if r.proto.Config().Dynamic {
		if !r.haveSnap || r.snapRound != round {
			return nil, fmt.Errorf("sim: node %d: dynamic protocol without a round-%d snapshot", r.proto.Config().ID, round)
		}
		in = r.scratch.build(round, r.proto.Config().N, r.snapValues, r.snapValid, ctrl)
	} else {
		in = r.scratch.buildRoundInput(round, r.proto.Config().N, ctrl)
	}
	out, err := r.proto.Step(in)
	if err != nil {
		return nil, err
	}
	applyActivity(ctrl, out.Active, r.proto.Config().PR.ReintegrationThreshold > 0)
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Send, nil
}

// MembershipRunner adapts a membership.Service to the engine.
type MembershipRunner struct {
	svc     *membership.Service
	last    membership.Output
	scratch inputScratch
	// OnOutput, when set, observes every round output.
	OnOutput func(membership.Output)
}

// ResetForRun returns the runner (and its membership service) to the freshly
// constructed state so one instance can be reused across campaign
// repetitions; any OnOutput observer is detached.
func (r *MembershipRunner) ResetForRun() {
	r.svc.Reset()
	r.last = membership.Output{}
	r.OnOutput = nil
}

var _ Runner = (*MembershipRunner)(nil)

// NewMembershipRunner builds the runner and its membership service.
func NewMembershipRunner(cfg core.Config) (*MembershipRunner, error) {
	svc, err := membership.New(cfg)
	if err != nil {
		return nil, err
	}
	return &MembershipRunner{svc: svc}, nil
}

// Service returns the wrapped membership service.
func (r *MembershipRunner) Service() *membership.Service { return r.svc }

// Last returns the most recent round output.
func (r *MembershipRunner) Last() membership.Output { return r.last }

// View returns the node's current membership view.
func (r *MembershipRunner) View() membership.View { return r.svc.View() }

// Run implements Runner.
func (r *MembershipRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	in := r.scratch.buildRoundInput(round, r.svc.Protocol().Config().N, ctrl)
	out, err := r.svc.Step(in)
	if err != nil {
		return nil, err
	}
	applyActivity(ctrl, out.Diag.Active, r.svc.Protocol().Config().PR.ReintegrationThreshold > 0)
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Diag.Send, nil
}
