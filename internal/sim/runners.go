package sim

import (
	"fmt"

	"ttdiag/internal/core"
	"ttdiag/internal/membership"
	"ttdiag/internal/tdma"
)

// buildRoundInput converts a live controller snapshot into the protocol's
// round input.
func buildRoundInput(round, n int, ctrl *tdma.Controller) core.RoundInput {
	values, valid := ctrl.Snapshot()
	return buildInput(round, n, values, valid, ctrl)
}

// buildInput converts interface-variable values and validity bits (from a
// live read or a stored round-start snapshot) into the protocol's round
// input: decoded diagnostic messages (nil = ε for invalid or undecodable
// payloads), the validity-bit vector, and the collision-detector query.
func buildInput(round, n int, values [][]byte, valid []bool, ctrl *tdma.Controller) core.RoundInput {
	in := core.RoundInput{
		Round:    round,
		DMs:      make([]core.Syndrome, n+1),
		Validity: core.NewSyndrome(n, core.Healthy),
	}
	for j := 1; j <= n; j++ {
		if !valid[j] {
			in.Validity[j] = core.Faulty
			continue
		}
		s, err := core.DecodeSyndrome(values[j], n)
		if err != nil {
			// A syntactically wrong payload is locally detectable.
			in.Validity[j] = core.Faulty
			continue
		}
		in.DMs[j] = s
	}
	in.Collision = func(r int) core.Opinion {
		if collided, ok := ctrl.Collision(r); ok && collided {
			return core.Faulty
		}
		return core.Healthy
	}
	return in
}

// applyActivity propagates the protocol's activity vector into the node's
// controller: traffic from isolated nodes is ignored, reintegrated nodes are
// heard again. When the reintegration extension is enabled (observe), the
// controller keeps listening to isolated nodes so that their fault-free
// behaviour can be observed and rewarded; the activity vector still tells
// the applications the node is down.
func applyActivity(ctrl *tdma.Controller, active []bool, observe bool) {
	for j := 1; j < len(active); j++ {
		ctrl.SetIgnored(tdma.NodeID(j), !active[j] && !observe)
	}
}

// DiagRunner adapts a core.Protocol to the engine: it snapshots the
// controller, steps the protocol, applies isolation decisions to the
// controller, and stages the dissemination payload.
type DiagRunner struct {
	proto *core.Protocol
	last  core.RoundOutput
	// OnOutput, when set, observes every round output (used by collectors).
	OnOutput func(core.RoundOutput)

	// Round-start interface snapshot, captured by the engine for
	// dynamically scheduled nodes (core.Config.Dynamic).
	snapRound  int
	snapValues [][]byte
	snapValid  []bool
	haveSnap   bool
}

// CaptureSnapshot implements SnapshotTaker: it pins the node's read point to
// round start, which is what makes dynamic execution times sound (see
// core.Config.Dynamic).
func (r *DiagRunner) CaptureSnapshot(round int, ctrl *tdma.Controller) {
	if !r.proto.Config().Dynamic {
		return
	}
	r.snapValues, r.snapValid = ctrl.Snapshot()
	r.snapRound = round
	r.haveSnap = true
}

var _ Runner = (*DiagRunner)(nil)

// NewDiagRunner builds the runner and its protocol instance.
func NewDiagRunner(cfg core.Config) (*DiagRunner, error) {
	proto, err := core.NewProtocol(cfg)
	if err != nil {
		return nil, err
	}
	return &DiagRunner{proto: proto}, nil
}

// Protocol returns the wrapped protocol.
func (r *DiagRunner) Protocol() *core.Protocol { return r.proto }

// Last returns the most recent round output.
func (r *DiagRunner) Last() core.RoundOutput { return r.last }

// Run implements Runner.
func (r *DiagRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	var in core.RoundInput
	if r.proto.Config().Dynamic {
		if !r.haveSnap || r.snapRound != round {
			return nil, fmt.Errorf("sim: node %d: dynamic protocol without a round-%d snapshot", r.proto.Config().ID, round)
		}
		in = buildInput(round, r.proto.Config().N, r.snapValues, r.snapValid, ctrl)
	} else {
		in = buildRoundInput(round, r.proto.Config().N, ctrl)
	}
	out, err := r.proto.Step(in)
	if err != nil {
		return nil, err
	}
	applyActivity(ctrl, out.Active, r.proto.Config().PR.ReintegrationThreshold > 0)
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Send, nil
}

// MembershipRunner adapts a membership.Service to the engine.
type MembershipRunner struct {
	svc  *membership.Service
	last membership.Output
	// OnOutput, when set, observes every round output.
	OnOutput func(membership.Output)
}

var _ Runner = (*MembershipRunner)(nil)

// NewMembershipRunner builds the runner and its membership service.
func NewMembershipRunner(cfg core.Config) (*MembershipRunner, error) {
	svc, err := membership.New(cfg)
	if err != nil {
		return nil, err
	}
	return &MembershipRunner{svc: svc}, nil
}

// Service returns the wrapped membership service.
func (r *MembershipRunner) Service() *membership.Service { return r.svc }

// Last returns the most recent round output.
func (r *MembershipRunner) Last() membership.Output { return r.last }

// View returns the node's current membership view.
func (r *MembershipRunner) View() membership.View { return r.svc.View() }

// Run implements Runner.
func (r *MembershipRunner) Run(round int, ctrl *tdma.Controller) ([]byte, error) {
	in := buildRoundInput(round, r.svc.Protocol().Config().N, ctrl)
	out, err := r.svc.Step(in)
	if err != nil {
		return nil, err
	}
	applyActivity(ctrl, out.Diag.Active, r.svc.Protocol().Config().PR.ReintegrationThreshold > 0)
	r.last = out
	if r.OnOutput != nil {
		r.OnOutput(out)
	}
	return out.Diag.Send, nil
}
