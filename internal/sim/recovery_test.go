package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/recovery"
)

// TestFDIRLoopConsistentModeSwitches closes the FDIR loop on the full stack:
// a recovery manager on every node consumes the activity vectors the
// diagnostic protocol produces. A crash must switch every manager to the
// identical degraded mode in the identical round, and the reintegration
// extension must switch them all back.
func TestFDIRLoopConsistentModeSwitches(t *testing.T) {
	plan, err := recovery.NewPlan(4, []recovery.Job{
		{Name: "steer", Criticality: 40, Hosts: []int{3, 1}},
		{Name: "brake", Criticality: 40, Hosts: []int{2, 4}},
		{Name: "doors", Criticality: 1, Hosts: []int{4}, Degradable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 10, ReintegrationThreshold: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	managers := make([]*recovery.Manager, 5)
	switchRounds := make([][]int, 5)
	for id := 1; id <= 4; id++ {
		id := id
		managers[id] = recovery.NewManager(plan)
		runners[id].OnOutput = func(out core.RoundOutput) {
			changed, err := managers[id].Observe(out.Active)
			if err != nil {
				t.Error(err)
				return
			}
			if changed {
				switchRounds[id] = append(switchRounds[id], out.Round)
			}
		}
	}
	// Node 3 (steer primary) suffers a 6-round transient, is isolated, then
	// recovers and is reintegrated.
	var bursts []fault.Burst
	for r := 8; r < 14; r++ {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := eng.RunRounds(40); err != nil {
		t.Fatal(err)
	}
	// Every manager: initial mode, degraded mode, nominal mode = 3 changes.
	for id := 1; id <= 4; id++ {
		if got := len(switchRounds[id]); got != 3 {
			t.Fatalf("node %d saw %d mode changes (%v), want 3", id, got, switchRounds[id])
		}
		for i, r := range switchRounds[id] {
			if r != switchRounds[1][i] {
				t.Fatalf("mode-switch rounds disagree: node %d %v vs node 1 %v",
					id, switchRounds[id], switchRounds[1])
			}
		}
		if managers[id].Switches() != 2 {
			t.Fatalf("node %d counted %d switches, want 2", id, managers[id].Switches())
		}
		if got := managers[id].HostOf("steer"); got != 3 {
			t.Fatalf("node %d: steer back on node %d, want 3 after reintegration", id, got)
		}
	}
	// During the degraded window the steer job ran on the backup.
	mode, err := plan.ModeFor([]bool{false, true, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if mode.Jobs["steer"] != 1 {
		t.Fatalf("degraded steer host = %d, want 1", mode.Jobs["steer"])
	}
}
