package sim

import (
	"fmt"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// verdictLog gathers the verdict streams of all nodes, keyed by diagnosed
// (round, node).
type verdictLog struct {
	byKey map[[2]int]map[int]core.Opinion // (round,node) -> observer -> health
}

func hookVerdicts(runners []*LowLatRunner) *verdictLog {
	vl := &verdictLog{byKey: make(map[[2]int]map[int]core.Opinion)}
	for id := 1; id < len(runners); id++ {
		id := id
		runners[id].OnVerdict = func(v lowlat.Verdict) {
			key := [2]int{v.Round, v.Node}
			if vl.byKey[key] == nil {
				vl.byKey[key] = make(map[int]core.Opinion)
			}
			vl.byKey[key][id] = v.Health
		}
	}
	return vl
}

// agreed asserts all observers agree on the verdict for (round, node) and
// returns it.
func (vl *verdictLog) agreed(t *testing.T, round, node int, observers []int) core.Opinion {
	t.Helper()
	byObs := vl.byKey[[2]int{round, node}]
	if byObs == nil {
		t.Fatalf("no verdicts for (%d,%d)", round, node)
	}
	var ref core.Opinion
	for i, obs := range observers {
		h, ok := byObs[obs]
		if !ok {
			t.Fatalf("observer %d has no verdict for (%d,%d)", obs, round, node)
		}
		if i == 0 {
			ref = h
			continue
		}
		if h != ref {
			t.Fatalf("verdicts for (%d,%d) disagree: %v", round, node, byObs)
		}
	}
	return ref
}

func TestLowLatFaultFree(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vl := hookVerdicts(runners)
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	for round := 1; round < 10; round++ {
		for node := 1; node <= 4; node++ {
			if got := vl.agreed(t, round, node, obedientAll(4)); got != core.Healthy {
				t.Fatalf("fault-free slot (%d,%d) diagnosed %v", round, node, got)
			}
		}
	}
}

func TestLowLatBenignFaultOneRoundLatency(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vl := hookVerdicts(runners)
	// Track the round in which each node DECIDES the verdict for the faulty
	// slot (3, 6).
	decidedRound := make(map[int]int)
	for id := 1; id <= 4; id++ {
		id := id
		prev := runners[id].OnVerdict
		runners[id].OnVerdict = func(v lowlat.Verdict) {
			prev(v)
			if v.Round == 6 && v.Node == 3 {
				decidedRound[id] = eng.Round()
			}
		}
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 3, 1)))
	if err := eng.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	if got := vl.agreed(t, 6, 3, obedientAll(4)); got != core.Faulty {
		t.Fatalf("faulty slot diagnosed %v", got)
	}
	for id := 1; id <= 4; id++ {
		if decidedRound[id] != 7 {
			t.Fatalf("node %d decided slot (6,3) during round %d, want 7 (one-round latency)",
				id, decidedRound[id])
		}
	}
	// Neighbouring slots stay healthy (correctness).
	for _, node := range []int{1, 2, 4} {
		if got := vl.agreed(t, 6, node, obedientAll(4)); got != core.Healthy {
			t.Fatalf("node %d wrongly diagnosed %v", node, got)
		}
	}
}

func TestLowLatBlackoutSelfDiagnosis(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vl := hookVerdicts(runners)
	eng.Bus().AddDisturbance(fault.NewTrain(fault.Blackout(eng.Schedule(), 6, 2)))
	if err := eng.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	for _, round := range []int{6, 7} {
		for node := 1; node <= 4; node++ {
			if got := vl.agreed(t, round, node, obedientAll(4)); got != core.Faulty {
				t.Fatalf("blackout slot (%d,%d) diagnosed %v", round, node, got)
			}
		}
	}
	for node := 1; node <= 4; node++ {
		if got := vl.agreed(t, 9, node, obedientAll(4)); got != core.Healthy {
			t.Fatalf("post-blackout slot (9,%d) diagnosed %v", node, got)
		}
	}
}

func TestLowLatMaliciousTolerance(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vl := hookVerdicts(runners)
	eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(2, rng.NewSource(5).Stream("mal")))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	obedient := []int{1, 3, 4}
	for round := 1; round < 18; round++ {
		for node := 1; node <= 4; node++ {
			if got := vl.agreed(t, round, node, obedient); got != core.Healthy {
				t.Fatalf("malicious syndromes induced conviction of (%d,%d)", round, node)
			}
		}
	}
}

// TestLowLatMembershipTwoRounds checks the Sec. 10 claim that the
// constrained variant provides membership within two rounds: an asymmetric
// fault at round 8 leads every obedient node to exclude the minority node
// no later than diagnosed round 10.
func TestLowLatMembershipTwoRounds(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{Mode: core.ModeMembership})
	if err != nil {
		t.Fatal(err)
	}
	const faultRound = 8
	eng.Bus().AddDisturbance(fault.ReceiverBlind{
		Receiver: 1, Senders: []tdma.NodeID{3},
		FromRound: faultRound, ToRound: faultRound + 1,
	})
	if err := eng.RunRounds(24); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		v := runners[id].Node().View()
		if got := fmt.Sprint(v.Members); got != "[2 3 4]" {
			t.Fatalf("node %d view = %v, want [2 3 4]", id, got)
		}
		if v.FormedAtRound > faultRound+2 {
			t.Fatalf("node %d view formed for diagnosed round %d, want <= %d (two-round membership)",
				id, v.FormedAtRound, faultRound+2)
		}
		if v.ID != runners[1].Node().View().ID {
			t.Fatalf("view IDs disagree")
		}
	}
}

func TestLowLatIsolationAgreement(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{
		PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	isoRound := make(map[int]int)
	for id := 1; id <= 4; id++ {
		id := id
		runners[id].OnVerdict = func(v lowlat.Verdict) {
			if v.Isolated {
				if _, dup := isoRound[id]; dup {
					t.Errorf("node %d isolated twice", id)
				}
				isoRound[id] = v.Round
			}
		}
	}
	eng.Bus().AddDisturbance(fault.Crash(4, 8))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	if len(isoRound) != 4 {
		t.Fatalf("isolation decisions: %v, want all 4 nodes", isoRound)
	}
	for id, r := range isoRound {
		// P=3: the 4th faulty slot of node 4 is in round 11.
		if r != 11 {
			t.Fatalf("node %d isolated for diagnosed round %d, want 11", id, r)
		}
	}
	for id := 1; id <= 3; id++ {
		if !eng.Controller(tdma.NodeID(id)).Ignored(4) {
			t.Fatalf("node %d does not ignore the isolated node", id)
		}
	}
}

// TestLowLatLargerCluster runs the constrained variant at N=8.
func TestLowLatLargerCluster(t *testing.T) {
	eng, runners, err := NewLowLatCluster(ClusterConfig{N: 8, RoundLen: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	vl := hookVerdicts(runners)
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 5, 1)))
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	obedient := obedientAll(8)
	if got := vl.agreed(t, 6, 5, obedient); got != core.Faulty {
		t.Fatalf("faulty slot diagnosed %v", got)
	}
	for node := 1; node <= 8; node++ {
		if node == 5 {
			continue
		}
		if got := vl.agreed(t, 6, node, obedient); got != core.Healthy {
			t.Fatalf("node %d wrongly diagnosed", node)
		}
	}
}
