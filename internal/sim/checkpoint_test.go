package sim

import (
	"bytes"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
)

func checkpointTestCluster(t *testing.T) *DiagCluster {
	t.Helper()
	cl, err := NewReusableDiagnosticCluster(ClusterConfig{
		N:  4,
		PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 2, ReintegrationThreshold: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// clusterFingerprint serialises everything the checkpoint must preserve:
// every node's protocol snapshot, controller state, and the engine's
// ground-truth record up to the current round.
func clusterFingerprint(t *testing.T, c *DiagCluster) []byte {
	t.Helper()
	var buf bytes.Buffer
	for id := 1; id <= c.cfg.N; id++ {
		snap, err := c.Runners[id].Protocol().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(snap)
		ctrl := c.Eng.Controller(tdmaID(id))
		for j := 1; j <= c.cfg.N; j++ {
			v, ok := ctrl.ReadValue(tdmaID(j))
			buf.WriteByte(map[bool]byte{true: 1, false: 0}[ok])
			buf.WriteByte(map[bool]byte{true: 1, false: 0}[ctrl.Ignored(tdmaID(j))])
			buf.Write(v)
			buf.WriteByte(0xFF)
		}
		buf.Write(ctrl.Outbox())
	}
	for round := 0; round < c.Eng.Round(); round++ {
		for _, cls := range c.Eng.Truth(round) {
			buf.WriteByte(byte(cls))
		}
	}
	return buf.Bytes()
}

// TestClusterCheckpointRewind is the continuation property: a disturbed run
// captured mid-way, run to completion, rewound, and re-run must retrace the
// exact same trajectory — same per-round outputs, same final state, same
// ground truth — including the positions of attached rng streams.
func TestClusterCheckpointRewind(t *testing.T) {
	const captureAt, horizon = 10, 24
	cl := checkpointTestCluster(t)
	cl.Reset()
	// A stateless disturbance (pure function of the round) keeps the replay
	// honest: the same rounds see the same faults on both passes.
	cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(2, 3, 2, 20))

	src := rng.NewSource(55)
	scenario := src.Stream("scenario")
	ck, err := NewClusterCheckpoint(cl)
	if err != nil {
		t.Fatal(err)
	}
	ck.AttachStream(scenario)

	type roundRecord struct {
		sends  [5]string
		draws  uint64
		active [5]bool
	}
	record := func() roundRecord {
		var rec roundRecord
		for id := 1; id <= cl.cfg.N; id++ {
			out := cl.Runners[id].Last()
			rec.sends[id] = string(out.Send)
			for j := 1; j <= cl.cfg.N; j++ {
				rec.active[j] = out.Active[j]
			}
		}
		rec.draws = scenario.Uint64() // scenario randomness rides along
		return rec
	}

	var firstPass []roundRecord
	for round := 0; round < horizon; round++ {
		if round == captureAt {
			if err := ck.Capture(cl); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.Eng.RunRound(); err != nil {
			t.Fatal(err)
		}
		if round >= captureAt {
			firstPass = append(firstPass, record())
		}
	}
	finalWant := clusterFingerprint(t, cl)

	if err := ck.Restore(cl); err != nil {
		t.Fatal(err)
	}
	if got := cl.Eng.Round(); got != captureAt {
		t.Fatalf("restored round = %d, want %d", got, captureAt)
	}
	for i, want := range firstPass {
		if err := cl.Eng.RunRound(); err != nil {
			t.Fatal(err)
		}
		if got := record(); got != want {
			t.Fatalf("replayed round %d diverged:\n got %+v\nwant %+v", captureAt+i, got, want)
		}
	}
	if got := clusterFingerprint(t, cl); !bytes.Equal(got, finalWant) {
		t.Fatal("replayed run reached a different final state")
	}
}

// TestClusterCheckpointCrossCluster checks that a checkpoint captured from
// one cluster restores into a different (same-shape) cluster instance — the
// splitting workers restore shared entry checkpoints into their own private
// clusters.
func TestClusterCheckpointCrossCluster(t *testing.T) {
	const captureAt, horizon = 8, 20
	a := checkpointTestCluster(t)
	b := checkpointTestCluster(t)
	a.Reset()
	b.Reset()
	dist := fault.EveryKthRound(3, 2, 1, 15)
	a.Eng.Bus().AddDisturbance(dist)
	b.Eng.Bus().AddDisturbance(dist)

	ck, err := NewClusterCheckpoint(a)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < horizon; round++ {
		if round == captureAt {
			if err := ck.Capture(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Eng.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Restore(b); err != nil {
		t.Fatal(err)
	}
	for round := captureAt; round < horizon; round++ {
		if err := b.Eng.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := clusterFingerprint(t, b), clusterFingerprint(t, a); !bytes.Equal(got, want) {
		t.Fatal("cross-cluster restore diverged from the original run")
	}
}
