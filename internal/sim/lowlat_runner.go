package sim

import (
	"ttdiag/internal/core"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/tdma"
)

// LowLatRunner adapts a lowlat.Node to the engine: the per-round job (which
// must be scheduled at position id-1, right before the node's own slot)
// stages the rolling syndrome, and every completed slot is fed to the
// per-slot analysis pipeline.
type LowLatRunner struct {
	node *lowlat.Node
	// OnVerdict, when set, observes every decided per-slot verdict.
	OnVerdict func(lowlat.Verdict)
}

var (
	_ Runner       = (*LowLatRunner)(nil)
	_ SlotObserver = (*LowLatRunner)(nil)
)

// NewLowLatRunner builds the runner and its node state machine.
func NewLowLatRunner(cfg lowlat.Config) (*LowLatRunner, error) {
	node, err := lowlat.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	return &LowLatRunner{node: node}, nil
}

// Node returns the wrapped low-latency state machine.
func (r *LowLatRunner) Node() *lowlat.Node { return r.node }

// Run implements Runner: stage the current rolling syndrome.
func (r *LowLatRunner) Run(_ int, ctrl *tdma.Controller) ([]byte, error) {
	out := r.node.Outgoing().Encode()
	r.node.TickRound()
	applyActivity(ctrl, r.node.PenaltyReward().Active(),
		r.node.Config().PR.ReintegrationThreshold > 0)
	return out, nil
}

// OnSlotComplete implements SlotObserver: feed the slot observation to the
// analysis pipeline.
func (r *LowLatRunner) OnSlotComplete(round, slot int, ctrl *tdma.Controller) error {
	n := r.node.Config().N
	payload, valid := ctrl.ReadValue(tdma.NodeID(slot))
	var syn core.Syndrome
	if valid {
		s, err := core.DecodeSyndrome(payload, n)
		if err != nil {
			valid = false
		} else {
			syn = s
		}
	}
	in := lowlat.SlotInput{
		Round:   round,
		Slot:    slot,
		Valid:   valid,
		Payload: syn,
		Collision: func(r int) core.Opinion {
			if collided, ok := ctrl.Collision(r); ok && collided {
				return core.Faulty
			}
			return core.Healthy
		},
	}
	v, err := r.node.OnSlot(in)
	if err != nil {
		return err
	}
	if v != nil && r.OnVerdict != nil {
		r.OnVerdict(*v)
	}
	return nil
}

// NewLowLatCluster wires an engine with one LowLatRunner per node, using the
// constrained staircase schedule the variant requires.
func NewLowLatCluster(cfg ClusterConfig) (*Engine, []*LowLatRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*LowLatRunner, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		r, err := NewLowLatRunner(lowlat.Config{N: cfg.N, ID: id, Mode: cfg.Mode, PR: cfg.PR})
		if err != nil {
			return nil, nil, err
		}
		// The low-latency variant constrains the node schedule: the job
		// runs right before the node's own slot.
		if err := eng.AddNode(tdmaID(id), id-1, r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}
