package sim

import (
	"fmt"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/membership"
	"ttdiag/internal/tdma"
)

func newSchedule(cfg ClusterConfig) (*tdma.Schedule, error) {
	if len(cfg.SlotLens) > 0 {
		if len(cfg.SlotLens) != cfg.N {
			return nil, fmt.Errorf("sim: SlotLens has %d entries, want %d", len(cfg.SlotLens), cfg.N)
		}
		return tdma.NewCustomSchedule(cfg.SlotLens)
	}
	return tdma.NewSchedule(cfg.N, cfg.RoundLen)
}

func tdmaID(id int) tdma.NodeID { return tdma.NodeID(id) }

// Isolation records one isolation (or reintegration) decision.
type Isolation struct {
	// Observer is the node that took the decision.
	Observer int
	// Node is the isolated node.
	Node int
	// Round is the execution round of the decision.
	Round int
}

// Collector gathers per-round protocol outputs from a cluster for auditing
// and metric extraction. Install its hooks before running the engine.
type Collector struct {
	// ConsHV[diagnosedRound][observer] is the consistent health vector the
	// observer computed for that round. The outer slice covers rounds up to
	// the last diagnosed one; the inner slice is 1-based by observer and is
	// nil — or, on a reused collector, all-nil — for rounds nobody has
	// diagnosed (use RoundHVs for bounds-safe reads and check entries for
	// nil).
	ConsHV [][]core.Syndrome
	// Isolations and Reintegrations in decision order.
	Isolations     []Isolation
	Reintegrations []Isolation
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// Reset empties the collector for reuse in the next campaign repetition,
// keeping the recorded-round storage allocated. A reset collector is
// observationally identical to a fresh one.
func (c *Collector) Reset() {
	for _, byObs := range c.ConsHV {
		for j := range byObs {
			byObs[j] = nil
		}
	}
	c.ConsHV = c.ConsHV[:0]
	c.Isolations = c.Isolations[:0]
	c.Reintegrations = c.Reintegrations[:0]
}

// RoundHVs returns the health vectors recorded for a diagnosed round,
// indexed by observer (nil entries for observers that recorded nothing), or
// nil when no observer diagnosed the round.
func (c *Collector) RoundHVs(round int) []core.Syndrome {
	if round < 0 || round >= len(c.ConsHV) {
		return nil
	}
	return c.ConsHV[round]
}

// HookDiag installs the collector on a DiagRunner.
func (c *Collector) HookDiag(observer int, r *DiagRunner) {
	r.OnOutput = func(out core.RoundOutput) { c.record(observer, out) }
}

// HookMembership installs the collector on a MembershipRunner.
func (c *Collector) HookMembership(observer int, r *MembershipRunner) {
	r.OnOutput = func(out membership.Output) { c.record(observer, out.Diag) }
}

// setHV stores one observer's consistent health vector for a diagnosed
// round, growing the recorded-round storage as needed. Shared by the
// per-run hook path (record) and the lane-packed batch cluster.
func (c *Collector) setHV(d, observer int, hv core.Syndrome) {
	for len(c.ConsHV) <= d {
		if len(c.ConsHV) < cap(c.ConsHV) {
			// Re-extend over storage kept by Reset: the inner slice is
			// already allocated (and cleared), so reuse it.
			c.ConsHV = c.ConsHV[:len(c.ConsHV)+1]
		} else {
			c.ConsHV = append(c.ConsHV, nil)
		}
	}
	if len(c.ConsHV[d]) != len(hv) {
		c.ConsHV[d] = make([]core.Syndrome, len(hv))
	}
	c.ConsHV[d][observer] = hv
}

func (c *Collector) record(observer int, out core.RoundOutput) {
	if out.ConsHV != nil {
		c.setHV(out.DiagnosedRound, observer, out.ConsHV)
	}
	for _, j := range out.Isolated {
		c.Isolations = append(c.Isolations, Isolation{Observer: observer, Node: j, Round: out.Round})
	}
	for _, j := range out.Reintegrated {
		c.Reintegrations = append(c.Reintegrations, Isolation{Observer: observer, Node: j, Round: out.Round})
	}
}

// FirstIsolation returns the earliest round in which any observer isolated
// the given node, or -1.
func (c *Collector) FirstIsolation(nodeID int) int {
	first := -1
	for _, iso := range c.Isolations {
		if iso.Node != nodeID {
			continue
		}
		if first == -1 || iso.Round < first {
			first = iso.Round
		}
	}
	return first
}

// FirstIsolationTime converts FirstIsolation into simulated time using the
// engine's schedule (the start of the decision round), or -1 if never.
func (c *Collector) FirstIsolationTime(nodeID int, sched *tdma.Schedule) time.Duration {
	round := c.FirstIsolation(nodeID)
	if round < 0 {
		return -1
	}
	return sched.RoundStart(round)
}

// TruthSource is the ground-truth record one simulated run leaves behind:
// how many rounds executed and, per executed round, the outcome class of
// every slot transmission (1-based by slot; see Engine.Truth). The lock-step
// Engine is one source; the lane-packed batch cluster exposes one source per
// lane.
type TruthSource interface {
	// Round returns the number of executed rounds.
	Round() int
	// Truth returns the executed round's outcome classes (1-based by slot),
	// or nil for rounds not executed. The row may alias run-owned storage —
	// callers must not retain it across runs.
	Truth(round int) []tdma.OutcomeClass
}

// AuditTheorem1 checks the three properties of the consistent health vector
// (Theorem 1) on every diagnosed round in [fromRound, toRound):
//
//   - consistency: every obedient observer produced the same vector;
//   - completeness: ground-truth benign faulty senders are diagnosed faulty;
//   - correctness: ground-truth correct senders are diagnosed healthy.
//
// Rounds with asymmetric or malicious ground truth are only checked for
// consistency, as the theorem allows either agreed verdict there. The
// obedient slice lists the observers whose outputs are trustworthy (all
// nodes, in campaigns without Byzantine protocol instances).
func AuditTheorem1(src TruthSource, col *Collector, obedient []int, fromRound, toRound int) error {
	for d := fromRound; d < toRound; d++ {
		truth := src.Truth(d)
		if truth == nil {
			return fmt.Errorf("sim: no ground truth for round %d", d)
		}
		byObs := col.RoundHVs(d)
		if byObs == nil {
			return fmt.Errorf("sim: no health vectors recorded for round %d", d)
		}
		var ref core.Syndrome
		var refObs int
		for _, obs := range obedient {
			hv := byObs[obs]
			if hv == nil {
				return fmt.Errorf("sim: observer %d produced no health vector for round %d", obs, d)
			}
			if ref == nil {
				ref, refObs = hv, obs
				continue
			}
			if !hv.Equal(ref) {
				return fmt.Errorf("sim: consistency violated for round %d: observer %d says %v, observer %d says %v",
					d, refObs, ref, obs, hv)
			}
		}
		for slot := 1; slot < len(truth); slot++ {
			switch truth[slot] {
			case tdma.OutcomeBenign:
				if ref[slot] != core.Faulty {
					return fmt.Errorf("sim: completeness violated: round %d node %d was benign faulty but diagnosed %v",
						d, slot, ref[slot])
				}
			case tdma.OutcomeCorrect:
				if ref[slot] != core.Healthy {
					return fmt.Errorf("sim: correctness violated: round %d node %d was correct but diagnosed %v",
						d, slot, ref[slot])
				}
			}
		}
	}
	return nil
}

// AuditTheorem2 checks the membership service's guaranteed properties over a
// run (Theorem 2) for a single asymmetric-fault episode:
//
//   - liveness: once a locally detectable message is received (faultRound),
//     every obedient observer installs a new view within two protocol
//     executions (2·(lag+1) rounds);
//   - agreement: all obedient observers hold identical view histories
//     (same IDs, members and formation rounds) — the observable core of
//     view synchrony.
func AuditTheorem2(runners []*MembershipRunner, obedient []int, faultRound, lag int) error {
	if len(obedient) == 0 {
		return fmt.Errorf("sim: no obedient observers")
	}
	ref := runners[obedient[0]].Service().History()
	for _, obs := range obedient[1:] {
		h := runners[obs].Service().History()
		if len(h) != len(ref) {
			return fmt.Errorf("sim: observer %d has %d views, observer %d has %d",
				obs, len(h), obedient[0], len(ref))
		}
		for i := range h {
			if h[i].ID != ref[i].ID || h[i].FormedAtRound != ref[i].FormedAtRound {
				return fmt.Errorf("sim: view %d disagrees between observers %d and %d", i, obedient[0], obs)
			}
			if len(h[i].Members) != len(ref[i].Members) {
				return fmt.Errorf("sim: view %d members differ between observers %d and %d", i, obedient[0], obs)
			}
			for m := range h[i].Members {
				if h[i].Members[m] != ref[i].Members[m] {
					return fmt.Errorf("sim: view %d members differ between observers %d and %d", i, obedient[0], obs)
				}
			}
		}
	}
	if len(ref) < 2 {
		return fmt.Errorf("sim: liveness violated: no view change after the fault")
	}
	formed := ref[len(ref)-1].FormedAtRound
	if deadline := faultRound + 2*(lag+1); formed > deadline {
		return fmt.Errorf("sim: liveness violated: view formed at round %d, deadline %d", formed, deadline)
	}
	return nil
}
