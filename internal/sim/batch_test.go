package sim

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// batchScenario parameterises one lane/run of the batch-vs-engine
// differential: which disturbances to attach and how long the repetition is.
type batchScenario struct {
	name string
	cfg  ClusterConfig
	// attach installs run's disturbances on add (the per-run bus or a batch
	// lane) and returns the repetition horizon in rounds.
	attach func(run int, sched *tdma.Schedule, add func(tdma.Disturbance)) int
}

// batchScenarios covers the observable regimes of the batched cluster:
// pure detection (no isolation), isolation without reintegration (the
// monotone ignore path plus collision feedback), reintegration (the
// observe path), a design-time AllSendCurrRound schedule, and malicious
// senders driving the rng-backed disturbance caching.
func batchScenarios() []batchScenario {
	prototype := []int{2, 0, 3, 1}
	burstAttach := func(run int, sched *tdma.Schedule, add func(tdma.Disturbance)) int {
		inject := 4 + run%6
		slots := []int{1, 2, 8}[run%3]
		start := 1 + run%4
		add(fault.NewTrain(fault.SlotBurst(sched, inject, start, slots)))
		return inject + 10 + run%3
	}
	return []batchScenario{
		{
			name:   "bursts_detect",
			cfg:    ClusterConfig{Ls: prototype},
			attach: burstAttach,
		},
		{
			name: "bursts_isolate",
			cfg: ClusterConfig{
				Ls: prototype,
				PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 5},
			},
			attach: func(run int, sched *tdma.Schedule, add func(tdma.Disturbance)) int {
				start := 5 + run%4
				target := 1 + run%4
				var bursts []fault.Burst
				for r := start; r < start+14; r += 2 {
					bursts = append(bursts, fault.SlotBurst(sched, r, target, 1))
				}
				add(fault.NewTrain(bursts...))
				return start + 18
			},
		},
		{
			name: "bursts_reintegrate",
			cfg: ClusterConfig{
				Ls: prototype,
				PR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 4, ReintegrationThreshold: 3},
			},
			// Faulty rounds until the penalty crosses the threshold, then a
			// quiet tail long enough for the observation window to
			// reintegrate the target.
			attach: func(run int, sched *tdma.Schedule, add func(tdma.Disturbance)) int {
				start := 5 + run%3
				target := 1 + run%4
				var bursts []fault.Burst
				for r := start; r < start+8; r += 2 {
					bursts = append(bursts, fault.SlotBurst(sched, r, target, 1))
				}
				add(fault.NewTrain(bursts...))
				return start + 20 + run%3
			},
		},
		{
			name:   "bursts_allcurr",
			cfg:    ClusterConfig{Ls: []int{0, 1, 2, 3}, AllSendCurrRound: true},
			attach: burstAttach,
		},
		{
			name: "malicious",
			cfg:  ClusterConfig{Ls: prototype},
			attach: func(run int, sched *tdma.Schedule, add func(tdma.Disturbance)) int {
				mal := tdma.NodeID(1 + run%4)
				add(fault.NewMaliciousSyndrome(mal, rng.NewStream(int64(4000+run))))
				return 20 + run%4
			},
		},
	}
}

// runBatchReference executes one repetition on the per-run lock-step engine
// and returns its observables: collector, truth rows, final penalties and
// the telemetry snapshot.
func runBatchReference(t *testing.T, sc batchScenario, run int) (*Collector, [][]tdma.OutcomeClass, [][]int64, []byte) {
	t.Helper()
	cfg := sc.cfg
	cl, err := NewReusableDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	sm := core.NewStepMetrics(reg)
	col := NewCollector()
	n := cl.Config().N
	for id := 1; id <= n; id++ {
		col.HookDiag(id, cl.Runners[id])
		cl.Runners[id].Protocol().SetMetrics(sm)
	}
	eng := cl.Eng
	horizon := sc.attach(run, eng.Schedule(), func(d tdma.Disturbance) { eng.Bus().AddDisturbance(d) })
	if err := eng.RunRounds(horizon); err != nil {
		t.Fatal(err)
	}
	truth := make([][]tdma.OutcomeClass, horizon)
	for r := 0; r < horizon; r++ {
		truth[r] = append([]tdma.OutcomeClass(nil), eng.Truth(r)...)
	}
	pen := make([][]int64, n+1)
	for id := 1; id <= n; id++ {
		pen[id] = make([]int64, n+1)
		pr := cl.Runners[id].Protocol().PenaltyReward()
		for j := 1; j <= n; j++ {
			pen[id][j] = pr.Penalty(j)
		}
	}
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return col, truth, pen, snap
}

// TestBatchClusterEquivalence pins the lane-packed batched cluster to the
// lock-step per-run engine: for every scenario and gang width (full,
// ragged, single-lane), lane r of the gang must leave behind exactly the
// observables of per-run repetition r — collector records, ground-truth
// rows, final penalty counters and telemetry snapshots.
func TestBatchClusterEquivalence(t *testing.T) {
	for _, sc := range batchScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			bc, err := NewBatchDiagCluster(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := bc.Config().N
			for _, width := range []int{bc.MaxLanes(), bc.MaxLanes()/2 + 1, 1} {
				width := width
				t.Run(fmt.Sprintf("g%d", width), func(t *testing.T) {
					if err := bc.ResetBatch(width); err != nil {
						t.Fatal(err)
					}
					regs := make([]*metrics.Registry, width)
					for lane := 0; lane < width; lane++ {
						regs[lane] = metrics.New()
						sm := core.NewStepMetrics(regs[lane])
						for id := 1; id <= n; id++ {
							bc.Proto(id).SetLaneMetrics(lane, sm)
						}
						lane := lane
						h := sc.attach(lane, bc.Schedule(), func(d tdma.Disturbance) { bc.AddLaneDisturbance(lane, d) })
						bc.SetLaneHorizon(lane, h)
					}
					if err := bc.Run(); err != nil {
						t.Fatal(err)
					}
					for lane := 0; lane < width; lane++ {
						refCol, refTruth, refPen, refSnap := runBatchReference(t, sc, lane)
						lt := bc.LaneTruth(lane)
						if lt.Round() != len(refTruth) {
							t.Fatalf("lane %d: %d recorded rounds, engine executed %d", lane, lt.Round(), len(refTruth))
						}
						for r := range refTruth {
							if got := lt.Truth(r); !reflect.DeepEqual(got, refTruth[r]) {
								t.Fatalf("lane %d round %d truth:\n got %v\nwant %v", lane, r, got, refTruth[r])
							}
						}
						if got := bc.LaneCollector(lane); !reflect.DeepEqual(got, refCol) {
							t.Fatalf("lane %d collector diverges:\n got %+v\nwant %+v", lane, got, refCol)
						}
						for id := 1; id <= n; id++ {
							for j := 1; j <= n; j++ {
								if got, want := bc.LaneFinalPenalty(lane, id, j), refPen[id][j]; got != want {
									t.Fatalf("lane %d observer %d penalty(%d) = %d, want %d", lane, id, j, got, want)
								}
							}
						}
						snap, err := json.Marshal(regs[lane].Snapshot())
						if err != nil {
							t.Fatal(err)
						}
						if string(snap) != string(refSnap) {
							t.Fatalf("lane %d metrics snapshot diverges:\n got %s\nwant %s", lane, snap, refSnap)
						}
					}
				})
			}
		})
	}
}

// TestBatchClusterReset pins gang reuse: a cluster reset between gangs is
// observationally identical to a freshly built one, including shrinking to
// a ragged width and growing back.
func TestBatchClusterReset(t *testing.T) {
	sc := batchScenarios()[0]
	reused, err := NewBatchDiagCluster(sc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gang, width := range []int{reused.MaxLanes(), 3, reused.MaxLanes(), 1} {
		fresh, err := NewBatchDiagCluster(sc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, bc := range []*BatchDiagCluster{reused, fresh} {
			if err := bc.ResetBatch(width); err != nil {
				t.Fatal(err)
			}
			for lane := 0; lane < width; lane++ {
				lane := lane
				h := sc.attach(gang*7+lane, bc.Schedule(), func(d tdma.Disturbance) { bc.AddLaneDisturbance(lane, d) })
				bc.SetLaneHorizon(lane, h)
			}
			if err := bc.Run(); err != nil {
				t.Fatal(err)
			}
		}
		for lane := 0; lane < width; lane++ {
			if !reflect.DeepEqual(reused.LaneCollector(lane), fresh.LaneCollector(lane)) {
				t.Fatalf("gang %d lane %d: reused cluster collector diverges from fresh", gang, lane)
			}
			if !reflect.DeepEqual(reused.truth[lane], fresh.truth[lane]) {
				t.Fatalf("gang %d lane %d: reused cluster truth diverges from fresh", gang, lane)
			}
		}
	}
}

// TestBatchClusterRejects pins the constructor's validation surface.
func TestBatchClusterRejects(t *testing.T) {
	if _, err := NewBatchDiagCluster(ClusterConfig{N: 65}); err == nil {
		t.Fatal("N=65 accepted")
	}
	bc, err := NewBatchDiagCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if bc.MaxLanes() != 16 {
		t.Fatalf("MaxLanes = %d, want 16 for N=4", bc.MaxLanes())
	}
	if err := bc.ResetBatch(0); err == nil {
		t.Fatal("0-lane gang accepted")
	}
	if err := bc.ResetBatch(17); err == nil {
		t.Fatal("17-lane gang accepted")
	}
}
