package sim

import (
	"ttdiag/internal/baseline"
)

// NewTTPCCluster wires an engine with one TTP/C-style membership node per
// slot (the baseline comparator). Like the low-latency variant, the TTP/C
// C-state must be staged right before the node's own slot, so the staircase
// schedule is forced.
func NewTTPCCluster(cfg ClusterConfig) (*Engine, []*baseline.TTPCNode, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	nodes := make([]*baseline.TTPCNode, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		n, err := baseline.NewTTPCNode(cfg.N, id)
		if err != nil {
			return nil, nil, err
		}
		if err := eng.AddNode(tdmaID(id), id-1, n); err != nil {
			return nil, nil, err
		}
		nodes[id] = n
	}
	// Bootstrap: every controller stages the initial full membership vector.
	for id := 1; id <= cfg.N; id++ {
		payload, err := nodes[id].Run(0, eng.Controller(tdmaID(id)))
		if err != nil {
			return nil, nil, err
		}
		eng.Controller(tdmaID(id)).WriteInterface(payload)
	}
	return eng, nodes, nil
}
