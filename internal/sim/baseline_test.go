package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/tdma"
)

func TestTTPCSingleBenignFault(t *testing.T) {
	eng, nodes, err := NewTTPCCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 3, 1)))
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	// Under the single-fault assumption TTP/C handles this perfectly: the
	// sender fails silent, the survivors share a consistent view {1,2,4}.
	if nodes[3].Alive() {
		t.Fatal("faulty sender did not fail silent")
	}
	for _, id := range []int{1, 2, 4} {
		if !nodes[id].Alive() {
			t.Fatalf("healthy node %d died", id)
		}
		m := nodes[id].Members()
		if m[3] {
			t.Fatalf("node %d still considers 3 a member", id)
		}
		for _, ok := range []int{1, 2, 4} {
			if !m[ok] {
				t.Fatalf("node %d dropped healthy member %d", id, ok)
			}
		}
	}
}

// TestTTPCDoubleAsymmetricBreaks demonstrates the single-fault-assumption
// limit (Sec. 2): two coincident asymmetric receive faults make two healthy
// nodes kill themselves via clique avoidance, while the add-on diagnostic
// protocol under the identical fault pattern keeps every node running with a
// consistent health vector.
func TestTTPCDoubleAsymmetricBreaks(t *testing.T) {
	doubleAsym := func(round int) []tdma.Disturbance {
		return []tdma.Disturbance{
			fault.ReceiverBlind{Receiver: 4, Senders: []tdma.NodeID{1}, FromRound: round, ToRound: round + 1},
			fault.ReceiverBlind{Receiver: 3, Senders: []tdma.NodeID{2}, FromRound: round, ToRound: round + 1},
		}
	}

	// Baseline: TTP/C-style membership.
	engT, nodes, err := NewTTPCCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range doubleAsym(6) {
		engT.Bus().AddDisturbance(d)
	}
	if err := engT.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	dead := 0
	for id := 1; id <= 4; id++ {
		if !nodes[id].Alive() {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("expected the TTP/C baseline to kill nodes under coincident asymmetric faults")
	}

	// Our protocol under the identical fault pattern: nobody is isolated
	// and diagnosis stays consistent.
	engD, _, col := mustDiagCluster(t, ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 10, RewardThreshold: 100}})
	for _, d := range doubleAsym(6) {
		engD.Bus().AddDisturbance(d)
	}
	if err := engD.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem1(engD, col, obedientAll(4), 2, 9); err != nil {
		t.Fatal(err)
	}
	if len(col.Isolations) != 0 {
		t.Fatalf("diagnostic protocol isolated nodes: %+v", col.Isolations)
	}
}

// TestTTPCBlackoutKillsEveryone: a two-round communication blackout makes
// every TTP/C node fail clique avoidance and the whole system dies; the
// add-on protocol diagnoses the blackout consistently and the p/r algorithm
// rides it out.
func TestTTPCBlackoutKillsEveryone(t *testing.T) {
	engT, nodes, err := NewTTPCCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	engT.Bus().AddDisturbance(fault.NewTrain(fault.Blackout(engT.Schedule(), 6, 2)))
	if err := engT.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	alive := 0
	for id := 1; id <= 4; id++ {
		if nodes[id].Alive() {
			alive++
		}
	}
	if alive != 0 {
		t.Fatalf("%d TTP/C nodes survived a blackout; the single-fault baseline should collapse", alive)
	}

	engD, runners, col := mustDiagCluster(t, ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 10, RewardThreshold: 100}})
	engD.Bus().AddDisturbance(fault.NewTrain(fault.Blackout(engD.Schedule(), 6, 2)))
	if err := engD.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	if len(col.Isolations) != 0 {
		t.Fatalf("p/r isolated nodes during a short blackout: %+v", col.Isolations)
	}
	for id := 1; id <= 4; id++ {
		for j := 1; j <= 4; j++ {
			if !runners[id].Last().Active[j] {
				t.Fatalf("node %d considers %d inactive after the blackout", id, j)
			}
		}
	}
}

func TestTTPCClusterValidation(t *testing.T) {
	if _, _, err := NewTTPCCluster(ClusterConfig{N: 1}); err == nil {
		t.Fatal("1-node TTP/C cluster accepted")
	}
}
