package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/trace"
)

// causalClusterConfig is a low-threshold cluster whose node 3, faulted every
// round of a burst window, ramps to isolation and — once the window passes —
// back to reintegration.
func causalClusterConfig(sink trace.Sink, forceScalar bool) ClusterConfig {
	return ClusterConfig{
		N:           4,
		PR:          core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 3, ReintegrationThreshold: 4},
		Sink:        sink,
		ForceScalar: forceScalar,
	}
}

// TestClusterCausalEvents drives a fault burst through a full cluster and
// checks node 1's flight-recorder stream end to end: the penalty ramp with
// threshold state, the isolation with its trajectory, the reintegration —
// and that trace.Explain reconstructs the causal chain from the recorded
// stream alone.
func TestClusterCausalEvents(t *testing.T) {
	var rec trace.Recorder
	cl, err := NewReusableDiagnosticCluster(causalClusterConfig(&rec, false))
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(3, 1, 4, 9))
	if err := cl.Eng.RunRounds(30); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	var isolations, penalties, reints []trace.Event
	for _, e := range events {
		switch e.Kind {
		case trace.KindPenalty:
			penalties = append(penalties, e)
		case trace.KindIsolation:
			isolations = append(isolations, e)
		case trace.KindReintegration:
			reints = append(reints, e)
		}
	}
	if len(isolations) != 1 || isolations[0].Subject != 3 {
		t.Fatalf("want exactly one isolation of node 3, got %v", isolations)
	}
	iso := isolations[0]
	if iso.Node != 1 {
		t.Fatalf("causal events must come from observer node 1, got %+v", iso)
	}
	if iso.Penalty <= iso.Threshold || iso.Threshold != 2 {
		t.Fatalf("isolation counter state %d/%d does not show a crossing", iso.Penalty, iso.Threshold)
	}
	if iso.Detail == "" {
		t.Fatalf("isolation lacks its penalty trajectory")
	}
	if len(penalties) < 2 {
		t.Fatalf("want the penalty ramp before the isolation, got %v", penalties)
	}
	if len(reints) != 1 || reints[0].Subject != 3 || reints[0].Round <= iso.Round {
		t.Fatalf("want one reintegration of node 3 after round %d, got %v", iso.Round, reints)
	}

	chain, err := trace.Explain(events, 3, iso.Round)
	if err != nil {
		t.Fatal(err)
	}
	if last := chain[len(chain)-1]; last.Kind != trace.KindIsolation || last.Round != iso.Round {
		t.Fatalf("Explain chain ends in %+v, want the round-%d isolation", last, iso.Round)
	}
	for _, e := range chain[:len(chain)-1] {
		if e.Subject != 3 {
			t.Fatalf("chain event about node %d, want 3: %+v", e.Subject, e)
		}
	}
}

// TestForceScalarClusterTraceEquivalence runs the same disturbed scenario on
// a packed and a forced-scalar cluster and requires the two causal streams
// to be identical event for event — the cluster-level extension of the
// core-level packed/scalar trace equivalence.
func TestForceScalarClusterTraceEquivalence(t *testing.T) {
	run := func(forceScalar bool) []trace.Event {
		var rec trace.Recorder
		cl, err := NewReusableDiagnosticCluster(causalClusterConfig(&rec, forceScalar))
		if err != nil {
			t.Fatal(err)
		}
		if got := cl.Runners[1].Protocol().Packed(); got == forceScalar {
			t.Fatalf("ForceScalar=%v built a packed=%v protocol", forceScalar, got)
		}
		cl.Reset()
		cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(3, 1, 4, 9))
		if err := cl.Eng.RunRounds(30); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	packed, scalar := run(false), run(true)
	if len(packed) == 0 {
		t.Fatalf("scenario emitted no events — the equivalence is vacuous")
	}
	if i := trace.FirstDivergence(packed, scalar); i >= 0 {
		var pe, se trace.Event
		if i < len(packed) {
			pe = packed[i]
		}
		if i < len(scalar) {
			se = scalar[i]
		}
		t.Fatalf("streams diverge at event %d:\npacked %+v\nscalar %+v", i, pe, se)
	}
}

// TestCheckpointHonorsForceScalar: the checkpoint's twin protocols must
// adopt the cluster's representation, or every Capture would fail the
// CopyFrom representation check.
func TestCheckpointHonorsForceScalar(t *testing.T) {
	cl, err := NewReusableDiagnosticCluster(causalClusterConfig(nil, true))
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	cl.Eng.Bus().AddDisturbance(fault.EveryKthRound(3, 1, 4, 9))
	ck, err := NewClusterCheckpoint(cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Eng.RunRounds(6); err != nil {
		t.Fatal(err)
	}
	if err := ck.Capture(cl); err != nil {
		t.Fatal(err)
	}
	record := func() []string {
		var sends []string
		for r := 0; r < 6; r++ {
			if err := cl.Eng.RunRound(); err != nil {
				t.Fatal(err)
			}
			sends = append(sends, string(cl.Runners[1].Last().Send))
		}
		return sends
	}
	first := record()
	if err := ck.Restore(cl); err != nil {
		t.Fatal(err)
	}
	second := record()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("restored run diverges at replayed round %d", i)
		}
	}
}

// TestMembershipClusterEmitsViewChange: a crashed node is eventually
// convicted and excluded; node 1's sink must carry the view-change causal
// event alongside the accusation/penalty stream.
func TestMembershipClusterEmitsViewChange(t *testing.T) {
	var rec trace.Recorder
	cl, err := NewReusableMembershipCluster(ClusterConfig{
		N:    4,
		PR:   core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
		Sink: &rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	cl.Eng.Bus().AddDisturbance(fault.Crash(3, 5))
	if err := cl.Eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	views := rec.Filter(trace.KindViewChange)
	if len(views) == 0 {
		t.Fatalf("no view-change events after a crash; stream: %v", rec.Events())
	}
	if views[0].Node != 1 || views[0].Detail == "" {
		t.Fatalf("view-change event malformed: %+v", views[0])
	}
	if got := cl.Runners[1].View(); got.Contains(3) {
		t.Fatalf("node 3 still in the view after crashing: %+v", got)
	}
}
