// Allocation-ceiling regression test for the lock-step simulation hot path.
// The race detector instruments allocations and testing.AllocsPerRun becomes
// meaningless under it, so this file is excluded from -race builds.

//go:build !race

package sim

import (
	"testing"

	"ttdiag/internal/invariant"
)

// TestEngineRoundAllocs pins the steady-state allocation budget of one TDMA
// round on the 4-node prototype: two allocations per node Step (the retained
// per-round block and the matrix row headers) plus the amortized ground-truth
// growth — the bus, the controllers and the round-input construction must not
// allocate at all.
func TestEngineRoundAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	cl, err := NewReusableDiagnosticCluster(ClusterConfig{Ls: []int{2, 0, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: fill every reusable buffer and get past the truth block's
	// early doublings.
	if err := cl.Eng.RunRounds(64); err != nil {
		t.Fatal(err)
	}
	const ceiling = 10
	avg := testing.AllocsPerRun(100, func() {
		if err := cl.Eng.RunRound(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > ceiling {
		t.Fatalf("RunRound allocates %.1f objects/round in steady state, ceiling %d", avg, ceiling)
	}
}
