package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

func obedientAll(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func mustDiagCluster(t *testing.T, cfg ClusterConfig) (*Engine, []*DiagRunner, *Collector) {
	t.Helper()
	eng, runners, err := NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	for id := 1; id <= eng.Schedule().N(); id++ {
		col.HookDiag(id, runners[id])
	}
	return eng, runners, col
}

func TestFaultFreeClusterAudit(t *testing.T) {
	schedules := map[string]ClusterConfig{
		"staircase_all_scr": {Ls: Staircase(4), AllSendCurrRound: true},
		"uniform_end":       {Ls: Uniform(4, 3)},
		"mixed":             {Ls: []int{2, 0, 3, 1}},
	}
	for name, cfg := range schedules {
		t.Run(name, func(t *testing.T) {
			eng, _, col := mustDiagCluster(t, cfg)
			if err := eng.RunRounds(20); err != nil {
				t.Fatal(err)
			}
			if err := AuditTheorem1(eng, col, obedientAll(4), 4, 16); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSec8BurstClasses reproduces the twelve burst experiment classes of the
// validation campaign (Sec. 8): bursts of one slot, two slots and two whole
// TDMA rounds, starting at each of the four sending slots, and audits
// Theorem 1 on every diagnosed round.
func TestSec8BurstClasses(t *testing.T) {
	const injectRound = 6
	for _, slots := range []int{1, 2, 8} {
		for startSlot := 1; startSlot <= 4; startSlot++ {
			name := fmt.Sprintf("burst_%dslots_start%d", slots, startSlot)
			t.Run(name, func(t *testing.T) {
				eng, _, col := mustDiagCluster(t, ClusterConfig{Ls: []int{2, 0, 3, 1}})
				eng.Bus().AddDisturbance(fault.NewTrain(
					fault.SlotBurst(eng.Schedule(), injectRound, startSlot, slots),
				))
				if err := eng.RunRounds(24); err != nil {
					t.Fatal(err)
				}
				if err := AuditTheorem1(eng, col, obedientAll(4), 4, 20); err != nil {
					t.Fatal(err)
				}
				// The injected slots really were benign faulty and diagnosed.
				corrupted := 0
				for d := injectRound; d <= injectRound+3; d++ {
					for slot := 1; slot <= 4; slot++ {
						if eng.Truth(d)[slot] == tdma.OutcomeBenign {
							corrupted++
						}
					}
				}
				if corrupted != slots {
					t.Fatalf("ground truth shows %d corrupted slots, want %d", corrupted, slots)
				}
			})
		}
	}
}

// TestCommunicationBlackout checks the Lemma 3 regime end-to-end: two whole
// rounds of blackout; every node self-diagnoses through its collision
// detector and diagnosis stays complete, correct and consistent.
func TestCommunicationBlackout(t *testing.T) {
	eng, _, col := mustDiagCluster(t, ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true})
	eng.Bus().AddDisturbance(fault.NewTrain(fault.Blackout(eng.Schedule(), 6, 2)))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem1(eng, col, obedientAll(4), 4, 16); err != nil {
		t.Fatal(err)
	}
	hv := col.ConsHV[6][2]
	if hv.String() != "0000" {
		t.Fatalf("blackout round diagnosed as %v, want 0000", hv)
	}
}

// TestMaliciousNodeClasses reproduces the four Sec. 8 malicious-node
// experiment classes: any of the four nodes sends random syndromes; the
// other nodes must never diagnose a correct node as faulty.
func TestMaliciousNodeClasses(t *testing.T) {
	for malNode := 1; malNode <= 4; malNode++ {
		t.Run(fmt.Sprintf("malicious_node_%d", malNode), func(t *testing.T) {
			eng, _, col := mustDiagCluster(t, ClusterConfig{Ls: []int{2, 0, 3, 1}})
			eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(
				tdma.NodeID(malNode), rng.NewSource(7).Stream("malicious")))
			if err := eng.RunRounds(30); err != nil {
				t.Fatal(err)
			}
			// The malicious node's own protocol inputs are genuine, but its
			// *disseminated* payloads are garbage; obedient observers are
			// the other three nodes.
			var obedient []int
			for id := 1; id <= 4; id++ {
				if id != malNode {
					obedient = append(obedient, id)
				}
			}
			if err := AuditTheorem1(eng, col, obedient, 4, 26); err != nil {
				t.Fatal(err)
			}
			// No node was ever convicted: malicious frames are locally
			// undetectable, so ground truth stays "malicious", and Theorem 1
			// guarantees agreement; additionally no conviction may happen.
			for d := 4; d < 26; d++ {
				hv := col.ConsHV[d][obedient[0]]
				if hv.CountFaulty() != 0 {
					t.Fatalf("round %d: malicious node induced conviction: %v", d, hv)
				}
			}
		})
	}
}

// TestPenaltyRewardCampaign mirrors the Sec. 8 p/r experiment: a fault in
// node 2's slot every second round for 20 rounds; penalty and reward
// counters alternate and all nodes agree on them.
func TestPenaltyRewardCampaign(t *testing.T) {
	eng, runners, _ := mustDiagCluster(t, ClusterConfig{
		Ls: Staircase(4), AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 1 << 30, RewardThreshold: 100},
	})
	var bursts []fault.Burst
	for r := 10; r < 30; r += 2 {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 2, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := eng.RunRounds(40); err != nil {
		t.Fatal(err)
	}
	pr := runners[1].Protocol().PenaltyReward()
	if got := pr.Penalty(2); got != 10 {
		t.Fatalf("penalty(2) = %d, want 10 (one per faulty round)", got)
	}
	for id := 2; id <= 4; id++ {
		if got := runners[id].Protocol().PenaltyReward().Penalty(2); got != 10 {
			t.Fatalf("node %d sees penalty %d, want 10", id, got)
		}
	}
	for j := 1; j <= 4; j++ {
		if j != 2 && pr.Penalty(j) != 0 {
			t.Fatalf("penalty(%d) = %d, want 0", j, pr.Penalty(j))
		}
	}
}

// TestIsolationStopsTraffic checks the full loop: a crashed node is isolated
// by the p/r algorithm in the same round everywhere, and afterwards its
// traffic is ignored by every controller.
func TestIsolationStopsTraffic(t *testing.T) {
	eng, runners, col := mustDiagCluster(t, ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 5, RewardThreshold: 10},
	})
	eng.Bus().AddDisturbance(fault.Crash(4, 8))
	if err := eng.RunRounds(30); err != nil {
		t.Fatal(err)
	}
	if len(col.Isolations) != 4 {
		t.Fatalf("got %d isolation decisions, want 4 (one per node): %+v", len(col.Isolations), col.Isolations)
	}
	round := col.Isolations[0].Round
	for _, iso := range col.Isolations {
		if iso.Node != 4 {
			t.Fatalf("isolated node %d, want 4", iso.Node)
		}
		if iso.Round != round {
			t.Fatalf("isolation rounds disagree: %+v", col.Isolations)
		}
	}
	// Crash at round 8, P=5: sixth faulty diagnosed round is 13, decision
	// executes at round 13+lag(3) = 16.
	if round != 16 {
		t.Fatalf("isolation at round %d, want 16", round)
	}
	for id := 1; id <= 3; id++ {
		if !eng.Controller(tdma.NodeID(id)).Ignored(4) {
			t.Fatalf("node %d does not ignore isolated node 4", id)
		}
	}
	if !runners[1].Last().Active[1] || runners[1].Last().Active[4] {
		t.Fatalf("activity vector wrong: %v", runners[1].Last().Active)
	}
}

// TestReintegrationLoop exercises the observation/reintegration extension on
// the full stack: a node suffers a transient burst, gets isolated by an
// aggressive threshold, then recovers and is reintegrated everywhere.
func TestReintegrationLoop(t *testing.T) {
	eng, runners, col := mustDiagCluster(t, ClusterConfig{
		Ls: Staircase(4), AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 10, ReintegrationThreshold: 6},
	})
	var bursts []fault.Burst
	for r := 6; r < 12; r++ {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := eng.RunRounds(40); err != nil {
		t.Fatal(err)
	}
	if len(col.Isolations) != 4 {
		t.Fatalf("isolations: %+v", col.Isolations)
	}
	if len(col.Reintegrations) != 4 {
		t.Fatalf("reintegrations: %+v", col.Reintegrations)
	}
	for _, re := range col.Reintegrations {
		if re.Node != 3 {
			t.Fatalf("reintegrated node %d, want 3", re.Node)
		}
		if re.Round != col.Reintegrations[0].Round {
			t.Fatalf("reintegration rounds disagree: %+v", col.Reintegrations)
		}
	}
	// After reintegration node 3's traffic is heard again.
	if eng.Controller(1).Ignored(3) {
		t.Fatal("node 1 still ignores reintegrated node 3")
	}
	if !runners[2].Last().Active[3] {
		t.Fatal("node 3 not active after reintegration")
	}
}

// TestMembershipCliqueDetection reproduces the Sec. 8 clique experiment: the
// disturbance sits between node 1 and the rest of the cluster, so node 1
// misses node 2's broadcast (an asymmetric fault) and forms a minority
// clique. The membership protocol must accuse node 1 and install a new view
// {2,3,4} at every obedient node within two protocol executions.
func TestMembershipCliqueDetection(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ClusterConfig
	}{
		{name: "all_scr", cfg: ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true}},
		{name: "mixed", cfg: ClusterConfig{Ls: []int{2, 0, 3, 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, runners, err := NewMembershipCluster(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			const faultRound = 8
			eng.Bus().AddDisturbance(fault.ReceiverBlind{
				Receiver: 1, Senders: []tdma.NodeID{2},
				FromRound: faultRound, ToRound: faultRound + 1,
			})
			if err := eng.RunRounds(30); err != nil {
				t.Fatal(err)
			}
			lag := runners[1].Service().Protocol().Config().Lag()
			if err := AuditTheorem2(runners, obedientAll(4), faultRound, lag); err != nil {
				t.Fatal(err)
			}
			for id := 1; id <= 4; id++ {
				if got, want := fmt.Sprint(runners[id].View().Members), "[2 3 4]"; got != want {
					t.Fatalf("node %d: view members %v, want %v", id, got, want)
				}
			}
		})
	}
}

// TestMembershipBenignFaultView: a plain benign sender fault also triggers a
// view excluding the faulty sender (first case of Theorem 2).
func TestMembershipBenignFaultView(t *testing.T) {
	eng, runners, err := NewMembershipCluster(ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 8, 3, 1)))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		v := runners[id].View()
		if got, want := fmt.Sprint(v.Members), "[1 2 4]"; got != want {
			t.Fatalf("node %d: view %v, want %v", id, got, want)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	sched := tdma.MustSchedule(4, 2500*time.Microsecond)
	eng := NewEngine(sched, nil)
	r, err := NewDiagRunner(core.Config{N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddNode(0, 0, r); err == nil {
		t.Error("node 0 accepted")
	}
	if err := eng.AddNode(1, 7, r); err == nil {
		t.Error("bad job position accepted")
	}
	if err := eng.AddNode(1, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddNode(1, 0, r); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := eng.RunRound(); err == nil {
		t.Error("RunRound with missing nodes accepted")
	}
	if eng.Controller(9) != nil || eng.Controller(2) != nil {
		t.Error("Controller returned non-nil for missing node")
	}
	if eng.Truth(0) != nil {
		t.Error("Truth for unexecuted round not nil")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, _, err := NewDiagnosticCluster(ClusterConfig{N: 1}); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, _, err := NewDiagnosticCluster(ClusterConfig{N: 4, Ls: []int{0}}); err == nil {
		t.Error("short Ls accepted")
	}
	if _, _, err := NewDiagnosticCluster(ClusterConfig{N: 4, Ls: Uniform(4, 3), AllSendCurrRound: true}); err == nil {
		t.Error("AllSendCurrRound with job-after-slot schedule accepted")
	}
	if _, _, err := NewMembershipCluster(ClusterConfig{N: 4, Ls: []int{0}}); err == nil {
		t.Error("membership cluster with short Ls accepted")
	}
}

func TestJobTimeGeometry(t *testing.T) {
	eng, _, _ := mustDiagCluster(t, ClusterConfig{})
	slot := eng.Schedule().SlotLen()
	if got := eng.JobTime(0, 0); got != 0 {
		t.Errorf("JobTime(0,0) = %v", got)
	}
	if got, want := eng.JobTime(2, 3), eng.Schedule().RoundStart(2)+3*slot; got != want {
		t.Errorf("JobTime(2,3) = %v, want %v", got, want)
	}
}

func TestCollectorFirstIsolation(t *testing.T) {
	col := NewCollector()
	if col.FirstIsolation(1) != -1 {
		t.Error("empty collector returned an isolation")
	}
	col.Isolations = []Isolation{{Observer: 2, Node: 1, Round: 9}, {Observer: 1, Node: 1, Round: 7}}
	if got := col.FirstIsolation(1); got != 7 {
		t.Errorf("FirstIsolation = %d, want 7", got)
	}
	sched := tdma.MustSchedule(4, 2500*time.Microsecond)
	if got := col.FirstIsolationTime(1, sched); got != sched.RoundStart(7) {
		t.Errorf("FirstIsolationTime = %v", got)
	}
	if got := col.FirstIsolationTime(3, sched); got != -1 {
		t.Errorf("FirstIsolationTime(no isolation) = %v", got)
	}
}

func TestEngineTracesJobs(t *testing.T) {
	var rec trace.Recorder
	eng, _, _ := mustDiagCluster(t, ClusterConfig{Sink: &rec})
	if err := eng.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	jobs := rec.Filter(trace.KindJobRun)
	if len(jobs) != 8 {
		t.Fatalf("recorded %d job events, want 8", len(jobs))
	}
	txs := rec.Filter(trace.KindTransmit)
	if len(txs) != 8 {
		t.Fatalf("recorded %d transmit events, want 8", len(txs))
	}
}

// TestHeterogeneousSlotCluster runs the full protocol on an ARINC-659-style
// schedule with per-slot frame lengths: the protocol layer is agnostic, so
// detection and audits behave exactly as on uniform schedules.
func TestHeterogeneousSlotCluster(t *testing.T) {
	eng, _, col := mustDiagCluster(t, ClusterConfig{
		SlotLens: []time.Duration{
			250 * time.Microsecond,
			time.Millisecond,
			500 * time.Microsecond,
			750 * time.Microsecond,
		},
		Ls: []int{2, 0, 3, 1},
	})
	if !eng.Schedule().Uniform() {
		// expected: custom schedule
	} else {
		t.Fatal("custom schedule not applied")
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 2, 1)))
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem1(eng, col, obedientAll(4), 4, 16); err != nil {
		t.Fatal(err)
	}
	hv := col.ConsHV[6][1]
	if hv.String() != "1011" {
		t.Fatalf("cons_hv(6) = %v, want 1011", hv)
	}
	if _, _, err := NewDiagnosticCluster(ClusterConfig{SlotLens: []time.Duration{time.Millisecond}}); err == nil {
		t.Fatal("short SlotLens accepted")
	}
}

// TestAdversarialMaliciousAtTheBoundEdge runs the strongest symmetric-
// malicious strategy (accuse everyone, absolve self) exactly at the Lemma 2
// margin: one adversary at N=4 (one-vote margin) and two adversaries at N=6.
// Correct nodes must never be convicted and diagnosis stays consistent.
func TestAdversarialMaliciousAtTheBoundEdge(t *testing.T) {
	cases := []struct {
		n           int
		adversaries []int
	}{
		{n: 4, adversaries: []int{2}},
		{n: 6, adversaries: []int{1, 4}},
	}
	for _, tc := range cases {
		eng, runners, err := NewDiagnosticCluster(ClusterConfig{
			N: tc.n, RoundLen: sim4RoundLen(tc.n), Ls: Uniform(tc.n, 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector()
		for id := 1; id <= tc.n; id++ {
			col.HookDiag(id, runners[id])
		}
		for _, adv := range tc.adversaries {
			eng.Bus().AddDisturbance(fault.AdversarialSyndrome{Node: tdma.NodeID(adv), N: tc.n})
		}
		if err := eng.RunRounds(24); err != nil {
			t.Fatal(err)
		}
		var obedient []int
		for id := 1; id <= tc.n; id++ {
			isAdv := false
			for _, adv := range tc.adversaries {
				if id == adv {
					isAdv = true
				}
			}
			if !isAdv {
				obedient = append(obedient, id)
			}
		}
		if err := AuditTheorem1(eng, col, obedient, 4, 20); err != nil {
			t.Fatalf("n=%d adversaries=%v: %v", tc.n, tc.adversaries, err)
		}
		for d := 4; d < 20; d++ {
			if hv := col.ConsHV[d][obedient[0]]; hv.CountFaulty() != 0 {
				t.Fatalf("n=%d: adversaries convicted someone: %v", tc.n, hv)
			}
		}
	}
}

// sim4RoundLen scales the 2.5 ms round to n slots of 625 µs.
func sim4RoundLen(n int) time.Duration {
	return DefaultRoundLen * time.Duration(n) / 4
}

// failingRunner errors on a chosen round, verifying error propagation
// through the engine.
type failingRunner struct{ failAt int }

func (f failingRunner) Run(round int, _ *tdma.Controller) ([]byte, error) {
	if round == f.failAt {
		return nil, fmt.Errorf("boom at round %d", round)
	}
	return []byte{0x0f}, nil
}

func TestEnginePropagatesRunnerErrors(t *testing.T) {
	sched := tdma.MustSchedule(4, 2500*time.Microsecond)
	eng := NewEngine(sched, nil)
	for id := 1; id <= 4; id++ {
		r := Runner(failingRunner{failAt: -1})
		if id == 3 {
			r = failingRunner{failAt: 2}
		}
		if err := eng.AddNode(tdma.NodeID(id), 0, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	err := eng.RunRound()
	if err == nil || !strings.Contains(err.Error(), "boom at round 2") {
		t.Fatalf("runner error not propagated: %v", err)
	}
}

func TestCollectorHookMembership(t *testing.T) {
	eng, runners, err := NewMembershipCluster(ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookMembership(id, runners[id])
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 2, 1)))
	if err := eng.RunRounds(14); err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem1(eng, col, obedientAll(4), 3, 10); err != nil {
		t.Fatal(err)
	}
	if runners[2].Last().View.ID != 1 {
		t.Fatalf("membership Last() view = %+v", runners[2].Last().View)
	}
	if got := col.ConsHV[6][3]; got.String() != "1011" {
		t.Fatalf("membership collector hv = %v", got)
	}
}

func TestNormalizeAndNodeConfigExports(t *testing.T) {
	cfg, err := NormalizeConfig(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N != 4 || len(cfg.Ls) != 4 {
		t.Fatalf("normalized config %+v", cfg)
	}
	nc := NodeConfig(cfg, 2)
	if nc.ID != 2 || nc.N != 4 || !nc.SendCurrRound {
		t.Fatalf("node config %+v", nc)
	}
	if _, err := NormalizeConfig(ClusterConfig{N: 1}); err == nil {
		t.Fatal("invalid config normalized")
	}
}

func TestAuditTheorem2ErrorPaths(t *testing.T) {
	eng, runners, err := NewMembershipCluster(ClusterConfig{Ls: Staircase(4), AllSendCurrRound: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem2(runners, nil, 0, 2); err == nil {
		t.Error("empty obedient set accepted")
	}
	// No fault, no view change: liveness must be reported violated.
	if err := eng.RunRounds(10); err != nil {
		t.Fatal(err)
	}
	if err := AuditTheorem2(runners, obedientAll(4), 4, 2); err == nil {
		t.Error("missing view change accepted")
	}
}
