package sim

import (
	"testing"
	"time"

	"ttdiag/internal/core"
)

// TestScalarFallbackBeyondPackedBound smoke-tests the full simulation stack
// one node past core.MaxPackedN: the protocols must transparently select the
// scalar reference representation and a fault-free run must still diagnose
// every round all-healthy.
func TestScalarFallbackBeyondPackedBound(t *testing.T) {
	if testing.Short() {
		t.Skip("65-node cluster")
	}
	n := core.MaxPackedN + 1
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{
		N: n, Ls: Staircase(n),
		RoundLen: time.Duration(n) * 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= n; id++ {
		if runners[id].Protocol().Packed() {
			t.Fatalf("node %d: expected the scalar representation at N = %d", id, n)
		}
	}
	const rounds = 8
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= n; id++ {
		out := runners[id].Last()
		if out.ConsHV == nil {
			t.Fatalf("node %d: no health vector after %d rounds", id, rounds)
		}
		if got := out.ConsHV.CountFaulty(); got != 0 {
			t.Fatalf("node %d: fault-free run convicted %d nodes: %s", id, got, out.ConsHV)
		}
		if out.ActiveMask != 0 {
			t.Fatalf("node %d: ActiveMask must be zero beyond the packed bound, got %x", id, out.ActiveMask)
		}
	}
}

// TestPackedRunnersSelectPackedPath pins the representation choice within the
// bound: the sim hot path must run StepPacked-fed protocols.
func TestPackedRunnersSelectPackedPath(t *testing.T) {
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{Ls: Staircase(4)})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if !runners[id].Protocol().Packed() {
			t.Fatalf("node %d: expected the packed representation at N = 4", id)
		}
	}
	if err := eng.RunRounds(12); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		out := runners[id].Last()
		if out.ConsHVBits.Known != core.PlaneMask(4) {
			t.Fatalf("node %d: ConsHVBits not fully known: %+v", id, out.ConsHVBits)
		}
		if out.ActiveMask != core.PlaneMask(4) {
			t.Fatalf("node %d: fault-free ActiveMask = %x", id, out.ActiveMask)
		}
	}
}
