// Package sim provides the deterministic lock-step simulation engine: it
// drives a TDMA bus and the per-node application jobs through rounds,
// honouring each node's internal schedule (the position l_i of its
// diagnostic job within the round), records ground truth for every
// transmission, and offers audit helpers that check the protocol's
// correctness, completeness and consistency properties against that ground
// truth (Theorem 1).
package sim

import (
	"fmt"
	"time"

	"ttdiag/internal/tdma"
	"ttdiag/internal/trace"
)

// Runner is a per-node application job executed once per round at the node's
// schedule position. The returned payload, if non-nil, is written to the
// node's interface variable (and transmitted at the node's next sending
// slot, subject to send alignment handled by the protocol itself).
type Runner interface {
	Run(round int, ctrl *tdma.Controller) ([]byte, error)
}

// SlotObserver is implemented by runners that additionally process every
// completed sending slot (the constrained-scheduling low-latency variant of
// Sec. 10). OnSlotComplete is called right after each slot transmission,
// with the observing node's own controller.
type SlotObserver interface {
	OnSlotComplete(round, slot int, ctrl *tdma.Controller) error
}

// SnapshotTaker is implemented by runners of dynamically scheduled nodes:
// the engine invokes CaptureSnapshot at the start of every round (before
// slot 1 transmits), pinning the node's interface read point independently
// of when its job executes.
type SnapshotTaker interface {
	CaptureSnapshot(round int, ctrl *tdma.Controller)
}

// node binds a runner to its controller and schedule position. pos returns
// the diagnostic job's position for a given round (constant for static
// schedules, OS-provided for dynamic ones); an error fails the round.
type node struct {
	id     tdma.NodeID
	pos    func(round int) (int, error)
	ctrl   *tdma.Controller
	runner Runner
}

// Engine is the lock-step round executor.
type Engine struct {
	sched *tdma.Schedule
	bus   *tdma.Bus
	nodes []*node // 1-based
	sink  trace.Sink
	round int

	// OnReport, when set, observes every slot transmission report (used by
	// the flight-recorder tooling in internal/replay). The report is
	// bus-owned scratch — observers keeping it across slots must Clone it.
	OnReport func(*tdma.TxReport)

	// truth is the ground-truth outcome class of every executed
	// transmission, stored as one flat block of (N+1)-entry rows: entry
	// round*(N+1)+slot is the class of that slot's transmission (slot 0
	// unused). The block grows by doubling, so RunRound performs no
	// steady-state allocation for it.
	truth []tdma.OutcomeClass

	// positions is RunRound's per-round scratch for the nodes' job
	// positions (1-based).
	positions []int
}

// NewEngine builds an engine over a fresh bus for the given schedule.
func NewEngine(sched *tdma.Schedule, sink trace.Sink) *Engine {
	if sink == nil {
		sink = trace.Discard{}
	}
	return &Engine{
		sched:     sched,
		bus:       tdma.NewBus(sched, sink),
		nodes:     make([]*node, sched.N()+1),
		sink:      sink,
		positions: make([]int, sched.N()+1),
	}
}

// ResetForRun rewinds the engine to round 0 for a fresh repetition: the
// recorded ground truth is discarded, every attached controller is reset and
// all bus disturbances are removed, while the allocated buffers, the nodes
// and their runners are kept. Runners carry their own protocol state and
// must be reset separately (see DiagRunner.ResetForRun); ground-truth views
// returned by Truth before the reset are invalidated.
func (e *Engine) ResetForRun() {
	e.round = 0
	e.truth = e.truth[:0]
	e.bus.ClearDisturbances()
	e.OnReport = nil
	for id := 1; id < len(e.nodes); id++ {
		if e.nodes[id] != nil {
			e.nodes[id].ctrl.Reset()
		}
	}
}

// SetNodePosition re-pins the diagnostic-job position of an already added
// node (used when a reused cluster is reconfigured between repetitions).
func (e *Engine) SetNodePosition(id tdma.NodeID, l int) error {
	if id < 1 || int(id) >= len(e.nodes) || e.nodes[id] == nil {
		return fmt.Errorf("sim: node %d not added", id)
	}
	if l < 0 || l > e.sched.N()-1 {
		return fmt.Errorf("sim: node %d job position %d out of range 0..%d", id, l, e.sched.N()-1)
	}
	e.nodes[id].pos = func(int) (int, error) { return l, nil }
	return nil
}

// Bus returns the engine's bus (to attach disturbances).
func (e *Engine) Bus() *tdma.Bus { return e.bus }

// Schedule returns the global communication schedule.
func (e *Engine) Schedule() *tdma.Schedule { return e.sched }

// Round returns the next round to execute.
func (e *Engine) Round() int { return e.round }

// AddNode registers a runner for node id with diagnostic-job position l
// (the node's l_i: its job runs right after slot l of each round).
func (e *Engine) AddNode(id tdma.NodeID, l int, runner Runner) error {
	if l < 0 || l > e.sched.N()-1 {
		return fmt.Errorf("sim: node %d job position %d out of range 0..%d", id, l, e.sched.N()-1)
	}
	return e.AddDynamicNode(id, func(int) (int, error) { return l, nil }, runner)
}

// AddDynamicNode registers a runner whose job position varies per round
// (dynamic node scheduling, Sec. 10). pos(round) must return a position in
// [0, N-1]; a position error or an out-of-range position fails the round.
func (e *Engine) AddDynamicNode(id tdma.NodeID, pos func(round int) (int, error), runner Runner) error {
	if id < 1 || int(id) > e.sched.N() {
		return fmt.Errorf("sim: node id %d out of range 1..%d", id, e.sched.N())
	}
	if pos == nil {
		return fmt.Errorf("sim: node %d: nil position function", id)
	}
	if e.nodes[id] != nil {
		return fmt.Errorf("sim: node %d already added", id)
	}
	ctrl, err := tdma.NewController(id, e.sched.N())
	if err != nil {
		return err
	}
	if err := e.bus.Attach(ctrl); err != nil {
		return err
	}
	e.nodes[id] = &node{id: id, pos: pos, ctrl: ctrl, runner: runner}
	return nil
}

// Controller returns node id's communication controller.
func (e *Engine) Controller(id tdma.NodeID) *tdma.Controller {
	if id < 1 || int(id) >= len(e.nodes) || e.nodes[id] == nil {
		return nil
	}
	return e.nodes[id].ctrl
}

// JobTime returns the simulated time at which the job of a node with
// position l executes in the given round (right after slot l completes).
func (e *Engine) JobTime(round, l int) time.Duration {
	if l <= 0 {
		return e.sched.RoundStart(round)
	}
	_, end := e.sched.SlotWindow(round, l)
	return end
}

// RunRound executes one TDMA round: slot transmissions in slot order,
// interleaved with the node jobs at their schedule positions.
func (e *Engine) RunRound() error {
	n := e.sched.N()
	for id := 1; id <= n; id++ {
		if e.nodes[id] == nil {
			return fmt.Errorf("sim: node %d missing", id)
		}
	}
	k := e.round
	// The round's ground-truth row is carved out of the flat block beyond
	// its current length and only committed (by extending the length) when
	// the round completes, so a failed round records nothing.
	stride := n + 1
	base := k * stride
	if cap(e.truth) < base+stride {
		grown := make([]tdma.OutcomeClass, len(e.truth), 2*(base+stride))
		copy(grown, e.truth)
		e.truth = grown
	}
	rt := e.truth[base : base+stride : base+stride]
	for i := range rt {
		rt[i] = 0
	}
	positions := e.positions
	for id := 1; id <= n; id++ {
		p, err := e.nodes[id].pos(k)
		if err != nil {
			return fmt.Errorf("sim: round %d node %d: %w", k, id, err)
		}
		if p < 0 || p > n-1 {
			return fmt.Errorf("sim: round %d node %d: job position %d out of range 0..%d", k, id, p, n-1)
		}
		positions[id] = p
	}
	for id := 1; id <= n; id++ {
		if st, ok := e.nodes[id].runner.(SnapshotTaker); ok {
			st.CaptureSnapshot(k, e.nodes[id].ctrl)
		}
	}
	for pos := 0; pos <= n; pos++ {
		for id := 1; id <= n; id++ {
			nd := e.nodes[id]
			if positions[id] != pos {
				continue
			}
			e.sink.Record(trace.Event{
				At: e.JobTime(k, pos), Round: k, Kind: trace.KindJobRun, Node: id,
			})
			payload, err := nd.runner.Run(k, nd.ctrl)
			if err != nil {
				return fmt.Errorf("sim: round %d node %d job: %w", k, id, err)
			}
			if payload != nil {
				nd.ctrl.WriteInterface(payload)
			}
		}
		if pos == n {
			break
		}
		report, err := e.bus.TransmitSlot(k, pos+1)
		if err != nil {
			return fmt.Errorf("sim: round %d slot %d: %w", k, pos+1, err)
		}
		rt[pos+1] = report.Classify()
		if e.OnReport != nil {
			e.OnReport(report)
		}
		for id := 1; id <= n; id++ {
			so, ok := e.nodes[id].runner.(SlotObserver)
			if !ok {
				continue
			}
			if err := so.OnSlotComplete(k, pos+1, e.nodes[id].ctrl); err != nil {
				return fmt.Errorf("sim: round %d slot %d observer %d: %w", k, pos+1, id, err)
			}
		}
	}
	e.truth = e.truth[:base+stride]
	e.round++
	return nil
}

// RunRounds executes the given number of rounds.
func (e *Engine) RunRounds(count int) error {
	for i := 0; i < count; i++ {
		if err := e.RunRound(); err != nil {
			return err
		}
	}
	return nil
}

// Truth returns the ground-truth outcome classes of the given executed round
// (1-based by slot), or nil if the round has not been executed. The returned
// slice is a read-only view into the engine's flat ground-truth block: it
// stays valid until the next RunRound (which may grow the block) or
// ResetForRun — callers that keep rows across rounds must copy them. Every
// in-tree auditor reads rows immediately or after the run has finished.
//
//ttdiag:noretain
func (e *Engine) Truth(round int) []tdma.OutcomeClass {
	stride := e.sched.N() + 1
	if round < 0 || (round+1)*stride > len(e.truth) {
		return nil
	}
	return e.truth[round*stride : (round+1)*stride : (round+1)*stride]
}
