// Allocation-ceiling regression test for the cluster checkpoint hot path.
// The race detector instruments allocations and testing.AllocsPerRun becomes
// meaningless under it, so this file is excluded from -race builds.

//go:build !race

package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/invariant"
	"ttdiag/internal/rng"
)

// TestClusterCheckpointAllocs pins Capture and Restore at ≤ 1 allocation per
// call in steady state (the single admissible allocation is the ground-truth
// block growing past its previous high-water mark; everything else is flat
// copies into pre-sized buffers).
func TestClusterCheckpointAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	cl, err := NewReusableDiagnosticCluster(ClusterConfig{
		N:  4,
		PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	ck, err := NewClusterCheckpoint(cl)
	if err != nil {
		t.Fatal(err)
	}
	ck.AttachStream(rng.NewStream(3))
	// Warm up: run past the truth block's early doublings, capture once to
	// grow the checkpoint's buffers, restore once to warm the reverse path.
	if err := cl.Eng.RunRounds(64); err != nil {
		t.Fatal(err)
	}
	if err := ck.Capture(cl); err != nil {
		t.Fatal(err)
	}
	if err := ck.Restore(cl); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := ck.Capture(cl); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("Capture allocates %.2f objects/op in steady state, ceiling 1", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := ck.Restore(cl); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("Restore allocates %.2f objects/op in steady state, ceiling 1", avg)
	}
}
