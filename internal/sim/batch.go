// Lane-packed batched simulation front end: one BatchDiagCluster advances
// G = ⌊64/N⌋ independent Monte-Carlo repetitions ("lanes") of the same
// diagnostic cluster per TDMA round. Each node is a single
// core.BatchProtocol whose syndrome planes hold all lanes side by side, so
// one StepBatch call per node per round replaces G per-run protocol
// executions, and the TDMA delivery work is done once per (lane, slot)
// instead of once per (lane, slot, receiver).
//
// The batched front end is an executable optimisation of the lock-step
// Engine, not a replacement: its observable outputs — collector contents,
// ground-truth rows, penalty counters, telemetry — are pinned byte-exact to
// G per-run Engine executions by TestBatchClusterEquivalence.
package sim

import (
	"fmt"
	"math/bits"

	"ttdiag/internal/core"
	"ttdiag/internal/tdma"
)

// collRing is the depth of the per-node collision-verdict ring, mirroring
// the tdma.Controller history depth.
const collRing = 16

// BatchDiagCluster is a diagnostic cluster whose repetitions run
// lane-packed: every node's protocol advances all lanes with one StepBatch
// per round, and the bus delivery is evaluated once per lane and slot.
//
// The shared-plane layout is only sound when every attached disturbance is
// receiver-uniform — it degrades the delivery identically for every
// receiver (fault.Train and fault.MaliciousSyndrome are; a
// receiver-selective disturbance like fault.ReceiverBlind is not, and such
// campaigns must stay on the per-run Engine). See AddLaneDisturbance.
type BatchDiagCluster struct {
	cfg   ClusterConfig // normalized, diagnostic mode; Ls cluster-owned
	sched *tdma.Schedule
	n     int
	max   int // lane capacity, BatchLanes(N)
	lanes int // live lanes of the current gang
	round int

	protos []*core.BatchProtocol // 1-based; entry 0 is nil
	lag    []int                 // 1-based; per-node diagnosis lag

	// observe mirrors the per-run activity policy: with a reintegration
	// threshold the runners keep listening to isolated nodes, without one
	// an isolation permanently drops the sender from the observer's view.
	observe bool

	laneAll uint64 // PlaneMask(N), one lane's segment
	laneRep uint64 // bit r·N set for every live lane
	allB    uint64 // laneRep · laneAll: every live lane's node bits

	// Shared receiver state. Because disturbances are receiver-uniform,
	// all receivers observe the same delivery: rows[j] holds sender j's
	// last decoded wire word lane-packed, presentB the lanes·senders whose
	// stored payload is valid and decodable.
	rows     []core.BitSyndrome // 1-based by interface variable
	presentB uint64

	// Per-observer divergence from the shared planes. ign[i] marks the
	// senders observer i has stopped listening to (monotone when observe
	// is false, constant zero otherwise), ownClear[s] the lanes in which
	// node s's last own-slot transmission collided (the sender-side
	// loopback invalidation), both lane-packed at the sender's column.
	ign      []uint64 // 1-based by observer
	ownClear []uint64 // 1-based by sender

	// staged[s] is node s's outbox: the lane-packed wire word its next
	// slot-s transmission carries (Op∧Known of the last StepBatch send).
	staged []uint64 // 1-based by sender

	// Per-node collision-verdict rings (flat node·collRing+i), mirroring
	// the controller's 16-deep history: the lanes in which the node's
	// own transmission of a given round collided.
	collRound []int
	collMask  []uint64
	collSeen  []bool

	dist    []tdma.Disturbances // per lane
	horizon []int               // per lane: rounds to record (run length)

	truth    [][]tdma.OutcomeClass // per lane, flat rows of N+1
	cols     []*Collector          // per lane
	finalPen [][]int64             // per lane, flat observer·(N+1)+j

	payload []byte // EncodedLen(N) transmission scratch
	tx      tdma.Transmission

	// hvArena backs the unpacked consolidated health vectors handed to the
	// collectors, bump-allocated in (N+1)-entry chunks. The collectors own
	// their slices only until the gang ends: ResetBatch resets the collectors
	// (which drop every reference) and rewinds the offset, so one slab is
	// recycled across gangs instead of one allocation per recorded vector.
	hvArena core.Syndrome
	hvOff   int
}

// NewBatchDiagCluster builds a lane-packed diagnostic cluster with capacity
// for BatchLanes(N) repetitions per gang. The configuration space matches
// NewReusableDiagnosticCluster except that Mode is forced to diagnostic and
// trace sinks are not supported (tracing campaigns use the per-run engine).
// The configuration stays caller-owned: its slot layout is copied.
//
//ttdiag:noretain params
func NewBatchDiagCluster(cfg ClusterConfig) (*BatchDiagCluster, error) {
	norm, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	norm.Mode = core.ModeDiagnostic
	if norm.Sink != nil {
		return nil, fmt.Errorf("sim: batched cluster does not support trace sinks")
	}
	norm.Ls = append([]int(nil), norm.Ls...)
	maxLanes := core.BatchLanes(norm.N)
	if maxLanes < 1 {
		return nil, fmt.Errorf("sim: N=%d does not fit a 64-bit lane plane", norm.N)
	}
	sched, err := newSchedule(norm)
	if err != nil {
		return nil, err
	}
	c := &BatchDiagCluster{
		cfg:       norm,
		sched:     sched,
		n:         norm.N,
		max:       maxLanes,
		protos:    make([]*core.BatchProtocol, norm.N+1),
		lag:       make([]int, norm.N+1),
		observe:   norm.PR.ReintegrationThreshold > 0,
		laneAll:   core.PlaneMask(norm.N),
		rows:      make([]core.BitSyndrome, norm.N+1),
		ign:       make([]uint64, norm.N+1),
		ownClear:  make([]uint64, norm.N+1),
		staged:    make([]uint64, norm.N+1),
		collRound: make([]int, (norm.N+1)*collRing),
		collMask:  make([]uint64, (norm.N+1)*collRing),
		collSeen:  make([]bool, (norm.N+1)*collRing),
		dist:      make([]tdma.Disturbances, maxLanes),
		horizon:   make([]int, maxLanes),
		truth:     make([][]tdma.OutcomeClass, maxLanes),
		cols:      make([]*Collector, maxLanes),
		finalPen:  make([][]int64, maxLanes),
		payload:   make([]byte, core.EncodedLen(norm.N)),
	}
	for id := 1; id <= norm.N; id++ {
		nc := norm.nodeConfig(id)
		p, err := core.NewBatchProtocol(nc, maxLanes)
		if err != nil {
			return nil, err
		}
		c.protos[id] = p
		c.lag[id] = nc.Lag()
	}
	for r := 0; r < maxLanes; r++ {
		c.cols[r] = NewCollector()
		c.finalPen[r] = make([]int64, (norm.N+1)*(norm.N+1))
	}
	c.ResetBatch(maxLanes)
	return c, nil
}

// Config returns the cluster's normalized configuration.
func (c *BatchDiagCluster) Config() ClusterConfig { return c.cfg }

// Schedule returns the cluster's TDMA schedule.
func (c *BatchDiagCluster) Schedule() *tdma.Schedule { return c.sched }

// MaxLanes returns the gang capacity ⌊64/N⌋.
func (c *BatchDiagCluster) MaxLanes() int { return c.max }

// Lanes returns the live lane count of the current gang.
func (c *BatchDiagCluster) Lanes() int { return c.lanes }

// Proto returns node id's lane-packed protocol, e.g. to attach per-lane
// telemetry via SetLaneMetrics before Run (attachments survive ResetBatch).
func (c *BatchDiagCluster) Proto(id int) *core.BatchProtocol { return c.protos[id] }

// ResetBatch rewinds the cluster for the next gang of `lanes` repetitions
// (a ragged final gang shrinks the lane count): protocols restart their
// warm-up, disturbances and horizons are dropped, collectors and ground
// truth are emptied and the bootstrap all-healthy outboxes are re-staged.
func (c *BatchDiagCluster) ResetBatch(lanes int) error {
	if lanes < 1 || lanes > c.max {
		return fmt.Errorf("sim: gang of %d lanes outside 1..%d", lanes, c.max)
	}
	c.lanes = lanes
	c.round = 0
	c.laneRep = 0
	for r := 0; r < lanes; r++ {
		c.laneRep |= 1 << uint(r*c.n)
	}
	c.allB = c.laneRep * c.laneAll
	for id := 1; id <= c.n; id++ {
		c.protos[id].Reset(lanes)
		c.ign[id] = 0
		c.ownClear[id] = 0
		// The bootstrap outbox is the all-healthy syndrome in every lane,
		// mirroring bootstrapOutboxes on the per-run path.
		c.staged[id] = c.allB
		c.rows[id] = core.BitSyndrome{Op: 0, Known: c.allB}
	}
	c.presentB = 0
	for i := range c.collSeen {
		c.collSeen[i] = false
	}
	for r := 0; r < c.max; r++ {
		c.dist[r] = c.dist[r][:0]
		c.horizon[r] = 0
		c.truth[r] = c.truth[r][:0]
		c.cols[r].Reset()
	}
	// The collectors just dropped every health-vector reference, so the
	// arena slab can be recycled for the next gang.
	c.hvOff = 0
	return nil
}

// allocHV carves the next (N+1)-entry health vector out of the arena,
// growing it by a fresh slab when exhausted (earlier slabs stay alive
// through the collector references that still point into them).
func (c *BatchDiagCluster) allocHV() core.Syndrome {
	w := c.n + 1
	if c.hvOff+w > len(c.hvArena) {
		size := 1024 * w
		c.hvArena = make(core.Syndrome, size)
		c.hvOff = 0
	}
	hv := c.hvArena[c.hvOff : c.hvOff+w : c.hvOff+w]
	c.hvOff += w
	return hv
}

// AddLaneDisturbance appends a disturbance to one lane's bus filter chain.
//
// The disturbance must be receiver-uniform: Deliver must not depend on the
// rcv argument, because the batched bus evaluates it once per (lane, slot)
// with a representative receiver and shares the result across all
// receivers. fault.Train (and any burst train) and fault.MaliciousSyndrome
// qualify; fault.ReceiverBlind does not.
func (c *BatchDiagCluster) AddLaneDisturbance(lane int, d tdma.Disturbance) {
	c.dist[lane] = append(c.dist[lane], d)
}

// SetLaneHorizon pins one lane's repetition length in rounds: the lane's
// ground truth, collector records and telemetry cover rounds 0..rounds-1,
// and its final penalty counters are captured when that round completes.
// Run executes to the maximum horizon over the gang; lanes keep stepping
// past their own horizon (the segments are independent) but record nothing.
func (c *BatchDiagCluster) SetLaneHorizon(lane, rounds int) {
	c.horizon[lane] = rounds
}

// LaneCollector returns the cluster-owned collector of one lane.
func (c *BatchDiagCluster) LaneCollector(lane int) *Collector { return c.cols[lane] }

// LaneTruth returns a TruthSource view over one lane's recorded ground
// truth, interchangeable with the per-run Engine for the audits and the
// system-level metrics observers.
func (c *BatchDiagCluster) LaneTruth(lane int) TruthSource {
	return laneTruth{c: c, lane: lane}
}

// LaneFinalPenalty returns observer's penalty counter for node j in one
// lane, captured at the lane's horizon (the value a per-run repetition
// ends with).
func (c *BatchDiagCluster) LaneFinalPenalty(lane, observer, j int) int64 {
	return c.finalPen[lane][observer*(c.n+1)+j]
}

// laneTruth adapts one lane's recorded rows to the TruthSource interface.
type laneTruth struct {
	c    *BatchDiagCluster
	lane int
}

func (t laneTruth) Round() int { return len(t.c.truth[t.lane]) / (t.c.n + 1) }

func (t laneTruth) Truth(round int) []tdma.OutcomeClass {
	w := t.c.n + 1
	rows := t.c.truth[t.lane]
	if round < 0 || (round+1)*w > len(rows) {
		return nil
	}
	return rows[round*w : (round+1)*w : (round+1)*w]
}

// Run executes the gang to the maximum lane horizon. It is the batched
// counterpart of Engine.RunRounds over every repetition of the gang.
func (c *BatchDiagCluster) Run() error {
	maxH := 0
	for r := 0; r < c.lanes; r++ {
		if c.horizon[r] > maxH {
			maxH = c.horizon[r]
		}
	}
	w := c.n + 1
	for c.round < maxH {
		k := c.round
		for r := 0; r < c.lanes; r++ {
			if c.horizon[r] == k {
				// The lane's repetition ended last round: detach its
				// telemetry so rounds past the horizon emit nothing,
				// exactly like a per-run repetition that has stopped.
				for id := 1; id <= c.n; id++ {
					c.protos[id].SetLaneMetrics(r, nil)
				}
			}
			if k < c.horizon[r] {
				for i := 0; i < w; i++ {
					c.truth[r] = append(c.truth[r], 0)
				}
			}
		}
		if err := c.runRound(k); err != nil {
			for r := 0; r < c.lanes; r++ {
				if k < c.horizon[r] {
					c.truth[r] = c.truth[r][:k*w]
				}
			}
			return err
		}
		c.round++
		for r := 0; r < c.lanes; r++ {
			if c.horizon[r] == c.round {
				c.captureFinal(r)
			}
		}
	}
	return nil
}

// runRound advances every lane by one TDMA round, mirroring
// Engine.RunRound's slot walk: diagnostic jobs at their positions, then the
// slot transmission, N times.
func (c *BatchDiagCluster) runRound(k int) error {
	for pos := 0; pos <= c.n; pos++ {
		for id := 1; id <= c.n; id++ {
			if c.cfg.Ls[id-1] == pos {
				if err := c.runJob(k, id); err != nil {
					return err
				}
			}
		}
		if pos == c.n {
			break
		}
		c.transmitSlot(k, pos+1)
	}
	return nil
}

// runJob executes node id's diagnostic job for every lane at once.
func (c *BatchDiagCluster) runJob(k, id int) error {
	present := c.presentB &^ (c.ign[id] | c.ownClear[id])
	var collF uint64
	if d := k - c.lag[id]; d >= 0 {
		i := id*collRing + d%collRing
		if c.collSeen[i] && c.collRound[i] == d {
			collF = c.collMask[i]
		}
	}
	out, err := c.protos[id].StepBatch(core.BatchRoundInput{
		Round:           k,
		Rows:            c.rows,
		Present:         present,
		Validity:        core.BitSyndrome{Op: present, Known: c.allB},
		CollisionFaulty: collF,
	})
	if err != nil {
		return fmt.Errorf("sim: node %d round %d: %w", id, k, err)
	}
	c.staged[id] = out.SendOp & out.SendKnown
	if !c.observe {
		// No reintegration: an isolation permanently drops the sender
		// from this observer's view, which is what the per-run
		// SetIgnored(j, true) does to the controller.
		c.ign[id] |= c.allB &^ out.ActiveMask
	}
	for r := 0; r < c.lanes; r++ {
		if out.Round >= c.horizon[r] {
			continue
		}
		col := c.cols[r]
		if out.Warm {
			hv := c.allocHV()
			out.LaneConsHV(r, c.n).UnpackInto(hv)
			col.setHV(out.DiagnosedRound, id, hv)
		}
		for iso := out.LaneIsolated(r, c.n); iso != 0; iso &= iso - 1 {
			j := bits.TrailingZeros64(iso) + 1
			col.Isolations = append(col.Isolations, Isolation{Observer: id, Node: j, Round: out.Round})
		}
		for re := out.LaneReintegrated(r, c.n); re != 0; re &= re - 1 {
			j := bits.TrailingZeros64(re) + 1
			col.Reintegrations = append(col.Reintegrations, Isolation{Observer: id, Node: j, Round: out.Round})
		}
	}
	return nil
}

// transmitSlot broadcasts node s's staged outbox in every lane: encode the
// lane's wire word, run the lane's disturbance chain once (receiver-uniform,
// representative receiver 1), fold the delivery into the shared planes and
// the sender's collision ring, and record the lane's ground truth.
func (c *BatchDiagCluster) transmitSlot(k, s int) {
	start, end := c.sched.SlotWindow(k, s)
	n := c.n
	encLen := len(c.payload)
	// The transmission is lane-invariant (only the payload bytes differ, and
	// those are re-encoded in place), and no Disturbance mutates it, so it is
	// built once per slot rather than once per lane.
	c.tx = tdma.Transmission{
		Sender: tdma.NodeID(s), Round: k, Slot: s,
		Start: start, End: end, Payload: c.payload,
	}
	clean := tdma.Delivery{Valid: true, Payload: c.payload}
	var wireWord, validLanes, collLanes uint64
	for r := 0; r < c.lanes; r++ {
		laneW := core.LaneView(c.staged[s], r, n)
		core.BitSyndrome{Op: laneW, Known: c.laneAll}.EncodeInto(c.payload)
		d := c.dist[r].Deliver(&c.tx, 1, clean)
		untouched := false
		if d.Valid && len(d.Payload) == encLen {
			if untouched = payloadEqual(d.Payload, c.payload); untouched {
				// The chain passed the encoding through unaltered, so it
				// decodes back to exactly the word we encoded — skip the
				// wire-format parse on this clean-delivery fast path.
				validLanes |= 1 << uint(r)
				wireWord |= laneW << uint(r*n)
			} else if row, err := core.BitSyndromeFromWire(d.Payload, n); err == nil {
				validLanes |= 1 << uint(r)
				wireWord |= row.Op << uint(r*n)
			}
		}
		if c.dist[r].SenderCollision(&c.tx, false) {
			collLanes |= 1 << uint(r)
		}
		if k < c.horizon[r] {
			// Ground-truth classification over the non-sender receivers,
			// all of which observe this same delivery: invalid is locally
			// detectable (benign), altered payload bytes are malicious.
			class := tdma.OutcomeCorrect
			if !d.Valid {
				class = tdma.OutcomeBenign
			} else if !untouched {
				class = tdma.OutcomeMalicious
			}
			c.truth[r][k*(n+1)+s] = class
		}
	}
	col := uint(s - 1)
	c.presentB = (c.presentB &^ (c.laneRep << col)) | expandColumn(validLanes, col, n)
	c.rows[s] = core.BitSyndrome{Op: wireWord, Known: c.allB}
	// Sender-side collision feedback: the controller cannot read its own
	// message back, so the sender's stored copy of its own slot is
	// invalidated (other receivers keep their deliveries), and the verdict
	// enters the node's collision history for the Lemma 3 fallback.
	c.ownClear[s] = expandColumn(collLanes, col, n)
	i := s*collRing + k%collRing
	c.collRound[i] = k
	c.collMask[i] = collLanes
	c.collSeen[i] = true
}

// captureFinal snapshots one lane's per-observer penalty counters at its
// horizon, before later rounds of longer lanes keep mutating the shared
// counter planes.
func (c *BatchDiagCluster) captureFinal(r int) {
	for id := 1; id <= c.n; id++ {
		for j := 1; j <= c.n; j++ {
			c.finalPen[r][id*(c.n+1)+j] = c.protos[id].LanePenalty(r, j)
		}
	}
}

// expandColumn spreads per-lane bits (bit r = lane r) to the lane-packed
// plane position of one sender column (bit r·N+col).
func expandColumn(laneBits uint64, col uint, n int) uint64 {
	var out uint64
	for ; laneBits != 0; laneBits &= laneBits - 1 {
		r := bits.TrailingZeros64(laneBits)
		out |= 1 << (uint(r*n) + col)
	}
	return out
}

func payloadEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
