package sim

import (
	"fmt"
	"strings"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/tdma"
)

// renderDiagState flattens everything a campaign can observe from a
// diagnostic run — ground truth, consistent health vectors, isolation and
// reintegration decisions, and the protocols' final counters — into one
// comparable string.
func renderDiagState(eng *Engine, runners []*DiagRunner, col *Collector, rounds int) string {
	var b strings.Builder
	n := eng.Schedule().N()
	for d := 0; d < rounds; d++ {
		if tr := eng.Truth(d); tr != nil {
			fmt.Fprintf(&b, "truth %d: %v\n", d, tr)
		}
		byObs := col.RoundHVs(d)
		for obs := 1; obs <= n; obs++ {
			if byObs != nil && byObs[obs] != nil {
				fmt.Fprintf(&b, "hv %d/%d: %s\n", d, obs, byObs[obs])
			}
		}
	}
	for _, iso := range col.Isolations {
		fmt.Fprintf(&b, "iso %+v\n", iso)
	}
	for _, re := range col.Reintegrations {
		fmt.Fprintf(&b, "rei %+v\n", re)
	}
	for id := 1; id <= n; id++ {
		pr := runners[id].Protocol().PenaltyReward()
		for j := 1; j <= n; j++ {
			fmt.Fprintf(&b, "pr %d/%d: p=%d r=%d\n", id, j, pr.Penalty(j), pr.Reward(j))
		}
	}
	return b.String()
}

// runDiagScenario injects a burst train and runs the cluster, collecting the
// full observable state into col (which may be a reset-reused collector).
func runDiagScenario(eng *Engine, runners []*DiagRunner, col *Collector, injectRound, startSlot, slots, rounds int) (string, error) {
	for id := 1; id <= eng.Schedule().N(); id++ {
		col.HookDiag(id, runners[id])
	}
	eng.Bus().AddDisturbance(fault.NewTrain(
		fault.SlotBurst(eng.Schedule(), injectRound, startSlot, slots)))
	if err := eng.RunRounds(rounds); err != nil {
		return "", err
	}
	return renderDiagState(eng, runners, col, rounds), nil
}

// TestClusterReuseEquivalence checks the reuse contract of the campaign
// clusters: a reset-reused cluster must produce byte-identical observable
// state to a freshly built one, even after it previously ran a different
// scenario (including one that drove isolations).
func TestClusterReuseEquivalence(t *testing.T) {
	cfg := ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 1 << 40},
	}
	const rounds = 24

	fresh, freshRunners, err := NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runDiagScenario(fresh, freshRunners, NewCollector(), 6, 3, 2, rounds)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := NewReusableDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A different first scenario: repeated bursts in node 2's slot, enough
	// to isolate it and dirty every counter, ring buffer and truth row. The
	// collector is reused across scenarios too, exercising Collector.Reset.
	col := NewCollector()
	if _, err := runDiagScenario(cl.Eng, cl.Runners, col, 5, 2, 9, rounds+6); err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	col.Reset()
	got, err := runDiagScenario(cl.Eng, cl.Runners, col, 6, 3, 2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reused cluster diverged from fresh cluster:\n--- fresh ---\n%s--- reused ---\n%s", want, got)
	}

	// A second reset must be just as clean.
	cl.Reset()
	col.Reset()
	got, err = runDiagScenario(cl.Eng, cl.Runners, col, 6, 3, 2, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("second reuse diverged from fresh cluster")
	}
}

// TestClusterReuseEquivalenceResetLs checks the schedule-swapping reset: a
// reused cluster re-pinned to a new internal schedule must match a cluster
// freshly built with that schedule.
func TestClusterReuseEquivalenceResetLs(t *testing.T) {
	lsA := []int{0, 1, 2, 3}
	lsB := []int{2, 0, 3, 1}
	const rounds = 24

	fresh, freshRunners, err := NewDiagnosticCluster(ClusterConfig{Ls: lsB})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runDiagScenario(fresh, freshRunners, NewCollector(), 7, 1, 1, rounds)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := NewReusableDiagnosticCluster(ClusterConfig{Ls: lsA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runDiagScenario(cl.Eng, cl.Runners, NewCollector(), 6, 4, 2, rounds); err != nil {
		t.Fatal(err)
	}
	if err := cl.ResetLs(lsB); err != nil {
		t.Fatal(err)
	}
	got, err := runDiagScenario(cl.Eng, cl.Runners, NewCollector(), 7, 1, 1, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ResetLs cluster diverged from fresh cluster:\n--- fresh ---\n%s--- reused ---\n%s", want, got)
	}

	if err := cl.ResetLs([]int{9, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range position: want an error")
	}
	if err := cl.ResetLs([]int{0, 1}); err == nil {
		t.Fatal("wrong length: want an error")
	}
}

// TestMembershipClusterReuseEquivalence is the membership-mode counterpart:
// view histories and formation rounds must be identical between a fresh and
// a reset-reused cluster.
func TestMembershipClusterReuseEquivalence(t *testing.T) {
	cfg := ClusterConfig{Ls: []int{2, 0, 3, 1}}
	const rounds = 22

	scenario := func(eng *Engine, runners []*MembershipRunner, missed tdma.NodeID) (string, error) {
		eng.Bus().AddDisturbance(fault.ReceiverBlind{
			Receiver: 1, Senders: []tdma.NodeID{missed},
			FromRound: 6, ToRound: 7,
		})
		if err := eng.RunRounds(rounds); err != nil {
			return "", err
		}
		var b strings.Builder
		for id := 1; id <= 4; id++ {
			for _, v := range runners[id].Service().History() {
				fmt.Fprintf(&b, "node %d view %d at %d: %v\n", id, v.ID, v.FormedAtRound, v.Members)
			}
		}
		return b.String(), nil
	}

	fresh, freshRunners, err := NewMembershipCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario(fresh, freshRunners, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, "[2 3 4]") {
		t.Fatalf("scenario did not form the expected clique view:\n%s", want)
	}

	cl, err := NewReusableMembershipCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario(cl.Eng, cl.Runners, 4); err != nil {
		t.Fatal(err)
	}
	cl.Reset()
	got, err := scenario(cl.Eng, cl.Runners, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reused membership cluster diverged:\n--- fresh ---\n%s--- reused ---\n%s", want, got)
	}
}
