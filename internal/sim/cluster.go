package sim

import (
	"fmt"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/trace"
)

// DefaultRoundLen is the TDMA round length of the paper's prototype (2.5 ms).
const DefaultRoundLen = 2500 * time.Microsecond

// ClusterConfig describes a homogeneous protocol cluster.
type ClusterConfig struct {
	// N is the number of nodes; 0 defaults to the paper's 4-node prototype.
	N int
	// RoundLen is the TDMA round length; 0 defaults to 2.5 ms.
	RoundLen time.Duration
	// SlotLens, when set, declares per-slot durations (heterogeneous frame
	// lengths); it overrides RoundLen and must have N entries.
	SlotLens []time.Duration
	// Ls[i] (0-based, node i+1) is each node's diagnostic-job position l_i.
	// nil defaults to the staircase schedule (job right before the node's
	// own slot), under which every node satisfies send_curr_round.
	Ls []int
	// AllSendCurrRound declares the design-time knowledge that every node's
	// job completes before its slot, shrinking the detection latency by one
	// round. It must be consistent with Ls.
	AllSendCurrRound bool
	// PR tunes the penalty/reward algorithm. Zero thresholds default to
	// "never isolate, never forget" (both thresholds practically infinite),
	// which is convenient for pure detection experiments.
	PR core.PRConfig
	// Mode selects diagnostic or membership behaviour for DiagRunner-based
	// clusters (NewDiagnosticCluster forces ModeDiagnostic).
	Mode core.Mode
	// Sink receives trace events; nil discards them.
	Sink trace.Sink
}

func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	if c.N == 0 {
		c.N = 4
	}
	if c.N < 2 {
		return c, fmt.Errorf("sim: cluster needs at least 2 nodes, got %d", c.N)
	}
	if c.RoundLen == 0 {
		c.RoundLen = DefaultRoundLen
	}
	if c.Ls == nil {
		c.Ls = Staircase(c.N)
	}
	if len(c.Ls) != c.N {
		return c, fmt.Errorf("sim: Ls has %d entries, want %d", len(c.Ls), c.N)
	}
	if c.AllSendCurrRound {
		for i, l := range c.Ls {
			if l >= i+1 {
				return c, fmt.Errorf("sim: AllSendCurrRound set but node %d has l=%d (job after its slot)", i+1, l)
			}
		}
	}
	if c.PR.PenaltyThreshold == 0 && c.PR.RewardThreshold == 0 {
		c.PR.PenaltyThreshold = 1 << 50
		c.PR.RewardThreshold = 1 << 50
	}
	return c, nil
}

// Staircase returns the schedule in which every node's job runs right before
// its own sending slot (l_i = i-1): the lowest-latency add-on configuration,
// satisfying send_curr_round everywhere.
func Staircase(n int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = i
	}
	return ls
}

// Uniform returns the schedule in which every node's job runs at the same
// position l.
func Uniform(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

// NormalizeConfig applies the defaulting and validation rules of the
// cluster builders. It is exported so that the concurrent runtime accepts
// exactly the same configurations as the lock-step engine.
func NormalizeConfig(cfg ClusterConfig) (ClusterConfig, error) {
	return cfg.withDefaults()
}

// NodeConfig derives node id's protocol configuration from a (normalized)
// cluster configuration, shared with the concurrent runtime.
func NodeConfig(cfg ClusterConfig, id int) core.Config {
	return cfg.nodeConfig(id)
}

// nodeConfig derives node id's protocol configuration from the cluster
// configuration.
func (c ClusterConfig) nodeConfig(id int) core.Config {
	l := c.Ls[id-1]
	return core.Config{
		N:                c.N,
		ID:               id,
		L:                l,
		SendCurrRound:    l < id,
		AllSendCurrRound: c.AllSendCurrRound,
		Mode:             c.Mode,
		PR:               c.PR,
	}
}

// NewDiagnosticCluster wires an engine with one DiagRunner per node.
func NewDiagnosticCluster(cfg ClusterConfig) (*Engine, []*DiagRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	cfg.Mode = core.ModeDiagnostic
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*DiagRunner, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		r, err := NewDiagRunner(cfg.nodeConfig(id))
		if err != nil {
			return nil, nil, err
		}
		if err := eng.AddNode(tdmaID(id), cfg.Ls[id-1], r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}

// bootstrapOutboxes stages an initial all-healthy syndrome in every
// controller so that slots transmitted before the node's first diagnostic-job
// execution carry a valid payload (the middleware initialises its interface
// variable before the communication schedule starts).
func bootstrapOutboxes(eng *Engine, n int) {
	initial := core.NewSyndrome(n, core.Healthy).Encode()
	for id := 1; id <= n; id++ {
		eng.Controller(tdmaID(id)).WriteInterface(initial)
	}
}

// NewMembershipCluster wires an engine with one MembershipRunner per node.
func NewMembershipCluster(cfg ClusterConfig) (*Engine, []*MembershipRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	cfg.Mode = core.ModeMembership
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*MembershipRunner, cfg.N+1)
	for id := 1; id <= cfg.N; id++ {
		r, err := NewMembershipRunner(cfg.nodeConfig(id))
		if err != nil {
			return nil, nil, err
		}
		if err := eng.AddNode(tdmaID(id), cfg.Ls[id-1], r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}
