package sim

import (
	"fmt"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/trace"
)

// DefaultRoundLen is the TDMA round length of the paper's prototype (2.5 ms).
const DefaultRoundLen = 2500 * time.Microsecond

// ClusterConfig describes a homogeneous protocol cluster.
type ClusterConfig struct {
	// N is the number of nodes; 0 defaults to the paper's 4-node prototype.
	N int
	// RoundLen is the TDMA round length; 0 defaults to 2.5 ms.
	RoundLen time.Duration
	// SlotLens, when set, declares per-slot durations (heterogeneous frame
	// lengths); it overrides RoundLen and must have N entries.
	SlotLens []time.Duration
	// Ls[i] (0-based, node i+1) is each node's diagnostic-job position l_i.
	// nil defaults to the staircase schedule (job right before the node's
	// own slot), under which every node satisfies send_curr_round.
	Ls []int
	// AllSendCurrRound declares the design-time knowledge that every node's
	// job completes before its slot, shrinking the detection latency by one
	// round. It must be consistent with Ls.
	AllSendCurrRound bool
	// PR tunes the penalty/reward algorithm. Zero thresholds default to
	// "never isolate, never forget" (both thresholds practically infinite),
	// which is convenient for pure detection experiments.
	PR core.PRConfig
	// Mode selects diagnostic or membership behaviour for DiagRunner-based
	// clusters (NewDiagnosticCluster forces ModeDiagnostic).
	Mode core.Mode
	// Sink receives trace events; nil discards them. Besides the engine's
	// transmit/job events, a non-nil sink also receives node 1's causal
	// flight-recorder stream (accusations, penalty changes, isolations,
	// reintegrations — see core.StepTrace) and, in membership clusters, view
	// changes. One observer suffices: Theorem 1 consistency makes every
	// obedient node's causal transitions identical.
	Sink trace.Sink
	// ForceScalar pins every protocol to the scalar reference representation
	// regardless of N. Differential tooling (the divergence bisector) runs a
	// forced-scalar cluster against a packed one to localise representation
	// divergences; production clusters leave it false.
	ForceScalar bool
}

func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	if c.N == 0 {
		c.N = 4
	}
	if c.N < 2 {
		return c, fmt.Errorf("sim: cluster needs at least 2 nodes, got %d", c.N)
	}
	if c.RoundLen == 0 {
		c.RoundLen = DefaultRoundLen
	}
	if c.Ls == nil {
		c.Ls = Staircase(c.N)
	}
	if len(c.Ls) != c.N {
		return c, fmt.Errorf("sim: Ls has %d entries, want %d", len(c.Ls), c.N)
	}
	if c.AllSendCurrRound {
		for i, l := range c.Ls {
			if l >= i+1 {
				return c, fmt.Errorf("sim: AllSendCurrRound set but node %d has l=%d (job after its slot)", i+1, l)
			}
		}
	}
	if c.PR.PenaltyThreshold == 0 && c.PR.RewardThreshold == 0 {
		c.PR.PenaltyThreshold = 1 << 50
		c.PR.RewardThreshold = 1 << 50
	}
	return c, nil
}

// Staircase returns the schedule in which every node's job runs right before
// its own sending slot (l_i = i-1): the lowest-latency add-on configuration,
// satisfying send_curr_round everywhere.
func Staircase(n int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = i
	}
	return ls
}

// Uniform returns the schedule in which every node's job runs at the same
// position l.
func Uniform(n, l int) []int {
	ls := make([]int, n)
	for i := range ls {
		ls[i] = l
	}
	return ls
}

// NormalizeConfig applies the defaulting and validation rules of the
// cluster builders. It is exported so that the concurrent runtime accepts
// exactly the same configurations as the lock-step engine.
func NormalizeConfig(cfg ClusterConfig) (ClusterConfig, error) {
	return cfg.withDefaults()
}

// NodeConfig derives node id's protocol configuration from a (normalized)
// cluster configuration, shared with the concurrent runtime.
func NodeConfig(cfg ClusterConfig, id int) core.Config {
	return cfg.nodeConfig(id)
}

// nodeConfig derives node id's protocol configuration from the cluster
// configuration.
func (c ClusterConfig) nodeConfig(id int) core.Config {
	l := c.Ls[id-1]
	return core.Config{
		N:                c.N,
		ID:               id,
		L:                l,
		SendCurrRound:    l < id,
		AllSendCurrRound: c.AllSendCurrRound,
		Mode:             c.Mode,
		PR:               c.PR,
	}
}

// NewDiagnosticCluster wires an engine with one DiagRunner per node.
func NewDiagnosticCluster(cfg ClusterConfig) (*Engine, []*DiagRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	cfg.Mode = core.ModeDiagnostic
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*DiagRunner, cfg.N+1)
	newRunner := NewDiagRunner
	if cfg.ForceScalar {
		newRunner = NewScalarDiagRunner
	}
	for id := 1; id <= cfg.N; id++ {
		r, err := newRunner(cfg.nodeConfig(id))
		if err != nil {
			return nil, nil, err
		}
		if err := eng.AddNode(tdmaID(id), cfg.Ls[id-1], r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	if cfg.Sink != nil {
		// Node 1 carries the causal flight recorder (one observer — see the
		// Sink field); the attachment survives runner resets.
		runners[1].Protocol().SetTrace(core.NewStepTrace(cfg.Sink))
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}

// bootstrapOutboxes stages an initial all-healthy syndrome in every
// controller so that slots transmitted before the node's first diagnostic-job
// execution carry a valid payload (the middleware initialises its interface
// variable before the communication schedule starts).
func bootstrapOutboxes(eng *Engine, n int) {
	initial := core.NewSyndrome(n, core.Healthy).Encode()
	for id := 1; id <= n; id++ {
		eng.Controller(tdmaID(id)).WriteInterface(initial)
	}
}

// DiagCluster is a reusable diagnostic cluster: one engine plus one
// DiagRunner per node, built once and then reset between campaign
// repetitions, so that the steady state of a Monte-Carlo campaign performs no
// per-repetition wiring allocations.
type DiagCluster struct {
	Eng     *Engine
	Runners []*DiagRunner // 1-based; entry 0 is nil
	cfg     ClusterConfig // normalized; Ls is cluster-owned
	initial []byte        // bootstrap payload staged on every reset
}

// NewReusableDiagnosticCluster builds a diagnostic cluster intended for
// reuse via Reset / ResetLs.
func NewReusableDiagnosticCluster(cfg ClusterConfig) (*DiagCluster, error) {
	norm, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	norm.Mode = core.ModeDiagnostic
	eng, runners, err := NewDiagnosticCluster(cfg)
	if err != nil {
		return nil, err
	}
	norm.Ls = append([]int(nil), norm.Ls...)
	return &DiagCluster{
		Eng:     eng,
		Runners: runners,
		cfg:     norm,
		initial: core.NewSyndrome(norm.N, core.Healthy).Encode(),
	}, nil
}

// Config returns the cluster's normalized configuration.
func (c *DiagCluster) Config() ClusterConfig { return c.cfg }

// Reset rewinds the cluster to its freshly built state for the next
// repetition: engine ground truth and disturbances are discarded, every
// protocol restarts its warm-up, observers are detached and the bootstrap
// payloads are re-staged. No allocations are needed beyond the protocol's
// per-reset syndrome pair.
func (c *DiagCluster) Reset() {
	c.Eng.ResetForRun()
	for id := 1; id <= c.cfg.N; id++ {
		c.Runners[id].ResetForRun()
		c.Eng.Controller(tdmaID(id)).WriteInterface(c.initial)
	}
}

// ResetLs is Reset with a new internal schedule: every node's
// diagnostic-job position is re-pinned to ls[i] (0-based, node i+1) and its
// protocol reconfigured accordingly — the per-repetition random schedules of
// the resilience experiments without rebuilding the cluster.
func (c *DiagCluster) ResetLs(ls []int) error {
	if len(ls) != c.cfg.N {
		return fmt.Errorf("sim: ResetLs got %d positions, want %d", len(ls), c.cfg.N)
	}
	for i, l := range ls {
		if l < 0 || l > c.cfg.N-1 {
			return fmt.Errorf("sim: node %d job position %d out of range 0..%d", i+1, l, c.cfg.N-1)
		}
		if c.cfg.AllSendCurrRound && l >= i+1 {
			return fmt.Errorf("sim: AllSendCurrRound set but node %d has l=%d (job after its slot)", i+1, l)
		}
	}
	copy(c.cfg.Ls, ls)
	c.Eng.ResetForRun()
	for id := 1; id <= c.cfg.N; id++ {
		if err := c.Runners[id].ResetConfig(c.cfg.nodeConfig(id)); err != nil {
			return err
		}
		if err := c.Eng.SetNodePosition(tdmaID(id), ls[id-1]); err != nil {
			return err
		}
		c.Eng.Controller(tdmaID(id)).WriteInterface(c.initial)
	}
	return nil
}

// MembershipCluster is the reusable counterpart of NewMembershipCluster.
type MembershipCluster struct {
	Eng     *Engine
	Runners []*MembershipRunner // 1-based; entry 0 is nil
	cfg     ClusterConfig
	initial []byte
}

// NewReusableMembershipCluster builds a membership cluster intended for
// reuse via Reset.
func NewReusableMembershipCluster(cfg ClusterConfig) (*MembershipCluster, error) {
	norm, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	norm.Mode = core.ModeMembership
	eng, runners, err := NewMembershipCluster(cfg)
	if err != nil {
		return nil, err
	}
	norm.Ls = append([]int(nil), norm.Ls...)
	return &MembershipCluster{
		Eng:     eng,
		Runners: runners,
		cfg:     norm,
		initial: core.NewSyndrome(norm.N, core.Healthy).Encode(),
	}, nil
}

// Config returns the cluster's normalized configuration.
func (c *MembershipCluster) Config() ClusterConfig { return c.cfg }

// Reset rewinds the cluster to its freshly built state for the next
// repetition (see DiagCluster.Reset).
func (c *MembershipCluster) Reset() {
	c.Eng.ResetForRun()
	for id := 1; id <= c.cfg.N; id++ {
		c.Runners[id].ResetForRun()
		c.Eng.Controller(tdmaID(id)).WriteInterface(c.initial)
	}
}

// NewMembershipCluster wires an engine with one MembershipRunner per node.
func NewMembershipCluster(cfg ClusterConfig) (*Engine, []*MembershipRunner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	cfg.Mode = core.ModeMembership
	sched, err := newSchedule(cfg)
	if err != nil {
		return nil, nil, err
	}
	eng := NewEngine(sched, cfg.Sink)
	runners := make([]*MembershipRunner, cfg.N+1)
	newRunner := NewMembershipRunner
	if cfg.ForceScalar {
		newRunner = NewScalarMembershipRunner
	}
	for id := 1; id <= cfg.N; id++ {
		r, err := newRunner(cfg.nodeConfig(id))
		if err != nil {
			return nil, nil, err
		}
		if err := eng.AddNode(tdmaID(id), cfg.Ls[id-1], r); err != nil {
			return nil, nil, err
		}
		runners[id] = r
	}
	if cfg.Sink != nil {
		// Node 1 carries the causal flight recorder and announces view
		// changes (one observer — see the Sink field).
		runners[1].Service().Protocol().SetTrace(core.NewStepTrace(cfg.Sink))
		runners[1].sink = cfg.Sink
	}
	bootstrapOutboxes(eng, cfg.N)
	return eng, runners, nil
}
