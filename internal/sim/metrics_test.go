package sim

import (
	"encoding/json"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/metrics"
	"ttdiag/internal/tdma"
)

// TestRunMetricsTruthCounts checks the ground-truth outcome counters: a
// two-slot benign burst must show up as exactly two benign (collision)
// transmissions, with everything else correct.
func TestRunMetricsTruthCounts(t *testing.T) {
	eng, _, err := NewDiagnosticCluster(ClusterConfig{Ls: Staircase(4)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 5, 2, 2)))
	const rounds = 12
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	m := NewRunMetrics(reg)
	m.ObserveTruth(eng)
	snap := reg.Snapshot()
	if got := snap.Counters["tx/benign"]; got != 2 {
		t.Fatalf("tx/benign = %d, want 2", got)
	}
	if got := snap.Counters["tx/correct"]; got != 4*rounds-2 {
		t.Fatalf("tx/correct = %d, want %d", got, 4*rounds-2)
	}
	if snap.Counters["tx/malicious"] != 0 || snap.Counters["tx/asymmetric"] != 0 {
		t.Fatalf("unexpected non-benign outcomes: %v", snap.Counters)
	}
}

// TestRunMetricsIsolationLatency drives node 3 into isolation with a
// persistent fault and checks that the latency histogram records one
// observation measured from the first ground-truth fault round.
func TestRunMetricsIsolationLatency(t *testing.T) {
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{
		Ls: Staircase(4),
		PR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	const faultRound = 6
	var bursts []fault.Burst
	for r := faultRound; r < faultRound+8; r++ {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := eng.RunRounds(faultRound + 14); err != nil {
		t.Fatal(err)
	}
	if col.FirstIsolation(3) < 0 {
		t.Fatalf("node 3 was never isolated")
	}
	reg := metrics.New()
	m := NewRunMetrics(reg)
	m.ObserveIsolationLatency(eng, col)
	snap := reg.Snapshot().Histograms["pr/isolation_latency_rounds"]
	if snap.Count != 1 {
		t.Fatalf("latency observations = %d, want 1", snap.Count)
	}
	wantLatency := int64(col.FirstIsolation(3) - faultRound)
	if snap.Sum != wantLatency {
		t.Fatalf("latency = %d rounds, want %d", snap.Sum, wantLatency)
	}
	if wantLatency < 0 || wantLatency > 32 {
		t.Fatalf("implausible isolation latency %d", wantLatency)
	}
}

// TestRunMetricsViewChanges checks the membership view-change counter on
// the clique scenario: every node installs at least one new view.
func TestRunMetricsViewChanges(t *testing.T) {
	eng, runners, err := NewMembershipCluster(ClusterConfig{Ls: Staircase(4)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.ReceiverBlind{
		Receiver: 1, Senders: []tdma.NodeID{3},
		FromRound: 6, ToRound: 7,
	})
	if err := eng.RunRounds(20); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	m := NewRunMetrics(reg)
	m.ObserveViews(runners)
	if got := reg.Snapshot().Counters["membership/view_changes"]; got < 3 {
		t.Fatalf("view changes = %d, want >= 3", got)
	}
}

// TestRunMetricsNilIsNop: every observer must be callable on a nil
// *RunMetrics.
func TestRunMetricsNilIsNop(t *testing.T) {
	eng, _, err := NewDiagnosticCluster(ClusterConfig{Ls: Staircase(4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunRounds(4); err != nil {
		t.Fatal(err)
	}
	var m *RunMetrics
	m.ObserveTruth(eng)
	m.ObserveIsolationLatency(eng, NewCollector())
	m.ObserveViews(nil)
}

// TestClusterMetricsReuseEquivalence runs the same faulty scenario twice on
// one reusable cluster with a fresh registry each time; the two snapshots
// must be byte-identical — the reuse path must not leak telemetry state
// between repetitions.
func TestClusterMetricsReuseEquivalence(t *testing.T) {
	cl, err := NewReusableDiagnosticCluster(ClusterConfig{Ls: Staircase(4)})
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() []byte {
		cl.Reset()
		reg := metrics.New()
		sm := core.NewStepMetrics(reg)
		for id := 1; id <= 4; id++ {
			cl.Runners[id].Protocol().SetMetrics(sm)
		}
		sys := NewRunMetrics(reg)
		cl.Eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(cl.Eng.Schedule(), 5, 1, 2)))
		if err := cl.Eng.RunRounds(16); err != nil {
			t.Fatal(err)
		}
		sys.ObserveTruth(cl.Eng)
		b, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := runOnce()
	second := runOnce()
	if string(first) != string(second) {
		t.Fatalf("reused-cluster metrics differ:\n%s\nvs\n%s", first, second)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["protocol/steps"] != 4*16 {
		t.Fatalf("steps = %d, want %d", snap.Counters["protocol/steps"], 4*16)
	}
	if snap.Counters["vote/faulty"] == 0 || snap.Counters["tx/benign"] != 2 {
		t.Fatalf("scenario under-exercised: %v", snap.Counters)
	}
}
