package sim

import (
	"fmt"

	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// ClusterCheckpoint is a reusable in-memory checkpoint of a DiagCluster
// mid-run: the engine's round cursor and ground-truth record, every node's
// protocol state and controller state (in-flight interface copies, staged
// outboxes, isolation marks, collision history), and the positions of any
// attached rng streams. Capture and Restore are flat state copies built on
// core.Protocol.CopyFrom / tdma.Controller.CopyStateFrom / rng.Stream.Save —
// no encoding, no steady-state allocations once the checkpoint's buffers
// have warmed — which is what lets the splitting engine clone runs at every
// level crossing (the JSON Snapshot path would dominate its hot loop).
//
// Capture must happen at a round boundary (between RunRound calls), which is
// the only instant the engine exposes anyway. Scenario state outside the
// cluster — bus disturbances, OnOutput/OnReport observers — is deliberately
// not captured: disturbances encode the fault process, and a splitting clone
// re-runs the suffix under a *different* fault key, so the caller owns them.
//
// A checkpoint is immutable between Capture calls, so one checkpoint may be
// restored into many clusters concurrently (the splitting workers share the
// level-entry checkpoints read-only); Capture itself must not race with
// those restores.
type ClusterCheckpoint struct {
	n      int
	round  int
	truth  []tdma.OutcomeClass
	protos []*core.Protocol   // 1-based; entry 0 nil
	ctrls  []*tdma.Controller // 1-based; entry 0 nil

	streams []*rng.Stream
	states  []rng.StreamState
}

// NewClusterCheckpoint builds an empty checkpoint shaped for c. The
// checkpoint allocates its twin protocol and controller instances once,
// here; Capture then reuses them for every capture.
func NewClusterCheckpoint(c *DiagCluster) (*ClusterCheckpoint, error) {
	n := c.cfg.N
	ck := &ClusterCheckpoint{
		n:      n,
		protos: make([]*core.Protocol, n+1),
		ctrls:  make([]*tdma.Controller, n+1),
	}
	// Twin protocols must match the cluster's representation — CopyFrom
	// rejects packed/scalar mismatches — so a forced-scalar cluster gets
	// forced-scalar twins.
	build := core.NewProtocol
	if c.cfg.ForceScalar {
		build = core.NewScalarProtocol
	}
	for id := 1; id <= n; id++ {
		p, err := build(c.cfg.nodeConfig(id))
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint node %d: %w", id, err)
		}
		ck.protos[id] = p
		ctrl, err := tdma.NewController(tdmaID(id), n)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint node %d: %w", id, err)
		}
		ck.ctrls[id] = ctrl
	}
	return ck, nil
}

// AttachStream registers a stream whose position Capture saves and Restore
// reinstates alongside the cluster state, so randomness consumed by the
// scenario between capture and restore is rewound with it. Streams must be
// attached before the first Capture.
func (ck *ClusterCheckpoint) AttachStream(st *rng.Stream) {
	ck.streams = append(ck.streams, st)
	ck.states = append(ck.states, rng.StreamState{})
}

// Round returns the engine round the last Capture recorded.
func (ck *ClusterCheckpoint) Round() int { return ck.round }

// Capture records c's current state into the checkpoint, overwriting any
// previous capture. c must have the shape the checkpoint was built for.
func (ck *ClusterCheckpoint) Capture(c *DiagCluster) error {
	if c.cfg.N != ck.n {
		return fmt.Errorf("sim: checkpoint shaped for N=%d cannot capture N=%d", ck.n, c.cfg.N)
	}
	e := c.Eng
	ck.round = e.round
	ck.truth = append(ck.truth[:0], e.truth...)
	for id := 1; id <= ck.n; id++ {
		if err := ck.protos[id].CopyFrom(c.Runners[id].proto); err != nil {
			return fmt.Errorf("sim: checkpoint node %d: %w", id, err)
		}
		if err := ck.ctrls[id].CopyStateFrom(e.nodes[id].ctrl); err != nil {
			return fmt.Errorf("sim: checkpoint node %d: %w", id, err)
		}
	}
	for i, st := range ck.streams {
		st.Save(&ck.states[i])
	}
	return nil
}

// Restore rewinds c to the captured state: the next RunRound re-executes the
// round that followed the capture. Attached streams are repositioned; the
// runners' per-round caches are invalidated so the first restored round
// rebuilds them. Bus disturbances are left as they are — install the clone's
// fault process before or after, as the scenario requires.
func (ck *ClusterCheckpoint) Restore(c *DiagCluster) error {
	if c.cfg.N != ck.n {
		return fmt.Errorf("sim: checkpoint shaped for N=%d cannot restore N=%d", ck.n, c.cfg.N)
	}
	e := c.Eng
	e.round = ck.round
	e.truth = append(e.truth[:0], ck.truth...)
	for id := 1; id <= ck.n; id++ {
		r := c.Runners[id]
		if err := r.proto.CopyFrom(ck.protos[id]); err != nil {
			return fmt.Errorf("sim: restore node %d: %w", id, err)
		}
		if err := e.nodes[id].ctrl.CopyStateFrom(ck.ctrls[id]); err != nil {
			return fmt.Errorf("sim: restore node %d: %w", id, err)
		}
		r.last = core.RoundOutput{}
		r.haveSnap = false
		r.act.reset()
	}
	for i, st := range ck.streams {
		st.Restore(&ck.states[i])
	}
	return nil
}
