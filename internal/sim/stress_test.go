package sim

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// TestStressRandomNoiseConsistency runs 2000 rounds under independent
// random transmission noise with isolation disabled. Benign-only faults are
// the generalised Lemma 3 regime: however heavy the noise, every decided
// vote is backed only by correct (hence identical) syndromes, so all nodes
// must agree on every health vector, at any fault load.
func TestStressRandomNoiseConsistency(t *testing.T) {
	for _, noiseProb := range []float64{0.02, 0.2, 0.6} {
		eng, runners, err := NewDiagnosticCluster(ClusterConfig{Ls: []int{2, 0, 3, 1}})
		if err != nil {
			t.Fatal(err)
		}
		eng.Bus().AddDisturbance(fault.NewRandomNoise(noiseProb, rng.NewStream(int64(noiseProb*1000))))
		col := NewCollector()
		for id := 1; id <= 4; id++ {
			col.HookDiag(id, runners[id])
		}
		const rounds = 2000
		if err := eng.RunRounds(rounds); err != nil {
			t.Fatal(err)
		}
		for d := 3; d < rounds-4; d++ {
			byObs := col.ConsHV[d]
			if byObs == nil {
				t.Fatalf("noise %v: no vectors for round %d", noiseProb, d)
			}
			ref := byObs[1]
			for obs := 2; obs <= 4; obs++ {
				if !byObs[obs].Equal(ref) {
					t.Fatalf("noise %v round %d: consistency violated: %v vs %v",
						noiseProb, d, ref, byObs[obs])
				}
			}
		}
	}
}

// TestStressRandomNoiseIsolationAgreement enables isolation under heavy
// noise. Isolation decisions must be agreed by every observer that is still
// part of the system when they fire: once a node is isolated its own
// protocol state may legitimately diverge (the system has excluded it), so
// only the observers active at decision time are held to agreement.
func TestStressRandomNoiseIsolationAgreement(t *testing.T) {
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 50, RewardThreshold: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.NewRandomNoise(0.2, rng.NewStream(42)))
	col := NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	if err := eng.RunRounds(2000); err != nil {
		t.Fatal(err)
	}
	if len(col.Isolations) == 0 {
		t.Fatal("20% noise never isolated anyone over 2000 rounds")
	}
	// isolatedAt[x] = earliest round any observer isolated x.
	isolatedAt := make(map[int]int)
	for _, iso := range col.Isolations {
		if r, ok := isolatedAt[iso.Node]; !ok || iso.Round < r {
			isolatedAt[iso.Node] = iso.Round
		}
	}
	for _, iso := range col.Isolations {
		// The observer itself must not have been isolated before this
		// decision round; otherwise its opinion no longer binds.
		if obsIso, ok := isolatedAt[iso.Observer]; ok && obsIso < isolatedAt[iso.Node] {
			continue
		}
		if iso.Round != isolatedAt[iso.Node] {
			t.Fatalf("active observer %d isolated node %d at round %d, first decision was %d",
				iso.Observer, iso.Node, iso.Round, isolatedAt[iso.Node])
		}
	}
	// Counter invariants at every node.
	for id := 1; id <= 4; id++ {
		pr := runners[id].Protocol().PenaltyReward()
		for j := 1; j <= 4; j++ {
			if pr.Penalty(j) < 0 || pr.Reward(j) < 0 {
				t.Fatal("negative counter")
			}
			if pr.IsActive(j) && pr.Penalty(j) > 50 {
				t.Fatal("active node beyond threshold")
			}
		}
	}
}

// TestStressMixedFaultSoup combines fault classes far beyond the Theorem 1
// bound for 600 rounds: background noise, periodic one-round bursts, a
// permanent crash and a malicious syndrome source. Outside the bound even
// consistency may legitimately fail (a malicious row can tip thin matrices
// differently against different observers' own-row knowledge), so the test
// asserts only the unconditional invariants: the run completes, the
// counters stay legal, and the permanently crashed node is isolated by
// every observer and stays isolated.
func TestStressMixedFaultSoup(t *testing.T) {
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{
		Ls: Staircase(4), AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 100, RewardThreshold: 50, ReintegrationThreshold: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(77)
	eng.Bus().AddDisturbance(fault.NewRandomNoise(0.05, src.Stream("noise")))
	eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(2, src.Stream("mal")))
	eng.Bus().AddDisturbance(fault.Periodic(0, eng.Schedule().RoundLen(), 40*eng.Schedule().RoundLen(), 12))
	eng.Bus().AddDisturbance(fault.Crash(4, 500))

	col := NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	const rounds = 600
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	// The crashed node must eventually be isolated by every observer.
	crashedIso := map[int]bool{}
	for _, iso := range col.Isolations {
		if iso.Node == 4 {
			crashedIso[iso.Observer] = true
		}
	}
	if len(crashedIso) != 4 {
		t.Fatalf("crashed node isolated by observers %v, want all 4", crashedIso)
	}
	for id := 1; id <= 4; id++ {
		pr := runners[id].Protocol().PenaltyReward()
		if pr.IsActive(4) {
			t.Fatalf("observer %d reintegrated the permanently crashed node", id)
		}
		for j := 1; j <= 4; j++ {
			if pr.Penalty(j) < 0 || pr.Reward(j) < 0 {
				t.Fatal("negative counter")
			}
			if pr.Reward(j) >= 50 {
				t.Fatalf("reward %d not reset at threshold", pr.Reward(j))
			}
		}
	}
}

// TestStressConcurrentMatchesLockStepUnderNoise extends the equivalence
// guarantee to a noisy 400-round run.
func TestStressConcurrentMatchesLockStepUnderNoise(t *testing.T) {
	cfg := ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 30, RewardThreshold: 15},
	}
	eng, runners, err := NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Bus().AddDisturbance(fault.NewRandomNoise(0.1, rng.NewStream(5)))
	const rounds = 400
	type snap struct{ hv, active string }
	ref := make([][5]snap, rounds)
	for k := 0; k < rounds; k++ {
		if err := eng.RunRound(); err != nil {
			t.Fatal(err)
		}
		for id := 1; id <= 4; id++ {
			out := runners[id].Last()
			s := snap{active: boolKey(out.Active)}
			if out.ConsHV != nil {
				s.hv = out.ConsHV.String()
			}
			ref[k][id] = s
		}
	}
	// The concurrent runtime lives in package cluster; to avoid an import
	// cycle in tests this equivalence variant re-runs the lock-step engine
	// with an identical noise stream and asserts determinism instead; the
	// cross-runtime equivalence is asserted in package cluster's tests.
	eng2, runners2, err := NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Bus().AddDisturbance(fault.NewRandomNoise(0.1, rng.NewStream(5)))
	for k := 0; k < rounds; k++ {
		if err := eng2.RunRound(); err != nil {
			t.Fatal(err)
		}
		for id := 1; id <= 4; id++ {
			out := runners2[id].Last()
			hv := ""
			if out.ConsHV != nil {
				hv = out.ConsHV.String()
			}
			if hv != ref[k][id].hv || boolKey(out.Active) != ref[k][id].active {
				t.Fatalf("round %d node %d: nondeterministic replay", k, id)
			}
		}
	}
}

func boolKey(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// TestRedundantBusMasksChannelFaults runs the protocol over a replicated
// bus (the paper's prototype had a redundant layered-TTP network): heavy
// noise confined to channel A is fully masked by channel B, so no fault is
// ever diagnosed; a common-mode burst on both channels still is.
func TestRedundantBusMasksChannelFaults(t *testing.T) {
	eng, runners, err := NewDiagnosticCluster(ClusterConfig{Ls: []int{2, 0, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	common := fault.SlotBurst(eng.Schedule(), 20, 2, 1)
	eng.Bus().AddDisturbance(fault.NewRedundantChannels(
		[]tdma.Disturbance{
			fault.NewRandomNoise(0.5, rng.NewStream(9)),
			fault.NewTrain(common),
		},
		[]tdma.Disturbance{
			fault.NewTrain(common),
		},
	))
	col := NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	const rounds = 60
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	for d := 3; d < rounds-4; d++ {
		hv := col.ConsHV[d][1]
		if d == 20 {
			if hv.String() != "1011" {
				t.Fatalf("common-mode fault diagnosed as %v, want 1011", hv)
			}
			continue
		}
		if hv.CountFaulty() != 0 {
			t.Fatalf("round %d: channel-local noise leaked through redundancy: %v", d, hv)
		}
	}
}
