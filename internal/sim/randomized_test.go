package sim

import (
	"fmt"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// randomScenario describes one generated within-bound fault mix.
type randomScenario struct {
	n        int
	ls       []int
	a, s, b  int
	obedient []int
	arm      func(eng *Engine)
}

// generateScenario draws a cluster size, a node schedule and a fault mix
// that satisfies core.Tolerates — the generator side of a property test for
// Theorem 1.
func generateScenario(st *rng.Stream) randomScenario {
	n := 4 + st.Intn(9) // 4..12
	ls := make([]int, n)
	for i := range ls {
		ls[i] = st.Intn(n)
	}
	// Draw (a,s,b) uniformly until within bound (rejection sampling with a
	// guaranteed fallback to a single benign fault).
	var a, s, b int
	for tries := 0; ; tries++ {
		a, s, b = st.Intn(2), st.Intn(3), st.Intn(n-1)
		if core.Tolerates(n, a, s, b) {
			break
		}
		if tries > 32 {
			a, s, b = 0, 0, 1
			break
		}
	}
	sc := randomScenario{n: n, ls: ls, a: a, s: s, b: b}
	const faultRound = 8
	// Fault roles on distinct nodes 1..(s+b+a).
	node := 1
	malicious := make([]tdma.NodeID, 0, s)
	for i := 0; i < s; i++ {
		malicious = append(malicious, tdma.NodeID(node))
		node++
	}
	benign := make([]int, 0, b)
	for i := 0; i < b; i++ {
		benign = append(benign, node)
		node++
	}
	asym := make([]tdma.NodeID, 0, a)
	for i := 0; i < a; i++ {
		asym = append(asym, tdma.NodeID(node))
		node++
	}
	for id := 1; id <= n; id++ {
		isMal := false
		for _, m := range malicious {
			if int(m) == id {
				isMal = true
			}
		}
		if !isMal {
			sc.obedient = append(sc.obedient, id)
		}
	}
	seedStr := st.Uint64()
	sc.arm = func(eng *Engine) {
		for i, m := range malicious {
			eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(m,
				rng.NewSource(int64(seedStr)).Stream(fmt.Sprintf("mal-%d", i))))
		}
		var bursts []fault.Burst
		for _, bn := range benign {
			bursts = append(bursts, fault.SlotBurst(eng.Schedule(), faultRound, bn, 1))
		}
		if len(bursts) > 0 {
			eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
		}
		for _, an := range asym {
			victim := tdma.NodeID(int(an)%sc.n + 1)
			eng.Bus().AddDisturbance(fault.SOS{
				Sender: an, Victims: []tdma.NodeID{victim},
				FromRound: faultRound, ToRound: faultRound + 1,
			})
		}
	}
	return sc
}

// TestRandomizedWithinBoundCampaign is the integration-level property test
// of Theorem 1: 60 generated scenarios with random cluster sizes, random
// node schedules and random fault mixes inside N > 2a+2s+b+1 must all pass
// the correctness/completeness/consistency audit.
func TestRandomizedWithinBoundCampaign(t *testing.T) {
	st := rng.NewSource(20071).Stream("campaign")
	for trial := 0; trial < 60; trial++ {
		sc := generateScenario(st)
		eng, runners, err := NewDiagnosticCluster(ClusterConfig{
			N:        sc.n,
			RoundLen: DefaultRoundLen * time.Duration(sc.n) / 4,
			Ls:       sc.ls,
		})
		if err != nil {
			t.Fatalf("trial %d (n=%d ls=%v): %v", trial, sc.n, sc.ls, err)
		}
		col := NewCollector()
		for id := 1; id <= sc.n; id++ {
			col.HookDiag(id, runners[id])
		}
		sc.arm(eng)
		if err := eng.RunRounds(20); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := AuditTheorem1(eng, col, sc.obedient, 4, 16); err != nil {
			t.Fatalf("trial %d (n=%d a=%d s=%d b=%d ls=%v): %v",
				trial, sc.n, sc.a, sc.s, sc.b, sc.ls, err)
		}
	}
}

// TestRandomizedMembershipCampaign property-checks Theorem 2: random single
// asymmetric receive faults at random rounds, random schedules — every
// obedient node must install identical views within the liveness bound.
func TestRandomizedMembershipCampaign(t *testing.T) {
	st := rng.NewSource(414).Stream("membership")
	for trial := 0; trial < 40; trial++ {
		ls := make([]int, 4)
		for i := range ls {
			ls[i] = st.Intn(4)
		}
		eng, runners, err := NewMembershipCluster(ClusterConfig{Ls: ls})
		if err != nil {
			t.Fatal(err)
		}
		faultRound := 6 + st.Intn(6)
		victim := tdma.NodeID(1 + st.Intn(4))
		sender := tdma.NodeID(1 + st.Intn(4))
		for sender == victim {
			sender = tdma.NodeID(1 + st.Intn(4))
		}
		eng.Bus().AddDisturbance(fault.ReceiverBlind{
			Receiver: victim, Senders: []tdma.NodeID{sender},
			FromRound: faultRound, ToRound: faultRound + 1,
		})
		if err := eng.RunRounds(faultRound + 16); err != nil {
			t.Fatal(err)
		}
		lag := runners[1].Service().Protocol().Config().Lag()
		if err := AuditTheorem2(runners, obedientAll(4), faultRound, lag); err != nil {
			t.Fatalf("trial %d (ls=%v victim=%d sender=%d round=%d): %v",
				trial, ls, victim, sender, faultRound, err)
		}
		// The minority clique is exactly {victim}.
		v := runners[1].View()
		if len(v.Members) != 3 || v.Contains(int(victim)) {
			t.Fatalf("trial %d: view %v, want all but %d", trial, v.Members, victim)
		}
	}
}
