// Package fault implements the Customizable Fault-Effect Model of Sec. 4 as
// pluggable bus disturbances: benign (locally detectable by all receivers),
// symmetric malicious (same undetectable wrong value everywhere) and
// asymmetric (detectable by some receivers only) communication faults, plus
// the composite injection scenarios used in the paper's validation and
// tuning campaigns (bursts on the slot grid, continuous-time bursts of
// arbitrary phase, the automotive blinking-light and aerospace
// lightning-bolt scenarios, communication blackouts, and Poisson external
// transients).
//
// Every type implements tdma.Disturbance and can be stacked on a bus. The
// disturbances correspond to the paper's physical disturbance node: since the
// protocol does not discriminate between node and link faults, a node fault
// is emulated by corrupting or dropping the messages it sends.
package fault

import (
	"ttdiag/internal/tdma"
)

// Predicate is a benign fault driven by an arbitrary match function: every
// transmission it matches is made locally detectable for all receivers and
// trips the sender's collision detector. It is the building block for
// targeted experiment classes (e.g. "corrupt node 3's slot every second
// round for 20 rounds").
type Predicate struct {
	// Match reports whether the transmission is corrupted.
	Match func(tx *tdma.Transmission) bool
}

var _ tdma.Disturbance = Predicate{}

// Deliver implements tdma.Disturbance.
func (p Predicate) Deliver(tx *tdma.Transmission, _ tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if p.Match != nil && p.Match(tx) {
		return tdma.Delivery{}
	}
	return d
}

// SenderCollision implements tdma.Disturbance. Bus-level corruption is
// visible to the sender's local collision detector.
func (p Predicate) SenderCollision(tx *tdma.Transmission, collided bool) bool {
	if p.Match != nil && p.Match(tx) {
		return true
	}
	return collided
}

// EveryKthRound corrupts the sending slot of one node every k-th round inside
// [fromRound, toRound), starting with fromRound. It reproduces the Sec. 8
// penalty/reward experiment class ("a fault is injected in the sending slots
// of the node every second TDMA round for 20 TDMA rounds" uses k = 2).
func EveryKthRound(node tdma.NodeID, k, fromRound, toRound int) Predicate {
	return Predicate{Match: func(tx *tdma.Transmission) bool {
		if tx.Sender != node || tx.Round < fromRound || tx.Round >= toRound {
			return false
		}
		return (tx.Round-fromRound)%k == 0
	}}
}

// Crash makes a node fail-silent from a given round on: a permanently benign
// faulty sender in the extended fault model (an unhealthy node).
func Crash(node tdma.NodeID, fromRound int) Predicate {
	return Predicate{Match: func(tx *tdma.Transmission) bool {
		return tx.Sender == node && tx.Round >= fromRound
	}}
}
