package fault

import (
	"bytes"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

func txAt(sched *tdma.Schedule, sender tdma.NodeID, round int, payload []byte) *tdma.Transmission {
	s, e := sched.SlotWindow(round, int(sender))
	return &tdma.Transmission{
		Sender: sender, Round: round, Slot: int(sender),
		Start: s, End: e, Payload: payload,
	}
}

func TestMaliciousSyndromeConsistentAcrossReceivers(t *testing.T) {
	m := NewMaliciousSyndrome(2, rng.NewStream(1))
	tx := txAt(paperSched, 2, 5, []byte{0xAA, 0xBB})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	d1 := m.Deliver(tx, 1, in)
	d3 := m.Deliver(tx, 3, in)
	d4 := m.Deliver(tx, 4, in)
	if !d1.Valid || !d3.Valid || !d4.Valid {
		t.Fatal("malicious delivery lost validity (would be benign, not malicious)")
	}
	if !bytes.Equal(d1.Payload, d3.Payload) || !bytes.Equal(d1.Payload, d4.Payload) {
		t.Fatal("receivers observed different payloads (symmetric malicious requires equality)")
	}
	if len(d1.Payload) != len(tx.Payload) {
		t.Fatalf("corrupted payload length %d, want %d (must stay locally undetectable)", len(d1.Payload), len(tx.Payload))
	}
	if m.SenderCollision(tx, false) {
		t.Fatal("malicious fault tripped the collision detector")
	}
}

func TestMaliciousSyndromeFreshPerTransmission(t *testing.T) {
	m := NewMaliciousSyndrome(2, rng.NewStream(1))
	in := tdma.Delivery{Valid: true, Payload: []byte{0, 0, 0, 0}}
	seen := make(map[string]bool)
	distinct := 0
	for round := 0; round < 32; round++ {
		tx := txAt(paperSched, 2, round, in.Payload)
		d := m.Deliver(tx, 1, in)
		if !seen[string(d.Payload)] {
			seen[string(d.Payload)] = true
			distinct++
		}
	}
	if distinct < 16 {
		t.Fatalf("only %d distinct corrupted payloads over 32 rounds", distinct)
	}
}

func TestMaliciousSyndromeScope(t *testing.T) {
	m := NewMaliciousSyndrome(2, rng.NewStream(1))
	m.FromRound, m.ToRound = 5, 8
	in := tdma.Delivery{Valid: true, Payload: []byte{0x42}}
	for _, tt := range []struct {
		round int
		want  bool // corrupted?
	}{{4, false}, {5, true}, {7, true}, {8, false}} {
		tx := txAt(paperSched, 2, tt.round, in.Payload)
		d := m.Deliver(tx, 1, in)
		corrupted := !bytes.Equal(d.Payload, in.Payload)
		if corrupted != tt.want {
			t.Errorf("round %d: corrupted = %v, want %v", tt.round, corrupted, tt.want)
		}
	}
	// Other senders untouched.
	tx := txAt(paperSched, 3, 6, in.Payload)
	if d := m.Deliver(tx, 1, in); !bytes.Equal(d.Payload, in.Payload) {
		t.Error("malicious disturbance corrupted another sender")
	}
}

func TestMaliciousSkipsInvalidDeliveries(t *testing.T) {
	m := NewMaliciousSyndrome(2, rng.NewStream(1))
	tx := txAt(paperSched, 2, 0, []byte{1})
	d := m.Deliver(tx, 1, tdma.Delivery{})
	if d.Valid {
		t.Fatal("malicious disturbance revived an invalid delivery")
	}
}

func TestReceiverBlindAsymmetry(t *testing.T) {
	rb := ReceiverBlind{Receiver: 1, Senders: []tdma.NodeID{2}, FromRound: 0, ToRound: 10}
	tx := txAt(paperSched, 2, 3, []byte{1})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	if d := rb.Deliver(tx, 1, in); d.Valid {
		t.Error("blinded receiver still got the message")
	}
	if d := rb.Deliver(tx, 3, in); !d.Valid {
		t.Error("unblinded receiver lost the message")
	}
	if rb.SenderCollision(tx, false) {
		t.Error("asymmetric receive fault tripped the sender's collision detector")
	}
	// Sender outside the victim set.
	tx3 := txAt(paperSched, 3, 3, []byte{1})
	if d := rb.Deliver(tx3, 1, in); !d.Valid {
		t.Error("unlisted sender's message dropped")
	}
	// Outside the round window.
	txLate := txAt(paperSched, 2, 10, []byte{1})
	if d := rb.Deliver(txLate, 1, in); !d.Valid {
		t.Error("message dropped outside the round window")
	}
}

func TestReceiverBlindAllSendersDefault(t *testing.T) {
	rb := ReceiverBlind{Receiver: 1}
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	for sender := tdma.NodeID(2); sender <= 4; sender++ {
		tx := txAt(paperSched, sender, 0, in.Payload)
		if d := rb.Deliver(tx, 1, in); d.Valid {
			t.Errorf("sender %d not blinded by empty sender list", sender)
		}
	}
	// Own slot loop-back unaffected.
	tx := txAt(paperSched, 1, 0, in.Payload)
	if d := rb.Deliver(tx, 1, in); !d.Valid {
		t.Error("receiver's own loop-back dropped")
	}
}

func TestSOSAsymmetricSenderFault(t *testing.T) {
	s := SOS{Sender: 3, Victims: []tdma.NodeID{1, 2}, FromRound: 2, ToRound: 4}
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	tx := txAt(paperSched, 3, 2, in.Payload)
	if d := s.Deliver(tx, 1, in); d.Valid {
		t.Error("victim 1 received the SOS frame")
	}
	if d := s.Deliver(tx, 2, in); d.Valid {
		t.Error("victim 2 received the SOS frame")
	}
	if d := s.Deliver(tx, 4, in); !d.Valid {
		t.Error("non-victim lost the frame")
	}
	if s.SenderCollision(tx, false) {
		t.Error("SOS tripped the sender's collision detector")
	}
	txOut := txAt(paperSched, 3, 5, in.Payload)
	if d := s.Deliver(txOut, 1, in); !d.Valid {
		t.Error("frame dropped outside the round window")
	}
}

func TestEveryKthRound(t *testing.T) {
	p := EveryKthRound(3, 2, 10, 30)
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	for round := 8; round < 32; round++ {
		tx := txAt(paperSched, 3, round, in.Payload)
		want := round >= 10 && round < 30 && (round-10)%2 == 0
		d := p.Deliver(tx, 1, in)
		if got := !d.Valid; got != want {
			t.Errorf("round %d: corrupted = %v, want %v", round, got, want)
		}
		if got := p.SenderCollision(tx, false); got != want {
			t.Errorf("round %d: collision = %v, want %v", round, got, want)
		}
	}
	// Other nodes unaffected.
	tx := txAt(paperSched, 2, 12, in.Payload)
	if d := p.Deliver(tx, 1, in); !d.Valid {
		t.Error("other node's slot corrupted")
	}
}

func TestCrashIsPermanentBenign(t *testing.T) {
	p := Crash(2, 5)
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	if d := p.Deliver(txAt(paperSched, 2, 4, in.Payload), 1, in); !d.Valid {
		t.Error("crashed before FromRound")
	}
	for _, round := range []int{5, 6, 100, 100000} {
		if d := p.Deliver(txAt(paperSched, 2, round, in.Payload), 1, in); d.Valid {
			t.Errorf("round %d: crashed node still transmitting", round)
		}
	}
}

func TestPredicateNilMatch(t *testing.T) {
	var p Predicate
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	if d := p.Deliver(txAt(paperSched, 1, 0, in.Payload), 2, in); !d.Valid {
		t.Error("nil-match predicate corrupted a delivery")
	}
	if p.SenderCollision(txAt(paperSched, 1, 0, nil), false) {
		t.Error("nil-match predicate tripped collision")
	}
}

var _ = time.Duration(0)

func TestAdversarialSyndromeLie(t *testing.T) {
	adv := AdversarialSyndrome{Node: 2, N: 4}
	tx := txAt(paperSched, 2, 5, []byte{0x0f})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	d := adv.Deliver(tx, 1, in)
	if !d.Valid {
		t.Fatal("adversarial frame lost validity")
	}
	syn, err := core.DecodeSyndrome(d.Payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 4; j++ {
		want := core.Faulty
		if j == 2 {
			want = core.Healthy
		}
		if syn[j] != want {
			t.Fatalf("lie[%d] = %v, want %v", j, syn[j], want)
		}
	}
	if adv.SenderCollision(tx, false) {
		t.Fatal("adversarial fault tripped the collision detector")
	}
	// Other senders and out-of-window rounds untouched.
	if d := adv.Deliver(txAt(paperSched, 3, 5, in.Payload), 1, in); !bytes.Equal(d.Payload, in.Payload) {
		t.Fatal("other sender corrupted")
	}
	scoped := AdversarialSyndrome{Node: 2, N: 4, FromRound: 10, ToRound: 12}
	if d := scoped.Deliver(txAt(paperSched, 2, 9, in.Payload), 1, in); !bytes.Equal(d.Payload, in.Payload) {
		t.Fatal("round before window corrupted")
	}
	if d := scoped.Deliver(txAt(paperSched, 2, 12, in.Payload), 1, in); !bytes.Equal(d.Payload, in.Payload) {
		t.Fatal("round after window corrupted")
	}
}
