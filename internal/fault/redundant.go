package fault

import (
	"ttdiag/internal/tdma"
)

// RedundantChannels models the replicated communication bus of the paper's
// system model (Sec. 3: "a shared (and possibly replicated) communication
// bus"; the Sec. 8 prototype used a redundant layered-TTP network). Every
// transmission travels on all channels simultaneously; a receiver's delivery
// is valid if at least one channel delivered it intact, and the sender's
// collision detector trips only when every channel was disturbed.
//
// Each channel carries its own disturbance chain, so channel-local faults
// (EMI on one wire pair, one disconnected stub) are masked while
// common-mode faults (a faulty sender) still manifest on all channels.
type RedundantChannels struct {
	channels []tdma.Disturbances
}

var _ tdma.Disturbance = (*RedundantChannels)(nil)

// NewRedundantChannels builds the replicated medium from per-channel
// disturbance chains; len(chains) is the replication degree (the paper's
// prototype used two).
func NewRedundantChannels(chains ...[]tdma.Disturbance) *RedundantChannels {
	rc := &RedundantChannels{channels: make([]tdma.Disturbances, len(chains))}
	for i, ch := range chains {
		rc.channels[i] = tdma.Disturbances(ch)
	}
	return rc
}

// Channels returns the replication degree.
func (rc *RedundantChannels) Channels() int { return len(rc.channels) }

// AddToChannel appends a disturbance to one channel's chain.
func (rc *RedundantChannels) AddToChannel(channel int, d tdma.Disturbance) {
	if channel < 0 || channel >= len(rc.channels) {
		return
	}
	rc.channels[channel] = append(rc.channels[channel], d)
}

// Deliver implements tdma.Disturbance: the receiver accepts the first
// channel that delivers a locally valid frame.
func (rc *RedundantChannels) Deliver(tx *tdma.Transmission, rcv tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if len(rc.channels) == 0 {
		return d
	}
	var firstValid *tdma.Delivery
	for _, ch := range rc.channels {
		chDelivery := ch.Deliver(tx, rcv, d)
		if chDelivery.Valid {
			firstValid = &chDelivery
			break
		}
	}
	if firstValid == nil {
		return tdma.Delivery{}
	}
	return *firstValid
}

// SenderCollision implements tdma.Disturbance: the sender sees a collision
// only if no channel carried its frame.
func (rc *RedundantChannels) SenderCollision(tx *tdma.Transmission, collided bool) bool {
	if len(rc.channels) == 0 {
		return collided
	}
	for _, ch := range rc.channels {
		if !ch.SenderCollision(tx, collided) {
			return false
		}
	}
	return true
}
