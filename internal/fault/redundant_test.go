package fault

import (
	"testing"

	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

func TestRedundantChannelsMaskSingleChannelFault(t *testing.T) {
	// Channel A suffers a burst, channel B is clean: delivery survives.
	burst := SlotBurst(paperSched, 0, 2, 1)
	rc := NewRedundantChannels(
		[]tdma.Disturbance{NewTrain(burst)},
		nil,
	)
	tx := txAt(paperSched, 2, 0, []byte{7})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	if d := rc.Deliver(tx, 1, in); !d.Valid || d.Payload[0] != 7 {
		t.Fatalf("single-channel fault not masked: %+v", d)
	}
	if rc.SenderCollision(tx, false) {
		t.Fatal("collision detector tripped with one clean channel")
	}
}

func TestRedundantChannelsCommonModeFault(t *testing.T) {
	// The same burst on both channels (a faulty sender manifests on every
	// channel): delivery lost, collision detected.
	burst := SlotBurst(paperSched, 0, 2, 1)
	rc := NewRedundantChannels(
		[]tdma.Disturbance{NewTrain(burst)},
		[]tdma.Disturbance{NewTrain(burst)},
	)
	tx := txAt(paperSched, 2, 0, []byte{7})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	if d := rc.Deliver(tx, 1, in); d.Valid {
		t.Fatal("common-mode fault masked")
	}
	if !rc.SenderCollision(tx, false) {
		t.Fatal("collision detector quiet under common-mode fault")
	}
}

func TestRedundantChannelsAsymmetricPerChannel(t *testing.T) {
	// Channel A blinds receiver 1, channel B blinds receiver 3: every
	// receiver still gets the frame via the other channel.
	rc := NewRedundantChannels(
		[]tdma.Disturbance{ReceiverBlind{Receiver: 1, Senders: []tdma.NodeID{2}}},
		[]tdma.Disturbance{ReceiverBlind{Receiver: 3, Senders: []tdma.NodeID{2}}},
	)
	tx := txAt(paperSched, 2, 0, []byte{7})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	for _, rcv := range []tdma.NodeID{1, 3, 4} {
		if d := rc.Deliver(tx, rcv, in); !d.Valid {
			t.Fatalf("receiver %d lost the frame despite redundancy", rcv)
		}
	}
}

func TestRedundantChannelsMaliciousOnOneChannel(t *testing.T) {
	// A malicious payload substitution on channel A is accepted (first
	// valid channel wins) — redundancy does not detect semantic faults,
	// matching the fault model: the diagnostic protocol, not the bus, deals
	// with malicious content.
	rc := NewRedundantChannels(
		[]tdma.Disturbance{NewMaliciousSyndrome(2, rng.NewStream(1))},
		nil,
	)
	tx := txAt(paperSched, 2, 0, []byte{7})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	d := rc.Deliver(tx, 1, in)
	if !d.Valid {
		t.Fatal("delivery lost")
	}
}

func TestRedundantChannelsEmpty(t *testing.T) {
	rc := NewRedundantChannels()
	tx := txAt(paperSched, 1, 0, []byte{1})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	if d := rc.Deliver(tx, 2, in); !d.Valid {
		t.Fatal("empty redundant medium corrupted a delivery")
	}
	if rc.SenderCollision(tx, true) != true {
		t.Fatal("empty redundant medium cleared an upstream collision")
	}
}

func TestAddToChannel(t *testing.T) {
	rc := NewRedundantChannels(nil, nil)
	rc.AddToChannel(0, NewTrain(SlotBurst(paperSched, 0, 1, 4)))
	rc.AddToChannel(9, NewTrain(SlotBurst(paperSched, 0, 1, 4))) // ignored
	tx := txAt(paperSched, 1, 0, []byte{1})
	in := tdma.Delivery{Valid: true, Payload: tx.Payload}
	// Channel 1 still clean -> masked.
	if d := rc.Deliver(tx, 2, in); !d.Valid {
		t.Fatal("fault on channel 0 not masked by channel 1")
	}
	rc.AddToChannel(1, NewTrain(SlotBurst(paperSched, 0, 1, 4)))
	if d := rc.Deliver(tx, 2, in); d.Valid {
		t.Fatal("fault on both channels masked")
	}
}

func TestRedundantChannelsCount(t *testing.T) {
	if got := NewRedundantChannels(nil, nil, nil).Channels(); got != 3 {
		t.Fatalf("Channels() = %d", got)
	}
}
