package fault

import (
	"time"
)

// Scenario is a named abnormal transient scenario (Table 3): a sequence of
// burst phases, each contributing a number of bursts of a given length with
// a given time to reappearance (end-to-start gap to the following burst).
type Scenario struct {
	// Name identifies the scenario in experiment output.
	Name string
	// Phases are applied in order.
	Phases []ScenarioPhase
}

// ScenarioPhase is one row of Table 3.
type ScenarioPhase struct {
	// Burst is the length of each disturbance burst.
	Burst time.Duration
	// Reappearance is the end-to-start gap separating consecutive bursts.
	Reappearance time.Duration
	// Count is the number of injections with these parameters.
	Count int
}

// BlinkingLight is the automotive abnormal transient scenario of Table 3: a
// blinking light with an open relay causes periodic electrical instabilities
// on the bus — 50 bursts of 10 ms with a 500 ms time to reappearance.
func BlinkingLight() Scenario {
	return Scenario{
		Name: "Auto (blinking light)",
		Phases: []ScenarioPhase{
			{Burst: 10 * time.Millisecond, Reappearance: 500 * time.Millisecond, Count: 50},
		},
	}
}

// LightningBolt is the aerospace abnormal transient scenario of Table 3: a
// lightning bolt produces a sequence of instabilities with increasing time
// to reappearance — 40 ms bursts at 160 ms, then 290 ms, then nine at 500 ms.
func LightningBolt() Scenario {
	return Scenario{
		Name: "Aero (lightning bolt)",
		Phases: []ScenarioPhase{
			{Burst: 40 * time.Millisecond, Reappearance: 160 * time.Millisecond, Count: 1},
			{Burst: 40 * time.Millisecond, Reappearance: 290 * time.Millisecond, Count: 1},
			{Burst: 40 * time.Millisecond, Reappearance: 500 * time.Millisecond, Count: 9},
		},
	}
}

// Train lays the scenario out on the simulated clock starting at the given
// phase offset and returns the resulting burst train. Each burst is followed
// by its phase's time to reappearance before the next burst begins.
func (s Scenario) Train(start time.Duration) *Train {
	var bursts []Burst
	at := start
	for _, ph := range s.Phases {
		for i := 0; i < ph.Count; i++ {
			bursts = append(bursts, Burst{Start: at, Length: ph.Burst})
			at += ph.Burst + ph.Reappearance
		}
	}
	return NewTrain(bursts...)
}

// TotalBursts returns the number of bursts the scenario injects.
func (s Scenario) TotalBursts() int {
	total := 0
	for _, ph := range s.Phases {
		total += ph.Count
	}
	return total
}

// Span returns the time from the first burst's start to the last burst's end
// when the scenario starts at offset zero.
func (s Scenario) Span() time.Duration {
	at := time.Duration(0)
	end := at
	for _, ph := range s.Phases {
		for i := 0; i < ph.Count; i++ {
			end = at + ph.Burst
			at += ph.Burst + ph.Reappearance
		}
	}
	return end
}
