package fault

import (
	"testing"
	"testing/quick"
	"time"

	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

var paperSched = tdma.MustSchedule(4, 2500*time.Microsecond)

func TestBurstOverlaps(t *testing.T) {
	b := Burst{Start: 10, Length: 5} // [10, 15)
	tests := []struct {
		name       string
		start, end time.Duration
		want       bool
	}{
		{name: "inside", start: 11, end: 12, want: true},
		{name: "covering", start: 5, end: 20, want: true},
		{name: "left_edge", start: 5, end: 10, want: false},
		{name: "right_edge", start: 15, end: 20, want: false},
		{name: "left_partial", start: 9, end: 11, want: true},
		{name: "right_partial", start: 14, end: 16, want: true},
		{name: "far_left", start: 0, end: 2, want: false},
		{name: "far_right", start: 30, end: 32, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b.Overlaps(tt.start, tt.end); got != tt.want {
				t.Errorf("Overlaps(%v,%v) = %v, want %v", tt.start, tt.end, got, tt.want)
			}
		})
	}
}

func TestNewTrainMergesAndSorts(t *testing.T) {
	tr := NewTrain(
		Burst{Start: 20, Length: 5},
		Burst{Start: 0, Length: 10},
		Burst{Start: 5, Length: 10}, // overlaps the second -> merge to [0,15)
		Burst{Start: 40, Length: 0}, // dropped: empty
	)
	got := tr.Bursts()
	if len(got) != 2 {
		t.Fatalf("got %d bursts, want 2: %+v", len(got), got)
	}
	if got[0].Start != 0 || got[0].End() != 15 {
		t.Errorf("merged burst = [%v,%v), want [0,15)", got[0].Start, got[0].End())
	}
	if got[1].Start != 20 || got[1].End() != 25 {
		t.Errorf("second burst = [%v,%v), want [20,25)", got[1].Start, got[1].End())
	}
}

func TestTrainHitsMatchesLinearScan(t *testing.T) {
	if err := quick.Check(func(seed int64, q1, q2 uint16) bool {
		st := rng.NewStream(seed)
		raw := make([]Burst, 0, 16)
		for i := 0; i < 16; i++ {
			raw = append(raw, Burst{
				Start:  time.Duration(st.Intn(1000)),
				Length: time.Duration(st.Intn(50)),
			})
		}
		tr := NewTrain(raw...)
		start := time.Duration(q1 % 1100)
		end := start + time.Duration(q2%60) + 1
		want := false
		for _, b := range raw {
			if b.Length > 0 && b.Overlaps(start, end) {
				want = true
				break
			}
		}
		return tr.Hits(start, end) == want
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotBurstGeometry(t *testing.T) {
	// Two slots starting at slot 3 of round 1.
	b := SlotBurst(paperSched, 1, 3, 2)
	wantStart := paperSched.RoundStart(1) + 2*paperSched.SlotLen()
	if b.Start != wantStart {
		t.Errorf("Start = %v, want %v", b.Start, wantStart)
	}
	if b.Length != 2*paperSched.SlotLen() {
		t.Errorf("Length = %v, want %v", b.Length, 2*paperSched.SlotLen())
	}
}

func TestBlackoutCoversWholeRounds(t *testing.T) {
	b := Blackout(paperSched, 2, 2)
	if b.Start != paperSched.RoundStart(2) {
		t.Errorf("Start = %v", b.Start)
	}
	if b.Length != 2*paperSched.RoundLen() {
		t.Errorf("Length = %v", b.Length)
	}
	// Every slot of rounds 2 and 3 must be hit; rounds 1 and 4 untouched.
	tr := NewTrain(b)
	for round := 1; round <= 4; round++ {
		for slot := 1; slot <= 4; slot++ {
			s, e := paperSched.SlotWindow(round, slot)
			want := round == 2 || round == 3
			if got := tr.Hits(s, e); got != want {
				t.Errorf("round %d slot %d: Hits = %v, want %v", round, slot, got, want)
			}
		}
	}
}

func TestPeriodicTrainEndToStartGap(t *testing.T) {
	tr := Periodic(0, 10*time.Millisecond, 500*time.Millisecond, 3)
	bursts := tr.Bursts()
	if len(bursts) != 3 {
		t.Fatalf("got %d bursts", len(bursts))
	}
	if bursts[1].Start != 510*time.Millisecond {
		t.Errorf("second burst at %v, want 510ms", bursts[1].Start)
	}
	if bursts[2].Start != 1020*time.Millisecond {
		t.Errorf("third burst at %v, want 1020ms", bursts[2].Start)
	}
}

func TestTrainAsDisturbance(t *testing.T) {
	tr := NewTrain(SlotBurst(paperSched, 0, 2, 1))
	s, e := paperSched.SlotWindow(0, 2)
	tx := &tdma.Transmission{Sender: 2, Round: 0, Slot: 2, Start: s, End: e, Payload: []byte{1}}
	d := tr.Deliver(tx, 1, tdma.Delivery{Valid: true, Payload: tx.Payload})
	if d.Valid {
		t.Error("delivery inside burst remained valid")
	}
	if !tr.SenderCollision(tx, false) {
		t.Error("collision detector did not trip inside burst")
	}
	s, e = paperSched.SlotWindow(0, 3)
	tx2 := &tdma.Transmission{Sender: 3, Round: 0, Slot: 3, Start: s, End: e, Payload: []byte{1}}
	if d := tr.Deliver(tx2, 1, tdma.Delivery{Valid: true, Payload: tx2.Payload}); !d.Valid {
		t.Error("delivery outside burst was corrupted")
	}
}

func TestPoissonTransientsStatistics(t *testing.T) {
	const (
		rate    = 100.0 // per second
		horizon = 100 * time.Second
		length  = time.Millisecond
	)
	tr := PoissonTransients(rng.NewStream(1), rate, length, horizon)
	n := len(tr.Bursts())
	// Expect ~rate*horizon_seconds = 10000 bursts; allow 5% slack.
	if n < 9000 || n > 11000 {
		t.Fatalf("got %d transient bursts, want ~10000", n)
	}
	for _, b := range tr.Bursts() {
		if b.Start < 0 || b.Start >= horizon {
			t.Fatalf("burst outside horizon: %+v", b)
		}
		if b.Length != length {
			t.Fatalf("burst has length %v", b.Length)
		}
	}
}

func TestPoissonTransientsZeroRate(t *testing.T) {
	tr := PoissonTransients(rng.NewStream(1), 0, time.Millisecond, time.Second)
	if len(tr.Bursts()) != 0 {
		t.Fatalf("zero rate produced %d bursts", len(tr.Bursts()))
	}
}

// Property: a burst of exactly k rounds, dropped at an arbitrary phase,
// corrupts either k or k+1 sending slots of every node — the physical
// straddling artifact discussed in DESIGN.md §3.
func TestBurstStraddlingProperty(t *testing.T) {
	if err := quick.Check(func(phaseRaw uint32, kRaw uint8) bool {
		k := int(kRaw%4) + 1
		phase := time.Duration(phaseRaw) % paperSched.RoundLen()
		b := Burst{Start: phase, Length: time.Duration(k) * paperSched.RoundLen()}
		tr := NewTrain(b)
		for node := 1; node <= 4; node++ {
			hits := 0
			for round := 0; round < k+3; round++ {
				s, e := paperSched.SlotWindow(round, node)
				if tr.Hits(s, e) {
					hits++
				}
			}
			if hits != k && hits != k+1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
