package fault

import (
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// RandomNoise corrupts every transmission independently with a fixed
// probability: the "random noise" injection class of Sec. 8, and the
// workhorse of long-run stress campaigns. Corrupted transmissions are
// locally detectable by all receivers (benign class) and trip the sender's
// collision detector, like any bus-level disturbance.
//
// The verdict for a transmission is drawn once and cached so that all
// receivers of one broadcast observe the same outcome.
type RandomNoise struct {
	// Prob is the per-transmission corruption probability in [0, 1].
	Prob float64
	// FromRound and ToRound bound the noise; ToRound <= 0 means "forever".
	FromRound, ToRound int

	stream                *rng.Stream
	cacheRound, cacheSlot int
	cacheHit              bool
	cacheSet              bool
}

var _ tdma.Disturbance = (*RandomNoise)(nil)

// NewRandomNoise builds the disturbance with its own random stream.
func NewRandomNoise(prob float64, stream *rng.Stream) *RandomNoise {
	return &RandomNoise{Prob: prob, stream: stream}
}

func (rn *RandomNoise) hits(tx *tdma.Transmission) bool {
	if tx.Round < rn.FromRound || (rn.ToRound > 0 && tx.Round >= rn.ToRound) {
		return false
	}
	if !rn.cacheSet || rn.cacheRound != tx.Round || rn.cacheSlot != tx.Slot {
		rn.cacheRound, rn.cacheSlot, rn.cacheSet = tx.Round, tx.Slot, true
		rn.cacheHit = rn.stream.Bool(rn.Prob)
	}
	return rn.cacheHit
}

// Deliver implements tdma.Disturbance.
func (rn *RandomNoise) Deliver(tx *tdma.Transmission, _ tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if rn.hits(tx) {
		return tdma.Delivery{}
	}
	return d
}

// SenderCollision implements tdma.Disturbance.
func (rn *RandomNoise) SenderCollision(tx *tdma.Transmission, collided bool) bool {
	if rn.hits(tx) {
		return true
	}
	return collided
}
