package fault

import (
	"sort"
	"time"

	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// Burst is one contiguous interval of bus-wide interference on the simulated
// clock. Every transmission whose slot window overlaps the interval is
// locally detectable by all receivers (benign), and the sender's collision
// detector trips — exactly the effect of the electrical spikes, random noise
// and silence periods injected in the paper's validation (Sec. 8).
type Burst struct {
	// Start is the burst's begin time on the simulated clock.
	Start time.Duration
	// Length is the burst duration; bursts cover [Start, Start+Length).
	Length time.Duration
}

// End returns the first instant after the burst.
func (b Burst) End() time.Duration { return b.Start + b.Length }

// Overlaps reports whether the burst intersects the half-open window
// [start, end).
func (b Burst) Overlaps(start, end time.Duration) bool {
	return b.Start < end && start < b.End()
}

// Train is a set of bursts applied to the bus. It implements
// tdma.Disturbance. The zero value is an empty train (a clean bus).
type Train struct {
	bursts []Burst // kept sorted by Start
}

var _ tdma.Disturbance = (*Train)(nil)

// NewTrain builds a train from the given bursts. Bursts are sorted and
// overlapping or touching bursts are merged, so the train's intervals are
// always disjoint and in increasing order (which makes overlap queries a
// single binary search).
func NewTrain(bursts ...Burst) *Train {
	sorted := append([]Burst(nil), bursts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	merged := make([]Burst, 0, len(sorted))
	for _, b := range sorted {
		if b.Length <= 0 {
			continue
		}
		if n := len(merged); n > 0 && b.Start <= merged[n-1].End() {
			if b.End() > merged[n-1].End() {
				merged[n-1].Length = b.End() - merged[n-1].Start
			}
			continue
		}
		merged = append(merged, b)
	}
	return &Train{bursts: merged}
}

// Bursts returns a copy of the train's bursts in start order.
func (t *Train) Bursts() []Burst { return append([]Burst(nil), t.bursts...) }

// Hits reports whether any burst overlaps [start, end).
func (t *Train) Hits(start, end time.Duration) bool {
	// Binary search for the first burst that could overlap.
	i := sort.Search(len(t.bursts), func(i int) bool { return t.bursts[i].End() > start })
	return i < len(t.bursts) && t.bursts[i].Overlaps(start, end)
}

// Deliver implements tdma.Disturbance: transmissions overlapping a burst are
// locally detectable by every receiver.
func (t *Train) Deliver(tx *tdma.Transmission, _ tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if t.Hits(tx.Start, tx.End) {
		return tdma.Delivery{}
	}
	return d
}

// SenderCollision implements tdma.Disturbance: bus-wide interference is
// visible to the sender's own collision detector.
func (t *Train) SenderCollision(tx *tdma.Transmission, collided bool) bool {
	if t.Hits(tx.Start, tx.End) {
		return true
	}
	return collided
}

// SlotBurst builds a burst that covers exactly `slots` consecutive sending
// slots, beginning at slot `startSlot` of round `startRound`. It reproduces
// the Sec. 8 burst experiment classes (one slot, two slots, two whole TDMA
// rounds, each starting at any of the N slots).
func SlotBurst(sched *tdma.Schedule, startRound, startSlot, slots int) Burst {
	start, _ := sched.SlotWindow(startRound, startSlot)
	return Burst{Start: start, Length: time.Duration(slots) * sched.SlotLen()}
}

// Blackout builds a burst covering `rounds` whole TDMA rounds from the start
// of `startRound`: a communication blackout in which no node can send any
// message (the Lemma 3 regime).
func Blackout(sched *tdma.Schedule, startRound, rounds int) Burst {
	return Burst{Start: sched.RoundStart(startRound), Length: time.Duration(rounds) * sched.RoundLen()}
}

// Periodic builds a train of `count` bursts of the given length, with a
// fixed time to reappearance (measured end-to-start, as in Table 3) between
// consecutive bursts, the first burst starting at `start`.
func Periodic(start, length, reappearance time.Duration, count int) *Train {
	bursts := make([]Burst, 0, count)
	at := start
	for i := 0; i < count; i++ {
		bursts = append(bursts, Burst{Start: at, Length: length})
		at += length + reappearance
	}
	return NewTrain(bursts...)
}

// PoissonTransients generates the sporadic external transient faults a
// healthy node is exposed to: bursts of the given length whose inter-arrival
// times (end-to-start) are exponentially distributed with the given rate
// (events per second), over [0, horizon). It is used to cross-check the
// Fig. 3 correlation model by Monte-Carlo simulation.
func PoissonTransients(stream *rng.Stream, rate float64, length, horizon time.Duration) *Train {
	var bursts []Burst
	if rate <= 0 {
		return NewTrain()
	}
	at := time.Duration(0)
	for {
		gap := time.Duration(stream.Exp(rate) * float64(time.Second))
		if gap < 0 || gap > horizon {
			break
		}
		at += gap
		if at >= horizon {
			break
		}
		bursts = append(bursts, Burst{Start: at, Length: length})
		at += length
	}
	return NewTrain(bursts...)
}
