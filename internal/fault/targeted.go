package fault

import (
	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

// MaliciousSyndrome replaces the payload of one node's transmissions with
// random (but per-transmission consistent) garbage while leaving the frames
// locally undetectable: a symmetric malicious faulty sender. All receivers
// observe the same wrong value, and the sender's collision detector does not
// trip (the frame is syntactically fine on the bus).
//
// This reproduces the Sec. 8 experiment class "one malicious node sending
// random local syndromes".
type MaliciousSyndrome struct {
	// Node is the malicious sender.
	Node tdma.NodeID
	// FromRound and ToRound bound the malicious behaviour; transmissions in
	// [FromRound, ToRound) are corrupted. ToRound <= 0 means "forever".
	FromRound, ToRound int

	stream *rng.Stream
	// cache keeps the corrupted payload of the current transmission so that
	// every receiver of one broadcast observes the same value.
	cacheRound, cacheSlot int
	cachePayload          []byte
	cacheSet              bool
}

var _ tdma.Disturbance = (*MaliciousSyndrome)(nil)

// NewMaliciousSyndrome builds the disturbance with its own random stream.
func NewMaliciousSyndrome(node tdma.NodeID, stream *rng.Stream) *MaliciousSyndrome {
	return &MaliciousSyndrome{Node: node, stream: stream}
}

func (m *MaliciousSyndrome) active(tx *tdma.Transmission) bool {
	if tx.Sender != m.Node || tx.Round < m.FromRound {
		return false
	}
	return m.ToRound <= 0 || tx.Round < m.ToRound
}

// Deliver implements tdma.Disturbance.
func (m *MaliciousSyndrome) Deliver(tx *tdma.Transmission, _ tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if !m.active(tx) || !d.Valid {
		return d
	}
	if !m.cacheSet || m.cacheRound != tx.Round || m.cacheSlot != tx.Slot {
		// Same length as the genuine payload keeps the frame syntactically
		// valid (locally undetectable), as the malicious class requires.
		m.cachePayload = make([]byte, len(d.Payload))
		m.stream.Bytes(m.cachePayload)
		m.cacheRound, m.cacheSlot, m.cacheSet = tx.Round, tx.Slot, true
	}
	d.Payload = m.cachePayload
	return d
}

// SenderCollision implements tdma.Disturbance: malicious content does not
// trip local detection anywhere, including at the sender.
func (m *MaliciousSyndrome) SenderCollision(_ *tdma.Transmission, collided bool) bool {
	return collided
}

// ReceiverBlind makes one receiver unable to receive from a set of senders
// during a round interval, while every other receiver is unaffected: an
// asymmetric fault. It models the clique-detection setup of Sec. 8, where
// the disturbance node sits between Node 1 and the rest of the cluster and
// disconnects the bus during the sending slot of at least another node.
type ReceiverBlind struct {
	// Receiver is the node that cannot hear.
	Receiver tdma.NodeID
	// Senders lists the senders whose slots are invisible to Receiver; an
	// empty list means all senders other than Receiver itself.
	Senders []tdma.NodeID
	// FromRound and ToRound bound the fault; rounds in [FromRound, ToRound)
	// are affected. ToRound <= 0 means "forever".
	FromRound, ToRound int
}

var _ tdma.Disturbance = ReceiverBlind{}

func (rb ReceiverBlind) matches(tx *tdma.Transmission, rcv tdma.NodeID) bool {
	if rcv != rb.Receiver || tx.Sender == rb.Receiver {
		return false
	}
	if tx.Round < rb.FromRound || (rb.ToRound > 0 && tx.Round >= rb.ToRound) {
		return false
	}
	if len(rb.Senders) == 0 {
		return true
	}
	for _, s := range rb.Senders {
		if tx.Sender == s {
			return true
		}
	}
	return false
}

// Deliver implements tdma.Disturbance.
func (rb ReceiverBlind) Deliver(tx *tdma.Transmission, rcv tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if rb.matches(tx, rcv) {
		return tdma.Delivery{}
	}
	return d
}

// SenderCollision implements tdma.Disturbance: the sender's side of the bus
// is intact, so its collision detector stays quiet — precisely what makes
// the fault asymmetric.
func (rb ReceiverBlind) SenderCollision(_ *tdma.Transmission, collided bool) bool {
	return collided
}

// SOS (Slightly-Off-Specification) corrupts one sender's transmissions for a
// fixed subset of receivers: the sender's clock sits at the edge of the
// allowed offset, so its messages are seen as timely only by the remaining
// receivers (Sec. 4). Unlike ReceiverBlind it is a *sender* fault, but the
// observable effect is the same asymmetric class.
type SOS struct {
	// Sender is the slightly-off-specification node.
	Sender tdma.NodeID
	// Victims are the receivers that locally detect the fault.
	Victims []tdma.NodeID
	// FromRound and ToRound bound the fault as in ReceiverBlind.
	FromRound, ToRound int
}

var _ tdma.Disturbance = SOS{}

// Deliver implements tdma.Disturbance.
func (s SOS) Deliver(tx *tdma.Transmission, rcv tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if tx.Sender != s.Sender {
		return d
	}
	if tx.Round < s.FromRound || (s.ToRound > 0 && tx.Round >= s.ToRound) {
		return d
	}
	for _, v := range s.Victims {
		if rcv == v {
			return tdma.Delivery{}
		}
	}
	return d
}

// SenderCollision implements tdma.Disturbance: an SOS sender reads its own
// message back fine.
func (s SOS) SenderCollision(_ *tdma.Transmission, collided bool) bool { return collided }

// AdversarialSyndrome replaces one node's disseminated syndromes with the
// worst-case lie instead of random bits: it accuses every other node and
// declares itself healthy. Against H-maj this is the strongest symmetric-
// malicious strategy (random bits waste half their votes agreeing with the
// truth), so it exercises the Lemma 2 margin exactly at its edge.
type AdversarialSyndrome struct {
	// Node is the malicious sender.
	Node tdma.NodeID
	// FromRound and ToRound bound the behaviour; ToRound <= 0 = forever.
	FromRound, ToRound int
	// N is the system size (needed to forge the payload).
	N int
}

var _ tdma.Disturbance = AdversarialSyndrome{}

// Deliver implements tdma.Disturbance.
func (a AdversarialSyndrome) Deliver(tx *tdma.Transmission, _ tdma.NodeID, d tdma.Delivery) tdma.Delivery {
	if tx.Sender != a.Node || !d.Valid {
		return d
	}
	if tx.Round < a.FromRound || (a.ToRound > 0 && tx.Round >= a.ToRound) {
		return d
	}
	lie := core.NewSyndrome(a.N, core.Faulty)
	lie[int(a.Node)] = core.Healthy
	d.Payload = lie.Encode()
	return d
}

// SenderCollision implements tdma.Disturbance.
func (a AdversarialSyndrome) SenderCollision(_ *tdma.Transmission, collided bool) bool {
	return collided
}
