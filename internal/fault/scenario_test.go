package fault

import (
	"testing"
	"time"
)

func TestBlinkingLightMatchesTable3(t *testing.T) {
	s := BlinkingLight()
	if s.TotalBursts() != 50 {
		t.Fatalf("TotalBursts = %d, want 50", s.TotalBursts())
	}
	tr := s.Train(0)
	bursts := tr.Bursts()
	if len(bursts) != 50 {
		t.Fatalf("train has %d bursts", len(bursts))
	}
	for i, b := range bursts {
		if b.Length != 10*time.Millisecond {
			t.Fatalf("burst %d length %v", i, b.Length)
		}
		if want := time.Duration(i) * 510 * time.Millisecond; b.Start != want {
			t.Fatalf("burst %d at %v, want %v", i, b.Start, want)
		}
	}
}

func TestLightningBoltMatchesTable3(t *testing.T) {
	s := LightningBolt()
	if s.TotalBursts() != 11 {
		t.Fatalf("TotalBursts = %d, want 11", s.TotalBursts())
	}
	tr := s.Train(0)
	bursts := tr.Bursts()
	if len(bursts) != 11 {
		t.Fatalf("train has %d bursts", len(bursts))
	}
	for i, b := range bursts {
		if b.Length != 40*time.Millisecond {
			t.Fatalf("burst %d length %v", i, b.Length)
		}
	}
	// Gaps: 160ms after the first burst, 290ms after the second, 500ms after.
	if gap := bursts[1].Start - bursts[0].End(); gap != 160*time.Millisecond {
		t.Errorf("gap 0->1 = %v", gap)
	}
	if gap := bursts[2].Start - bursts[1].End(); gap != 290*time.Millisecond {
		t.Errorf("gap 1->2 = %v", gap)
	}
	for i := 3; i < 11; i++ {
		if gap := bursts[i].Start - bursts[i-1].End(); gap != 500*time.Millisecond {
			t.Errorf("gap %d->%d = %v", i-1, i, gap)
		}
	}
}

func TestScenarioTrainOffset(t *testing.T) {
	s := BlinkingLight()
	tr := s.Train(7 * time.Millisecond)
	if got := tr.Bursts()[0].Start; got != 7*time.Millisecond {
		t.Fatalf("first burst at %v, want 7ms", got)
	}
}

func TestScenarioSpan(t *testing.T) {
	s := Scenario{Phases: []ScenarioPhase{
		{Burst: 10 * time.Millisecond, Reappearance: 90 * time.Millisecond, Count: 2},
	}}
	// Burst 0: [0,10); burst 1: [100,110). Span = 110ms.
	if got := s.Span(); got != 110*time.Millisecond {
		t.Fatalf("Span = %v, want 110ms", got)
	}
}
