package fault

import (
	"testing"

	"ttdiag/internal/rng"
	"ttdiag/internal/tdma"
)

func TestRandomNoiseRate(t *testing.T) {
	rn := NewRandomNoise(0.25, rng.NewStream(1))
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	hits := 0
	const txs = 20000
	for i := 0; i < txs; i++ {
		round, slot := i/4, i%4+1
		tx := txAt(paperSched, tdma.NodeID(slot), round, in.Payload)
		d := rn.Deliver(tx, 1, in)
		if !d.Valid {
			hits++
		}
	}
	frac := float64(hits) / txs
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("corruption rate %v, want ~0.25", frac)
	}
}

func TestRandomNoiseConsistentPerTransmission(t *testing.T) {
	rn := NewRandomNoise(0.5, rng.NewStream(2))
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	for i := 0; i < 200; i++ {
		tx := txAt(paperSched, tdma.NodeID(i%4+1), i/4, in.Payload)
		first := rn.Deliver(tx, 1, in).Valid
		for rcv := tdma.NodeID(2); rcv <= 4; rcv++ {
			if got := rn.Deliver(tx, rcv, in).Valid; got != first {
				t.Fatalf("tx %d: receivers observed different outcomes", i)
			}
		}
		if collided := rn.SenderCollision(tx, false); collided == first {
			t.Fatalf("tx %d: collision detector disagrees with delivery outcome", i)
		}
	}
}

func TestRandomNoiseWindow(t *testing.T) {
	rn := NewRandomNoise(1.0, rng.NewStream(3))
	rn.FromRound, rn.ToRound = 5, 7
	in := tdma.Delivery{Valid: true, Payload: []byte{1}}
	for _, tt := range []struct {
		round int
		want  bool // corrupted?
	}{{4, false}, {5, true}, {6, true}, {7, false}} {
		tx := txAt(paperSched, 1, tt.round, in.Payload)
		d := rn.Deliver(tx, 2, in)
		if got := !d.Valid; got != tt.want {
			t.Errorf("round %d: corrupted = %v, want %v", tt.round, got, tt.want)
		}
	}
}
