// Package replay is the flight-recorder tooling: it captures a bus
// transcript (every slot transmission with its per-receiver validity, the
// observed payload and the sender-side collision verdict) as JSON lines, and
// re-runs the diagnostic protocol offline from such a transcript. A
// post-mortem analyst can therefore reconstruct, for any node schedule, the
// exact health vectors and isolation decisions the cluster must have taken —
// the protocol is deterministic in its observations.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ttdiag/internal/core"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

// SlotRecord is one recorded slot transmission.
type SlotRecord struct {
	// Round and Slot identify the transmission.
	Round int `json:"round"`
	Slot  int `json:"slot"`
	// Payload is the observed frame content (identical at every receiver
	// that accepted it; JSON encodes it as base64).
	Payload []byte `json:"payload,omitempty"`
	// Valid[r] is receiver r's validity bit (1-based; index 0 unused).
	Valid []bool `json:"valid"`
	// Collision is the sender-side collision-detector verdict.
	Collision bool `json:"collision"`
}

// Writer streams slot records as JSON lines.
type Writer struct {
	enc *json.Encoder
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// RecordReport converts a bus report into a record and writes it.
func (w *Writer) RecordReport(rep *tdma.TxReport) error {
	rec := SlotRecord{
		Round:     rep.Tx.Round,
		Slot:      rep.Tx.Slot,
		Collision: rep.Collision,
		Valid:     make([]bool, len(rep.Deliveries)),
	}
	for r, d := range rep.Deliveries {
		rec.Valid[r] = d.Valid
		if d.Valid && rec.Payload == nil {
			rec.Payload = append([]byte(nil), d.Payload...)
		}
	}
	return w.enc.Encode(rec)
}

// Log is a bus transcript, indexed by (round, slot).
type Log struct {
	n       int
	records map[[2]int]SlotRecord
	// lastRound is the highest recorded round.
	lastRound int
}

// Read parses a JSONL transcript for an n-node system.
func Read(r io.Reader, n int) (*Log, error) {
	log := &Log{n: n, records: make(map[[2]int]SlotRecord), lastRound: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SlotRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		if rec.Slot < 1 || rec.Slot > n {
			return nil, fmt.Errorf("replay: line %d: slot %d out of range 1..%d", line, rec.Slot, n)
		}
		if len(rec.Valid) != n+1 {
			return nil, fmt.Errorf("replay: line %d: valid has %d entries, want %d", line, len(rec.Valid), n+1)
		}
		log.records[[2]int{rec.Round, rec.Slot}] = rec
		if rec.Round > log.lastRound {
			log.lastRound = rec.Round
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return log, nil
}

// N returns the system size of the transcript.
func (l *Log) N() int { return l.n }

// LastRound returns the highest recorded round (-1 for an empty log).
func (l *Log) LastRound() int { return l.lastRound }

// At returns the record of (round, slot).
func (l *Log) At(round, slot int) (SlotRecord, bool) {
	rec, ok := l.records[[2]int{round, slot}]
	return rec, ok
}

// RoundDiagnosis is one reconstructed per-round outcome at one observer.
type RoundDiagnosis struct {
	// Round is the execution round, DiagnosedRound the round the vector
	// refers to.
	Round, DiagnosedRound int
	// ConsHV is the reconstructed consistent health vector.
	ConsHV core.Syndrome
	// Isolated lists isolation decisions taken in this round.
	Isolated []int
}

// Replay re-runs the diagnostic protocol of one observer offline against the
// transcript, using the cluster configuration the recorded system ran with
// (node schedules and penalty/reward tuning must match the deployment for
// the reconstruction to be exact).
func Replay(log *Log, cfg sim.ClusterConfig, observer int) ([]RoundDiagnosis, error) {
	cfg, err := sim.NormalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.N != log.n {
		return nil, fmt.Errorf("replay: transcript covers %d nodes, config %d", log.n, cfg.N)
	}
	if observer < 1 || observer > cfg.N {
		return nil, fmt.Errorf("replay: observer %d out of range 1..%d", observer, cfg.N)
	}
	proto, err := core.NewProtocol(sim.NodeConfig(cfg, observer))
	if err != nil {
		return nil, err
	}
	l := cfg.Ls[observer-1]

	var out []RoundDiagnosis
	for round := 0; round <= log.lastRound; round++ {
		in := core.RoundInput{
			Round:    round,
			DMs:      make([]core.Syndrome, cfg.N+1),
			Validity: core.NewSyndrome(cfg.N, core.Healthy),
		}
		for j := 1; j <= cfg.N; j++ {
			// At job position l of round k, variable j holds the round-k
			// transmission if j <= l, the round-(k-1) one otherwise.
			srcRound := round
			if j > l {
				srcRound = round - 1
			}
			rec, ok := log.At(srcRound, j)
			if !ok || !rec.Valid[observer] {
				in.Validity[j] = core.Faulty
				continue
			}
			syn, err := core.DecodeSyndrome(rec.Payload, cfg.N)
			if err != nil {
				in.Validity[j] = core.Faulty
				continue
			}
			in.DMs[j] = syn
		}
		in.Collision = func(r int) core.Opinion {
			if rec, ok := log.At(r, observer); ok && rec.Collision {
				return core.Faulty
			}
			return core.Healthy
		}
		res, err := proto.Step(in)
		if err != nil {
			return nil, err
		}
		if res.ConsHV != nil {
			out = append(out, RoundDiagnosis{
				Round:          res.Round,
				DiagnosedRound: res.DiagnosedRound,
				ConsHV:         res.ConsHV,
				Isolated:       res.Isolated,
			})
		}
	}
	return out, nil
}
