package replay

import (
	"bytes"
	"strings"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

// recordRun executes a live cluster with a fault scenario, records the bus
// transcript and collects the live per-round health vectors of every node.
func recordRun(t *testing.T, cfg sim.ClusterConfig, rounds int, arm func(*sim.Engine)) (*Log, [][]core.Syndrome, []sim.Isolation) {
	t.Helper()
	eng, runners, err := sim.NewDiagnosticCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	eng.OnReport = func(rep *tdma.TxReport) {
		if err := w.RecordReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	col := sim.NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	if arm != nil {
		arm(eng)
	}
	if err := eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	return log, col.ConsHV, col.Isolations
}

var replayCfg = sim.ClusterConfig{
	Ls: []int{2, 0, 3, 1},
	PR: core.PRConfig{PenaltyThreshold: 5, RewardThreshold: 20},
}

// TestReplayReconstructsLiveDiagnosis is the core flight-recorder property:
// replaying the transcript must reproduce every live health vector and the
// isolation decision, for every observer.
func TestReplayReconstructsLiveDiagnosis(t *testing.T) {
	const rounds = 30
	log, liveHV, liveIso := recordRun(t, replayCfg, rounds, func(eng *sim.Engine) {
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), 6, 3, 2)))
		eng.Bus().AddDisturbance(fault.Crash(4, 12))
	})
	if log.LastRound() != rounds-1 {
		t.Fatalf("transcript covers rounds up to %d, want %d", log.LastRound(), rounds-1)
	}
	for observer := 1; observer <= 4; observer++ {
		diags, err := Replay(log, replayCfg, observer)
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) == 0 {
			t.Fatal("no diagnoses reconstructed")
		}
		var isoRound int
		for _, d := range diags {
			want := liveHV[d.DiagnosedRound][observer]
			if !d.ConsHV.Equal(want) {
				t.Fatalf("observer %d round %d: replay %v != live %v",
					observer, d.DiagnosedRound, d.ConsHV, want)
			}
			for _, iso := range d.Isolated {
				if iso != 4 {
					t.Fatalf("replay isolated node %d", iso)
				}
				isoRound = d.Round
			}
		}
		found := false
		for _, iso := range liveIso {
			if iso.Observer == observer && iso.Round == isoRound && iso.Node == 4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("observer %d: replayed isolation at round %d not in live record %+v",
				observer, isoRound, liveIso)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	log, _, _ := recordRun(t, replayCfg, 6, nil)
	if _, err := Replay(log, sim.ClusterConfig{N: 6, RoundLen: 3 * sim.DefaultRoundLen / 2}, 1); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Replay(log, replayCfg, 0); err == nil {
		t.Error("observer 0 accepted")
	}
	if _, err := Replay(log, replayCfg, 5); err == nil {
		t.Error("observer 5 accepted")
	}
}

func TestReadValidation(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n"), 4); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"round":0,"slot":9,"valid":[false,true,true,true,true]}`+"\n"), 4); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := Read(strings.NewReader(`{"round":0,"slot":1,"valid":[false,true]}`+"\n"), 4); err == nil {
		t.Error("short valid vector accepted")
	}
	log, err := Read(strings.NewReader("\n\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if log.LastRound() != -1 {
		t.Errorf("empty log LastRound = %d", log.LastRound())
	}
	if _, ok := log.At(0, 1); ok {
		t.Error("empty log has records")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	rep := &tdma.TxReport{
		Tx: tdma.Transmission{Sender: 2, Round: 3, Slot: 2, Payload: []byte{0xAB}},
		Deliveries: []tdma.Delivery{
			{},
			{Valid: true, Payload: []byte{0xAB}},
			{Valid: true, Payload: []byte{0xAB}},
			{Valid: false},
			{Valid: true, Payload: []byte{0xAB}},
		},
		Collision: false,
	}
	var buf bytes.Buffer
	if err := NewWriter(&buf).RecordReport(rep); err != nil {
		t.Fatal(err)
	}
	log, err := Read(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := log.At(3, 2)
	if !ok {
		t.Fatal("record missing")
	}
	if rec.Valid[3] || !rec.Valid[1] || !rec.Valid[2] || !rec.Valid[4] {
		t.Fatalf("validity wrong: %+v", rec)
	}
	if len(rec.Payload) != 1 || rec.Payload[0] != 0xAB {
		t.Fatalf("payload wrong: %+v", rec)
	}
}

// TestCounterfactualReplay is the what-if analysis the flight recorder
// enables: replaying the same transcript under a different penalty/reward
// tuning answers "would a larger P have avoided this isolation?" offline.
func TestCounterfactualReplay(t *testing.T) {
	log, _, _ := recordRun(t, replayCfg, 30, func(eng *sim.Engine) {
		// A 6-round transient burst on node 3: with P=5 it is isolated,
		// with P=50 it would have survived.
		eng.Bus().AddDisturbance(fault.NewTrain(fault.Burst{
			Start:  eng.Schedule().RoundStart(6),
			Length: 6 * eng.Schedule().RoundLen(),
		}))
	})

	countIsolations := func(p int64) int {
		cfg := replayCfg
		cfg.PR = core.PRConfig{PenaltyThreshold: p, RewardThreshold: 20}
		diags, err := Replay(log, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range diags {
			total += len(d.Isolated)
		}
		return total
	}
	if got := countIsolations(5); got == 0 {
		t.Fatal("deployed tuning should have isolated nodes")
	}
	if got := countIsolations(50); got != 0 {
		t.Fatalf("counterfactual P=50 still isolated %d nodes", got)
	}
}
