package replay

import (
	"strings"
	"testing"
)

// FuzzReadTranscript checks that arbitrary transcript bytes never panic the
// parser and that accepted logs are internally consistent.
func FuzzReadTranscript(f *testing.F) {
	f.Add(`{"round":0,"slot":1,"valid":[false,true,true,true,true]}`)
	f.Add(`{"round":3,"slot":4,"payload":"Dw==","valid":[false,true,false,true,true],"collision":true}`)
	f.Add("not json at all")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		log, err := Read(strings.NewReader(input), 4)
		if err != nil {
			return
		}
		if log.N() != 4 {
			t.Fatalf("accepted log has N=%d", log.N())
		}
		for round := 0; round <= log.LastRound() && round < 64; round++ {
			for slot := 1; slot <= 4; slot++ {
				if rec, ok := log.At(round, slot); ok {
					if rec.Slot != slot || rec.Round != round {
						t.Fatalf("record misfiled: %+v at (%d,%d)", rec, round, slot)
					}
					if len(rec.Valid) != 5 {
						t.Fatalf("accepted record with %d validity entries", len(rec.Valid))
					}
				}
			}
		}
	})
}
