package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRecorderDroppedCountsEvictions: the bounded recorder must account for
// every event the Limit eviction discarded, keep the newest events, and
// clear the counter on Reset.
func TestRecorderDroppedCountsEvictions(t *testing.T) {
	r := Recorder{Limit: 4}
	for i := 0; i < 11; i++ {
		r.Record(Event{Round: i, Kind: KindNote})
	}
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := 7 + i; e.Round != want {
			t.Fatalf("retained[%d].Round = %d, want %d (oldest must go first)", i, e.Round, want)
		}
	}
	r.Reset()
	if r.Dropped() != 0 || r.Len() != 0 {
		t.Fatalf("Reset left dropped=%d len=%d", r.Dropped(), r.Len())
	}
	r.Record(Event{Kind: KindNote})
	if r.Dropped() != 0 {
		t.Fatalf("recording under the limit must not drop, got %d", r.Dropped())
	}
}

// TestTeeFansOutToEverySink: every sink in a Tee sees every event, in record
// order, including a streaming JSONL sink alongside in-memory recorders.
func TestTeeFansOutToEverySink(t *testing.T) {
	var a, b Recorder
	var buf bytes.Buffer
	tee := Tee{&a, &b, NewJSONLWriter(&buf)}
	events := []Event{
		{At: 10 * time.Microsecond, Round: 0, Kind: KindTransmit, Node: 1},
		{At: 20 * time.Microsecond, Round: 0, Kind: KindDiagnosis, Node: 2, Subject: 1},
		{At: 30 * time.Microsecond, Round: 1, Kind: KindIsolation, Node: 2, Subject: 1, Detail: "penalty crossed"},
	}
	for _, e := range events {
		tee.Record(e)
	}
	for name, rec := range map[string]*Recorder{"a": &a, "b": &b} {
		got := rec.Events()
		if len(got) != len(events) {
			t.Fatalf("sink %s saw %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("sink %s event %d = %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("JSONL sink saw %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("JSONL event %d = %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestJSONLRoundTripEveryKind encodes one event of every Kind (plus an
// out-of-range kind) and decodes them back unchanged.
func TestJSONLRoundTripEveryKind(t *testing.T) {
	var events []Event
	for k := KindTransmit; k <= maxKind; k++ {
		events = append(events, Event{
			At:        time.Duration(k) * time.Millisecond,
			Round:     int(k),
			Kind:      k,
			Node:      1 + int(k)%3,
			Subject:   int(k) % 4,
			Penalty:   int64(k) % 5,
			Threshold: int64(k) % 7,
			Evidence:  map[bool]string{true: EvidenceVerdict, false: ""}[int(k)%2 == 0],
			Detail:    "detail for " + k.String(),
		})
	}
	events = append(events, Event{Kind: Kind(42), Round: 99})

	var buf bytes.Buffer
	for _, e := range events {
		if err := WriteJSONL(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestReadJSONLRejectsGarbage: the first malformed line aborts decoding with
// its line number.
func TestReadJSONLRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Event{Kind: KindNote}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json\n")
	if _, err := ReadJSONL(&buf); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 decode error, got %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"nonsense"}` + "\n")); err == nil {
		t.Fatalf("want an unknown-kind error")
	}
}

// TestJSONLWriterRetainsFirstError: a failing writer surfaces via Err and
// suppresses further writes, counting each as dropped.
func TestJSONLWriterRetainsFirstError(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	w.Record(Event{Kind: KindNote})
	if w.Err() == nil {
		t.Fatalf("want retained write error")
	}
	if got := w.Dropped(); got != 0 {
		t.Fatalf("the failing event is the error, not a drop; Dropped = %d", got)
	}
	w.Record(Event{Kind: KindNote}) // must not panic or clear the error
	w.Record(Event{Kind: KindNote})
	if w.Err() == nil {
		t.Fatalf("error was cleared by a later Record")
	}
	if got := w.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2 (events after the first error)", got)
	}
}

// TestReadJSONLSchemaVersions: version-less lines are legacy schema-1 events
// and decode fine; a line claiming a version beyond SchemaVersion aborts with
// a clear, line-numbered error instead of best-effort decoding.
func TestReadJSONLSchemaVersions(t *testing.T) {
	legacy := `{"at_ns":2500000,"round":3,"kind":"isolation","node":1,"subject":2,"detail":"old stream"}` + "\n"
	events, err := ReadJSONL(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy version-less line must decode, got %v", err)
	}
	if len(events) != 1 || events[0].Kind != KindIsolation || events[0].Subject != 2 {
		t.Fatalf("legacy line decoded to %+v", events)
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Event{Kind: KindNote}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"v":99,"at_ns":0,"round":0,"kind":"note"}` + "\n")
	_, err = ReadJSONL(&buf)
	if err == nil {
		t.Fatalf("want an unsupported-schema error")
	}
	for _, want := range []string{"line 2", "unsupported schema version 99"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if _, err := ReadJSONL(strings.NewReader(`{"v":-1,"kind":"note"}` + "\n")); err == nil {
		t.Fatalf("want an unsupported-schema error for a negative version")
	}
}

// TestWriteJSONLStampsSchemaVersion: every written line carries the current
// schema version so future readers can dispatch on it.
func TestWriteJSONLStampsSchemaVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Event{Kind: KindAccusation, Evidence: EvidenceMatrix}); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"v":2`) {
		t.Fatalf("written line %q lacks the schema version stamp", line)
	}
	if !strings.Contains(line, `"evidence":"matrix-disagreement"`) {
		t.Fatalf("written line %q lacks the evidence field", line)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errShortPipe
}

var errShortPipe = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "pipe closed" }
