package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRecorderDroppedCountsEvictions: the bounded recorder must account for
// every event the Limit eviction discarded, keep the newest events, and
// clear the counter on Reset.
func TestRecorderDroppedCountsEvictions(t *testing.T) {
	r := Recorder{Limit: 4}
	for i := 0; i < 11; i++ {
		r.Record(Event{Round: i, Kind: KindNote})
	}
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := 7 + i; e.Round != want {
			t.Fatalf("retained[%d].Round = %d, want %d (oldest must go first)", i, e.Round, want)
		}
	}
	r.Reset()
	if r.Dropped() != 0 || r.Len() != 0 {
		t.Fatalf("Reset left dropped=%d len=%d", r.Dropped(), r.Len())
	}
	r.Record(Event{Kind: KindNote})
	if r.Dropped() != 0 {
		t.Fatalf("recording under the limit must not drop, got %d", r.Dropped())
	}
}

// TestTeeFansOutToEverySink: every sink in a Tee sees every event, in record
// order, including a streaming JSONL sink alongside in-memory recorders.
func TestTeeFansOutToEverySink(t *testing.T) {
	var a, b Recorder
	var buf bytes.Buffer
	tee := Tee{&a, &b, NewJSONLWriter(&buf)}
	events := []Event{
		{At: 10 * time.Microsecond, Round: 0, Kind: KindTransmit, Node: 1},
		{At: 20 * time.Microsecond, Round: 0, Kind: KindDiagnosis, Node: 2, Subject: 1},
		{At: 30 * time.Microsecond, Round: 1, Kind: KindIsolation, Node: 2, Subject: 1, Detail: "penalty crossed"},
	}
	for _, e := range events {
		tee.Record(e)
	}
	for name, rec := range map[string]*Recorder{"a": &a, "b": &b} {
		got := rec.Events()
		if len(got) != len(events) {
			t.Fatalf("sink %s saw %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("sink %s event %d = %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("JSONL sink saw %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("JSONL event %d = %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestJSONLRoundTripEveryKind encodes one event of every Kind (plus an
// out-of-range kind) and decodes them back unchanged.
func TestJSONLRoundTripEveryKind(t *testing.T) {
	var events []Event
	for k := KindTransmit; k <= KindNote; k++ {
		events = append(events, Event{
			At:      time.Duration(k) * time.Millisecond,
			Round:   int(k),
			Kind:    k,
			Node:    1 + int(k)%3,
			Subject: int(k) % 4,
			Detail:  "detail for " + k.String(),
		})
	}
	events = append(events, Event{Kind: Kind(42), Round: 99})

	var buf bytes.Buffer
	for _, e := range events {
		if err := WriteJSONL(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	decoded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i := range events {
		if decoded[i] != events[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, decoded[i], events[i])
		}
	}
}

// TestReadJSONLRejectsGarbage: the first malformed line aborts decoding with
// its line number.
func TestReadJSONLRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Event{Kind: KindNote}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json\n")
	if _, err := ReadJSONL(&buf); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 decode error, got %v", err)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"nonsense"}` + "\n")); err == nil {
		t.Fatalf("want an unknown-kind error")
	}
}

// TestJSONLWriterRetainsFirstError: a failing writer surfaces via Err and
// suppresses further writes.
func TestJSONLWriterRetainsFirstError(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	w.Record(Event{Kind: KindNote})
	if w.Err() == nil {
		t.Fatalf("want retained write error")
	}
	w.Record(Event{Kind: KindNote}) // must not panic or clear the error
	if w.Err() == nil {
		t.Fatalf("error was cleared by a later Record")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errShortPipe
}

var errShortPipe = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "pipe closed" }
