package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderRetainsInOrder(t *testing.T) {
	var r Recorder
	for i := 0; i < 5; i++ {
		r.Record(Event{Round: i, Kind: KindNote})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Round != i {
			t.Fatalf("event %d has round %d", i, e.Round)
		}
	}
}

func TestRecorderLimitEvictsOldest(t *testing.T) {
	r := Recorder{Limit: 3}
	for i := 0; i < 10; i++ {
		r.Record(Event{Round: i, Kind: KindNote})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Round != 7 || evs[2].Round != 9 {
		t.Fatalf("wrong retained window: %+v", evs)
	}
}

func TestRecorderFilter(t *testing.T) {
	var r Recorder
	r.Record(Event{Kind: KindTransmit})
	r.Record(Event{Kind: KindIsolation, Node: 2})
	r.Record(Event{Kind: KindTransmit})
	iso := r.Filter(KindIsolation)
	if len(iso) != 1 || iso[0].Node != 2 {
		t.Fatalf("filter returned %+v", iso)
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Record(Event{Kind: KindNote})
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("recorder not empty after Reset: %d", r.Len())
	}
}

func TestRecorderEventsIsACopy(t *testing.T) {
	var r Recorder
	r.Record(Event{Round: 1, Kind: KindNote})
	evs := r.Events()
	evs[0].Round = 99
	if got := r.Events()[0].Round; got != 1 {
		t.Fatalf("mutating the returned slice affected the recorder: round=%d", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var (
		r  Recorder
		wg sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindNote})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("got %d events, want 800", r.Len())
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At:      5 * time.Millisecond,
		Round:   2,
		Kind:    KindDiagnosis,
		Node:    1,
		Subject: 3,
		Detail:  "faulty",
	}
	s := e.String()
	for _, want := range []string{"diagnosis", "n1", "->n3", "faulty", "r2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindViewChange.String() != "view" {
		t.Fatalf("KindViewChange.String() = %q", KindViewChange.String())
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestTeeForwardsToAll(t *testing.T) {
	var a, b Recorder
	tee := Tee{&a, &b, Discard{}}
	tee.Record(Event{Kind: KindNote})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee did not forward: a=%d b=%d", a.Len(), b.Len())
	}
}
