package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders recorded events as a per-round ASCII timeline: one column
// per round, one row per node, with a compact glyph per event kind. It is
// the textual analogue of Fig. 1's round pipeline and is used by the
// ttdiag-sim CLI.
//
// Glyphs (higher in the list wins when events coincide):
//
//	X  isolation decided         V  view change
//	R  reintegration             !  benign/asymmetric/malicious transmission
//	d  diagnosis emitted         .  clean transmission + job
type Gantt struct {
	// Nodes is the number of nodes (rows).
	Nodes int
	// FromRound / ToRound bound the rendered window; ToRound == 0 renders
	// through the last recorded round.
	FromRound, ToRound int
}

// glyph ranks: higher value wins the cell.
var ganttRank = map[byte]int{'.': 1, 'd': 2, '!': 3, 'R': 4, 'V': 5, 'X': 6}

// Render lays the events out.
func (g Gantt) Render(events []Event) string {
	if g.Nodes < 1 {
		return ""
	}
	last := g.ToRound
	if last == 0 {
		for _, e := range events {
			if e.Round > last {
				last = e.Round
			}
		}
	}
	first := g.FromRound
	if last < first {
		return ""
	}
	width := last - first + 1
	rows := make([][]byte, g.Nodes+1)
	for n := 1; n <= g.Nodes; n++ {
		rows[n] = []byte(strings.Repeat(" ", width))
	}
	put := func(node, round int, glyph byte) {
		if node < 1 || node > g.Nodes || round < first || round > last {
			return
		}
		cell := &rows[node][round-first]
		if ganttRank[glyph] > ganttRank[*cell] {
			*cell = glyph
		}
	}
	for _, e := range events {
		switch e.Kind {
		case KindTransmit:
			glyph := byte('.')
			if e.Detail != "" && e.Detail != "correct" {
				glyph = '!'
			}
			put(e.Node, e.Round, glyph)
		case KindJobRun:
			put(e.Node, e.Round, '.')
		case KindDiagnosis:
			put(e.Node, e.Round, 'd')
		case KindIsolation:
			put(e.Node, e.Round, 'X')
			put(e.Subject, e.Round, 'X')
		case KindReintegration:
			put(e.Node, e.Round, 'R')
			put(e.Subject, e.Round, 'R')
		case KindViewChange:
			put(e.Node, e.Round, 'V')
		}
	}

	var b strings.Builder
	// Round ruler, one tick every 10 columns.
	fmt.Fprintf(&b, "%8s ", "round")
	ruler := make([]byte, width)
	for i := range ruler {
		ruler[i] = ' '
		if (first+i)%10 == 0 {
			ruler[i] = '|'
		}
	}
	b.Write(ruler)
	fmt.Fprintf(&b, "  (%d..%d)\n", first, last)
	for n := 1; n <= g.Nodes; n++ {
		fmt.Fprintf(&b, "%8s %s\n", fmt.Sprintf("node %d", n), rows[n])
	}
	b.WriteString("legend: . clean  ! disturbed tx  X isolation  R reintegration  V view change\n")
	return b.String()
}

// NodesInEvents returns the highest node index referenced by the events —
// a convenience for sizing a Gantt.
func NodesInEvents(events []Event) int {
	max := 0
	for _, e := range events {
		if e.Node > max {
			max = e.Node
		}
		if e.Subject > max {
			max = e.Subject
		}
	}
	return max
}

// SortByTime orders events chronologically (stable for equal times).
func SortByTime(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}
