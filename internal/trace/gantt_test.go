package trace

import (
	"strings"
	"testing"
	"time"
)

func TestGanttRender(t *testing.T) {
	events := []Event{
		{Round: 0, Kind: KindTransmit, Node: 1, Detail: "correct"},
		{Round: 1, Kind: KindTransmit, Node: 2, Detail: "benign"},
		{Round: 2, Kind: KindIsolation, Node: 3, Subject: 2},
		{Round: 3, Kind: KindReintegration, Node: 1, Subject: 2},
		{Round: 4, Kind: KindViewChange, Node: 1},
	}
	out := Gantt{Nodes: 3}.Render(events)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // ruler + 3 nodes + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	row := func(n int) string { return lines[n] }
	if !strings.Contains(row(1), ".") {
		t.Errorf("node 1 row missing clean tx:\n%s", out)
	}
	if !strings.Contains(row(2), "!") {
		t.Errorf("node 2 row missing disturbed tx:\n%s", out)
	}
	if !strings.Contains(row(3), "X") || !strings.Contains(row(2), "X") {
		t.Errorf("isolation glyph missing:\n%s", out)
	}
	if !strings.Contains(row(1), "R") || !strings.Contains(row(2), "R") {
		t.Errorf("reintegration glyph missing:\n%s", out)
	}
	if !strings.Contains(row(1), "V") {
		t.Errorf("view glyph missing:\n%s", out)
	}
}

func TestGanttGlyphPriority(t *testing.T) {
	events := []Event{
		{Round: 0, Kind: KindTransmit, Node: 1, Detail: "correct"},
		{Round: 0, Kind: KindIsolation, Node: 1, Subject: 1},
	}
	out := Gantt{Nodes: 1}.Render(events)
	if !strings.Contains(out, "X") {
		t.Fatalf("isolation did not win the cell:\n%s", out)
	}
}

func TestGanttWindow(t *testing.T) {
	events := []Event{
		{Round: 5, Kind: KindTransmit, Node: 1, Detail: "benign"},
		{Round: 15, Kind: KindTransmit, Node: 1, Detail: "benign"},
	}
	out := Gantt{Nodes: 1, FromRound: 10, ToRound: 20}.Render(events)
	row := strings.Split(out, "\n")[1]
	if strings.Count(row, "!") != 1 {
		t.Fatalf("window not applied:\n%s", out)
	}
	if (Gantt{Nodes: 1, FromRound: 9, ToRound: 3}).Render(events) != "" {
		t.Fatal("inverted window not empty")
	}
	if (Gantt{Nodes: 0}).Render(events) != "" {
		t.Fatal("zero nodes not empty")
	}
}

func TestNodesInEvents(t *testing.T) {
	events := []Event{
		{Node: 2}, {Node: 1, Subject: 7}, {Node: 3},
	}
	if got := NodesInEvents(events); got != 7 {
		t.Fatalf("NodesInEvents = %d", got)
	}
	if got := NodesInEvents(nil); got != 0 {
		t.Fatalf("NodesInEvents(nil) = %d", got)
	}
}

func TestSortByTime(t *testing.T) {
	events := []Event{
		{At: 3 * time.Millisecond, Round: 3},
		{At: time.Millisecond, Round: 1},
		{At: 2 * time.Millisecond, Round: 2},
	}
	SortByTime(events)
	for i, want := range []int{1, 2, 3} {
		if events[i].Round != want {
			t.Fatalf("order wrong: %+v", events)
		}
	}
}
