package trace

import (
	"fmt"
	"testing"
)

// chainFixture is one run's worth of causal events: node 3 accrues penalties
// from round 10, pays one off at round 14 (reward reset), accrues again and
// is isolated at round 20, then reintegrated at round 30. Node 2 has an
// unrelated open-ended isolation at round 25.
func chainFixture() []Event {
	return []Event{
		{Round: 0, Kind: KindNote, Detail: "class run 0"},
		{Round: 9, Kind: KindAccusation, Node: 1, Subject: 3, Evidence: EvidenceVerdict},
		{Round: 10, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 1, Threshold: 3},
		{Round: 12, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 2, Threshold: 3},
		{Round: 14, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 0, Threshold: 3, Detail: "reward reset"},
		{Round: 16, Kind: KindAccusation, Node: 1, Subject: 3, Evidence: EvidenceMatrix},
		{Round: 16, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 1, Threshold: 3},
		{Round: 18, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 3, Threshold: 3},
		{Round: 20, Kind: KindPenalty, Node: 1, Subject: 3, Penalty: 4, Threshold: 3},
		{Round: 20, Kind: KindIsolation, Node: 1, Subject: 3, Penalty: 4, Threshold: 3},
		{Round: 25, Kind: KindIsolation, Node: 1, Subject: 2, Penalty: 4, Threshold: 3},
		{Round: 30, Kind: KindReintegration, Node: 1, Subject: 3},
	}
}

func TestExplainWalksBackToLastReset(t *testing.T) {
	chain, err := Explain(chainFixture(), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The chain must start after the round-14 reward reset: the accusation
	// and the three penalty increments that actually drove the isolation,
	// then the isolation itself. The earlier (paid-off) trajectory and node
	// 2's events must not appear.
	wantRounds := []int{16, 16, 18, 20, 20}
	if len(chain) != len(wantRounds) {
		t.Fatalf("chain has %d events, want %d: %v", len(chain), len(wantRounds), chain)
	}
	for i, e := range chain {
		if e.Round != wantRounds[i] || e.Subject != 3 {
			t.Fatalf("chain[%d] = %+v, want round %d subject 3", i, e, wantRounds[i])
		}
	}
	if chain[0].Kind != KindAccusation || chain[0].Evidence != EvidenceMatrix {
		t.Fatalf("chain must open with the matrix-disagreement accusation, got %+v", chain[0])
	}
	last := chain[len(chain)-1]
	if last.Kind != KindIsolation || last.Penalty != 4 || last.Threshold != 3 {
		t.Fatalf("chain must end in the isolation with its counter state, got %+v", last)
	}
}

func TestExplainDefaultsToLastIsolation(t *testing.T) {
	chain, err := Explain(chainFixture(), 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := chain[len(chain)-1]; got.Kind != KindIsolation || got.Round != 25 {
		t.Fatalf("want node 2's round-25 isolation, got %+v", got)
	}
}

func TestExplainErrors(t *testing.T) {
	if _, err := Explain(chainFixture(), 4, -1); err == nil {
		t.Fatalf("want an error for a never-isolated node")
	}
	if _, err := Explain(chainFixture(), 3, 21); err == nil {
		t.Fatalf("want an error for a round with no isolation")
	}
}

func TestTimelinePairsIsolationWithReintegration(t *testing.T) {
	tl := Timeline(chainFixture())
	want := []Interval{{Node: 3, From: 20, To: 30}, {Node: 2, From: 25, To: -1}}
	if len(tl) != len(want) {
		t.Fatalf("timeline = %v, want %v", tl, want)
	}
	for i := range want {
		if tl[i] != want[i] {
			t.Fatalf("timeline[%d] = %+v, want %+v", i, tl[i], want[i])
		}
	}
}

func TestTimelineIgnoresDuplicateObserverAnnouncements(t *testing.T) {
	events := []Event{
		{Round: 5, Kind: KindIsolation, Node: 1, Subject: 2},
		{Round: 5, Kind: KindIsolation, Node: 3, Subject: 2},
		{Round: 9, Kind: KindReintegration, Node: 1, Subject: 2},
	}
	tl := Timeline(events)
	if len(tl) != 1 || tl[0] != (Interval{Node: 2, From: 5, To: 9}) {
		t.Fatalf("timeline = %v, want one 5..9 interval for node 2", tl)
	}
}

func TestSplitRunsOnNoteBoundaries(t *testing.T) {
	var events []Event
	for run := 0; run < 3; run++ {
		events = append(events, Event{Kind: KindNote, Detail: fmt.Sprintf("class run %d", run)})
		for r := 0; r < 2+run; r++ {
			events = append(events, Event{Round: r, Kind: KindJobRun, Node: 1})
		}
	}
	runs := SplitRuns(events)
	if len(runs) != 3 {
		t.Fatalf("split into %d runs, want 3", len(runs))
	}
	for i, run := range runs {
		if run[0].Kind != KindNote {
			t.Fatalf("run %d does not start at its boundary note: %+v", i, run[0])
		}
		if want := 1 + 2 + i; len(run) != want {
			t.Fatalf("run %d has %d events, want %d", i, len(run), want)
		}
	}
	// Streams without boundaries are a single run; leading events before the
	// first note form their own run.
	if runs := SplitRuns(events[1:3]); len(runs) != 1 || len(runs[0]) != 2 {
		t.Fatalf("note-less stream split to %v", runs)
	}
	lead := append([]Event{{Round: 0, Kind: KindJobRun}}, events...)
	if runs := SplitRuns(lead); len(runs) != 4 || len(runs[0]) != 1 {
		t.Fatalf("leading events must form their own run, got %d runs", len(runs))
	}
}

func TestFirstDivergence(t *testing.T) {
	a := chainFixture()
	b := chainFixture()
	if got := FirstDivergence(a, b); got != -1 {
		t.Fatalf("identical streams diverge at %d, want -1", got)
	}
	b[5].Penalty++
	if got := FirstDivergence(a, b); got != 5 {
		t.Fatalf("diverge at %d, want 5", got)
	}
	if got := FirstDivergence(a, a[:4]); got != 4 {
		t.Fatalf("prefix streams diverge at %d, want 4", got)
	}
}
