package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SchemaVersion is the JSONL wire schema this package writes. Version 1 was
// the original wire form without a version field (at_ns/round/kind/
// node/subject/detail only); version 2 added the explicit "v" field and the
// typed causal fields (penalty, threshold, evidence). Readers accept both:
// a line without a "v" field is a legacy version-1 event.
const SchemaVersion = 2

// kindFromName maps the lowercase kind names back to their Kind values. It
// is built with an explicit loop over the closed Kind range rather than by
// ranging over kindNames, so the construction order is fixed (this package
// is lint-checked as order-sensitive).
var kindFromName = func() map[string]Kind {
	m := make(map[string]Kind, int(maxKind))
	for k := KindTransmit; k <= maxKind; k++ {
		m[k.String()] = k
	}
	return m
}()

// ParseKind inverts Kind.String. Unknown kinds rendered as "kind(N)" parse
// back to Kind(N), so the JSONL encoding is total over all Kind values.
func ParseKind(s string) (Kind, error) {
	if k, ok := kindFromName[s]; ok {
		return k, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "kind(%d)", &n); err == nil {
		return Kind(n), nil
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// eventJSON is the wire form of an Event: the simulated timestamp is encoded
// as integer nanoseconds (not a duration string) so any JSONL consumer can
// sort and diff numerically, and the kind travels by name so the stream
// stays readable and stable if the Kind enum is reordered.
type eventJSON struct {
	V         int    `json:"v,omitempty"`
	AtNS      int64  `json:"at_ns"`
	Round     int    `json:"round"`
	Kind      string `json:"kind"`
	Node      int    `json:"node,omitempty"`
	Subject   int    `json:"subject,omitempty"`
	Penalty   int64  `json:"penalty,omitempty"`
	Threshold int64  `json:"threshold,omitempty"`
	Evidence  string `json:"evidence,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// WriteJSONL encodes one event as a single JSON line on w.
func WriteJSONL(w io.Writer, e Event) error {
	b, err := json.Marshal(eventJSON{
		V:         SchemaVersion,
		AtNS:      int64(e.At),
		Round:     e.Round,
		Kind:      e.Kind.String(),
		Node:      e.Node,
		Subject:   e.Subject,
		Penalty:   e.Penalty,
		Threshold: e.Threshold,
		Evidence:  e.Evidence,
		Detail:    e.Detail,
	})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSONL decodes a stream of JSONL-encoded events, one per line. Blank
// lines are skipped; the first malformed line aborts with its line number,
// as does a line carrying a schema version this reader does not understand
// (version-less lines are legacy version-1 streams and stay readable).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(raw, &ej); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		// 0 is a version-less legacy line (schema 1); anything else must be
		// a version this reader knows, so that events written by a newer
		// schema fail loudly instead of decoding with fields dropped.
		if ej.V != 0 && (ej.V < 1 || ej.V > SchemaVersion) {
			return nil, fmt.Errorf("trace: line %d: unsupported schema version %d (this reader understands 1..%d)", line, ej.V, SchemaVersion)
		}
		k, err := ParseKind(ej.Kind)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, Event{
			At:        time.Duration(ej.AtNS),
			Round:     ej.Round,
			Kind:      k,
			Node:      ej.Node,
			Subject:   ej.Subject,
			Penalty:   ej.Penalty,
			Threshold: ej.Threshold,
			Evidence:  ej.Evidence,
			Detail:    ej.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JSONLWriter is a Sink that streams every event to an io.Writer as JSON
// lines. It is safe for concurrent use, so the goroutine-per-node runtime
// can share one. The first write error is retained and reported by Err;
// subsequent events are dropped (and counted — see Dropped) rather than
// interleaving partial lines into a broken stream.
type JSONLWriter struct {
	mu      sync.Mutex
	w       io.Writer
	err     error
	dropped int64
}

var (
	_ Sink        = (*JSONLWriter)(nil)
	_ DropCounter = (*JSONLWriter)(nil)
)

// NewJSONLWriter returns a JSONL sink writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w}
}

// Record implements Sink by appending one JSON line.
func (j *JSONLWriter) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		j.dropped++
		return
	}
	j.err = WriteJSONL(j.w, e)
}

// Err reports the first write or encoding error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Dropped reports how many events were discarded after the first write
// error (the event whose write failed is not counted — it is the error).
func (j *JSONLWriter) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
