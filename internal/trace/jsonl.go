package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// kindFromName maps the lowercase kind names back to their Kind values. It
// is built with an explicit loop over the closed Kind range rather than by
// ranging over kindNames, so the construction order is fixed (this package
// is lint-checked as order-sensitive).
var kindFromName = func() map[string]Kind {
	m := make(map[string]Kind, int(KindNote))
	for k := KindTransmit; k <= KindNote; k++ {
		m[k.String()] = k
	}
	return m
}()

// ParseKind inverts Kind.String. Unknown kinds rendered as "kind(N)" parse
// back to Kind(N), so the JSONL encoding is total over all Kind values.
func ParseKind(s string) (Kind, error) {
	if k, ok := kindFromName[s]; ok {
		return k, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "kind(%d)", &n); err == nil {
		return Kind(n), nil
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// eventJSON is the wire form of an Event: the simulated timestamp is encoded
// as integer nanoseconds (not a duration string) so any JSONL consumer can
// sort and diff numerically, and the kind travels by name so the stream
// stays readable and stable if the Kind enum is reordered.
type eventJSON struct {
	AtNS    int64  `json:"at_ns"`
	Round   int    `json:"round"`
	Kind    string `json:"kind"`
	Node    int    `json:"node,omitempty"`
	Subject int    `json:"subject,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// WriteJSONL encodes one event as a single JSON line on w.
func WriteJSONL(w io.Writer, e Event) error {
	b, err := json.Marshal(eventJSON{
		AtNS:    int64(e.At),
		Round:   e.Round,
		Kind:    e.Kind.String(),
		Node:    e.Node,
		Subject: e.Subject,
		Detail:  e.Detail,
	})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSONL decodes a stream of JSONL-encoded events, one per line. Blank
// lines are skipped; the first malformed line aborts with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ej eventJSON
		if err := json.Unmarshal(raw, &ej); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		k, err := ParseKind(ej.Kind)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, Event{
			At:      time.Duration(ej.AtNS),
			Round:   ej.Round,
			Kind:    k,
			Node:    ej.Node,
			Subject: ej.Subject,
			Detail:  ej.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JSONLWriter is a Sink that streams every event to an io.Writer as JSON
// lines. It is safe for concurrent use, so the goroutine-per-node runtime
// can share one. The first write error is retained and reported by Err;
// subsequent events are dropped silently rather than interleaving partial
// lines into a broken stream.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

var _ Sink = (*JSONLWriter)(nil)

// NewJSONLWriter returns a JSONL sink writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w}
}

// Record implements Sink by appending one JSON line.
func (j *JSONLWriter) Record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = WriteJSONL(j.w, e)
}

// Err reports the first write or encoding error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
