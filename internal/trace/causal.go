package trace

import "fmt"

// This file holds the pure query helpers over recorded event streams that
// back the ttdiag-trace CLI: run splitting, per-node isolation timelines,
// causal-chain extraction for an isolation, and stream diffing. Everything
// operates on in-memory []Event slices (from a Recorder or ReadJSONL) and
// performs no I/O, so the CLI's behaviour is pinned by plain unit tests.

// Evidence classifications attached to KindAccusation events (see
// Event.Evidence).
const (
	// EvidenceVerdict marks an accusation whose row held a definite opinion
	// opposite the H-maj verdict on some column.
	EvidenceVerdict = "hmaj-verdict"
	// EvidenceMatrix marks an accusation whose row merely lacked opinions
	// (ε) on columns where the consistent health vector holds a verdict.
	EvidenceMatrix = "matrix-disagreement"
)

// SplitRuns splits a multi-repetition stream into per-run slices on the
// KindNote boundary events the experiments harness emits before each
// repetition. Events before the first boundary form run 0 if any exist; the
// boundary notes themselves lead their run's slice. A stream without notes
// is a single run.
func SplitRuns(events []Event) [][]Event {
	var runs [][]Event
	start := 0
	for i, e := range events {
		if e.Kind != KindNote {
			continue
		}
		if i > start {
			runs = append(runs, events[start:i:i])
		}
		start = i
	}
	if start < len(events) {
		runs = append(runs, events[start:len(events):len(events)])
	}
	return runs
}

// Interval is one isolation span of a node: the round its activity bit
// dropped to 0 and the round it was reintegrated (-1 while still isolated
// at the end of the stream).
type Interval struct {
	Node     int
	From, To int
}

// Timeline extracts each node's isolation intervals from one run's events,
// ordered by isolation round then node. Only KindIsolation and
// KindReintegration events contribute; every other kind is ignored.
func Timeline(events []Event) []Interval {
	var out []Interval
	open := map[int]int{} // subject -> index into out of its open interval
	for _, e := range events {
		switch e.Kind {
		case KindIsolation:
			if _, ok := open[e.Subject]; ok {
				continue // duplicate observer announcements of the same span
			}
			open[e.Subject] = len(out)
			out = append(out, Interval{Node: e.Subject, From: e.Round, To: -1})
		case KindReintegration:
			if i, ok := open[e.Subject]; ok {
				out[i].To = e.Round
				delete(open, e.Subject)
			}
		}
	}
	return out
}

// Explain returns the causal chain ending in subject's isolation: the
// isolation event itself, preceded (in stream order) by the penalty
// trajectory that reached the threshold — every KindPenalty event for the
// subject since its counter last left zero — and the accusations raised
// against it in that window. round pins a specific isolation (the round the
// activity bit dropped); pass round < 0 for the subject's last isolation in
// the stream.
//
// Multi-run streams must be split with SplitRuns first: rounds restart at
// every repetition boundary, so a chain only means something within one run.
func Explain(events []Event, subject, round int) ([]Event, error) {
	iso := -1
	for i, e := range events {
		if e.Kind != KindIsolation || e.Subject != subject {
			continue
		}
		if round >= 0 && e.Round != round {
			continue
		}
		iso = i
		if round >= 0 {
			break
		}
	}
	if iso < 0 {
		if round >= 0 {
			return nil, fmt.Errorf("trace: no isolation of node %d at round %d in the stream", subject, round)
		}
		return nil, fmt.Errorf("trace: no isolation of node %d in the stream", subject)
	}
	// Walk back to where the trajectory left zero: the event after the last
	// KindPenalty with a zero counter (a reward reset), or the stream start.
	start := 0
	for i := iso - 1; i >= 0; i-- {
		e := events[i]
		if e.Kind == KindPenalty && e.Subject == subject && e.Penalty == 0 {
			start = i + 1
			break
		}
	}
	var chain []Event
	for _, e := range events[start:iso] {
		if e.Subject != subject {
			continue
		}
		switch e.Kind {
		case KindPenalty, KindAccusation:
			chain = append(chain, e)
		}
	}
	return append(chain, events[iso]), nil
}

// FirstDivergence compares two event streams and reports the index of the
// first position where they differ (a missing event counts as a
// difference, so streams that are strict prefixes of each other diverge at
// the shorter one's length). It returns -1 when the streams are identical.
func FirstDivergence(a, b []Event) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
