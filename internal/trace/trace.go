// Package trace records structured simulation events: transmissions,
// diagnostic-job executions, agreed diagnoses, isolations, and membership
// view changes. Experiments and tests use the recorded stream both for
// human-readable round-by-round output and for programmatic audits of the
// protocol properties (correctness, completeness, consistency).
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies a recorded event.
type Kind int

// Event kinds, in rough causal order within a round.
const (
	KindTransmit Kind = iota + 1
	KindJobRun
	KindDiagnosis
	KindPenalty
	KindIsolation
	KindReintegration
	KindViewChange
	KindNote
	// KindAccusation records a minority accusation raised by Node against
	// Subject (membership mode); Evidence classifies what the accused row
	// conflicted with.
	KindAccusation
	// KindShardHealth records a fleet shard-summary health transition
	// (Subject is the 1-based shard index).
	KindShardHealth
)

// maxKind is the highest defined Kind; keep it on the last enum entry.
const maxKind = KindShardHealth

var kindNames = map[Kind]string{
	KindTransmit:      "transmit",
	KindJobRun:        "job",
	KindDiagnosis:     "diagnosis",
	KindPenalty:       "penalty",
	KindIsolation:     "isolation",
	KindReintegration: "reintegration",
	KindViewChange:    "view",
	KindNote:          "note",
	KindAccusation:    "accusation",
	KindShardHealth:   "shard-health",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded simulation event.
type Event struct {
	// At is the simulated time of the event, measured from simulation start.
	At time.Duration
	// Round is the TDMA round in which the event happened.
	Round int
	// Kind classifies the event.
	Kind Kind
	// Node is the node the event concerns (observer for diagnoses, subject
	// for transmissions and isolations); 0 when not applicable.
	Node int
	// Subject is the node the event is about, when different from Node
	// (e.g. the diagnosed or isolated node); 0 when not applicable.
	Subject int
	// Penalty and Threshold carry the Alg. 2 counter state for causal events
	// (KindPenalty, KindIsolation, KindReintegration): Subject's penalty
	// counter after the update and the isolation threshold P it is measured
	// against. Both zero when not applicable.
	Penalty   int64
	Threshold int64
	// Evidence classifies the cause of a causal event: for KindAccusation,
	// "hmaj-verdict" when the accused row holds a definite opinion opposite
	// the H-maj verdict, "matrix-disagreement" when it is only missing
	// opinions (ε) where the vector holds a verdict. Empty when not
	// applicable.
	Evidence string
	// Detail is a short human-readable description.
	Detail string
}

// String renders the event for round-by-round traces.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s r%-5d %-13s", e.At, e.Round, e.Kind)
	if e.Node != 0 {
		fmt.Fprintf(&b, " n%d", e.Node)
	}
	if e.Subject != 0 && e.Subject != e.Node {
		fmt.Fprintf(&b, "->n%d", e.Subject)
	}
	if e.Threshold != 0 {
		fmt.Fprintf(&b, " p=%d/%d", e.Penalty, e.Threshold)
	} else if e.Penalty != 0 {
		fmt.Fprintf(&b, " p=%d", e.Penalty)
	}
	if e.Evidence != "" {
		fmt.Fprintf(&b, " [%s]", e.Evidence)
	}
	if e.Detail != "" {
		b.WriteString(" ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Sink consumes events as they are produced.
type Sink interface {
	Record(Event)
}

// DropCounter is implemented by sinks that can lose events (a bounded
// Recorder evicting its oldest entries, a JSONLWriter after a write error).
// Callers probe it after a run to warn about truncated traces.
type DropCounter interface {
	// Dropped reports how many recorded events the sink has discarded.
	Dropped() int64
}

var _ DropCounter = (*Recorder)(nil)

// Recorder is a Sink that retains events in memory, optionally bounded.
// The zero value is unbounded and ready to use. Recorder is safe for
// concurrent use so that the goroutine-per-node runtime can share one.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	dropped int64
	// Limit bounds the number of retained events; once exceeded, the oldest
	// events are discarded. Zero means unbounded.
	Limit int
}

var _ Sink = (*Recorder)(nil)

// Record appends the event, evicting the oldest if the limit is exceeded.
// Evicted events are counted — see Dropped — so a bounded recorder is
// observable about its own truncation.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	if r.Limit > 0 && len(r.events) > r.Limit {
		excess := len(r.events) - r.Limit
		r.dropped += int64(excess)
		r.events = append(r.events[:0], r.events[excess:]...)
	}
}

// Dropped reports how many events the Limit eviction has discarded since
// the last Reset.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the retained events in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Filter returns the retained events matching the given kind.
func (r *Recorder) Filter(k Kind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all retained events and clears the drop counter.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
	r.dropped = 0
}

// Discard is a Sink that drops every event. Use it when tracing overhead is
// unwanted, e.g. in benchmarks.
type Discard struct{}

var _ Sink = Discard{}

// Record implements Sink by doing nothing.
func (Discard) Record(Event) {}

// Tee duplicates events to several sinks.
type Tee []Sink

var _ Sink = Tee(nil)

// Record implements Sink by forwarding to every element.
func (t Tee) Record(e Event) {
	for _, s := range t {
		s.Record(e)
	}
}
