//go:build !ttdiag_invariants

// Package invariant provides build-tag-gated assertion hooks for the
// protocol's internal consistency properties: health-vector agreement across
// node goroutines, penalty-counter bounds and monotonicity, and
// syndrome-matrix shape. In normal builds (no tag) Enabled is a false
// constant and every check compiles to nothing; building or testing with
//
//	go test -tags ttdiag_invariants ./...
//
// turns the checks into panics at the exact round boundary where a
// divergence first becomes observable — far closer to the cause than a
// failing end-to-end equivalence test. See docs/STATIC_ANALYSIS.md.
package invariant

// Enabled reports whether invariant checking is compiled in. It is a
// constant so that `if invariant.Enabled { ... }` blocks are eliminated at
// compile time in normal builds.
const Enabled = false

// Checkf is a no-op in normal builds.
func Checkf(bool, string, ...any) {}
