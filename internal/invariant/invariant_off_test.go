//go:build !ttdiag_invariants

package invariant

import "testing"

func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the ttdiag_invariants tag")
	}
	// A failing condition must be inert in normal builds.
	Checkf(false, "must not panic, got %d", 42)
}
