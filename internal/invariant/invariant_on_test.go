//go:build ttdiag_invariants

package invariant

import (
	"strings"
	"testing"
)

func TestEnabledUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the ttdiag_invariants tag")
	}
	Checkf(true, "a passing check must not panic")
}

func TestCheckfPanicsWithMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("failing Checkf did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "counter 2 is -1") {
			t.Fatalf("panic message %v does not carry the formatted detail", r)
		}
	}()
	Checkf(false, "counter %d is %d", 2, -1)
}
