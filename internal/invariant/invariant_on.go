//go:build ttdiag_invariants

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in. This build has
// the ttdiag_invariants tag set, so every Checkf call is live.
const Enabled = true

// Checkf panics with a formatted message when cond is false. Callers must
// guard call sites with `if invariant.Enabled` so that argument evaluation
// is dead-code-eliminated from normal builds.
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
