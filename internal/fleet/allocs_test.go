// Allocation-ceiling regression tests for the fleet hot path. The race
// detector instruments allocations and testing.AllocsPerRun becomes
// meaningless under it, so this file is excluded from -race builds.

//go:build !race

package fleet

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/invariant"
)

// TestGatewayRoundAllocs pins the steady-state allocation budget of one
// gateway TDMA round: the only allocations are the per-gateway retained
// round blocks inside StepPacked (one per protocol step), so the ceiling is
// exactly Shards() allocations per RunRound — frames, rows, collision ring
// and summary scratch are all reused.
func TestGatewayRoundAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	const s = 16
	gw, err := NewGatewayNet(s, core.PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50})
	if err != nil {
		t.Fatal(err)
	}
	summaries := make([]core.ShardSummary, s)
	for i := range summaries {
		summaries[i] = core.ShardSummary{Size: 64, Isolated: i % 3, Faulty: i % 5}
	}
	round := 0
	run := func() {
		if _, err := gw.RunRound(summaries, 0); err != nil {
			t.Fatal(err)
		}
		round++
	}
	// Warm up past the protocol warm-up and the output ring.
	for round < 8 {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg > s {
		t.Errorf("gateway round allocates %.1f times, want <= %d (one retained round block per gateway)", avg, s)
	}
}
