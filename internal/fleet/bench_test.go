package fleet

import (
	"testing"

	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

// BenchmarkFleetCampaign compares hierarchical fleet diagnosis against the
// scalar monolithic fallback at equal node-rounds per iteration:
//
//   - sharded_n1024_s16: 1024 nodes in 16 shards of 64, 12 rounds each plus
//     the 16-gateway fleet level — 12288 node-rounds, every node on the
//     packed fast path;
//   - scalar_monolithic_n256_eq: one flat 256-node cluster (past the packed
//     bound, so every step runs the scalar reference) for 48 rounds — the
//     same 12288 node-rounds.
//
// The monolithic baseline is measured at N = 256 because the flat design's
// per-step cost grows with N²: the comparison is conservative — a flat
// N = 1024 iteration would be far slower still (and its alignment state
// alone needs gigabytes).
func BenchmarkFleetCampaign(b *testing.B) {
	b.Run("sharded_n1024_s16", func(b *testing.B) {
		c, err := New(Config{Nodes: 1024, Shards: 16, Rounds: 12})
		if err != nil {
			b.Fatal(err)
		}
		src := rng.NewSource(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Run(src, Hooks{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar_monolithic_n256_eq", func(b *testing.B) {
		cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
			N:        256,
			RoundLen: sim.DefaultRoundLen * 256 / 4, // constant slot length, like the fleet's shards
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.Reset()
			if err := cl.Eng.RunRounds(48); err != nil {
				b.Fatal(err)
			}
		}
	})
}
