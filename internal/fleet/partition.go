// Package fleet is the hierarchical diagnosis layer that takes the protocol
// past the packed 64-node wall: an N-node system is partitioned into shards
// of at most core.MaxPackedN nodes, each shard runs the unchanged intra-
// cluster protocol (so word-parallel voting applies at every scale), and a
// second diagnosis level runs the same Alg. 1 pipeline over the shards
// themselves — per-shard gateways exchange bit-packed cluster-health summary
// syndromes over a gateway TDMA round and accumulate penalties/rewards one
// level up, reusing core.Protocol with shards as "nodes" (the FTI-TMR
// interconnected-cluster model). Shards execute in parallel on the
// internal/campaign pool with per-shard named rng streams; results are
// index-addressed and per-shard metrics registries merge through the
// commutative WorkerSet machinery, so every report is byte-identical at any
// worker count and shard execution order.
package fleet

import (
	"fmt"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

// Partition splits an N-node fleet into the given number of shards, sized as
// evenly as possible (the first nodes%shards shards get one extra node). The
// split is valid only when every shard stays on the packed fast path
// (size <= core.MaxPackedN), carries enough nodes for a protocol instance
// (size >= 2), and the gateway level itself fits one machine word
// (shards <= core.MaxPackedN).
func Partition(nodes, shards int) ([]int, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 shard, got %d", shards)
	}
	if shards > core.MaxPackedN {
		return nil, fmt.Errorf("fleet: %d shards exceed the packed gateway bound %d (add a third level before going wider)", shards, core.MaxPackedN)
	}
	if nodes < 2*shards {
		return nil, fmt.Errorf("fleet: %d nodes across %d shards leaves shards below the 2-node protocol minimum", nodes, shards)
	}
	if nodes > shards*core.MaxPackedN {
		return nil, fmt.Errorf("fleet: %d nodes across %d shards would push shards past the packed bound %d (need at least %d shards)",
			nodes, shards, core.MaxPackedN, (nodes+core.MaxPackedN-1)/core.MaxPackedN)
	}
	sizes := make([]int, shards)
	base, rem := nodes/shards, nodes%shards
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes, nil
}

// Config describes one hierarchical fleet campaign.
type Config struct {
	// Nodes is the fleet-wide node count.
	Nodes int
	// Shards is the number of intra-diagnosed clusters; each shard's gateway
	// is a node of the second diagnosis level. 1 disables the gateway level
	// (the degenerate single-cluster fleet, used by the equivalence tests).
	Shards int
	// Rounds is how many TDMA rounds every shard (and the gateway round
	// schedule) executes per run.
	Rounds int
	// Workers bounds the shard worker pool (campaign.Options semantics:
	// <= 0 means GOMAXPROCS, 1 recovers serial execution). Results and
	// metrics are identical at any setting.
	Workers int
	// RoundLen is the intra-shard TDMA round length; 0 scales the paper's
	// 2.5 ms prototype round by size/4 so the slot length stays constant
	// across shard sizes.
	RoundLen time.Duration
	// ShardPR tunes the intra-shard penalty/reward algorithm. Zero
	// thresholds follow the sim default (detection only, never isolate).
	ShardPR core.PRConfig
	// GatewayPR tunes the fleet-level penalty/reward accumulation over
	// shards. Zero thresholds default to detection only, like ShardPR.
	GatewayPR core.PRConfig
	// Metrics, when non-nil, receives one registry per shard plus one for
	// the gateway level (acquired serially at construction, so the merged
	// snapshot is invariant to worker count and shard order). nil keeps the
	// campaign on the zero-overhead metrics-off path.
	Metrics *metrics.WorkerSet
	// Sink, when non-nil, receives the fleet's causal events — shard-summary
	// health transitions and first gateway-level isolations — emitted during
	// the serial gateway phase of every Run, so the stream is identical at
	// any worker count. nil keeps the campaign trace-free.
	Sink trace.Sink
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 24
	}
	if c.GatewayPR.PenaltyThreshold == 0 && c.GatewayPR.RewardThreshold == 0 {
		c.GatewayPR.PenaltyThreshold = 1 << 50
		c.GatewayPR.RewardThreshold = 1 << 50
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	if _, err := Partition(c.Nodes, c.Shards); err != nil {
		return err
	}
	if c.Rounds < 4 {
		return fmt.Errorf("fleet: %d rounds cannot outlast the protocol warm-up", c.Rounds)
	}
	return nil
}

// shardRoundLen returns the intra-shard TDMA round length for a shard of the
// given size.
func (c Config) shardRoundLen(size int) time.Duration {
	if c.RoundLen != 0 {
		return c.RoundLen
	}
	return defaultShardRoundLen * time.Duration(size) / 4
}
