package fleet

import (
	"fmt"
	"math/bits"

	"ttdiag/internal/core"
)

// gwCollRing is how many rounds of gateway-frame collision outcomes are kept
// for the protocols' collision-detector queries; the diagnosis lag is at most
// 3, so 8 is comfortable.
const gwCollRing = 8

// GatewayNet is the inter-cluster diagnosis level: one core.Protocol per
// shard gateway, all running the packed hot path with shards as "nodes", plus
// a lock-step emulation of the gateway TDMA round. Every gateway's job runs
// at l = 0 (before the round's first gateway slot) and writes its frame for
// the same round (SendCurrRound everywhere, so AllSendCurrRound shrinks the
// fleet-level detection latency to two gateway rounds).
//
// A gateway frame is the fleet-level dissemination payload: the S-bit
// syndrome over the shards (byte-identical to the intra-cluster wire format)
// followed by the SummaryWireLen-byte bit-packed ShardSummary. The net keeps
// one shared inbox — gateway faults are modelled receiver-uniformly (a
// dropped frame is missing at every receiver and the sender's collision
// detector fires), which is the benign-fault model of the paper's bus.
type GatewayNet struct {
	s      int
	synLen int
	all    uint64
	// observe mirrors the sim layer: under the reintegration extension,
	// isolated gateways are still listened to so fault-free behaviour can be
	// rewarded.
	observe bool

	protos []*core.Protocol // 1-based
	outs   []core.RoundOutput
	// collFns caches one collision-detector closure per gateway so the
	// steady-state round performs no closure allocation.
	collFns []core.CollisionFn

	// rows/present are the shared interface state: the frames delivered by
	// the previous gateway round. recv holds the summary each frame carried.
	rows    []core.BitSyndrome
	present uint64
	recv    []core.ShardSummary
	// staged[g] is gateway g's frame buffer (syndrome bytes + summary).
	staged [][]byte
	// ign[g] is the set of senders gateway g's controller drops (fleet-level
	// isolation applied to the interface, like tdma.Controller.SetIgnored).
	ign []uint64
	// collided[r%gwCollRing] records which gateways' own transmissions were
	// lost in round r (the sender-side read-back of Lemma 3).
	collided [gwCollRing]uint64
	round    int
}

// NewGatewayNet builds the fleet-level net for s shards (2 <= s <=
// core.MaxPackedN) under the given penalty/reward tuning.
func NewGatewayNet(s int, pr core.PRConfig) (*GatewayNet, error) {
	if s < 2 || s > core.MaxPackedN {
		return nil, fmt.Errorf("fleet: gateway net needs 2..%d shards, got %d", core.MaxPackedN, s)
	}
	gw := &GatewayNet{
		s:       s,
		synLen:  core.EncodedLen(s),
		all:     core.PlaneMask(s),
		observe: pr.ReintegrationThreshold > 0,
		protos:  make([]*core.Protocol, s+1),
		outs:    make([]core.RoundOutput, s+1),
		collFns: make([]core.CollisionFn, s+1),
		rows:    make([]core.BitSyndrome, s+1),
		recv:    make([]core.ShardSummary, s+1),
		staged:  make([][]byte, s+1),
		ign:     make([]uint64, s+1),
	}
	for g := 1; g <= s; g++ {
		p, err := core.NewProtocol(core.Config{
			N: s, ID: g, L: 0,
			SendCurrRound: true, AllSendCurrRound: true,
			Mode: core.ModeDiagnostic, PR: pr,
		})
		if err != nil {
			return nil, err
		}
		gw.protos[g] = p
		gw.staged[g] = make([]byte, gw.synLen+core.SummaryWireLen)
		g := g
		gw.collFns[g] = func(r int) core.Opinion { return gw.collision(g, r) }
	}
	gw.bootstrap()
	return gw, nil
}

// bootstrap stages the all-healthy initial interface state, mirroring the
// intra-cluster middleware's interface initialisation.
func (gw *GatewayNet) bootstrap() {
	hw := core.BitSyndrome{Op: gw.all, Known: gw.all}
	for g := 1; g <= gw.s; g++ {
		gw.rows[g] = hw
		gw.recv[g] = core.ShardSummary{}
		gw.ign[g] = 0
	}
	gw.present = gw.all
	gw.collided = [gwCollRing]uint64{}
	gw.round = 0
}

// Shards returns the width of the gateway level.
func (gw *GatewayNet) Shards() int { return gw.s }

// Protocol exposes gateway g's fleet-level protocol instance (1-based).
func (gw *GatewayNet) Protocol(g int) *core.Protocol { return gw.protos[g] }

// Received returns the last ShardSummary decoded from gateway g's frame
// (1-based); the zero value before its first delivery.
func (gw *GatewayNet) Received(g int) core.ShardSummary { return gw.recv[g] }

// Reset rewinds the net to its freshly built state for the next repetition,
// keeping every allocation.
func (gw *GatewayNet) Reset() {
	for g := 1; g <= gw.s; g++ {
		gw.protos[g].Reset()
	}
	gw.bootstrap()
}

// collision answers gateway g's collision-detector query from the ring.
func (gw *GatewayNet) collision(g, round int) core.Opinion {
	if round < 0 || round >= gw.round || round < gw.round-gwCollRing {
		return core.Healthy
	}
	if gw.collided[round%gwCollRing]&(1<<uint(g-1)) != 0 {
		return core.Faulty
	}
	return core.Healthy
}

// RunRound executes one gateway TDMA round: every gateway's diagnostic job
// steps on the previous round's deliveries, then the round's slots transmit
// the freshly written frames. summaries[i] is the ShardSummary shard i
// (0-based) publishes this round; drop bit g-1 marks gateway g's frame as
// lost on the bus (receiver-uniform benign gateway fault — the frame reaches
// nobody and the sender's collision detector fires). The returned slice is
// net-owned scratch indexed 1-based by gateway, valid until the next call.
//
// In steady state the only allocations are the per-gateway retained round
// blocks inside StepPacked (one per protocol step), pinned by
// TestGatewayRoundAllocs.
//
//ttdiag:noretain
func (gw *GatewayNet) RunRound(summaries []core.ShardSummary, drop uint64) ([]core.RoundOutput, error) {
	if len(summaries) != gw.s {
		return nil, fmt.Errorf("fleet: got %d shard summaries, want %d", len(summaries), gw.s)
	}
	round := gw.round
	// Job phase: all gateways read the interface state left by round-1's
	// slots. Isolation is applied per receiver through its ignore mask.
	for g := 1; g <= gw.s; g++ {
		vis := gw.present &^ gw.ign[g]
		out, err := gw.protos[g].StepPacked(core.PackedRoundInput{
			Round:     round,
			Rows:      gw.rows,
			Present:   vis,
			Validity:  core.BitSyndrome{Op: vis, Known: gw.all},
			Collision: gw.collFns[g],
		})
		if err != nil {
			return nil, err
		}
		gw.outs[g] = out
		if !gw.observe {
			gw.ign[g] = gw.all &^ out.ActiveMask
		}
	}
	// Slot phase: transmit the frames the jobs just wrote (SendCurrRound).
	drop &= gw.all
	gw.collided[round%gwCollRing] = drop
	gw.present = gw.all &^ drop
	for g := 1; g <= gw.s; g++ {
		if drop&(1<<uint(g-1)) != 0 {
			continue
		}
		frame := gw.staged[g]
		copy(frame[:gw.synLen], gw.outs[g].Send)
		if err := summaries[g-1].EncodeInto(frame[gw.synLen:]); err != nil {
			return nil, fmt.Errorf("fleet: gateway %d summary: %w", g, err)
		}
		row, err := core.BitSyndromeFromWire(frame[:gw.synLen], gw.s)
		if err != nil {
			return nil, fmt.Errorf("fleet: gateway %d frame: %w", g, err)
		}
		sum, err := core.DecodeShardSummary(frame[gw.synLen:])
		if err != nil {
			return nil, fmt.Errorf("fleet: gateway %d frame: %w", g, err)
		}
		gw.rows[g] = row
		gw.recv[g] = sum
	}
	gw.round++
	return gw.outs, nil
}

// droppedCount is a popcount helper for the campaign's drop accounting.
func droppedCount(drop uint64) int { return bits.OnesCount64(drop) }
