package fleet

import (
	"fmt"

	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/trace"
)

// defaultShardRoundLen is the paper's prototype TDMA round (2.5 ms at N = 4);
// Config.shardRoundLen scales it with the shard size to keep slots constant.
const defaultShardRoundLen = sim.DefaultRoundLen

// ShardRun is the view a Hooks callback gets of one shard's repetition: the
// reusable cluster (already reset), its collector (already hooked on every
// node), the recycled per-worker stream pool, and the shard's place in the
// fleet. Everything is borrowed for the duration of the callback chain — the
// cluster is reused by other shards of the same size once the run completes.
type ShardRun struct {
	// Shard is the 0-based shard index.
	Shard int
	// Size is the shard's node count.
	Size int
	// First is the 0-based global index of the shard's first node (shard s
	// covers global nodes First..First+Size-1).
	First int
	// Cluster is the shard's reusable diagnostic cluster.
	Cluster *sim.DiagCluster
	// Collector records every node's outputs for auditing.
	Collector *sim.Collector
	// Pool derives named rng streams; name them by shard (and run) so draws
	// are identical at any worker count and shard order.
	Pool *rng.Pool
}

// Hooks parameterises one fleet repetition. All fields are optional.
type Hooks struct {
	// Prepare runs before a shard's rounds execute: inject disturbances,
	// wire extra observers. The returned audit closure (may be nil) runs
	// after the shard's rounds complete and reports a verdict ("" = pass).
	Prepare func(sr ShardRun) (audit func() string, err error)
	// GatewayDrop reports whether gateway g's frame (1-based) is lost on the
	// inter-cluster bus in the given gateway round — the benign gateway
	// fault and whole-shard outage model.
	GatewayDrop func(round, gateway int) bool
}

// ShardResult is one shard's outcome of a repetition.
type ShardResult struct {
	// Size and First mirror the ShardRun geometry.
	Size, First int
	// Verdict is the Prepare audit's report ("" = pass or not audited).
	Verdict string
	// Summaries[r] is the cluster-health summary the shard's gateway
	// published in round r.
	Summaries []core.ShardSummary
	// Final is the last round's summary.
	Final core.ShardSummary
}

// GatewayResult is the fleet-level outcome of a repetition (nil when the
// campaign runs a single shard — the gateway level needs at least two).
type GatewayResult struct {
	// HVs[d][g] is the packed consistent health vector gateway g (1-based)
	// agreed for diagnosed gateway round d; the zero value (Known == 0)
	// where g diagnosed nothing.
	HVs [][]core.BitSyndrome
	// IsolationRound[t] is the first gateway round in which any gateway
	// isolated shard t's gateway (1-based), or -1.
	IsolationRound []int
	// FinalActive[g] is gateway g's activity mask after the last round.
	FinalActive []uint64
	// Received[g] is the last ShardSummary decoded from gateway g's frame.
	Received []core.ShardSummary
	// Drops counts the gateway frames lost to GatewayDrop.
	Drops int
}

// Result is one fleet repetition's outcome, index-addressed by shard.
type Result struct {
	Shards  []ShardResult
	Gateway *GatewayResult
}

// Campaign is a reusable hierarchical fleet: per-worker shard clusters, the
// serial gateway net, and the per-shard metrics registries, built once and
// driven once per repetition by Run.
type Campaign struct {
	cfg   Config
	sizes []int
	first []int
	gw    *GatewayNet

	// order is the shard dispatch permutation (test seam: determinism tests
	// run shards in reverse order and assert identical results); nil is
	// identity.
	order []int

	// Per-shard registries plus one gateway registry, acquired serially at
	// construction so the WorkerSet merge is invariant to worker count and
	// shard order. Entry i belongs to shard i alone; only the worker
	// currently executing shard i writes it.
	shardSM  []*core.StepMetrics
	shardSys []*sim.RunMetrics
	gwReg    *metrics.Registry
	gwRounds *metrics.Counter
	gwDrops  *metrics.Counter
	gwIsol   *metrics.Counter
	runsCt   *metrics.Counter

	// summaries[i][r] is shard i's round-r summary scratch, reused across
	// repetitions (each shard writes only its own row during the parallel
	// phase).
	summaries [][]core.ShardSummary
	// roundSums is the per-round transmit scratch of the gateway phase.
	roundSums []core.ShardSummary
	// health is the per-shard previous summary health, scratch for the
	// causal shard-health transition events (Config.Sink).
	health []core.Opinion
}

// New builds a fleet campaign.
func New(cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes, err := Partition(cfg.Nodes, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		cfg:       cfg,
		sizes:     sizes,
		first:     make([]int, cfg.Shards),
		summaries: make([][]core.ShardSummary, cfg.Shards),
		roundSums: make([]core.ShardSummary, cfg.Shards),
		health:    make([]core.Opinion, cfg.Shards),
		shardSM:   make([]*core.StepMetrics, cfg.Shards),
		shardSys:  make([]*sim.RunMetrics, cfg.Shards),
	}
	at := 0
	for i, size := range sizes {
		c.first[i] = at
		at += size
		c.summaries[i] = make([]core.ShardSummary, cfg.Rounds)
		if reg := cfg.Metrics.Worker(); reg != nil {
			c.shardSM[i] = core.NewStepMetrics(reg)
			c.shardSys[i] = sim.NewRunMetrics(reg)
		}
	}
	c.gwReg = cfg.Metrics.Worker()
	c.gwRounds = c.gwReg.Counter("fleet/gateway/rounds")
	c.gwDrops = c.gwReg.Counter("fleet/gateway/frames_dropped")
	c.gwIsol = c.gwReg.Counter("fleet/gateway/isolations")
	c.runsCt = c.gwReg.Counter("fleet/runs")
	c.gwReg.Gauge("fleet/nodes").Observe(int64(cfg.Nodes))
	c.gwReg.Gauge("fleet/shards").Observe(int64(cfg.Shards))
	if cfg.Shards >= 2 {
		gw, err := NewGatewayNet(cfg.Shards, cfg.GatewayPR)
		if err != nil {
			return nil, err
		}
		c.gw = gw
	}
	return c, nil
}

// Config returns the campaign's (defaulted) configuration.
func (c *Campaign) Config() Config { return c.cfg }

// Sizes returns the shard sizes (do not mutate).
func (c *Campaign) Sizes() []int { return c.sizes }

// GatewayRegistry exposes the fleet-level metrics registry (nil when
// metrics are off) for experiment-level instruments such as outage-isolation
// latency histograms.
func (c *Campaign) GatewayRegistry() *metrics.Registry { return c.gwReg }

// shardWorker is one pool worker's reusable state: a stream pool plus one
// cached cluster per shard size it has executed (an even partition has at
// most two distinct sizes).
type shardWorker struct {
	c     *Campaign
	pool  *rng.Pool
	slots map[int]*shardSlot
}

type shardSlot struct {
	cl  *sim.DiagCluster
	col *sim.Collector
}

func (w *shardWorker) slot(size int) (*shardSlot, error) {
	if s, ok := w.slots[size]; ok {
		return s, nil
	}
	cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
		N:        size,
		RoundLen: w.c.cfg.shardRoundLen(size),
		PR:       w.c.cfg.ShardPR,
	})
	if err != nil {
		return nil, err
	}
	s := &shardSlot{cl: cl, col: sim.NewCollector()}
	w.slots[size] = s
	return s, nil
}

// runShard executes one shard's repetition: reset, hook, prepare, run,
// observe, audit. It writes the shard's summary timeline into the campaign's
// index-addressed scratch — safe concurrently because every shard owns its
// row.
func (w *shardWorker) runShard(shard int, hooks Hooks) (ShardResult, error) {
	c := w.c
	size := c.sizes[shard]
	slot, err := w.slot(size)
	if err != nil {
		return ShardResult{}, err
	}
	w.pool.Recycle()
	slot.cl.Reset()
	eng, runners := slot.cl.Eng, slot.cl.Runners
	if sm := c.shardSM[shard]; sm != nil {
		for id := 1; id <= size; id++ {
			runners[id].Protocol().SetMetrics(sm)
		}
	}
	slot.col.Reset()
	for id := 1; id <= size; id++ {
		slot.col.HookDiag(id, runners[id])
	}
	// The gateway (node 1) publishes a fresh ShardSummary every round,
	// captured by chaining onto its collector hook: how many nodes the
	// shard's penalty/reward state has isolated and how many entries of the
	// latest consistent health vector are faulty.
	sums := c.summaries[shard]
	all := core.PlaneMask(size)
	collect := runners[1].OnOutput
	runners[1].OnOutput = func(out core.RoundOutput) {
		collect(out)
		if out.Round < 0 || out.Round >= len(sums) {
			return
		}
		s := core.ShardSummary{Size: size, Isolated: size - droppedCount(out.ActiveMask&all)}
		if out.ConsHV != nil {
			s.Faulty = out.ConsHVBits.CountFaulty(size)
		}
		sums[out.Round] = s
	}
	res := ShardResult{Size: size, First: c.first[shard]}
	var audit func() string
	if hooks.Prepare != nil {
		audit, err = hooks.Prepare(ShardRun{
			Shard: shard, Size: size, First: c.first[shard],
			Cluster: slot.cl, Collector: slot.col, Pool: w.pool,
		})
		if err != nil {
			return ShardResult{}, err
		}
	}
	if err := eng.RunRounds(c.cfg.Rounds); err != nil {
		return ShardResult{}, err
	}
	if sys := c.shardSys[shard]; sys != nil {
		sys.ObserveTruth(eng)
		sys.ObserveIsolationLatency(eng, slot.col)
	}
	if audit != nil {
		res.Verdict = audit()
	}
	res.Summaries = sums
	res.Final = sums[c.cfg.Rounds-1]
	return res, nil
}

// Run executes one fleet repetition: all shards in parallel on the campaign
// pool, then the gateway round schedule serially over the recorded summary
// timelines. The two-phase split is exactly equivalent to interleaving
// because the protocol is an add-on: fleet-level diagnosis never feeds back
// into intra-shard traffic.
//
// src seeds the per-worker stream pools; hooks inject the repetition's fault
// scenario. The returned Result aliases campaign-owned summary scratch that
// the next Run overwrites — copy what must outlive it.
func (c *Campaign) Run(src *rng.Source, hooks Hooks) (*Result, error) {
	c.runsCt.Add(1)
	order := c.order
	shardOf := func(job int) int {
		if order == nil {
			return job
		}
		return order[job]
	}
	outs, err := campaign.RunPooledWith(campaign.Options{Workers: c.cfg.Workers}, c.cfg.Shards,
		func() (*shardWorker, error) {
			return &shardWorker{c: c, pool: src.NewPool(), slots: make(map[int]*shardSlot)}, nil
		},
		func(w *shardWorker, job int) (ShardResult, error) {
			return w.runShard(shardOf(job), hooks)
		})
	if err != nil {
		return nil, err
	}
	res := &Result{Shards: make([]ShardResult, c.cfg.Shards)}
	for job, sr := range outs {
		res.Shards[shardOf(job)] = sr
	}
	if c.cfg.Sink != nil {
		// Causal emission happens serially over the recorded summary
		// timelines, never inside the parallel shard phase, so the stream is
		// identical at any worker count and shard order.
		c.emitShardHealth()
	}
	if c.gw == nil {
		return res, nil
	}

	// Gateway phase: one fleet-level TDMA round per intra-shard round, each
	// transmitting the summaries the shards published in that round.
	c.gw.Reset()
	s := c.cfg.Shards
	gr := &GatewayResult{
		HVs:            make([][]core.BitSyndrome, c.cfg.Rounds),
		IsolationRound: make([]int, s+1),
		FinalActive:    make([]uint64, s+1),
		Received:       make([]core.ShardSummary, s+1),
	}
	for t := range gr.IsolationRound {
		gr.IsolationRound[t] = -1
	}
	for k := 0; k < c.cfg.Rounds; k++ {
		var drop uint64
		if hooks.GatewayDrop != nil {
			for g := 1; g <= s; g++ {
				if hooks.GatewayDrop(k, g) {
					drop |= 1 << uint(g-1)
				}
			}
		}
		for i := 0; i < s; i++ {
			c.roundSums[i] = c.summaries[i][k]
		}
		outs, err := c.gw.RunRound(c.roundSums, drop)
		if err != nil {
			return nil, err
		}
		gr.Drops += droppedCount(drop)
		c.gwRounds.Add(1)
		c.gwDrops.Add(int64(droppedCount(drop)))
		for g := 1; g <= s; g++ {
			out := outs[g]
			if out.ConsHV != nil && out.DiagnosedRound >= 0 {
				if gr.HVs[out.DiagnosedRound] == nil {
					gr.HVs[out.DiagnosedRound] = make([]core.BitSyndrome, s+1)
				}
				gr.HVs[out.DiagnosedRound][g] = out.ConsHVBits
			}
			for _, t := range out.Isolated {
				c.gwIsol.Add(1)
				if gr.IsolationRound[t] < 0 {
					gr.IsolationRound[t] = k
					if c.cfg.Sink != nil {
						// One event per shard isolation: g is the first
						// gateway seen isolating (all obedient gateways
						// decide identically in the same round).
						c.cfg.Sink.Record(trace.Event{
							Round:     k,
							Kind:      trace.KindIsolation,
							Node:      g,
							Subject:   t,
							Penalty:   c.gw.protos[g].PenaltyReward().Penalty(t),
							Threshold: c.cfg.GatewayPR.PenaltyThreshold,
							Detail:    "gateway level",
						})
					}
				}
			}
		}
	}
	for g := 1; g <= s; g++ {
		gr.FinalActive[g] = c.gw.protos[g].PenaltyReward().ActiveMask()
		gr.Received[g] = c.gw.Received(g)
	}
	res.Gateway = gr
	return res, nil
}

// emitShardHealth streams one KindShardHealth event per shard-summary
// health transition, chronological (round-major, then shard). The baseline
// is Healthy — the nominal state — so quiet fleets emit nothing; Subject is
// the 1-based shard index.
func (c *Campaign) emitShardHealth() {
	for i := range c.health {
		c.health[i] = core.Healthy
	}
	for k := 0; k < c.cfg.Rounds; k++ {
		for i := 0; i < c.cfg.Shards; i++ {
			h := c.summaries[i][k].Health()
			if h == c.health[i] {
				continue
			}
			c.health[i] = h
			s := c.summaries[i][k]
			c.cfg.Sink.Record(trace.Event{
				Round:   k,
				Kind:    trace.KindShardHealth,
				Subject: i + 1,
				Detail:  fmt.Sprintf("%s (%d/%d isolated, %d faulty)", healthName(h), s.Isolated, s.Size, s.Faulty),
			})
		}
	}
}

// healthName renders a shard-health opinion for event details (the Opinion
// String form is the terse matrix glyph).
func healthName(h core.Opinion) string {
	switch h {
	case core.Healthy:
		return "healthy"
	case core.Faulty:
		return "faulty"
	default:
		return "erased"
	}
}

// setOrder installs a shard dispatch permutation (test seam). perm must be a
// permutation of 0..Shards-1; nil restores identity dispatch.
func (c *Campaign) setOrder(perm []int) error {
	if perm == nil {
		c.order = nil
		return nil
	}
	if len(perm) != c.cfg.Shards {
		return fmt.Errorf("fleet: order has %d entries, want %d", len(perm), c.cfg.Shards)
	}
	seen := make([]bool, c.cfg.Shards)
	for _, p := range perm {
		if p < 0 || p >= c.cfg.Shards || seen[p] {
			return fmt.Errorf("fleet: order is not a permutation of 0..%d", c.cfg.Shards-1)
		}
		seen[p] = true
	}
	c.order = append([]int(nil), perm...)
	return nil
}
