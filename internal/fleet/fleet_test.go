package fleet

import (
	"fmt"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

func TestPartition(t *testing.T) {
	cases := []struct {
		nodes, shards int
		want          []int
		wantErr       bool
	}{
		{64, 1, []int{64}, false},
		{256, 4, []int{64, 64, 64, 64}, false},
		{10, 3, []int{4, 3, 3}, false},
		{130, 3, []int{44, 43, 43}, false},
		{4096, 64, nil, false},
		{0, 0, nil, true},    // no shards
		{100, 0, nil, true},  // no shards
		{128, 65, nil, true}, // gateway level past the packed bound
		{3, 2, nil, true},    // shard below the 2-node minimum
		{65, 1, nil, true},   // shard past the packed bound
		{4097, 64, nil, true},
	}
	for _, c := range cases {
		got, err := Partition(c.nodes, c.shards)
		if c.wantErr {
			if err == nil {
				t.Errorf("Partition(%d, %d): want error, got %v", c.nodes, c.shards, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Partition(%d, %d): %v", c.nodes, c.shards, err)
			continue
		}
		total := 0
		for _, s := range got {
			total += s
			if s < 2 || s > core.MaxPackedN {
				t.Errorf("Partition(%d, %d): shard size %d out of range", c.nodes, c.shards, s)
			}
		}
		if total != c.nodes {
			t.Errorf("Partition(%d, %d): sizes sum to %d", c.nodes, c.shards, total)
		}
		if c.want != nil {
			for i, w := range c.want {
				if got[i] != w {
					t.Errorf("Partition(%d, %d) = %v, want %v", c.nodes, c.shards, got, c.want)
					break
				}
			}
		}
	}
}

// burstHooks injects a single-slot benign burst into the victim shard, drawn
// from a run-scoped stream, and audits Theorem 1 around the injection.
func burstHooks(prefix string, victim int) Hooks {
	return Hooks{
		Prepare: func(sr ShardRun) (func() string, error) {
			if sr.Shard != victim {
				return nil, nil
			}
			stream := sr.Pool.Stream(fmt.Sprintf("%s/shard-%d", prefix, sr.Shard))
			inject := 6 + stream.Intn(3)
			node := 2 + stream.Intn(sr.Size-1)
			eng := sr.Cluster.Eng
			eng.Bus().AddDisturbance(fault.NewTrain(
				fault.SlotBurst(eng.Schedule(), inject, node, 1)))
			obedient := make([]int, sr.Size)
			for i := range obedient {
				obedient[i] = i + 1
			}
			col := sr.Collector
			return func() string {
				if err := sim.AuditTheorem1(eng, col, obedient, 4, inject+6); err != nil {
					return err.Error()
				}
				return ""
			}, nil
		},
	}
}

// checkGatewayHVConsistency asserts that every gateway that produced a
// consistent health vector for a diagnosed round agreed on the same vector —
// Theorem 1 consistency lifted to the fleet level.
func checkGatewayHVConsistency(t *testing.T, gr *GatewayResult, s int) {
	t.Helper()
	diagnosed := 0
	for d, hvs := range gr.HVs {
		if hvs == nil {
			continue
		}
		diagnosed++
		var ref core.BitSyndrome
		refG := 0
		for g := 1; g <= s; g++ {
			hv := hvs[g]
			if hv.Known == 0 {
				continue
			}
			if refG == 0 {
				ref, refG = hv, g
			} else if hv != ref {
				t.Errorf("gateway HV consistency violated at diagnosed round %d: gateway %d %+v vs gateway %d %+v",
					d, g, hv, refG, ref)
			}
		}
	}
	if diagnosed == 0 {
		t.Error("no gateway round was diagnosed")
	}
}

// TestFleetOutageIsolation runs the full two-level pipeline: an intra-shard
// burst is diagnosed and audited inside its shard while a whole-shard outage
// (its gateway stops transmitting) is isolated at the fleet level by every
// surviving gateway.
func TestFleetOutageIsolation(t *testing.T) {
	const (
		shards      = 4
		victim      = 0
		outage      = 2
		outageRound = 8
	)
	c, err := New(Config{
		Nodes: 32, Shards: shards,
		GatewayPR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := c.Config().Rounds
	hooks := burstHooks("outage/run-0", victim)
	hooks.GatewayDrop = func(round, g int) bool {
		return g == outage+1 && round >= outageRound
	}
	res, err := c.Run(rng.NewSource(11), hooks)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range res.Shards {
		if sr.Verdict != "" {
			t.Errorf("shard %d intra-shard audit failed: %s", i, sr.Verdict)
		}
		if sr.Final.Size != c.Sizes()[i] {
			t.Errorf("shard %d final summary size %d, want %d", i, sr.Final.Size, c.Sizes()[i])
		}
	}
	gr := res.Gateway
	if gr == nil {
		t.Fatal("no gateway result for a multi-shard fleet")
	}
	if gr.Drops != rounds-outageRound {
		t.Errorf("drops = %d, want %d", gr.Drops, rounds-outageRound)
	}
	iso := gr.IsolationRound[outage+1]
	if iso < outageRound || iso >= rounds {
		t.Fatalf("outage shard isolated at gateway round %d, want within [%d, %d)", iso, outageRound, rounds)
	}
	// Detection lag is two gateway rounds and the penalty threshold adds
	// three more faulty verdicts before isolation trips.
	if lat := iso - outageRound; lat > 8 {
		t.Errorf("isolation latency %d gateway rounds, want <= 8", lat)
	}
	all := core.PlaneMask(shards)
	want := all &^ (1 << uint(outage))
	for g := 1; g <= shards; g++ {
		if g != outage+1 {
			if gr.IsolationRound[g] >= 0 {
				t.Errorf("healthy shard %d isolated at round %d", g-1, gr.IsolationRound[g])
			}
			if gr.FinalActive[g] != want {
				t.Errorf("gateway %d final active mask %064b, want %064b", g, gr.FinalActive[g], want)
			}
			if gr.Received[g].Size != c.Sizes()[g-1] {
				t.Errorf("gateway %d last received summary %+v, want size %d", g, gr.Received[g], c.Sizes()[g-1])
			}
		}
	}
	checkGatewayHVConsistency(t, gr, shards)
}

// TestFleetTransientGatewayFault checks tuning: a two-round gateway-frame
// loss stays below the fleet-level penalty threshold and is not isolated.
func TestFleetTransientGatewayFault(t *testing.T) {
	c, err := New(Config{
		Nodes: 32, Shards: 4,
		GatewayPR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	hooks := Hooks{GatewayDrop: func(round, g int) bool {
		return g == 2 && round >= 6 && round < 8
	}}
	res, err := c.Run(rng.NewSource(3), hooks)
	if err != nil {
		t.Fatal(err)
	}
	gr := res.Gateway
	if gr.Drops != 2 {
		t.Errorf("drops = %d, want 2", gr.Drops)
	}
	for g := 1; g <= 4; g++ {
		if gr.IsolationRound[g] >= 0 {
			t.Errorf("shard %d isolated at round %d after a transient fault", g-1, gr.IsolationRound[g])
		}
		if gr.FinalActive[g] != core.PlaneMask(4) {
			t.Errorf("gateway %d final active mask %04b, want all active", g, gr.FinalActive[g])
		}
	}
	checkGatewayHVConsistency(t, gr, 4)
}

// TestFleetSingleShard pins the degenerate geometry: one shard, no gateway
// level, results flow through unchanged.
func TestFleetSingleShard(t *testing.T) {
	c, err := New(Config{Nodes: 16, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(rng.NewSource(5), burstHooks("single/run-0", 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gateway != nil {
		t.Error("single-shard fleet produced a gateway result")
	}
	if len(res.Shards) != 1 || res.Shards[0].Verdict != "" {
		t.Errorf("unexpected shard results: %+v", res.Shards)
	}
	if res.Shards[0].Final.Size != 16 {
		t.Errorf("final summary %+v, want size 16", res.Shards[0].Final)
	}
}

// TestFleetSummaryTimeline checks the published per-round summaries: an
// intra-shard isolation (strict shard PR tuning) must surface in the victim
// shard's summary stream and nowhere else.
func TestFleetSummaryTimeline(t *testing.T) {
	const victim = 1
	c, err := New(Config{
		Nodes: 24, Shards: 3,
		ShardPR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A persistent benign fault inside the victim shard: node 3's slot is hit
	// every round from round 6 on, driving its penalty past the threshold.
	hooks := Hooks{Prepare: func(sr ShardRun) (func() string, error) {
		if sr.Shard != victim {
			return nil, nil
		}
		eng := sr.Cluster.Eng
		var bursts []fault.Burst
		for r := 6; r < c.Config().Rounds; r++ {
			bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
		}
		eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
		return nil, nil
	}}
	res, err := c.Run(rng.NewSource(9), hooks)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Shards[victim].Final; got.Isolated != 1 {
		t.Errorf("victim shard final summary %+v, want 1 isolated node", got)
	}
	if !res.Shards[victim].Final.Degraded() {
		t.Error("victim shard final summary not flagged degraded")
	}
	for i, sr := range res.Shards {
		if i == victim {
			continue
		}
		if sr.Final.Isolated != 0 || sr.Final.Degraded() {
			t.Errorf("healthy shard %d final summary %+v", i, sr.Final)
		}
	}
	// The fleet level must have decoded the victim's degradation: the last
	// summary every gateway received from the victim's gateway carries the
	// isolation count.
	if got := res.Gateway.Received[victim+1]; got.Isolated != 1 {
		t.Errorf("fleet-level received summary %+v, want 1 isolated", got)
	}
}
