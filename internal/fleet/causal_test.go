package fleet

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/trace"
)

// crashShardHooks crashes two nodes of shard 0 from round 4 on — enough to
// consume a 4-node shard's majority margin and flip its summary health — and
// from round 6 takes shard 0's gateway off the inter-cluster bus, the
// whole-shard-outage model the gateway-level penalty counters react to.
func crashShardHooks() Hooks {
	return Hooks{
		Prepare: func(sr ShardRun) (func() string, error) {
			if sr.Shard != 0 {
				return nil, nil
			}
			bus := sr.Cluster.Eng.Bus()
			bus.AddDisturbance(fault.Crash(3, 4))
			bus.AddDisturbance(fault.Crash(4, 4))
			return nil, nil
		},
		GatewayDrop: func(round, gateway int) bool {
			return gateway == 1 && round >= 6
		},
	}
}

func causalFleetConfig(workers int, sink trace.Sink) Config {
	return Config{
		Nodes: 8, Shards: 2, Rounds: 24, Workers: workers,
		ShardPR:   core.PRConfig{PenaltyThreshold: 1, RewardThreshold: 2},
		GatewayPR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
		Sink:      sink,
	}
}

// TestFleetCausalEvents: crashing half of shard 0 must surface in the causal
// stream as a shard-health transition to faulty (Subject = 1-based shard
// index) and, once the gateway-level counters cross, exactly one
// gateway-level isolation event for that shard, consistent with
// GatewayResult.IsolationRound.
func TestFleetCausalEvents(t *testing.T) {
	var rec trace.Recorder
	c, err := New(causalFleetConfig(1, &rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(rng.NewSource(7), crashShardHooks())
	if err != nil {
		t.Fatal(err)
	}

	health := rec.Filter(trace.KindShardHealth)
	if len(health) == 0 {
		t.Fatalf("no shard-health events; stream: %v", rec.Events())
	}
	var sawFaulty bool
	for _, e := range health {
		if e.Subject != 1 {
			t.Fatalf("health transition for shard %d, only shard 1 was disturbed: %+v", e.Subject, e)
		}
		if e.Detail == "" {
			t.Fatalf("health transition without detail: %+v", e)
		}
		sawFaulty = sawFaulty || e.Detail[:6] == "faulty"
	}
	if !sawFaulty {
		t.Fatalf("no transition to faulty among %v", health)
	}

	isos := rec.Filter(trace.KindIsolation)
	if len(isos) != 1 {
		t.Fatalf("want exactly one gateway-level isolation event, got %v", isos)
	}
	iso := isos[0]
	if iso.Subject != 1 || iso.Detail != "gateway level" {
		t.Fatalf("gateway isolation malformed: %+v", iso)
	}
	if res.Gateway == nil || res.Gateway.IsolationRound[1] != iso.Round {
		t.Fatalf("event round %d disagrees with IsolationRound %v", iso.Round, res.Gateway.IsolationRound)
	}
	if iso.Penalty <= iso.Threshold {
		t.Fatalf("gateway isolation counter state %d/%d shows no crossing", iso.Penalty, iso.Threshold)
	}
}

// TestFleetCausalWorkerInvariance: the causal stream is emitted from the
// serial phase over recorded timelines, so it must be byte-identical at any
// worker count and under a reversed shard dispatch order.
func TestFleetCausalWorkerInvariance(t *testing.T) {
	run := func(workers int, reorder bool) []trace.Event {
		var rec trace.Recorder
		c, err := New(causalFleetConfig(workers, &rec))
		if err != nil {
			t.Fatal(err)
		}
		if reorder {
			if err := c.setOrder([]int{1, 0}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Run(rng.NewSource(7), crashShardHooks()); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	ref := run(1, false)
	if len(ref) == 0 {
		t.Fatalf("reference run emitted nothing — the invariance check is vacuous")
	}
	for _, v := range []struct {
		workers int
		reorder bool
	}{{4, false}, {1, true}, {4, true}} {
		got := run(v.workers, v.reorder)
		if i := trace.FirstDivergence(ref, got); i >= 0 {
			t.Fatalf("workers=%d reorder=%v: stream diverges at event %d", v.workers, v.reorder, i)
		}
	}
}
