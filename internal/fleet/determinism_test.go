// Determinism contracts of the fleet layer: results and merged metrics are
// byte-identical at any worker count and any shard dispatch order, and the
// degenerate single-shard fleet reproduces a directly driven monolithic
// cluster exactly.
package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

// invarianceConfig is the shared geometry of the invariance tests: six
// shards so permutations and worker imbalance have room to bite.
func invarianceConfig(workers int, ws *metrics.WorkerSet) Config {
	return Config{
		Nodes: 48, Shards: 6, Workers: workers,
		GatewayPR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 8},
		Metrics:   ws,
	}
}

// invarianceHooks is a full scenario: a burst inside shard 0, a whole-shard
// outage of shard 3 and a transient frame loss at shard 1's gateway.
func invarianceHooks(run int) Hooks {
	hooks := burstHooks(fmt.Sprintf("invariance/run-%d", run), 0)
	hooks.GatewayDrop = func(round, g int) bool {
		if g == 4 && round >= 9 {
			return true
		}
		return g == 2 && round >= 5 && round < 7
	}
	return hooks
}

func TestFleetWorkerCountInvariance(t *testing.T) {
	ws1, ws4 := metrics.NewWorkerSet(), metrics.NewWorkerSet()
	c1, err := New(invarianceConfig(1, ws1))
	if err != nil {
		t.Fatal(err)
	}
	c4, err := New(invarianceConfig(4, ws4))
	if err != nil {
		t.Fatal(err)
	}
	src1, src4 := rng.NewSource(23), rng.NewSource(23)
	for run := 0; run < 2; run++ {
		hooks := invarianceHooks(run)
		r1, err := c1.Run(src1, hooks)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := c4.Run(src4, hooks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r4) {
			t.Fatalf("run %d: results differ between 1 and 4 workers:\n1: %+v\n4: %+v", run, r1, r4)
		}
	}
	s1, err := ws1.Merged()
	if err != nil {
		t.Fatal(err)
	}
	s4, err := ws4.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s4) {
		t.Fatalf("merged metrics differ between 1 and 4 workers:\n1: %+v\n4: %+v", s1, s4)
	}
}

func TestFleetShardOrderInvariance(t *testing.T) {
	wsA, wsB := metrics.NewWorkerSet(), metrics.NewWorkerSet()
	cA, err := New(invarianceConfig(2, wsA))
	if err != nil {
		t.Fatal(err)
	}
	cB, err := New(invarianceConfig(2, wsB))
	if err != nil {
		t.Fatal(err)
	}
	if err := cB.setOrder([]int{5, 4, 3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	srcA, srcB := rng.NewSource(23), rng.NewSource(23)
	for run := 0; run < 2; run++ {
		hooks := invarianceHooks(run)
		rA, err := cA.Run(srcA, hooks)
		if err != nil {
			t.Fatal(err)
		}
		rB, err := cB.Run(srcB, hooks)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rA, rB) {
			t.Fatalf("run %d: results differ under reversed shard order:\nidentity: %+v\nreversed: %+v", run, rA, rB)
		}
	}
	sA, err := wsA.Merged()
	if err != nil {
		t.Fatal(err)
	}
	sB, err := wsB.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sA, sB) {
		t.Fatalf("merged metrics differ under reversed shard order:\nidentity: %+v\nreversed: %+v", sA, sB)
	}
	if err := cB.setOrder([]int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("setOrder accepted a non-permutation")
	}
	if err := cB.setOrder([]int{0, 1}); err == nil {
		t.Error("setOrder accepted a short permutation")
	}
}

// TestFleetMonolithicEquivalence pins the degenerate geometry against the
// executable reference: a 1-shard fleet at N <= MaxPackedN must produce
// exactly the health vectors, isolations and activity state of a directly
// driven sim.DiagCluster fed the same streams.
func TestFleetMonolithicEquivalence(t *testing.T) {
	const n = 16
	c, err := New(Config{
		Nodes: n, Shards: 1,
		ShardPR: core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := c.Config().Rounds

	var fleetCl *sim.DiagCluster
	var fleetCol *sim.Collector
	hooks := Hooks{Prepare: func(sr ShardRun) (func() string, error) {
		fleetCl, fleetCol = sr.Cluster, sr.Collector
		stream := sr.Pool.Stream("equiv/run-0/shard-0")
		inject := 6 + stream.Intn(3)
		node := 2 + stream.Intn(sr.Size-1)
		eng := sr.Cluster.Eng
		var bursts []fault.Burst
		for r := inject; r < inject+6; r += 2 {
			bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, node, 1))
		}
		eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
		return nil, nil
	}}
	res, err := c.Run(rng.NewSource(7), hooks)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same cluster geometry driven directly, drawing from
	// identically named streams of an identically seeded source.
	ref, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
		N:        n,
		RoundLen: c.Config().shardRoundLen(n),
		PR:       core.PRConfig{PenaltyThreshold: 2, RewardThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref.Reset()
	refCol := sim.NewCollector()
	for id := 1; id <= n; id++ {
		refCol.HookDiag(id, ref.Runners[id])
	}
	pool := rng.NewSource(7).NewPool()
	pool.Recycle()
	stream := pool.Stream("equiv/run-0/shard-0")
	inject := 6 + stream.Intn(3)
	node := 2 + stream.Intn(n-1)
	var bursts []fault.Burst
	for r := inject; r < inject+6; r += 2 {
		bursts = append(bursts, fault.SlotBurst(ref.Eng.Schedule(), r, node, 1))
	}
	ref.Eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := ref.Eng.RunRounds(rounds); err != nil {
		t.Fatal(err)
	}

	for d := 0; d < rounds; d++ {
		got, want := fleetCol.RoundHVs(d), refCol.RoundHVs(d)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("diagnosed round %d: fleet HVs %v, monolithic HVs %v", d, got, want)
		}
	}
	if !reflect.DeepEqual(fleetCol.Isolations, refCol.Isolations) {
		t.Fatalf("isolations diverge: fleet %+v, monolithic %+v", fleetCol.Isolations, refCol.Isolations)
	}
	for id := 1; id <= n; id++ {
		g := fleetCl.Runners[id].Protocol().PenaltyReward().ActiveMask()
		w := ref.Runners[id].Protocol().PenaltyReward().ActiveMask()
		if g != w {
			t.Errorf("node %d: fleet active mask %064b, monolithic %064b", id, g, w)
		}
	}
	// The published summary must agree with the reference's end state.
	if got := res.Shards[0].Final; got.Size != n {
		t.Errorf("final summary %+v, want size %d", got, n)
	}
}
