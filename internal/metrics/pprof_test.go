package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerServesPprofAndVars: the debug endpoint must expose both
// expvar's /debug/vars — with the start stamp published on the server path —
// and net/http/pprof's profile index, since the experiments CLI points its
// -progress-addr users at both.
func TestDebugServerServesPprofAndVars(t *testing.T) {
	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind loopback: %v", err)
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "ttdiag.debug.start") {
		t.Fatalf("/debug/vars lacks the debug start stamp:\n%s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index lacks the profile list:\n%s", idx)
	}
}
