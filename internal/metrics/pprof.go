package metrics

import (
	"expvar"
	"sync"
	"time"

	// The blank import hooks net/http/pprof's handlers (/debug/pprof/...)
	// into the default HTTP mux, right next to expvar's /debug/vars —
	// StartDebugServer serves that mux, so a -progress-addr endpoint exposes
	// live profiling with no extra wiring. Registration is all the package
	// does at import time; nothing runs until the debug server is started.
	_ "net/http/pprof"
)

var debugStartOnce sync.Once

// publishDebugStart publishes the debug server's start time under
// ttdiag.debug.start so scraped profiles and progress counters can be
// aligned against the host clock. It runs at most once per process, only on
// the StartDebugServer path — the stamp is debug-side observability and,
// like Progress, never enters a Snapshot or Report.
func publishDebugStart() {
	debugStartOnce.Do(func() {
		//lint:ignore no-wallclock debug-server start stamp for profile correlation; never enters deterministic outputs
		start := time.Now()
		expvar.Publish("ttdiag.debug.start", expvar.Func(func() any {
			return start.Format(time.RFC3339Nano)
		}))
	})
}
