package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Progress is the opt-in wall-clock campaign progress reporter: it counts
// completed runs, prints a rate-limited "done/total (runs/s, ETA)" line,
// and can publish itself as an expvar for scraping over HTTP.
//
// Progress is the ONE deliberately non-deterministic piece of this package.
// Its purpose — telling a human how fast a campaign is going — requires the
// host clock, so its clock reads carry explicit determinism-lint
// exemptions. Nothing it observes ever enters a Snapshot or Report: wire it
// only to campaign.Options.OnRunDone (completion order, not run order) and
// human-facing writers.
//
// Progress is safe for concurrent use; campaign workers call RunDone from
// their own goroutines. A nil *Progress is a no-op.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	total    int64
	done     int64
	start    time.Time
	last     time.Time
	interval time.Duration
}

// NewProgress returns a reporter that writes progress lines for a campaign
// of total runs to w (nil w counts runs but prints nothing). Lines are
// rate-limited to one per second.
func NewProgress(w io.Writer, label string, total int) *Progress {
	//lint:ignore no-wallclock opt-in progress reporter; excluded from deterministic outputs
	now := time.Now()
	return &Progress{w: w, label: label, total: int64(total), start: now, interval: time.Second}
}

// RunDone records one completed run and, at most once per interval, prints
// a progress line with the current rate and ETA. The run index is ignored —
// completion order is scheduling-dependent, so only the count matters. The
// signature matches campaign.Options.OnRunDone.
func (p *Progress) RunDone(int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.w == nil {
		return
	}
	//lint:ignore no-wallclock opt-in progress reporter; excluded from deterministic outputs
	now := time.Now()
	if now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	fmt.Fprintf(p.w, "%s\n", p.line(now))
}

// Done returns the number of completed runs; zero on a nil Progress.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// Finish prints a final summary line with the total elapsed time and rate.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil {
		return
	}
	//lint:ignore no-wallclock opt-in progress reporter; excluded from deterministic outputs
	now := time.Now()
	fmt.Fprintf(p.w, "%s done\n", p.line(now))
}

// line renders one progress line; callers hold p.mu.
func (p *Progress) line(now time.Time) string {
	elapsed := now.Sub(p.start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed.Seconds()
	}
	s := fmt.Sprintf("%s: %d", p.label, p.done)
	if p.total > 0 {
		s = fmt.Sprintf("%s/%d runs", s, p.total)
	} else {
		s += " runs"
	}
	s = fmt.Sprintf("%s (%.1f runs/s", s, rate)
	if p.total > p.done && p.done > 0 {
		eta := time.Duration(float64(elapsed) * float64(p.total-p.done) / float64(p.done))
		s = fmt.Sprintf("%s, ETA %s", s, eta.Round(time.Second))
	}
	return s + ")"
}

// String renders the current state as a JSON object, implementing
// expvar.Var.
func (p *Progress) String() string {
	if p == nil {
		return "{}"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf(`{"label":%q,"done":%d,"total":%d}`, p.label, p.done, p.total)
}

var _ expvar.Var = (*Progress)(nil)

// PublishExpvar publishes the reporter under the given expvar name so HTTP
// scrapers can watch /debug/vars. Re-publishing an existing name is a no-op
// (expvar.Publish would panic), so repeated CLI invocations in one process
// — e.g. tests — stay safe.
func (p *Progress) PublishExpvar(name string) {
	if p == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, p)
}

// StartDebugServer binds addr and serves the default HTTP mux — which
// includes expvar's /debug/vars and net/http/pprof's /debug/pprof/...
// profiling handlers (see pprof.go) — in a background goroutine. The bind
// happens synchronously so configuration errors surface immediately; serve
// errors after a successful bind are dropped (the endpoint is best-effort
// observability, not part of any result).
func StartDebugServer(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug server: %w", err)
	}
	publishDebugStart()
	go func() {
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr(), nil
}
