package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// HistogramSnapshot is the exported state of one Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds of the buckets.
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []int64 `json:"counts"`
	// Count and Sum summarise all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// SeriesSnapshot is the exported state of one Series.
type SeriesSnapshot struct {
	// Rounds and Values are parallel: point i is (Rounds[i], Values[i]).
	Rounds []int64 `json:"rounds"`
	Values []int64 `json:"values"`
	// Dropped counts points discarded because the series was full.
	Dropped int64 `json:"dropped,omitempty"`
}

// Snapshot is a point-in-time copy of a Registry's instruments, keyed by
// instrument name. Snapshots marshal deterministically: encoding/json sorts
// map keys, and every value is an int64, so equal snapshots produce equal
// bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// Snapshot copies the registry's current instrument state. A nil Registry
// yields an empty Snapshot. The copy shares no memory with the registry, so
// it stays valid while the instruments keep updating.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counterNames) > 0 {
		s.Counters = make(map[string]int64, len(r.counterNames))
		for _, name := range r.counterNames {
			s.Counters[name] = r.counters[name].Value()
		}
	}
	if len(r.gaugeNames) > 0 {
		s.Gauges = make(map[string]int64, len(r.gaugeNames))
		for _, name := range r.gaugeNames {
			s.Gauges[name] = r.gauges[name].Value()
		}
	}
	if len(r.histogramNames) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histogramNames))
		for _, name := range r.histogramNames {
			h := r.histograms[name]
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
				Count:  h.count,
				Sum:    h.sum,
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.seriesNames) > 0 {
		s.Series = make(map[string]SeriesSnapshot, len(r.seriesNames))
		for _, name := range r.seriesNames {
			sr := r.series[name]
			s.Series[name] = SeriesSnapshot{
				Rounds:  append([]int64(nil), sr.rounds...),
				Values:  append([]int64(nil), sr.values...),
				Dropped: sr.dropped,
			}
		}
	}
	return s
}

// sortedKeys returns the map's keys in ascending order. Collecting keys is
// the one sanctioned use of a map range in this package: the iteration
// order does not escape because the sort immediately canonicalises it.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//lint:ignore no-map-range-state key collection precedes the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge folds src into dst and returns the result. The fold is commutative
// and associative — counters add, gauges take the maximum, histogram
// buckets add pairwise, series union by name — so folding per-worker
// snapshots yields the same result for every partition of runs across
// workers.
//
// Two error cases are partition-INdependent and therefore safe to report:
// histograms with the same name but different bounds (an instrumentation
// bug), and two series with the same name (series names must be unique
// across the campaign, e.g. prefixed by experiment class, because point
// order within a series is execution order and cannot be merged
// deterministically).
func Merge(dst, src Snapshot) (Snapshot, error) {
	for _, name := range sortedKeys(src.Counters) {
		if dst.Counters == nil {
			dst.Counters = map[string]int64{}
		}
		dst.Counters[name] += src.Counters[name]
	}
	for _, name := range sortedKeys(src.Gauges) {
		if dst.Gauges == nil {
			dst.Gauges = map[string]int64{}
		}
		if v := src.Gauges[name]; v > dst.Gauges[name] {
			dst.Gauges[name] = v
		}
	}
	for _, name := range sortedKeys(src.Histograms) {
		if dst.Histograms == nil {
			dst.Histograms = map[string]HistogramSnapshot{}
		}
		sh := src.Histograms[name]
		dh, ok := dst.Histograms[name]
		if !ok {
			dst.Histograms[name] = HistogramSnapshot{
				Bounds: append([]int64(nil), sh.Bounds...),
				Counts: append([]int64(nil), sh.Counts...),
				Count:  sh.Count,
				Sum:    sh.Sum,
			}
			continue
		}
		if !equalBounds(dh.Bounds, sh.Bounds) {
			return Snapshot{}, fmt.Errorf("metrics: histogram %q: mismatched bounds %v vs %v", name, dh.Bounds, sh.Bounds)
		}
		for i := range sh.Counts {
			dh.Counts[i] += sh.Counts[i]
		}
		dh.Count += sh.Count
		dh.Sum += sh.Sum
		dst.Histograms[name] = dh
	}
	for _, name := range sortedKeys(src.Series) {
		if dst.Series == nil {
			dst.Series = map[string]SeriesSnapshot{}
		}
		if _, ok := dst.Series[name]; ok {
			return Snapshot{}, fmt.Errorf("metrics: series %q recorded by more than one registry", name)
		}
		ss := src.Series[name]
		dst.Series[name] = SeriesSnapshot{
			Rounds:  append([]int64(nil), ss.Rounds...),
			Values:  append([]int64(nil), ss.Values...),
			Dropped: ss.Dropped,
		}
	}
	return dst, nil
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WorkerSet owns the per-worker registries of one campaign. Worker must be
// called serially (the campaign engine constructs worker state before any
// run starts, which satisfies this); the registries it returns are then
// free to update concurrently with each other, one goroutine each.
//
// A nil WorkerSet is the metrics-off mode: Worker returns a nil Registry,
// whose instruments are all no-ops.
type WorkerSet struct {
	registries []*Registry
}

// NewWorkerSet returns an empty WorkerSet.
func NewWorkerSet() *WorkerSet { return &WorkerSet{} }

// Worker appends and returns a fresh per-worker Registry; nil when the set
// itself is nil.
func (ws *WorkerSet) Worker() *Registry {
	if ws == nil {
		return nil
	}
	r := New()
	ws.registries = append(ws.registries, r)
	return r
}

// Merged folds every worker registry's snapshot into one aggregate. The
// result is bit-identical at any worker count because each run updates
// exactly one registry and the fold is commutative and associative.
func (ws *WorkerSet) Merged() (Snapshot, error) {
	var out Snapshot
	if ws == nil {
		return out, nil
	}
	for _, r := range ws.registries {
		var err error
		out, err = Merge(out, r.Snapshot())
		if err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}

// ReportVersion is the schema version written into every Report.
const ReportVersion = 1

// Report is the machine-readable run report a -metrics flag emits: one
// merged Snapshot per experiment, plus enough header fields to reproduce
// the run. Everything in a Report is deterministic — the progress
// reporter's wall-clock observations never enter it.
type Report struct {
	// Version is the report schema version (ReportVersion).
	Version int `json:"version"`
	// Tool names the producing command (e.g. "ttdiag-experiments").
	Tool string `json:"tool"`
	// Seed and Runs reproduce the campaign.
	Seed int64 `json:"seed"`
	Runs int   `json:"runs"`
	// Experiments maps experiment ID to its merged snapshot.
	Experiments map[string]Snapshot `json:"experiments"`
	// TraceDropped counts causal events a bounded trace sink evicted during
	// the run (trace.DropCounter); zero — and omitted — when no sink was
	// attached or nothing was lost. A non-zero count means the JSONL trace
	// is incomplete and any explain/bisect chain built from it may have
	// holes.
	TraceDropped int64 `json:"trace_dropped,omitempty"`
}

// NewReport returns an empty report with the current schema version.
func NewReport(tool string, seed int64, runs int) *Report {
	return &Report{
		Version:     ReportVersion,
		Tool:        tool,
		Seed:        seed,
		Runs:        runs,
		Experiments: map[string]Snapshot{},
	}
}

// Set files the snapshot under the experiment ID. Calling Set on a nil
// Report is a no-op, so instrumented code can run metrics-off unchanged.
func (r *Report) Set(id string, s Snapshot) {
	if r == nil {
		return
	}
	if r.Experiments == nil {
		r.Experiments = map[string]Snapshot{}
	}
	r.Experiments[id] = s
}

// SetTraceDropped records the trace sink's eviction count. Calling it on a
// nil Report is a no-op, mirroring Set, so callers can surface drops
// without checking whether a metrics report was requested.
func (r *Report) SetTraceDropped(n int64) {
	if r == nil {
		return
	}
	r.TraceDropped = n
}

// Snapshot returns the snapshot filed under the experiment ID (zero value
// if absent or on a nil Report).
func (r *Report) Snapshot(id string) Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.Experiments[id]
}

// WriteJSON writes the report as indented JSON. The output is byte-
// deterministic: encoding/json sorts map keys and every leaf is an int64.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
