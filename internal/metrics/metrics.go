// Package metrics is the deterministic telemetry layer of the repository:
// typed counters, high-watermark gauges, fixed-bucket histograms and
// round-keyed series that the protocol and simulation stack update on the
// hot path without allocating and without ever reading the host clock.
//
// Determinism contract. Every instrument value is an int64 derived from
// simulated quantities (rounds, counts) — never wall-clock time, so the
// determinism lint applies to this package like it does to internal/core.
// A Registry is deliberately NOT safe for concurrent use: the parallel
// campaign engine gives every worker its own Registry (see WorkerSet) and
// merges the per-worker snapshots only after the workers have joined. All
// merge operations are commutative and associative (counters add, gauges
// take the maximum, histogram buckets add), so the merged Snapshot is
// bit-identical at any worker count and under any scheduling.
//
// Nop behaviour. The nil values of Registry and of every instrument are
// fully functional no-ops: a nil *Registry returns nil instruments, and
// every method on a nil instrument does nothing and returns zero. Code can
// therefore thread instrument pointers unconditionally; benchmarks and
// metrics-off runs pay a single nil check and zero allocations.
//
// The one deliberate exception to the no-wall-clock rule is the opt-in
// progress reporter (progress.go), which exists to tell a human how fast a
// campaign is going; it is lint-exempt via explicit directives and its
// output is never part of a deterministic snapshot or report.
package metrics

// Counter is a monotonically increasing int64 instrument. Counters merge by
// addition, which makes campaign aggregates independent of how runs were
// partitioned across workers.
type Counter struct {
	v int64
}

// Add increments the counter by delta. Calling Add on a nil Counter is a
// no-op.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Inc increments the counter by one. Calling Inc on a nil Counter is a
// no-op.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a high-watermark instrument: Observe keeps the maximum of every
// observed value. Maximum — not last-write — is the gauge semantics here
// because max is commutative and associative, so merged campaign gauges do
// not depend on run execution order. Values are expected to be
// non-negative; the zero value (nothing observed) reports 0.
type Gauge struct {
	v int64
}

// Observe raises the gauge to v if v exceeds the current watermark. Calling
// Observe on a nil Gauge is a no-op.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value returns the high watermark; zero on a nil Gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket int64 histogram. An observation v falls into
// the first bucket whose upper bound satisfies v <= bound; values above the
// last bound land in the implicit overflow bucket, so len(counts) ==
// len(bounds)+1. Bounds are fixed at creation (simulated rounds or counts,
// chosen by the instrumenting code) and merging requires identical bounds.
type Histogram struct {
	bounds []int64
	counts []int64
	count  int64
	sum    int64
}

// Observe records one value. Calling Observe on a nil Histogram is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.counts) { // zero-value Histogram (no buckets) still tallies count/sum
		h.counts[i]++
	}
	h.count++
	h.sum += v
}

// Count returns the total number of observations; zero on a nil Histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values; zero on a nil Histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Series is a bounded, preallocated sequence of (round, value) points —
// e.g. one node's penalty-counter trajectory. Appends past the fixed
// capacity are counted in Dropped instead of growing the backing arrays, so
// a Series never allocates after creation and a runaway run cannot blow up
// memory. Because points carry their own round keys, a merged report stays
// interpretable even if a series was truncated.
type Series struct {
	rounds  []int64
	values  []int64
	dropped int64
}

// Append records one (round, value) point, or counts it as dropped once the
// capacity is exhausted. Calling Append on a nil Series is a no-op.
func (s *Series) Append(round, value int64) {
	if s == nil {
		return
	}
	if len(s.rounds) == cap(s.rounds) {
		s.dropped++
		return
	}
	s.rounds = append(s.rounds, round)
	s.values = append(s.values, value)
}

// Len returns the number of recorded points; zero on a nil Series.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rounds)
}

// Dropped returns the number of points discarded because the series was
// full; zero on a nil Series.
func (s *Series) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Registry holds the instruments of one execution context. It is create-or-
// get keyed by name: asking twice for the same name returns the same
// instrument, so independent subsystems can share counters by convention.
//
// A Registry is NOT safe for concurrent use. One registry must only ever be
// updated from one goroutine at a time; concurrent runtimes (the campaign
// worker pool, the goroutine-per-node cluster) give each goroutine its own
// registry and merge snapshots afterwards.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series

	// Creation-ordered name lists so snapshots never iterate a map.
	counterNames   []string
	gaugeNames     []string
	histogramNames []string
	seriesNames    []string
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		series:     map[string]*Series{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. A nil Registry returns a nil (no-op) Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.counterNames = append(r.counterNames, name)
	return c
}

// Gauge returns the gauge with the given name, creating it on first use. A
// nil Registry returns a nil (no-op) Gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.gaugeNames = append(r.gaugeNames, name)
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given strictly increasing upper bounds on first use. Subsequent calls
// return the existing instrument regardless of the bounds passed — the
// first creation fixes the bucket layout. A nil Registry returns a nil
// (no-op) Histogram.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histograms[name]; ok {
		return h
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
	r.histograms[name] = h
	r.histogramNames = append(r.histogramNames, name)
	return h
}

// Series returns the series with the given name, creating it with the given
// fixed point capacity on first use. A nil Registry returns a nil (no-op)
// Series.
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	if s, ok := r.series[name]; ok {
		return s
	}
	if capacity < 0 {
		capacity = 0
	}
	s := &Series{rounds: make([]int64, 0, capacity), values: make([]int64, 0, capacity)}
	r.series[name] = s
	r.seriesNames = append(r.seriesNames, name)
	return s
}
