package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilInstrumentsAreNops pins the Nop contract: a nil Registry hands out
// nil instruments and every method on them is a safe no-op.
func TestNilInstrumentsAreNops(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 2)
	s := r.Series("s", 4)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatalf("nil registry must return nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Observe(7)
	h.Observe(1)
	s.Append(1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || s.Len() != 0 || s.Dropped() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil || snap.Series != nil {
		t.Fatalf("nil registry snapshot must be empty, got %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("votes")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("votes") != c {
		t.Fatalf("Counter must be create-or-get")
	}
	g := r.Gauge("penalty_max")
	g.Observe(5)
	g.Observe(3) // lower observation must not move the watermark
	g.Observe(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", 4, 8, 16)
	for _, v := range []int64{0, 4, 5, 8, 17, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 0, 2} // <=4: {0,4}; <=8: {5,8}; <=16: none; overflow: {17,100}
	if len(snap.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(snap.Counts), len(want))
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != 6 || snap.Sum != 134 {
		t.Fatalf("count/sum = %d/%d, want 6/134", snap.Count, snap.Sum)
	}
}

func TestZeroValueHistogramTalliesWithoutBuckets(t *testing.T) {
	var h Histogram
	h.Observe(3)
	if h.Count() != 1 || h.Sum() != 3 {
		t.Fatalf("zero-value histogram count/sum = %d/%d, want 1/3", h.Count(), h.Sum())
	}
}

func TestSeriesCapacityAndDrops(t *testing.T) {
	r := New()
	s := r.Series("pen", 2)
	s.Append(1, 10)
	s.Append(2, 20)
	s.Append(3, 30) // over capacity: dropped, not grown
	if s.Len() != 2 || s.Dropped() != 1 {
		t.Fatalf("len/dropped = %d/%d, want 2/1", s.Len(), s.Dropped())
	}
	snap := r.Snapshot().Series["pen"]
	if len(snap.Rounds) != 2 || snap.Rounds[1] != 2 || snap.Values[1] != 20 || snap.Dropped != 1 {
		t.Fatalf("series snapshot = %+v", snap)
	}
}

// TestSnapshotIsACopy pins the no-retain contract: snapshots must not alias
// live instrument state.
func TestSnapshotIsACopy(t *testing.T) {
	r := New()
	c := r.Counter("c")
	s := r.Series("s", 4)
	c.Add(1)
	s.Append(1, 1)
	snap := r.Snapshot()
	c.Add(10)
	s.Append(2, 2)
	if snap.Counters["c"] != 1 || len(snap.Series["s"].Rounds) != 1 {
		t.Fatalf("snapshot mutated by later instrument updates: %+v", snap)
	}
}

// TestMergeCommutativeAssociative checks the fold laws the worker-count
// invariance rests on, on a sample with every instrument kind (series live
// in exactly one operand, as the uniqueness rule requires).
func TestMergeCommutativeAssociative(t *testing.T) {
	mk := func(c, g int64, bucket int64) Snapshot {
		r := New()
		r.Counter("c").Add(c)
		r.Gauge("g").Observe(g)
		r.Histogram("h", 4, 8).Observe(bucket)
		return r.Snapshot()
	}
	a, b, c := mk(1, 5, 2), mk(10, 3, 6), mk(100, 8, 50)
	mustMerge := func(x, y Snapshot) Snapshot {
		t.Helper()
		out, err := Merge(x, y)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		return out
	}
	ab := mustMerge(mustMerge(Snapshot{}, a), b)
	ba := mustMerge(mustMerge(Snapshot{}, b), a)
	if !sameJSON(t, ab, ba) {
		t.Fatalf("merge not commutative: %v vs %v", ab, ba)
	}
	abc1 := mustMerge(ab, c)
	abc2 := mustMerge(mustMerge(mustMerge(Snapshot{}, c), b), a)
	if !sameJSON(t, abc1, abc2) {
		t.Fatalf("merge not associative/commutative: %v vs %v", abc1, abc2)
	}
	if abc1.Counters["c"] != 111 || abc1.Gauges["g"] != 8 {
		t.Fatalf("merged values wrong: %+v", abc1)
	}
	h := abc1.Histograms["h"]
	if h.Count != 3 || h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	a, b := New(), New()
	a.Histogram("h", 1, 2).Observe(1)
	b.Histogram("h", 1, 3).Observe(1)
	if _, err := Merge(a.Snapshot(), b.Snapshot()); err == nil {
		t.Fatalf("want bounds-mismatch error")
	}
}

func TestMergeRejectsDuplicateSeries(t *testing.T) {
	a, b := New(), New()
	a.Series("s", 2).Append(1, 1)
	b.Series("s", 2).Append(1, 1)
	if _, err := Merge(a.Snapshot(), b.Snapshot()); err == nil {
		t.Fatalf("want duplicate-series error")
	}
}

// TestWorkerSetPartitionInvariance simulates the same 12 runs partitioned
// across 1, 3 and 12 workers; the merged snapshots must be byte-identical.
func TestWorkerSetPartitionInvariance(t *testing.T) {
	simulate := func(workers int) Snapshot {
		ws := NewWorkerSet()
		regs := make([]*Registry, workers)
		for w := range regs {
			regs[w] = ws.Worker()
		}
		for run := 0; run < 12; run++ {
			r := regs[run%workers] // any partition works; modulo is one of them
			r.Counter("steps").Add(int64(10 + run))
			r.Gauge("max").Observe(int64(run * 7 % 11))
			r.Histogram("lat", 4, 8).Observe(int64(run))
			if run == 0 {
				s := r.Series("run0/pen", 8)
				s.Append(1, 3)
				s.Append(2, 6)
			}
		}
		snap, err := ws.Merged()
		if err != nil {
			t.Fatalf("merge (%d workers): %v", workers, err)
		}
		return snap
	}
	ref := simulate(1)
	for _, workers := range []int{3, 12} {
		if got := simulate(workers); !sameJSON(t, ref, got) {
			t.Fatalf("snapshot differs at %d workers", workers)
		}
	}
	if ref.Counters["steps"] != 12*10+66 {
		t.Fatalf("steps = %d", ref.Counters["steps"])
	}
}

func TestNilWorkerSetIsMetricsOff(t *testing.T) {
	var ws *WorkerSet
	if ws.Worker() != nil {
		t.Fatalf("nil WorkerSet must hand out nil registries")
	}
	snap, err := ws.Merged()
	if err != nil || snap.Counters != nil {
		t.Fatalf("nil WorkerSet merge = %+v, %v", snap, err)
	}
}

func TestReportJSONDeterministic(t *testing.T) {
	build := func() *Report {
		rep := NewReport("ttdiag-test", 7, 100)
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Observe(3)
		rep.Set("exp-two", r.Snapshot())
		rep.Set("exp-one", r.Snapshot())
		return rep
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteJSON(&buf1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := build().WriteJSON(&buf2); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("report JSON not byte-deterministic:\n%s\nvs\n%s", buf1.Bytes(), buf2.Bytes())
	}
	var decoded Report
	if err := json.Unmarshal(buf1.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.Version != ReportVersion || decoded.Tool != "ttdiag-test" || decoded.Seed != 7 {
		t.Fatalf("decoded header = %+v", decoded)
	}
	if decoded.Experiments["exp-one"].Counters["a"] != 1 {
		t.Fatalf("decoded snapshot = %+v", decoded.Experiments)
	}
	var nilRep *Report
	nilRep.Set("x", Snapshot{}) // must not panic
	if s := nilRep.Snapshot("x"); s.Counters != nil {
		t.Fatalf("nil report snapshot = %+v", s)
	}
}

func TestProgressReporter(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sec8-bursts", 4)
	p.interval = 0 // print on every run for the test
	for run := 0; run < 4; run++ {
		p.RunDone(run)
	}
	p.Finish()
	if p.Done() != 4 {
		t.Fatalf("done = %d, want 4", p.Done())
	}
	out := buf.String()
	if !strings.Contains(out, "sec8-bursts") || !strings.Contains(out, "4/4 runs") || !strings.Contains(out, "done") {
		t.Fatalf("progress output missing pieces:\n%s", out)
	}
	if !strings.Contains(p.String(), `"done":4`) {
		t.Fatalf("expvar string = %s", p.String())
	}

	var nilP *Progress
	nilP.RunDone(0)
	nilP.Finish()
	nilP.PublishExpvar("ttdiag-nil")
	if nilP.Done() != 0 || nilP.String() != "{}" {
		t.Fatalf("nil progress misbehaves")
	}

	// Publishing twice under one name must not panic (expvar.Publish would).
	p.PublishExpvar("ttdiag-test-progress")
	p.PublishExpvar("ttdiag-test-progress")
}

// sameJSON compares snapshots by their canonical JSON bytes — the same
// equality the determinism CI check uses.
func sameJSON(t *testing.T, a, b Snapshot) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return bytes.Equal(ja, jb)
}
