package metrics

import "testing"

// BenchmarkMetricsCounterAdd is the per-update cost a hot loop pays with
// metrics on.
func BenchmarkMetricsCounterAdd(b *testing.B) {
	c := New().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkMetricsCounterAddNop is the metrics-off cost: the nil check only.
func BenchmarkMetricsCounterAddNop(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkMetricsHistogramObserve(b *testing.B) {
	h := New().Histogram("h", 4, 8, 16, 32, 64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 255))
	}
}

func BenchmarkMetricsSeriesAppend(b *testing.B) {
	s := New().Series("s", 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(int64(i), int64(i))
	}
}

func BenchmarkMetricsSnapshot(b *testing.B) {
	r := New()
	for i := 0; i < 16; i++ {
		r.Counter(string(rune('a' + i))).Add(int64(i))
	}
	r.Histogram("h", 4, 8, 16).Observe(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
