package tuning

import (
	"math"
	"testing"
	"time"

	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

func TestCorrelationProbabilityAnalytic(t *testing.T) {
	// R = 10^6 at T = 2.5 ms gives a 2500 s (~42 min) correlation window.
	window := time.Duration(PaperRewardThreshold) * sim.DefaultRoundLen
	if window != 2500*time.Second {
		t.Fatalf("window = %v, want 2500s", window)
	}
	// Sec. 9: "after detecting a transient fault, the resulting probability
	// of correlating a second transient fault is less than 1%" — for an
	// external transient rate of about one fault per 70 hours.
	rate := 1.0 / (70 * 3600)
	p := CorrelationProbability(rate, PaperRewardThreshold, sim.DefaultRoundLen)
	if p >= 0.01 {
		t.Fatalf("correlation probability %v, want < 1%%", p)
	}
	if p <= 0.005 {
		t.Fatalf("correlation probability %v implausibly small for the chosen rate", p)
	}
}

func TestCorrelationProbabilityProperties(t *testing.T) {
	if got := CorrelationProbability(0, 1000, sim.DefaultRoundLen); got != 0 {
		t.Errorf("zero rate gives %v", got)
	}
	if got := CorrelationProbability(1, 0, sim.DefaultRoundLen); got != 0 {
		t.Errorf("zero R gives %v", got)
	}
	// Monotone in R.
	prev := -1.0
	for _, r := range []int64{1e3, 1e4, 1e5, 1e6, 1e7} {
		p := CorrelationProbability(1e-4, r, sim.DefaultRoundLen)
		if p <= prev {
			t.Fatalf("probability not increasing at R=%d: %v <= %v", r, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		prev = p
	}
}

func TestCorrelationMonteCarloMatchesAnalytic(t *testing.T) {
	stream := rng.NewStream(42)
	for _, rate := range []float64{1e-3, 1e-4} {
		want := CorrelationProbability(rate, PaperRewardThreshold, sim.DefaultRoundLen)
		got := CorrelationMonteCarlo(stream, rate, PaperRewardThreshold, sim.DefaultRoundLen, 200000)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rate %v: MC %v vs analytic %v", rate, got, want)
		}
	}
	if got := CorrelationMonteCarlo(stream, 1, 1, sim.DefaultRoundLen, 0); got != 0 {
		t.Fatalf("zero samples gives %v", got)
	}
}

func TestFig3Sweep(t *testing.T) {
	rs := []int64{1e4, 1e5, 1e6}
	rates := []float64{1e-3, 1e-5}
	pts := Fig3Sweep(rs, rates, sim.DefaultRoundLen)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.R != rs[i] || len(p.Prob) != 2 {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
		if p.Window != time.Duration(p.R)*sim.DefaultRoundLen {
			t.Fatalf("point %d window %v", i, p.Window)
		}
		// Higher rate correlates more.
		if p.Prob[0] <= p.Prob[1] {
			t.Fatalf("point %d: rate ordering violated: %v", i, p.Prob)
		}
	}
}

// TestDeriveAutomotive reproduces the automotive row of Table 2 exactly:
// P = 197 and criticality levels 40 / 6 / 1 for SC / SR / NSR.
func TestDeriveAutomotive(t *testing.T) {
	res, err := Derive(Automotive())
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 197 {
		t.Fatalf("P = %d, want 197", res.P)
	}
	want := map[string]int64{"SC": 40, "SR": 6, "NSR": 1}
	wantPenalty := map[string]int64{"SC": 5, "SR": 37, "NSR": 197}
	for _, ct := range res.PerClass {
		if ct.Criticality != want[ct.Class.Name] {
			t.Errorf("class %s: criticality %d, want %d", ct.Class.Name, ct.Criticality, want[ct.Class.Name])
		}
		if ct.Penalty != wantPenalty[ct.Class.Name] {
			t.Errorf("class %s: penalty at deadline %d, want %d", ct.Class.Name, ct.Penalty, wantPenalty[ct.Class.Name])
		}
	}
	if res.R != PaperRewardThreshold {
		t.Errorf("R = %d", res.R)
	}
}

// TestDeriveAerospace reproduces the aerospace row of Table 2: P = 17,
// criticality 1.
func TestDeriveAerospace(t *testing.T) {
	res, err := Derive(Aerospace())
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 17 {
		t.Fatalf("P = %d, want 17", res.P)
	}
	if len(res.PerClass) != 1 || res.PerClass[0].Criticality != 1 {
		t.Fatalf("per-class = %+v", res.PerClass)
	}
}

func TestResultPRConfig(t *testing.T) {
	res, err := Derive(Automotive())
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.PRConfig(4)
	if cfg.PenaltyThreshold != 197 || cfg.RewardThreshold != PaperRewardThreshold {
		t.Fatalf("thresholds: %+v", cfg)
	}
	wantCrit := []int64{0, 40, 6, 1, 1}
	for j := 1; j <= 4; j++ {
		if cfg.Criticalities[j] != wantCrit[j] {
			t.Fatalf("criticalities = %v, want %v", cfg.Criticalities, wantCrit)
		}
	}
	if err := cfg.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveRejectsTooTightOutage(t *testing.T) {
	spec := DomainSpec{
		Name:     "degenerate",
		Classes:  []Class{{Name: "X", Outage: 5 * time.Millisecond}}, // 2 rounds < latency
		RoundLen: sim.DefaultRoundLen,
		R:        10,
	}
	if _, err := Derive(spec); err == nil {
		t.Fatal("outage shorter than the diagnostic latency accepted")
	}
}

// TestDeriveAutomotiveUpperBound is the sensitivity companion of Table 2:
// tuning against the upper outage bounds scales every p_i by the budget and
// re-derives the criticality levels consistently.
func TestDeriveAutomotiveUpperBound(t *testing.T) {
	res, err := Derive(AutomotiveUpperBound())
	if err != nil {
		t.Fatal(err)
	}
	// p_i = outage/T - 3: 17 / 77 / 397; P = 397; s = ceil(397/p).
	if res.P != 397 {
		t.Fatalf("P = %d, want 397", res.P)
	}
	want := map[string]int64{"SC": 24, "SR": 6, "NSR": 1}
	for _, ct := range res.PerClass {
		if ct.Criticality != want[ct.Class.Name] {
			t.Errorf("class %s: s = %d, want %d", ct.Class.Name, ct.Criticality, want[ct.Class.Name])
		}
	}
}
