package tuning

import (
	"testing"
	"time"

	"ttdiag/internal/fault"
)

// TestBlinkingLightAlignedPhase reproduces the automotive row of Table 4
// with round-aligned bursts (the analytically predictable case):
//
//	SC  (s=40): 5th faulty round is the 1st round of the 2nd burst
//	            -> decision at round 207 -> 517.5 ms   (paper: 0.518 s)
//	SR  (s=6):  33rd faulty round opens the 9th burst
//	            -> decision at round 1635 -> 4.0875 s  (paper: 4.595 s)
//	NSR (s=1):  198th faulty round is in the 50th burst
//	            -> decision at round 10000 -> 25.0 s   (paper: 24.475 s)
func TestBlinkingLightAlignedPhase(t *testing.T) {
	res, err := Derive(Automotive())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TimeToIncorrectIsolation(fault.BlinkingLight(), res, 1, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]time.Duration{
		"SC":  517500 * time.Microsecond,
		"SR":  4087500 * time.Microsecond,
		"NSR": 25 * time.Second,
	}
	for _, row := range rows {
		if row.IsolatedRuns != 1 {
			t.Fatalf("class %s: isolated in %d/%d runs", row.Class, row.IsolatedRuns, row.Runs)
		}
		if row.Mean != want[row.Class] {
			t.Errorf("class %s: time to isolation %v, want %v", row.Class, row.Mean, want[row.Class])
		}
	}
}

// TestLightningBoltAlignedPhase reproduces the aerospace row of Table 4:
// P=17, s=1; the 18th faulty round is the 2nd round of the 2nd burst,
// decided at round 84 -> 210 ms (paper: 0.205 s).
func TestLightningBoltAlignedPhase(t *testing.T) {
	res, err := Derive(Aerospace())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TimeToIncorrectIsolation(fault.LightningBolt(), res, 1, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].IsolatedRuns != 1 {
		t.Fatalf("no isolation recorded")
	}
	if want := 210 * time.Millisecond; rows[0].Mean != want {
		t.Errorf("time to isolation %v, want %v", rows[0].Mean, want)
	}
}

// TestRandomPhaseShiftsWithinOneBurstPeriod: with random phases the SC
// isolation time is bimodal. A burst that straddles a round boundary
// corrupts 5 rounds instead of 4, so 5×40 = 200 > 197 already within the
// first burst (isolation ~17.5 ms); an aligned burst needs the first round
// of the second burst (~520 ms). Both modes must stay inside those bounds —
// the same phase artifact the physical injector of the paper exhibits.
func TestRandomPhaseShiftsWithinOneBurstPeriod(t *testing.T) {
	res, err := Derive(Automotive())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TimeToIncorrectIsolationSC(t, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Class != "SC" {
			continue
		}
		if row.IsolatedRuns != row.Runs {
			t.Fatalf("SC isolated in %d/%d runs", row.IsolatedRuns, row.Runs)
		}
		lo := 15 * time.Millisecond
		hi := 600 * time.Millisecond
		if row.Min < lo || row.Max > hi {
			t.Fatalf("SC isolation window [%v, %v] outside [%v, %v]", row.Min, row.Max, lo, hi)
		}
	}
}

// TimeToIncorrectIsolationSC is a small helper to keep the random-phase test
// fast: it truncates the blinking-light scenario to its first three bursts,
// which is enough to isolate the SC node.
func TimeToIncorrectIsolationSC(t *testing.T, res Result) ([]ClassIsolation, error) {
	t.Helper()
	short := fault.Scenario{
		Name: "blinking light (truncated)",
		Phases: []fault.ScenarioPhase{
			{Burst: 10 * time.Millisecond, Reappearance: 500 * time.Millisecond, Count: 3},
		},
	}
	return TimeToIncorrectIsolation(short, res, 5, 1, 11, true)
}

func TestTimeToIncorrectIsolationValidation(t *testing.T) {
	res, err := Derive(Aerospace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TimeToIncorrectIsolation(fault.LightningBolt(), res, 0, 1, 1, false); err == nil {
		t.Fatal("zero runs accepted")
	}
}

// TestComparePolicies reproduces the Sec. 9 availability argument on the
// lightning-bolt scenario: immediate isolation takes the whole system down
// within the first burst, the tuned p/r delays isolation by orders of
// magnitude, and a gently tuned α-count filter rides the scenario out.
func TestComparePolicies(t *testing.T) {
	res, err := Derive(Aerospace())
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ComparePolicies(fault.LightningBolt(), res, 0.95, 200)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyOutcome{}
	for _, o := range outs {
		byName[o.Policy] = o
	}
	imm := byName["immediate isolation"]
	pr := byName["penalty/reward (tuned)"]
	alpha := byName["alpha-count"]

	if !imm.SystemDown {
		t.Fatalf("immediate isolation did not take the system down: %+v", imm)
	}
	if imm.FirstIsolation >= 20*time.Millisecond {
		t.Fatalf("immediate isolation first fired at %v", imm.FirstIsolation)
	}
	if pr.FirstIsolation <= imm.FirstIsolation {
		t.Fatalf("tuned p/r (%v) did not outlast immediate isolation (%v)",
			pr.FirstIsolation, imm.FirstIsolation)
	}
	if alpha.NodesIsolated != 0 {
		t.Fatalf("alpha-count isolated %d nodes with a forgiving threshold", alpha.NodesIsolated)
	}
}
