package tuning

import (
	"fmt"
	"time"

	"ttdiag/internal/baseline"
	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/stats"
)

// adverseLs is the unconstrained prototype schedule used for the adverse
// scenario evaluation (same as the tuning runs).
var adverseLs = []int{2, 0, 3, 1}

// ClassIsolation aggregates the time to (incorrect) isolation of the node
// hosting one criticality class over a Monte-Carlo batch (Table 4).
type ClassIsolation struct {
	// Class and Criticality identify the row.
	Class       string
	Criticality int64
	// Runs is the number of experiments, IsolatedRuns how many ended in an
	// isolation within the horizon.
	Runs, IsolatedRuns int
	// Times holds the raw isolation times of the isolated runs.
	Times []time.Duration
	// Summary provides order statistics over Times.
	Summary stats.DurationSummary
	// Mean, Min and Max of the time to isolation over the isolated runs
	// (redundant with Summary, kept for ergonomic access).
	Mean, Min, Max time.Duration
}

// record folds one measured isolation time into the aggregate.
func (c *ClassIsolation) record(t time.Duration) {
	c.IsolatedRuns++
	c.Times = append(c.Times, t)
}

func (c *ClassIsolation) finalise() {
	c.Summary = stats.SummarizeDurations(c.Times)
	c.Mean, c.Min, c.Max = c.Summary.Mean, c.Summary.Min, c.Summary.Max
}

// TimeToIncorrectIsolation reproduces the Table 4 experiment: the abnormal
// transient scenario is injected against a healthy cluster running the
// tuned p/r configuration, and the time until each criticality class's node
// is (incorrectly) isolated is measured. One node hosts each class, in the
// order of the tuning result. When randomPhase is set, each run shifts the
// scenario by a random offset within one round (the physical injector's
// phase uncertainty); otherwise the bursts are aligned to round starts.
//
// The repetitions fan out over a campaign worker pool (workers <= 0 selects
// GOMAXPROCS, 1 is serial); each run draws its phase from its own named
// stream, so the aggregate is identical at any worker count.
func TimeToIncorrectIsolation(scen fault.Scenario, res Result, runs, workers int, seed int64, randomPhase bool) ([]ClassIsolation, error) {
	if runs < 1 {
		return nil, fmt.Errorf("tuning: need at least 1 run, got %d", runs)
	}
	const n = 4
	prCfg := res.PRConfig(n)
	src := rng.NewSource(seed)

	out := make([]ClassIsolation, len(res.PerClass))
	for i, ct := range res.PerClass {
		out[i] = ClassIsolation{Class: ct.Class.Name, Criticality: ct.Criticality, Runs: runs}
	}

	horizon := scen.Span() + time.Second
	maxRounds := int(horizon/res.RoundLen) + 8
	classNodes := len(res.PerClass)

	// One result per run: the isolation time of each class's node, or -1
	// when it stayed in service for the whole horizon.
	type worker struct {
		cl  *sim.DiagCluster
		rng *rng.Pool
		col *sim.Collector
	}
	times, err := campaign.RunPooled(workers, runs, func() (*worker, error) {
		cl, err := sim.NewReusableDiagnosticCluster(sim.ClusterConfig{
			N: n, RoundLen: res.RoundLen, Ls: adverseLs, PR: prCfg,
		})
		if err != nil {
			return nil, err
		}
		return &worker{cl: cl, rng: src.NewPool(), col: sim.NewCollector()}, nil
	}, func(w *worker, run int) ([]time.Duration, error) {
		// Reset drops the previous run's disturbances before the pooled
		// streams they hold are recycled and reseeded.
		w.cl.Reset()
		w.rng.Recycle()
		w.col.Reset()
		phase := time.Duration(0)
		if randomPhase {
			stream := w.rng.Stream(fmt.Sprintf("adverse-phase/run-%d", run))
			phase = time.Duration(stream.Int63n(int64(res.RoundLen)))
		}
		eng, runners := w.cl.Eng, w.cl.Runners
		col := w.col
		for id := 1; id <= n; id++ {
			col.HookDiag(id, runners[id])
		}
		eng.Bus().AddDisturbance(scen.Train(phase))

		for r := 0; r < maxRounds; r++ {
			if err := eng.RunRound(); err != nil {
				return nil, err
			}
			isolatedAll := true
			for id := 1; id <= classNodes; id++ {
				if col.FirstIsolation(id) < 0 {
					isolatedAll = false
					break
				}
			}
			if isolatedAll {
				break
			}
		}
		ts := make([]time.Duration, classNodes)
		for i := range ts {
			ts[i] = col.FirstIsolationTime(i+1, eng.Schedule())
		}
		return ts, nil
	})
	if err != nil {
		return nil, err
	}
	// Fold in run-index order so Times — and every order statistic over
	// them — matches the serial execution exactly.
	for _, ts := range times {
		for i, t := range ts {
			if t >= 0 {
				out[i].record(t)
			}
		}
	}
	for i := range out {
		out[i].finalise()
	}
	return out, nil
}

// PolicyOutcome compares fault-filtering policies on one adverse scenario.
type PolicyOutcome struct {
	// Policy names the filtering policy.
	Policy string
	// NodesIsolated is how many of the 4 nodes ended isolated.
	NodesIsolated int
	// FirstIsolation is the time of the first isolation (-1 if none).
	FirstIsolation time.Duration
	// SystemDown reports whether every node was isolated (whole-system
	// restart, the failure mode Sec. 9 attributes to immediate isolation).
	SystemDown bool
}

// ComparePolicies runs the scenario under (a) the tuned p/r algorithm,
// (b) immediate isolation, and (c) an α-count filter, on identical fault
// streams, reproducing the Sec. 9 availability argument.
func ComparePolicies(scen fault.Scenario, res Result, alphaDecay, alphaThreshold float64) ([]PolicyOutcome, error) {
	const n = 4
	horizon := scen.Span() + time.Second
	maxRounds := int(horizon/res.RoundLen) + 8

	runPR := func(name string, prCfg core.PRConfig) (PolicyOutcome, error) {
		eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
			N: n, RoundLen: res.RoundLen, Ls: adverseLs, PR: prCfg,
		})
		if err != nil {
			return PolicyOutcome{}, err
		}
		col := sim.NewCollector()
		for id := 1; id <= n; id++ {
			col.HookDiag(id, runners[id])
		}
		eng.Bus().AddDisturbance(scen.Train(0))
		for r := 0; r < maxRounds; r++ {
			if err := eng.RunRound(); err != nil {
				return PolicyOutcome{}, err
			}
		}
		out := PolicyOutcome{Policy: name, FirstIsolation: -1}
		for id := 1; id <= n; id++ {
			if t := col.FirstIsolationTime(id, eng.Schedule()); t >= 0 {
				out.NodesIsolated++
				if out.FirstIsolation < 0 || t < out.FirstIsolation {
					out.FirstIsolation = t
				}
			}
		}
		out.SystemDown = out.NodesIsolated == n
		return out, nil
	}

	runAlpha := func() (PolicyOutcome, error) {
		eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
			N: n, RoundLen: res.RoundLen, Ls: adverseLs,
			PR: core.PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
		})
		if err != nil {
			return PolicyOutcome{}, err
		}
		alpha, err := baseline.NewAlphaCount(n, alphaDecay, alphaThreshold)
		if err != nil {
			return PolicyOutcome{}, err
		}
		out := PolicyOutcome{Policy: "alpha-count", FirstIsolation: -1}
		sched := eng.Schedule()
		runners[1].OnOutput = func(ro core.RoundOutput) {
			if ro.ConsHV == nil {
				return
			}
			iso, err := alpha.Update(ro.ConsHV)
			if err != nil {
				return
			}
			if len(iso) > 0 && out.FirstIsolation < 0 {
				out.FirstIsolation = sched.RoundStart(ro.Round)
			}
			out.NodesIsolated += len(iso)
		}
		eng.Bus().AddDisturbance(scen.Train(0))
		for r := 0; r < maxRounds; r++ {
			if err := eng.RunRound(); err != nil {
				return PolicyOutcome{}, err
			}
		}
		out.SystemDown = out.NodesIsolated == n
		return out, nil
	}

	var outs []PolicyOutcome
	pr, err := runPR("penalty/reward (tuned)", res.PRConfig(n))
	if err != nil {
		return nil, err
	}
	outs = append(outs, pr)
	imm, err := runPR("immediate isolation", baseline.ImmediatePolicy())
	if err != nil {
		return nil, err
	}
	outs = append(outs, imm)
	al, err := runAlpha()
	if err != nil {
		return nil, err
	}
	outs = append(outs, al)
	return outs, nil
}
