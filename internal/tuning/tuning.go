// Package tuning implements the practical penalty/reward tuning procedures
// of Sec. 9: characterising intermittent faults and setting the reward
// threshold R (Fig. 3), deriving the penalty threshold P and per-class
// criticality levels s_i from tolerated-outage budgets (Table 2), and
// evaluating the tuned algorithm under abnormal transient scenarios
// (Tables 3 and 4), including the comparison against immediate isolation
// and α-count policies.
package tuning

import (
	"fmt"
	"math"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

// PaperRewardThreshold is the reward threshold chosen in Sec. 9 (R = 10^6,
// correlating faults whose inter-arrival time is within R×T ≈ 42 min at
// T = 2.5 ms).
const PaperRewardThreshold = 1_000_000

// CorrelationProbability returns the probability that, after a transient
// fault, a second independent external transient (Poisson with the given
// rate, in events per second) arrives within R rounds of length roundLen —
// i.e. the probability that the p/r algorithm wrongly correlates the two
// (the y-axis of Fig. 3).
func CorrelationProbability(ratePerSecond float64, r int64, roundLen time.Duration) float64 {
	if ratePerSecond <= 0 || r <= 0 {
		return 0
	}
	window := float64(r) * roundLen.Seconds()
	return 1 - math.Exp(-ratePerSecond*window)
}

// CorrelationMonteCarlo estimates the same probability by sampling
// exponential inter-arrival gaps, cross-checking the analytic model.
func CorrelationMonteCarlo(stream *rng.Stream, ratePerSecond float64, r int64, roundLen time.Duration, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	window := float64(r) * roundLen.Seconds()
	hits := 0
	for i := 0; i < samples; i++ {
		if stream.Exp(ratePerSecond) < window {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// Fig3Point is one point of the Fig. 3 trade-off curve.
type Fig3Point struct {
	// R is the reward threshold (x-axis).
	R int64
	// Window is R×T, the correlation window.
	Window time.Duration
	// Prob[i] is the correlation probability for Rates[i] of the sweep.
	Prob []float64
}

// Fig3Sweep evaluates the correlation probability over a grid of reward
// thresholds and external transient rates (per second).
func Fig3Sweep(rs []int64, rates []float64, roundLen time.Duration) []Fig3Point {
	points := make([]Fig3Point, 0, len(rs))
	for _, r := range rs {
		p := Fig3Point{
			R:      r,
			Window: time.Duration(r) * roundLen,
			Prob:   make([]float64, len(rates)),
		}
		for i, rate := range rates {
			p.Prob[i] = CorrelationProbability(rate, r, roundLen)
		}
		points = append(points, p)
	}
	return points
}

// Class is one criticality class of Table 2.
type Class struct {
	// Name is the class label (SC, SR, NSR), Example the representative
	// application.
	Name, Example string
	// Outage is the maximum tolerated transient outage (the paper uses the
	// lower bound of the published ranges for tuning).
	Outage time.Duration
}

// DomainSpec describes one application domain of Table 2.
type DomainSpec struct {
	// Name is the domain label.
	Name string
	// Classes in decreasing criticality.
	Classes []Class
	// RoundLen is the TDMA round length.
	RoundLen time.Duration
	// R is the reward threshold used in the domain.
	R int64
}

// Automotive returns the automotive domain of Table 2: safety critical
// (X-by-wire, 20-50 ms), safety relevant (stability control, 100-200 ms) and
// non safety relevant (door control, 500-1000 ms) classes at T = 2.5 ms.
func Automotive() DomainSpec {
	return DomainSpec{
		Name: "Automotive",
		Classes: []Class{
			{Name: "SC", Example: "X-by-wire", Outage: 20 * time.Millisecond},
			{Name: "SR", Example: "Stability control", Outage: 100 * time.Millisecond},
			{Name: "NSR", Example: "Door control", Outage: 500 * time.Millisecond},
		},
		RoundLen: sim.DefaultRoundLen,
		R:        PaperRewardThreshold,
	}
}

// AutomotiveUpperBound returns the automotive domain tuned against the
// *upper* bounds of the published tolerated-outage ranges (50/200/1000 ms):
// the sensitivity companion to Automotive, showing how the derived
// thresholds scale with the outage budget.
func AutomotiveUpperBound() DomainSpec {
	return DomainSpec{
		Name: "Automotive (upper bounds)",
		Classes: []Class{
			{Name: "SC", Example: "X-by-wire", Outage: 50 * time.Millisecond},
			{Name: "SR", Example: "Stability control", Outage: 200 * time.Millisecond},
			{Name: "NSR", Example: "Door control", Outage: 1000 * time.Millisecond},
		},
		RoundLen: sim.DefaultRoundLen,
		R:        PaperRewardThreshold,
	}
}

// Aerospace returns the aerospace domain of Table 2: only safety critical
// functions (High Lift, Landing Gear, 50 ms) at T = 2.5 ms.
func Aerospace() DomainSpec {
	return DomainSpec{
		Name: "Aerospace",
		Classes: []Class{
			{Name: "SC", Example: "High Lift, Landing Gear", Outage: 50 * time.Millisecond},
		},
		RoundLen: sim.DefaultRoundLen,
		R:        PaperRewardThreshold,
	}
}

// ClassTuning is the tuning outcome for one criticality class.
type ClassTuning struct {
	Class Class
	// Penalty is p_i: the penalty counter value reached when the class's
	// maximum diagnostic latency expires under a continuous faulty burst.
	Penalty int64
	// Criticality is s_i = ceil(P / p_i).
	Criticality int64
}

// Result is the Table 2 outcome for one domain.
type Result struct {
	Domain string
	// PerClass tuning in spec order.
	PerClass []ClassTuning
	// P is the penalty threshold max(p_1..p_k); R the reward threshold.
	P, R int64
	// RoundLen echoes the TDMA round length.
	RoundLen time.Duration
}

// Criticalities returns the 1-based per-node criticality vector that assigns
// class i's level to node i+... — one node per class in order, remaining
// nodes at the lowest derived criticality.
func (r Result) Criticalities(n int) []int64 {
	out := make([]int64, n+1)
	low := int64(1)
	if len(r.PerClass) > 0 {
		low = r.PerClass[len(r.PerClass)-1].Criticality
	}
	for j := 1; j <= n; j++ {
		if j-1 < len(r.PerClass) {
			out[j] = r.PerClass[j-1].Criticality
		} else {
			out[j] = low
		}
	}
	return out
}

// PRConfig assembles the tuned penalty/reward configuration for an n-node
// system (one node per class, in order).
func (r Result) PRConfig(n int) core.PRConfig {
	return core.PRConfig{
		PenaltyThreshold: r.P,
		RewardThreshold:  r.R,
		Criticalities:    r.Criticalities(n),
	}
}

// Derive reproduces the Sec. 9 tuning experiment: inject a continuous faulty
// burst into a cluster running the protocol with unit criticalities, observe
// the penalty counter when each class's tolerated outage expires, and derive
// P = max(p_i) and s_i = ceil(P/p_i).
func Derive(spec DomainSpec) (Result, error) {
	res := Result{Domain: spec.Name, R: spec.R, RoundLen: spec.RoundLen}
	for _, class := range spec.Classes {
		p, err := penaltyAtDeadline(spec.RoundLen, class.Outage)
		if err != nil {
			return Result{}, fmt.Errorf("tuning: class %s: %w", class.Name, err)
		}
		res.PerClass = append(res.PerClass, ClassTuning{Class: class, Penalty: p})
		if p > res.P {
			res.P = p
		}
	}
	for i := range res.PerClass {
		p := res.PerClass[i].Penalty
		if p <= 0 {
			return Result{}, fmt.Errorf("tuning: class %s: tolerated outage %v shorter than the diagnostic latency",
				res.PerClass[i].Class.Name, res.PerClass[i].Class.Outage)
		}
		res.PerClass[i].Criticality = (res.P + p - 1) / p // ceil(P/p)
	}
	return res, nil
}

// penaltyAtDeadline runs a 4-node cluster under a continuous bus burst
// starting at time zero and returns the penalty counter of an affected node
// at the moment the outage budget expires.
func penaltyAtDeadline(roundLen time.Duration, outage time.Duration) (int64, error) {
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		RoundLen: roundLen,
		// The prototype's unconstrained scheduling: detection latency of
		// k-3 (the paper's add-on deployment).
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
	})
	if err != nil {
		return 0, err
	}
	horizon := outage + 10*roundLen
	eng.Bus().AddDisturbance(fault.NewTrain(fault.Burst{Start: 0, Length: horizon}))

	var penalty int64
	node1 := runners[1]
	target := 2 // observe the penalty counter of node 2 at node 1
	for eng.Round() == 0 || eng.Schedule().RoundStart(eng.Round()) < outage {
		if err := eng.RunRound(); err != nil {
			return 0, err
		}
		// The counter value "reached when the maximum diagnostic latency was
		// reached" is the one after the last job executing before the
		// deadline.
		jobTime := eng.JobTime(eng.Round()-1, 2) // node 1's job position is 2
		if jobTime < outage {
			penalty = node1.Protocol().PenaltyReward().Penalty(target)
		}
	}
	return penalty, nil
}
