// Package splitting implements fixed-effort multilevel splitting for
// rare-event estimation on the diagnostic cluster: the probability that a
// node suffering independent per-round transient faults escalates its
// penalty counter all the way to (wrong) isolation is far below naive
// Monte-Carlo reach at certification-relevant parameters, but factors into
// per-level conditional probabilities — penalty thresholds are the
// importance function the protocol already computes — each large enough to
// estimate with modest effort.
//
// The estimator is fixed effort (n trials per level): level 0 trials start
// from a warmed-up fault-free cluster state; a trial succeeds when the
// observer's penalty for the target reaches the level's threshold, at which
// point the full cluster state is captured (core.Protocol.CopyFrom /
// sim.ClusterCheckpoint — the zero-copy path, not the JSON codec) and
// becomes an entry state for the next level. Level ℓ+1 trials restore entry
// states round-robin and continue under fresh randomness until they either
// reach the next threshold or regenerate (penalty back to zero — the
// reward mechanism erased all progress, so the trajectory can no longer
// reach the level without re-crossing the ones below). The product of the
// per-level success fractions estimates the rare-event probability, with
// first-order relative error and Wilson intervals from internal/stats.
//
// Determinism contract: trials are scheduled on the internal/campaign pool
// with index-addressed results; each trial's randomness is one named stream
// ("<name>/L<level>/T<trial>") drawn through rng.Pool's reseed-in-place
// reuse, and its fault process is a pure hash of (trial key, round) — so
// every receiver of a slot sees the same verdict, a restored suffix replays
// its prefix's faults exactly, and the estimate is bit-identical at any
// worker count. Entry states are collected in trial-index order and shared
// read-only across workers.
package splitting

import (
	"fmt"
	"math"

	"ttdiag/internal/campaign"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/stats"
	"ttdiag/internal/tdma"
)

// Config parameterises one splitting estimation.
type Config struct {
	// Cluster shapes the simulated system. The penalty/reward thresholds in
	// Cluster.PR define the dynamics the levels climb.
	Cluster sim.ClusterConfig
	// Target is the node (1-based) whose runaway penalty is the rare event;
	// 0 defaults to node 1.
	Target int
	// Levels are the ascending penalty thresholds, as seen by the observer
	// (the lowest-numbered node other than Target). A trial at level ℓ
	// succeeds when the observer's penalty for Target reaches Levels[ℓ].
	// The last level is the rare event itself — set it to
	// PenaltyThreshold+1 for isolation.
	Levels []int64
	// Effort is the number of trials per level (fixed-effort splitting).
	Effort int
	// StageRounds bounds each trial's round count; 0 defaults to 16.
	StageRounds int
	// WarmRounds is the fault-free run-in before the shared base state is
	// captured; 0 defaults to the diagnosis lag + 2.
	WarmRounds int
	// FaultProb is the per-round probability of a benign transient fault in
	// Target's sending slot.
	FaultProb float64
	// Workers bounds the campaign pool (<= 0 means GOMAXPROCS). The
	// estimate is bit-identical at any value.
	Workers int
	// OnClamp forwards to campaign.Options.OnClamp.
	OnClamp func(requested, max int)
	// Name prefixes the per-trial stream names; "" defaults to "splitting".
	Name string
}

func (c Config) withDefaults() (Config, error) {
	if c.Target == 0 {
		c.Target = 1
	}
	if c.StageRounds == 0 {
		c.StageRounds = 16
	}
	if c.Name == "" {
		c.Name = "splitting"
	}
	if c.Effort < 1 {
		return c, fmt.Errorf("splitting: effort %d, need >= 1", c.Effort)
	}
	if len(c.Levels) == 0 {
		return c, fmt.Errorf("splitting: no levels")
	}
	var prev int64
	for _, l := range c.Levels {
		if l <= prev {
			return c, fmt.Errorf("splitting: levels must be ascending and positive, got %v", c.Levels)
		}
		prev = l
	}
	if c.FaultProb < 0 || c.FaultProb > 1 {
		return c, fmt.Errorf("splitting: fault probability %v outside [0, 1]", c.FaultProb)
	}
	return c, nil
}

// LevelResult reports one level of the estimation.
type LevelResult struct {
	// Threshold is the penalty value this level's trials had to reach.
	Threshold int64
	// Trials and Hits are the fixed effort and its successes.
	Trials, Hits int
	// P is the conditional probability estimate Hits/Trials.
	P float64
	// WilsonLo/WilsonHi bound P at 95% confidence (Wilson score).
	WilsonLo, WilsonHi float64
	// Rounds is the number of engine rounds this level simulated.
	Rounds int64
}

// Result is the full splitting estimate.
type Result struct {
	// Levels holds the per-level results in climbing order. When a level
	// produces zero hits the estimation stops there: later levels are
	// unreachable and absent.
	Levels []LevelResult
	// P is the product estimate of the rare-event probability.
	P float64
	// RelErr is the first-order relative standard error of P (+Inf when a
	// level produced zero hits).
	RelErr float64
	// Rounds is the total number of engine rounds simulated, warm-up
	// included; NodeRounds multiplies by the node count.
	Rounds, NodeRounds int64
	// Clones is the number of entry checkpoints captured at level
	// crossings; Captures additionally counts the base state; Restores is
	// the number of checkpoint restores performed.
	Clones, Captures int
	Restores         int64
	// NaiveTrials estimates how many naive Monte-Carlo runs would be needed
	// for the same relative error ((1-P)/(P·RelErr²)); NaiveRounds scales
	// by the escalation horizon StageRounds·len(Levels). Both are +Inf when
	// P is 0 and 0 when P is 1.
	NaiveTrials, NaiveRounds float64
}

// keyedTransient corrupts the target node's sending slot in round r iff a
// hash of (key, r) clears the probability threshold. Being a pure function
// of the round, every receiver of the slot — and the sender's own collision
// detector — sees the same verdict, and a restored clone replays the faults
// its checkpoint prefix saw. Re-keying gives a clone fresh randomness
// without any generator state to checkpoint.
type keyedTransient struct {
	target tdma.NodeID
	thresh uint64 // probability scaled to [0, 2^53]
	key    uint64
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (f *keyedTransient) hit(round int) bool {
	return splitmix(f.key^(uint64(round)*0x9e3779b97f4a7c15))>>11 < f.thresh
}

func (f *keyedTransient) predicate() fault.Predicate {
	return fault.Predicate{Match: func(tx *tdma.Transmission) bool {
		return tx.Sender == f.target && f.hit(tx.Round)
	}}
}

// worker is one campaign worker's private simulation state.
type worker struct {
	cl    *sim.DiagCluster
	pool  *rng.Pool
	fault *keyedTransient
}

// session carries the per-run state shared (read-only during a level's
// campaign) between trials.
type session struct {
	cfg      Config
	src      *rng.Source
	observer int
	entries  []*sim.ClusterCheckpoint
}

func (s *session) newWorker() (*worker, error) {
	cl, err := sim.NewReusableDiagnosticCluster(s.cfg.Cluster)
	if err != nil {
		return nil, err
	}
	cl.Reset()
	w := &worker{
		cl:   cl,
		pool: s.src.NewPool(),
		fault: &keyedTransient{
			target: tdma.NodeID(s.cfg.Target),
			thresh: uint64(s.cfg.FaultProb * (1 << 53)),
		},
	}
	// Installed once; trials re-key it. Restore never clears disturbances.
	cl.Eng.Bus().AddDisturbance(w.fault.predicate())
	return w, nil
}

// importance is the level function: the observer's penalty count for the
// target. It keeps its crossing value after isolation (no reward updates for
// inactive nodes), so the top level PenaltyThreshold+1 is absorbing.
func (s *session) importance(cl *sim.DiagCluster) int64 {
	return cl.Runners[s.observer].Protocol().PenaltyReward().Penalty(s.cfg.Target)
}

// trialOut is one trial's result. entry is non-nil iff the trial succeeded
// at a non-final level (final-level successes need no entry state).
type trialOut struct {
	hit    bool
	rounds int64
	entry  *sim.ClusterCheckpoint
}

func (s *session) runTrial(w *worker, level, trial int) (trialOut, error) {
	entry := s.entries[trial%len(s.entries)]
	if err := entry.Restore(w.cl); err != nil {
		return trialOut{}, err
	}
	w.pool.Recycle()
	st := w.pool.Stream(fmt.Sprintf("%s/L%d/T%d", s.cfg.Name, level, trial))
	w.fault.key = st.Uint64()
	threshold := s.cfg.Levels[level]
	var out trialOut
	for r := 0; r < s.cfg.StageRounds; r++ {
		if err := w.cl.Eng.RunRound(); err != nil {
			return trialOut{}, err
		}
		out.rounds++
		imp := s.importance(w.cl)
		if imp >= threshold {
			out.hit = true
			if level < len(s.cfg.Levels)-1 {
				ck, err := sim.NewClusterCheckpoint(w.cl)
				if err != nil {
					return trialOut{}, err
				}
				if err := ck.Capture(w.cl); err != nil {
					return trialOut{}, err
				}
				out.entry = ck
			}
			return out, nil
		}
		if level > 0 && imp == 0 {
			// Regenerated: the reward mechanism cleared every counter, so
			// the trajectory is back below level 0's threshold.
			return out, nil
		}
	}
	return out, nil
}

// Run executes the splitting estimation. The estimate is a pure function of
// (cfg, src's seed): bit-identical at any worker count.
func Run(cfg Config, src *rng.Source) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	boot, err := sim.NewReusableDiagnosticCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	norm := boot.Config()
	if cfg.Target < 1 || cfg.Target > norm.N {
		return nil, fmt.Errorf("splitting: target %d outside 1..%d", cfg.Target, norm.N)
	}
	observer := 1
	if cfg.Target == 1 {
		observer = 2
	}
	warm := cfg.WarmRounds
	if warm == 0 {
		warm = boot.Runners[observer].Protocol().Config().Lag() + 2
	}

	res := &Result{}
	boot.Reset()
	if err := boot.Eng.RunRounds(warm); err != nil {
		return nil, err
	}
	base, err := sim.NewClusterCheckpoint(boot)
	if err != nil {
		return nil, err
	}
	if err := base.Capture(boot); err != nil {
		return nil, err
	}
	res.Rounds += int64(warm)
	res.Captures = 1

	s := &session{cfg: cfg, src: src, observer: observer,
		entries: []*sim.ClusterCheckpoint{base}}
	successes := make([]int64, 0, len(cfg.Levels))
	trials := make([]int64, 0, len(cfg.Levels))
	for level := range cfg.Levels {
		lvl := level
		outs, err := campaign.RunPooledWith(
			campaign.Options{Workers: cfg.Workers, OnClamp: cfg.OnClamp},
			cfg.Effort,
			s.newWorker,
			func(w *worker, trial int) (trialOut, error) { return s.runTrial(w, lvl, trial) },
		)
		if err != nil {
			return nil, err
		}
		lr := LevelResult{Threshold: cfg.Levels[level], Trials: cfg.Effort}
		next := make([]*sim.ClusterCheckpoint, 0, len(outs))
		for _, out := range outs {
			lr.Rounds += out.rounds
			if out.hit {
				lr.Hits++
			}
			if out.entry != nil {
				next = append(next, out.entry)
			}
		}
		lr.P = float64(lr.Hits) / float64(lr.Trials)
		lr.WilsonLo, lr.WilsonHi = stats.Wilson(int64(lr.Hits), int64(lr.Trials), 1.96)
		res.Levels = append(res.Levels, lr)
		res.Rounds += lr.Rounds
		res.Restores += int64(cfg.Effort)
		res.Clones += len(next)
		res.Captures += len(next)
		successes = append(successes, int64(lr.Hits))
		trials = append(trials, int64(lr.Trials))
		if lr.Hits == 0 {
			break // later levels are unreachable from zero entry states
		}
		if level < len(cfg.Levels)-1 {
			s.entries = next
		}
	}

	res.P = 1
	for _, lr := range res.Levels {
		res.P *= lr.P
	}
	if len(res.Levels) < len(cfg.Levels) {
		res.P = 0 // stopped early on a dry level
	}
	res.RelErr = stats.RelativeErrorProduct(successes, trials)
	res.NodeRounds = res.Rounds * int64(norm.N)
	switch {
	case res.P <= 0:
		res.NaiveTrials, res.NaiveRounds = math.Inf(1), math.Inf(1)
	case res.P >= 1:
		res.NaiveTrials, res.NaiveRounds = 0, 0
	default:
		res.NaiveTrials = (1 - res.P) / (res.P * res.RelErr * res.RelErr)
		res.NaiveRounds = res.NaiveTrials * float64(cfg.StageRounds*len(cfg.Levels))
	}
	return res, nil
}
