package splitting

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

func testConfig() Config {
	return Config{
		Cluster: sim.ClusterConfig{
			N:  4,
			PR: core.PRConfig{PenaltyThreshold: 7, RewardThreshold: 2},
		},
		Levels:    []int64{1, 2, 3, 4},
		Effort:    400,
		FaultProb: 0.1,
	}
}

// TestRunWorkerCountInvariance pins the determinism contract: the entire
// Result — every per-level count, every round total, the product estimate —
// is bit-identical at any worker count.
func TestRunWorkerCountInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	mk := func(workers int) *Result {
		cfg := testConfig()
		cfg.Workers = workers
		cfg.OnClamp = func(int, int) {}
		res, err := Run(cfg, rng.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mk(1)
	if ref.P <= 0 {
		t.Fatalf("test configuration produced a dry level (P = %v); pick parameters that exercise every level", ref.P)
	}
	for _, workers := range []int{2, 3, 4} {
		if got := mk(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// directStaged estimates the same staged quantity splitting factorises — a
// trajectory from the base state must climb every threshold, each within a
// fresh StageRounds window of its previous crossing, without regenerating to
// penalty zero once past the first — by brute force: one full trajectory per
// trial, no cloning. The per-round fault process is iid Bernoulli under the
// keyed hash, so re-keying clones at crossings (what splitting does) and
// keeping one key throughout (what this does) draw from the same
// distribution; the two estimates must agree within Monte-Carlo error.
func directStaged(t *testing.T, cfg Config, src *rng.Source, trials int) float64 {
	t.Helper()
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	boot, err := sim.NewReusableDiagnosticCluster(cfg.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	boot.Reset()
	observer := 1
	if cfg.Target == 1 {
		observer = 2
	}
	warm := cfg.WarmRounds
	if warm == 0 {
		warm = boot.Runners[observer].Protocol().Config().Lag() + 2
	}
	if err := boot.Eng.RunRounds(warm); err != nil {
		t.Fatal(err)
	}
	base, err := sim.NewClusterCheckpoint(boot)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Capture(boot); err != nil {
		t.Fatal(err)
	}
	s := &session{cfg: cfg, src: src, observer: observer}
	w, err := s.newWorker()
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
trialLoop:
	for trial := 0; trial < trials; trial++ {
		if err := base.Restore(w.cl); err != nil {
			t.Fatal(err)
		}
		w.pool.Recycle()
		w.fault.key = w.pool.Stream(fmt.Sprintf("direct/T%d", trial)).Uint64()
		stage := 0
		window := 0
		for stage < len(cfg.Levels) {
			if window >= cfg.StageRounds {
				continue trialLoop // deadline missed
			}
			if err := w.cl.Eng.RunRound(); err != nil {
				t.Fatal(err)
			}
			window++
			imp := s.importance(w.cl)
			if imp >= cfg.Levels[stage] {
				stage++
				window = 0
				continue
			}
			if stage > 0 && imp == 0 {
				continue trialLoop // regenerated
			}
		}
		hits++
	}
	return float64(hits) / float64(trials)
}

// TestRunMatchesDirectMonteCarlo validates the estimator against brute
// force in a regime reachable by both: the splitting product must agree
// with the direct staged estimate well within their combined Monte-Carlo
// error (the assertion allows 5 combined standard errors; the seeds are
// fixed, so this is a deterministic regression check, not a flaky one).
func TestRunMatchesDirectMonteCarlo(t *testing.T) {
	cfg := Config{
		Cluster: sim.ClusterConfig{
			N:  4,
			PR: core.PRConfig{PenaltyThreshold: 7, RewardThreshold: 2},
		},
		Levels:    []int64{1, 2},
		Effort:    2500,
		FaultProb: 0.3,
	}
	res, err := Run(cfg, rng.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	const directTrials = 6000
	direct := directStaged(t, cfg, rng.NewSource(4), directTrials)
	directSE := math.Sqrt(direct * (1 - direct) / directTrials)
	tol := 5 * math.Hypot(res.P*res.RelErr, directSE)
	if diff := math.Abs(res.P - direct); diff > tol {
		t.Fatalf("splitting P = %v (RE %.3f) vs direct %v (SE %.4f): |diff| = %v > %v",
			res.P, res.RelErr, direct, directSE, diff, tol)
	}
}

// TestRunDeterministicExtremes pins the plumbing at the probability
// extremes, where the dynamics are deterministic.
func TestRunDeterministicExtremes(t *testing.T) {
	// A fault every round climbs every level: P = 1, zero relative error.
	cfg := testConfig()
	cfg.Effort = 8
	cfg.FaultProb = 1
	res, err := Run(cfg, rng.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.RelErr != 0 {
		t.Fatalf("FaultProb=1: P = %v, RelErr = %v, want 1, 0", res.P, res.RelErr)
	}
	for i, lr := range res.Levels {
		if lr.Hits != lr.Trials {
			t.Fatalf("FaultProb=1: level %d hit %d/%d", i, lr.Hits, lr.Trials)
		}
	}
	if res.NaiveTrials != 0 {
		t.Fatalf("FaultProb=1: NaiveTrials = %v, want 0", res.NaiveTrials)
	}

	// No faults at all: level 0 is dry, the estimate is zero, and the
	// estimation stops without attempting unreachable levels.
	cfg = testConfig()
	cfg.Effort = 8
	cfg.FaultProb = 0
	res, err = Run(cfg, rng.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.RelErr, 1) {
		t.Fatalf("FaultProb=0: P = %v, RelErr = %v, want 0, +Inf", res.P, res.RelErr)
	}
	if len(res.Levels) != 1 || res.Levels[0].Hits != 0 {
		t.Fatalf("FaultProb=0: levels = %+v, want one dry level", res.Levels)
	}
	if !math.IsInf(res.NaiveTrials, 1) {
		t.Fatalf("FaultProb=0: NaiveTrials = %v, want +Inf", res.NaiveTrials)
	}
}

// TestRunAccounting checks the bookkeeping invariants that the experiment
// layer turns into metrics: restores count every trial, captures count the
// base state plus every retained clone, and clones are exactly the non-final
// level hits (final-level successes need no entry state).
func TestRunAccounting(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg, rng.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(res.Levels)) * int64(cfg.Effort); res.Restores != want {
		t.Fatalf("Restores = %d, want %d", res.Restores, want)
	}
	wantClones := 0
	for i, lr := range res.Levels {
		if i < len(cfg.Levels)-1 {
			wantClones += lr.Hits
		}
	}
	if res.Clones != wantClones {
		t.Fatalf("Clones = %d, want %d", res.Clones, wantClones)
	}
	if res.Captures != wantClones+1 {
		t.Fatalf("Captures = %d, want %d", res.Captures, wantClones+1)
	}
	var rounds int64
	for _, lr := range res.Levels {
		rounds += lr.Rounds
	}
	if res.Rounds <= rounds { // warm-up must be included
		t.Fatalf("Rounds = %d, not greater than level sum %d", res.Rounds, rounds)
	}
	if res.NodeRounds != res.Rounds*4 {
		t.Fatalf("NodeRounds = %d, want %d", res.NodeRounds, res.Rounds*4)
	}
}

func TestConfigValidation(t *testing.T) {
	src := rng.NewSource(1)
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero effort", func(c *Config) { c.Effort = 0 }},
		{"no levels", func(c *Config) { c.Levels = nil }},
		{"descending levels", func(c *Config) { c.Levels = []int64{2, 1} }},
		{"zero level", func(c *Config) { c.Levels = []int64{0, 1} }},
		{"bad probability", func(c *Config) { c.FaultProb = 1.5 }},
		{"bad target", func(c *Config) { c.Target = 9 }},
	} {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := Run(cfg, src); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
