package splitting

import (
	"testing"

	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

// BenchmarkSplittingCampaign measures one full fixed-effort estimation at a
// small but non-trivial shape (3 levels, 64 trials each) — the
// checkpoint-restore hot loop the zero-copy path exists for. Tracked in
// BENCH_splitting.json.
func BenchmarkSplittingCampaign(b *testing.B) {
	cfg := Config{
		Cluster: sim.ClusterConfig{
			N:  4,
			PR: core.PRConfig{PenaltyThreshold: 7, RewardThreshold: 2},
		},
		Levels:    []int64{1, 2, 3},
		Effort:    64,
		FaultProb: 0.15,
		Workers:   1,
	}
	src := rng.NewSource(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, src); err != nil {
			b.Fatal(err)
		}
	}
}
