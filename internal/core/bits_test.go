package core

import (
	"bytes"
	"testing"

	"ttdiag/internal/rng"
)

// randomSyndrome fills an n-node syndrome with Faulty/Healthy/Erased entries
// (pErased chance of ε per entry).
func randomSyndrome(st *rng.Stream, n int, pErased float64) Syndrome {
	s := NewSyndrome(n, Faulty)
	for j := 1; j <= n; j++ {
		if st.Bool(pErased) {
			s[j] = Erased
		} else {
			s[j] = Opinion(st.Intn(2))
		}
	}
	return s
}

func TestBitSyndromeRoundtrip(t *testing.T) {
	st := rng.NewStream(11)
	for trial := 0; trial < 500; trial++ {
		n := st.Intn(MaxPackedN) + 1
		s := randomSyndrome(st, n, 0.2)
		b, err := PackSyndrome(s)
		if err != nil {
			t.Fatalf("PackSyndrome: %v", err)
		}
		if b.Op&^b.Known != 0 {
			t.Fatalf("n=%d: Op ⊄ Known: op=%x known=%x", n, b.Op, b.Known)
		}
		back := b.Unpack(n)
		if !back.Equal(s) {
			t.Fatalf("n=%d: roundtrip %s != %s", n, back, s)
		}
		for j := 1; j <= n; j++ {
			if got := b.Get(j); got != s[j] {
				t.Fatalf("n=%d: Get(%d) = %v, want %v", n, j, got, s[j])
			}
		}
		if got, want := b.CountFaulty(n), s.CountFaulty(); got != want {
			t.Fatalf("n=%d: CountFaulty = %d, want %d", n, got, want)
		}
		if got, want := b.String(n), s.String(); got != want {
			t.Fatalf("n=%d: String = %q, want %q", n, got, want)
		}
	}
}

func TestBitSyndromeSet(t *testing.T) {
	var b BitSyndrome
	b.Set(1, Healthy)
	b.Set(2, Faulty)
	b.Set(3, Healthy)
	b.Set(3, Erased)
	if got := b.String(4); got != "10ee" {
		t.Fatalf("String = %q, want 10ee", got)
	}
	// Out-of-range writes and reads are inert.
	b.Set(0, Healthy)
	b.Set(65, Healthy)
	if b.Get(0) != Erased || b.Get(65) != Erased {
		t.Fatalf("out-of-range entries must read Erased")
	}
}

func TestBitSyndromeNormalizesInvalidOpinions(t *testing.T) {
	s := NewSyndrome(3, Healthy)
	s[2] = Opinion(7) // outside {Faulty, Healthy, Erased}
	b := packSyndrome(s)
	if got := b.Get(2); got != Erased {
		t.Fatalf("invalid opinion packed to %v, want Erased", got)
	}
}

func TestPackSyndromeBound(t *testing.T) {
	if _, err := PackSyndrome(NewSyndrome(MaxPackedN+1, Healthy)); err == nil {
		t.Fatalf("PackSyndrome accepted %d nodes", MaxPackedN+1)
	}
	if _, err := PackSyndrome(NewSyndrome(MaxPackedN, Healthy)); err != nil {
		t.Fatalf("PackSyndrome rejected %d nodes: %v", MaxPackedN, err)
	}
}

// TestBitSyndromeWireEquivalence pins the packed encode/decode to the scalar
// wire format: identical bytes out, identical syndromes back in.
func TestBitSyndromeWireEquivalence(t *testing.T) {
	st := rng.NewStream(12)
	for trial := 0; trial < 500; trial++ {
		n := st.Intn(MaxPackedN) + 1
		s := randomSyndrome(st, n, 0.2)
		want := s.Encode()
		got := make([]byte, EncodedLen(n))
		packSyndrome(s).EncodeInto(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: packed encoding % x != scalar % x", n, got, want)
		}
		// Decode side: every received entry is known, ε/Faulty both read
		// back as Faulty — identical to DecodeSyndrome.
		b, err := BitSyndromeFromWire(want, n)
		if err != nil {
			t.Fatalf("n=%d: BitSyndromeFromWire: %v", n, err)
		}
		scalar, err := DecodeSyndrome(want, n)
		if err != nil {
			t.Fatalf("n=%d: DecodeSyndrome: %v", n, err)
		}
		if unpacked := b.Unpack(n); !unpacked.Equal(scalar) {
			t.Fatalf("n=%d: wire decode %s != scalar %s", n, unpacked, scalar)
		}
	}
}

func TestBitSyndromeFromWireErrors(t *testing.T) {
	if _, err := BitSyndromeFromWire(make([]byte, 1), 16); err == nil {
		t.Fatalf("accepted a short payload")
	}
	if _, err := BitSyndromeFromWire(make([]byte, 9), MaxPackedN+1); err == nil {
		t.Fatalf("accepted n > MaxPackedN")
	}
}

func TestPlaneMask(t *testing.T) {
	tests := []struct {
		n    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {8, 0xff}, {63, ^uint64(0) >> 1}, {64, ^uint64(0)},
	}
	for _, tt := range tests {
		if got := PlaneMask(tt.n); got != tt.want {
			t.Errorf("PlaneMask(%d) = %x, want %x", tt.n, got, tt.want)
		}
	}
}
