package core

import "ttdiag/internal/invariant"

// checkStepInvariants asserts the protocol's cheap structural and bounds
// invariants at the end of every Step: dissemination-payload shape,
// diagnostic-matrix shape, health-vector lag (Lemma 1), penalty/reward
// bounds (Alg. 2) and activity-bit monotonicity (bits only return to 1 via
// the reintegration extension). The whole function body is gated on
// invariant.Enabled, so normal builds pay nothing; under the
// ttdiag_invariants build tag a violation panics at the first round where
// the state diverges, instead of surfacing rounds later as a failed
// equivalence test.
func (p *Protocol) checkStepInvariants(out RoundOutput) {
	n := p.cfg.N
	invariant.Checkf(out.SendSyndrome.N() == n,
		"core: node %d round %d: send syndrome covers %d nodes, want %d",
		p.cfg.ID, out.Round, out.SendSyndrome.N(), n)
	invariant.Checkf(len(out.Send) == EncodedLen(n),
		"core: node %d round %d: dissemination payload is %d bytes, want %d",
		p.cfg.ID, out.Round, len(out.Send), EncodedLen(n))

	if out.Matrix != nil {
		invariant.Checkf(out.Matrix.N() == n,
			"core: node %d round %d: diagnostic matrix covers %d nodes, want %d",
			p.cfg.ID, out.Round, out.Matrix.N(), n)
		for j := 1; j <= n; j++ {
			row := out.Matrix.Row(j)
			invariant.Checkf(row == nil || row.N() == n,
				"core: node %d round %d: matrix row %d covers %d nodes, want %d",
				p.cfg.ID, out.Round, j, row.N(), n)
		}
	}
	if out.ConsHV != nil {
		invariant.Checkf(out.ConsHV.N() == n,
			"core: node %d round %d: health vector covers %d nodes, want %d",
			p.cfg.ID, out.Round, out.ConsHV.N(), n)
		invariant.Checkf(out.DiagnosedRound == out.Round-p.cfg.Lag(),
			"core: node %d round %d: diagnosed round %d violates the lag of Lemma 1 (want %d)",
			p.cfg.ID, out.Round, out.DiagnosedRound, out.Round-p.cfg.Lag())
	} else {
		invariant.Checkf(out.DiagnosedRound == -1,
			"core: node %d round %d: diagnosed round %d without a health vector",
			p.cfg.ID, out.Round, out.DiagnosedRound)
	}

	invariant.Checkf(len(out.Active) == n+1,
		"core: node %d round %d: activity vector has %d entries, want %d",
		p.cfg.ID, out.Round, len(out.Active), n+1)
	for j := 1; j <= n; j++ {
		pen, rew, obs := p.pr.penalties[j], p.pr.rewards[j], p.pr.observe[j]
		invariant.Checkf(pen >= 0 && pen <= p.pr.cfg.PenaltyThreshold+p.pr.cfg.criticality(j),
			"core: node %d round %d: penalty counter of node %d is %d, outside [0, P+s_%d] = [0, %d]",
			p.cfg.ID, out.Round, j, pen, j, p.pr.cfg.PenaltyThreshold+p.pr.cfg.criticality(j))
		invariant.Checkf(rew >= 0 && rew < p.pr.cfg.RewardThreshold,
			"core: node %d round %d: reward counter of node %d is %d, outside [0, R) = [0, %d)",
			p.cfg.ID, out.Round, j, rew, p.pr.cfg.RewardThreshold)
		invariant.Checkf(obs >= 0 &&
			(p.pr.cfg.ReintegrationThreshold == 0 || obs < p.pr.cfg.ReintegrationThreshold),
			"core: node %d round %d: observation counter of node %d is %d, outside its reintegration window",
			p.cfg.ID, out.Round, j, obs)
		if p.invPrevActive != nil {
			invariant.Checkf(out.Active[j] || !p.invPrevActive[j] || consHVSaysFaulty(out.ConsHV, j) || p.pr.penalties[j] > p.pr.cfg.PenaltyThreshold,
				"core: node %d round %d: node %d isolated without a faulty verdict or an exceeded penalty threshold",
				p.cfg.ID, out.Round, j)
			invariant.Checkf(!out.Active[j] || p.invPrevActive[j] || p.pr.cfg.ReintegrationThreshold > 0,
				"core: node %d round %d: node %d returned to service with reintegration disabled",
				p.cfg.ID, out.Round, j)
		}
	}
	p.invPrevActive = append(p.invPrevActive[:0], out.Active...)
}

// consHVSaysFaulty reports whether the health vector convicts node j; a nil
// vector (warm-up) convicts nobody.
func consHVSaysFaulty(hv Syndrome, j int) bool {
	return hv != nil && hv[j] == Faulty
}
