//go:build ttdiag_invariants

package core

import (
	"strings"
	"testing"
)

func stepOnce(t *testing.T, p *Protocol, round int) {
	t.Helper()
	n := p.Config().N
	in := RoundInput{
		Round:    round,
		DMs:      make([]Syndrome, n+1),
		Validity: NewSyndrome(n, Healthy),
	}
	for j := 1; j <= n; j++ {
		in.DMs[j] = NewSyndrome(n, Healthy)
	}
	if _, err := p.Step(in); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedPenaltyCounterPanics corrupts Alg. 2 state behind the
// protocol's back and requires the invariant layer to catch it at the next
// round boundary.
func TestCorruptedPenaltyCounterPanics(t *testing.T) {
	p, err := NewProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 4, RewardThreshold: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.pr.penalties[2] = -1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("negative penalty counter was not caught")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "penalty counter") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	stepOnce(t, p, 0)
}

// TestCorruptedActivityBitPanics flips an activity bit back on without the
// reintegration extension — the monotonicity the isolation guarantee of
// Alg. 2 depends on.
func TestCorruptedActivityBitPanics(t *testing.T) {
	p, err := NewProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 4, RewardThreshold: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	stepOnce(t, p, 0) // seed invPrevActive
	p.pr.active[3] = false
	p.pr.penalties[3] = 3 // below threshold: isolation is unjustified
	defer func() {
		if recover() == nil {
			t.Fatal("unjustified isolation was not caught")
		}
	}()
	stepOnce(t, p, 1)
}

// TestHealthyRunStaysQuiet drives a protocol through enough rounds to warm
// up the pipeline and asserts the invariant layer accepts a legal history.
func TestHealthyRunStaysQuiet(t *testing.T) {
	p, err := NewProtocol(Config{
		N: 4, ID: 2, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 4, RewardThreshold: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		stepOnce(t, p, k)
	}
}
