package core

import "ttdiag/internal/metrics"

// StepMetrics bundles the per-node protocol instruments one Protocol emits
// into on every Step/StepPacked. All fields are optional: a nil instrument
// is skipped (metrics.Counter et al. are nil-safe no-ops), and a Protocol
// with no StepMetrics attached pays a single nil check — zero extra
// allocations — per Step.
//
// Every emitted value derives from simulated quantities (rounds, counts,
// penalty counters), never from wall-clock time, so attached metrics keep
// the bit-identical campaign contract intact. Emission happens on the warm
// path with mask arithmetic only; the Step allocation ceilings hold with
// metrics attached (see allocs_test.go).
type StepMetrics struct {
	// Steps counts protocol executions.
	Steps *metrics.Counter
	// Vote-outcome counts, one increment per matrix column per warm round,
	// classified from the H-maj tally (Eqn. 1): ⊥ when no opinions at all,
	// Faulty on a strict majority, Healthy otherwise. VotesTied counts the
	// Healthy verdicts that were exact non-zero ties.
	VotesHealthy *metrics.Counter
	VotesFaulty  *metrics.Counter
	VotesBottom  *metrics.Counter
	VotesTied    *metrics.Counter
	// Disagreements counts definite matrix opinions that differ from the
	// round's agreed health vector (syndrome disagreement).
	Disagreements *metrics.Counter
	// Accusations counts minority accusations raised (membership mode), and
	// Isolations/Reintegrations count penalty/reward threshold crossings.
	Accusations    *metrics.Counter
	Isolations     *metrics.Counter
	Reintegrations *metrics.Counter
	// PenaltyMax is the high watermark of every node's penalty counter as
	// seen by this protocol instance.
	PenaltyMax *metrics.Gauge
	// PenaltySeries, when non-nil, records node j's penalty counter after
	// every warm execution as a (diagnosed round, penalty) point in
	// PenaltySeries[j] (1-based; nil entries are skipped). Attach the
	// trajectory variant to ONE observer of ONE run only — series cannot be
	// merged across registries, and every obedient observer sees the same
	// counters anyway (Theorem 1 consistency).
	PenaltySeries []*metrics.Series
}

// NewStepMetrics wires a StepMetrics to the registry under the standard
// protocol instrument names. A nil registry yields a StepMetrics whose
// instruments are all nil (every update a no-op); callers that want true
// zero overhead should skip SetMetrics entirely in that case.
func NewStepMetrics(reg *metrics.Registry) *StepMetrics {
	return &StepMetrics{
		Steps:          reg.Counter("protocol/steps"),
		VotesHealthy:   reg.Counter("vote/healthy"),
		VotesFaulty:    reg.Counter("vote/faulty"),
		VotesBottom:    reg.Counter("vote/bottom"),
		VotesTied:      reg.Counter("vote/tied"),
		Disagreements:  reg.Counter("matrix/disagreements"),
		Accusations:    reg.Counter("membership/accusations"),
		Isolations:     reg.Counter("pr/isolations"),
		Reintegrations: reg.Counter("pr/reintegrations"),
		PenaltyMax:     reg.Gauge("pr/penalty_max"),
	}
}

// SetMetrics attaches (or, with nil, detaches) the protocol's telemetry.
// The attachment survives Reset and ResetConfig so reusable campaign
// clusters keep accumulating across repetitions; pass nil to stop emitting.
// The instruments are updated from whichever goroutine calls Step, so in
// concurrent runtimes each protocol needs instruments from its own
// registry, merged after the run (see internal/metrics).
func (p *Protocol) SetMetrics(m *StepMetrics) { p.metrics = m }

// Metrics returns the attached telemetry, nil when none.
func (p *Protocol) Metrics() *StepMetrics { return p.metrics }

// emitStepMetrics records one execution's observations; called only when
// p.metrics != nil, after the round's counters are updated. Cold (not yet
// warm) executions emit the step count only — there is no matrix or health
// vector to classify.
func (p *Protocol) emitStepMetrics(out *RoundOutput, matrix *Matrix, warm bool) {
	m := p.metrics
	m.Steps.Inc()
	m.Accusations.Add(int64(len(out.Accused)))
	m.Isolations.Add(int64(len(out.Isolated)))
	m.Reintegrations.Add(int64(len(out.Reintegrated)))
	if !warm || matrix == nil {
		return
	}
	n := p.cfg.N
	for j := 1; j <= n; j++ {
		faulty, healthy := matrix.Tally(j)
		switch {
		case faulty+healthy == 0:
			m.VotesBottom.Inc()
		case faulty > healthy:
			m.VotesFaulty.Inc()
		default:
			m.VotesHealthy.Inc()
			if faulty == healthy && faulty > 0 {
				m.VotesTied.Inc()
			}
		}
	}
	if out.ConsHV != nil {
		m.Disagreements.Add(int64(matrix.DisagreementCount(out.ConsHV)))
	}
	var maxPen int64
	for j := 1; j <= n; j++ {
		if v := p.pr.penalties[j]; v > maxPen {
			maxPen = v
		}
	}
	m.PenaltyMax.Observe(maxPen)
	if m.PenaltySeries != nil {
		round := int64(out.DiagnosedRound)
		for j := 1; j <= n && j < len(m.PenaltySeries); j++ {
			m.PenaltySeries[j].Append(round, p.pr.penalties[j])
		}
	}
}
