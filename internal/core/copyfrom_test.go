package core

import (
	"bytes"
	"fmt"
	"testing"

	"ttdiag/internal/rng"
)

// copyFromTape records a disturbed membership-mode input sequence so the
// original, the zero-copy clone, and the JSON-restored twin all see
// identical observations.
func copyFromTape(seed int64, n, rounds int) []RoundInput {
	st := rng.NewStream(seed)
	tape := make([]RoundInput, rounds)
	for k := range tape {
		in := RoundInput{
			Round:    k,
			DMs:      make([]Syndrome, n+1),
			Validity: NewSyndrome(n, Healthy),
		}
		for j := 1; j <= n; j++ {
			if st.Bool(0.2) {
				in.Validity[j] = Faulty
				continue
			}
			s := NewSyndrome(n, Healthy)
			for m := 1; m <= n; m++ {
				if st.Bool(0.15) {
					s[m] = Faulty
				}
			}
			in.DMs[j] = s
		}
		tape[k] = in
	}
	return tape
}

// TestCopyFromMatchesJSONRestore is the differential pin for the zero-copy
// checkpoint path: at every step of a disturbed membership-mode run, a clone
// produced by CopyFrom must serialise byte-identically to the original's
// Snapshot — and to the Snapshot of a twin restored from that JSON — on both
// the packed and the scalar representation. The clone is also built from a
// different same-shape configuration, pinning that CopyFrom adopts src's.
func TestCopyFromMatchesJSONRestore(t *testing.T) {
	const n, rounds = 4, 24
	cfg := Config{
		N: n, ID: 2, L: 0, SendCurrRound: true, Mode: ModeMembership,
		PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 4, ReintegrationThreshold: 6},
	}
	// A valid but different same-N configuration for the clone instance.
	cloneCfg := Config{
		N: n, ID: 3, L: 3, SendCurrRound: false,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
	}
	for _, packed := range []bool{true, false} {
		t.Run(fmt.Sprintf("packed=%v", packed), func(t *testing.T) {
			original, err := newProtocol(cfg, packed)
			if err != nil {
				t.Fatal(err)
			}
			clone, err := newProtocol(cloneCfg, packed)
			if err != nil {
				t.Fatal(err)
			}
			tape := copyFromTape(77, n, rounds)
			for k := 0; k < rounds; k++ {
				if _, err := original.Step(tape[k]); err != nil {
					t.Fatalf("round %d: %v", k, err)
				}
				want, err := original.Snapshot()
				if err != nil {
					t.Fatalf("round %d: snapshot: %v", k, err)
				}
				if err := clone.CopyFrom(original); err != nil {
					t.Fatalf("round %d: CopyFrom: %v", k, err)
				}
				got, err := clone.Snapshot()
				if err != nil {
					t.Fatalf("round %d: clone snapshot: %v", k, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d: clone snapshot diverged\n clone: %s\n  orig: %s", k, got, want)
				}
				jsonTwin, err := RestoreProtocol(want)
				if err != nil {
					t.Fatalf("round %d: restore: %v", k, err)
				}
				twinSnap, err := jsonTwin.Snapshot()
				if err != nil {
					t.Fatalf("round %d: twin snapshot: %v", k, err)
				}
				if !bytes.Equal(twinSnap, want) {
					t.Fatalf("round %d: JSON twin snapshot diverged\n  twin: %s\n  orig: %s", k, twinSnap, want)
				}
			}
		})
	}
}

// TestCopyFromContinuation checks behavioural equivalence after the copy: a
// clone checkpointed mid-run steps in lock-step with the original on the
// remaining tape, then keeps working after the two diverge (the clone is
// re-stepped on a shifted tape without disturbing the original).
func TestCopyFromContinuation(t *testing.T) {
	const n, rounds, checkpointAt = 4, 24, 10
	cfg := Config{
		N: n, ID: 2, L: 0, SendCurrRound: true, Mode: ModeMembership,
		PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 4, ReintegrationThreshold: 6},
	}
	original, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tape := copyFromTape(31, n, rounds)
	for k := 0; k < rounds; k++ {
		outO, err := original.Step(tape[k])
		if err != nil {
			t.Fatal(err)
		}
		if k == checkpointAt {
			if err := clone.CopyFrom(original); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if k > checkpointAt {
			outC, err := clone.Step(tape[k])
			if err != nil {
				t.Fatal(err)
			}
			if !outC.SendSyndrome.Equal(outO.SendSyndrome) {
				t.Fatalf("round %d: send %v != %v", k, outC.SendSyndrome, outO.SendSyndrome)
			}
			if (outC.ConsHV == nil) != (outO.ConsHV == nil) {
				t.Fatalf("round %d: warm-up divergence", k)
			}
			if outC.ConsHV != nil && !outC.ConsHV.Equal(outO.ConsHV) {
				t.Fatalf("round %d: cons_hv %v != %v", k, outC.ConsHV, outO.ConsHV)
			}
			for j := 1; j <= n; j++ {
				if clone.PenaltyReward().Penalty(j) != original.PenaltyReward().Penalty(j) {
					t.Fatalf("round %d: penalty(%d) diverged", k, j)
				}
				if clone.PenaltyReward().IsActive(j) != original.PenaltyReward().IsActive(j) {
					t.Fatalf("round %d: activity(%d) diverged", k, j)
				}
			}
		}
	}
	// The copy must not entangle the instances: replaying the clone from its
	// own cursor with different inputs leaves the original untouched.
	wantSnap, err := original.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	divergent := copyFromTape(99, n, rounds+8)
	for k := rounds; k < rounds+8; k++ {
		in := divergent[k]
		in.Round = k
		if _, err := clone.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	gotSnap, err := original.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Fatal("stepping the clone mutated the original")
	}
	// A clone checkpointed after Step(k) must reject a replay of round 0.
	if err := clone.CopyFrom(original); err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Step(tape[0]); err == nil {
		t.Fatal("cloned protocol accepted an out-of-sequence round")
	}
}

func TestCopyFromRejectsShapeMismatch(t *testing.T) {
	mk := func(n int, packed bool) *Protocol {
		cfg := Config{
			N: n, ID: 1, L: 0, SendCurrRound: true,
			PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
		}
		p, err := newProtocol(cfg, packed)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := mk(4, true).CopyFrom(mk(5, true)); err == nil {
		t.Fatal("copy across system sizes must fail")
	}
	if err := mk(4, true).CopyFrom(mk(4, false)); err == nil {
		t.Fatal("copy across representations must fail")
	}
	p := mk(4, true)
	if err := p.CopyFrom(p); err != nil {
		t.Fatalf("self-copy must be a no-op, got %v", err)
	}
}

// TestBatchCopyFromContinuation is the gang-path equivalent: a batch clone
// checkpointed mid-run must agree with the original on every subsequent
// output value and serialise every lane byte-identically.
func TestBatchCopyFromContinuation(t *testing.T) {
	const n, lanes, rounds, checkpointAt = 4, 3, 32, 12
	cfg := Config{
		N: n, ID: 2, L: 2, SendCurrRound: false, Mode: ModeDiagnostic,
		PR: PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
	}
	gang, err := NewBatchProtocol(cfg, lanes)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := NewBatchProtocol(cfg, lanes)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]*rng.Stream, lanes)
	for r := range streams {
		streams[r] = rng.NewStream(int64(4200 + r))
	}
	laneIns := make([]PackedRoundInput, lanes)
	mkInput := func(round int) BatchRoundInput {
		var collisionFaulty uint64
		for r := range laneIns {
			if (round+r)%5 == 0 {
				collisionFaulty |= 1 << uint(r)
			}
			laneIns[r] = randomPackedInput(streams[r], n, round, nil)
		}
		return packGangInput(n, round, laneIns, collisionFaulty)
	}
	for k := 0; k < rounds; k++ {
		in := mkInput(k)
		outO, err := gang.StepBatch(in)
		if err != nil {
			t.Fatalf("round %d: %v", k, err)
		}
		if k == checkpointAt {
			if err := clone.CopyFrom(gang); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if k > checkpointAt {
			outC, err := clone.StepBatch(in)
			if err != nil {
				t.Fatalf("round %d: clone: %v", k, err)
			}
			if outC != outO {
				t.Fatalf("round %d: gang outputs diverged\nclone: %+v\n orig: %+v", k, outC, outO)
			}
			for lane := 0; lane < lanes; lane++ {
				got, err := clone.SnapshotLane(lane)
				if err != nil {
					t.Fatal(err)
				}
				want, err := gang.SnapshotLane(lane)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d lane %d: snapshots diverged", k, lane)
				}
			}
		}
	}
}

func TestBatchCopyFromRejectsSizeMismatch(t *testing.T) {
	mk := func(n int) *BatchProtocol {
		cfg := Config{
			N: n, ID: 1, L: n - 1, SendCurrRound: false,
			PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
		}
		p, err := NewBatchProtocol(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := mk(4).CopyFrom(mk(5)); err == nil {
		t.Fatal("batch copy across system sizes must fail")
	}
	p := mk(4)
	if err := p.CopyFrom(p); err != nil {
		t.Fatalf("batch self-copy must be a no-op, got %v", err)
	}
}
