package core

import (
	"encoding/json"
	"fmt"
)

// The snapshot DTOs capture every field of the protocol state machine, so a
// node restarted by its host OS can resume its diagnostic job exactly where
// it stopped (same buffers, same counters) instead of rejoining with amnesia
// — the checkpointing hook a production middleware needs.

type protocolSnapshot struct {
	Config Config           `json:"config"`
	Steps  int              `json:"steps"`
	PR     prSnapshot       `json:"pr"`
	PrevDM map[int]Syndrome `json:"prevDM,omitempty"`

	PrevLS     Syndrome `json:"prevLS"`
	PrevAlLS   Syndrome `json:"prevAlLS"`
	LastSent   Syndrome `json:"lastSent"`
	PrevSent   Syndrome `json:"prevSent"`
	Accuse     []int    `json:"accuse"`
	AccusedAge []int    `json:"accusedAge"`
}

type prSnapshot struct {
	Penalties []int64 `json:"penalties"`
	Rewards   []int64 `json:"rewards"`
	Active    []bool  `json:"active"`
	Observe   []int64 `json:"observe"`
}

// Snapshot serialises the protocol's full state (configuration, alignment
// buffers, accusation state and penalty/reward counters) to JSON. The wire
// format is unchanged from the pre-double-buffering layout: only the buffer
// the next Step will read (the previous round's observations) is captured.
func (p *Protocol) Snapshot() ([]byte, error) {
	snap := protocolSnapshot{
		Config:     p.cfg,
		Steps:      p.steps,
		LastSent:   p.lastSent,
		PrevSent:   p.prevSent,
		Accuse:     p.accuse,
		AccusedAge: p.accusedAge,
		PR: prSnapshot{
			Penalties: p.pr.penalties,
			Rewards:   p.pr.rewards,
			Active:    p.pr.active,
			Observe:   p.pr.observe,
		},
	}
	snap.PrevDM = make(map[int]Syndrome)
	n := p.cfg.N
	if p.packed {
		// The packed alignment state materialises to the exact scalar form:
		// the JSON bytes are identical to a scalar-path snapshot.
		rd := &p.pbufs[p.steps&1]
		snap.PrevLS = rd.ls.Unpack(n)
		snap.PrevAlLS = rd.al.Unpack(n)
		for j := 1; j <= n; j++ {
			if rd.set&(1<<uint(j-1)) != 0 {
				snap.PrevDM[j] = rd.rows[j].Unpack(n)
			}
		}
	} else {
		rd := &p.bufs[p.steps&1]
		snap.PrevLS = rd.ls
		snap.PrevAlLS = rd.al
		for j := 1; j <= n; j++ {
			if rd.set[j] {
				snap.PrevDM[j] = rd.dm[j]
			}
		}
	}
	return json.Marshal(snap)
}

// RestoreProtocol rebuilds a protocol instance from a Snapshot. The restored
// instance continues at the next round after the snapshot was taken.
func RestoreProtocol(data []byte) (*Protocol, error) {
	// The round cursor is decoded through a pointer shadow so a checkpoint
	// that lost its "steps" field is rejected instead of silently resuming
	// from round zero — which would replay rounds the cluster already
	// executed and desynchronise the node from its peers. The embedded
	// struct keeps every other field's decoding (and Snapshot's wire bytes)
	// unchanged.
	var wire struct {
		protocolSnapshot
		Steps *int `json:"steps"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if wire.Steps == nil {
		return nil, fmt.Errorf("core: restore: checkpoint has no round cursor (missing \"steps\")")
	}
	if *wire.Steps < 0 {
		return nil, fmt.Errorf("core: restore: negative round cursor (steps = %d)", *wire.Steps)
	}
	snap := wire.protocolSnapshot
	snap.Steps = *wire.Steps
	p, err := NewProtocol(snap.Config)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	n := snap.Config.N
	check := func(name string, s Syndrome) error {
		if s.N() != n {
			return fmt.Errorf("core: restore: %s covers %d nodes, want %d", name, s.N(), n)
		}
		return nil
	}
	// Iterated as an ordered slice, not a map: which syndrome's error is
	// reported must not depend on map-iteration order (no-map-range-state).
	for _, it := range []struct {
		name string
		s    Syndrome
	}{
		{"prevLS", snap.PrevLS}, {"prevAlLS", snap.PrevAlLS},
		{"lastSent", snap.LastSent}, {"prevSent", snap.PrevSent},
	} {
		if err := check(it.name, it.s); err != nil {
			return nil, err
		}
	}
	if len(snap.Accuse) != n+1 || len(snap.AccusedAge) != n+1 {
		return nil, fmt.Errorf("core: restore: accusation state has wrong size")
	}
	if len(snap.PR.Penalties) != n+1 || len(snap.PR.Rewards) != n+1 ||
		len(snap.PR.Active) != n+1 || len(snap.PR.Observe) != n+1 {
		return nil, fmt.Errorf("core: restore: penalty/reward state has wrong size")
	}
	p.steps = snap.Steps
	p.lastSent = snap.LastSent
	p.prevSent = snap.PrevSent
	p.accuse = snap.Accuse
	p.accusedAge = snap.AccusedAge
	// Fill the buffer the next Step will read; the other buffer is dead
	// state (it is fully rewritten before it is ever read again).
	if p.packed {
		rd := &p.pbufs[p.steps&1]
		rd.ls = packSyndrome(snap.PrevLS)
		rd.al = packSyndrome(snap.PrevAlLS)
		rd.set = 0
		for j := 1; j <= n; j++ {
			if dm, ok := snap.PrevDM[j]; ok {
				if err := check("prevDM", dm); err != nil {
					return nil, err
				}
				rd.rows[j] = packSyndrome(dm)
				rd.set |= 1 << uint(j-1)
			}
		}
		p.lastSentP = packSyndrome(snap.LastSent)
		p.prevSentP = packSyndrome(snap.PrevSent)
	} else {
		rd := &p.bufs[p.steps&1]
		copy(rd.ls, snap.PrevLS)
		copy(rd.al, snap.PrevAlLS)
		for j := 1; j <= n; j++ {
			if dm, ok := snap.PrevDM[j]; ok {
				if err := check("prevDM", dm); err != nil {
					return nil, err
				}
				copy(rd.dm[j], dm)
				rd.set[j] = true
			} else {
				rd.set[j] = false
			}
		}
	}
	p.rebuildAccusationMasks()
	p.pr.penalties = snap.PR.Penalties
	p.pr.rewards = snap.PR.Rewards
	p.pr.active = snap.PR.Active
	p.pr.observe = snap.PR.Observe
	p.pr.rebuildMasks()
	return p, nil
}
