package core

import (
	"bytes"
	"fmt"
	"testing"

	"ttdiag/internal/rng"
)

// stepEquivCase is one protocol configuration of the packed-vs-scalar
// differential test.
type stepEquivCase struct {
	name string
	cfg  Config
}

func stepEquivCases() []stepEquivCase {
	var cases []stepEquivCase
	for _, n := range []int{2, 4, 7, 16, 33, 64} {
		id := 1 + n/2
		cases = append(cases,
			stepEquivCase{
				name: fmt.Sprintf("diag_n%d", n),
				cfg: Config{
					// L >= ID: the job runs after the node's slot.
					N: n, ID: n / 2, L: n / 2, SendCurrRound: false,
					Mode: ModeDiagnostic,
					PR:   PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
				},
			},
			stepEquivCase{
				name: fmt.Sprintf("membership_n%d", n),
				cfg: Config{
					N: n, ID: id, L: id - 1, SendCurrRound: true, AllSendCurrRound: true,
					Mode: ModeMembership, StartRound: 5,
					PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 2, ReintegrationThreshold: 4},
				},
			},
			stepEquivCase{
				name: fmt.Sprintf("dynamic_n%d", n),
				cfg: Config{
					N: n, ID: id, Dynamic: true, SendCurrRound: true,
					Mode: ModeDiagnostic,
					PR:   PRConfig{PenaltyThreshold: 3, RewardThreshold: 2, ReintegrationThreshold: 3},
				},
			},
		)
	}
	return cases
}

// randomStepInput draws one round input; both protocols receive the same
// slices (Step copies everything in before mutating state).
func randomStepInput(st *rng.Stream, n, round int) RoundInput {
	in := RoundInput{
		Round:    round,
		DMs:      make([]Syndrome, n+1),
		Validity: NewSyndrome(n, Healthy),
		Collision: func(r int) Opinion {
			if r%5 == 0 {
				return Faulty
			}
			return Healthy
		},
	}
	for j := 1; j <= n; j++ {
		switch {
		case st.Bool(0.15): // ε: nothing received
			in.Validity[j] = Faulty
		case st.Bool(0.05): // stressing an out-of-spec validity entry
			in.Validity[j] = Erased
			in.DMs[j] = randomSyndrome(st, n, 0.2)
		default:
			in.DMs[j] = randomSyndrome(st, n, 0.2)
		}
	}
	return in
}

func diffRoundOutputs(t *testing.T, tag string, p, s RoundOutput) {
	t.Helper()
	fail := func(field string, pv, sv interface{}) {
		t.Fatalf("%s: %s diverged: packed %v, scalar %v", tag, field, pv, sv)
	}
	if p.Round != s.Round {
		fail("Round", p.Round, s.Round)
	}
	if p.DiagnosedRound != s.DiagnosedRound {
		fail("DiagnosedRound", p.DiagnosedRound, s.DiagnosedRound)
	}
	if !bytes.Equal(p.Send, s.Send) {
		fail("Send", p.Send, s.Send)
	}
	if !p.SendSyndrome.Equal(s.SendSyndrome) {
		fail("SendSyndrome", p.SendSyndrome, s.SendSyndrome)
	}
	if (p.ConsHV == nil) != (s.ConsHV == nil) || (p.ConsHV != nil && !p.ConsHV.Equal(s.ConsHV)) {
		fail("ConsHV", p.ConsHV, s.ConsHV)
	}
	if p.ConsHVBits != s.ConsHVBits {
		fail("ConsHVBits", p.ConsHVBits, s.ConsHVBits)
	}
	if (p.Matrix == nil) != (s.Matrix == nil) {
		fail("Matrix presence", p.Matrix != nil, s.Matrix != nil)
	}
	if p.Matrix != nil && p.Matrix.String() != s.Matrix.String() {
		fail("Matrix", "\n"+p.Matrix.String(), "\n"+s.Matrix.String())
	}
	if !intsEqual(p.Isolated, s.Isolated) {
		fail("Isolated", p.Isolated, s.Isolated)
	}
	if !intsEqual(p.Reintegrated, s.Reintegrated) {
		fail("Reintegrated", p.Reintegrated, s.Reintegrated)
	}
	if !intsEqual(p.Accused, s.Accused) {
		fail("Accused", p.Accused, s.Accused)
	}
	if len(p.Active) != len(s.Active) {
		fail("Active length", len(p.Active), len(s.Active))
	}
	for j := range p.Active {
		if p.Active[j] != s.Active[j] {
			fail(fmt.Sprintf("Active[%d]", j), p.Active[j], s.Active[j])
		}
	}
	if p.ActiveMask != s.ActiveMask {
		fail("ActiveMask", p.ActiveMask, s.ActiveMask)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPackedScalarStepEquivalence runs the bit-plane and scalar-reference
// implementations of the protocol side by side on identical random inputs —
// ε rows, erased entries, asymmetric malicious opinions, accusation cascades,
// isolations and reintegrations — and requires every RoundOutput field, the
// rendered diagnostic matrix and the snapshot JSON to agree byte for byte on
// every round. A snapshot/restore round-trip mid-run must resume identically.
func TestPackedScalarStepEquivalence(t *testing.T) {
	const rounds = 48
	for _, tc := range stepEquivCases() {
		t.Run(tc.name, func(t *testing.T) {
			packed, err := newProtocol(tc.cfg, true)
			if err != nil {
				t.Fatalf("packed: %v", err)
			}
			scalar, err := newProtocol(tc.cfg, false)
			if err != nil {
				t.Fatalf("scalar: %v", err)
			}
			if !packed.Packed() || scalar.Packed() {
				t.Fatalf("representation selection broken: packed=%v scalar=%v", packed.Packed(), scalar.Packed())
			}
			st := rng.NewStream(int64(1000 + tc.cfg.N + int(tc.cfg.Mode)*7))
			var restored *Protocol
			for r := 0; r < rounds; r++ {
				round := tc.cfg.StartRound + r
				in := randomStepInput(st, tc.cfg.N, round)
				pOut, pErr := packed.Step(in)
				sOut, sErr := scalar.Step(in)
				if (pErr == nil) != (sErr == nil) {
					t.Fatalf("round %d: error divergence: packed %v, scalar %v", round, pErr, sErr)
				}
				if pErr != nil {
					continue
				}
				diffRoundOutputs(t, fmt.Sprintf("round %d", round), pOut, sOut)
				if restored != nil {
					rOut, rErr := restored.Step(in)
					if rErr != nil {
						t.Fatalf("round %d: restored: %v", round, rErr)
					}
					diffRoundOutputs(t, fmt.Sprintf("round %d (restored)", round), rOut, sOut)
				}
				pSnap, err := packed.Snapshot()
				if err != nil {
					t.Fatalf("round %d: packed snapshot: %v", round, err)
				}
				sSnap, err := scalar.Snapshot()
				if err != nil {
					t.Fatalf("round %d: scalar snapshot: %v", round, err)
				}
				if !bytes.Equal(pSnap, sSnap) {
					t.Fatalf("round %d: snapshot JSON diverged:\npacked %s\nscalar %s", round, pSnap, sSnap)
				}
				if r == rounds/2 {
					restored, err = RestoreProtocol(pSnap)
					if err != nil {
						t.Fatalf("round %d: restore: %v", round, err)
					}
				}
			}
		})
	}
}

// TestPackedStepRejectsWideSystems pins the StepPacked bound error and the
// constructor's automatic representation choice beyond MaxPackedN.
func TestPackedStepRejectsWideSystems(t *testing.T) {
	cfg := Config{N: MaxPackedN + 1, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}}
	p, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Packed() {
		t.Fatalf("NewProtocol(%d nodes) must select the scalar representation", cfg.N)
	}
	if _, err := p.StepPacked(PackedRoundInput{Round: 0}); err == nil {
		t.Fatalf("StepPacked must fail on a scalar-representation protocol")
	}
}
