package core

import (
	"bytes"
	"testing"
)

// FuzzDecodeSyndrome checks that decoding never panics and that every
// successfully decoded syndrome re-encodes to the same bytes (the wire
// format is canonical).
func FuzzDecodeSyndrome(f *testing.F) {
	f.Add([]byte{0xff}, 4)
	f.Add([]byte{0x00, 0x01}, 9)
	f.Add([]byte{}, 2)
	f.Add([]byte{0xaa, 0x55, 0x0f}, 20)
	f.Fuzz(func(t *testing.T, data []byte, nRaw int) {
		n := nRaw%128 + 1
		if n < 0 {
			n = -n
		}
		s, err := DecodeSyndrome(data, n)
		if err != nil {
			return
		}
		if s.N() != n {
			t.Fatalf("decoded syndrome covers %d nodes, want %d", s.N(), n)
		}
		re := s.Encode()
		// Canonical form: trailing padding bits beyond n must be zero in
		// the re-encoding; the original may have had garbage there, so
		// compare only the meaningful bits by re-decoding.
		s2, err := DecodeSyndrome(re, n)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if !s.Equal(s2) {
			t.Fatalf("decode/encode/decode not stable: %v vs %v", s, s2)
		}
		if !bytes.Equal(re, s2.Encode()) {
			t.Fatalf("encoding not canonical after first round trip")
		}
	})
}

// FuzzHMaj checks the voting invariants over arbitrary vote vectors: no
// panic, a decision iff any vote is non-ε, Faulty only on strict majority.
func FuzzHMaj(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{})
	f.Add([]byte{2, 2, 2, 2})
	f.Add([]byte{0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		votes := make([]Opinion, len(raw))
		var faulty, healthy int
		for i, b := range raw {
			votes[i] = Opinion(b % 3)
			switch votes[i] {
			case Faulty:
				faulty++
			case Healthy:
				healthy++
			}
		}
		v, ok := HMaj(votes)
		if ok != (faulty+healthy > 0) {
			t.Fatalf("decided=%v with %d non-erased votes", ok, faulty+healthy)
		}
		if !ok {
			return
		}
		if v == Faulty && faulty <= healthy {
			t.Fatalf("convicted without strict majority: %d vs %d", faulty, healthy)
		}
		if v == Healthy && faulty > healthy {
			t.Fatalf("acquitted against strict majority: %d vs %d", faulty, healthy)
		}
	})
}

// FuzzProtocolStep drives a protocol instance with arbitrary (but
// well-formed) inputs derived from fuzz data: it must never panic and must
// preserve its internal invariants (health vectors always fully decided
// after warm-up).
func FuzzProtocolStep(f *testing.F) {
	f.Add([]byte{0x00, 0xff, 0x13, 0x37}, uint8(0))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, lRaw uint8) {
		const n = 4
		l := int(lRaw) % n
		p, err := NewProtocol(Config{
			N: n, ID: 2, L: l, SendCurrRound: l < 2,
			PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[pos%len(data)]
			pos++
			return b
		}
		for round := 0; round < 12; round++ {
			in := RoundInput{
				Round:    round,
				DMs:      make([]Syndrome, n+1),
				Validity: NewSyndrome(n, Healthy),
			}
			for j := 1; j <= n; j++ {
				b := next()
				if b&0x80 != 0 {
					in.Validity[j] = Faulty
					continue
				}
				s := NewSyndrome(n, Healthy)
				for m := 1; m <= n; m++ {
					if b&(1<<uint(m)) != 0 {
						s[m] = Faulty
					}
				}
				in.DMs[j] = s
			}
			out, err := p.Step(in)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if round >= 3 && out.ConsHV == nil {
				t.Fatalf("round %d: no health vector after warm-up", round)
			}
			if out.ConsHV != nil {
				for j := 1; j <= n; j++ {
					if out.ConsHV[j] != Faulty && out.ConsHV[j] != Healthy {
						t.Fatalf("round %d: undecided entry %d", round, j)
					}
				}
			}
		}
	})
}
