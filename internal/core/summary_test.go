package core

import (
	"bytes"
	"testing"
)

func TestShardSummaryRoundTrip(t *testing.T) {
	cases := []ShardSummary{
		{Size: 1, Isolated: 0, Faulty: 0},
		{Size: 4, Isolated: 1, Faulty: 2},
		{Size: 17, Isolated: 17, Faulty: 0},
		{Size: MaxPackedN, Isolated: 31, Faulty: MaxPackedN},
	}
	for _, want := range cases {
		buf, err := want.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", want, err)
		}
		if len(buf) != SummaryWireLen {
			t.Fatalf("Encode(%+v) wrote %d bytes, want %d", want, len(buf), SummaryWireLen)
		}
		got, err := DecodeShardSummary(buf)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		var into [SummaryWireLen]byte
		if err := want.EncodeInto(into[:]); err != nil {
			t.Fatalf("EncodeInto(%+v): %v", want, err)
		}
		if !bytes.Equal(into[:], buf) {
			t.Errorf("EncodeInto(%+v) = %x, Encode = %x", want, into, buf)
		}
	}
}

func TestShardSummaryValidation(t *testing.T) {
	bad := []ShardSummary{
		{Size: 0},
		{Size: MaxPackedN + 1},
		{Size: 4, Isolated: 5},
		{Size: 4, Isolated: -1},
		{Size: 4, Faulty: 5},
		{Size: 4, Faulty: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", s)
		}
		if _, err := s.Encode(); err == nil {
			t.Errorf("Encode(%+v): want error", s)
		}
	}
	if err := (ShardSummary{Size: 4}).EncodeInto(make([]byte, 2)); err == nil {
		t.Error("EncodeInto with a short buffer: want error")
	}
	if _, err := DecodeShardSummary([]byte{1, 2}); err == nil {
		t.Error("Decode of a short payload: want error")
	}
	// An over-range field survives the 7-bit packing but fails decode-side
	// validation: Isolated = 65 > Size = 64.
	w := uint32(64) | uint32(65)<<7
	if _, err := DecodeShardSummary([]byte{byte(w), byte(w >> 8), byte(w >> 16)}); err == nil {
		t.Error("Decode of an inconsistent summary: want error")
	}
}

func TestShardSummaryHealth(t *testing.T) {
	cases := []struct {
		s    ShardSummary
		want Opinion
	}{
		{ShardSummary{}, Erased},
		{ShardSummary{Size: 8}, Healthy},
		{ShardSummary{Size: 8, Isolated: 3}, Healthy},
		{ShardSummary{Size: 8, Isolated: 4}, Faulty},
		{ShardSummary{Size: 8, Isolated: 8}, Faulty},
		{ShardSummary{Size: 1, Isolated: 0}, Healthy},
		{ShardSummary{Size: 1, Isolated: 1}, Faulty},
	}
	for _, c := range cases {
		if got := c.s.Health(); got != c.want {
			t.Errorf("Health(%+v) = %v, want %v", c.s, got, c.want)
		}
	}
	if (ShardSummary{Size: 8, Faulty: 1}).Degraded() != true {
		t.Error("Degraded: faulty shard not flagged")
	}
	if (ShardSummary{Size: 8}).Degraded() {
		t.Error("Degraded: clean shard flagged")
	}
}
