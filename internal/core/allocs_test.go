// Allocation-ceiling regression tests for the protocol hot path. The race
// detector instruments allocations and testing.AllocsPerRun becomes
// meaningless under it, so this file is excluded from -race builds.

//go:build !race

package core

import (
	"testing"

	"ttdiag/internal/invariant"
)

// TestProtocolStepAllocs pins the steady-state allocation budget of one
// protocol execution: the retained per-round block (matrix cells, consistent
// health vector and dissemination syndrome share one backing array) plus the
// matrix row-header slice — everything else is reused across rounds.
func TestProtocolStepAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	const n = 4
	p, err := NewProtocol(Config{
		N: n, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	dms := make([]Syndrome, n+1)
	for j := 1; j <= n; j++ {
		dms[j] = NewSyndrome(n, Healthy)
	}
	validity := NewSyndrome(n, Healthy)
	collision := func(int) Opinion { return Healthy }
	round := 0
	step := func() {
		in := RoundInput{Round: round, DMs: dms, Validity: validity, Collision: collision}
		if _, err := p.Step(in); err != nil {
			t.Fatal(err)
		}
		round++
	}
	// Warm past the diagnosis lag so every measured Step emits a full round
	// output.
	for i := 0; i < 16; i++ {
		step()
	}
	const ceiling = 2
	if avg := testing.AllocsPerRun(200, step); avg > ceiling {
		t.Fatalf("Step allocates %.2f objects/round in steady state, ceiling %d", avg, ceiling)
	}
}
