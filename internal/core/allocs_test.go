// Allocation-ceiling regression tests for the protocol hot path. The race
// detector instruments allocations and testing.AllocsPerRun becomes
// meaningless under it, so this file is excluded from -race builds.

//go:build !race

package core

import (
	"fmt"
	"testing"

	"ttdiag/internal/invariant"
	"ttdiag/internal/metrics"
)

// stepAllocProtocol builds a steady-state protocol plus a step closure for
// the allocation measurements below. withMetrics attaches the full
// StepMetrics instrument set (counters, gauge — the fixed-cost telemetry
// every campaign run carries when metrics are on).
func stepAllocProtocol(t *testing.T, n int, packed, withMetrics bool) func() {
	t.Helper()
	p, err := newProtocol(Config{
		N: n, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
	}, packed)
	if err != nil {
		t.Fatal(err)
	}
	if withMetrics {
		p.SetMetrics(NewStepMetrics(metrics.New()))
	}
	dms := make([]Syndrome, n+1)
	for j := 1; j <= n; j++ {
		dms[j] = NewSyndrome(n, Healthy)
	}
	validity := NewSyndrome(n, Healthy)
	collision := func(int) Opinion { return Healthy }
	round := 0
	return func() {
		in := RoundInput{Round: round, DMs: dms, Validity: validity, Collision: collision}
		if _, err := p.Step(in); err != nil {
			t.Fatal(err)
		}
		round++
	}
}

// TestProtocolStepAllocs pins the steady-state allocation budget of one
// protocol execution. On the packed path the entire retained round output —
// matrix planes, consistent health vector and dissemination syndrome — is one
// fixed-size block, so the budget is a single allocation per Step; the scalar
// reference pays one more for the matrix row-header.
func TestProtocolStepAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	cases := []struct {
		name        string
		n           int
		packed      bool
		withMetrics bool
		ceiling     float64
	}{
		{"packed_n4", 4, true, false, 1},
		{"packed_n64", 64, true, false, 1},
		{"scalar_n4", 4, false, false, 2},
		// Telemetry attached: the instruments are preallocated int64 cells
		// updated in place, so the ceilings do not move.
		{"packed_n4_metrics", 4, true, true, 1},
		{"packed_n64_metrics", 64, true, true, 1},
		{"scalar_n4_metrics", 4, false, true, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			step := stepAllocProtocol(t, tc.n, tc.packed, tc.withMetrics)
			// Warm past the diagnosis lag so every measured Step emits a
			// full round output.
			for i := 0; i < 16; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(200, step); avg > tc.ceiling {
				t.Fatalf("Step allocates %.2f objects/round in steady state, ceiling %.0f", avg, tc.ceiling)
			}
		})
	}
}

// stepBatchAlloc builds a full-width steady-state gang plus a step closure
// for the batched allocation measurement.
func stepBatchAlloc(t *testing.T, n int, withMetrics bool) func() {
	t.Helper()
	lanes := BatchLanes(n)
	p, err := NewBatchProtocol(Config{
		N: n, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
	}, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if withMetrics {
		for r := 0; r < lanes; r++ {
			p.SetLaneMetrics(r, NewStepMetrics(metrics.New()))
		}
	}
	allB := p.allB
	rows := make([]BitSyndrome, n+1)
	for j := 1; j <= n; j++ {
		rows[j] = BitSyndrome{Op: allB, Known: allB}
	}
	validity := BitSyndrome{Op: allB, Known: allB}
	round := 0
	return func() {
		in := BatchRoundInput{Round: round, Rows: rows, Present: allB, Validity: validity}
		if _, err := p.StepBatch(in); err != nil {
			t.Fatal(err)
		}
		round++
	}
}

// TestStepBatchAllocs pins the batched hot path at zero steady-state
// allocations: every gang output is returned by value and all lane state
// lives in preallocated planes, so advancing ⌊64/N⌋ runs costs no heap
// traffic at all. The enforced ceiling is 1 (the satellite's contract);
// the expected value is 0.
func TestStepBatchAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	for _, tc := range []struct {
		name        string
		n           int
		withMetrics bool
	}{
		{"n4", 4, false},
		{"n16", 16, false},
		{"n4_metrics", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			step := stepBatchAlloc(t, tc.n, tc.withMetrics)
			for i := 0; i < 16; i++ {
				step()
			}
			if avg := testing.AllocsPerRun(200, step); avg > 1 {
				t.Fatalf("StepBatch allocates %.2f objects/round in steady state, ceiling 1", avg)
			}
		})
	}
}

// TestVoteAllAllocs pins the word-parallel voting kernel and the packed row
// write at zero allocations.
func TestVoteAllAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	for _, n := range []int{4, 64} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			m, err := NewPackedMatrix(n)
			if err != nil {
				t.Fatal(err)
			}
			row := bitSyndromeAllHealthy(n)
			for j := 1; j <= n; j++ {
				if err := m.SetBitRow(j, row); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(200, func() {
				if _, err := m.VoteAll(); err != nil {
					t.Fatal(err)
				}
			}); avg > 0 {
				t.Fatalf("VoteAll allocates %.2f objects/op, want 0", avg)
			}
			j := 1
			if avg := testing.AllocsPerRun(200, func() {
				if err := m.SetBitRow(j, row); err != nil {
					t.Fatal(err)
				}
				j = j%n + 1
			}); avg > 0 {
				t.Fatalf("SetBitRow allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// TestCopyFromAllocs pins the zero-copy checkpoint path at exactly zero
// steady-state allocations, on both representations and on the gang path —
// the property that lets splitting clones checkpoint at every level
// crossing without touching the allocator.
func TestCopyFromAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	cfg := Config{
		N: 4, ID: 2, L: 0, SendCurrRound: true, Mode: ModeMembership,
		PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 4, ReintegrationThreshold: 6},
	}
	for _, packed := range []bool{true, false} {
		t.Run(fmt.Sprintf("packed=%v", packed), func(t *testing.T) {
			src, err := newProtocol(cfg, packed)
			if err != nil {
				t.Fatal(err)
			}
			dst, err := newProtocol(cfg, packed)
			if err != nil {
				t.Fatal(err)
			}
			tape := copyFromTape(13, 4, 16)
			for _, in := range tape { // park src mid-run, warm state
				if _, err := src.Step(in); err != nil {
					t.Fatal(err)
				}
			}
			if err := dst.CopyFrom(src); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(200, func() {
				if err := dst.CopyFrom(src); err != nil {
					t.Fatal(err)
				}
			}); avg > 0 {
				t.Fatalf("Protocol.CopyFrom allocates %.2f objects/op in steady state, want 0", avg)
			}
		})
	}
	t.Run("batch", func(t *testing.T) {
		bcfg := Config{
			N: 4, ID: 2, L: 2, SendCurrRound: false,
			PR: PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
		}
		src, err := NewBatchProtocol(bcfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := NewBatchProtocol(bcfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(200, func() {
			if err := dst.CopyFrom(src); err != nil {
				t.Fatal(err)
			}
		}); avg > 0 {
			t.Fatalf("BatchProtocol.CopyFrom allocates %.2f objects/op, want 0", avg)
		}
	})
}
