package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
)

// batchEquivCase is one gang configuration of the lane-packed differential
// test (diagnostic mode only — the batch path's domain).
type batchEquivCase struct {
	name string
	cfg  Config
}

func batchEquivCases() []batchEquivCase {
	var cases []batchEquivCase
	for _, n := range []int{2, 4, 7, 8, 16, 33, 64} {
		id := 1 + n/2
		cases = append(cases,
			batchEquivCase{
				name: fmt.Sprintf("diag_n%d", n),
				cfg: Config{
					// L >= ID: the job runs after the node's slot.
					N: n, ID: n / 2, L: n / 2, SendCurrRound: false,
					Mode: ModeDiagnostic,
					PR:   PRConfig{PenaltyThreshold: 2, RewardThreshold: 3},
				},
			},
			batchEquivCase{
				name: fmt.Sprintf("allcurr_n%d", n),
				cfg: Config{
					N: n, ID: id, L: id - 1, SendCurrRound: true, AllSendCurrRound: true,
					Mode: ModeDiagnostic, StartRound: 5,
					PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 2, ReintegrationThreshold: 4},
				},
			},
			batchEquivCase{
				name: fmt.Sprintf("dynamic_n%d", n),
				cfg: Config{
					N: n, ID: id, Dynamic: true, SendCurrRound: true,
					Mode: ModeDiagnostic,
					PR:   PRConfig{PenaltyThreshold: 3, RewardThreshold: 2, ReintegrationThreshold: 3},
				},
			},
		)
	}
	return cases
}

// batchGangWidths picks the gang widths to exercise for an n-node system:
// a single lane, the full word, and a ragged width in between when one
// exists.
func batchGangWidths(n int) []int {
	max := BatchLanes(n)
	widths := []int{1}
	if mid := max/2 + 1; mid > 1 && mid < max {
		widths = append(widths, mid)
	}
	if max > 1 {
		widths = append(widths, max)
	}
	return widths
}

// randomPackedInput draws one per-run round input in packed form, covering
// the same observation space as randomStepInput: ε variables, out-of-spec
// validity entries, random opinions with erased cells.
func randomPackedInput(st *rng.Stream, n, round int, collision CollisionFn) PackedRoundInput {
	in := PackedRoundInput{
		Round:     round,
		Rows:      make([]BitSyndrome, n+1),
		Validity:  bitSyndromeAllHealthy(n),
		Collision: collision,
	}
	for j := 1; j <= n; j++ {
		switch {
		case st.Bool(0.15): // ε: nothing received
			in.Validity.Set(j, Faulty)
		case st.Bool(0.05): // stressing an out-of-spec validity entry
			in.Validity.Set(j, Erased)
			in.Rows[j] = packSyndrome(randomSyndrome(st, n, 0.2))
			in.Present |= 1 << uint(j-1)
		default:
			in.Rows[j] = packSyndrome(randomSyndrome(st, n, 0.2))
			in.Present |= 1 << uint(j-1)
		}
	}
	return in
}

// packGangInput folds per-lane packed inputs into one lane-packed gang
// input. collisionFaulty bit r carries lane r's collision verdict.
func packGangInput(n, round int, laneIns []PackedRoundInput, collisionFaulty uint64) BatchRoundInput {
	gang := BatchRoundInput{
		Round:           round,
		Rows:            make([]BitSyndrome, n+1),
		CollisionFaulty: collisionFaulty,
	}
	for lane, in := range laneIns {
		shift := uint(lane * n)
		gang.Present |= in.Present << shift
		gang.Validity.Op |= in.Validity.Op << shift
		gang.Validity.Known |= in.Validity.Known << shift
		for j := 1; j <= n; j++ {
			gang.Rows[j].Op |= in.Rows[j].Op << shift
			gang.Rows[j].Known |= in.Rows[j].Known << shift
		}
	}
	return gang
}

func intsToMask(xs []int) uint64 {
	var m uint64
	for _, j := range xs {
		m |= 1 << uint(j-1)
	}
	return m
}

// TestBatchStepEquivalence runs G per-run packed protocols and one gang
// BatchProtocol side by side on identical per-lane random inputs — ε rows,
// erased entries, per-lane collision verdicts, mixed isolation states across
// lanes — at every exercised gang width (single lane, ragged, full word),
// and requires lane-exact agreement on every output field, every per-lane
// metric value, and byte-identical per-lane snapshot JSON on every round.
func TestBatchStepEquivalence(t *testing.T) {
	const rounds = 48
	for _, tc := range batchEquivCases() {
		for _, lanes := range batchGangWidths(tc.cfg.N) {
			t.Run(fmt.Sprintf("%s_g%d", tc.name, lanes), func(t *testing.T) {
				n := tc.cfg.N
				gang, err := NewBatchProtocol(tc.cfg, lanes)
				if err != nil {
					t.Fatalf("batch: %v", err)
				}
				refs := make([]*Protocol, lanes)
				refRegs := make([]*metrics.Registry, lanes)
				laneRegs := make([]*metrics.Registry, lanes)
				for r := range refs {
					if refs[r], err = newProtocol(tc.cfg, true); err != nil {
						t.Fatalf("ref lane %d: %v", r, err)
					}
					refRegs[r] = metrics.New()
					laneRegs[r] = metrics.New()
					refs[r].SetMetrics(NewStepMetrics(refRegs[r]))
					gang.SetLaneMetrics(r, NewStepMetrics(laneRegs[r]))
				}
				streams := make([]*rng.Stream, lanes)
				for r := range streams {
					streams[r] = rng.NewStream(int64(9000 + 100*tc.cfg.N + 10*lanes + r))
				}
				laneIns := make([]PackedRoundInput, lanes)
				sendBuf := make([]byte, EncodedLen(n))
				refSendBuf := make([]byte, EncodedLen(n))
				for step := 0; step < rounds; step++ {
					round := tc.cfg.StartRound + step
					var collisionFaulty uint64
					for r := range laneIns {
						lane := r
						verdictFaulty := (round+lane)%5 == 0
						if verdictFaulty {
							collisionFaulty |= 1 << uint(lane)
						}
						laneIns[r] = randomPackedInput(streams[r], n, round, func(int) Opinion {
							if verdictFaulty {
								return Faulty
							}
							return Healthy
						})
					}
					gOut, gErr := gang.StepBatch(packGangInput(n, round, laneIns, collisionFaulty))
					if gErr != nil {
						t.Fatalf("round %d: StepBatch: %v", round, gErr)
					}
					for r := range refs {
						tag := fmt.Sprintf("round %d lane %d", round, r)
						out, err := refs[r].StepPacked(laneIns[r])
						if err != nil {
							t.Fatalf("%s: StepPacked: %v", tag, err)
						}
						if gOut.Round != out.Round || gOut.DiagnosedRound != out.DiagnosedRound {
							t.Fatalf("%s: round fields diverged: batch %d/%d, ref %d/%d",
								tag, gOut.Round, gOut.DiagnosedRound, out.Round, out.DiagnosedRound)
						}
						if gOut.Warm != (out.ConsHV != nil) {
							t.Fatalf("%s: warm %v, ref ConsHV nil=%v", tag, gOut.Warm, out.ConsHV == nil)
						}
						if hv := gOut.LaneConsHV(r, n); hv != out.ConsHVBits {
							t.Fatalf("%s: ConsHV diverged: batch %+v, ref %+v", tag, hv, out.ConsHVBits)
						}
						laneSend := gOut.LaneSend(r, n)
						if want := packSyndrome(out.SendSyndrome); laneSend != want {
							t.Fatalf("%s: SendSyndrome diverged: batch %+v, ref %+v", tag, laneSend, want)
						}
						laneSend.EncodeInto(sendBuf)
						copy(refSendBuf, out.Send)
						if !bytes.Equal(sendBuf, refSendBuf) {
							t.Fatalf("%s: wire bytes diverged: batch %x, ref %x", tag, sendBuf, refSendBuf)
						}
						if got, want := gOut.LaneActiveMask(r, n), out.ActiveMask; got != want {
							t.Fatalf("%s: ActiveMask diverged: batch %#x, ref %#x", tag, got, want)
						}
						if got, want := gOut.LaneIsolated(r, n), intsToMask(out.Isolated); got != want {
							t.Fatalf("%s: Isolated diverged: batch %#x, ref %#x", tag, got, want)
						}
						if got, want := gOut.LaneReintegrated(r, n), intsToMask(out.Reintegrated); got != want {
							t.Fatalf("%s: Reintegrated diverged: batch %#x, ref %#x", tag, got, want)
						}
						gSnap, err := gang.SnapshotLane(r)
						if err != nil {
							t.Fatalf("%s: SnapshotLane: %v", tag, err)
						}
						refSnap, err := refs[r].Snapshot()
						if err != nil {
							t.Fatalf("%s: ref snapshot: %v", tag, err)
						}
						if !bytes.Equal(gSnap, refSnap) {
							t.Fatalf("%s: snapshot JSON diverged:\nbatch %s\nref   %s", tag, gSnap, refSnap)
						}
					}
				}
				for r := range refs {
					got, err := json.Marshal(laneRegs[r].Snapshot())
					if err != nil {
						t.Fatal(err)
					}
					want, err := json.Marshal(refRegs[r].Snapshot())
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("lane %d: metric snapshots diverged:\nbatch %s\nref   %s", r, got, want)
					}
				}
			})
		}
	}
}

// TestBatchProtocolReset pins that Reset rewinds the gang to a freshly
// constructed state at any (including ragged) width: a reset gang must
// reproduce a fresh gang's outputs bit for bit.
func TestBatchProtocolReset(t *testing.T) {
	cfg := Config{N: 4, ID: 2, L: 0, SendCurrRound: true,
		Mode: ModeDiagnostic, PR: PRConfig{PenaltyThreshold: 2, RewardThreshold: 2}}
	reused, err := NewBatchProtocol(cfg, BatchLanes(4))
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *BatchProtocol, lanes int, seed int64) []BatchRoundOutput {
		st := rng.NewStream(seed)
		outs := make([]BatchRoundOutput, 0, 12)
		laneIns := make([]PackedRoundInput, lanes)
		for round := 0; round < 12; round++ {
			for r := range laneIns {
				laneIns[r] = randomPackedInput(st, 4, round, nil)
			}
			out, err := p.StepBatch(packGangInput(4, round, laneIns, 0))
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		return outs
	}
	for trial, lanes := range []int{16, 3, 16, 1} {
		seed := int64(400 + trial)
		reused.Reset(lanes)
		got := run(reused, lanes, seed)
		fresh, err := NewBatchProtocol(cfg, lanes)
		if err != nil {
			t.Fatal(err)
		}
		want := run(fresh, lanes, seed)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("lanes=%d round %d: reused %+v, fresh %+v", lanes, i, got[i], want[i])
			}
		}
	}
}

// TestBatchProtocolBounds pins the constructor's domain: diagnostic mode
// only, 1..⌊64/N⌋ lanes, packed-eligible widths.
func TestBatchProtocolBounds(t *testing.T) {
	diag := Config{N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}}
	if _, err := NewBatchProtocol(diag, 17); err == nil {
		t.Fatal("17 lanes of an N=4 system must not fit")
	}
	if _, err := NewBatchProtocol(diag, 0); err == nil {
		t.Fatal("0 lanes must be rejected")
	}
	mem := diag
	mem.Mode = ModeMembership
	if _, err := NewBatchProtocol(mem, 1); err == nil {
		t.Fatal("membership mode must be rejected")
	}
	wide := Config{N: MaxPackedN + 1, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}}
	if _, err := NewBatchProtocol(wide, 1); err == nil {
		t.Fatalf("N=%d must be rejected", wide.N)
	}
	if got := BatchLanes(4); got != 16 {
		t.Fatalf("BatchLanes(4) = %d, want 16", got)
	}
	if got := BatchLanes(64); got != 1 {
		t.Fatalf("BatchLanes(64) = %d, want 1", got)
	}
	if got := BatchLanes(65); got != 0 {
		t.Fatalf("BatchLanes(65) = %d, want 0", got)
	}
}

// FuzzVoteAllBatch is the gang form of FuzzVoteAll: arbitrary row planes for
// an arbitrary gang (random width, ragged, mixed per-lane content) must vote
// lane-for-lane identically to the per-run word-parallel kernel. The seeds
// double as a regular seeded corpus in CI.
func FuzzVoteAllBatch(f *testing.F) {
	f.Add(uint8(4), uint8(16), []byte{0xff, 0x0f, 0x03, 0x0c, 0x00, 0x00, 0x05, 0x0a})
	f.Add(uint8(4), uint8(3), []byte{0xaa, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc})
	f.Add(uint8(8), uint8(8), []byte{0xde, 0xf0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	f.Add(uint8(64), uint8(1), []byte{})
	f.Add(uint8(7), uint8(2), []byte{0x01, 0x80, 0x42, 0x24, 0x18, 0x81, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, nRaw, lanesRaw uint8, data []byte) {
		n := int(nRaw)%MaxPackedN + 1
		maxLanes := BatchLanes(n)
		lanes := int(lanesRaw)%maxLanes + 1
		laneAll := PlaneMask(n)
		var laneRep uint64
		for r := 0; r < lanes; r++ {
			laneRep |= 1 << uint(r*n)
		}
		allB := laneRep * laneAll
		op := make([]uint64, n+1)
		know := make([]uint64, n+1)
		// Consume 16 bytes per gang row (op word, know word); rows beyond
		// the data stay ε in every lane.
		src := data
		for j := 1; j <= n && len(src) >= 16; j++ {
			var o, k uint64
			for i := 0; i < 8; i++ {
				o |= uint64(src[i]) << uint(8*i)
				k |= uint64(src[8+i]) << uint(8*i)
			}
			src = src[16:]
			op[j] = o & k & allB
			know[j] = k & allB
		}
		consOp, consKnown := voteAllLanes(op, know, n, laneRep)
		if consOp&^consKnown != 0 || consKnown&^allB != 0 {
			t.Fatalf("n=%d lanes=%d: malformed gang verdict op=%#x known=%#x", n, lanes, consOp, consKnown)
		}
		for lane := 0; lane < lanes; lane++ {
			ref, err := NewPackedMatrix(n)
			if err != nil {
				t.Fatal(err)
			}
			for j := 1; j <= n; j++ {
				rowKnow := laneExtract(know[j], lane, n)
				if rowKnow == 0 {
					continue // ε row: a zero know segment encodes absence
				}
				if err := ref.SetBitRow(j, BitSyndrome{Op: laneExtract(op[j], lane, n), Known: rowKnow}); err != nil {
					t.Fatal(err)
				}
			}
			want, err := ref.VoteAll()
			if err != nil {
				t.Fatal(err)
			}
			got := BitSyndrome{Op: laneExtract(consOp, lane, n), Known: laneExtract(consKnown, lane, n)}
			if got != want {
				t.Fatalf("n=%d lanes=%d lane %d: gang vote %+v, per-run %+v", n, lanes, lane, got, want)
			}
		}
	})
}
