package core

import (
	"testing"

	"ttdiag/internal/rng"
)

// world is a minimal pure-core harness: it runs N protocol instances over an
// idealised TDMA round structure without the tdma substrate, so that Alg. 1
// can be tested in isolation. Faults are injected per (round, sender) for
// benign faults, per (round, sender, receiver) for asymmetric ones, and per
// (round, sender) for malicious syndrome substitution.
type world struct {
	t      *testing.T
	n      int
	protos []*Protocol

	// staged[j] is the payload node j last wrote; tx[j] is the payload most
	// recently transmitted by j together with its per-receiver validity.
	staged [][]byte
	txOK   [][]bool // txOK[j][rcv]: receiver rcv saw j's last transmission as valid
	txPay  [][]byte

	// benign((round, sender)) marks bus-wide detectable corruption.
	benign func(round, sender int) bool
	// blind((round, sender, rcv)) marks receiver-local corruption.
	blind func(round, sender, rcv int) bool
	// malicious((round, sender)) substitutes the payload with random bits.
	malicious func(round, sender int) []byte

	outputs []RoundOutput // per node, last round
	round   int
}

func newWorld(t *testing.T, n int, ls []int, allSCR bool, pr PRConfig) *world {
	t.Helper()
	w := &world{
		t:      t,
		n:      n,
		protos: make([]*Protocol, n+1),
		staged: make([][]byte, n+1),
		txOK:   make([][]bool, n+1),
		txPay:  make([][]byte, n+1),
	}
	if pr.PenaltyThreshold == 0 && pr.RewardThreshold == 0 {
		pr = PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 40}
	}
	for id := 1; id <= n; id++ {
		l := ls[id-1]
		cfg := Config{
			N: n, ID: id, L: l,
			SendCurrRound:    l < id,
			AllSendCurrRound: allSCR,
			PR:               pr,
		}
		p, err := NewProtocol(cfg)
		if err != nil {
			t.Fatalf("NewProtocol(%d): %v", id, err)
		}
		w.protos[id] = p
		w.staged[id] = NewSyndrome(n, Healthy).Encode()
		w.txOK[id] = make([]bool, n+1)
		for r := 1; r <= n; r++ {
			w.txOK[id][r] = true
		}
		w.txPay[id] = w.staged[id]
	}
	return w
}

// runRound advances the world by one TDMA round and returns the per-node
// outputs (1-based).
func (w *world) runRound() []RoundOutput {
	w.t.Helper()
	k := w.round
	outs := make([]RoundOutput, w.n+1)
	ran := make([]bool, w.n+1)

	runJob := func(i int) {
		p := w.protos[i]
		in := RoundInput{
			Round:    k,
			DMs:      make([]Syndrome, w.n+1),
			Validity: NewSyndrome(w.n, Healthy),
		}
		for j := 1; j <= w.n; j++ {
			if w.txOK[j][i] {
				if s, err := DecodeSyndrome(w.txPay[j], w.n); err == nil {
					in.DMs[j] = s
				}
			} else {
				in.Validity[j] = Faulty
			}
		}
		self := i
		in.Collision = func(round int) Opinion {
			if w.benign != nil && w.benign(round, self) {
				return Faulty
			}
			return Healthy
		}
		out, err := p.Step(in)
		if err != nil {
			w.t.Fatalf("round %d node %d: %v", k, i, err)
		}
		outs[i] = out
		w.staged[i] = out.Send
		ran[i] = true
	}

	for pos := 0; pos <= w.n; pos++ {
		// Jobs scheduled at this position run before the next slot.
		for i := 1; i <= w.n; i++ {
			if !ran[i] && w.protos[i].Config().L == pos {
				runJob(i)
			}
		}
		if pos == w.n {
			break
		}
		// Transmit slot pos+1.
		sender := pos + 1
		okBase := true
		if w.benign != nil && w.benign(k, sender) {
			okBase = false
		}
		newPay := w.staged[sender]
		if w.malicious != nil {
			if sub := w.malicious(k, sender); sub != nil {
				newPay = sub
			}
		}
		w.txPay[sender] = newPay
		for rcv := 1; rcv <= w.n; rcv++ {
			ok := okBase
			if ok && w.blind != nil && w.blind(k, sender, rcv) {
				ok = false
			}
			w.txOK[sender][rcv] = ok
		}
	}
	w.round++
	w.outputs = outs
	return outs
}

// obedient reports whether node i is obedient (not malicious) in this world.
func (w *world) obedient(i int) bool {
	return w.malicious == nil || w.malicious(0, i) == nil
}

// checkAgreement asserts that all obedient nodes produced the same non-nil
// consistent health vector and returns it.
func checkAgreement(t *testing.T, w *world, outs []RoundOutput) Syndrome {
	t.Helper()
	var ref Syndrome
	refNode := 0
	for i := 1; i <= w.n; i++ {
		if !w.obedient(i) {
			continue
		}
		if outs[i].ConsHV == nil {
			t.Fatalf("node %d: nil cons_hv", i)
		}
		if ref == nil {
			ref, refNode = outs[i].ConsHV, i
			continue
		}
		if !outs[i].ConsHV.Equal(ref) {
			t.Fatalf("consistency violated: node %d says %v, node %d says %v",
				refNode, ref, i, outs[i].ConsHV)
		}
	}
	return ref
}

var defaultLs = [][]int{
	{0, 0, 0, 0}, // every job first thing in the round: all send_curr_round
	{0, 1, 2, 3}, // staircase: job right before own slot
	{3, 3, 3, 3}, // every job after the last slot: none send_curr_round
	{2, 0, 3, 1}, // mixed
}

func TestFaultFreeRunAllSchedules(t *testing.T) {
	for si, ls := range defaultLs {
		allSCR := si == 0
		w := newWorld(t, 4, ls, allSCR, PRConfig{})
		lag := w.protos[1].Config().Lag()
		for k := 0; k < 20; k++ {
			outs := w.runRound()
			if k < lag {
				for i := 1; i <= 4; i++ {
					if outs[i].ConsHV != nil {
						t.Fatalf("schedule %d: cons_hv emitted during warm-up round %d", si, k)
					}
				}
				continue
			}
			ref := checkAgreement(t, w, outs)
			if ref.CountFaulty() != 0 {
				t.Fatalf("schedule %d round %d: fault-free run diagnosed %v", si, k, ref)
			}
			for i := 1; i <= 4; i++ {
				if got, want := outs[i].DiagnosedRound, k-lag; got != want {
					t.Fatalf("schedule %d: diagnosed round %d, want %d", si, got, want)
				}
			}
		}
	}
}

func TestSingleBenignFaultDiagnosed(t *testing.T) {
	for si, ls := range defaultLs {
		allSCR := si == 0
		const faultRound, faultNode = 6, 3
		w := newWorld(t, 4, ls, allSCR, PRConfig{})
		w.benign = func(round, sender int) bool {
			return round == faultRound && sender == faultNode
		}
		lag := w.protos[1].Config().Lag()
		for k := 0; k < 15; k++ {
			outs := w.runRound()
			if k < lag {
				continue
			}
			ref := checkAgreement(t, w, outs)
			d := k - lag
			if d == faultRound {
				if ref[faultNode] != Faulty {
					t.Fatalf("schedule %d: completeness violated: fault in round %d not diagnosed (%v)", si, d, ref)
				}
				for j := 1; j <= 4; j++ {
					if j != faultNode && ref[j] != Healthy {
						t.Fatalf("schedule %d: correctness violated: node %d convicted (%v)", si, j, ref)
					}
				}
			} else if ref.CountFaulty() != 0 {
				t.Fatalf("schedule %d: spurious diagnosis %v for round %d", si, ref, d)
			}
		}
	}
}

// TestTable1Pipeline reproduces the Table 1 situation end-to-end: nodes 3
// and 4 are benign faulty senders in both the diagnosed and the
// dissemination round; the resulting matrices carry ε rows for them and the
// voted health vector is 1 1 0 0.
func TestTable1Pipeline(t *testing.T) {
	w := newWorld(t, 4, defaultLs[0], true, PRConfig{})
	w.benign = func(round, sender int) bool {
		return (round == 6 || round == 7) && (sender == 3 || sender == 4)
	}
	for k := 0; k < 12; k++ {
		outs := w.runRound()
		if k < 2 {
			continue
		}
		ref := checkAgreement(t, w, outs)
		d := k - 2
		if d == 6 || d == 7 {
			if ref.String() != "1100" {
				t.Fatalf("cons_hv for round %d = %v, want 1100", d, ref)
			}
			if d == 6 {
				// Dissemination (round 7) was also faulty: matrices at
				// obedient nodes 1, 2 must have ε rows for 3 and 4.
				m := outs[1].Matrix
				if m.Row(3) != nil || m.Row(4) != nil {
					t.Fatalf("rows 3/4 not ε: %v", m)
				}
				if m.Opinion(2, 3) != Faulty || m.Opinion(2, 4) != Faulty {
					t.Fatalf("row 2 does not accuse 3,4:\n%v", m)
				}
			}
		}
	}
}

// TestBlackoutSelfDiagnosis exercises Lemma 3: a communication blackout of
// two whole rounds. Every node must diagnose all others faulty via its own
// local syndrome and itself faulty via the collision detector.
func TestBlackoutSelfDiagnosis(t *testing.T) {
	for si, ls := range defaultLs {
		allSCR := si == 0
		w := newWorld(t, 4, ls, allSCR, PRConfig{})
		w.benign = func(round, sender int) bool {
			return round == 6 || round == 7
		}
		lag := w.protos[1].Config().Lag()
		for k := 0; k < 16; k++ {
			outs := w.runRound()
			if k < lag {
				continue
			}
			ref := checkAgreement(t, w, outs)
			d := k - lag
			if d == 6 || d == 7 {
				if ref.String() != "0000" {
					t.Fatalf("schedule %d: blackout round %d diagnosed as %v, want 0000", si, d, ref)
				}
			} else if ref.CountFaulty() != 0 {
				t.Fatalf("schedule %d: spurious diagnosis %v for round %d", si, ref, d)
			}
		}
	}
}

// TestMaliciousSyndromesDoNotConvict checks Lemma 2 with s=1: a node that
// disseminates random syndromes must not make obedient nodes convict anyone
// (the malicious node itself sends valid frames, so it stays "healthy").
func TestMaliciousSyndromesDoNotConvict(t *testing.T) {
	st := rng.NewStream(17)
	for trial := 0; trial < 20; trial++ {
		mal := st.Intn(4) + 1
		w := newWorld(t, 4, defaultLs[trial%len(defaultLs)], trial%len(defaultLs) == 0, PRConfig{})
		w.malicious = func(round, sender int) []byte {
			if sender != mal {
				return nil
			}
			b := make([]byte, EncodedLen(4))
			st.Bytes(b)
			return b
		}
		lag := w.protos[1].Config().Lag()
		for k := 0; k < 20; k++ {
			outs := w.runRound()
			if k < lag {
				continue
			}
			ref := checkAgreement(t, w, outs)
			if ref.CountFaulty() != 0 {
				t.Fatalf("trial %d (malicious %d): obedient nodes convicted someone: %v", trial, mal, ref)
			}
		}
	}
}

// TestAsymmetricFaultConsistency checks that a single asymmetric fault
// (receiver 1 misses node 2's message) still yields an agreed health vector
// at all obedient nodes (Lemma 2 allows any value, but it must be agreed).
func TestAsymmetricFaultConsistency(t *testing.T) {
	for si, ls := range defaultLs {
		allSCR := si == 0
		w := newWorld(t, 4, ls, allSCR, PRConfig{})
		w.blind = func(round, sender, rcv int) bool {
			return round == 6 && sender == 2 && rcv == 1
		}
		lag := w.protos[1].Config().Lag()
		for k := 0; k < 16; k++ {
			outs := w.runRound()
			if k < lag {
				continue
			}
			checkAgreement(t, w, outs)
			if si == 0 && k-lag == 6 {
				// With 1 faulty vote vs 2 healthy ones the majority keeps
				// node 2 healthy.
				if outs[3].ConsHV[2] != Healthy {
					t.Fatalf("node 2 convicted on minority evidence: %v", outs[3].ConsHV)
				}
			}
		}
	}
}

// TestPenaltyRewardPipeline mirrors the Sec. 8 experiment class: a fault in
// a node's slot every second round for 20 rounds; penalty and reward
// counters must alternate accordingly at every node.
func TestPenaltyRewardPipeline(t *testing.T) {
	w := newWorld(t, 4, defaultLs[1], false, PRConfig{PenaltyThreshold: 1000, RewardThreshold: 100})
	w.benign = func(round, sender int) bool {
		return sender == 2 && round >= 10 && round < 30 && (round-10)%2 == 0
	}
	lag := w.protos[1].Config().Lag()
	for k := 0; k < 40; k++ {
		outs := w.runRound()
		if outs[1].ConsHV == nil {
			continue
		}
		d := k - lag
		pr := w.protos[1].PenaltyReward()
		if d >= 10 && d < 30 {
			wantPen := int64(d-10)/2 + 1
			if (d-10)%2 == 0 && pr.Penalty(2) != wantPen {
				t.Fatalf("after faulty round %d: penalty = %d, want %d", d, pr.Penalty(2), wantPen)
			}
			if (d-10)%2 == 1 && pr.Reward(2) != 1 {
				t.Fatalf("after clean round %d: reward = %d, want 1", d, pr.Reward(2))
			}
		}
	}
	// All nodes agree on the final counters.
	for i := 2; i <= 4; i++ {
		if got, want := w.protos[i].PenaltyReward().Penalty(2), w.protos[1].PenaltyReward().Penalty(2); got != want {
			t.Fatalf("node %d penalty view %d != node 1's %d", i, got, want)
		}
	}
}

// TestIsolationAgreedRound verifies that all obedient nodes isolate a
// crashed node in the same round, and that the Isolated transition fires
// exactly once.
func TestIsolationAgreedRound(t *testing.T) {
	w := newWorld(t, 4, defaultLs[3], false, PRConfig{PenaltyThreshold: 3, RewardThreshold: 10})
	w.benign = func(round, sender int) bool { return sender == 4 && round >= 5 }
	isoRound := make([]int, 5)
	for i := range isoRound {
		isoRound[i] = -1
	}
	for k := 0; k < 20; k++ {
		outs := w.runRound()
		for i := 1; i <= 4; i++ {
			for _, isoNode := range outs[i].Isolated {
				if isoNode != 4 {
					t.Fatalf("node %d isolated healthy node %d", i, isoNode)
				}
				if isoRound[i] != -1 {
					t.Fatalf("node %d isolated twice", i)
				}
				isoRound[i] = k
			}
		}
	}
	for i := 1; i <= 4; i++ {
		if isoRound[i] == -1 {
			t.Fatalf("node %d never isolated the crashed node", i)
		}
		if isoRound[i] != isoRound[1] {
			t.Fatalf("isolation rounds disagree: %v", isoRound)
		}
	}
	// P=3 with criticality 1: isolation on the 4th faulty diagnosed round
	// (diagnosed rounds 5,6,7,8), executed at round 8+lag.
	if want := 8 + w.protos[1].Config().Lag(); isoRound[1] != want {
		t.Fatalf("isolation at round %d, want %d", isoRound[1], want)
	}
}

// TestRandomisedTheorem1 property-checks Theorem 1 over randomised schedules
// and random single benign sender faults per round (b <= 1, within the
// N > 2a+2s+b+1 bound for N=4).
func TestRandomisedTheorem1(t *testing.T) {
	st := rng.NewStream(99)
	for trial := 0; trial < 30; trial++ {
		n := 4 + st.Intn(3) // 4..6 nodes
		ls := make([]int, n)
		for i := range ls {
			ls[i] = st.Intn(n)
		}
		w := newWorld(t, n, ls, false, PRConfig{})
		faultOfRound := make(map[int]int)
		for r := 4; r < 24; r++ {
			if st.Bool(0.5) {
				faultOfRound[r] = st.Intn(n) + 1
			}
		}
		w.benign = func(round, sender int) bool { return faultOfRound[round] == sender }
		for k := 0; k < 28; k++ {
			outs := w.runRound()
			if outs[1].ConsHV == nil {
				continue
			}
			ref := checkAgreement(t, w, outs)
			d := k - 3
			for j := 1; j <= n; j++ {
				want := Healthy
				if faultOfRound[d] == j {
					want = Faulty
				}
				if ref[j] != want {
					t.Fatalf("trial %d n=%d ls=%v: round %d node %d diagnosed %v, want %v",
						trial, n, ls, d, j, ref[j], want)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{N: 4, ID: 2, L: 1, SendCurrRound: true, PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"small_n", func(c *Config) { c.N = 1 }},
		{"zero_id", func(c *Config) { c.ID = 0 }},
		{"id_beyond_n", func(c *Config) { c.ID = 5 }},
		{"negative_l", func(c *Config) { c.L = -1 }},
		{"l_too_large", func(c *Config) { c.L = 4 }},
		{"scr_inconsistent", func(c *Config) { c.SendCurrRound = false }},
		{"all_scr_without_scr", func(c *Config) { c.SendCurrRound = false; c.AllSendCurrRound = true }},
		{"bad_mode", func(c *Config) { c.Mode = 99 }},
		{"bad_pr", func(c *Config) { c.PR.RewardThreshold = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestStepInputValidation(t *testing.T) {
	p, err := NewProtocol(Config{N: 4, ID: 1, L: 0, SendCurrRound: true, PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}})
	if err != nil {
		t.Fatal(err)
	}
	good := RoundInput{Round: 0, DMs: make([]Syndrome, 5), Validity: NewSyndrome(4, Healthy)}
	if _, err := p.Step(RoundInput{Round: 3, DMs: good.DMs, Validity: good.Validity}); err == nil {
		t.Error("wrong round accepted")
	}
	if _, err := p.Step(RoundInput{Round: 0, DMs: make([]Syndrome, 3), Validity: good.Validity}); err == nil {
		t.Error("short DMs accepted")
	}
	if _, err := p.Step(RoundInput{Round: 0, DMs: good.DMs, Validity: NewSyndrome(3, Healthy)}); err == nil {
		t.Error("short validity accepted")
	}
	if _, err := p.Step(good); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	// Round must advance by one.
	if _, err := p.Step(good); err == nil {
		t.Error("repeated round accepted")
	}
}

func TestLagValues(t *testing.T) {
	if got := (Config{AllSendCurrRound: true}).Lag(); got != 2 {
		t.Errorf("AllSCR lag = %d, want 2", got)
	}
	if got := (Config{}).Lag(); got != 3 {
		t.Errorf("default lag = %d, want 3", got)
	}
}

// TestStartRoundOffset: a protocol configured with a non-zero StartRound
// (e.g. a node joining a running system) numbers its rounds absolutely.
func TestStartRoundOffset(t *testing.T) {
	p, err := NewProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true, AllSendCurrRound: true, StartRound: 100,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(round int) RoundInput {
		return RoundInput{Round: round, DMs: make([]Syndrome, 5), Validity: NewSyndrome(4, Healthy)}
	}
	if _, err := p.Step(mk(0)); err == nil {
		t.Fatal("round 0 accepted with StartRound 100")
	}
	for k := 100; k < 105; k++ {
		out, err := p.Step(mk(k))
		if err != nil {
			t.Fatal(err)
		}
		if k >= 102 {
			if out.ConsHV == nil {
				t.Fatalf("round %d: no health vector", k)
			}
			if out.DiagnosedRound != k-2 {
				t.Fatalf("round %d: diagnosed %d", k, out.DiagnosedRound)
			}
		}
	}
}

// TestProtocolDeterminism: two instances fed the identical input tape emit
// identical outputs — the foundation for the flight-recorder replay and the
// concurrent-runtime equivalence.
func TestProtocolDeterminism(t *testing.T) {
	st := rng.NewStream(71)
	cfg := Config{
		N: 4, ID: 3, L: 1, SendCurrRound: true, Mode: ModeMembership,
		PR: PRConfig{PenaltyThreshold: 4, RewardThreshold: 3},
	}
	a, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 40; k++ {
		in := RoundInput{Round: k, DMs: make([]Syndrome, 5), Validity: NewSyndrome(4, Healthy)}
		for j := 1; j <= 4; j++ {
			if st.Bool(0.25) {
				in.Validity[j] = Faulty
				continue
			}
			s := NewSyndrome(4, Healthy)
			for m := 1; m <= 4; m++ {
				if st.Bool(0.2) {
					s[m] = Faulty
				}
			}
			in.DMs[j] = s
		}
		outA, errA := a.Step(in)
		outB, errB := b.Step(in)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("round %d: error divergence", k)
		}
		if !outA.SendSyndrome.Equal(outB.SendSyndrome) {
			t.Fatalf("round %d: send divergence", k)
		}
		if (outA.ConsHV == nil) != (outB.ConsHV == nil) ||
			(outA.ConsHV != nil && !outA.ConsHV.Equal(outB.ConsHV)) {
			t.Fatalf("round %d: cons_hv divergence", k)
		}
	}
}
