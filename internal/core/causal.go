package core

import (
	"strconv"
	"strings"

	"ttdiag/internal/trace"
)

// trajectoryLen bounds the penalty-trajectory window rendered into an
// isolation event's Detail: the last trajectoryLen counter changes.
const trajectoryLen = 8

// StepTrace is the protocol's optional causal flight recorder: attached with
// SetTrace, it emits typed trace events — accusations with their evidence
// class, penalty-counter changes, isolations with the penalty trajectory
// that caused them, reintegrations — keyed by simulated round, on every warm
// Step/StepPacked. A Protocol with no StepTrace attached pays a single nil
// check per Step (the same nil-is-off discipline as StepMetrics), and an
// attached recorder allocates only when an event actually fires.
//
// Every emitted value derives from simulated quantities, never wall-clock
// time, and the emission order within a round is fixed (accusations, penalty
// changes in ascending node order, isolations, reintegrations), so the
// packed and scalar paths produce byte-identical event streams (pinned by
// TestPackedScalarTraceEquivalence).
type StepTrace struct {
	sink trace.Sink

	// prevPen mirrors the penalty counters as of the last emission so only
	// actual changes become KindPenalty events (1-based).
	prevPen []int64
	// evid is per-step scratch written inside the accusation loops: evid[j]
	// is set when node j's row holds a definite opinion opposite the H-maj
	// verdict (as opposed to mere ε gaps where the vector holds a verdict).
	// The skew-guard state mutates between accusation and emission, so the
	// classification cannot be recomputed at emit time.
	evid []bool
	// trajRound/trajPen are flat per-node rings of the last trajectoryLen
	// (round, penalty) counter changes; trajN counts total changes per node.
	trajRound []int
	trajPen   []int64
	trajN     []int
}

// NewStepTrace wires a flight recorder to the given sink. A nil sink yields
// a recorder that discards everything; callers that want true zero overhead
// should skip SetTrace entirely in that case.
func NewStepTrace(sink trace.Sink) *StepTrace {
	if sink == nil {
		sink = trace.Discard{}
	}
	return &StepTrace{sink: sink}
}

// SetTrace attaches (or, with nil, detaches) the protocol's causal flight
// recorder. The attachment survives Reset and ResetConfig so reusable
// campaign clusters keep emitting across repetitions; the recorder is
// re-baselined on the protocol's current counter state so the attachment
// itself never masquerades as a penalty change. Events are recorded from
// whichever goroutine calls Step, so in concurrent runtimes the sink must be
// safe for concurrent use (trace.Recorder and trace.JSONLWriter are).
func (p *Protocol) SetTrace(t *StepTrace) {
	p.trace = t
	if t != nil {
		t.bind(p.cfg.N, p.pr)
	}
}

// Trace returns the attached flight recorder, nil when none.
func (p *Protocol) Trace() *StepTrace { return p.trace }

// bind sizes the recorder's state for an n-node system (idempotent) and
// re-baselines it on pr's counters.
func (t *StepTrace) bind(n int, pr *PenaltyReward) {
	if len(t.prevPen) != n+1 {
		t.prevPen = make([]int64, n+1)
		t.evid = make([]bool, n+1)
		t.trajRound = make([]int, (n+1)*trajectoryLen)
		t.trajPen = make([]int64, (n+1)*trajectoryLen)
		t.trajN = make([]int, n+1)
	}
	t.resync(pr)
}

// resync re-baselines the recorder on the protocol's current counter state
// without emitting events; called after Reset, ResetConfig and CopyFrom so
// wholesale state swaps do not masquerade as penalty changes.
func (t *StepTrace) resync(pr *PenaltyReward) {
	copy(t.prevPen, pr.penalties)
	for j := range t.trajN {
		t.trajN[j] = 0
	}
}

// noteEvidence records the accusation evidence classification for subject j
// of the current step; consumed (and cleared) by emitStepTrace.
func (t *StepTrace) noteEvidence(j int, definite bool) { t.evid[j] = definite }

// trajectory renders node j's recent penalty trajectory ("r16:1 r18:3
// r20:4", oldest first) for an isolation event's Detail.
func (t *StepTrace) trajectory(j int) string {
	total := t.trajN[j]
	count := total
	if count > trajectoryLen {
		count = trajectoryLen
	}
	var b strings.Builder
	b.WriteString("trajectory")
	for i := 0; i < count; i++ {
		slot := j*trajectoryLen + (total-count+i)%trajectoryLen
		b.WriteString(" r")
		b.WriteString(strconv.Itoa(t.trajRound[slot]))
		b.WriteString(":")
		b.WriteString(strconv.FormatInt(t.trajPen[slot], 10))
	}
	return b.String()
}

// emitStepTrace records one execution's causal events; called only when
// p.trace != nil, after the round's counters are updated (next to
// emitStepMetrics on both step paths). Cold executions emit nothing: there
// is no health vector, so no counter can have moved.
func (p *Protocol) emitStepTrace(out *RoundOutput, warm bool) {
	if !warm {
		return
	}
	t := p.trace
	id := p.cfg.ID
	thr := p.pr.cfg.PenaltyThreshold
	for _, j := range out.Accused {
		ev := trace.EvidenceMatrix
		if t.evid[j] {
			ev = trace.EvidenceVerdict
			t.evid[j] = false
		}
		t.sink.Record(trace.Event{
			Round:    out.Round,
			Kind:     trace.KindAccusation,
			Node:     id,
			Subject:  j,
			Evidence: ev,
		})
	}
	if out.ConsHV == nil {
		return
	}
	n := p.cfg.N
	for j := 1; j <= n; j++ {
		pen := p.pr.penalties[j]
		if pen == t.prevPen[j] {
			continue
		}
		t.prevPen[j] = pen
		slot := j*trajectoryLen + t.trajN[j]%trajectoryLen
		t.trajRound[slot] = out.Round
		t.trajPen[slot] = pen
		t.trajN[j]++
		if pen == 0 && intsContain(out.Reintegrated, j) {
			// The zeroing is part of the reintegration, reported below.
			continue
		}
		e := trace.Event{
			Round:     out.Round,
			Kind:      trace.KindPenalty,
			Node:      id,
			Subject:   j,
			Penalty:   pen,
			Threshold: thr,
		}
		if pen == 0 {
			e.Detail = "reward reset"
		}
		t.sink.Record(e)
	}
	for _, j := range out.Isolated {
		t.sink.Record(trace.Event{
			Round:     out.Round,
			Kind:      trace.KindIsolation,
			Node:      id,
			Subject:   j,
			Penalty:   p.pr.penalties[j],
			Threshold: thr,
			Detail:    t.trajectory(j),
		})
	}
	for _, j := range out.Reintegrated {
		t.sink.Record(trace.Event{
			Round:     out.Round,
			Kind:      trace.KindReintegration,
			Node:      id,
			Subject:   j,
			Threshold: thr,
		})
	}
}

func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// disagreesDefinite reports whether row holds a definite opinion (not ε)
// opposite the consistent health vector on some unguarded column — the
// scalar twin of the packed path's know-plane conflict term, with exactly
// the skips of disagrees. It classifies an accusation's evidence: definite
// opposition is EvidenceVerdict, ε-only conflict is EvidenceMatrix.
func (p *Protocol) disagreesDefinite(row, consHV Syndrome, j int) bool {
	for m := 1; m <= consHV.N(); m++ {
		if m == j {
			continue
		}
		if p.accusedAge[m] >= 1 && p.accusedAge[m] <= accusationSkew {
			continue
		}
		if m == p.cfg.ID && consHV[m] == Faulty {
			continue
		}
		if row[m] != Erased && row[m] != consHV[m] {
			return true
		}
	}
	return false
}
