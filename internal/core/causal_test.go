package core

import (
	"fmt"
	"strings"
	"testing"

	"ttdiag/internal/invariant"
	"ttdiag/internal/rng"
	"ttdiag/internal/trace"
)

// TestPackedScalarTraceEquivalence runs the bit-plane and scalar-reference
// implementations side by side on identical random inputs with a flight
// recorder attached to each, and requires the two causal event streams to be
// identical event for event — same kinds, same order, same evidence
// classification, same counter values. This pins that accusation evidence
// and penalty/isolation emission are representation-independent.
func TestPackedScalarTraceEquivalence(t *testing.T) {
	const rounds = 48
	for _, tc := range stepEquivCases() {
		t.Run(tc.name, func(t *testing.T) {
			packed, err := newProtocol(tc.cfg, true)
			if err != nil {
				t.Fatalf("packed: %v", err)
			}
			scalar, err := newProtocol(tc.cfg, false)
			if err != nil {
				t.Fatalf("scalar: %v", err)
			}
			var pRec, sRec trace.Recorder
			packed.SetTrace(NewStepTrace(&pRec))
			scalar.SetTrace(NewStepTrace(&sRec))
			st := rng.NewStream(int64(1000 + tc.cfg.N + int(tc.cfg.Mode)*7))
			for r := 0; r < rounds; r++ {
				round := tc.cfg.StartRound + r
				in := randomStepInput(st, tc.cfg.N, round)
				if _, err := packed.Step(in); err != nil {
					t.Fatalf("round %d: packed: %v", round, err)
				}
				if _, err := scalar.Step(in); err != nil {
					t.Fatalf("round %d: scalar: %v", round, err)
				}
			}
			pEvents, sEvents := pRec.Events(), sRec.Events()
			if i := trace.FirstDivergence(pEvents, sEvents); i >= 0 {
				var pe, se trace.Event
				if i < len(pEvents) {
					pe = pEvents[i]
				}
				if i < len(sEvents) {
					se = sEvents[i]
				}
				t.Fatalf("trace streams diverge at event %d:\npacked %+v\nscalar %+v", i, pe, se)
			}
			if len(pEvents) == 0 && tc.cfg.Mode == ModeMembership {
				t.Fatalf("membership case emitted no causal events — the test is vacuous")
			}
		})
	}
}

// causalScenario drives one observer through a scripted fault: node 3 is
// voted faulty for faultRounds consecutive warm rounds, then healthy again.
// With PenaltyThreshold 2 this isolates node 3 mid-script, and with
// ReintegrationThreshold 3 the healthy tail reintegrates it.
func causalScenario(t testing.TB, p *Protocol, rounds, faultFrom, faultTo int) {
	t.Helper()
	n := p.Config().N
	dms := make([]Syndrome, n+1)
	for j := 1; j <= n; j++ {
		dms[j] = NewSyndrome(n, Healthy)
	}
	validity := NewSyndrome(n, Healthy)
	for r := 0; r < rounds; r++ {
		faulty := r >= faultFrom && r < faultTo
		for j := 1; j <= n; j++ {
			if faulty {
				dms[j][3] = Faulty
			} else {
				dms[j][3] = Healthy
			}
		}
		if faulty {
			validity[3] = Faulty
		} else {
			validity[3] = Healthy
		}
		if _, err := p.Step(RoundInput{Round: r, DMs: dms, Validity: validity}); err != nil {
			t.Fatal(err)
		}
	}
}

func causalScenarioProtocol(t testing.TB) *Protocol {
	t.Helper()
	p, err := NewProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 2, RewardThreshold: 10, ReintegrationThreshold: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStepTraceCausalChain scripts a fault burst against node 3 and checks
// the emitted causal stream end to end: monotone penalty events carrying the
// threshold, an isolation with the trajectory that caused it, a
// reintegration once the observation window passes — and that trace.Explain
// reconstructs the chain from the stream alone.
func TestStepTraceCausalChain(t *testing.T) {
	p := causalScenarioProtocol(t)
	var rec trace.Recorder
	p.SetTrace(NewStepTrace(&rec))
	causalScenario(t, p, 24, 6, 12)

	events := rec.Events()
	var penalties, isolations, reintegrations []trace.Event
	for _, e := range events {
		if e.Subject != 3 {
			t.Fatalf("event about node %d in a node-3-only scenario: %+v", e.Subject, e)
		}
		switch e.Kind {
		case trace.KindPenalty:
			penalties = append(penalties, e)
		case trace.KindIsolation:
			isolations = append(isolations, e)
		case trace.KindReintegration:
			reintegrations = append(reintegrations, e)
		}
	}
	if len(isolations) != 1 {
		t.Fatalf("want exactly one isolation, got %d in %v", len(isolations), events)
	}
	iso := isolations[0]
	if iso.Penalty <= iso.Threshold || iso.Threshold != 2 {
		t.Fatalf("isolation counter state %d/%d does not show a crossing", iso.Penalty, iso.Threshold)
	}
	if !strings.HasPrefix(iso.Detail, "trajectory r") {
		t.Fatalf("isolation lacks its penalty trajectory: %q", iso.Detail)
	}
	if len(penalties) < 2 {
		t.Fatalf("want the penalty ramp before the isolation, got %v", penalties)
	}
	for i, e := range penalties {
		if e.Threshold != 2 {
			t.Fatalf("penalty event without threshold: %+v", e)
		}
		if want := int64(i + 1); e.Penalty != want {
			t.Fatalf("penalty ramp[%d] = %d, want %d", i, e.Penalty, want)
		}
	}
	if len(reintegrations) != 1 {
		t.Fatalf("want exactly one reintegration, got %v", reintegrations)
	}
	if reintegrations[0].Round <= iso.Round {
		t.Fatalf("reintegration at round %d not after isolation at %d", reintegrations[0].Round, iso.Round)
	}

	chain, err := trace.Explain(events, 3, iso.Round)
	if err != nil {
		t.Fatal(err)
	}
	if last := chain[len(chain)-1]; last.Kind != trace.KindIsolation {
		t.Fatalf("Explain chain ends in %v, want the isolation", last)
	}
	if len(chain) != len(penalties)+1 {
		t.Fatalf("Explain chain has %d events, want the %d penalty events plus the isolation", len(chain), len(penalties))
	}
}

// TestStepTraceResyncs pins the re-baselining contract: a Reset replays the
// identical scenario as an identical event stream (no spurious penalty
// deltas from stale baselines), and a CopyFrom'd twin with its own recorder
// continues emitting exactly the events the source emits from the copy
// point on.
func TestStepTraceResyncs(t *testing.T) {
	p := causalScenarioProtocol(t)
	var rec trace.Recorder
	p.SetTrace(NewStepTrace(&rec))
	causalScenario(t, p, 24, 6, 12)
	first := rec.Events()

	rec.Reset()
	p.Reset()
	causalScenario(t, p, 24, 6, 12)
	if i := trace.FirstDivergence(first, rec.Events()); i >= 0 {
		t.Fatalf("post-Reset replay diverges at event %d", i)
	}

	// Run the source mid-fault, fork a twin, then drive both through the
	// identical remainder.
	src := causalScenarioProtocol(t)
	var srcRec trace.Recorder
	src.SetTrace(NewStepTrace(&srcRec))
	causalScenario(t, src, 9, 6, 12)
	mark := srcRec.Len()

	dst := causalScenarioProtocol(t)
	var dstRec trace.Recorder
	dst.SetTrace(NewStepTrace(&dstRec))
	if err := dst.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	tail := func(p *Protocol) {
		n := p.Config().N
		dms := make([]Syndrome, n+1)
		for j := 1; j <= n; j++ {
			dms[j] = NewSyndrome(n, Healthy)
		}
		validity := NewSyndrome(n, Healthy)
		for r := 9; r < 24; r++ {
			faulty := r < 12
			for j := 1; j <= n; j++ {
				dms[j][3] = Healthy
				if faulty {
					dms[j][3] = Faulty
				}
			}
			validity[3] = Healthy
			if faulty {
				validity[3] = Faulty
			}
			if _, err := p.Step(RoundInput{Round: r, DMs: dms, Validity: validity}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tail(src)
	tail(dst)
	srcTail := srcRec.Events()[mark:]
	if i := trace.FirstDivergence(srcTail, dstRec.Events()); i >= 0 {
		t.Fatalf("CopyFrom twin diverges from the source at post-copy event %d:\nsrc %v\ndst %v",
			i, srcTail, dstRec.Events())
	}
	if len(srcTail) == 0 {
		t.Fatalf("no post-copy events — the continuation check is vacuous")
	}
}

// TestStepTraceQuietRoundsEmitNothing: a steady-state healthy system with a
// recorder attached produces an empty stream — the flight recorder is silent
// unless a counter actually moves.
func TestStepTraceQuietRoundsEmitNothing(t *testing.T) {
	p := causalScenarioProtocol(t)
	var rec trace.Recorder
	p.SetTrace(NewStepTrace(&rec))
	causalScenario(t, p, 24, 0, 0)
	if rec.Len() != 0 {
		t.Fatalf("healthy run emitted %d events: %v", rec.Len(), rec.Events())
	}
}

// TestStepTraceAllocs: the flight recorder must not disturb the Step
// allocation ceilings — zero extra allocations when attached and quiet, and
// none at all from the nil check when detached.
func TestStepTraceAllocs(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant checking boxes Checkf arguments and inflates the allocation count")
	}
	for _, withTrace := range []bool{false, true} {
		name := map[bool]string{false: "detached", true: "attached_quiet"}[withTrace]
		t.Run(name, func(t *testing.T) {
			p, err := NewProtocol(Config{
				N: 8, ID: 1, L: 0, SendCurrRound: true,
				PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
			})
			if err != nil {
				t.Fatal(err)
			}
			if withTrace {
				p.SetTrace(NewStepTrace(trace.Discard{}))
			}
			dms := make([]Syndrome, 9)
			for j := 1; j <= 8; j++ {
				dms[j] = NewSyndrome(8, Healthy)
			}
			validity := NewSyndrome(8, Healthy)
			round := 0
			step := func() {
				if _, err := p.Step(RoundInput{Round: round, DMs: dms, Validity: validity}); err != nil {
					t.Fatal(err)
				}
				round++
			}
			for i := 0; i < 16; i++ {
				step()
			}
			base := testing.AllocsPerRun(200, step)
			// The warm scalar/packed Step ceilings are pinned by allocs_test.go;
			// here we only require the trace attachment to add nothing.
			p.SetTrace(nil)
			detached := testing.AllocsPerRun(200, step)
			if base != detached {
				t.Fatalf("quiet trace attachment changes Step allocations: %v with, %v without", base, detached)
			}
		})
	}
}

func BenchmarkStepTrace(b *testing.B) {
	for _, n := range []int{4, 64} {
		for _, withTrace := range []bool{false, true} {
			mode := "off"
			if withTrace {
				mode = "on"
			}
			b.Run(fmt.Sprintf("n%d_%s", n, mode), func(b *testing.B) {
				p, err := NewProtocol(Config{
					N: n, ID: 1, L: 0, SendCurrRound: true,
					PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
				})
				if err != nil {
					b.Fatal(err)
				}
				if withTrace {
					p.SetTrace(NewStepTrace(trace.Discard{}))
				}
				dms := make([]Syndrome, n+1)
				for j := 1; j <= n; j++ {
					dms[j] = NewSyndrome(n, Healthy)
				}
				validity := NewSyndrome(n, Healthy)
				in := RoundInput{DMs: dms, Validity: validity}
				for i := 0; i < 16; i++ {
					in.Round = i
					if _, err := p.Step(in); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					in.Round = 16 + i
					if _, err := p.Step(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
