package core

import (
	"strings"
	"testing"
	"testing/quick"

	"ttdiag/internal/rng"
)

func TestHMajTruthTable(t *testing.T) {
	tests := []struct {
		name    string
		votes   []Opinion
		want    Opinion
		decided bool
	}{
		{name: "all_healthy", votes: []Opinion{1, 1, 1}, want: Healthy, decided: true},
		{name: "all_faulty", votes: []Opinion{0, 0, 0}, want: Faulty, decided: true},
		{name: "majority_faulty", votes: []Opinion{0, 0, 1}, want: Faulty, decided: true},
		{name: "majority_healthy", votes: []Opinion{0, 1, 1}, want: Healthy, decided: true},
		{name: "tie_is_healthy", votes: []Opinion{0, 1}, want: Healthy, decided: true},
		{name: "erased_excluded", votes: []Opinion{2, 0, 2}, want: Faulty, decided: true},
		{name: "single_vote", votes: []Opinion{0}, want: Faulty, decided: true},
		{name: "all_erased_bottom", votes: []Opinion{2, 2, 2}, decided: false},
		{name: "empty_bottom", votes: nil, decided: false},
		{name: "erased_tiebreak", votes: []Opinion{2, 0, 1}, want: Healthy, decided: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := HMaj(tt.votes)
			if ok != tt.decided {
				t.Fatalf("decided = %v, want %v", ok, tt.decided)
			}
			if ok && got != tt.want {
				t.Fatalf("HMaj = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestHMajHybridFaultBound checks Lemma 2's voting core: with b erased votes,
// and a+s adversarial votes, the N-1-b-a-s correct votes prevail whenever
// N > 2a+2s+b+1.
func TestHMajHybridFaultBound(t *testing.T) {
	st := rng.NewStream(1)
	for trial := 0; trial < 2000; trial++ {
		n := st.Intn(30) + 4
		// Pick fault counts satisfying the bound.
		b := st.Intn(n - 3)
		maxAS := (n - b - 2) / 2
		as := 0
		if maxAS > 0 {
			as = st.Intn(maxAS + 1)
		}
		if n <= 2*as+b+1 {
			continue
		}
		truth := Opinion(st.Intn(2))
		votes := make([]Opinion, 0, n-1)
		for i := 0; i < b; i++ {
			votes = append(votes, Erased)
		}
		for i := 0; i < as; i++ {
			votes = append(votes, Opinion(st.Intn(2))) // adversarial: arbitrary
		}
		for len(votes) < n-1 {
			votes = append(votes, truth)
		}
		// Shuffle.
		for i := range votes {
			j := st.Intn(i + 1)
			votes[i], votes[j] = votes[j], votes[i]
		}
		got, ok := HMaj(votes)
		if !ok {
			t.Fatalf("n=%d b=%d as=%d: undecided despite correct votes", n, b, as)
		}
		if got != truth {
			t.Fatalf("n=%d b=%d as=%d truth=%v: voted %v", n, b, as, truth, got)
		}
	}
}

func TestMatrixRowValidation(t *testing.T) {
	m := NewMatrix(4)
	if err := m.SetRow(0, nil); err == nil {
		t.Error("row 0 accepted")
	}
	if err := m.SetRow(5, nil); err == nil {
		t.Error("row 5 accepted")
	}
	if err := m.SetRow(1, NewSyndrome(3, Healthy)); err == nil {
		t.Error("wrong-size row accepted")
	}
	if err := m.SetRow(1, NewSyndrome(4, Healthy)); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if m.Row(0) != nil || m.Row(5) != nil {
		t.Error("out-of-range Row not nil")
	}
}

// TestMatrixTable1 reproduces Table 1 of the paper: nodes 3 and 4 are two
// coincident benign faulty senders in both the diagnosed round and the
// dissemination round. Rows 3 and 4 are ε; rows 1 and 2 accuse 3 and 4.
// The voted consistent health vector is 1 1 0 0.
func TestMatrixTable1(t *testing.T) {
	m := NewMatrix(4)
	row1 := NewSyndrome(4, Healthy)
	row1[3], row1[4] = Faulty, Faulty
	row2 := row1.Clone()
	if err := m.SetRow(1, row1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRow(2, row2); err != nil {
		t.Fatal(err)
	}
	// Rows 3 and 4 stay ε (their local syndromes were not received).

	want := []Opinion{Erased, Healthy, Healthy, Faulty, Faulty}
	for j := 1; j <= 4; j++ {
		got, ok := m.Vote(j)
		if !ok {
			// Column j of an all-ε pair: for j = 3 the votes come from rows
			// 1, 2, 4; rows 1 and 2 are set, so every column must decide.
			t.Fatalf("column %d undecided", j)
		}
		if got != want[j] {
			t.Errorf("cons_hv[%d] = %v, want %v", j, got, want[j])
		}
	}
}

func TestMatrixColumnExcludesSelfOpinion(t *testing.T) {
	m := NewMatrix(3)
	// Node 2's row claims node 2 is healthy; rows 1 and 3 say faulty.
	r1 := NewSyndrome(3, Healthy)
	r1[2] = Faulty
	r2 := NewSyndrome(3, Healthy) // self-opinion healthy
	r3 := r1.Clone()
	for j, r := range map[int]Syndrome{1: r1, 2: r2, 3: r3} {
		if err := m.SetRow(j, r); err != nil {
			t.Fatal(err)
		}
	}
	col := m.Column(2)
	if len(col) != 2 {
		t.Fatalf("column has %d votes, want 2", len(col))
	}
	got, ok := m.Vote(2)
	if !ok || got != Faulty {
		t.Fatalf("Vote(2) = %v,%v; the self-opinion must not rescue node 2", got, ok)
	}
}

func TestMatrixOpinionErasedRow(t *testing.T) {
	m := NewMatrix(4)
	if got := m.Opinion(1, 2); got != Erased {
		t.Fatalf("Opinion on ε row = %v", got)
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(2)
	r1 := NewSyndrome(2, Healthy)
	if err := m.SetRow(1, r1); err != nil {
		t.Fatal(err)
	}
	s := m.String()
	for _, want := range []string{"node 1", "node 2", "cons_hv", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// Property: H-maj never returns Erased as a decided value, and a decision is
// reached iff at least one vote is non-ε.
func TestHMajDecisionProperty(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		votes := make([]Opinion, len(raw))
		nonErased := false
		for i, b := range raw {
			votes[i] = Opinion(b % 3)
			if votes[i] != Erased {
				nonErased = true
			}
		}
		v, ok := HMaj(votes)
		if ok != nonErased {
			return false
		}
		return !ok || v == Faulty || v == Healthy
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTolerates(t *testing.T) {
	tests := []struct {
		n, a, s, b int
		want       bool
	}{
		{4, 0, 0, 1, true},   // single benign fault at N=4
		{4, 0, 0, 2, true},   // two coincident benign faults
		{4, 0, 0, 3, false},  // b = N-1 needs the Lemma 3 regime
		{4, 0, 1, 0, true},   // one malicious node
		{4, 0, 2, 0, false},  // two malicious nodes exceed the bound
		{4, 1, 0, 0, true},   // one asymmetric fault
		{4, 2, 0, 0, false},  // a <= 1 always
		{8, 1, 1, 2, true},   // 8 > 2+2+2+1
		{8, 1, 2, 1, false},  // 8 > 2+4+1+1 is false
		{4, -1, 0, 0, false}, // negative counts rejected
		{4, 0, -1, 0, false},
		{4, 0, 0, -1, false},
	}
	for _, tt := range tests {
		if got := Tolerates(tt.n, tt.a, tt.s, tt.b); got != tt.want {
			t.Errorf("Tolerates(%d,%d,%d,%d) = %v, want %v", tt.n, tt.a, tt.s, tt.b, got, tt.want)
		}
	}
}

func TestToleratesBenignOnly(t *testing.T) {
	if !ToleratesBenignOnly(4, 4) || !ToleratesBenignOnly(4, 3) || !ToleratesBenignOnly(4, 0) {
		t.Error("benign-only regime rejected valid b")
	}
	if ToleratesBenignOnly(4, 5) || ToleratesBenignOnly(4, -1) {
		t.Error("benign-only regime accepted invalid b")
	}
}

func TestMatrixN(t *testing.T) {
	if got := NewMatrix(6).N(); got != 6 {
		t.Fatalf("N() = %d", got)
	}
}
