package core

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// This file is the cross-run lane-packing layer: where the packed Protocol
// bit-slices the columns of ONE cluster into a 64-bit plane word, the batch
// types below bit-slice G = ⌊64/N⌋ independent repetitions of the SAME
// cluster shape into one word. Lane r occupies bits [r·N, (r+1)·N) of every
// plane, so one carry-save vote pass, one penalty/reward sweep and one
// alignment merge advance G Monte-Carlo runs at once. Per-run control flow
// (self-column, read/send alignment, isolation state) is hoisted from
// branches into lane-replicated masks; a run's fault outcome is a mask AND,
// never an `if`.
//
// The batch path covers the diagnostic mode only (membership accusations are
// per-run list-shaped state and stay on Protocol). Lane-exact equivalence
// with the per-run packed path — outputs, snapshot bytes, metric values — is
// pinned by batch_equivalence_test.go.

// BatchLanes returns how many independent runs of an n-node system fit one
// plane word: G = ⌊MaxPackedN/n⌋ (16 lanes at N=4, 8 at N=8, …), 0 outside
// the packed bound.
func BatchLanes(n int) int {
	if n < 1 || n > MaxPackedN {
		return 0
	}
	return MaxPackedN / n
}

// laneExtract returns lane `lane`'s n-bit segment of a lane-packed word,
// right-aligned (bit j-1 = node j).
func laneExtract(w uint64, lane, n int) uint64 {
	return (w >> uint(lane*n)) & PlaneMask(n)
}

// LaneView extracts one lane of a lane-packed plane word as a per-run mask
// (bit j-1 = node j), the inverse of placing a run at lane `lane`.
func LaneView(w uint64, lane, n int) uint64 { return laneExtract(w, lane, n) }

// BatchRoundInput carries one round's controller observations for every lane
// of a gang, in lane-packed plane form. It is the G-run generalisation of
// PackedRoundInput: bit r·N + (j-1) of a plane is lane r's bit for node j.
type BatchRoundInput struct {
	// Round is the absolute round number, shared by all lanes; it must
	// advance by exactly one per StepBatch.
	Round int
	// Rows[j] is the lane-packed decoded diagnostic message of interface
	// variable j (1-based). Lane r's segment is meaningful iff the lane's
	// Present bit for j is set; absent segments may hold garbage.
	Rows []BitSyndrome
	// Present marks the interface variables holding a decodable valid
	// payload, lane-packed (bit r·N + j-1 = lane r, variable j).
	Present uint64
	// Validity packs the validity bits of the interface variables, lane-
	// packed like Present.
	Validity BitSyndrome
	// CollisionFaulty marks the lanes (bit r = lane r) whose local collision
	// detector reports Faulty for the diagnosed round — the Lemma 3 fallback
	// input. Lanes with a clear bit resolve ⊥ to Healthy, exactly like a nil
	// CollisionFn on the per-run path.
	CollisionFaulty uint64
}

// BatchRoundOutput is the result of one gang execution. Every field is a
// value (lane-packed plane words), so retaining an output costs nothing and
// StepBatch allocates nothing in steady state.
type BatchRoundOutput struct {
	// Round echoes the executed round; DiagnosedRound is the round the
	// consistent health vectors refer to (-1 while warming up).
	Round          int
	DiagnosedRound int
	// Warm reports whether the gang produced health vectors this round.
	Warm bool
	// ConsOp/ConsKnown are the lane-packed consistent health vectors (every
	// lane bit Known once warm, after the Lemma 3 fallback).
	ConsOp, ConsKnown uint64
	// SendOp/SendKnown are the lane-packed outgoing syndromes (the
	// dissemination payloads; a lane's wire bytes are its Op∧Known segment).
	SendOp, SendKnown uint64
	// ActiveMask is the lane-packed activity vector after the update.
	ActiveMask uint64
	// IsolatedMask/ReintegratedMask mark the nodes that crossed an isolation
	// threshold this round, lane-packed.
	IsolatedMask, ReintegratedMask uint64
}

// LaneConsHV returns lane `lane`'s consistent health vector.
func (o *BatchRoundOutput) LaneConsHV(lane, n int) BitSyndrome {
	return BitSyndrome{Op: laneExtract(o.ConsOp, lane, n), Known: laneExtract(o.ConsKnown, lane, n)}
}

// LaneSend returns lane `lane`'s outgoing syndrome.
func (o *BatchRoundOutput) LaneSend(lane, n int) BitSyndrome {
	return BitSyndrome{Op: laneExtract(o.SendOp, lane, n), Known: laneExtract(o.SendKnown, lane, n)}
}

// LaneActiveMask returns lane `lane`'s activity vector (bit j-1 = node j).
func (o *BatchRoundOutput) LaneActiveMask(lane, n int) uint64 {
	return laneExtract(o.ActiveMask, lane, n)
}

// LaneIsolated returns lane `lane`'s isolations this round (bit j-1).
func (o *BatchRoundOutput) LaneIsolated(lane, n int) uint64 {
	return laneExtract(o.IsolatedMask, lane, n)
}

// LaneReintegrated returns lane `lane`'s reintegrations this round.
func (o *BatchRoundOutput) LaneReintegrated(lane, n int) uint64 {
	return laneExtract(o.ReintegratedMask, lane, n)
}

// batchAlignBuf is alignBufP for a gang: one lane-packed presence mask and
// lane-packed row/validity planes shared by all lanes.
type batchAlignBuf struct {
	rows []BitSyndrome
	set  uint64
	ls   BitSyndrome
	al   BitSyndrome
}

// BatchProtocol runs one node's diagnostic job for G independent repetitions
// at once (same Config — shape, id, l_i — in every lane; what differs per
// lane is the observed inputs). Create one per node with NewBatchProtocol,
// call StepBatch exactly once per TDMA round, and Reset(lanes) between
// repetition gangs (ragged final gangs shrink the lane count).
type BatchProtocol struct {
	cfg   Config
	n     int
	lanes int
	steps int

	// Lane-replicated masks, rebuilt by Reset: laneRep has bit r·N set for
	// every live lane (the multiplicative lane replicator), allB covers every
	// live lane's node bits, selfB is the node's own column in every lane,
	// lowB/hiB split read alignment at l_i.
	laneRep uint64
	allB    uint64
	selfB   uint64
	lowB    uint64
	laneAll uint64 // PlaneMask(n), one lane's segment

	pbufs     [2]batchAlignBuf
	lastSentB BitSyndrome
	prevSentB BitSyndrome

	// op/know are the gang diagnostic-matrix scratch (1-based rows). Unlike
	// the per-run path the matrix is not part of the output contract, so the
	// planes are protocol-owned and reused every round — StepBatch allocates
	// nothing in steady state.
	op   []uint64
	know []uint64

	pr *batchPR

	// metrics holds the optional per-lane telemetry attachments
	// (SetLaneMetrics); any is their non-nil disjunction.
	metrics    []*StepMetrics
	anyMetrics bool

	// snapAccuse/snapAge are the diagnostic-mode accusation state every lane
	// shares (no accusations ever), kept materialised for SnapshotLane.
	snapAccuse []int
	snapAge    []int
}

// NewBatchProtocol builds the gang diagnostic job: `lanes` independent runs
// of the node described by cfg. It requires the diagnostic mode (membership
// accusation state is per-run shaped) and N·lanes ≤ MaxPackedN.
func NewBatchProtocol(cfg Config, lanes int) (*BatchProtocol, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeDiagnostic
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode != ModeDiagnostic {
		return nil, fmt.Errorf("core: node %d: the batch path covers the diagnostic mode only", cfg.ID)
	}
	if max := BatchLanes(cfg.N); lanes < 1 || lanes > max {
		return nil, fmt.Errorf("core: node %d: %d lanes of an N=%d system do not fit one word (1..%d)", cfg.ID, lanes, cfg.N, max)
	}
	p := &BatchProtocol{
		cfg:        cfg,
		n:          cfg.N,
		op:         make([]uint64, cfg.N+1),
		know:       make([]uint64, cfg.N+1),
		metrics:    make([]*StepMetrics, BatchLanes(cfg.N)),
		snapAccuse: make([]int, cfg.N+1),
		snapAge:    make([]int, cfg.N+1),
	}
	for j := range p.snapAge {
		p.snapAge[j] = accusationSkew + 1
	}
	p.pbufs[0].rows = make([]BitSyndrome, cfg.N+1)
	p.pbufs[1].rows = make([]BitSyndrome, cfg.N+1)
	var err error
	if p.pr, err = newBatchPR(cfg.N, BatchLanes(cfg.N), cfg.PR); err != nil {
		return nil, err
	}
	p.Reset(lanes)
	return p, nil
}

// Config returns the shared per-lane configuration.
func (p *BatchProtocol) Config() Config { return p.cfg }

// Lanes returns the current gang width.
func (p *BatchProtocol) Lanes() int { return p.lanes }

// Reset rewinds every lane to the freshly constructed state and sets the
// gang width for the next repetition group (ragged final gangs pass a
// smaller width). It keeps all allocated buffers.
func (p *BatchProtocol) Reset(lanes int) {
	if max := BatchLanes(p.n); lanes < 1 || lanes > max {
		panic(fmt.Sprintf("core: node %d: Reset to %d lanes, want 1..%d", p.cfg.ID, lanes, max))
	}
	n := p.n
	p.lanes = lanes
	p.laneAll = PlaneMask(n)
	p.laneRep = 0
	for r := 0; r < lanes; r++ {
		p.laneRep |= 1 << uint(r*n)
	}
	// Lane segments are disjoint, so replicating an n-bit mask into every
	// live lane is a single multiply by the lane replicator (no carries).
	p.allB = p.laneRep * p.laneAll
	p.selfB = p.laneRep << uint(p.cfg.ID-1)
	l := p.cfg.L
	if p.cfg.Dynamic {
		l = 0
	}
	p.lowB = p.laneRep * PlaneMask(l)

	hw := BitSyndrome{Op: p.allB, Known: p.allB}
	for b := range p.pbufs {
		buf := &p.pbufs[b]
		for j := 1; j <= n; j++ {
			buf.rows[j] = hw
		}
		buf.set = p.allB
		buf.ls, buf.al = hw, hw
	}
	p.lastSentB, p.prevSentB = hw, hw
	p.steps = 0
	p.pr.reset(lanes)
}

// ownRowB is ownRowP for the gang: the lane-packed syndromes this node
// physically transmitted in the previous round.
func (p *BatchProtocol) ownRowB() BitSyndrome {
	if p.cfg.SendCurrRound {
		return p.lastSentB
	}
	return p.prevSentB
}

// StepBatch executes the diagnostic job of every lane for one round. It is
// the gang form of StepPacked: each phase of Alg. 1 runs once on lane-packed
// words and advances all lanes together. Rows stays caller-owned (entries
// are copied by value) and may be reused immediately. The steady state
// allocates nothing — the output is all values and the matrix scratch is
// protocol-owned.
//
//ttdiag:noretain params
func (p *BatchProtocol) StepBatch(in BatchRoundInput) (BatchRoundOutput, error) {
	n := p.n
	if want := p.cfg.StartRound + p.steps; in.Round != want {
		return BatchRoundOutput{}, fmt.Errorf("core: node %d: StepBatch round %d, want %d", p.cfg.ID, in.Round, want)
	}
	if len(in.Rows) != n+1 {
		return BatchRoundOutput{}, fmt.Errorf("core: node %d: Rows has %d entries, want %d", p.cfg.ID, len(in.Rows), n+1)
	}
	all := p.allB
	present := in.Present & all
	validity := in.Validity.normalized(all)

	// rd was written in the previous round; wr becomes next round's rd.
	rd := &p.pbufs[p.steps&1]
	wr := &p.pbufs[(p.steps+1)&1]

	// Phases 1 and 3 — read alignment (Alg. 1 lines 1-6): entries 1..l_i
	// come from the previous read, the rest from the current one. All lanes
	// share l_i (same Config), so the split is the same two mask merges as
	// the per-run path, just over lane-replicated masks.
	low := p.lowB
	hi := all &^ low
	alSet := (rd.set & low) | (present & hi)
	alLS := BitSyndrome{
		Op:    (rd.ls.Op & low) | (validity.Op & hi),
		Known: (rd.ls.Known & low) | (validity.Known & hi),
	}
	wr.al = alLS

	out := BatchRoundOutput{Round: in.Round, DiagnosedRound: -1}

	// Phase 4 — analysis (Alg. 1 lines 11-14), diagnostic mode only.
	warm := p.steps >= p.cfg.Lag()
	var diagRound int
	if warm {
		self := p.selfB
		rowSet := (alSet &^ self) | self
		l := p.cfg.L
		if p.cfg.Dynamic {
			l = 0
		}
		// Install the gang matrix: row j's lane segment is live iff lane r's
		// rowSet bit for j is set; compressing those bits onto the lane
		// replicator and multiplying by the segment mask expands per-lane row
		// presence into a plane mask (fault outcome as mask AND, not branch).
		for j := 1; j <= n; j++ {
			var row BitSyndrome
			switch {
			case j == p.cfg.ID:
				// Each lane's own row is its locally buffered copy of the
				// syndrome it physically transmitted in round k-1 (Lemma 3).
				row = p.ownRowB()
			case j <= l:
				row = rd.rows[j]
			default:
				row = in.Rows[j].normalized(all)
			}
			seg := ((rowSet >> uint(j-1)) & p.laneRep) * p.laneAll
			p.op[j] = row.Op & row.Known & seg
			p.know[j] = row.Known & seg
		}

		consOp, consKnown := voteAllLanes(p.op, p.know, n, p.laneRep)

		diagRound = in.Round - p.cfg.Lag()
		// ⊥ fallback (Alg. 1 line 14): columns outside consKnown resolve to
		// the lane's local collision verdict. The verdict is per lane and
		// round, not per column, so the per-run ascending-column query loop
		// collapses to one lane-mask expansion (cold: ⊥ needs ≥ N-1 silent
		// senders in that lane).
		if unk := all &^ consKnown; unk != 0 {
			lanesMask := uint64(1)<<uint(p.lanes) - 1
			var faultyLanes uint64
			for rem := in.CollisionFaulty & lanesMask; rem != 0; rem &= rem - 1 {
				r := bits.TrailingZeros64(rem)
				faultyLanes |= p.laneAll << uint(r*n)
			}
			consOp |= unk &^ faultyLanes
			consKnown = all
		}
		out.ConsOp, out.ConsKnown = consOp, consKnown
		out.DiagnosedRound = diagRound
		out.Warm = true
	}

	// Phase 2 — dissemination (send alignment, Alg. 1 lines 7-10).
	var outBits BitSyndrome
	switch {
	case p.cfg.AllSendCurrRound:
		outBits = alLS
	case p.cfg.SendCurrRound:
		outBits = rd.al
	default:
		outBits = alLS
	}
	out.SendOp, out.SendKnown = outBits.Op, outBits.Known

	// Phase 5 — update counters (Alg. 1 line 15, Alg. 2): one masked sweep
	// over every lane's faulty columns plus the lanes' attention sets.
	if warm {
		out.IsolatedMask, out.ReintegratedMask = p.pr.updateMasked(out.ConsKnown &^ out.ConsOp & all)
	}
	out.ActiveMask = p.pr.activeMask

	// Buffering for the next round (Alg. 1 lines 16-17). Absent lane
	// segments of a row may retain garbage — every read masks them out via
	// the presence bits, exactly like the per-run set mask.
	wr.set = present
	for j := 1; j <= n; j++ {
		wr.rows[j] = in.Rows[j].normalized(all)
	}
	wr.ls = validity
	p.prevSentB = p.lastSentB
	p.lastSentB = outBits
	if p.anyMetrics {
		p.emitMetrics(&out, warm, diagRound)
	}
	p.steps++
	return out, nil
}

// voteAllLanes is the gang vote kernel: one carry-save pass over every
// lane's every column, identical to Matrix.voteAllPlanes except the
// self-column mask is replicated into every lane by laneRep. op/know are the
// 1-based gang matrix planes, already restricted to the live lanes (absent
// rows carry zero know segments). Per-column counts stay ≤ N-1 ≤ 63, so the
// six counter planes cover every lane at once. Lane-exact equivalence with
// the per-run kernel is pinned by FuzzVoteAllBatch.
func voteAllLanes(op, know []uint64, n int, laneRep uint64) (consOp, consKnown uint64) {
	var healthy, faulty [countPlanes]uint64
	var any uint64
	for i := 1; i <= n; i++ {
		valid := know[i] &^ (laneRep << uint(i-1))
		if valid == 0 {
			continue
		}
		any |= valid
		addPlane(&healthy, op[i]&valid)
		addPlane(&faulty, valid&^op[i])
	}
	var borrow uint64
	for k := 0; k < countPlanes; k++ {
		borrow = (^healthy[k] & (faulty[k] | borrow)) | (faulty[k] & borrow)
	}
	return any &^ borrow, any
}

// SetLaneMetrics attaches (or, with nil, detaches) per-lane telemetry; lane
// r's instruments receive exactly what the per-run protocol of that lane
// would emit. The attachment survives Reset.
func (p *BatchProtocol) SetLaneMetrics(lane int, m *StepMetrics) {
	p.metrics[lane] = m
	p.anyMetrics = false
	for _, lm := range p.metrics {
		if lm != nil {
			p.anyMetrics = true
			return
		}
	}
}

// emitMetrics mirrors emitStepMetrics per attached lane, reading the lane's
// segments of the gang matrix and counters.
func (p *BatchProtocol) emitMetrics(out *BatchRoundOutput, warm bool, diagRound int) {
	n := p.n
	for lane := 0; lane < p.lanes; lane++ {
		m := p.metrics[lane]
		if m == nil {
			continue
		}
		m.Steps.Inc()
		m.Isolations.Add(int64(bits.OnesCount64(laneExtract(out.IsolatedMask, lane, n))))
		m.Reintegrations.Add(int64(bits.OnesCount64(laneExtract(out.ReintegratedMask, lane, n))))
		if !warm {
			continue
		}
		shift := uint(lane * n)
		consOp := laneExtract(out.ConsOp, lane, n)
		consKnown := laneExtract(out.ConsKnown, lane, n)
		for j := 1; j <= n; j++ {
			bit := uint64(1) << uint(shift+uint(j-1))
			faulty, healthy := 0, 0
			for i := 1; i <= n; i++ {
				if i == j || p.know[i]&bit == 0 {
					continue
				}
				if p.op[i]&bit != 0 {
					healthy++
				} else {
					faulty++
				}
			}
			switch {
			case faulty+healthy == 0:
				m.VotesBottom.Inc()
			case faulty > healthy:
				m.VotesFaulty.Inc()
			default:
				m.VotesHealthy.Inc()
				if faulty == healthy && faulty > 0 {
					m.VotesTied.Inc()
				}
			}
		}
		var disagreements int
		for i := 1; i <= n; i++ {
			rowKnow := laneExtract(p.know[i], lane, n)
			if rowKnow == 0 {
				continue
			}
			rowOp := laneExtract(p.op[i], lane, n)
			conflict := rowKnow & consKnown & (rowOp ^ consOp) &^ (uint64(1) << uint(i-1))
			disagreements += bits.OnesCount64(conflict)
		}
		m.Disagreements.Add(int64(disagreements))
		base := lane * (n + 1)
		var maxPen int64
		for j := 1; j <= n; j++ {
			if v := p.pr.penalties[base+j]; v > maxPen {
				maxPen = v
			}
		}
		m.PenaltyMax.Observe(maxPen)
		if m.PenaltySeries != nil {
			round := int64(diagRound)
			for j := 1; j <= n && j < len(m.PenaltySeries); j++ {
				m.PenaltySeries[j].Append(round, p.pr.penalties[base+j])
			}
		}
	}
}

// LanePenalty returns lane `lane`'s penalty counter of node j.
func (p *BatchProtocol) LanePenalty(lane, j int) int64 {
	if j < 1 || j > p.n {
		return 0
	}
	return p.pr.penalties[lane*(p.n+1)+j]
}

// LaneActive reports whether node j is active in lane `lane`.
func (p *BatchProtocol) LaneActive(lane, j int) bool {
	if j < 1 || j > p.n {
		return false
	}
	return p.pr.active[lane*(p.n+1)+j]
}

// SnapshotLane serialises lane `lane`'s full protocol state to JSON,
// byte-identical to Protocol.Snapshot of the per-run instance that ran the
// same inputs (pinned by the differential tests).
func (p *BatchProtocol) SnapshotLane(lane int) ([]byte, error) {
	if lane < 0 || lane >= p.lanes {
		return nil, fmt.Errorf("core: node %d: snapshot of lane %d, want 0..%d", p.cfg.ID, lane, p.lanes-1)
	}
	n := p.n
	base := lane * (n + 1)
	snap := protocolSnapshot{
		Config:     p.cfg,
		Steps:      p.steps,
		LastSent:   p.laneSyndrome(p.lastSentB, lane),
		PrevSent:   p.laneSyndrome(p.prevSentB, lane),
		Accuse:     p.snapAccuse,
		AccusedAge: p.snapAge,
		PR: prSnapshot{
			Penalties: p.pr.penalties[base : base+n+1 : base+n+1],
			Rewards:   p.pr.rewards[base : base+n+1 : base+n+1],
			Active:    p.pr.active[base : base+n+1 : base+n+1],
			Observe:   p.pr.observe[base : base+n+1 : base+n+1],
		},
	}
	rd := &p.pbufs[p.steps&1]
	snap.PrevLS = p.laneSyndrome(rd.ls, lane)
	snap.PrevAlLS = p.laneSyndrome(rd.al, lane)
	snap.PrevDM = make(map[int]Syndrome)
	for j := 1; j <= n; j++ {
		if rd.set&(1<<uint(lane*n+j-1)) != 0 {
			snap.PrevDM[j] = p.laneSyndrome(rd.rows[j], lane)
		}
	}
	return json.Marshal(snap)
}

// laneSyndrome materialises lane `lane`'s segment of a lane-packed syndrome.
func (p *BatchProtocol) laneSyndrome(b BitSyndrome, lane int) Syndrome {
	n := p.n
	return BitSyndrome{
		Op:    laneExtract(b.Op, lane, n),
		Known: laneExtract(b.Known, lane, n),
	}.Unpack(n)
}

// batchPR is the gang form of PenaltyReward: the counters of every lane live
// in flat slices indexed lane·(N+1)+j — each lane's block has the exact
// layout of the per-run counter slices, so SnapshotLane can expose them
// without copying — and the activity/attention masks are lane-packed.
type batchPR struct {
	cfg       PRConfig
	n         int
	lanes     int
	penalties []int64
	rewards   []int64
	observe   []int64
	active    []bool
	// activeMask mirrors active[] lane-packed (bit r·N + j-1); attention
	// marks the nodes for which a Healthy verdict is not a no-op, exactly as
	// on the per-run path but across all lanes at once.
	activeMask uint64
	attention  uint64
}

func newBatchPR(n, maxLanes int, cfg PRConfig) (*batchPR, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	w := maxLanes * (n + 1)
	return &batchPR{
		cfg:       cfg,
		n:         n,
		penalties: make([]int64, w),
		rewards:   make([]int64, w),
		observe:   make([]int64, w),
		active:    make([]bool, w),
	}, nil
}

func (b *batchPR) reset(lanes int) {
	b.lanes = lanes
	b.activeMask = 0
	b.attention = 0
	for r := 0; r < lanes; r++ {
		base := r * (b.n + 1)
		b.active[base] = false
		for j := 1; j <= b.n; j++ {
			b.penalties[base+j] = 0
			b.rewards[base+j] = 0
			b.observe[base+j] = 0
			b.active[base+j] = true
		}
		b.activeMask |= PlaneMask(b.n) << uint(r*b.n)
	}
}

// updateMasked applies one round's lane-packed faulty columns (Alg. 2 across
// the gang): only bits in faultyMask ∪ attention are visited — ascending bit
// order is lane-major, and within each lane matches the per-run ascending
// node order, so every lane's counter trajectory is identical to its per-run
// instance.
func (b *batchPR) updateMasked(faultyMask uint64) (isolated, reintegrated uint64) {
	for rem := faultyMask | b.attention; rem != 0; rem &= rem - 1 {
		pos := bits.TrailingZeros64(rem)
		health := Healthy
		if faultyMask&(rem&-rem) != 0 {
			health = Faulty
		}
		iso, reint := b.updateNode(pos, health)
		if iso {
			isolated |= 1 << uint(pos)
		}
		if reint {
			reintegrated |= 1 << uint(pos)
		}
	}
	return isolated, reintegrated
}

// updateNode applies one verdict to the node at lane-packed bit position pos,
// mirroring PenaltyReward.updateNode + syncMask.
func (b *batchPR) updateNode(pos int, health Opinion) (isolated, reintegrated bool) {
	j := pos%b.n + 1
	i := (pos/b.n)*(b.n+1) + j
	bit := uint64(1) << uint(pos)
	if !b.active[i] {
		// Extension: observation of isolated nodes.
		if b.cfg.ReintegrationThreshold > 0 {
			if health == Faulty {
				b.observe[i] = 0
				return false, false
			}
			b.observe[i]++
			if b.observe[i] >= b.cfg.ReintegrationThreshold {
				b.active[i] = true
				b.penalties[i] = 0
				b.rewards[i] = 0
				b.observe[i] = 0
				b.activeMask |= bit
				b.attention &^= bit
				return false, true
			}
		}
		return false, false
	}
	if health == Faulty {
		b.penalties[i] += b.cfg.criticality(j)
		b.rewards[i] = 0
		if b.penalties[i] > b.cfg.PenaltyThreshold {
			b.active[i] = false
			b.observe[i] = 0
			b.activeMask &^= bit
			if b.cfg.ReintegrationThreshold > 0 {
				b.attention |= bit
			} else {
				b.attention &^= bit
			}
			return true, false
		}
		b.attention |= bit
		return false, false
	}
	if b.penalties[i] > 0 {
		b.rewards[i]++
		if b.rewards[i] >= b.cfg.RewardThreshold {
			b.penalties[i] = 0
			b.rewards[i] = 0
			b.attention &^= bit
		}
	}
	return false, false
}
