package core

import (
	"testing"
	"testing/quick"
)

func TestOpinionString(t *testing.T) {
	for _, tt := range []struct {
		o    Opinion
		want string
	}{{Faulty, "0"}, {Healthy, "1"}, {Erased, "e"}, {Opinion(9), "?9"}} {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestNewSyndrome(t *testing.T) {
	s := NewSyndrome(4, Healthy)
	if s.N() != 4 {
		t.Fatalf("N() = %d", s.N())
	}
	if s[0] != Erased {
		t.Error("index 0 must be Erased")
	}
	for j := 1; j <= 4; j++ {
		if s[j] != Healthy {
			t.Errorf("entry %d = %v", j, s[j])
		}
	}
	if got := s.String(); got != "1111" {
		t.Errorf("String() = %q", got)
	}
}

func TestSyndromeCloneIndependence(t *testing.T) {
	s := NewSyndrome(4, Healthy)
	c := s.Clone()
	c[2] = Faulty
	if s[2] != Healthy {
		t.Fatal("Clone shares storage")
	}
	if !s.Equal(s.Clone()) {
		t.Fatal("clone not equal to original")
	}
	var nilSyn Syndrome
	if nilSyn.Clone() != nil {
		t.Fatal("nil.Clone() != nil")
	}
	if nilSyn.N() != 0 {
		t.Fatal("nil.N() != 0")
	}
}

func TestSyndromeEqual(t *testing.T) {
	a := NewSyndrome(4, Healthy)
	b := NewSyndrome(4, Healthy)
	if !a.Equal(b) {
		t.Fatal("equal syndromes reported unequal")
	}
	b[3] = Faulty
	if a.Equal(b) {
		t.Fatal("different syndromes reported equal")
	}
	if a.Equal(NewSyndrome(5, Healthy)) {
		t.Fatal("different sizes reported equal")
	}
}

func TestSyndromeCountFaulty(t *testing.T) {
	s := NewSyndrome(5, Healthy)
	s[2], s[5] = Faulty, Faulty
	if got := s.CountFaulty(); got != 2 {
		t.Fatalf("CountFaulty = %d", got)
	}
}

func TestEncodedLen(t *testing.T) {
	for _, tt := range []struct{ n, want int }{{1, 1}, {4, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3}, {64, 8}} {
		if got := EncodedLen(tt.n); got != tt.want {
			t.Errorf("EncodedLen(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(bits uint64, nRaw uint8) bool {
		n := int(nRaw%63) + 2
		s := NewSyndrome(n, Faulty)
		for j := 1; j <= n; j++ {
			if bits&(1<<uint(j-1)) != 0 {
				s[j] = Healthy
			}
		}
		enc := s.Encode()
		if len(enc) != EncodedLen(n) {
			return false
		}
		dec, err := DecodeSyndrome(enc, n)
		if err != nil {
			return false
		}
		return dec.Equal(s)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBandwidthIsPaperSize(t *testing.T) {
	// "In our prototype diagnostic messages were as small as N bits":
	// the 4-node prototype needs a single byte on the wire.
	s := NewSyndrome(4, Healthy)
	if got := len(s.Encode()); got != 1 {
		t.Fatalf("4-node syndrome encodes to %d bytes, want 1", got)
	}
}

func TestDecodeSyndromeLengthMismatch(t *testing.T) {
	if _, err := DecodeSyndrome([]byte{0, 1}, 4); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := DecodeSyndrome(nil, 4); err == nil {
		t.Fatal("nil payload accepted")
	}
}

func TestEncodeErasedDefensivelyFaulty(t *testing.T) {
	s := NewSyndrome(4, Healthy)
	s[2] = Erased
	dec, err := DecodeSyndrome(s.Encode(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if dec[2] != Faulty {
		t.Fatalf("Erased encoded as %v, want Faulty", dec[2])
	}
}
