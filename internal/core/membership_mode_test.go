package core

import "testing"

// newMembershipWorld builds the pure-core harness with every protocol in
// membership mode.
func newMembershipWorld(t *testing.T, ls []int, allSCR bool) *world {
	t.Helper()
	w := newWorld(t, 4, ls, allSCR, PRConfig{})
	for id := 1; id <= 4; id++ {
		cfg := w.protos[id].Config()
		cfg.Mode = ModeMembership
		p, err := NewProtocol(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.protos[id] = p
	}
	return w
}

// TestMembershipModeAccusationLifecycle exercises the accusation machinery
// at the core level, across every schedule class: an asymmetric receive
// fault makes the victim a minority of one; the other nodes accuse it, all
// obedient nodes convict it consistently, and — crucially — the accusation
// dies out: a few rounds later every disseminated syndrome is all-healthy
// again and no further convictions appear (no cascades, no ping-pong).
func TestMembershipModeAccusationLifecycle(t *testing.T) {
	for si, ls := range defaultLs {
		allSCR := si == 0
		w := newMembershipWorld(t, ls, allSCR)
		const faultRound = 8
		w.blind = func(round, sender, rcv int) bool {
			return round == faultRound && sender == 2 && rcv == 1
		}
		lag := w.protos[1].Config().Lag()
		victimConvictedAt := -1
		lastConvictionAt := -1
		for k := 0; k < 30; k++ {
			outs := w.runRound()
			if outs[1].ConsHV == nil {
				continue
			}
			ref := checkAgreement(t, w, outs)
			if ref[1] == Faulty {
				if victimConvictedAt < 0 {
					victimConvictedAt = k
				}
				lastConvictionAt = k
			}
			for _, j := range []int{2, 3, 4} {
				if ref[j] == Faulty {
					t.Fatalf("schedule %d round %d: non-victim %d convicted (%v)", si, k, j, ref)
				}
			}
		}
		if victimConvictedAt < 0 {
			t.Fatalf("schedule %d: minority victim never convicted (liveness)", si)
		}
		if victimConvictedAt > faultRound+2*(lag+1) {
			t.Fatalf("schedule %d: victim convicted at round %d, too late", si, victimConvictedAt)
		}
		// The accusation episode is bounded: convictions stop well before
		// the end of the run and the final disseminated syndromes are clean.
		if lastConvictionAt > victimConvictedAt+2*(lag+1) {
			t.Fatalf("schedule %d: convictions lingered until round %d (first at %d)",
				si, lastConvictionAt, victimConvictedAt)
		}
		for id := 1; id <= 4; id++ {
			if got := w.outputs[id].SendSyndrome.String(); got != "1111" {
				t.Fatalf("schedule %d: node %d still disseminates %s after the episode", si, id, got)
			}
		}
	}
}

// TestMembershipModeCleanRunRaisesNoAccusations: without faults the
// membership variant must behave exactly like the diagnostic one.
func TestMembershipModeCleanRunRaisesNoAccusations(t *testing.T) {
	w := newMembershipWorld(t, defaultLs[3], false)
	for k := 0; k < 20; k++ {
		outs := w.runRound()
		for id := 1; id <= 4; id++ {
			if len(outs[id].Accused) != 0 {
				t.Fatalf("round %d: node %d accused %v on a clean bus", k, id, outs[id].Accused)
			}
			if outs[id].ConsHV != nil && outs[id].ConsHV.CountFaulty() != 0 {
				t.Fatalf("round %d: clean-run conviction %v", k, outs[id].ConsHV)
			}
		}
	}
}
