package core

import "fmt"

// CopyFrom overwrites this protocol's complete run state with src's: round
// cursor, read-alignment buffer, dissemination history, accusation state,
// and every penalty/reward counter. Afterwards the two instances are
// behaviourally indistinguishable — stepping either with the same inputs
// produces the same outputs — and share no mutable memory, so they may
// diverge freely. It is the in-memory fast path of the checkpoint/restore
// pair: equivalent to Snapshot on src followed by RestoreProtocol on p
// (pinned by a differential test), but a flat state copy with zero
// steady-state allocations instead of a JSON round-trip.
//
// Both protocols must have been built for the same N and the same
// representation (packed or scalar); within that shape the configurations
// may differ — dst adopts src's. Telemetry attachments (SetMetrics) are
// per-instance and deliberately not copied.
func (p *Protocol) CopyFrom(src *Protocol) error {
	if p == src {
		return nil
	}
	if p.cfg.N != src.cfg.N {
		return fmt.Errorf("core: CopyFrom across system sizes (dst N=%d, src N=%d)", p.cfg.N, src.cfg.N)
	}
	if p.packed != src.packed {
		return fmt.Errorf("core: CopyFrom across representations (dst packed=%v, src packed=%v)", p.packed, src.packed)
	}
	n := src.cfg.N
	p.cfg = src.cfg
	p.steps = src.steps

	// Only the buffer the next Step will read carries live state; the other
	// one is fully rewritten (set/ls/al for every entry, dm gated by set)
	// before it is ever read again, so copying it would be dead work.
	if p.packed {
		dst, from := &p.pbufs[p.steps&1], &src.pbufs[src.steps&1]
		copy(dst.rows, from.rows)
		dst.set, dst.ls, dst.al = from.set, from.ls, from.al
		p.lastSentP = src.lastSentP
		p.prevSentP = src.prevSentP
	} else {
		dst, from := &p.bufs[p.steps&1], &src.bufs[src.steps&1]
		for j := 1; j <= n; j++ {
			dst.set[j] = from.set[j]
			if from.set[j] {
				copy(dst.dm[j], from.dm[j])
			}
		}
		copy(dst.ls, from.ls)
		copy(dst.al, from.al)
	}
	// lastSent/prevSent alias per-round output blocks that are immutable by
	// contract (Reset installs fresh syndromes for exactly this reason), so
	// sharing the headers is safe and costs nothing.
	p.lastSent = src.lastSent
	p.prevSent = src.prevSent

	copy(p.accuse, src.accuse)
	copy(p.accusedAge, src.accusedAge)
	p.accuseMask = src.accuseMask
	p.agingMask = src.agingMask

	p.pr.copyFrom(src.pr)

	// The invariant-build activity history is observation state, not run
	// state; dropping it skips one round of the monotonicity check after a
	// restore, exactly like RestoreProtocol.
	p.invPrevActive = nil
	// An attached flight recorder re-baselines on the copied counters so the
	// wholesale state swap does not masquerade as penalty changes.
	if p.trace != nil {
		p.trace.resync(p.pr)
	}
	return nil
}

// copyFrom overwrites pr's counters and masks with src's. Both must be sized
// for the same n (guaranteed by Protocol.CopyFrom's N check). The config is
// copied by value; its Criticalities slice — the only reference field — is
// read-only after validation, so sharing the header is safe.
func (pr *PenaltyReward) copyFrom(src *PenaltyReward) {
	pr.cfg = src.cfg
	copy(pr.penalties, src.penalties)
	copy(pr.rewards, src.rewards)
	copy(pr.active, src.active)
	copy(pr.observe, src.observe)
	pr.masked = src.masked
	pr.activeMask = src.activeMask
	pr.attention = src.attention
}

// CopyFrom is Protocol.CopyFrom for the gang path: it overwrites this batch
// protocol's run state — every lane's — with src's. Both instances must have
// been built for the same N (which fixes the lane capacity); dst adopts
// src's configuration and live lane count. Per-lane telemetry attachments
// are not copied. Zero allocations.
func (p *BatchProtocol) CopyFrom(src *BatchProtocol) error {
	if p == src {
		return nil
	}
	if p.n != src.n {
		return fmt.Errorf("core: batch CopyFrom across system sizes (dst N=%d, src N=%d)", p.n, src.n)
	}
	p.cfg = src.cfg
	p.lanes = src.lanes
	p.steps = src.steps
	p.laneRep, p.allB, p.selfB, p.lowB, p.laneAll = src.laneRep, src.allB, src.selfB, src.lowB, src.laneAll

	// As on the per-run path, only the read buffer is live state; op/know
	// are per-round scratch fully rewritten by the next warm StepBatch.
	dst, from := &p.pbufs[p.steps&1], &src.pbufs[src.steps&1]
	copy(dst.rows, from.rows)
	dst.set, dst.ls, dst.al = from.set, from.ls, from.al
	p.lastSentB = src.lastSentB
	p.prevSentB = src.prevSentB

	p.pr.cfg = src.pr.cfg
	p.pr.lanes = src.pr.lanes
	copy(p.pr.penalties, src.pr.penalties)
	copy(p.pr.rewards, src.pr.rewards)
	copy(p.pr.observe, src.pr.observe)
	copy(p.pr.active, src.pr.active)
	p.pr.activeMask = src.pr.activeMask
	p.pr.attention = src.pr.attention

	// snapAccuse/snapAge hold the constant diagnostic-mode accusation state
	// (no accusations ever) and never change after construction — skip.
	return nil
}
