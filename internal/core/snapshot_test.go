package core

import (
	"strings"
	"testing"

	"ttdiag/internal/rng"
)

// TestSnapshotRestoreMidRun is the checkpointing property: a protocol
// snapshotted mid-run and restored must produce bit-identical outputs to the
// uninterrupted original for every subsequent round, under a random fault
// pattern.
func TestSnapshotRestoreMidRun(t *testing.T) {
	st := rng.NewStream(31)
	mkInput := func(round int) RoundInput {
		in := RoundInput{
			Round:    round,
			DMs:      make([]Syndrome, 5),
			Validity: NewSyndrome(4, Healthy),
		}
		for j := 1; j <= 4; j++ {
			if st.Bool(0.2) {
				in.Validity[j] = Faulty
				continue
			}
			s := NewSyndrome(4, Healthy)
			for m := 1; m <= 4; m++ {
				if st.Bool(0.15) {
					s[m] = Faulty
				}
			}
			in.DMs[j] = s
		}
		return in
	}
	// Two input tapes must be identical: record them.
	const rounds = 24
	tape := make([]RoundInput, rounds)
	for k := range tape {
		tape[k] = mkInput(k)
	}

	cfg := Config{
		N: 4, ID: 2, L: 0, SendCurrRound: true, Mode: ModeMembership,
		PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 4, ReintegrationThreshold: 6},
	}
	original, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var restored *Protocol
	const checkpointAt = 10
	for k := 0; k < rounds; k++ {
		outO, err := original.Step(tape[k])
		if err != nil {
			t.Fatal(err)
		}
		if k == checkpointAt {
			data, err := original.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err = RestoreProtocol(data)
			if err != nil {
				t.Fatal(err)
			}
			continue
		}
		if k > checkpointAt {
			outR, err := restored.Step(tape[k])
			if err != nil {
				t.Fatal(err)
			}
			if !outR.SendSyndrome.Equal(outO.SendSyndrome) {
				t.Fatalf("round %d: send %v != %v", k, outR.SendSyndrome, outO.SendSyndrome)
			}
			if (outR.ConsHV == nil) != (outO.ConsHV == nil) {
				t.Fatalf("round %d: warm-up divergence", k)
			}
			if outR.ConsHV != nil && !outR.ConsHV.Equal(outO.ConsHV) {
				t.Fatalf("round %d: cons_hv %v != %v", k, outR.ConsHV, outO.ConsHV)
			}
			for j := 1; j <= 4; j++ {
				if restored.PenaltyReward().Penalty(j) != original.PenaltyReward().Penalty(j) {
					t.Fatalf("round %d: penalty(%d) diverged", k, j)
				}
				if restored.PenaltyReward().IsActive(j) != original.PenaltyReward().IsActive(j) {
					t.Fatalf("round %d: activity(%d) diverged", k, j)
				}
			}
		}
	}
	// The checkpoint happened after Step(checkpointAt): the restored
	// instance must reject a replay of an old round.
	if _, err := restored.Step(tape[0]); err == nil {
		t.Fatal("restored protocol accepted an out-of-sequence round")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreProtocol([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := RestoreProtocol([]byte(`{"config":{"N":1}}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Valid config but truncated state vectors.
	p, err := NewProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Syndromes marshal as base64 byte strings: "AgEBAQE=" is [ε,1,1,1,1],
	// "AgEB" decodes to only three entries. A checkpoint whose round cursor
	// is missing or negative must be rejected too — resuming from round zero
	// would silently replay rounds the cluster already executed.
	for _, tt := range []struct{ from, to string }{
		{`"prevLS":"AgEBAQE="`, `"prevLS":"AgEB"`},
		{`"accuse":[0,0,0,0,0]`, `"accuse":[0]`},
		{`"penalties":[0,0,0,0,0]`, `"penalties":[0,0]`},
		{`"steps":0,`, ``},
		{`"steps":0,`, `"steps":-3,`},
		{`"steps":0,`, `"steps":null,`},
	} {
		corrupted := strings.Replace(string(data), tt.from, tt.to, 1)
		if corrupted == string(data) {
			t.Fatalf("corruption %q did not apply; snapshot = %s", tt.from, data)
		}
		if _, err := RestoreProtocol([]byte(corrupted)); err == nil {
			t.Fatalf("corrupted snapshot (%s) accepted", tt.to)
		}
	}
	// Sanity: the untouched snapshot restores.
	if _, err := RestoreProtocol(data); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTripFresh(t *testing.T) {
	cfg := Config{
		N: 4, ID: 3, L: 3, SendCurrRound: false,
		PR: PRConfig{PenaltyThreshold: 5, RewardThreshold: 5},
	}
	p, err := NewProtocol(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := RestoreProtocol(data)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Config()
	if got.N != cfg.N || got.ID != cfg.ID || got.L != cfg.L ||
		got.SendCurrRound != cfg.SendCurrRound ||
		got.PR.PenaltyThreshold != cfg.PR.PenaltyThreshold {
		t.Fatalf("config mismatch: %+v", got)
	}
	in := RoundInput{Round: 0, DMs: make([]Syndrome, 5), Validity: NewSyndrome(4, Healthy)}
	if _, err := q.Step(in); err != nil {
		t.Fatal(err)
	}
}
