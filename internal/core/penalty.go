package core

import (
	"fmt"
	"math/bits"
)

// PRConfig tunes the penalty/reward algorithm (Alg. 2 and Sec. 9).
type PRConfig struct {
	// PenaltyThreshold is P: a node is isolated once its penalty counter
	// exceeds P.
	PenaltyThreshold int64
	// RewardThreshold is R: after R consecutive fault-free rounds (while
	// carrying a non-zero penalty) the node's counters are reset — earlier
	// faults are no longer correlated with later ones.
	RewardThreshold int64
	// Criticalities[i] is s_i, the penalty increment of node i: the maximum
	// criticality level of the applications hosted on the node (Table 2).
	// 1-based; entry 0 is ignored. An empty slice means every node has
	// criticality 1.
	Criticalities []int64
	// ReintegrationThreshold enables the extension suggested in Sec. 9:
	// isolated nodes are kept under observation and reintegrated after this
	// many consecutive fault-free rounds. Zero disables reintegration
	// (the paper's baseline behaviour: activity bits only ever go to 0).
	ReintegrationThreshold int64
}

// Validate checks the configuration for an n-node system.
func (c PRConfig) Validate(n int) error {
	if c.PenaltyThreshold < 0 {
		return fmt.Errorf("core: penalty threshold %d must be >= 0", c.PenaltyThreshold)
	}
	if c.RewardThreshold < 1 {
		return fmt.Errorf("core: reward threshold %d must be >= 1", c.RewardThreshold)
	}
	if c.ReintegrationThreshold < 0 {
		return fmt.Errorf("core: reintegration threshold %d must be >= 0", c.ReintegrationThreshold)
	}
	if len(c.Criticalities) != 0 && len(c.Criticalities) != n+1 {
		return fmt.Errorf("core: criticalities has %d entries, want %d (1-based) or none", len(c.Criticalities), n+1)
	}
	for j := 1; j < len(c.Criticalities); j++ {
		if c.Criticalities[j] < 1 {
			return fmt.Errorf("core: criticality of node %d is %d, must be >= 1", j, c.Criticalities[j])
		}
	}
	return nil
}

func (c PRConfig) criticality(j int) int64 {
	if j < len(c.Criticalities) {
		return c.Criticalities[j]
	}
	return 1
}

// PenaltyReward is the per-node instance of Alg. 2: it accumulates the
// consistent health vectors into penalty and reward counters and decides
// isolation. Because every obedient node feeds it the same (consistently
// agreed) health vectors, all obedient nodes take identical isolation
// decisions in the same round.
type PenaltyReward struct {
	cfg       PRConfig
	n         int
	penalties []int64
	rewards   []int64
	active    []bool
	// observe counts consecutive fault-free rounds of isolated nodes for
	// the optional reintegration extension.
	observe []int64
	// masked enables the word-mask bookkeeping below (n <= MaxPackedN).
	masked bool
	// activeMask mirrors active[] as a bit mask (bit j-1 = node j).
	activeMask uint64
	// attention marks the nodes for which a Healthy verdict is not a no-op:
	// active nodes paying off a penalty (rewards must advance) and isolated
	// nodes under reintegration observation. Together with the round's
	// faulty columns it bounds the masked update to the nodes whose
	// counters can actually move — zero in the fault-free steady state.
	attention uint64
}

// NewPenaltyReward builds the algorithm state for an n-node system; all
// counters start at zero and every node starts active.
func NewPenaltyReward(n int, cfg PRConfig) (*PenaltyReward, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: penalty/reward needs n >= 1, got %d", n)
	}
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	pr := &PenaltyReward{
		cfg:       cfg,
		n:         n,
		penalties: make([]int64, n+1),
		rewards:   make([]int64, n+1),
		active:    make([]bool, n+1),
		observe:   make([]int64, n+1),
	}
	for j := 1; j <= n; j++ {
		pr.active[j] = true
	}
	pr.masked = n <= MaxPackedN
	if pr.masked {
		pr.activeMask = PlaneMask(n)
	}
	return pr, nil
}

// Reset zeroes all counters and returns every node to active, restoring the
// freshly constructed state while keeping the allocated counter slices.
func (pr *PenaltyReward) Reset() {
	for j := 1; j <= pr.n; j++ {
		pr.penalties[j] = 0
		pr.rewards[j] = 0
		pr.observe[j] = 0
		pr.active[j] = true
	}
	if pr.masked {
		pr.activeMask = PlaneMask(pr.n)
	}
	pr.attention = 0
}

// ResetConfig swaps in a new tuning configuration and resets all counters.
// The node count is fixed at construction time.
func (pr *PenaltyReward) ResetConfig(cfg PRConfig) error {
	if err := cfg.Validate(pr.n); err != nil {
		return err
	}
	pr.cfg = cfg
	pr.Reset()
	return nil
}

// Update applies one consistent health vector (Alg. 2) and folds the result
// into the activity vector (Alg. 1 line 15: active ← active AND curr_act).
// It returns the nodes that transitioned in this round: isolated lists nodes
// whose activity bit dropped to 0, reintegrated (extension) lists nodes that
// returned to service.
func (pr *PenaltyReward) Update(consHV Syndrome) (isolated, reintegrated []int, err error) {
	if consHV.N() != pr.n {
		return nil, nil, fmt.Errorf("core: health vector covers %d nodes, want %d", consHV.N(), pr.n)
	}
	for i := 1; i <= pr.n; i++ {
		iso, reint := pr.UpdateNode(i, consHV[i])
		if iso {
			isolated = append(isolated, i)
		}
		if reint {
			reintegrated = append(reintegrated, i)
		}
	}
	return isolated, reintegrated, nil
}

// UpdateNode applies one agreed verdict about a single node (used by the
// low-latency per-slot variant, where verdicts arrive one slot at a time).
// It reports whether the node transitioned to isolated or, under the
// extension, back to active.
func (pr *PenaltyReward) UpdateNode(i int, health Opinion) (isolated, reintegrated bool) {
	if i < 1 || i > pr.n {
		return false, false
	}
	isolated, reintegrated = pr.updateNode(i, health)
	pr.syncMask(i)
	return isolated, reintegrated
}

// updateMasked is Update on a packed health vector: faultyMask marks the
// columns the consistent health vector holds Faulty (every other column is
// Healthy — the fallback of Alg. 1 line 14 leaves no ⊥ entries). Only the
// faulty columns and the attention set are visited; for every other node the
// verdict is Healthy and the update is a no-op by construction (active with
// a zero penalty, or isolated without the reintegration extension).
func (pr *PenaltyReward) updateMasked(faultyMask uint64) (isolated, reintegrated []int) {
	for rem := faultyMask | pr.attention; rem != 0; rem &= rem - 1 {
		i := bits.TrailingZeros64(rem) + 1
		health := Healthy
		if faultyMask&(rem&-rem) != 0 {
			health = Faulty
		}
		iso, reint := pr.updateNode(i, health)
		pr.syncMask(i)
		if iso {
			isolated = append(isolated, i)
		}
		if reint {
			reintegrated = append(reintegrated, i)
		}
	}
	return isolated, reintegrated
}

// syncMask refreshes node i's bits in activeMask and attention after a
// counter update.
func (pr *PenaltyReward) syncMask(i int) {
	if !pr.masked {
		return
	}
	bit := uint64(1) << uint(i-1)
	if pr.active[i] {
		pr.activeMask |= bit
	} else {
		pr.activeMask &^= bit
	}
	needs := !pr.active[i] && pr.cfg.ReintegrationThreshold > 0 ||
		pr.active[i] && pr.penalties[i] > 0
	if needs {
		pr.attention |= bit
	} else {
		pr.attention &^= bit
	}
}

// rebuildMasks recomputes activeMask and attention from the counter slices
// (used after a snapshot restore replaces them).
func (pr *PenaltyReward) rebuildMasks() {
	pr.activeMask, pr.attention = 0, 0
	if !pr.masked {
		return
	}
	for i := 1; i <= pr.n; i++ {
		pr.syncMask(i)
	}
}

// updateNode is UpdateNode without the mask bookkeeping.
func (pr *PenaltyReward) updateNode(i int, health Opinion) (isolated, reintegrated bool) {
	if !pr.active[i] {
		// Extension: observation of isolated nodes.
		if pr.cfg.ReintegrationThreshold > 0 {
			if health == Faulty {
				pr.observe[i] = 0
				return false, false
			}
			pr.observe[i]++
			if pr.observe[i] >= pr.cfg.ReintegrationThreshold {
				pr.active[i] = true
				pr.penalties[i] = 0
				pr.rewards[i] = 0
				pr.observe[i] = 0
				return false, true
			}
		}
		return false, false
	}
	if health == Faulty {
		pr.penalties[i] += pr.cfg.criticality(i)
		pr.rewards[i] = 0
		if pr.penalties[i] > pr.cfg.PenaltyThreshold {
			pr.active[i] = false
			pr.observe[i] = 0
			return true, false
		}
		return false, false
	}
	if pr.penalties[i] > 0 {
		pr.rewards[i]++
		if pr.rewards[i] >= pr.cfg.RewardThreshold {
			pr.penalties[i] = 0
			pr.rewards[i] = 0
		}
	}
	return false, false
}

// Active returns a copy of the activity vector (1-based).
func (pr *PenaltyReward) Active() []bool {
	return append([]bool(nil), pr.active...)
}

// ActiveMask returns the activity vector as a bit mask (bit j-1 = node j
// active) for systems within the packed bound; zero beyond it.
func (pr *PenaltyReward) ActiveMask() uint64 {
	return pr.activeMask
}

// IsActive reports whether node j is currently active (not isolated).
func (pr *PenaltyReward) IsActive(j int) bool {
	if j < 1 || j > pr.n {
		return false
	}
	return pr.active[j]
}

// Penalty returns node j's penalty counter.
func (pr *PenaltyReward) Penalty(j int) int64 {
	if j < 1 || j > pr.n {
		return 0
	}
	return pr.penalties[j]
}

// Reward returns node j's reward counter.
func (pr *PenaltyReward) Reward(j int) int64 {
	if j < 1 || j > pr.n {
		return 0
	}
	return pr.rewards[j]
}
