package core

import (
	"strings"
	"testing"

	"ttdiag/internal/rng"
)

func TestNewPackedMatrixBound(t *testing.T) {
	if _, err := NewPackedMatrix(MaxPackedN + 1); err == nil {
		t.Fatalf("NewPackedMatrix accepted %d nodes", MaxPackedN+1)
	} else if !strings.Contains(err.Error(), "scalar") {
		t.Fatalf("bound error should point at the scalar fallback, got: %v", err)
	}
	m, err := NewPackedMatrix(MaxPackedN)
	if err != nil {
		t.Fatalf("NewPackedMatrix(%d): %v", MaxPackedN, err)
	}
	if !m.Packed() {
		t.Fatalf("NewPackedMatrix returned a scalar matrix")
	}
	if got := NewMatrix(MaxPackedN); !got.Packed() {
		t.Fatalf("NewMatrix(%d) should select the packed representation", MaxPackedN)
	}
	// Beyond the bound NewMatrix transparently serves the scalar reference.
	wide := NewMatrix(MaxPackedN + 1)
	if wide.Packed() {
		t.Fatalf("NewMatrix(%d) should fall back to scalar", MaxPackedN+1)
	}
	if err := wide.SetRow(1, NewSyndrome(MaxPackedN+1, Healthy)); err != nil {
		t.Fatalf("scalar SetRow: %v", err)
	}
	if v, ok := wide.Vote(2); !ok || v != Healthy {
		t.Fatalf("scalar Vote = %v/%v, want Healthy/true", v, ok)
	}
	if err := wide.SetBitRow(1, BitSyndrome{}); err == nil {
		t.Fatalf("SetBitRow must fail on a scalar matrix")
	}
	if _, err := wide.VoteAll(); err == nil {
		t.Fatalf("VoteAll must fail beyond MaxPackedN")
	}
}

// fillRandomMatrix installs the same random content — ε rows, ties, erased
// entries, asymmetric malicious opinions — into every given matrix.
func fillRandomMatrix(t *testing.T, st *rng.Stream, n int, ms ...*Matrix) {
	t.Helper()
	for j := 1; j <= n; j++ {
		var row Syndrome
		if !st.Bool(0.2) { // 20% ε rows
			row = randomSyndrome(st, n, 0.25)
		}
		for _, m := range ms {
			if err := m.SetRow(j, row); err != nil {
				t.Fatalf("SetRow(%d): %v", j, err)
			}
		}
	}
}

// TestVoteAllMatchesScalarReference is the seeded-corpus differential test of
// the word-parallel kernel: at every N in 1..MaxPackedN, random matrices must
// vote bit-identically to the scalar per-column reference, both through the
// packed matrix's own per-column Vote and through a scalar-representation
// twin of the same content.
func TestVoteAllMatchesScalarReference(t *testing.T) {
	st := rng.NewStream(21)
	for n := 1; n <= MaxPackedN; n++ {
		trials := 40
		if n > 16 {
			trials = 15
		}
		for trial := 0; trial < trials; trial++ {
			packed, err := NewPackedMatrix(n)
			if err != nil {
				t.Fatalf("NewPackedMatrix(%d): %v", n, err)
			}
			scalar := newScalarMatrix(n)
			fillRandomMatrix(t, st, n, packed, scalar)

			got, err := packed.VoteAll()
			if err != nil {
				t.Fatalf("n=%d: VoteAll: %v", n, err)
			}
			if want := scalar.voteAllScalar(); got != want {
				t.Fatalf("n=%d trial %d: VoteAll = %+v, want %+v\n%s", n, trial, got, want, packed)
			}
			// Per-column agreement on both representations.
			for j := 1; j <= n; j++ {
				pv, pok := packed.Vote(j)
				sv, sok := scalar.Vote(j)
				if pok != sok || (pok && pv != sv) {
					t.Fatalf("n=%d col %d: packed Vote %v/%v, scalar %v/%v", n, j, pv, pok, sv, sok)
				}
				if got.Get(j) == Erased && pok {
					t.Fatalf("n=%d col %d: VoteAll ⊥ but Vote decided", n, j)
				}
				if !pok {
					continue
				}
				if v := got.Get(j); v != pv {
					t.Fatalf("n=%d col %d: VoteAll %v, Vote %v", n, j, v, pv)
				}
			}
		}
	}
}

// TestVoteAllWorstCase pins the kernel's edge regimes directly: the all-rows
// all-Faulty matrix (maximal counter values at N = 64), exact ties, and the
// empty matrix.
func TestVoteAllWorstCase(t *testing.T) {
	n := MaxPackedN
	m, err := NewPackedMatrix(n)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.VoteAll(); got != (BitSyndrome{}) {
		t.Fatalf("empty matrix must vote ⊥ everywhere, got %+v", got)
	}
	allFaulty := NewSyndrome(n, Faulty)
	for j := 1; j <= n; j++ {
		if err := m.SetRow(j, allFaulty); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := m.VoteAll()
	if want := (BitSyndrome{Op: 0, Known: PlaneMask(n)}); got != want {
		t.Fatalf("all-faulty matrix: VoteAll = %+v, want %+v", got, want)
	}
	// Exact tie on every column: half the rows say Healthy, half Faulty.
	// The self-opinion mask removes one vote per column, so use opinions
	// that keep the tally an exact tie regardless: 2 rows, opposite votes.
	tie, err := NewPackedMatrix(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tie.SetRow(1, Syndrome{Erased, Healthy, Healthy, Healthy, Healthy}); err != nil {
		t.Fatal(err)
	}
	if err := tie.SetRow(2, Syndrome{Erased, Faulty, Faulty, Faulty, Faulty}); err != nil {
		t.Fatal(err)
	}
	tv, _ := tie.VoteAll()
	// Column 1 sees the single Faulty vote of row 2, column 2 the single
	// Healthy vote of row 1, and columns 3 and 4 a genuine 1-1 tie, which
	// Eqn. 1 resolves to Healthy.
	if want := "0111"; tv.String(4) != want {
		t.Fatalf("tie matrix: VoteAll = %s, want %s", tv.String(4), want)
	}
}

// FuzzVoteAll is the go-fuzz harness of the differential test: arbitrary row
// bytes (two planes per row) against the scalar reference at an arbitrary N.
// The checked-in corpus below doubles as a regular seeded test in CI.
func FuzzVoteAll(f *testing.F) {
	f.Add(uint8(4), []byte{0xff, 0x0f, 0x03, 0x0c, 0x00, 0x00, 0x05, 0x0a})
	f.Add(uint8(1), []byte{0x01, 0x01})
	f.Add(uint8(64), []byte{0xaa, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66})
	f.Add(uint8(17), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint8, data []byte) {
		n := int(nRaw)%MaxPackedN + 1
		packed, err := NewPackedMatrix(n)
		if err != nil {
			t.Fatal(err)
		}
		scalar := newScalarMatrix(n)
		// Consume 16 bytes per row (op word, known word); rows beyond the
		// data stay ε.
		for j := 1; j <= n && len(data) >= 16; j++ {
			var op, know uint64
			for i := 0; i < 8; i++ {
				op |= uint64(data[i]) << uint(8*i)
				know |= uint64(data[8+i]) << uint(8*i)
			}
			data = data[16:]
			row := BitSyndrome{Op: op, Known: know}.normalized(PlaneMask(n))
			if err := packed.SetBitRow(j, row); err != nil {
				t.Fatal(err)
			}
			if err := scalar.SetRow(j, row.Unpack(n)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := packed.VoteAll()
		if err != nil {
			t.Fatal(err)
		}
		if want := scalar.voteAllScalar(); got != want {
			t.Fatalf("n=%d: VoteAll = %+v, want %+v\n%s", n, got, want, packed)
		}
	})
}
