package core

import (
	"fmt"
	"math/bits"
)

// MaxPackedN is the widest system the bit-packed diagnostic core supports:
// one machine word holds one opinion per node. Beyond it every type in this
// package transparently falls back to the scalar reference representation
// ([]Opinion syndromes, row-major matrices), which has no width limit.
const MaxPackedN = 64

// PlaneMask returns the word mask covering nodes 1..n (bit j-1 = node j) —
// the valid-bit region of every plane in an n-node system. n must be at most
// MaxPackedN; larger values are clamped to the full word.
func PlaneMask(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= MaxPackedN {
		return ^uint64(0)
	}
	return ^uint64(0) >> (64 - uint(n))
}

// BitSyndrome is the packed form of a Syndrome: two uint64 planes with bit
// j-1 holding node j's entry. The opinion plane carries the vote (1 =
// Healthy), the known plane carries presence (0 = the paper's ε). A cleared
// known bit makes the opinion bit meaningless; every constructor in this
// package keeps the invariant Op &^ Known == 0. A BitSyndrome is a value —
// copying it copies the whole vector, so unlike Syndrome slices there is no
// aliasing to reason about.
//
// Entries outside {Faulty, Healthy, Erased} cannot be represented: packing
// normalises them to ε, which is exactly how the voting of Eqn. 1 treats
// them (any non-0/1 opinion is excluded from the tally).
type BitSyndrome struct {
	// Op is the opinion plane: bit j-1 set means node j's entry is Healthy.
	Op uint64
	// Known is the presence plane: bit j-1 clear means node j's entry is ε.
	Known uint64
}

// bitSyndromeAllHealthy returns the packed all-Healthy syndrome for n nodes.
func bitSyndromeAllHealthy(n int) BitSyndrome {
	m := PlaneMask(n)
	return BitSyndrome{Op: m, Known: m}
}

// normalized returns b restricted to nodes 1..n with the Op ⊆ Known
// invariant enforced.
func (b BitSyndrome) normalized(all uint64) BitSyndrome {
	return BitSyndrome{Op: b.Op & b.Known & all, Known: b.Known & all}
}

// Get returns node j's entry; out-of-range indices read as Erased (matching
// the Syndrome convention that index 0 is always Erased).
func (b BitSyndrome) Get(j int) Opinion {
	if j < 1 || j > MaxPackedN {
		return Erased
	}
	bit := uint64(1) << uint(j-1)
	switch {
	case b.Known&bit == 0:
		return Erased
	case b.Op&bit != 0:
		return Healthy
	default:
		return Faulty
	}
}

// Set stores node j's entry; out-of-range indices are ignored.
func (b *BitSyndrome) Set(j int, o Opinion) {
	if j < 1 || j > MaxPackedN {
		return
	}
	bit := uint64(1) << uint(j-1)
	switch o {
	case Healthy:
		b.Op |= bit
		b.Known |= bit
	case Faulty:
		b.Op &^= bit
		b.Known |= bit
	default:
		b.Op &^= bit
		b.Known &^= bit
	}
}

// CountFaulty returns how many of the first n entries are Faulty.
func (b BitSyndrome) CountFaulty(n int) int {
	all := PlaneMask(n)
	return bits.OnesCount64(b.Known & ^b.Op & all)
}

// PackSyndrome converts a scalar syndrome into its packed form. It fails for
// syndromes wider than MaxPackedN nodes — such systems must stay on the
// scalar representation.
func PackSyndrome(s Syndrome) (BitSyndrome, error) {
	if s.N() > MaxPackedN {
		return BitSyndrome{}, fmt.Errorf("core: cannot pack a %d-node syndrome: the packed representation supports N <= %d (use the scalar types beyond that)", s.N(), MaxPackedN)
	}
	return packSyndrome(s), nil
}

// packSyndrome is PackSyndrome for callers that already validated N <= 64.
func packSyndrome(s Syndrome) BitSyndrome {
	var b BitSyndrome
	for j := 1; j <= s.N(); j++ {
		bit := uint64(1) << uint(j-1)
		switch s[j] {
		case Healthy:
			b.Op |= bit
			b.Known |= bit
		case Faulty:
			b.Known |= bit
		}
	}
	return b
}

// Unpack materialises the packed syndrome as a fresh scalar Syndrome for n
// nodes (entry 0 Erased, per the Syndrome convention).
func (b BitSyndrome) Unpack(n int) Syndrome {
	s := make(Syndrome, n+1)
	b.UnpackInto(s)
	return s
}

// UnpackInto materialises the packed syndrome into dst (sized for dst.N()
// nodes), the allocation-free form of Unpack.
func (b BitSyndrome) UnpackInto(dst Syndrome) {
	if len(dst) == 0 {
		return
	}
	dst[0] = Erased
	for j := 1; j <= dst.N(); j++ {
		dst[j] = b.Get(j)
	}
}

// BitSyndromeFromWire unpacks a wire-format diagnostic message (the same
// LSB-first bit layout written by Syndrome.Encode) directly into planes: a
// handful of byte loads instead of the O(N) per-entry loop of
// DecodeSyndromeInto. Every entry of a wire syndrome is known (the ε case is
// a missing or invalid frame, not a payload value), so Known covers all n
// nodes. Padding bits beyond n are ignored, exactly like the scalar decoder.
func BitSyndromeFromWire(data []byte, n int) (BitSyndrome, error) {
	if n < 0 || n > MaxPackedN {
		return BitSyndrome{}, fmt.Errorf("core: packed wire decode supports 0..%d nodes, got %d", MaxPackedN, n)
	}
	if len(data) != EncodedLen(n) {
		return BitSyndrome{}, fmt.Errorf("core: syndrome payload is %d bytes, want %d for %d nodes", len(data), EncodedLen(n), n)
	}
	var w uint64
	for i, v := range data {
		w |= uint64(v) << uint(8*i)
	}
	all := PlaneMask(n)
	return BitSyndrome{Op: w & all, Known: all}, nil
}

// EncodeInto writes the wire form of the first len(dst)*8 entries into dst
// (LSB-first, Healthy = 1, ε and Faulty = 0), byte-identical to
// Syndrome.EncodeInto on the unpacked equivalent. dst must be EncodedLen(n)
// bytes for the system in question.
func (b BitSyndrome) EncodeInto(dst []byte) {
	w := b.Op & b.Known
	for i := range dst {
		dst[i] = byte(w >> uint(8*i))
	}
}

// String renders the first n entries like Syndrome.String, e.g. "11e0".
func (b BitSyndrome) String(n int) string {
	buf := make([]byte, 0, n)
	for j := 1; j <= n; j++ {
		buf = append(buf, b.Get(j).String()[0])
	}
	return string(buf)
}
