package core

import (
	"fmt"
	"math/bits"

	"ttdiag/internal/invariant"
)

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	// ModeDiagnostic is the on-line diagnostic protocol of Sec. 5.
	ModeDiagnostic Mode = iota + 1
	// ModeMembership is the modified protocol of Sec. 7: the analysis phase
	// runs before dissemination and nodes whose local syndromes disagree
	// with the consistent health vector receive minority accusations.
	ModeMembership
)

// accusationTTL is how many consecutive dissemination writes carry a minority
// accusation. With unconstrained node scheduling the syndromes aggregated in
// one round can have been written in two different rounds (send alignment),
// so an accusation raised in round k is kept in the outgoing syndrome for two
// writes to guarantee that every obedient node's matrix sees it — preserving
// the two-execution liveness bound of Theorem 2 for any schedule.
const accusationTTL = 2

// accusationSkew is the window (in rounds) after an accusation is raised
// during which disagreement about the accused entry must not trigger further
// accusations. With unconstrained scheduling the diagnostic matrices of the
// transition rounds mix syndromes written before and after the accusation was
// raised, so honest rows can briefly disagree with an accusation-driven
// health-vector entry; without this guard those rows would be accused in a
// cascade. The window covers dissemination (accusationTTL writes) plus the
// aggregation lag.
const accusationSkew = accusationTTL + 2

// Config parameterises one node's diagnostic job.
type Config struct {
	// N is the number of nodes in the system.
	N int
	// ID is this node's 1-based identifier (and sending slot).
	ID int
	// L is l_i: the number of sending slots of the current round that have
	// already been transmitted when this node's diagnostic job executes.
	// It is determined by the node's internal schedule and lies in [0, N-1].
	L int
	// Dynamic enables dynamic node scheduling (Sec. 10): the OS schedules
	// the diagnostic job at a different position every round. A wandering
	// *read* point would lose interface values (a variable overwritten
	// between two reads can never be attributed to the right round), so the
	// dynamic deployment pins the read point: the middleware snapshots the
	// interface variables at round start (equivalent to l_i = 0) and the
	// job may then execute and write at any OS-chosen instant on a fixed
	// side of the node's sending slot (the SendCurrRound side, which send
	// alignment needs to be static). Under Dynamic, L is ignored and the
	// usual L-vs-SendCurrRound consistency check is skipped.
	Dynamic bool
	// SendCurrRound is the send_curr_round_i predicate: true iff the
	// diagnostic job completes before the node's own sending slot, so the
	// syndrome it writes is transmitted in the same round.
	SendCurrRound bool
	// AllSendCurrRound is the global predicate "∀j: send_curr_round_j". When
	// it holds (and is known at design time), every node writes its current
	// aligned syndrome and the protocol's detection latency shrinks from
	// four to three rounds (diagnosed round k-2 instead of k-3).
	AllSendCurrRound bool
	// StartRound is the absolute round number of the first Step call.
	StartRound int
	// Mode selects the diagnostic or membership variant; the zero value
	// means ModeDiagnostic.
	Mode Mode
	// PR tunes the penalty/reward algorithm.
	PR PRConfig
}

// Lag returns the distance between the execution round of a diagnostic job
// and the round it diagnoses: k-2 under AllSendCurrRound, k-3 otherwise
// (Lemma 1).
func (c Config) Lag() int {
	if c.AllSendCurrRound {
		return 2
	}
	return 3
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("core: need at least 2 nodes, got %d", c.N)
	}
	if c.ID < 1 || c.ID > c.N {
		return fmt.Errorf("core: node id %d out of range 1..%d", c.ID, c.N)
	}
	if c.L < 0 || c.L > c.N-1 {
		return fmt.Errorf("core: l_i = %d out of range 0..%d", c.L, c.N-1)
	}
	if c.AllSendCurrRound && !c.SendCurrRound {
		return fmt.Errorf("core: AllSendCurrRound requires SendCurrRound on every node")
	}
	if !c.Dynamic && c.SendCurrRound != (c.L < c.ID) {
		return fmt.Errorf("core: SendCurrRound=%v inconsistent with l_i=%d and id=%d (job runs %s the node's slot)",
			c.SendCurrRound, c.L, c.ID, map[bool]string{true: "before", false: "after"}[c.L < c.ID])
	}
	if c.Mode != ModeDiagnostic && c.Mode != ModeMembership && c.Mode != 0 {
		return fmt.Errorf("core: unknown mode %d", c.Mode)
	}
	return c.PR.Validate(c.N)
}

// CollisionFn answers the local collision detector query for this node's own
// transmission in the given (absolute) round: Faulty when the controller
// could not read the node's message back from the bus, Healthy otherwise.
type CollisionFn func(round int) Opinion

// RoundInput carries what the node's communication controller observed when
// the diagnostic job executes in one round.
type RoundInput struct {
	// Round is the absolute round number; it must advance by exactly one
	// per Step.
	Round int
	// DMs[j] is the decoded diagnostic message currently held in interface
	// variable j (1-based). A nil entry means the validity bit was 0 or the
	// payload was undecodable — the ε case.
	DMs []Syndrome
	// Validity[j] is the validity bit of interface variable j as an
	// Opinion: Healthy for 1, Faulty for 0. Under Config.Dynamic the
	// vectors must come from the round-start snapshot of the interface.
	Validity Syndrome
	// Collision resolves self-diagnosis when no external syndrome is
	// available (Lemma 3). A nil func defaults to Healthy.
	Collision CollisionFn
}

// PackedRoundInput is the plane-form round input for systems within the
// packed bound (N <= MaxPackedN): what RoundInput carries as slices arrives
// as bit masks and two-word syndromes, so the hot path never touches
// per-entry byte vectors. Rows[j] is read only when Present bit j-1 is set
// (the clear bit is the ε case), and Validity carries the validity bits
// (Healthy = Op bit set; all entries Known in a well-formed input). Rows are
// copied by value — the caller keeps ownership of the slice and may reuse it
// immediately after the call.
type PackedRoundInput struct {
	// Round is the absolute round number; it must advance by exactly one
	// per step.
	Round int
	// Rows[j] is the packed decoded diagnostic message of interface
	// variable j (1-based), meaningful iff Present bit j-1 is set.
	Rows []BitSyndrome
	// Present marks the interface variables holding a decodable valid
	// payload (bit j-1 = variable j).
	Present uint64
	// Validity packs the validity bits of the interface variables.
	Validity BitSyndrome
	// Collision resolves self-diagnosis when no external syndrome is
	// available (Lemma 3). A nil func defaults to Healthy.
	Collision CollisionFn
}

// RoundOutput is the result of one diagnostic-job execution.
type RoundOutput struct {
	// Round echoes the executed round.
	Round int
	// Send is the encoded local syndrome to write into the node's interface
	// variable (the dissemination payload, N bits). It is backed by a ring
	// buffer: valid for the next three Steps, then overwritten — copy it to
	// keep it longer (SendSyndrome is the retain-safe decoded form).
	Send []byte
	// SendSyndrome is the decoded form of Send.
	SendSyndrome Syndrome
	// ConsHV is the consistent health vector for DiagnosedRound, or nil
	// while the protocol pipeline is still warming up.
	ConsHV Syndrome
	// ConsHVBits is the packed form of ConsHV for systems within the packed
	// bound (every entry Known once ConsHV is non-nil); the zero value
	// during warm-up and for N > MaxPackedN.
	ConsHVBits BitSyndrome
	// DiagnosedRound is the absolute round ConsHV refers to (Round-2 or
	// Round-3 per Lemma 1); -1 when ConsHV is nil.
	DiagnosedRound int
	// Matrix is the diagnostic matrix the analysis voted over (nil during
	// warm-up). Row ID is the node's own buffered aligned syndrome.
	Matrix *Matrix
	// Isolated lists nodes whose activity bit dropped to 0 in this round.
	Isolated []int
	// Reintegrated lists nodes returned to service by the optional
	// reintegration extension.
	Reintegrated []int
	// Active is the activity vector after the update (1-based). Like Send it
	// is ring-buffered: valid for the next three Steps, then overwritten.
	Active []bool
	// ActiveMask is the packed activity vector (bit j-1 = node j active) for
	// systems within the packed bound; zero beyond it. Unlike Active it is a
	// value, so it is retain-safe.
	ActiveMask uint64
	// Accused lists the minority accusations raised in this round
	// (membership mode only).
	Accused []int
}

// alignBuf holds one round's buffered controller observations for read and
// send alignment (Alg. 1 lines 16-17): the raw interface state and the
// aligned local syndrome derived from it. The protocol keeps two of these
// and alternates between them — the buffer written in round k is the one
// read in round k+1 — so the steady-state hot path performs no allocation
// for the clones the original algorithm keeps.
type alignBuf struct {
	// dm[j] is this buffer's copy of interface variable j; it is meaningful
	// only when set[j] holds (set[j] == false is the ε case, a nil DM).
	dm  []Syndrome
	set []bool
	// ls is the validity vector observed in the buffered round.
	ls Syndrome
	// al is the aligned local syndrome computed in the buffered round (used
	// by send alignment, Alg. 1 line 9).
	al Syndrome
}

func newAlignBuf(n int) alignBuf {
	b := alignBuf{
		dm:  make([]Syndrome, n+1),
		set: make([]bool, n+1),
		ls:  NewSyndrome(n, Healthy),
		al:  NewSyndrome(n, Healthy),
	}
	for j := 1; j <= n; j++ {
		b.dm[j] = NewSyndrome(n, Healthy)
		b.set[j] = true
	}
	return b
}

// alignBufP is the packed form of alignBuf: per-variable two-word syndromes
// plus one presence mask instead of byte vectors and a bool slice. rows[j]
// is meaningful only when set bit j-1 holds.
type alignBufP struct {
	rows []BitSyndrome
	set  uint64
	ls   BitSyndrome
	al   BitSyndrome
}

func newAlignBufP(n int) alignBufP {
	b := alignBufP{rows: make([]BitSyndrome, n+1)}
	hw := bitSyndromeAllHealthy(n)
	for j := 1; j <= n; j++ {
		b.rows[j] = hw
	}
	b.set = PlaneMask(n)
	b.ls, b.al = hw, hw
	return b
}

func (b *alignBufP) reset(n int) {
	hw := bitSyndromeAllHealthy(n)
	for j := 1; j <= n; j++ {
		b.rows[j] = hw
	}
	b.set = PlaneMask(n)
	b.ls, b.al = hw, hw
}

// The packedBlock tiers are the per-round retained blocks of the packed hot
// path: the diagnostic matrix header, its two row planes, and the scalar
// consHV/outSyn views of RoundOutput all live in one allocation. Tiering at
// powers of two keeps the footprint close to the system size (the paper's
// experiments run at N <= 16) while still costing exactly one allocation per
// warm round at any width.
type packedBlock4 struct {
	m      Matrix
	planes [2 * 5]uint64
	syn    [2 * 5]Opinion
}

type packedBlock8 struct {
	m      Matrix
	planes [2 * 9]uint64
	syn    [2 * 9]Opinion
}

type packedBlock16 struct {
	m      Matrix
	planes [2 * 17]uint64
	syn    [2 * 17]Opinion
}

type packedBlock32 struct {
	m      Matrix
	planes [2 * 33]uint64
	syn    [2 * 33]Opinion
}

type packedBlock64 struct {
	m      Matrix
	planes [2 * (MaxPackedN + 1)]uint64
	syn    [2 * (MaxPackedN + 1)]Opinion
}

// newPackedRoundBlock allocates the single retained block of one packed
// round and carves it into the matrix and the two output syndromes.
func newPackedRoundBlock(n int) (m *Matrix, consHV, outSyn Syndrome) {
	var planes []uint64
	var syn []Opinion
	switch {
	case n <= 4:
		b := new(packedBlock4)
		m, planes, syn = &b.m, b.planes[:], b.syn[:]
	case n <= 8:
		b := new(packedBlock8)
		m, planes, syn = &b.m, b.planes[:], b.syn[:]
	case n <= 16:
		b := new(packedBlock16)
		m, planes, syn = &b.m, b.planes[:], b.syn[:]
	case n <= 32:
		b := new(packedBlock32)
		m, planes, syn = &b.m, b.planes[:], b.syn[:]
	default:
		b := new(packedBlock64)
		m, planes, syn = &b.m, b.planes[:], b.syn[:]
	}
	w := n + 1
	m.n = n
	initPackedMatrix(m, planes[:2*w])
	consHV = Syndrome(syn[0:w:w])
	outSyn = Syndrome(syn[w : 2*w : 2*w])
	consHV[0], outSyn[0] = Erased, Erased
	return m, consHV, outSyn
}

// Protocol is the per-node diagnostic job state machine (Alg. 1). Create one
// per node with NewProtocol and call Step exactly once per TDMA round.
//
// Systems within the packed bound (N <= MaxPackedN) run the bit-plane hot
// path: alignment state, matrix rows, voting and the activity update all
// operate on machine words, and StepPacked accepts the round input in packed
// form directly. Step remains fully supported (it packs its scalar input and
// delegates), wider systems transparently use the scalar reference path, and
// both paths produce identical outputs and snapshot bytes.
//
// Buffer ownership: Step copies its inputs into protocol-owned scratch
// (callers may reuse RoundInput slices immediately). The analysis results in
// RoundOutput — ConsHV, Matrix, SendSyndrome — are backed by memory
// allocated for that round alone and safe to retain indefinitely; no later
// Step mutates them. Send and Active live in a small ring of reusable
// buffers: they stay valid for the next three Steps and are then
// overwritten, so callers that keep them longer must copy (every in-tree
// consumer either copies immediately or reads only the latest output).
type Protocol struct {
	cfg   Config
	pr    *PenaltyReward
	steps int

	// metrics is the optional telemetry attachment (SetMetrics); nil — the
	// default — costs one branch per Step. It survives Reset/ResetConfig so
	// reusable campaign clusters keep accumulating across repetitions.
	metrics *StepMetrics

	// trace is the optional causal flight recorder (SetTrace); same nil-is-
	// off discipline and lifetime as metrics.
	trace *StepTrace

	// packed selects the bit-plane hot path; set at construction for
	// N <= MaxPackedN (tests force it off to exercise the scalar reference).
	packed bool

	// bufs double-buffers the read/send-alignment state of the scalar path:
	// round k reads bufs[k%2] (written in round k-1) and writes
	// bufs[(k+1)%2]. pbufs is the packed equivalent; only the representation
	// in use is allocated.
	bufs  [2]alignBuf
	pbufs [2]alignBufP
	// alDM is the scalar scratch aligned-DM view of the current round. Its
	// entries alias the previous round's buffer or the caller's input and
	// never escape: the diagnostic matrix copies every row it is given.
	alDM []Syndrome
	// inRows is the packed path's scratch for Step's scalar-to-packed input
	// conversion (StepPacked callers provide their own rows).
	inRows []BitSyndrome
	// lastSent / prevSent are the dissemination payloads of the previous
	// two rounds; the one physically transmitted in round k-1 is this
	// node's own row of the diagnostic matrix. The packed path keeps the
	// plane forms alongside (the scalar forms stay current for snapshots).
	lastSent  Syndrome
	prevSent  Syndrome
	lastSentP BitSyndrome
	prevSentP BitSyndrome
	// sendBufs and activeBufs are the rings backing RoundOutput.Send and
	// RoundOutput.Active: round k writes slot k%4, so an output's buffers
	// survive the next three Steps before being reused.
	sendBufs   [4][]byte
	activeBufs [4][]bool
	// accuse holds the remaining dissemination writes each pending minority
	// accusation is carried for (membership mode); accuseMask mirrors its
	// non-zero entries as a bit mask on the packed path.
	accuse     []int
	accuseMask uint64
	// accusedAge[j] counts the rounds since an accusation against j was last
	// raised (saturating); it drives the accusationSkew guard. agingMask
	// mirrors the non-saturated entries (age <= accusationSkew) on the
	// packed path so the per-round aging touches only live counters.
	accusedAge []int
	agingMask  uint64
	// invPrevActive is the previous round's activity vector, kept only by
	// ttdiag_invariants builds for the monotonicity check.
	invPrevActive []bool
}

// NewProtocol builds the diagnostic job for one node. Systems with
// N <= MaxPackedN automatically run the bit-packed hot path.
func NewProtocol(cfg Config) (*Protocol, error) {
	return newProtocol(cfg, cfg.N <= MaxPackedN)
}

// NewScalarProtocol is NewProtocol pinned to the scalar reference
// representation regardless of N. Differential tooling — forced-scalar
// clusters, the divergence bisector — uses it to run the reference path on
// packed-eligible sizes; production callers should prefer NewProtocol.
func NewScalarProtocol(cfg Config) (*Protocol, error) {
	return newProtocol(cfg, false)
}

// newProtocol is NewProtocol with an explicit representation choice; tests
// force packed off to run the scalar reference on packed-eligible sizes.
func newProtocol(cfg Config, packed bool) (*Protocol, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeDiagnostic
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pr, err := NewPenaltyReward(cfg.N, cfg.PR)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:        cfg,
		pr:         pr,
		packed:     packed,
		lastSent:   NewSyndrome(cfg.N, Healthy),
		prevSent:   NewSyndrome(cfg.N, Healthy),
		accuse:     make([]int, cfg.N+1),
		accusedAge: make([]int, cfg.N+1),
	}
	if packed {
		p.pbufs = [2]alignBufP{newAlignBufP(cfg.N), newAlignBufP(cfg.N)}
		p.inRows = make([]BitSyndrome, cfg.N+1)
		p.lastSentP = bitSyndromeAllHealthy(cfg.N)
		p.prevSentP = bitSyndromeAllHealthy(cfg.N)
	} else {
		p.bufs = [2]alignBuf{newAlignBuf(cfg.N), newAlignBuf(cfg.N)}
		p.alDM = make([]Syndrome, cfg.N+1)
	}
	for i := range p.sendBufs {
		p.sendBufs[i] = make([]byte, EncodedLen(cfg.N))
		p.activeBufs[i] = make([]bool, cfg.N+1)
	}
	for j := range p.accusedAge {
		p.accusedAge[j] = accusationSkew + 1
	}
	return p, nil
}

// Reset returns the protocol to its freshly constructed state (round
// StartRound, warm-up pending, all counters cleared) while keeping its
// allocated buffers, so one instance can be reused across campaign
// repetitions. Previously returned RoundOutputs keep their documented
// retention guarantees: ConsHV/Matrix/SendSyndrome stay valid, Send and
// Active follow the usual ring-buffer window.
func (p *Protocol) Reset() {
	n := p.cfg.N
	if p.packed {
		p.pbufs[0].reset(n)
		p.pbufs[1].reset(n)
		p.lastSentP = bitSyndromeAllHealthy(n)
		p.prevSentP = bitSyndromeAllHealthy(n)
	} else {
		for b := range p.bufs {
			buf := &p.bufs[b]
			for j := 1; j <= n; j++ {
				buf.set[j] = true
				for m := 1; m <= n; m++ {
					buf.dm[j][m] = Healthy
				}
				buf.ls[j] = Healthy
				buf.al[j] = Healthy
			}
		}
	}
	// lastSent/prevSent alias retain-safe per-round blocks of the previous
	// run; fresh syndromes keep those blocks immutable.
	p.lastSent = NewSyndrome(n, Healthy)
	p.prevSent = NewSyndrome(n, Healthy)
	for j := range p.accuse {
		p.accuse[j] = 0
		p.accusedAge[j] = accusationSkew + 1
	}
	p.accuseMask, p.agingMask = 0, 0
	p.invPrevActive = nil
	p.steps = 0
	p.pr.Reset()
	if p.trace != nil {
		p.trace.resync(p.pr)
	}
}

// ResetConfig is Reset with a configuration swap: it revalidates cfg and
// restarts the protocol under it. The node count is fixed at construction
// time (the internal buffers are sized for it); changing N requires a new
// instance.
func (p *Protocol) ResetConfig(cfg Config) error {
	if cfg.Mode == 0 {
		cfg.Mode = ModeDiagnostic
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.N != p.cfg.N {
		return fmt.Errorf("core: node %d: ResetConfig cannot change N from %d to %d", p.cfg.ID, p.cfg.N, cfg.N)
	}
	if err := p.pr.ResetConfig(cfg.PR); err != nil {
		return err
	}
	p.cfg = cfg
	p.Reset()
	return nil
}

// Config returns the protocol's configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Packed reports whether the protocol runs the bit-packed hot path (always
// the case for N <= MaxPackedN instances built with NewProtocol).
func (p *Protocol) Packed() bool { return p.packed }

// PenaltyReward exposes the node's Alg. 2 state for inspection.
func (p *Protocol) PenaltyReward() *PenaltyReward { return p.pr }

// Step executes the diagnostic job for one round. Within the packed bound it
// converts the input to plane form and runs the packed path (callers that
// already hold packed observations use StepPacked and skip the conversion);
// entries of DMs/Validity outside {Faulty, Healthy, Erased} are normalised
// to ε there, which Eqn. 1's tally treats identically.
//
// The input's slices stay caller-owned: Step copies what it needs, so a
// caller may reuse its DMs/Validity buffers immediately after the call.
//
//ttdiag:noretain params
func (p *Protocol) Step(in RoundInput) (RoundOutput, error) {
	n := p.cfg.N
	if want := p.cfg.StartRound + p.steps; in.Round != want {
		return RoundOutput{}, fmt.Errorf("core: node %d: Step round %d, want %d", p.cfg.ID, in.Round, want)
	}
	if in.Validity.N() != n {
		return RoundOutput{}, fmt.Errorf("core: node %d: validity vector covers %d nodes, want %d", p.cfg.ID, in.Validity.N(), n)
	}
	if len(in.DMs) != n+1 {
		return RoundOutput{}, fmt.Errorf("core: node %d: DMs has %d entries, want %d", p.cfg.ID, len(in.DMs), n+1)
	}
	for j := 1; j <= n; j++ {
		if in.DMs[j] != nil && in.DMs[j].N() != n {
			return RoundOutput{}, fmt.Errorf("core: matrix row %d has %d entries, want %d", j, in.DMs[j].N(), n)
		}
	}
	if !p.packed {
		return p.stepScalar(in)
	}
	var present uint64
	for j := 1; j <= n; j++ {
		if in.DMs[j] != nil {
			present |= 1 << uint(j-1)
			p.inRows[j] = packSyndrome(in.DMs[j])
		}
	}
	return p.stepPacked(PackedRoundInput{
		Round:     in.Round,
		Rows:      p.inRows,
		Present:   present,
		Validity:  packSyndrome(in.Validity),
		Collision: in.Collision,
	})
}

// StepPacked executes the diagnostic job for one round on packed
// observations, the zero-conversion entry of the hot path. It fails on
// instances running the scalar representation (N > MaxPackedN). Rows stays
// caller-owned (entries are copied by value) and may be reused immediately.
//
//ttdiag:noretain params
func (p *Protocol) StepPacked(in PackedRoundInput) (RoundOutput, error) {
	if !p.packed {
		return RoundOutput{}, fmt.Errorf("core: node %d: StepPacked needs the packed representation (N = %d > %d); use Step", p.cfg.ID, p.cfg.N, MaxPackedN)
	}
	if want := p.cfg.StartRound + p.steps; in.Round != want {
		return RoundOutput{}, fmt.Errorf("core: node %d: Step round %d, want %d", p.cfg.ID, in.Round, want)
	}
	if len(in.Rows) != p.cfg.N+1 {
		return RoundOutput{}, fmt.Errorf("core: node %d: Rows has %d entries, want %d", p.cfg.ID, len(in.Rows), p.cfg.N+1)
	}
	return p.stepPacked(in)
}

// stepPacked is the bit-plane diagnostic job: every phase of Alg. 1 operates
// on word masks, and the only allocation is the round's retained output
// block. It is step-for-step equivalent to stepScalar (pinned by the
// differential tests in packed_equivalence_test.go).
//
//ttdiag:noretain params
func (p *Protocol) stepPacked(in PackedRoundInput) (RoundOutput, error) {
	n := p.cfg.N
	all := PlaneMask(n)
	present := in.Present & all
	validity := in.Validity.normalized(all)

	// rd was written in the previous round; wr becomes next round's rd.
	rd := &p.pbufs[p.steps&1]
	wr := &p.pbufs[(p.steps+1)&1]

	// The round's entire indefinitely-retainable output — matrix planes,
	// consistent health vector and outgoing syndrome — lives in one fixed-
	// size block, so the steady-state warm path costs exactly one allocation
	// per Step (Send and Active come from the protocol's buffer rings).
	matrix, consHV, outSyn := newPackedRoundBlock(n)

	// Phases 1 and 3 — local detection and aggregation (read alignment,
	// Alg. 1 lines 1-6): entries 1..l_i come from the previous read, the
	// rest from the current one, so every aligned value refers to a message
	// sent in round k-1. Under dynamic scheduling the read point is pinned
	// to round start (l = 0). On planes the split is two mask merges.
	l := p.cfg.L
	if p.cfg.Dynamic {
		l = 0
	}
	low := PlaneMask(l)
	hi := all &^ low
	alSet := (rd.set & low) | (present & hi)
	alLS := BitSyndrome{
		Op:    (rd.ls.Op & low) | (validity.Op & hi),
		Known: (rd.ls.Known & low) | (validity.Known & hi),
	}
	wr.al = alLS

	out := RoundOutput{Round: in.Round, DiagnosedRound: -1}

	// Phase 4 — analysis (Alg. 1 lines 11-14). In membership mode this runs
	// before dissemination so that minority accusations can be added to the
	// outgoing syndrome; in diagnostic mode the ordering is unobservable.
	warm := p.steps >= p.cfg.Lag()
	if warm {
		self := uint64(1) << uint(p.cfg.ID-1)
		rowSet := (alSet &^ self) | self
		for rem := rowSet; rem != 0; rem &= rem - 1 {
			j := bits.TrailingZeros64(rem) + 1
			var row BitSyndrome
			switch {
			case j == p.cfg.ID:
				// This node's own row is its locally buffered copy of the
				// syndrome it physically transmitted in round k-1 — available
				// even when the transmission itself failed (Lemma 3).
				row = p.ownRowP()
			case j <= l:
				row = rd.rows[j]
			default:
				row = in.Rows[j].normalized(all)
			}
			matrix.op[j] = row.Op
			matrix.know[j] = row.Known
		}
		matrix.rowSet = rowSet

		consBits := matrix.voteAllPlanes()
		diagRound := in.Round - p.cfg.Lag()
		// H-maj returned ⊥ on the columns outside consBits.Known: at least
		// N-1 nodes could not send their syndromes. Only self-diagnosis can
		// be left undecided, and it falls back to the local collision
		// detector (Alg. 1 line 14), queried in ascending column order like
		// the scalar path.
		for rem := all &^ consBits.Known; rem != 0; rem &= rem - 1 {
			bit := rem & -rem
			if p.collisionVerdict(in.Collision, diagRound) == Healthy {
				consBits.Op |= bit
			}
			consBits.Known |= bit
		}
		consBits.UnpackInto(consHV)
		out.ConsHV = consHV
		out.ConsHVBits = consBits
		out.DiagnosedRound = diagRound
		out.Matrix = matrix

		if p.cfg.Mode == ModeMembership {
			// Entries whose health-vector value may still be driven by a
			// recent minority accusation are skipped, as is the node's own
			// entry once it sees itself convicted (it is the accused party
			// and must not counter-accuse rows carrying the other clique's
			// verdict) — see accusationSkew and disagrees.
			skip := p.guardMask()
			if consBits.Op&self == 0 {
				skip |= self
			}
			for rem := rowSet &^ self; rem != 0; rem &= rem - 1 {
				j := bits.TrailingZeros64(rem) + 1
				jb := uint64(1) << uint(j-1)
				// A row conflicts with the health vector wherever it is
				// known with the opposite opinion, or ε where the vector
				// holds a verdict (consBits is all-Known here).
				conflict := (matrix.know[j] & (matrix.op[j] ^ consBits.Op)) | (all &^ matrix.know[j])
				if conflict&^(jb|skip) != 0 {
					p.accuse[j] = accusationTTL
					p.accuseMask |= jb
					out.Accused = append(out.Accused, j)
					if p.trace != nil {
						// Evidence class: a definite opinion opposite the
						// verdict on an unguarded column, vs ε-only conflict.
						definite := (matrix.know[j]&(matrix.op[j]^consBits.Op))&^(jb|skip) != 0
						p.trace.noteEvidence(j, definite)
					}
				}
			}
			// Age updates happen after the whole check loop so that every
			// row is judged against the same guard state.
			for _, j := range out.Accused {
				p.accusedAge[j] = 0
				p.agingMask |= 1 << uint(j-1)
			}
			if consBits.Op&self == 0 {
				p.accusedAge[p.cfg.ID] = 0
				p.agingMask |= self
			}
		}
	}

	// Phase 2 — dissemination (send alignment, Alg. 1 lines 7-10): choose
	// the syndrome whose transmission round keeps all disseminated
	// syndromes referring to the same diagnosed round.
	var outBits BitSyndrome
	switch {
	case p.cfg.AllSendCurrRound:
		outBits = alLS
	case p.cfg.SendCurrRound:
		outBits = rd.al
	default:
		outBits = alLS
	}
	if p.cfg.Mode == ModeMembership && p.accuseMask != 0 {
		// Pending accusations force the accused entries to Faulty.
		outBits.Op &^= p.accuseMask
		outBits.Known |= p.accuseMask
		for rem := p.accuseMask; rem != 0; rem &= rem - 1 {
			j := bits.TrailingZeros64(rem) + 1
			p.accuse[j]--
			if p.accuse[j] == 0 {
				p.accuseMask &^= 1 << uint(j-1)
			}
		}
	}
	outBits.UnpackInto(outSyn)
	send := p.sendBufs[p.steps&3]
	outBits.EncodeInto(send)
	out.Send = send
	out.SendSyndrome = outSyn

	// Phase 5 — update counters (Alg. 1 line 15, Alg. 2): one masked update
	// that visits only the columns voted faulty plus the nodes with live
	// counters.
	if out.ConsHV != nil {
		out.Isolated, out.Reintegrated = p.pr.updateMasked(out.ConsHVBits.Known &^ out.ConsHVBits.Op)
	}
	active := p.activeBufs[p.steps&3]
	copy(active, p.pr.active)
	out.Active = active
	out.ActiveMask = p.pr.activeMask

	// Buffering for the next round (Alg. 1 lines 16-17): copy this round's
	// raw observations into the buffer the next step will read (two-word
	// value copies for the present rows). wr.al already holds the aligned
	// local syndrome, and outSyn/outBits live in this round's private block
	// or are values, so retaining them as lastSent costs nothing.
	wr.set = present
	for rem := present; rem != 0; rem &= rem - 1 {
		j := bits.TrailingZeros64(rem) + 1
		wr.rows[j] = in.Rows[j].normalized(all)
	}
	wr.ls = validity
	p.prevSent = p.lastSent
	p.lastSent = outSyn
	p.prevSentP = p.lastSentP
	p.lastSentP = outBits
	if p.metrics != nil {
		p.emitStepMetrics(&out, matrix, warm)
	}
	if p.trace != nil {
		p.emitStepTrace(&out, warm)
	}
	p.ageAccusations()
	p.steps++
	if invariant.Enabled {
		p.checkStepInvariants(out)
	}
	return out, nil
}

// stepScalar is the byte-per-entry diagnostic job: the reference
// implementation for systems beyond the packed bound and for the
// differential tests (inputs are pre-validated by Step).
//
//ttdiag:noretain params
func (p *Protocol) stepScalar(in RoundInput) (RoundOutput, error) {
	n := p.cfg.N

	// rd was written in the previous round; wr becomes next round's rd.
	rd := &p.bufs[p.steps&1]
	wr := &p.bufs[(p.steps+1)&1]

	// The round's entire indefinitely-retainable output — matrix cells,
	// consistent health vector and outgoing syndrome — lives in one block,
	// so the steady-state warm path costs a fixed two allocations per Step
	// regardless of N (the block and the Matrix header; Send and Active come
	// from the protocol's buffer rings).
	w := n + 1
	block := make(Syndrome, w*w+2*w)
	cells := block[0 : w*w : w*w]
	consHV := block[w*w : w*w+w : w*w+w]
	outSyn := block[w*w+w : w*w+2*w : w*w+2*w]
	consHV[0], outSyn[0] = Erased, Erased

	// Phases 1 and 3 — local detection and aggregation (read alignment,
	// Alg. 1 lines 1-6): entries 1..l_i come from the previous read, the
	// rest from the current one, so every aligned value refers to a message
	// sent in round k-1. Under dynamic scheduling the read point is pinned
	// to round start (l = 0): the inputs come from the middleware's
	// round-start snapshot, so everything is read from curr. The aligned
	// syndromes stay scratch (alDM aliases rd and the caller's input; the
	// matrix copies every row), and the aligned local syndrome is computed
	// directly into wr.al, where next round's send alignment expects it.
	l := p.cfg.L
	if p.cfg.Dynamic {
		l = 0
	}
	alDM := p.alDM
	alLS := wr.al
	for j := 1; j <= n; j++ {
		if j <= l {
			alDM[j] = nil
			if rd.set[j] {
				alDM[j] = rd.dm[j]
			}
			alLS[j] = rd.ls[j]
		} else {
			alDM[j] = in.DMs[j]
			alLS[j] = in.Validity[j]
		}
	}

	out := RoundOutput{Round: in.Round, DiagnosedRound: -1}

	// Phase 4 — analysis (Alg. 1 lines 11-14). In membership mode this runs
	// before dissemination so that minority accusations can be added to the
	// outgoing syndrome; in diagnostic mode the ordering is unobservable.
	warm := p.steps >= p.cfg.Lag()
	var matrix *Matrix
	if warm {
		matrix = newMatrixIn(n, cells)
		for j := 1; j <= n; j++ {
			row := alDM[j]
			if j == p.cfg.ID {
				// This node's own row is its locally buffered copy of the
				// syndrome it physically transmitted in round k-1 — available
				// even when the transmission itself failed (Lemma 3).
				row = p.ownRow()
			}
			if err := matrix.SetRow(j, row); err != nil {
				return RoundOutput{}, err
			}
		}
		diagRound := in.Round - p.cfg.Lag()
		for j := 1; j <= n; j++ {
			if v, ok := matrix.Vote(j); ok {
				consHV[j] = v
				continue
			}
			// H-maj returned ⊥: at least N-1 nodes could not send their
			// syndromes. Only self-diagnosis can be left undecided, and it
			// falls back to the local collision detector (Alg. 1 line 14).
			consHV[j] = p.collisionVerdict(in.Collision, diagRound)
		}
		out.ConsHV = consHV
		if n <= MaxPackedN {
			out.ConsHVBits = packSyndrome(consHV)
		}
		out.DiagnosedRound = diagRound
		out.Matrix = matrix

		if p.cfg.Mode == ModeMembership {
			for j := 1; j <= n; j++ {
				row := matrix.Row(j)
				if row == nil || j == p.cfg.ID {
					continue
				}
				if p.disagrees(row, consHV, j) {
					p.accuse[j] = accusationTTL
					if j <= MaxPackedN {
						p.accuseMask |= 1 << uint(j-1)
					}
					out.Accused = append(out.Accused, j)
					if p.trace != nil {
						p.trace.noteEvidence(j, p.disagreesDefinite(row, consHV, j))
					}
				}
			}
			// Age updates happen after the whole check loop so that every
			// row is judged against the same guard state.
			for _, j := range out.Accused {
				p.accusedAge[j] = 0
				if j <= MaxPackedN {
					p.agingMask |= 1 << uint(j-1)
				}
			}
			// A node that finds itself convicted has (from its own point of
			// view) been minority-accused: guard its own entry so it does
			// not counter-accuse rows that still carry the older verdict.
			if consHV[p.cfg.ID] == Faulty {
				p.accusedAge[p.cfg.ID] = 0
				if p.cfg.ID <= MaxPackedN {
					p.agingMask |= 1 << uint(p.cfg.ID-1)
				}
			}
		}
	}

	// Phase 2 — dissemination (send alignment, Alg. 1 lines 7-10): choose
	// the syndrome whose transmission round keeps all disseminated
	// syndromes referring to the same diagnosed round.
	switch {
	case p.cfg.AllSendCurrRound:
		copy(outSyn, alLS)
	case p.cfg.SendCurrRound:
		copy(outSyn, rd.al)
	default:
		copy(outSyn, alLS)
	}
	if p.cfg.Mode == ModeMembership {
		for j := 1; j <= n; j++ {
			if p.accuse[j] > 0 {
				outSyn[j] = Faulty
				p.accuse[j]--
				if p.accuse[j] == 0 && j <= MaxPackedN {
					p.accuseMask &^= 1 << uint(j-1)
				}
			}
		}
	}
	send := p.sendBufs[p.steps&3]
	outSyn.EncodeInto(send)
	out.Send = send
	out.SendSyndrome = outSyn

	// Phase 5 — update counters (Alg. 1 line 15, Alg. 2).
	if out.ConsHV != nil {
		iso, reint, err := p.pr.Update(out.ConsHV)
		if err != nil {
			return RoundOutput{}, err
		}
		out.Isolated = iso
		out.Reintegrated = reint
	}
	active := p.activeBufs[p.steps&3]
	copy(active, p.pr.active)
	out.Active = active
	out.ActiveMask = p.pr.activeMask

	// Buffering for the next round (Alg. 1 lines 16-17): copy this round's
	// raw observations into the buffer the next Step will read. wr.al
	// already holds the aligned local syndrome (written during alignment),
	// and outSyn lives in this round's private block, so retaining it as
	// lastSent costs nothing and is never mutated by later rounds.
	for j := 1; j <= n; j++ {
		wr.set[j] = in.DMs[j] != nil
		if wr.set[j] {
			copy(wr.dm[j], in.DMs[j])
		}
	}
	copy(wr.ls, in.Validity)
	p.prevSent = p.lastSent
	p.lastSent = outSyn
	if p.metrics != nil {
		p.emitStepMetrics(&out, matrix, warm)
	}
	if p.trace != nil {
		p.emitStepTrace(&out, warm)
	}
	p.ageAccusations()
	p.steps++
	if invariant.Enabled {
		p.checkStepInvariants(out)
	}
	return out, nil
}

// ageAccusations advances the skew-guard ages; counters saturated past the
// window (the steady state of every node) carry no mask bit and cost
// nothing.
func (p *Protocol) ageAccusations() {
	if p.agingMask != 0 || p.packed {
		for rem := p.agingMask; rem != 0; rem &= rem - 1 {
			j := bits.TrailingZeros64(rem) + 1
			p.accusedAge[j]++
			if p.accusedAge[j] > accusationSkew {
				p.agingMask &^= 1 << uint(j-1)
			}
		}
		return
	}
	for j := 1; j <= p.cfg.N; j++ {
		if p.accusedAge[j] <= accusationSkew {
			p.accusedAge[j]++
		}
	}
}

// guardMask returns the accusationSkew guard as a column mask: bit j-1 set
// iff accusedAge[j] lies in [1, accusationSkew].
func (p *Protocol) guardMask() uint64 {
	var m uint64
	for rem := p.agingMask; rem != 0; rem &= rem - 1 {
		j := bits.TrailingZeros64(rem) + 1
		if a := p.accusedAge[j]; a >= 1 && a <= accusationSkew {
			m |= 1 << uint(j-1)
		}
	}
	return m
}

// rebuildAccusationMasks recomputes accuseMask and agingMask from the
// counter slices (used after a snapshot restore replaces them).
func (p *Protocol) rebuildAccusationMasks() {
	p.accuseMask, p.agingMask = 0, 0
	for j := 1; j <= p.cfg.N && j <= MaxPackedN; j++ {
		bit := uint64(1) << uint(j-1)
		if p.accuse[j] > 0 {
			p.accuseMask |= bit
		}
		if p.accusedAge[j] <= accusationSkew {
			p.agingMask |= bit
		}
	}
}

// ownRow returns the syndrome this node physically transmitted in the
// previous round: the last written payload when the node's job runs before
// its sending slot, and the one before that otherwise (the write of round
// k-1 is only transmitted in round k).
func (p *Protocol) ownRow() Syndrome {
	if p.cfg.SendCurrRound {
		return p.lastSent
	}
	return p.prevSent
}

// ownRowP is ownRow on the packed path.
func (p *Protocol) ownRowP() BitSyndrome {
	if p.cfg.SendCurrRound {
		return p.lastSentP
	}
	return p.prevSentP
}

func (p *Protocol) collisionVerdict(fn CollisionFn, round int) Opinion {
	if fn == nil {
		return Healthy
	}
	switch fn(round) {
	case Faulty:
		return Faulty
	default:
		return Healthy
	}
}

// disagrees reports whether row (node j's local syndrome) conflicts with the
// consistent health vector on any node other than j itself (the diagonal is
// the unreliable self-opinion and is ignored). Entries whose health-vector
// value may still be driven by a recent minority accusation are skipped —
// see accusationSkew.
func (p *Protocol) disagrees(row, consHV Syndrome, j int) bool {
	for m := 1; m <= consHV.N(); m++ {
		if m == j {
			continue
		}
		if p.accusedAge[m] >= 1 && p.accusedAge[m] <= accusationSkew {
			continue
		}
		// The protocol's own entry is guarded as soon as the node sees
		// itself convicted (it is the accused party and must not
		// counter-accuse rows carrying the other clique's verdict).
		if m == p.cfg.ID && consHV[m] == Faulty {
			continue
		}
		if row[m] != consHV[m] {
			return true
		}
	}
	return false
}
