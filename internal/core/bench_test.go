package core

import (
	"fmt"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
)

// benchSizes are the system widths tracked in BENCH_core.json.
var benchSizes = []int{4, 16, 32, 64}

// benchScalarSizes additionally covers widths past the packed bound, where
// the scalar representation is the only one available — the monolithic
// baseline the hierarchical fleet layer (internal/fleet) is measured
// against.
var benchScalarSizes = []int{4, 16, 32, 64, 128}

// benchMatrices builds a packed matrix and a scalar-representation twin with
// identical pseudo-random content (ε rows, erased entries, mixed opinions).
// Past the packed bound only the scalar twin exists (packed is nil).
func benchMatrices(b *testing.B, n int) (packed, scalar *Matrix) {
	b.Helper()
	if n <= MaxPackedN {
		var err error
		packed, err = NewPackedMatrix(n)
		if err != nil {
			b.Fatal(err)
		}
	}
	scalar = newScalarMatrix(n)
	st := rng.NewStream(int64(77 + n))
	for j := 1; j <= n; j++ {
		var row Syndrome
		if !st.Bool(0.1) {
			row = NewSyndrome(n, Faulty)
			for i := 1; i <= n; i++ {
				if st.Bool(0.1) {
					row[i] = Erased
				} else {
					row[i] = Opinion(st.Intn(2))
				}
			}
		}
		if packed != nil {
			if err := packed.SetRow(j, row); err != nil {
				b.Fatal(err)
			}
		}
		if err := scalar.SetRow(j, row); err != nil {
			b.Fatal(err)
		}
	}
	return packed, scalar
}

// BenchmarkVoteAll measures the word-parallel bit-sliced voting kernel: the
// consistent health vector for all N columns from one pass over the row
// planes.
func BenchmarkVoteAll(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			m, _ := benchMatrices(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.VoteAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVoteAllScalar is the baseline the tentpole's >= 3x criterion is
// measured against: the scalar per-column H-maj loop over the same matrix
// content (O(N^2) byte operations).
func BenchmarkVoteAllScalar(b *testing.B) {
	for _, n := range benchScalarSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			_, m := benchMatrices(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.voteAllScalar()
			}
		})
	}
}

// benchStepProtocol builds a warmed steady-state protocol plus its healthy
// round input for the Step telemetry-overhead benchmarks.
func benchStepProtocol(b *testing.B, n int, withMetrics bool) func(round int) {
	b.Helper()
	p, err := NewProtocol(Config{
		N: n, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
	})
	if err != nil {
		b.Fatal(err)
	}
	if withMetrics {
		p.SetMetrics(NewStepMetrics(metrics.New()))
	}
	dms := make([]Syndrome, n+1)
	for j := 1; j <= n; j++ {
		dms[j] = NewSyndrome(n, Healthy)
	}
	validity := NewSyndrome(n, Healthy)
	collision := func(int) Opinion { return Healthy }
	step := func(round int) {
		in := RoundInput{Round: round, DMs: dms, Validity: validity, Collision: collision}
		if _, err := p.Step(in); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		step(i)
	}
	return step
}

// BenchmarkStepMetrics measures the telemetry cost of one protocol
// execution: "off" is the nil-attachment baseline (one branch), "on" pays
// the full StepMetrics instrument set. Tracked in BENCH_metrics.json.
func BenchmarkStepMetrics(b *testing.B) {
	for _, n := range []int{4, 64} {
		for _, withMetrics := range []bool{false, true} {
			mode := "off"
			if withMetrics {
				mode = "on"
			}
			b.Run(fmt.Sprintf("n%d_%s", n, mode), func(b *testing.B) {
				step := benchStepProtocol(b, n, withMetrics)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					step(16 + i)
				}
			})
		}
	}
}

// BenchmarkStepBatch measures one gang execution: ⌊64/N⌋ independent runs
// advanced by a single lane-packed protocol step. Divide ns/op by the lane
// count for the amortised per-run cost; compare against BenchmarkProtocolStep
// in BENCH_campaign.json for the per-run packed baseline. Tracked in
// BENCH_core.json.
func BenchmarkStepBatch(b *testing.B) {
	for _, n := range benchSizes {
		lanes := BatchLanes(n)
		b.Run(fmt.Sprintf("n%d_g%d", n, lanes), func(b *testing.B) {
			p, err := NewBatchProtocol(Config{
				N: n, ID: 1, L: 0, SendCurrRound: true,
				PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
			}, lanes)
			if err != nil {
				b.Fatal(err)
			}
			allB := p.allB
			rows := make([]BitSyndrome, n+1)
			for j := 1; j <= n; j++ {
				rows[j] = BitSyndrome{Op: allB, Known: allB}
			}
			validity := BitSyndrome{Op: allB, Known: allB}
			for i := 0; i < 16; i++ {
				if _, err := p.StepBatch(BatchRoundInput{Round: i, Rows: rows, Present: allB, Validity: validity}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.StepBatch(BatchRoundInput{Round: 16 + i, Rows: rows, Present: allB, Validity: validity}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalarStep measures one full protocol execution on the scalar
// fallback path (forced even within the packed bound, so n64 is directly
// comparable to the packed BenchmarkProtocolStep): the per-node cost of a
// flat monolithic deployment. n128 is past the packed bound — the regime
// the hierarchical fleet layer (internal/fleet) shards away. Tracked in
// BENCH_core.json.
func BenchmarkScalarStep(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			p, err := newProtocol(Config{
				N: n, ID: 1, L: 0, SendCurrRound: true,
				PR: PRConfig{PenaltyThreshold: 1 << 50, RewardThreshold: 1 << 50},
			}, false)
			if err != nil {
				b.Fatal(err)
			}
			dms := make([]Syndrome, n+1)
			for j := 1; j <= n; j++ {
				dms[j] = NewSyndrome(n, Healthy)
			}
			validity := NewSyndrome(n, Healthy)
			collision := func(int) Opinion { return Healthy }
			step := func(round int) {
				in := RoundInput{Round: round, DMs: dms, Validity: validity, Collision: collision}
				if _, err := p.Step(in); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 16; i++ {
				step(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step(16 + i)
			}
		})
	}
}

// BenchmarkMatrixSetRow compares installing one row as two word stores
// (packed) against the (N+1)-entry copy of the scalar representation.
func BenchmarkMatrixSetRow(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("packed_n%d", n), func(b *testing.B) {
			m, _ := benchMatrices(b, n)
			row := bitSyndromeAllHealthy(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SetBitRow(i%n+1, row); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scalar_n%d", n), func(b *testing.B) {
			_, m := benchMatrices(b, n)
			row := NewSyndrome(n, Healthy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SetRow(i%n+1, row); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointRestore compares the two checkpoint paths on a warm
// mid-run protocol: the JSON Snapshot/RestoreProtocol round-trip (the
// executable reference) against the zero-copy CopyFrom fast path that
// splitting clones use at every level crossing.
func BenchmarkCheckpointRestore(b *testing.B) {
	mkWarm := func(b *testing.B, n int) *Protocol {
		b.Helper()
		p, err := NewProtocol(Config{
			N: n, ID: 2, L: 0, SendCurrRound: true, Mode: ModeMembership,
			PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 4, ReintegrationThreshold: 6},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range copyFromTape(13, n, 16) {
			if _, err := p.Step(in); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	for _, n := range benchSizes {
		src := mkWarm(b, n)
		b.Run(fmt.Sprintf("json/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := src.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := RestoreProtocol(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("copyfrom/n%d", n), func(b *testing.B) {
			dst, err := NewProtocol(src.Config())
			if err != nil {
				b.Fatal(err)
			}
			if err := dst.CopyFrom(src); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.CopyFrom(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
