package core

import (
	"fmt"
	"testing"

	"ttdiag/internal/rng"
)

// benchSizes are the system widths tracked in BENCH_core.json.
var benchSizes = []int{4, 16, 32, 64}

// benchMatrices builds a packed matrix and a scalar-representation twin with
// identical pseudo-random content (ε rows, erased entries, mixed opinions).
func benchMatrices(b *testing.B, n int) (packed, scalar *Matrix) {
	b.Helper()
	packed, err := NewPackedMatrix(n)
	if err != nil {
		b.Fatal(err)
	}
	scalar = newScalarMatrix(n)
	st := rng.NewStream(int64(77 + n))
	for j := 1; j <= n; j++ {
		var row Syndrome
		if !st.Bool(0.1) {
			row = NewSyndrome(n, Faulty)
			for i := 1; i <= n; i++ {
				if st.Bool(0.1) {
					row[i] = Erased
				} else {
					row[i] = Opinion(st.Intn(2))
				}
			}
		}
		if err := packed.SetRow(j, row); err != nil {
			b.Fatal(err)
		}
		if err := scalar.SetRow(j, row); err != nil {
			b.Fatal(err)
		}
	}
	return packed, scalar
}

// BenchmarkVoteAll measures the word-parallel bit-sliced voting kernel: the
// consistent health vector for all N columns from one pass over the row
// planes.
func BenchmarkVoteAll(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			m, _ := benchMatrices(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.VoteAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVoteAllScalar is the baseline the tentpole's >= 3x criterion is
// measured against: the scalar per-column H-maj loop over the same matrix
// content (O(N^2) byte operations).
func BenchmarkVoteAllScalar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			_, m := benchMatrices(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.voteAllScalar()
			}
		})
	}
}

// BenchmarkMatrixSetRow compares installing one row as two word stores
// (packed) against the (N+1)-entry copy of the scalar representation.
func BenchmarkMatrixSetRow(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("packed_n%d", n), func(b *testing.B) {
			m, _ := benchMatrices(b, n)
			row := bitSyndromeAllHealthy(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SetBitRow(i%n+1, row); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scalar_n%d", n), func(b *testing.B) {
			_, m := benchMatrices(b, n)
			row := NewSyndrome(n, Healthy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SetRow(i%n+1, row); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
