package core

import (
	"testing"
	"testing/quick"

	"ttdiag/internal/rng"
)

func prMust(t *testing.T, n int, cfg PRConfig) *PenaltyReward {
	t.Helper()
	pr, err := NewPenaltyReward(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func hv(n int, faulty ...int) Syndrome {
	s := NewSyndrome(n, Healthy)
	for _, j := range faulty {
		s[j] = Faulty
	}
	return s
}

func TestPRConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     PRConfig
		wantErr bool
	}{
		{name: "ok_minimal", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}},
		{name: "negative_P", cfg: PRConfig{PenaltyThreshold: -1, RewardThreshold: 1}, wantErr: true},
		{name: "zero_R", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 0}, wantErr: true},
		{name: "negative_reint", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1, ReintegrationThreshold: -1}, wantErr: true},
		{name: "short_criticalities", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1, Criticalities: []int64{0, 1}}, wantErr: true},
		{name: "zero_criticality", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1, Criticalities: []int64{0, 1, 0, 1, 1}}, wantErr: true},
		{name: "ok_criticalities", cfg: PRConfig{PenaltyThreshold: 1, RewardThreshold: 1, Criticalities: []int64{0, 40, 6, 1, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate(4)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate: err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestPenaltyAccumulationAndIsolation(t *testing.T) {
	// P = 3: the fourth consecutive faulty round isolates (penalty must
	// exceed, not reach, the threshold).
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 3, RewardThreshold: 10})
	for round := 0; round < 3; round++ {
		iso, _, err := pr.Update(hv(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		if len(iso) != 0 {
			t.Fatalf("round %d: early isolation %v", round, iso)
		}
	}
	if got := pr.Penalty(2); got != 3 {
		t.Fatalf("penalty = %d, want 3", got)
	}
	iso, _, err := pr.Update(hv(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(iso) != 1 || iso[0] != 2 {
		t.Fatalf("isolated = %v, want [2]", iso)
	}
	if pr.IsActive(2) {
		t.Fatal("node 2 still active")
	}
	for _, j := range []int{1, 3, 4} {
		if !pr.IsActive(j) {
			t.Fatalf("node %d wrongly isolated", j)
		}
	}
}

func TestCriticalityScalesPenalty(t *testing.T) {
	// Automotive Table 2 settings: P=197, SC criticality 40 -> isolation at
	// the 5th faulty round (5*40=200 > 197).
	pr := prMust(t, 4, PRConfig{
		PenaltyThreshold: 197,
		RewardThreshold:  1 << 20,
		Criticalities:    []int64{0, 40, 6, 1, 1},
	})
	rounds := 0
	for pr.IsActive(1) {
		if _, _, err := pr.Update(hv(4, 1)); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if rounds != 5 {
		t.Fatalf("SC node isolated after %d faulty rounds, want 5", rounds)
	}
	// NSR node (criticality 1) takes 198 rounds.
	pr2 := prMust(t, 4, PRConfig{
		PenaltyThreshold: 197,
		RewardThreshold:  1 << 20,
		Criticalities:    []int64{0, 40, 6, 1, 1},
	})
	rounds = 0
	for pr2.IsActive(3) {
		if _, _, err := pr2.Update(hv(4, 3)); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if rounds != 198 {
		t.Fatalf("NSR node isolated after %d faulty rounds, want 198", rounds)
	}
}

func TestRewardResetsMemory(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 5, RewardThreshold: 3})
	// Two faults, then three clean rounds: counters reset.
	for i := 0; i < 2; i++ {
		if _, _, err := pr.Update(hv(4, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Penalty(1) != 2 {
		t.Fatalf("penalty = %d", pr.Penalty(1))
	}
	for i := 0; i < 3; i++ {
		if _, _, err := pr.Update(hv(4)); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Penalty(1) != 0 || pr.Reward(1) != 0 {
		t.Fatalf("counters not reset: p=%d r=%d", pr.Penalty(1), pr.Reward(1))
	}
}

func TestRewardZeroedByNewFault(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 100, RewardThreshold: 5})
	if _, _, err := pr.Update(hv(4, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := pr.Update(hv(4)); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Reward(1) != 3 {
		t.Fatalf("reward = %d, want 3", pr.Reward(1))
	}
	if _, _, err := pr.Update(hv(4, 1)); err != nil {
		t.Fatal(err)
	}
	if pr.Reward(1) != 0 {
		t.Fatalf("reward = %d after new fault, want 0", pr.Reward(1))
	}
	if pr.Penalty(1) != 2 {
		t.Fatalf("penalty = %d, want 2 (faults within R are correlated)", pr.Penalty(1))
	}
}

func TestRewardOnlyCountsWithPendingPenalty(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 5, RewardThreshold: 3})
	for i := 0; i < 10; i++ {
		if _, _, err := pr.Update(hv(4)); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Reward(1) != 0 {
		t.Fatalf("reward = %d for a never-faulty node, want 0", pr.Reward(1))
	}
}

func TestIsolationIsSticky(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 0, RewardThreshold: 2})
	if _, _, err := pr.Update(hv(4, 3)); err != nil {
		t.Fatal(err)
	}
	if pr.IsActive(3) {
		t.Fatal("node not isolated with P=0")
	}
	// Healthy rounds do not reintegrate without the extension.
	for i := 0; i < 100; i++ {
		if _, _, err := pr.Update(hv(4)); err != nil {
			t.Fatal(err)
		}
	}
	if pr.IsActive(3) {
		t.Fatal("node reintegrated without the extension enabled")
	}
}

func TestReintegrationExtension(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 0, RewardThreshold: 2, ReintegrationThreshold: 4})
	if _, _, err := pr.Update(hv(4, 3)); err != nil {
		t.Fatal(err)
	}
	if pr.IsActive(3) {
		t.Fatal("node not isolated")
	}
	// A fault during observation resets the observation counter.
	for i := 0; i < 3; i++ {
		if _, _, err := pr.Update(hv(4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := pr.Update(hv(4, 3)); err != nil {
		t.Fatal(err)
	}
	var reint []int
	for i := 0; i < 4; i++ {
		if pr.IsActive(3) {
			t.Fatalf("reintegrated after only %d clean rounds", i)
		}
		var err error
		_, reint, err = pr.Update(hv(4))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !pr.IsActive(3) {
		t.Fatal("node not reintegrated after threshold clean rounds")
	}
	if len(reint) != 1 || reint[0] != 3 {
		t.Fatalf("reintegrated = %v, want [3]", reint)
	}
	if pr.Penalty(3) != 0 || pr.Reward(3) != 0 {
		t.Fatal("counters not reset on reintegration")
	}
}

func TestUpdateSizeMismatch(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 1, RewardThreshold: 1})
	if _, _, err := pr.Update(NewSyndrome(5, Healthy)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestAccessorsOutOfRange(t *testing.T) {
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 1, RewardThreshold: 1})
	if pr.IsActive(0) || pr.IsActive(5) {
		t.Error("out-of-range node reported active")
	}
	if pr.Penalty(0) != 0 || pr.Reward(99) != 0 {
		t.Error("out-of-range counters non-zero")
	}
}

func TestNewPenaltyRewardValidation(t *testing.T) {
	if _, err := NewPenaltyReward(0, PRConfig{PenaltyThreshold: 1, RewardThreshold: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewPenaltyReward(4, PRConfig{PenaltyThreshold: -1, RewardThreshold: 1}); err == nil {
		t.Error("invalid config accepted")
	}
}

// Property: penalty counters are exceeded (isolation) after exactly
// ceil((P+1)/s) faulty rounds under continuous faults, matching the Sec. 9
// tuning rule s_i = ceil(P/p_i).
func TestIsolationRoundProperty(t *testing.T) {
	if err := quick.Check(func(pRaw uint16, sRaw uint8) bool {
		p := int64(pRaw%1000) + 1
		s := int64(sRaw%50) + 1
		pr, err := NewPenaltyReward(2, PRConfig{
			PenaltyThreshold: p,
			RewardThreshold:  10,
			Criticalities:    []int64{0, s, 1},
		})
		if err != nil {
			return false
		}
		rounds := int64(0)
		for pr.IsActive(1) {
			if _, _, err := pr.Update(hv(2, 1)); err != nil {
				return false
			}
			rounds++
		}
		want := (p + s) / s // ceil((P+1)/s)
		return rounds == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: counters never go negative and rewards never exceed R.
func TestCounterInvariants(t *testing.T) {
	st := rng.NewStream(3)
	pr := prMust(t, 4, PRConfig{PenaltyThreshold: 20, RewardThreshold: 7})
	for i := 0; i < 5000; i++ {
		v := NewSyndrome(4, Healthy)
		for j := 1; j <= 4; j++ {
			if st.Bool(0.3) {
				v[j] = Faulty
			}
		}
		if _, _, err := pr.Update(v); err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= 4; j++ {
			if pr.Penalty(j) < 0 || pr.Reward(j) < 0 {
				t.Fatalf("negative counter for node %d", j)
			}
			if pr.Reward(j) >= 7 {
				t.Fatalf("reward %d not reset at threshold", pr.Reward(j))
			}
			if pr.IsActive(j) && pr.Penalty(j) > 20 {
				t.Fatalf("active node %d with penalty %d beyond threshold", j, pr.Penalty(j))
			}
		}
	}
}
