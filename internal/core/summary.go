package core

import "fmt"

// ShardSummary is the cluster-health summary a shard's gateway disseminates
// at the inter-cluster level of a hierarchical fleet: how large the shard is,
// how many of its nodes the intra-shard protocol has isolated, and how many
// the latest consistent health vector holds faulty. It is the payload the
// gateway appends to its fleet-level syndrome — the fleet analogue of the
// per-node opinion, but carrying enough detail for capacity planning (a shard
// that has burned through its 2a+2s+b+1 margin is flagged before it fails).
type ShardSummary struct {
	// Size is the shard's node count (1..MaxPackedN).
	Size int
	// Isolated is how many shard nodes the intra-shard penalty/reward
	// algorithm has isolated (0..Size).
	Isolated int
	// Faulty is how many entries of the shard's latest consistent health
	// vector are Faulty (0..Size); zero while the shard protocol warms up.
	Faulty int
}

// SummaryWireLen is the encoded size of a ShardSummary: three 7-bit fields
// (each bounded by MaxPackedN = 64 ≤ 127) bit-packed into three bytes.
const SummaryWireLen = 3

// summaryFieldBits is the width of each packed field; 7 bits hold 0..127,
// comfortably covering 0..MaxPackedN.
const summaryFieldBits = 7

// Health folds the summary into a fleet-level opinion about the shard:
// Faulty once isolations have consumed the shard's majority margin (half or
// more of its nodes isolated, so intra-shard voting can no longer outvote a
// coincident fault), Healthy otherwise, Erased for the zero value.
func (s ShardSummary) Health() Opinion {
	if s.Size <= 0 {
		return Erased
	}
	if 2*s.Isolated >= s.Size {
		return Faulty
	}
	return Healthy
}

// Degraded reports whether the shard currently carries any isolation or open
// fault verdict — the "attention" bit of fleet dashboards.
func (s ShardSummary) Degraded() bool { return s.Isolated > 0 || s.Faulty > 0 }

// Validate checks the field bounds the wire format relies on.
func (s ShardSummary) Validate() error {
	if s.Size < 1 || s.Size > MaxPackedN {
		return fmt.Errorf("core: shard summary size %d out of range 1..%d", s.Size, MaxPackedN)
	}
	if s.Isolated < 0 || s.Isolated > s.Size {
		return fmt.Errorf("core: shard summary isolated %d out of range 0..%d", s.Isolated, s.Size)
	}
	if s.Faulty < 0 || s.Faulty > s.Size {
		return fmt.Errorf("core: shard summary faulty %d out of range 0..%d", s.Faulty, s.Size)
	}
	return nil
}

// EncodeInto writes the bit-packed wire form into dst (SummaryWireLen bytes):
// Size in bits 0-6, Isolated in bits 7-13, Faulty in bits 14-20, LSB-first
// like every other wire field in this package.
func (s ShardSummary) EncodeInto(dst []byte) error {
	if len(dst) != SummaryWireLen {
		return fmt.Errorf("core: shard summary buffer is %d bytes, want %d", len(dst), SummaryWireLen)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	w := uint32(s.Size) |
		uint32(s.Isolated)<<summaryFieldBits |
		uint32(s.Faulty)<<(2*summaryFieldBits)
	dst[0] = byte(w)
	dst[1] = byte(w >> 8)
	dst[2] = byte(w >> 16)
	return nil
}

// Encode returns the wire form as a fresh buffer.
func (s ShardSummary) Encode() ([]byte, error) {
	buf := make([]byte, SummaryWireLen)
	if err := s.EncodeInto(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeShardSummary parses the wire form written by EncodeInto, validating
// the field bounds (a corrupted summary is locally detectable, like an
// undecodable syndrome payload).
func DecodeShardSummary(data []byte) (ShardSummary, error) {
	if len(data) != SummaryWireLen {
		return ShardSummary{}, fmt.Errorf("core: shard summary payload is %d bytes, want %d", len(data), SummaryWireLen)
	}
	w := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16
	const fieldMask = 1<<summaryFieldBits - 1
	s := ShardSummary{
		Size:     int(w & fieldMask),
		Isolated: int(w >> summaryFieldBits & fieldMask),
		Faulty:   int(w >> (2 * summaryFieldBits) & fieldMask),
	}
	if err := s.Validate(); err != nil {
		return ShardSummary{}, err
	}
	return s, nil
}
