package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// tallyVerdict is the single decision point of Eqn. 1, shared by HMaj,
// Matrix.Vote and the scalar reference the packed kernel is verified against:
// given the number of Faulty and Healthy votes among the non-ε opinions it
// returns ⊥ (ok == false) when there were none, Faulty on a strict Faulty
// majority, and Healthy otherwise (ties included — Eqn. 1's "else 1" branch,
// which guarantees a correct sender is never convicted by minority malicious
// votes).
func tallyVerdict(faulty, healthy int) (Opinion, bool) {
	if faulty+healthy == 0 {
		return Erased, false
	}
	if faulty > healthy {
		return Faulty, true
	}
	return Healthy, true
}

// HMaj is the hybrid-majority voting function of Eqn. 1. It receives the
// opinions of the other nodes about one diagnosed node (the diagnosed node's
// self-opinion must already be excluded by the caller) and returns:
//
//   - (_, false) — ⊥: no correct local syndrome was available, so no
//     decision can be reached (only possible during a communication
//     blackout, Lemma 3);
//   - (Faulty, true) — strictly more Faulty than Healthy votes among the
//     non-ε opinions;
//   - (Healthy, true) — otherwise (including ties, Eqn. 1's "else 1"
//     branch).
func HMaj(votes []Opinion) (Opinion, bool) {
	var faulty, healthy int
	for _, v := range votes {
		switch v {
		case Faulty:
			faulty++
		case Healthy:
			healthy++
		}
	}
	return tallyVerdict(faulty, healthy)
}

// Matrix is a diagnostic matrix for one diagnosed round: row j is the
// aligned local syndrome received from node j (nil for an ε row — node j's
// syndrome was not received), and column i is the set of opinions about
// node i.
//
// The matrix has two storage representations behind one API:
//
//   - Packed (N <= MaxPackedN, the default): each row is two uint64 planes
//     (opinion bits + presence/ε bits), SetBitRow installs a row with two
//     word stores, and VoteAll runs the word-parallel bit-sliced voting
//     kernel over all columns at once. Scalar accessors (Row, String)
//     materialise a byte-level view lazily on first use.
//   - Scalar (N > MaxPackedN, and the reference implementation the packed
//     kernel is verified against): a single flat backing array into which
//     SetRow copies each syndrome.
//
// Either way the matrix owns its storage — SetRow/SetBitRow copy the given
// row — so a Matrix retained from a RoundOutput stays valid even though the
// protocol reuses its alignment buffers round over round. In the scalar
// layout, row 0 of the backing array is never exposed (rows are 1-based) and
// stores the per-row presence flags: cells[j] == Healthy iff row j is set.
type Matrix struct {
	n int
	// cells is the scalar storage ((n+1)*(n+1), row-major; row j at
	// [j*(n+1), (j+1)*(n+1))). On a packed matrix it doubles as the lazily
	// materialised byte-level cache and is invalidated by every row write.
	cells Syndrome
	// op/know are the packed row planes (1-based; nil on scalar matrices —
	// op != nil is the representation discriminator), rowSet the presence
	// mask (bit j-1 set iff row j is non-ε).
	op     []uint64
	know   []uint64
	rowSet uint64
}

// NewMatrix returns an empty diagnostic matrix for n nodes (all rows ε),
// packed when n fits the bit-plane representation and scalar beyond it.
func NewMatrix(n int) *Matrix {
	if n <= MaxPackedN {
		m, _ := NewPackedMatrix(n)
		return m
	}
	return newScalarMatrix(n)
}

// NewPackedMatrix returns an empty plane-backed diagnostic matrix. It fails
// when n exceeds MaxPackedN — one machine word must hold one opinion per
// node; wider systems use the scalar representation, which NewMatrix selects
// automatically.
func NewPackedMatrix(n int) (*Matrix, error) {
	if n > MaxPackedN {
		return nil, fmt.Errorf("core: packed matrix supports N <= %d, got %d (NewMatrix falls back to the scalar representation)", MaxPackedN, n)
	}
	planes := make([]uint64, 2*(n+1))
	m := &Matrix{n: n}
	initPackedMatrix(m, planes)
	return m, nil
}

// initPackedMatrix wires a zeroed caller-provided plane block of length
// 2*(n+1) into m (rows 1-based; the two index-0 words are never exposed).
func initPackedMatrix(m *Matrix, planes []uint64) {
	w := m.n + 1
	m.op = planes[0:w:w]
	m.know = planes[w : 2*w : 2*w]
}

// newScalarMatrix returns an empty matrix in the byte-per-entry reference
// representation, with no bound on n.
func newScalarMatrix(n int) *Matrix {
	return newMatrixIn(n, make(Syndrome, (n+1)*(n+1)))
}

// newMatrixIn wraps a zeroed caller-provided backing array of length
// (n+1)*(n+1) as an empty scalar matrix: the zero Opinion is Faulty, which
// reads as "row absent" in the presence row, so no initialisation pass is
// needed.
func newMatrixIn(n int, cells Syndrome) *Matrix {
	return &Matrix{n: n, cells: cells}
}

// N returns the system size.
func (m *Matrix) N() int { return m.n }

// Packed reports whether the matrix uses the bit-plane representation.
func (m *Matrix) Packed() bool { return m.op != nil }

// SetRow installs the local syndrome received from node j; a nil syndrome
// marks the row as ε. The syndrome is copied, so the caller may reuse its
// buffer afterwards. On a packed matrix, entries outside {Faulty, Healthy,
// Erased} are normalised to ε (voting-equivalent: Eqn. 1 excludes them from
// the tally either way).
//
//ttdiag:noretain params
func (m *Matrix) SetRow(j int, s Syndrome) error {
	if j < 1 || j > m.n {
		return fmt.Errorf("core: matrix row %d out of range 1..%d", j, m.n)
	}
	if m.op != nil {
		if s == nil {
			m.op[j], m.know[j] = 0, 0
			m.rowSet &^= 1 << uint(j-1)
			m.cells = nil
			return nil
		}
		if s.N() != m.n {
			return fmt.Errorf("core: matrix row %d has %d entries, want %d", j, s.N(), m.n)
		}
		return m.SetBitRow(j, packSyndrome(s))
	}
	if s == nil {
		m.cells[j] = Faulty
		return nil
	}
	if s.N() != m.n {
		return fmt.Errorf("core: matrix row %d has %d entries, want %d", j, s.N(), m.n)
	}
	row := m.rowSlice(j)
	copy(row, s)
	row[0] = Erased
	m.cells[j] = Healthy
	return nil
}

// SetBitRow installs a packed local syndrome as row j — the hot-path form of
// SetRow: two word stores instead of an (N+1)-entry copy. It fails on scalar
// matrices (N > MaxPackedN).
func (m *Matrix) SetBitRow(j int, row BitSyndrome) error {
	if m.op == nil {
		return fmt.Errorf("core: SetBitRow on a scalar matrix (N = %d > %d)", m.n, MaxPackedN)
	}
	if j < 1 || j > m.n {
		return fmt.Errorf("core: matrix row %d out of range 1..%d", j, m.n)
	}
	row = row.normalized(PlaneMask(m.n))
	m.op[j] = row.Op
	m.know[j] = row.Known
	m.rowSet |= 1 << uint(j-1)
	m.cells = nil
	return nil
}

// rowSlice returns the full-capacity-clamped scalar storage of row j.
func (m *Matrix) rowSlice(j int) Syndrome {
	w := m.n + 1
	return m.cells[j*w : (j+1)*w : (j+1)*w]
}

// materialise builds the byte-level cache of a packed matrix so the scalar
// accessors can serve views of it. Row views returned before the last row
// write stay valid (the cache is replaced, not reused), matching the
// retain-safety of the scalar representation.
func (m *Matrix) materialise() {
	if m.op == nil || m.cells != nil {
		return
	}
	w := m.n + 1
	cells := make(Syndrome, w*w)
	for j := 1; j <= m.n; j++ {
		if m.rowSet&(1<<uint(j-1)) == 0 {
			continue
		}
		cells[j] = Healthy
		row := cells[j*w : (j+1)*w]
		row[0] = Erased
		b := BitSyndrome{Op: m.op[j], Known: m.know[j]}
		for i := 1; i <= m.n; i++ {
			row[i] = b.Get(i)
		}
	}
	m.cells = cells
}

// Row returns the syndrome of row j (nil for ε). The returned slice aliases
// matrix-owned storage and must not be mutated.
func (m *Matrix) Row(j int) Syndrome {
	if j < 1 || j > m.n {
		return nil
	}
	if m.op != nil {
		if m.rowSet&(1<<uint(j-1)) == 0 {
			return nil
		}
		m.materialise()
	} else if m.cells[j] != Healthy {
		return nil
	}
	return m.rowSlice(j)
}

// BitRow returns row j as packed planes; ok is false for ε rows. On scalar
// matrices within the packed bound the row is packed on the fly; beyond
// MaxPackedN ok is always false.
func (m *Matrix) BitRow(j int) (BitSyndrome, bool) {
	if j < 1 || j > m.n || m.n > MaxPackedN {
		return BitSyndrome{}, false
	}
	if m.op != nil {
		if m.rowSet&(1<<uint(j-1)) == 0 {
			return BitSyndrome{}, false
		}
		return BitSyndrome{Op: m.op[j], Known: m.know[j]}, true
	}
	row := m.Row(j)
	if row == nil {
		return BitSyndrome{}, false
	}
	return packSyndrome(row), true
}

// Opinion returns accuser's opinion about accused, Erased when the accuser's
// row is ε.
func (m *Matrix) Opinion(accuser, accused int) Opinion {
	if m.op != nil {
		if accuser < 1 || accuser > m.n || m.rowSet&(1<<uint(accuser-1)) == 0 {
			return Erased
		}
		return BitSyndrome{Op: m.op[accuser], Known: m.know[accuser]}.Get(accused)
	}
	row := m.Row(accuser)
	if row == nil {
		return Erased
	}
	return row[accused]
}

// Column collects the opinions about node j from every row except row j
// itself: "the opinion of a node about itself is considered unreliable and
// discarded" (Sec. 5).
func (m *Matrix) Column(j int) []Opinion {
	votes := make([]Opinion, 0, m.n-1)
	for i := 1; i <= m.n; i++ {
		if i == j {
			continue
		}
		votes = append(votes, m.Opinion(i, j))
	}
	return votes
}

// Vote runs H-maj over column j. It is equivalent to HMaj(m.Column(j)) but
// walks the column in place instead of materialising the vote slice. For all
// columns at once, VoteAll is the word-parallel form.
func (m *Matrix) Vote(j int) (Opinion, bool) {
	return tallyVerdict(m.Tally(j))
}

// Tally counts the Faulty and Healthy opinions about column j — every non-ε
// entry of the column except node j's opinion about itself (self-opinions
// are discarded per Sec. 5). Vote is exactly tallyVerdict over this tally
// (Eqn. 1: ⊥ when both counts are zero, Faulty on a strict majority,
// Healthy otherwise including ties), so telemetry that classifies vote
// outcomes can use the same counts the verdict was derived from.
func (m *Matrix) Tally(j int) (faulty, healthy int) {
	if m.op != nil {
		bit := uint64(1) << uint(j-1)
		for rows := m.rowSet &^ bit; rows != 0; rows &= rows - 1 {
			i := bits.TrailingZeros64(rows) + 1
			if m.know[i]&bit == 0 {
				continue
			}
			if m.op[i]&bit != 0 {
				healthy++
			} else {
				faulty++
			}
		}
		return faulty, healthy
	}
	for i := 1; i <= m.n; i++ {
		if i == j {
			continue
		}
		switch m.Opinion(i, j) {
		case Faulty:
			faulty++
		case Healthy:
			healthy++
		}
	}
	return faulty, healthy
}

// DisagreementCount counts the definite (non-ε) off-self-column opinions
// that differ from the agreed health vector — the per-round "syndrome
// disagreement" telemetry of the diagnostic matrix. On a packed matrix this
// is pure mask arithmetic and allocates nothing.
func (m *Matrix) DisagreementCount(consHV Syndrome) int {
	total := 0
	if m.op != nil {
		all := PlaneMask(m.n)
		cons := packSyndrome(consHV)
		for rows := m.rowSet; rows != 0; rows &= rows - 1 {
			i := bits.TrailingZeros64(rows) + 1
			conflict := m.know[i] & cons.Known & (m.op[i] ^ cons.Op) & all &^ (uint64(1) << uint(i-1))
			total += bits.OnesCount64(conflict)
		}
		return total
	}
	for i := 1; i <= m.n; i++ {
		row := m.Row(i)
		if row == nil {
			continue
		}
		for j := 1; j <= m.n; j++ {
			if j == i || j >= len(consHV) {
				continue
			}
			v := row[j]
			if v != Faulty && v != Healthy {
				continue
			}
			c := consHV[j]
			if (c == Faulty || c == Healthy) && v != c {
				total++
			}
		}
	}
	return total
}

// VoteAll runs H-maj over every column at once and returns the result as a
// packed health vector: Known bit j-1 clear means column j voted ⊥, Op bit
// j-1 carries the Healthy/Faulty verdict otherwise. On a packed matrix this
// is the bit-sliced kernel (O(N·log N) word operations); on a scalar matrix
// within the packed bound it falls back to the per-column reference loop, and
// beyond MaxPackedN it fails (a 64-bit result cannot cover the columns).
func (m *Matrix) VoteAll() (BitSyndrome, error) {
	if m.op != nil {
		return m.voteAllPlanes(), nil
	}
	if m.n > MaxPackedN {
		return BitSyndrome{}, fmt.Errorf("core: VoteAll result is one machine word, N = %d > %d; vote per column instead", m.n, MaxPackedN)
	}
	return m.voteAllScalar(), nil
}

// countPlanes is the number of bit-sliced counter planes: per-column vote
// counts are at most N-1 <= 63, which fits in six bits.
const countPlanes = 6

// addPlane ripple-carry-adds the 1-bit-per-column mask into the bit-sliced
// counters: cnt[k] holds bit k of every column's count.
func addPlane(cnt *[countPlanes]uint64, mask uint64) {
	for k := 0; mask != 0 && k < countPlanes; k++ {
		carried := cnt[k] & mask
		cnt[k] ^= mask
		mask = carried
	}
}

// voteAllPlanes is the word-parallel voting kernel: every set row
// contributes its healthy and faulty opinion masks (self-opinion column
// removed per Sec. 5) to two bit-sliced per-column counters, and the final
// Faulty verdicts fall out of one bit-sliced comparison — the borrow of the
// 6-bit subtraction healthy − faulty, computed with the full-subtractor
// recurrence borrow' = (¬h ∧ (f ∨ borrow)) ∨ (f ∧ borrow). Columns with no
// contribution at all are ⊥, and ties land on Healthy because a tie produces
// no borrow — exactly Eqn. 1.
func (m *Matrix) voteAllPlanes() BitSyndrome {
	all := PlaneMask(m.n)
	var healthy, faulty [countPlanes]uint64
	var any uint64
	for rows := m.rowSet; rows != 0; rows &= rows - 1 {
		i := bits.TrailingZeros64(rows) + 1
		valid := m.know[i] & all &^ (uint64(1) << uint(i-1))
		if valid == 0 {
			continue
		}
		any |= valid
		addPlane(&healthy, m.op[i]&valid)
		addPlane(&faulty, valid&^m.op[i])
	}
	var borrow uint64
	for k := 0; k < countPlanes; k++ {
		borrow = (^healthy[k] & (faulty[k] | borrow)) | (faulty[k] & borrow)
	}
	return BitSyndrome{Op: any &^ borrow, Known: any}
}

// voteAllScalar is the reference implementation of VoteAll: the per-column
// loop the packed kernel is differentially tested against.
func (m *Matrix) voteAllScalar() BitSyndrome {
	var out BitSyndrome
	for j := 1; j <= m.n; j++ {
		if v, ok := m.Vote(j); ok {
			out.Set(j, v)
		}
	}
	return out
}

// String renders the matrix in the layout of Table 1, including the voted
// consistent health vector.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("accuser\\accused |")
	for j := 1; j <= m.n; j++ {
		fmt.Fprintf(&b, " %d", j)
	}
	b.WriteString("\n")
	for i := 1; i <= m.n; i++ {
		fmt.Fprintf(&b, "node %-10d |", i)
		for j := 1; j <= m.n; j++ {
			if i == j {
				b.WriteString(" -")
				continue
			}
			fmt.Fprintf(&b, " %s", m.Opinion(i, j))
		}
		b.WriteString("\n")
	}
	b.WriteString("voted cons_hv   |")
	for j := 1; j <= m.n; j++ {
		if v, ok := m.Vote(j); ok {
			fmt.Fprintf(&b, " %s", v)
		} else {
			b.WriteString(" ?")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Tolerates reports whether an N-node system satisfies the fault hypothesis
// of Lemma 2 for a asymmetric, s symmetric-malicious and b benign faulty
// senders over one protocol execution: N > 2a + 2s + b + 1 and a <= 1. The
// benign-only blackout regime (Lemma 3) is handled separately and reported
// by ToleratesBenignOnly.
func Tolerates(n, a, s, b int) bool {
	if a < 0 || s < 0 || b < 0 {
		return false
	}
	return a <= 1 && n > 2*a+2*s+b+1
}

// ToleratesBenignOnly reports whether the benign-only regime of Lemma 3
// applies: every fault is benign and correct local collision detection is
// available for self-diagnosis. It holds for any b up to N.
func ToleratesBenignOnly(n, b int) bool {
	return b >= 0 && b <= n
}
