package core

import (
	"fmt"
	"strings"
)

// HMaj is the hybrid-majority voting function of Eqn. 1. It receives the
// opinions of the other nodes about one diagnosed node (the diagnosed node's
// self-opinion must already be excluded by the caller) and returns:
//
//   - (_, false) — ⊥: no correct local syndrome was available, so no
//     decision can be reached (only possible during a communication
//     blackout, Lemma 3);
//   - (Faulty, true) — strictly more Faulty than Healthy votes among the
//     non-ε opinions;
//   - (Healthy, true) — otherwise (including ties, Eqn. 1's "else 1"
//     branch, which guarantees a correct sender is never convicted by
//     minority malicious votes).
func HMaj(votes []Opinion) (Opinion, bool) {
	var faulty, healthy int
	for _, v := range votes {
		switch v {
		case Faulty:
			faulty++
		case Healthy:
			healthy++
		}
	}
	if faulty+healthy == 0 {
		return Erased, false
	}
	if faulty > healthy {
		return Faulty, true
	}
	return Healthy, true
}

// Matrix is a diagnostic matrix for one diagnosed round: row j is the
// aligned local syndrome received from node j (nil for an ε row — node j's
// syndrome was not received), and column i is the set of opinions about
// node i.
//
// The matrix owns a single flat backing array: SetRow copies the given
// syndrome into it, so a Matrix retained from a RoundOutput stays valid even
// though the protocol reuses its alignment buffers round over round, and the
// whole structure costs two allocations regardless of N. Row 0 of the
// backing array is never exposed (rows are 1-based) and stores the per-row
// presence flags: cells[j] == Healthy iff row j is set.
type Matrix struct {
	n     int
	cells Syndrome // (n+1)*(n+1), row-major; row j at [j*(n+1), (j+1)*(n+1))
}

// NewMatrix returns an empty diagnostic matrix for n nodes (all rows ε).
func NewMatrix(n int) *Matrix {
	return newMatrixIn(n, make(Syndrome, (n+1)*(n+1)))
}

// newMatrixIn wraps a zeroed caller-provided backing array of length
// (n+1)*(n+1) as an empty matrix: the zero Opinion is Faulty, which reads as
// "row absent" in the presence row, so no initialisation pass is needed.
func newMatrixIn(n int, cells Syndrome) *Matrix {
	return &Matrix{n: n, cells: cells}
}

// N returns the system size.
func (m *Matrix) N() int { return m.n }

// SetRow installs the local syndrome received from node j; a nil syndrome
// marks the row as ε. The syndrome is copied, so the caller may reuse its
// buffer afterwards.
func (m *Matrix) SetRow(j int, s Syndrome) error {
	if j < 1 || j > m.n {
		return fmt.Errorf("core: matrix row %d out of range 1..%d", j, m.n)
	}
	if s == nil {
		m.cells[j] = Faulty
		return nil
	}
	if s.N() != m.n {
		return fmt.Errorf("core: matrix row %d has %d entries, want %d", j, s.N(), m.n)
	}
	row := m.rowSlice(j)
	copy(row, s)
	row[0] = Erased
	m.cells[j] = Healthy
	return nil
}

// rowSlice returns the full-capacity-clamped storage of row j.
func (m *Matrix) rowSlice(j int) Syndrome {
	w := m.n + 1
	return m.cells[j*w : (j+1)*w : (j+1)*w]
}

// Row returns the syndrome of row j (nil for ε). The returned slice aliases
// the matrix storage and must not be mutated.
func (m *Matrix) Row(j int) Syndrome {
	if j < 1 || j > m.n || m.cells[j] != Healthy {
		return nil
	}
	return m.rowSlice(j)
}

// Opinion returns accuser's opinion about accused, Erased when the accuser's
// row is ε.
func (m *Matrix) Opinion(accuser, accused int) Opinion {
	row := m.Row(accuser)
	if row == nil {
		return Erased
	}
	return row[accused]
}

// Column collects the opinions about node j from every row except row j
// itself: "the opinion of a node about itself is considered unreliable and
// discarded" (Sec. 5).
func (m *Matrix) Column(j int) []Opinion {
	votes := make([]Opinion, 0, m.n-1)
	for i := 1; i <= m.n; i++ {
		if i == j {
			continue
		}
		votes = append(votes, m.Opinion(i, j))
	}
	return votes
}

// Vote runs H-maj over column j. It is equivalent to HMaj(m.Column(j)) but
// walks the column in place instead of materialising the vote slice — this
// sits on the per-round hot path of every node.
func (m *Matrix) Vote(j int) (Opinion, bool) {
	var faulty, healthy int
	for i := 1; i <= m.n; i++ {
		if i == j {
			continue
		}
		switch m.Opinion(i, j) {
		case Faulty:
			faulty++
		case Healthy:
			healthy++
		}
	}
	if faulty+healthy == 0 {
		return Erased, false
	}
	if faulty > healthy {
		return Faulty, true
	}
	return Healthy, true
}

// String renders the matrix in the layout of Table 1, including the voted
// consistent health vector.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("accuser\\accused |")
	for j := 1; j <= m.n; j++ {
		fmt.Fprintf(&b, " %d", j)
	}
	b.WriteString("\n")
	for i := 1; i <= m.n; i++ {
		fmt.Fprintf(&b, "node %-10d |", i)
		for j := 1; j <= m.n; j++ {
			if i == j {
				b.WriteString(" -")
				continue
			}
			fmt.Fprintf(&b, " %s", m.Opinion(i, j))
		}
		b.WriteString("\n")
	}
	b.WriteString("voted cons_hv   |")
	for j := 1; j <= m.n; j++ {
		if v, ok := m.Vote(j); ok {
			fmt.Fprintf(&b, " %s", v)
		} else {
			b.WriteString(" ?")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Tolerates reports whether an N-node system satisfies the fault hypothesis
// of Lemma 2 for a asymmetric, s symmetric-malicious and b benign faulty
// senders over one protocol execution: N > 2a + 2s + b + 1 and a <= 1. The
// benign-only blackout regime (Lemma 3) is handled separately and reported
// by ToleratesBenignOnly.
func Tolerates(n, a, s, b int) bool {
	if a < 0 || s < 0 || b < 0 {
		return false
	}
	return a <= 1 && n > 2*a+2*s+b+1
}

// ToleratesBenignOnly reports whether the benign-only regime of Lemma 3
// applies: every fault is benign and correct local collision detection is
// available for self-diagnosis. It holds for any b up to N.
func ToleratesBenignOnly(n, b int) bool {
	return b >= 0 && b <= n
}
