package core

import (
	"encoding/json"
	"testing"

	"ttdiag/internal/metrics"
)

// metricsScenario steps a protocol through warm-up, a fault window in which
// most nodes accuse node 3 (node 2 dissents, so the matrix carries genuine
// disagreement), and a recovery tail. It exercises healthy votes, faulty
// votes, disagreements, penalty growth and — with a low threshold —
// isolation and reintegration.
func metricsScenario(t *testing.T, p *Protocol) {
	t.Helper()
	n := p.Config().N
	healthy := NewSyndrome(n, Healthy)
	accuse3 := NewSyndrome(n, Healthy)
	accuse3[3] = Faulty
	collision := func(int) Opinion { return Healthy }
	for round := 0; round < 24; round++ {
		dms := make([]Syndrome, n+1)
		validity := healthy
		for j := 1; j <= n; j++ {
			dms[j] = healthy
		}
		if round >= 6 && round < 12 {
			for j := 1; j <= n; j++ {
				if j != 2 { // node 2 dissents: disagreement with the vote
					dms[j] = accuse3
				}
			}
			validity = accuse3
		}
		if _, err := p.Step(RoundInput{Round: round, DMs: dms, Validity: validity, Collision: collision}); err != nil {
			t.Fatal(err)
		}
	}
}

func newMetricsProtocol(t *testing.T, packed bool) *Protocol {
	t.Helper()
	p, err := newProtocol(Config{
		N: 4, ID: 1, L: 0, SendCurrRound: true,
		PR: PRConfig{PenaltyThreshold: 3, RewardThreshold: 2, ReintegrationThreshold: 4},
	}, packed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStepMetricsPackedScalarParity runs the same scenario on the packed
// hot path and the scalar reference; the emitted telemetry must be
// byte-identical, like every other observable output of the two paths.
func TestStepMetricsPackedScalarParity(t *testing.T) {
	snap := func(packed bool) metrics.Snapshot {
		reg := metrics.New()
		p := newMetricsProtocol(t, packed)
		sm := NewStepMetrics(reg)
		sm.PenaltySeries = []*metrics.Series{nil, reg.Series("penalty/node-1", 64), nil, reg.Series("penalty/node-3", 64)}
		p.SetMetrics(sm)
		metricsScenario(t, p)
		return reg.Snapshot()
	}
	a, b := snap(true), snap(false)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("packed vs scalar metrics differ:\npacked: %s\nscalar: %s", ja, jb)
	}
	// Sanity: the scenario must actually exercise the instruments.
	if a.Counters["protocol/steps"] != 24 {
		t.Fatalf("steps = %d, want 24", a.Counters["protocol/steps"])
	}
	if a.Counters["vote/faulty"] == 0 || a.Counters["vote/healthy"] == 0 {
		t.Fatalf("vote outcomes not exercised: %v", a.Counters)
	}
	if a.Counters["matrix/disagreements"] == 0 {
		t.Fatalf("dissenting row produced no disagreement: %v", a.Counters)
	}
	if a.Counters["pr/isolations"] == 0 || a.Counters["pr/reintegrations"] == 0 {
		t.Fatalf("threshold crossings not exercised: %v", a.Counters)
	}
	if a.Gauges["pr/penalty_max"] < 3 {
		t.Fatalf("penalty watermark = %d, want >= threshold", a.Gauges["pr/penalty_max"])
	}
	s := a.Series["penalty/node-3"]
	if len(s.Rounds) == 0 {
		t.Fatalf("penalty series empty")
	}
	var sawGrowth bool
	for i := range s.Values {
		if s.Values[i] > 0 {
			sawGrowth = true
		}
	}
	if !sawGrowth {
		t.Fatalf("penalty series never grew: %v", s.Values)
	}
}

// TestStepMetricsVoteClassification pins the per-column classification on
// an all-healthy steady state: N healthy votes per warm round, no ⊥, no
// ties, no disagreement.
func TestStepMetricsVoteClassification(t *testing.T) {
	reg := metrics.New()
	p := newMetricsProtocol(t, true)
	p.SetMetrics(NewStepMetrics(reg))
	n := p.Config().N
	healthy := NewSyndrome(n, Healthy)
	dms := make([]Syndrome, n+1)
	for j := 1; j <= n; j++ {
		dms[j] = healthy
	}
	rounds := 10
	for round := 0; round < rounds; round++ {
		if _, err := p.Step(RoundInput{Round: round, DMs: dms, Validity: healthy,
			Collision: func(int) Opinion { return Healthy }}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	warm := int64(rounds - p.Config().Lag())
	if got := snap.Counters["vote/healthy"]; got != warm*int64(n) {
		t.Fatalf("healthy votes = %d, want %d", got, warm*int64(n))
	}
	for _, k := range []string{"vote/faulty", "vote/bottom", "vote/tied", "matrix/disagreements"} {
		if snap.Counters[k] != 0 {
			t.Fatalf("%s = %d, want 0", k, snap.Counters[k])
		}
	}
}

// TestStepMetricsSurviveReset pins the reuse contract: Reset rewinds the
// protocol but keeps the attachment, so a reusable campaign cluster
// accumulates across repetitions without re-wiring.
func TestStepMetricsSurviveReset(t *testing.T) {
	reg := metrics.New()
	p := newMetricsProtocol(t, true)
	p.SetMetrics(NewStepMetrics(reg))
	metricsScenario(t, p)
	after1 := reg.Snapshot().Counters["protocol/steps"]
	p.Reset()
	if p.Metrics() == nil {
		t.Fatalf("Reset dropped the metrics attachment")
	}
	metricsScenario(t, p)
	if got := reg.Snapshot().Counters["protocol/steps"]; got != 2*after1 {
		t.Fatalf("steps after reset+rerun = %d, want %d", got, 2*after1)
	}
	p.Reset()
	p.SetMetrics(nil)
	metricsScenario(t, p) // detached: must not panic, must not count
	if got := reg.Snapshot().Counters["protocol/steps"]; got != 2*after1 {
		t.Fatalf("detached protocol still counted: %d", got)
	}
}

// TestTallyMatchesVote checks Vote == tallyVerdict(Tally) on packed and
// scalar matrices over a sweep of deterministic pseudo-random fills.
func TestTallyMatchesVote(t *testing.T) {
	for _, n := range []int{3, 4, 7} {
		for fill := 0; fill < 32; fill++ {
			packed, err := NewPackedMatrix(n)
			if err != nil {
				t.Fatal(err)
			}
			scalar := NewMatrix(n)
			state := uint64(fill)*2654435761 + 12345
			next := func() uint64 { state = state*6364136223846793005 + 1442695040888963407; return state }
			for i := 1; i <= n; i++ {
				if next()%4 == 0 {
					continue // ε row
				}
				row := NewSyndrome(n, Erased)
				var bitRow BitSyndrome
				for j := 1; j <= n; j++ {
					switch next() % 3 {
					case 0:
						row[j] = Healthy
						bitRow.Set(j, Healthy)
					case 1:
						row[j] = Faulty
						bitRow.Set(j, Faulty)
					}
				}
				if err := packed.SetBitRow(i, bitRow); err != nil {
					t.Fatal(err)
				}
				if err := scalar.SetRow(i, row); err != nil {
					t.Fatal(err)
				}
			}
			for _, m := range []*Matrix{packed, scalar} {
				for j := 1; j <= n; j++ {
					f, h := m.Tally(j)
					wantV, wantOK := tallyVerdict(f, h)
					gotV, gotOK := m.Vote(j)
					if gotV != wantV || gotOK != wantOK {
						t.Fatalf("n=%d fill=%d col=%d: Vote=(%v,%v), tallyVerdict(Tally)=(%v,%v)", n, fill, j, gotV, gotOK, wantV, wantOK)
					}
				}
			}
			// And the two representations must tally identically.
			for j := 1; j <= n; j++ {
				pf, ph := packed.Tally(j)
				sf, sh := scalar.Tally(j)
				if pf != sf || ph != sh {
					t.Fatalf("n=%d fill=%d col=%d: packed tally (%d,%d) != scalar (%d,%d)", n, fill, j, pf, ph, sf, sh)
				}
			}
			cons := NewSyndrome(n, Erased)
			for j := 1; j <= n; j++ {
				if v, ok := packed.Vote(j); ok {
					cons[j] = v
				}
			}
			if pd, sd := packed.DisagreementCount(cons), scalar.DisagreementCount(cons); pd != sd {
				t.Fatalf("n=%d fill=%d: packed disagreement %d != scalar %d", n, fill, pd, sd)
			}
		}
	}
}
