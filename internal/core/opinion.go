// Package core implements the paper's primary contribution: the tunable
// add-on on-line diagnostic protocol for time-triggered systems (Sec. 5) and
// the penalty/reward algorithm that filters transient faults (Alg. 2).
//
// The protocol is a pure, deterministic state machine: each node runs one
// diagnostic job per TDMA round (Alg. 1), fed with the validity bits and
// diagnostic-message payloads its communication controller observed, and
// produces the payload to disseminate plus — once per round after warm-up —
// the consistent health vector for the diagnosed round and the resulting
// isolation decisions. The package has no dependency on the simulation
// engines, which makes every piece directly unit- and property-testable.
package core

import (
	"fmt"
	"strings"
)

// Opinion is one node's view on the health of another node in a given round.
// The numeric values follow the paper's encoding: 0 means the message was
// not (correctly) received, 1 means it was.
type Opinion uint8

// Opinion values. Erased is the paper's ε: "the node was not able to receive
// the local syndrome at all", used only inside diagnostic matrices.
const (
	Faulty  Opinion = 0
	Healthy Opinion = 1
	Erased  Opinion = 2
)

// String returns "0", "1" or "e".
func (o Opinion) String() string {
	switch o {
	case Faulty:
		return "0"
	case Healthy:
		return "1"
	case Erased:
		return "e"
	default:
		return fmt.Sprintf("?%d", uint8(o))
	}
}

// Syndrome is a vector of opinions indexed by node ID. Syndromes are 1-based
// to match the paper's notation: index 0 is unused and always Erased.
type Syndrome []Opinion

// NewSyndrome returns a syndrome for n nodes with every entry set to fill.
func NewSyndrome(n int, fill Opinion) Syndrome {
	s := make(Syndrome, n+1)
	s[0] = Erased
	for j := 1; j <= n; j++ {
		s[j] = fill
	}
	return s
}

// N returns the number of nodes the syndrome covers.
func (s Syndrome) N() int {
	if len(s) == 0 {
		return 0
	}
	return len(s) - 1
}

// Clone returns an independent copy.
func (s Syndrome) Clone() Syndrome {
	if s == nil {
		return nil
	}
	return append(Syndrome(nil), s...)
}

// Equal reports entry-wise equality.
func (s Syndrome) Equal(t Syndrome) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders entries 1..N, e.g. "1100".
func (s Syndrome) String() string {
	var b strings.Builder
	for j := 1; j <= s.N(); j++ {
		b.WriteString(s[j].String())
	}
	return b.String()
}

// CountFaulty returns how many entries are Faulty.
func (s Syndrome) CountFaulty() int {
	c := 0
	for j := 1; j <= s.N(); j++ {
		if s[j] == Faulty {
			c++
		}
	}
	return c
}

// EncodedLen returns the wire size in bytes of a syndrome for n nodes: the
// paper's O(N)-bit diagnostic message (N bits, i.e. ⌈N/8⌉ bytes — 4 bits on
// the 4-node prototype).
func EncodedLen(n int) int { return (n + 7) / 8 }

// Encode packs the syndrome into its wire format, one bit per node
// (LSB-first within each byte), Healthy = 1. Erased entries never occur in a
// locally formed syndrome; they encode as 0 (faulty) defensively.
func (s Syndrome) Encode() []byte {
	out := make([]byte, EncodedLen(s.N()))
	s.EncodeInto(out)
	return out
}

// EncodeInto packs the syndrome into dst, the allocation-free form of Encode
// for hot paths that own a reusable destination. dst must be EncodedLen(N())
// bytes and is fully overwritten.
func (s Syndrome) EncodeInto(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	for j := 1; j <= s.N(); j++ {
		if s[j] == Healthy {
			dst[(j-1)/8] |= 1 << uint((j-1)%8)
		}
	}
}

// DecodeSyndrome unpacks a wire-format syndrome for n nodes. It returns an
// error when the payload length does not match: such a frame would be
// locally detectable (syntactically incorrect) and must be treated as ε by
// the caller.
func DecodeSyndrome(data []byte, n int) (Syndrome, error) {
	s := NewSyndrome(n, Faulty)
	if err := DecodeSyndromeInto(s, data); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSyndromeInto unpacks a wire-format syndrome into dst, which must
// already be sized for the system (dst.N() nodes). It is the allocation-free
// form of DecodeSyndrome for hot paths that own a reusable destination; dst
// is fully overwritten on success and left unspecified on error.
//
//ttdiag:noretain params
func DecodeSyndromeInto(dst Syndrome, data []byte) error {
	n := dst.N()
	if len(data) != EncodedLen(n) {
		return fmt.Errorf("core: syndrome payload is %d bytes, want %d for %d nodes", len(data), EncodedLen(n), n)
	}
	dst[0] = Erased
	for j := 1; j <= n; j++ {
		if data[(j-1)/8]&(1<<uint((j-1)%8)) != 0 {
			dst[j] = Healthy
		} else {
			dst[j] = Faulty
		}
	}
	return nil
}
