// Package stats provides the small summary-statistics toolkit the
// experiment harness uses: order statistics, mean/deviation, and duration
// summaries for Monte-Carlo batches.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary aggregates a sample of float64 observations.
type Summary struct {
	// N is the sample size.
	N int
	// Mean, StdDev are the sample mean and (population) standard deviation.
	Mean, StdDev float64
	// Min, P25, P50, P75, P95, Max are order statistics.
	Min, P25, P50, P75, P95, Max float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sqSum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	for _, x := range sorted {
		d := x - mean
		sqSum += d * d
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		StdDev: math.Sqrt(sqSum / float64(len(sorted))),
		Min:    sorted[0],
		P25:    Quantile(sorted, 0.25),
		P50:    Quantile(sorted, 0.50),
		P75:    Quantile(sorted, 0.75),
		P95:    Quantile(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DurationSummary is a Summary over time.Duration samples.
type DurationSummary struct {
	N                            int
	Mean, StdDev                 time.Duration
	Min, P25, P50, P75, P95, Max time.Duration
}

// SummarizeDurations computes a DurationSummary.
func SummarizeDurations(ds []time.Duration) DurationSummary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	s := Summarize(xs)
	return DurationSummary{
		N:      s.N,
		Mean:   time.Duration(s.Mean),
		StdDev: time.Duration(s.StdDev),
		Min:    time.Duration(s.Min),
		P25:    time.Duration(s.P25),
		P50:    time.Duration(s.P50),
		P75:    time.Duration(s.P75),
		P95:    time.Duration(s.P95),
		Max:    time.Duration(s.Max),
	}
}

// String renders the central statistics compactly.
func (d DurationSummary) String() string {
	if d.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v [%v, %v]", d.N, d.Mean, d.P50, d.P95, d.Min, d.Max)
}

// Wilson returns the Wilson score confidence interval for a binomial
// proportion: successes hits out of trials draws, at critical value z
// (1.96 for 95%). Unlike the normal approximation it stays inside [0, 1]
// and remains usable at the tiny per-level probabilities the rare-event
// splitting estimator works with. Zero trials yield the vacuous [0, 1].
func Wilson(successes, trials int64, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// RelativeErrorProduct returns the first-order relative standard error of a
// product of independent binomial estimates — the multilevel-splitting
// accuracy measure: for per-level estimates p̂_ℓ = k_ℓ/n_ℓ,
//
//	RE² ≈ Σ_ℓ (1-p̂_ℓ) / (p̂_ℓ · n_ℓ).
//
// The independence assumption makes it first-order: fixed-effort splitting
// levels share trajectories through their entry states, so the true error
// carries (positive) cross-level terms this ignores. A level with zero
// successes (or zero trials) yields +Inf — the product estimate is zero and
// its relative error undefined. successes and trials must be parallel
// slices.
func RelativeErrorProduct(successes, trials []int64) float64 {
	if len(successes) != len(trials) {
		return math.NaN()
	}
	var sum float64
	for i := range successes {
		k, n := successes[i], trials[i]
		if k <= 0 || n <= 0 {
			return math.Inf(1)
		}
		p := float64(k) / float64(n)
		sum += (1 - p) / (p * float64(n))
	}
	return math.Sqrt(sum)
}
