package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 2.5 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 2.5 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if want := math.Sqrt(1.25); math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.75, 40},
		{0.1, 14}, {-0.5, 10}, {1.5, 50},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v", got)
	}
}

// Property: order statistics are ordered and bounded by the sample range.
func TestSummaryOrderingProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		ordered := s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 &&
			s.P75 <= s.P95 && s.P95 <= s.Max
		bounded := s.Mean >= s.Min && s.Mean <= s.Max && s.StdDev >= 0
		return ordered && bounded
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeDurations(t *testing.T) {
	d := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if d.N != 2 || d.Mean != 2*time.Second || d.Min != time.Second || d.Max != 3*time.Second {
		t.Fatalf("summary = %+v", d)
	}
	str := d.String()
	for _, want := range []string{"n=2", "mean=2s", "p50=2s"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	if got := SummarizeDurations(nil).String(); got != "n=0" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestWilson(t *testing.T) {
	// Reference values computed from the closed form.
	lo, hi := Wilson(5, 10, 1.96)
	if math.Abs(lo-0.2366) > 1e-3 || math.Abs(hi-0.7634) > 1e-3 {
		t.Fatalf("Wilson(5,10) = [%.4f, %.4f], want ~[0.2366, 0.7634]", lo, hi)
	}
	// Extremes stay inside [0,1] and are asymmetric around p-hat.
	lo, hi = Wilson(0, 100, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.05 {
		t.Fatalf("Wilson(0,100) = [%.4f, %.4f], want [0, ~0.037]", lo, hi)
	}
	lo, hi = Wilson(100, 100, 1.96)
	if hi < 1-1e-9 || hi > 1 || lo < 0.95 {
		t.Fatalf("Wilson(100,100) = [%.4f, %.4f], want [~0.963, 1]", lo, hi)
	}
	if lo, hi = Wilson(3, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("Wilson with zero trials must be vacuous, got [%v, %v]", lo, hi)
	}
}

func TestRelativeErrorProduct(t *testing.T) {
	// One level, p = 0.5, n = 1000: RE = sqrt(0.5/(0.5*1000)) = sqrt(1/1000).
	re := RelativeErrorProduct([]int64{500}, []int64{1000})
	if want := math.Sqrt(1.0 / 1000); math.Abs(re-want) > 1e-12 {
		t.Fatalf("RE = %v, want %v", re, want)
	}
	// Terms add in quadrature across levels.
	re2 := RelativeErrorProduct([]int64{500, 500}, []int64{1000, 1000})
	if want := math.Sqrt(2.0 / 1000); math.Abs(re2-want) > 1e-12 {
		t.Fatalf("two-level RE = %v, want %v", re2, want)
	}
	if re := RelativeErrorProduct([]int64{0}, []int64{1000}); !math.IsInf(re, 1) {
		t.Fatalf("zero-success level must yield +Inf, got %v", re)
	}
	if re := RelativeErrorProduct([]int64{1}, []int64{1000, 5}); !math.IsNaN(re) {
		t.Fatalf("mismatched slices must yield NaN, got %v", re)
	}
}
