package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

// batchedIDs are the campaigns with a lane-packed batched twin.
var batchedIDs = []string{"sec8-bursts", "sec8-pr", "sec8-malicious"}

// runCampaign renders one experiment and collects its metrics report.
func runCampaign(t *testing.T, id string, p Params) (string, metrics.Snapshot) {
	t.Helper()
	rep := metrics.NewReport("test", p.Seed, p.Runs)
	var out bytes.Buffer
	p.Out = &out
	p.Metrics = rep
	if err := Run(id, p); err != nil {
		t.Fatal(err)
	}
	return out.String(), rep.Snapshot(id)
}

// stripBatchInstruments removes the batch/* occupancy instruments, which
// exist only on the batched path, so the remaining snapshot can be compared
// against the per-run reference.
func stripBatchInstruments(s metrics.Snapshot) metrics.Snapshot {
	counters := make(map[string]int64, len(s.Counters))
	for k, v := range s.Counters {
		if !strings.HasPrefix(k, "batch/") {
			counters[k] = v
		}
	}
	gauges := make(map[string]int64, len(s.Gauges))
	for k, v := range s.Gauges {
		if !strings.HasPrefix(k, "batch/") {
			gauges[k] = v
		}
	}
	s.Counters = counters
	s.Gauges = gauges
	return s
}

// TestBatchedCampaignEquivalence pins the tentpole's end-to-end contract:
// for every batchable Sec. 8 campaign, the rendered artifact is
// byte-identical and the metrics report identical (modulo the batch-only
// occupancy instruments) between the per-run and the lane-packed path —
// at a run count with a full and a ragged gang (20 = 16 + 4) and at a
// run count below one gang (5).
func TestBatchedCampaignEquivalence(t *testing.T) {
	for _, id := range batchedIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			for _, runs := range []int{5, 20} {
				perRun, perRunSnap := runCampaign(t, id, Params{Seed: 7, Runs: runs, Workers: 1})
				batched, batchedSnap := runCampaign(t, id, Params{Seed: 7, Runs: runs, Workers: 1, Batched: true})
				if perRun != batched {
					t.Fatalf("runs=%d: rendered output differs:\n--- per-run ---\n%s\n--- batched ---\n%s", runs, perRun, batched)
				}
				if got := stripBatchInstruments(batchedSnap); !reflect.DeepEqual(got, perRunSnap) {
					gj, _ := json.Marshal(got)
					wj, _ := json.Marshal(perRunSnap)
					t.Fatalf("runs=%d: metrics diverge beyond batch/* instruments:\n--- batched ---\n%s\n--- per-run ---\n%s", runs, gj, wj)
				}
				// The occupancy instruments must actually be there on the
				// batched path: every gang accounts its lanes, and a full
				// 16-lane gang of the 4-node cluster fills the word.
				if batchedSnap.Counters["batch/lanes"] == 0 || batchedSnap.Counters["batch/gangs"] == 0 {
					t.Fatalf("runs=%d: missing batch occupancy counters: %v", runs, batchedSnap.Counters)
				}
				wantOcc := int64(100) // 16 lanes × 4 nodes of 64 bits
				if runs < 16 {
					wantOcc = int64(runs * 4 * 100 / 64)
				}
				if got := batchedSnap.Gauges["batch/lane_occupancy_pct"]; got != wantOcc {
					t.Fatalf("runs=%d: lane occupancy %d%%, want %d%%", runs, got, wantOcc)
				}
			}
		})
	}
}

// TestBatchedWorkerCountInvariance is the batched-path determinism gate,
// run under -race -cpu=1,4 by scripts/check.sh and CI: rendered rows and
// metrics report must be byte-identical whether the gangs run serially or
// on eight workers.
func TestBatchedWorkerCountInvariance(t *testing.T) {
	for _, id := range batchedIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serialOut, serialSnap := runCampaign(t, id, Params{Seed: 7, Runs: 40, Workers: 1, Batched: true})
			parallelOut, parallelSnap := runCampaign(t, id, Params{Seed: 7, Runs: 40, Workers: 8, Batched: true})
			if serialOut != parallelOut {
				t.Fatalf("rendered output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- 8 workers ---\n%s", serialOut, parallelOut)
			}
			if !reflect.DeepEqual(serialSnap, parallelSnap) {
				t.Fatal("metrics report differs between workers=1 and workers=8")
			}
		})
	}
}

// TestBatchedTraceFallsBackToPerRun: a trace sink forces the per-run path
// even with Batched set (tracing is inherently per-repetition), so the
// stream still carries one boundary note per run.
func TestBatchedTraceFallsBackToPerRun(t *testing.T) {
	var rec trace.Recorder
	if err := Run("sec8-pr", Params{Seed: 7, Runs: 3, Workers: 1, Batched: true, Trace: &rec}); err != nil {
		t.Fatal(err)
	}
	if notes := rec.Filter(trace.KindNote); len(notes) != 3 {
		t.Fatalf("got %d run-boundary notes, want 3", len(notes))
	}
}

// TestBatchedTraceEquivalence is the batched-path causal-event gate, run
// under -race -cpu=1,4 by scripts/check.sh and CI: the event stream a
// Batched campaign emits (through its per-run fallback) must be identical,
// event for event, to the stream of the plain per-run campaign — same
// accusations, same penalty trajectories, same isolations, in the same
// order.
func TestBatchedTraceEquivalence(t *testing.T) {
	for _, id := range batchedIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var perRun, batched trace.Recorder
			if err := Run(id, Params{Seed: 7, Runs: 5, Workers: 1, Trace: &perRun}); err != nil {
				t.Fatal(err)
			}
			if err := Run(id, Params{Seed: 7, Runs: 5, Workers: 1, Batched: true, Trace: &batched}); err != nil {
				t.Fatal(err)
			}
			if len(perRun.Events()) == 0 {
				t.Fatal("per-run campaign emitted no trace events")
			}
			if i := trace.FirstDivergence(perRun.Events(), batched.Events()); i >= 0 {
				t.Fatalf("trace streams diverge at event %d", i)
			}
		})
	}
}

// TestScaleResilienceBatchedEquivalence pins the wide scale-resilience rows
// (N = 32 and N = 64, see scale_wide.go): the rendered sweep is
// byte-identical whether the a = 0 wide cases run per-run or through their
// lane-packed batched twin (N = 32 gangs two repetitions per word; N = 64
// has a single lane and stays per-run on both sides).
func TestScaleResilienceBatchedEquivalence(t *testing.T) {
	for _, runs := range []int{3, 5} {
		perRun, _ := runCampaign(t, "scale-resilience", Params{Seed: 7, Runs: runs, Workers: 1})
		batched, _ := runCampaign(t, "scale-resilience", Params{Seed: 7, Runs: runs, Workers: 1, Batched: true})
		if perRun != batched {
			t.Fatalf("runs=%d: rendered output differs:\n--- per-run ---\n%s\n--- batched ---\n%s", runs, perRun, batched)
		}
	}
}
