package experiments

import (
	"fmt"

	"ttdiag/internal/campaign"
	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

// workerSet returns a fresh per-campaign WorkerSet when metrics collection
// is on, nil otherwise. A nil WorkerSet hands every worker a nil Registry,
// which keeps the campaign on the zero-overhead metrics-off path.
func (p Params) workerSet() *metrics.WorkerSet {
	if p.Metrics == nil {
		return nil
	}
	return metrics.NewWorkerSet()
}

// campaignOpts translates the experiment parameters into campaign options:
// worker bound plus the optional progress callback.
func (p Params) campaignOpts() campaign.Options {
	return campaign.Options{Workers: p.Workers, OnRunDone: p.Progress}
}

// recordMetrics merges the campaign's per-worker registries and files the
// aggregate under the experiment ID. The merge is where worker-count
// invariance is realised, so it runs even when the set has a single
// registry.
func (p Params) recordMetrics(id string, ws *metrics.WorkerSet) error {
	if p.Metrics == nil {
		return nil
	}
	snap, err := ws.Merged()
	if err != nil {
		return fmt.Errorf("experiments: %s metrics: %w", id, err)
	}
	p.Metrics.Set(id, snap)
	return nil
}

// traceRun emits the KindNote boundary event that demarcates one campaign
// repetition in the trace stream. Rounds restart from zero at every
// repetition (the reusable clusters rewind their engines), so the boundary
// notes are what keeps a multi-run JSONL stream parseable per run.
func (p Params) traceRun(class string, run int) {
	if p.Trace == nil {
		return
	}
	p.Trace.Record(trace.Event{
		Kind:   trace.KindNote,
		Detail: fmt.Sprintf("%s run %d", class, run),
	})
}
