package experiments

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/recovery"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tuning"
)

func init() {
	register(Experiment{
		ID:    "sweep-threshold",
		Title: "Tunability: diagnostic latency vs availability across penalty thresholds",
		Ref:   "Sec. 9 (the 'tunable' in the title)",
		Run:   runSweepThreshold,
	})
	register(Experiment{
		ID:    "ext-reintegration",
		Title: "Reintegration extension: downtime under a transient storm",
		Ref:   "Sec. 9 (proposed extension)",
		Run:   runReintegration,
	})
}

// runSweepThreshold quantifies the trade-off the penalty threshold tunes:
// raising P delays the isolation of a genuinely unhealthy node (diagnostic
// latency, measured against a permanent crash) but buys availability under
// abnormal transients (time until a healthy node is wrongly isolated by the
// blinking-light scenario). The two columns move together — exactly the
// dial the paper's title refers to.
func runSweepThreshold(p Params) error {
	t := newTable(p.Out)
	t.row("P", "latency: crash -> isolation", "availability: survives blinking light for")
	t.rule(3)
	for _, threshold := range []int64{0, 5, 17, 50, 197, 500} {
		prCfg := core.PRConfig{
			PenaltyThreshold: threshold,
			RewardThreshold:  tuning.PaperRewardThreshold,
		}
		crashLatency, err := timeToIsolationUnder(prCfg, func(eng *sim.Engine) {
			eng.Bus().AddDisturbance(fault.Crash(2, 0))
		}, time.Second+time.Duration(threshold)*10*sim.DefaultRoundLen)
		if err != nil {
			return err
		}
		storm, err := timeToIsolationUnder(prCfg, func(eng *sim.Engine) {
			eng.Bus().AddDisturbance(fault.BlinkingLight().Train(0))
		}, fault.BlinkingLight().Span()+time.Second)
		if err != nil {
			return err
		}
		t.row(strconv.FormatInt(threshold, 10), ms(crashLatency), ms(storm))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nraising P trades detection latency for transient-fault availability; the paper's")
	fmt.Fprintln(p.Out, "criticality levels buy back latency per class without lowering the shared P")
	return nil
}

// timeToIsolationUnder runs a 4-node cluster with the given fault setup and
// returns the time of the first isolation of node 2 (-1 if none within the
// horizon).
func timeToIsolationUnder(prCfg core.PRConfig, arm func(*sim.Engine), horizon time.Duration) (time.Duration, error) {
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: []int{2, 0, 3, 1}, PR: prCfg,
	})
	if err != nil {
		return 0, err
	}
	col := sim.NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	arm(eng)
	maxRounds := int(horizon/eng.Schedule().RoundLen()) + 8
	for r := 0; r < maxRounds; r++ {
		if err := eng.RunRound(); err != nil {
			return 0, err
		}
		if col.FirstIsolation(2) >= 0 {
			break
		}
	}
	return col.FirstIsolationTime(2, eng.Schedule()), nil
}

// runReintegration measures the availability gain of the Sec. 9 extension:
// under the lightning-bolt storm with the tuned aerospace thresholds, a node
// isolated by the storm stays down forever in the paper's baseline, but
// returns to service after a clean observation window with the extension.
func runReintegration(p Params) error {
	res, err := tuning.Derive(tuning.Aerospace())
	if err != nil {
		return err
	}
	scen := fault.LightningBolt()
	horizon := scen.Span() + 5*time.Second

	measure := func(reint int64) (downFor time.Duration, backUp bool, err error) {
		prCfg := res.PRConfig(4)
		prCfg.ReintegrationThreshold = reint
		eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
			Ls: []int{2, 0, 3, 1}, PR: prCfg,
		})
		if err != nil {
			return 0, false, err
		}
		col := sim.NewCollector()
		for id := 1; id <= 4; id++ {
			col.HookDiag(id, runners[id])
		}
		eng.Bus().AddDisturbance(scen.Train(0))
		maxRounds := int(horizon / eng.Schedule().RoundLen())
		if err := eng.RunRounds(maxRounds); err != nil {
			return 0, false, err
		}
		isoAt := col.FirstIsolationTime(1, eng.Schedule())
		if isoAt < 0 {
			return 0, true, nil
		}
		for _, re := range col.Reintegrations {
			if re.Node == 1 && re.Observer == 1 {
				return eng.Schedule().RoundStart(re.Round) - isoAt, true, nil
			}
		}
		return horizon - isoAt, false, nil
	}

	t := newTable(p.Out)
	t.row("policy", "downtime of node 1", "back in service")
	t.rule(3)
	down, up, err := measure(0)
	if err != nil {
		return err
	}
	t.row("paper baseline (no reintegration)", ms(down), strconv.FormatBool(up))
	// One second of observed fault-free behaviour reintegrates.
	down, up, err = measure(int64(time.Second / sim.DefaultRoundLen))
	if err != nil {
		return err
	}
	t.row("extension (reintegrate after 1s clean)", ms(down), strconv.FormatBool(up))
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nthe storm costs permanent capacity without the extension; with it, only ~seconds")
	return nil
}

func init() {
	register(Experiment{
		ID:    "healthy-isolation",
		Title: "Probability that a healthy node is ever isolated under normal conditions",
		Ref:   "Sec. 9 (\"negligible\" claim, quantified)",
		Run:   runHealthyIsolation,
	})
}

// runHealthyIsolation quantifies the paper's claim that, once R is tuned,
// "the probability of isolation of a healthy node is negligible": isolating
// a healthy node requires P *consecutive correlated* external transients,
// each arriving within the R×T window of its predecessor. The analytic
// probability of one correlation is p = 1 - exp(-rate × R×T); the chain
// needs P of them, so the per-fault isolation probability is p^P. A
// Monte-Carlo run over simulated Poisson transients cross-checks that no
// isolation ever occurs at realistic rates.
func runHealthyIsolation(p Params) error {
	t := newTable(p.Out)
	t.row("domain", "P", "rate", "p (one correlation)", "p^P (isolation per fault)")
	t.rule(5)
	for _, spec := range []tuning.DomainSpec{tuning.Automotive(), tuning.Aerospace()} {
		res, err := tuning.Derive(spec)
		if err != nil {
			return err
		}
		for _, rate := range []float64{1.0 / 3600, 1.0 / 252000} {
			pc := tuning.CorrelationProbability(rate, res.R, res.RoundLen)
			chain := math.Pow(pc, float64(res.P))
			t.row(res.Domain, strconv.FormatInt(res.P, 10),
				fmt.Sprintf("%.3g/s", rate), fmt.Sprintf("%.4f", pc), fmt.Sprintf("%.3g", chain))
		}
	}
	if err := t.flush(); err != nil {
		return err
	}

	// Monte-Carlo cross-check: simulate ten minutes of bus time with
	// Poisson transients at one fault per minute (an extremely harsh
	// environment, ~5000x a realistic rate) under the aerospace tuning —
	// still no healthy node is isolated.
	res, err := tuning.Derive(tuning.Aerospace())
	if err != nil {
		return err
	}
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: []int{2, 0, 3, 1}, PR: res.PRConfig(4),
	})
	if err != nil {
		return err
	}
	col := sim.NewCollector()
	for id := 1; id <= 4; id++ {
		col.HookDiag(id, runners[id])
	}
	horizon := 10 * time.Minute
	eng.Bus().AddDisturbance(fault.PoissonTransients(
		rng.NewSource(p.Seed).Stream("healthy"), 1.0/60, eng.Schedule().SlotLen(), horizon))
	rounds := int(horizon / eng.Schedule().RoundLen())
	if err := eng.RunRounds(rounds); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\nMonte-Carlo: %v of bus time at 1 transient/min (aero tuning, P=%d): %d isolations\n",
		horizon, res.P, len(col.Isolations))
	return nil
}

func init() {
	register(Experiment{
		ID:    "fdir-loop",
		Title: "Closed FDIR loop: diagnose, isolate, reconfigure, reintegrate",
		Ref:   "Sec. 1 (recovery actions) & Sec. 9 (extension)",
		Run:   runFDIRLoop,
	})
}

// runFDIRLoop drives the full fault-detection/isolation/reconfiguration
// cycle: node 3 (steer-by-wire primary) suffers a transient storm, the p/r
// algorithm isolates it, every node's recovery manager switches to the same
// degraded mode in the same round, and after reintegration the nominal mode
// returns — all without any agreement protocol beyond the diagnosis itself.
func runFDIRLoop(p Params) error {
	plan, err := recovery.NewPlan(4, []recovery.Job{
		{Name: "steer", Criticality: 40, Hosts: []int{3, 1}},
		{Name: "brake", Criticality: 40, Hosts: []int{2, 4}},
		{Name: "doors", Criticality: 1, Hosts: []int{4}, Degradable: true},
	})
	if err != nil {
		return err
	}
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: []int{2, 0, 3, 1},
		PR: core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 10, ReintegrationThreshold: 12},
	})
	if err != nil {
		return err
	}
	manager := recovery.NewManager(plan)
	type change struct {
		round int
		desc  string
	}
	var changes []change
	runners[1].OnOutput = func(out core.RoundOutput) {
		changed, err := manager.Observe(out.Active)
		if err == nil && changed {
			changes = append(changes, change{round: out.Round, desc: manager.Describe()})
		}
	}
	var bursts []fault.Burst
	for r := 8; r < 14; r++ {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	if err := eng.RunRounds(40); err != nil {
		return err
	}
	t := newTable(p.Out)
	t.row("round", "time", "operating mode at node 1 (identical everywhere)")
	t.rule(3)
	for _, c := range changes {
		t.row(strconv.Itoa(c.round), ms(eng.Schedule().RoundStart(c.round)), c.desc)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\ndiagnose -> isolate -> reconfigure -> observe -> reintegrate -> nominal mode")
	return nil
}
