package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs")

// TestGoldenOutputs locks every experiment's rendered artifact against a
// golden file: the whole pipeline is deterministic for a fixed seed, so any
// behavioural change in the protocol, the injectors or the tuning
// procedures shows up as a diff here. Regenerate with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenOutputs(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "overhead" {
				t.Skip("CPU numbers are machine-dependent")
			}
			runs := 3
			if e.ID == "table4" {
				runs = 1 // 25 simulated seconds per automotive NSR repetition
			}
			var buf bytes.Buffer
			if err := Run(e.ID, Params{Seed: 7, Runs: runs, Out: &buf}); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", e.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, buf.Bytes(), want)
			}
		})
	}
}
