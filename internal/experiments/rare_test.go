package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// rareTestParams keeps the determinism gate fast: a shallow level stack and
// a few hundred trials per level still exercise cloning, restoring and the
// cross-level entry handoff.
func rareTestParams() Params {
	return Params{Seed: 7, SplitEffort: 200, SplitLevels: 4}
}

// TestRareEventCampaignWorkerCountInvariance is the experiment-level
// splitting determinism gate, run under -race -cpu=1,4 by scripts/check.sh
// and CI: the rare-event artifact and its metrics report must be
// byte-identical whether the trials run serially or on four workers.
func TestRareEventCampaignWorkerCountInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p1, p4 := rareTestParams(), rareTestParams()
	p1.Workers = 1
	p4.Workers = 4
	serialOut, serialSnap := runCampaign(t, "rare-event", p1)
	parallelOut, parallelSnap := runCampaign(t, "rare-event", p4)
	if serialOut != parallelOut {
		t.Fatalf("rendered output differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- 4 workers ---\n%s", serialOut, parallelOut)
	}
	if !reflect.DeepEqual(serialSnap, parallelSnap) {
		t.Fatal("metrics report differs between workers=1 and workers=4")
	}
	// The checkpoint instruments must actually be present in the report.
	for _, name := range []string{
		"rare/wrong-isolation/rounds",
		"rare/wrong-isolation/checkpoint_captures",
		"rare/wrong-isolation/checkpoint_restores",
		"rare/second-transient/rounds",
	} {
		if serialSnap.Counters[name] == 0 {
			t.Errorf("counter %s missing or zero in the rare-event metrics report: %v", name, serialSnap.Counters)
		}
	}
	if _, ok := serialSnap.Histograms["rare/wrong-isolation/level_occupancy"]; !ok {
		t.Error("level-occupancy histogram missing from the rare-event metrics report")
	}
}

// TestRareEventLevelOverride checks the -splitting/-levels overrides shape
// the estimation: 3 levels mean penalty threshold 2 and a three-row
// wrong-isolation table.
func TestRareEventLevelOverride(t *testing.T) {
	p := rareTestParams()
	p.Workers = 1
	p.SplitLevels = 3
	out, _ := runCampaign(t, "rare-event", p)
	if !strings.Contains(out, "penalty threshold 2") {
		t.Fatalf("3-level run does not report penalty threshold 2:\n%s", out)
	}
	if !strings.Contains(out, "200 trials/level") {
		t.Fatalf("effort override not honoured:\n%s", out)
	}
	if !strings.Contains(out, "penalty reaches 3") {
		t.Fatalf("wrong-isolation class not re-levelled:\n%s", out)
	}
}
