// Lane-packed batched execution of the Sec. 8 campaigns: gangs of
// ⌊64/N⌋ = 16 repetitions advance together through one
// sim.BatchDiagCluster (Params.Batched). Each campaign function here is the
// batched twin of its per-run counterpart in sec8.go and must stay
// draw-identical to it: same named rng streams per absolute run index, same
// disturbances, same horizons, same audits — the per-run path remains the
// executable reference and TestBatchedCampaignEquivalence pins the rendered
// rows and metrics byte-exact against it.
package experiments

import (
	"fmt"

	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

// batchDiagWorker is the reusable per-worker state of a batched diagnostic
// campaign: one lane-packed cluster and one stream pool, reset per gang,
// plus the worker's telemetry instruments when the campaign collects
// metrics (reg is nil otherwise and every metrics hook is a no-op).
type batchDiagWorker struct {
	cl      *sim.BatchDiagCluster
	rng     *rng.Pool
	reg     *metrics.Registry
	sm      *core.StepMetrics
	sm0     *core.StepMetrics
	sys     *sim.RunMetrics
	class   string
	scratch []int // per-gang per-lane parameter stash

	// Lane-occupancy instruments (batched path only): how full the 64-bit
	// planes ran. lanes/gangs are totals; occupancy is the high watermark
	// of lanes·N as a percentage of the 64-bit word.
	lanes     *metrics.Counter
	gangs     *metrics.Counter
	occupancy *metrics.Gauge
}

func newBatchDiagWorker(ws *metrics.WorkerSet, class string, src *rng.Source, cfg sim.ClusterConfig) func() (*batchDiagWorker, error) {
	return func() (*batchDiagWorker, error) {
		cl, err := sim.NewBatchDiagCluster(cfg)
		if err != nil {
			return nil, err
		}
		w := &batchDiagWorker{cl: cl, rng: src.NewPool(), class: class}
		if reg := ws.Worker(); reg != nil {
			w.reg = reg
			w.sm = core.NewStepMetrics(reg)
			w.sys = sim.NewRunMetrics(reg)
			w.lanes = reg.Counter("batch/lanes")
			w.gangs = reg.Counter("batch/gangs")
			w.occupancy = reg.Gauge("batch/lane_occupancy_pct")
		}
		return w, nil
	}
}

// begin readies the worker for the gang covering runs base..base+width-1.
// With metrics on, every node's protocol carries the worker's shared
// instruments in every live lane; the lane of run 0 additionally records
// the penalty trajectories on node 1, exactly like the per-run path.
func (w *batchDiagWorker) begin(base, width int) error {
	if err := w.cl.ResetBatch(width); err != nil {
		return err
	}
	w.rng.Recycle()
	n := w.cl.Config().N
	if w.sm != nil {
		for id := 1; id <= n; id++ {
			p := w.cl.Proto(id)
			for lane := 0; lane < width; lane++ {
				p.SetLaneMetrics(lane, w.sm)
			}
		}
		if base == 0 {
			w.cl.Proto(1).SetLaneMetrics(0, w.run0Metrics())
		}
	}
	w.lanes.Add(int64(width))
	w.gangs.Inc()
	w.occupancy.Observe(int64(width * n * 100 / 64))
	w.scratch = w.scratch[:0]
	return nil
}

// run0Metrics builds (once) the StepMetrics variant that also appends the
// per-node penalty trajectories (see diagWorker.run0Metrics).
func (w *batchDiagWorker) run0Metrics() *core.StepMetrics {
	if w.sm0 == nil {
		sm := *w.sm
		n := w.cl.Config().N
		sm.PenaltySeries = make([]*metrics.Series, n+1)
		for j := 1; j <= n; j++ {
			sm.PenaltySeries[j] = w.reg.Series(fmt.Sprintf("%s/penalty/node%d", w.class, j), 256)
		}
		w.sm0 = &sm
	}
	return w.sm0
}

// observeLane folds one completed lane's system-level ground truth into the
// worker's registry; a no-op with metrics off.
func (w *batchDiagWorker) observeLane(lane int) {
	if w.sys == nil {
		return
	}
	w.sys.ObserveTruth(w.cl.LaneTruth(lane))
	w.sys.ObserveIsolationLatency(w.cl.LaneTruth(lane), w.cl.LaneCollector(lane))
}

// burstCampaignBatched is the lane-packed twin of BurstCampaign.
func burstCampaignBatched(p Params) ([]CampaignRow, error) {
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	gang := core.BatchLanes(4)
	var rows []CampaignRow
	for _, slots := range []int{1, 2, 8} {
		for startSlot := 1; startSlot <= 4; startSlot++ {
			slots, startSlot := slots, startSlot
			class := fmt.Sprintf("sec8-bursts/%d-from-%d", slots, startSlot)
			verdicts, err := campaign.RunBatchedWith(p.campaignOpts(), p.Runs, gang,
				newBatchDiagWorker(ws, class, src, sim.ClusterConfig{Ls: prototypeLs}),
				func(w *batchDiagWorker, base, width int, out []runVerdict) error {
					if err := w.begin(base, width); err != nil {
						return err
					}
					sched := w.cl.Schedule()
					for lane := 0; lane < width; lane++ {
						stream := w.rng.Stream(fmt.Sprintf("sec8-bursts/%d-from-%d/run-%d", slots, startSlot, base+lane))
						injectRound := 5 + stream.Intn(6)
						w.cl.AddLaneDisturbance(lane, fault.NewTrain(
							fault.SlotBurst(sched, injectRound, startSlot, slots)))
						w.cl.SetLaneHorizon(lane, injectRound+10)
						w.scratch = append(w.scratch, injectRound)
					}
					if err := w.cl.Run(); err != nil {
						return err
					}
					for lane := 0; lane < width; lane++ {
						w.observeLane(lane)
						err := sim.AuditTheorem1(w.cl.LaneTruth(lane), w.cl.LaneCollector(lane),
							[]int{1, 2, 3, 4}, 4, w.scratch[lane]+6)
						if err != nil {
							out[lane] = runVerdict{failure: err.Error()}
						} else {
							out[lane] = runVerdict{pass: true}
						}
					}
					return nil
				})
			if err != nil {
				return nil, err
			}
			rows = append(rows, foldRow(
				fmt.Sprintf("burst %d slot(s) from slot %d", slots, startSlot), verdicts))
		}
	}
	if err := p.recordMetrics("sec8-bursts", ws); err != nil {
		return nil, err
	}
	return rows, nil
}

// prCampaignBatched is the lane-packed twin of PRCampaign. The final
// penalty counters a per-run repetition ends with are read from the
// cluster's at-horizon capture, since longer lanes of the gang keep
// stepping past this lane's horizon.
func prCampaignBatched(p Params) ([]CampaignRow, error) {
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	gang := core.BatchLanes(4)
	verdicts, err := campaign.RunBatchedWith(p.campaignOpts(), p.Runs, gang,
		newBatchDiagWorker(ws, "sec8-pr", src, sim.ClusterConfig{
			Ls: prototypeLs,
			PR: core.PRConfig{PenaltyThreshold: 1 << 30, RewardThreshold: 100},
		}),
		func(w *batchDiagWorker, base, width int, out []runVerdict) error {
			if err := w.begin(base, width); err != nil {
				return err
			}
			sched := w.cl.Schedule()
			for lane := 0; lane < width; lane++ {
				stream := w.rng.Stream(fmt.Sprintf("sec8-pr/run-%d", base+lane))
				startRound := 6 + stream.Intn(4)
				target := 1 + stream.Intn(4)
				var bursts []fault.Burst
				for r := startRound; r < startRound+20; r += 2 {
					bursts = append(bursts, fault.SlotBurst(sched, r, target, 1))
				}
				w.cl.AddLaneDisturbance(lane, fault.NewTrain(bursts...))
				w.cl.SetLaneHorizon(lane, startRound+30)
				w.scratch = append(w.scratch, target)
			}
			if err := w.cl.Run(); err != nil {
				return err
			}
			for lane := 0; lane < width; lane++ {
				w.observeLane(lane)
				v := runVerdict{pass: true}
				for id := 1; id <= 4; id++ {
					if pen := w.cl.LaneFinalPenalty(lane, id, w.scratch[lane]); pen != 10 {
						if v.pass {
							v = runVerdict{failure: fmt.Sprintf("node %d: penalty %d, want 10", id, pen)}
						}
					}
				}
				out[lane] = v
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if err := p.recordMetrics("sec8-pr", ws); err != nil {
		return nil, err
	}
	return []CampaignRow{foldRow("fault every 2nd round for 20 rounds", verdicts)}, nil
}

// maliciousCampaignBatched is the lane-packed twin of MaliciousCampaign
// (fault.MaliciousSyndrome is receiver-uniform: every receiver observes the
// same corrupted syndrome, drawn once per round and slot).
func maliciousCampaignBatched(p Params) ([]CampaignRow, error) {
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	gang := core.BatchLanes(4)
	var rows []CampaignRow
	for mal := 1; mal <= 4; mal++ {
		mal := mal
		class := fmt.Sprintf("sec8-malicious/node-%d", mal)
		var obedient []int
		for id := 1; id <= 4; id++ {
			if id != mal {
				obedient = append(obedient, id)
			}
		}
		verdicts, err := campaign.RunBatchedWith(p.campaignOpts(), p.Runs, gang,
			newBatchDiagWorker(ws, class, src, sim.ClusterConfig{Ls: prototypeLs}),
			func(w *batchDiagWorker, base, width int, out []runVerdict) error {
				if err := w.begin(base, width); err != nil {
					return err
				}
				for lane := 0; lane < width; lane++ {
					w.cl.AddLaneDisturbance(lane, fault.NewMaliciousSyndrome(
						tdma.NodeID(mal), w.rng.Stream(fmt.Sprintf("mal-%d-%d", mal, base+lane))))
					w.cl.SetLaneHorizon(lane, 24)
				}
				if err := w.cl.Run(); err != nil {
					return err
				}
				for lane := 0; lane < width; lane++ {
					w.observeLane(lane)
					col := w.cl.LaneCollector(lane)
					err := sim.AuditTheorem1(w.cl.LaneTruth(lane), col, obedient, 4, 20)
					if err == nil {
						for d := 4; d < 20 && err == nil; d++ {
							if hv := col.ConsHV[d][obedient[0]]; hv.CountFaulty() != 0 {
								err = fmt.Errorf("round %d: conviction %v", d, hv)
							}
						}
					}
					if err != nil {
						out[lane] = runVerdict{failure: err.Error()}
					} else {
						out[lane] = runVerdict{pass: true}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, foldRow(fmt.Sprintf("malicious node %d", mal), verdicts))
	}
	if err := p.recordMetrics("sec8-malicious", ws); err != nil {
		return nil, err
	}
	return rows, nil
}
