// Wide scale-resilience campaigns: the N = 32 and N = 64 rows of the
// scale-resilience sweep, past the N <= 16 cap the experiment originally
// had. Wide cases pin one internal schedule per fault-mix case (drawn from a
// case-named stream) instead of one per run: the lane-packed batched twin
// shares a single schedule across its whole gang, and a fixed case schedule
// is what keeps the per-run and batched paths draw-identical — the same
// contract the Sec. 8 campaigns establish (TestScaleResilienceBatchedEquivalence
// pins it here).
package experiments

import (
	"fmt"
	"time"

	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

// wideFaultRound is the injection round of every wide resilience case.
const wideFaultRound = 8

// resilienceDisturbances builds the coincident-fault mix of one repetition
// in role order: s malicious syndrome sources (each with its own lazily
// drawn payload stream), then b single-slot benign bursts in the fault
// round, then a SOS episodes. The mix is identical on the per-run and the
// lane-packed path because every stream is named by runScope and node.
func resilienceDisturbances(sched *tdma.Schedule, pool *rng.Pool, runScope string, n, a, s, b int) []tdma.Disturbance {
	var ds []tdma.Disturbance
	node := 1
	for i := 0; i < s; i++ {
		ds = append(ds, fault.NewMaliciousSyndrome(
			tdma.NodeID(node), pool.Stream(fmt.Sprintf("%s/mal-%d", runScope, node))))
		node++
	}
	var bursts []fault.Burst
	for i := 0; i < b; i++ {
		bursts = append(bursts, fault.SlotBurst(sched, wideFaultRound, node, 1))
		node++
	}
	if len(bursts) > 0 {
		ds = append(ds, fault.NewTrain(bursts...))
	}
	for i := 0; i < a; i++ {
		ds = append(ds, fault.SOS{
			Sender: tdma.NodeID(node), Victims: []tdma.NodeID{tdma.NodeID((node % n) + 1)},
			FromRound: wideFaultRound, ToRound: wideFaultRound + 1,
		})
		node++
	}
	return ds
}

// wideObedient lists the trustworthy observers of a wide case: every node
// that is not one of the s malicious sources (nodes 1..s).
func wideObedient(n, s int) []int {
	obedient := make([]int, 0, n-s)
	for id := s + 1; id <= n; id++ {
		obedient = append(obedient, id)
	}
	return obedient
}

// resilienceRunsWide executes the Monte-Carlo campaign of one wide case. The
// schedule is drawn once from the case-named stream; per-run variation comes
// from the malicious payload streams. With Params.Batched set and gangs of
// at least two lanes available (and no receiver-selective SOS faults, which
// the lane-packed bus cannot express), the repetitions advance through a
// sim.BatchDiagCluster instead — same draws, same audits, same verdicts.
func resilienceRunsWide(n, a, s, b int, p Params, src *rng.Source) (int, error) {
	scope := fmt.Sprintf("scale/N%d-a%d-s%d-b%d", n, a, s, b)
	sched := src.Stream(scope + "/schedule")
	ls := make([]int, n)
	for i := range ls {
		ls[i] = sched.Intn(n)
	}
	cfg := sim.ClusterConfig{
		N: n, RoundLen: sim.DefaultRoundLen * time.Duration(n) / 4, Ls: ls,
	}
	if p.batched() && a == 0 && core.BatchLanes(n) >= 2 {
		return resilienceRunsWideBatched(scope, n, s, b, p, src, cfg)
	}
	failed, err := campaign.RunPooled(p.Workers, p.Runs,
		newDiagWorker(Params{}, nil, "scale", src, cfg),
		func(w *diagWorker, run int) (bool, error) {
			w.cl.Reset()
			w.rng.Recycle()
			w.col.Reset()
			for id := 1; id <= n; id++ {
				w.col.HookDiag(id, w.cl.Runners[id])
			}
			eng := w.cl.Eng
			runScope := fmt.Sprintf("%s/run-%d", scope, run)
			for _, d := range resilienceDisturbances(eng.Schedule(), w.rng, runScope, n, a, s, b) {
				eng.Bus().AddDisturbance(d)
			}
			if err := eng.RunRounds(wideFaultRound + 10); err != nil {
				return false, err
			}
			return sim.AuditTheorem1(eng, w.col, wideObedient(n, s), 4, wideFaultRound+6) != nil, nil
		})
	if err != nil {
		return 0, err
	}
	return countTrue(failed), nil
}

// wideBatchWorker is the reusable per-worker state of a batched wide
// campaign: one lane-packed cluster plus one stream pool.
type wideBatchWorker struct {
	cl  *sim.BatchDiagCluster
	rng *rng.Pool
}

// resilienceRunsWideBatched is the lane-packed twin of the per-run path
// above and must stay draw-identical to it.
func resilienceRunsWideBatched(scope string, n, s, b int, p Params, src *rng.Source, cfg sim.ClusterConfig) (int, error) {
	gang := core.BatchLanes(n)
	obedient := wideObedient(n, s)
	failed, err := campaign.RunBatchedWith(p.campaignOpts(), p.Runs, gang,
		func() (*wideBatchWorker, error) {
			cl, err := sim.NewBatchDiagCluster(cfg)
			if err != nil {
				return nil, err
			}
			return &wideBatchWorker{cl: cl, rng: src.NewPool()}, nil
		},
		func(w *wideBatchWorker, base, width int, out []bool) error {
			if err := w.cl.ResetBatch(width); err != nil {
				return err
			}
			w.rng.Recycle()
			for lane := 0; lane < width; lane++ {
				runScope := fmt.Sprintf("%s/run-%d", scope, base+lane)
				for _, d := range resilienceDisturbances(w.cl.Schedule(), w.rng, runScope, n, 0, s, b) {
					w.cl.AddLaneDisturbance(lane, d)
				}
				w.cl.SetLaneHorizon(lane, wideFaultRound+10)
			}
			if err := w.cl.Run(); err != nil {
				return err
			}
			for lane := 0; lane < width; lane++ {
				out[lane] = sim.AuditTheorem1(w.cl.LaneTruth(lane), w.cl.LaneCollector(lane),
					obedient, 4, wideFaultRound+6) != nil
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	return countTrue(failed), nil
}

// countTrue counts the set entries of a verdict list.
func countTrue(vs []bool) int {
	count := 0
	for _, v := range vs {
		if v {
			count++
		}
	}
	return count
}
