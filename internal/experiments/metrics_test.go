package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

// sec8IDs are the instrumented validation campaigns of Sec. 8.
var sec8IDs = []string{"sec8-bursts", "sec8-pr", "sec8-malicious", "sec8-clique"}

// reportJSON runs one experiment with metrics collection on and returns the
// marshaled report bytes.
func reportJSON(t *testing.T, id string, workers int) []byte {
	t.Helper()
	rep := metrics.NewReport("test", 7, 2)
	var out bytes.Buffer
	if err := Run(id, Params{Seed: 7, Runs: 2, Workers: workers, Out: &out, Metrics: rep}); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsWorkerCountInvariance is the telemetry counterpart of
// TestCampaignWorkerCountInvariance: the merged metrics report of every
// Sec. 8 campaign must be byte-identical whether the repetitions run
// serially or on eight workers. Run under -race -cpu=1,4 by scripts/check.sh
// and CI, where the workers genuinely run concurrently.
func TestMetricsWorkerCountInvariance(t *testing.T) {
	for _, id := range sec8IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := reportJSON(t, id, 1)
			parallel := reportJSON(t, id, 8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("metrics report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- 8 workers ---\n%s", serial, parallel)
			}
		})
	}
}

// TestMetricsReportCoverage checks the acceptance surface of the report:
// every Sec. 8 campaign must deliver vote-outcome counts, ground-truth
// transmission outcomes and run-0 penalty trajectories, and the latency
// histogram must be present (with observations where the campaign isolates).
func TestMetricsReportCoverage(t *testing.T) {
	rep := metrics.NewReport("test", 7, 2)
	for _, id := range sec8IDs {
		if err := Run(id, Params{Seed: 7, Runs: 2, Workers: 1, Metrics: rep}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range sec8IDs {
		snap := rep.Snapshot(id)
		if snap.Counters["protocol/steps"] == 0 {
			t.Fatalf("%s: no protocol steps recorded", id)
		}
		if snap.Counters["vote/healthy"]+snap.Counters["vote/faulty"]+snap.Counters["vote/bottom"] == 0 {
			t.Fatalf("%s: no vote outcomes recorded: %v", id, snap.Counters)
		}
		if snap.Counters["tx/correct"] == 0 {
			t.Fatalf("%s: no ground-truth transmissions recorded", id)
		}
		if _, ok := snap.Histograms["pr/isolation_latency_rounds"]; !ok {
			t.Fatalf("%s: isolation latency histogram missing", id)
		}
		var trajectories int
		for name, s := range snap.Series {
			if !strings.Contains(name, "/penalty/node") {
				t.Fatalf("%s: unexpected series %q", id, name)
			}
			if len(s.Rounds) == 0 {
				t.Fatalf("%s: empty penalty trajectory %q", id, name)
			}
			trajectories++
		}
		if trajectories == 0 {
			t.Fatalf("%s: no penalty trajectories recorded", id)
		}
	}
	// The injected faults must actually show up in the ground truth and the
	// penalty counters somewhere in the campaign set.
	bursts := rep.Snapshot("sec8-bursts")
	if bursts.Counters["tx/benign"] == 0 {
		t.Fatalf("burst campaign recorded no collisions: %v", bursts.Counters)
	}
	pr := rep.Snapshot("sec8-pr")
	if pr.Gauges["pr/penalty_max"] == 0 {
		t.Fatalf("p/r campaign recorded no penalty growth: %v", pr.Gauges)
	}
	clique := rep.Snapshot("sec8-clique")
	if clique.Counters["membership/view_changes"] == 0 {
		t.Fatalf("clique campaign recorded no view changes: %v", clique.Counters)
	}
}

// TestMetricsDoNotPerturbRenderedOutput: collecting metrics must not change
// a single byte of the rendered artifact (instrumentation never consumes
// randomness or reorders work).
func TestMetricsDoNotPerturbRenderedOutput(t *testing.T) {
	render := func(rep *metrics.Report) string {
		var buf bytes.Buffer
		if err := Run("sec8-pr", Params{Seed: 7, Runs: 2, Workers: 1, Out: &buf, Metrics: rep}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := render(nil)
	instrumented := render(metrics.NewReport("test", 7, 2))
	if plain != instrumented {
		t.Fatalf("metrics collection changed the rendered output:\n--- off ---\n%s\n--- on ---\n%s", plain, instrumented)
	}
}

// TestTraceRunBoundaries: with a trace sink attached and one worker, the
// stream carries one KindNote boundary per repetition plus the engines'
// simulation events.
func TestTraceRunBoundaries(t *testing.T) {
	var rec trace.Recorder
	if err := Run("sec8-pr", Params{Seed: 7, Runs: 3, Workers: 1, Trace: &rec}); err != nil {
		t.Fatal(err)
	}
	notes := rec.Filter(trace.KindNote)
	if len(notes) != 3 {
		t.Fatalf("got %d run-boundary notes, want 3: %v", len(notes), notes)
	}
	for i, n := range notes {
		want := "sec8-pr run " + string(rune('0'+i))
		if n.Detail != want {
			t.Fatalf("note %d = %q, want %q", i, n.Detail, want)
		}
	}
	if len(rec.Filter(trace.KindJobRun)) == 0 {
		t.Fatalf("trace carried no simulation events")
	}
}
