package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestFleetCampaignWorkerCountInvariance is the experiment-level fleet
// determinism gate, run under -race -cpu=1,4 by scripts/check.sh and CI:
// the fleet-resilience artifact and its metrics report must be
// byte-identical whether the shards run serially or on four workers.
func TestFleetCampaignWorkerCountInvariance(t *testing.T) {
	base := Params{Seed: 7, Runs: 2, FleetNodes: 64, FleetShards: 8}
	p1, p4 := base, base
	p1.Workers = 1
	p4.Workers = 4
	serialOut, serialSnap := runCampaign(t, "fleet-resilience", p1)
	parallelOut, parallelSnap := runCampaign(t, "fleet-resilience", p4)
	if serialOut != parallelOut {
		t.Fatalf("rendered output differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- 4 workers ---\n%s", serialOut, parallelOut)
	}
	if !reflect.DeepEqual(serialSnap, parallelSnap) {
		t.Fatal("metrics report differs between workers=1 and workers=4")
	}
	// The fleet instruments must actually be present in the report.
	for _, name := range []string{"fleet/runs", "fleet/gateway/rounds", "fleet/gateway/isolations"} {
		if serialSnap.Counters[name] == 0 {
			t.Errorf("counter %s missing or zero in the fleet metrics report: %v", name, serialSnap.Counters)
		}
	}
	if _, ok := serialSnap.Histograms["fleet/outage_isolation_latency_rounds"]; !ok {
		t.Error("outage-isolation latency histogram missing from the fleet metrics report")
	}
}

// TestFleetCampaignPinnedGeometry checks the -fleet/-shards single-geometry
// override renders exactly one sweep row.
func TestFleetCampaignPinnedGeometry(t *testing.T) {
	out, _ := runCampaign(t, "fleet-resilience", Params{Seed: 7, Runs: 1, Workers: 1, FleetNodes: 128, FleetShards: 4})
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "128") {
			rows++
		}
	}
	if rows != 1 {
		t.Fatalf("pinned geometry rendered %d rows, want 1:\n%s", rows, out)
	}
	if strings.Count(out, "\n----") > 1 || strings.Contains(out, "\n256") {
		t.Fatalf("pinned geometry still rendered the sweep:\n%s", out)
	}
}
