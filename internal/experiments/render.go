package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// table renders rows with aligned columns.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) rule(cols int) {
	cells := make([]string, cols)
	for i := range cells {
		cells[i] = "----"
	}
	t.row(cells...)
}

func (t *table) flush() error { return t.w.Flush() }

// ms renders a duration in seconds with millisecond precision, matching the
// paper's tables.
func ms(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%.4gs", d.Seconds())
}

// asciiPlot renders series as a compact ASCII chart: x positions map to
// columns, y values (0..1) to rows; each series is drawn with its own glyph
// and overlaps keep the later glyph.
type asciiPlot struct {
	width, height int
	glyphs        []byte
	labels        []string
}

func (pl asciiPlot) render(xs []float64, series [][]float64) string {
	if pl.width <= 0 || pl.height <= 0 || len(xs) == 0 {
		return ""
	}
	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		if x < xMin {
			xMin = x
		}
		if x > xMax {
			xMax = x
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	grid := make([][]byte, pl.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", pl.width))
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(pl.width-1))
		if c < 0 {
			c = 0
		}
		if c >= pl.width {
			c = pl.width - 1
		}
		return c
	}
	row := func(y float64) int {
		if y < 0 {
			y = 0
		}
		if y > 1 {
			y = 1
		}
		r := int((1 - y) * float64(pl.height-1))
		return r
	}
	for si, ys := range series {
		glyph := byte('*')
		if si < len(pl.glyphs) {
			glyph = pl.glyphs[si]
		}
		for i, y := range ys {
			if i >= len(xs) {
				break
			}
			grid[row(y)][col(xs[i])] = glyph
		}
	}
	var b strings.Builder
	for r, line := range grid {
		yTick := "    "
		if r == 0 {
			yTick = "1.0 "
		}
		if r == pl.height-1 {
			yTick = "0.0 "
		}
		b.WriteString(yTick)
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString("    +")
	b.WriteString(strings.Repeat("-", pl.width))
	b.WriteString("\n")
	if len(pl.labels) > 0 {
		b.WriteString("     series: ")
		for si, lbl := range pl.labels {
			glyph := byte('*')
			if si < len(pl.glyphs) {
				glyph = pl.glyphs[si]
			}
			fmt.Fprintf(&b, "%c=%s ", glyph, lbl)
		}
		b.WriteString("\n")
	}
	return b.String()
}
