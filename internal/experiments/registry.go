// Package experiments is the reproduction harness: one registered experiment
// per table and figure of the paper (plus the comparative claims of Secs. 2,
// 9 and 10). Each experiment regenerates its artifact from the simulation
// stack and prints the same rows or series the paper reports, side by side
// with the published values where they exist. EXPERIMENTS.md records the
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"ttdiag/internal/metrics"
	"ttdiag/internal/trace"
)

// Params controls an experiment run.
type Params struct {
	// Seed is the master seed of all randomised campaigns.
	Seed int64
	// Runs is the number of Monte-Carlo repetitions for experiments that
	// repeat injections (the paper uses 100 per experiment class).
	Runs int
	// Workers bounds the campaign worker pool: <= 0 means one worker per
	// CPU (GOMAXPROCS), 1 recovers serial execution. The rendered output is
	// bit-identical at any setting — see internal/campaign.
	Workers int
	// Out receives the rendered artifact.
	Out io.Writer
	// Metrics, when non-nil, receives one merged deterministic snapshot per
	// instrumented experiment (keyed by experiment ID). The snapshot is
	// bit-identical at any Workers setting; see internal/metrics.
	Metrics *metrics.Report
	// Trace, when non-nil, receives the simulation trace of every campaign
	// repetition plus one KindNote boundary event per run. Event order is
	// deterministic only with Workers == 1 (the CLI's -trace flag forces
	// that); with more workers the sink must be safe for concurrent use and
	// the interleaving reflects scheduling.
	Trace trace.Sink
	// Progress, when non-nil, observes every completed repetition
	// (campaign.Options.OnRunDone): wall-clock-side progress reporting that
	// never feeds the rendered artifact or the metrics report.
	Progress func(run int)
	// FleetNodes and FleetShards pin the fleet-resilience experiment to a
	// single geometry instead of its default sweep. 0/0 keeps the sweep; a
	// single set field defaults the other to 1024 nodes / 16 shards.
	FleetNodes  int
	FleetShards int
	// SplitEffort and SplitLevels tune the rare-event splitting experiment:
	// trials per level and number of penalty-threshold levels (the
	// penalty threshold is SplitLevels-1, so the top level is wrong
	// isolation). 0/0 keeps the defaults (14000 trials, 8 levels). The
	// experiment's work is SplitEffort x SplitLevels trials; Runs does not
	// multiply it.
	SplitEffort int
	SplitLevels int
	// Batched selects the lane-packed batched execution path for the
	// campaigns that support it (sec8-bursts, sec8-pr, sec8-malicious):
	// gangs of ⌊64/N⌋ repetitions advance together through one
	// sim.BatchDiagCluster, one protocol step per node per round for the
	// whole gang. The rendered rows and per-run observables are
	// bit-identical to the per-run path (pinned by tests); the metrics
	// report additionally carries the batch/* occupancy instruments.
	// Ignored when a Trace sink is attached (tracing is inherently
	// per-run) and by campaigns with receiver-selective disturbances
	// (sec8-clique).
	Batched bool
}

// batched reports whether the lane-packed campaign path is usable under
// these parameters.
func (p Params) batched() bool { return p.Batched && p.Trace == nil }

func (p Params) withDefaults() Params {
	if p.Runs <= 0 {
		p.Runs = 100
	}
	if p.Out == nil {
		p.Out = io.Discard
	}
	return p
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the registry key (e.g. "table4").
	ID string
	// Title is a one-line description.
	Title string
	// Ref names the paper artifact it regenerates.
	Ref string
	// Run executes the experiment.
	Run func(p Params) error
}

// registry is populated by the artifact files' register calls.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (use -list)", id)
	}
	return e, nil
}

// Run executes one experiment by ID.
func Run(id string, p Params) error {
	e, err := Get(id)
	if err != nil {
		return err
	}
	p = p.withDefaults()
	fmt.Fprintf(p.Out, "==> %s — %s (%s)\n\n", e.ID, e.Title, e.Ref)
	if err := e.Run(p); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintln(p.Out)
	return nil
}

// RunAll executes every registered experiment in ID order.
func RunAll(p Params) error {
	for _, e := range All() {
		if err := Run(e.ID, p); err != nil {
			return err
		}
	}
	return nil
}
