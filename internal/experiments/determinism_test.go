package experiments

import (
	"bytes"
	"testing"
)

// TestCampaignWorkerCountInvariance is the campaign engine's end-to-end
// determinism check: the fully rendered artifact must be byte-identical
// whether the Monte-Carlo repetitions run serially or on eight workers.
// Run under -race (scripts/check.sh and CI do, with -cpu=1,4) this also
// exercises the pool for data races on the shared results slice.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	for _, id := range []string{"sec8-bursts", "table4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				var buf bytes.Buffer
				if err := Run(id, Params{Seed: 7, Runs: 2, Workers: workers, Out: &buf}); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return buf.String()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Fatalf("rendered output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- 8 workers ---\n%s", serial, parallel)
			}
			if serial == "" {
				t.Fatal("experiment rendered nothing")
			}
		})
	}
}
