package experiments

import (
	"fmt"
	"math"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/sim"
	"ttdiag/internal/tuning"
)

func init() {
	register(Experiment{
		ID:    "scoreboard",
		Title: "Paper-vs-measured scoreboard over every headline number",
		Ref:   "whole evaluation",
		Run:   runScoreboard,
	})
}

// scoreCheck is one headline number of the paper together with its measured
// reproduction and an acceptance tolerance.
type scoreCheck struct {
	artifact string
	quantity string
	paper    float64
	measured float64
	// tol is the accepted relative deviation (0 = exact).
	tol  float64
	unit string
}

func (c scoreCheck) pass() bool {
	if c.tol == 0 {
		return c.measured == c.paper
	}
	if c.paper == 0 {
		return math.Abs(c.measured) <= c.tol
	}
	return math.Abs(c.measured-c.paper)/math.Abs(c.paper) <= c.tol
}

// runScoreboard recomputes every headline number from scratch and scores it
// against the published value — the one-page acceptance test of the
// reproduction.
func runScoreboard(p Params) error {
	var checks []scoreCheck

	// Table 2: tuning thresholds, exact.
	auto, err := tuning.Derive(tuning.Automotive())
	if err != nil {
		return err
	}
	aero, err := tuning.Derive(tuning.Aerospace())
	if err != nil {
		return err
	}
	checks = append(checks,
		scoreCheck{"Table 2", "automotive P", 197, float64(auto.P), 0, ""},
		scoreCheck{"Table 2", "automotive s_SC", 40, float64(auto.PerClass[0].Criticality), 0, ""},
		scoreCheck{"Table 2", "automotive s_SR", 6, float64(auto.PerClass[1].Criticality), 0, ""},
		scoreCheck{"Table 2", "automotive s_NSR", 1, float64(auto.PerClass[2].Criticality), 0, ""},
		scoreCheck{"Table 2", "aerospace P", 17, float64(aero.P), 0, ""},
	)

	// Table 4: time to incorrect isolation, round-aligned runs; the paper's
	// numbers carry the testbed's phase artifacts, so the acceptance band
	// is one blinking-light period (automotive) / a few rounds (aerospace).
	autoRows, err := tuning.TimeToIncorrectIsolation(fault.BlinkingLight(), auto, 1, p.Workers, p.Seed, false)
	if err != nil {
		return err
	}
	aeroRows, err := tuning.TimeToIncorrectIsolation(fault.LightningBolt(), aero, 1, p.Workers, p.Seed, false)
	if err != nil {
		return err
	}
	paperT4 := map[string]float64{"SC": 0.518, "SR": 4.595, "NSR": 24.475}
	for _, row := range autoRows {
		checks = append(checks, scoreCheck{
			"Table 4", "automotive " + row.Class, paperT4[row.Class],
			row.Mean.Seconds(), 0.15, "s",
		})
	}
	checks = append(checks, scoreCheck{
		"Table 4", "aerospace SC", 0.205, aeroRows[0].Mean.Seconds(), 0.05, "s",
	})

	// Fig. 3: correlation probability at the tuned R, < 1% claim.
	prob := tuning.CorrelationProbability(1.0/252000, tuning.PaperRewardThreshold, sim.DefaultRoundLen)
	checks = append(checks, scoreCheck{"Fig. 3", "P(correlate) at R=10^6, 1/70h", 0.01, prob, 0.05, ""})

	// Sec. 10 latencies (rounds).
	lat, err := detectionLatencies()
	if err != nil {
		return err
	}
	checks = append(checks,
		scoreCheck{"Sec. 10", "add-on latency (k-3)", 3, float64(lat[0]), 0, "rounds"},
		scoreCheck{"Sec. 10", "add-on latency (k-2)", 2, float64(lat[1]), 0, "rounds"},
		scoreCheck{"Sec. 10", "system-level latency", 1, float64(lat[2]), 0, "rounds"},
	)

	// Sec. 8 campaign: all classes pass.
	small := Params{Seed: p.Seed, Runs: 3}
	for _, c := range []struct {
		name string
		fn   func(Params) ([]CampaignRow, error)
	}{
		{"bursts", BurstCampaign}, {"pr", PRCampaign},
		{"malicious", MaliciousCampaign}, {"clique", CliqueCampaign},
	} {
		rows, err := c.fn(small)
		if err != nil {
			return err
		}
		total, passed := 0, 0
		for _, r := range rows {
			total += r.Runs
			passed += r.Passed
		}
		checks = append(checks, scoreCheck{
			"Sec. 8", "campaign " + c.name + " pass rate", 1,
			float64(passed) / float64(total), 0, "",
		})
	}

	t := newTable(p.Out)
	t.row("artifact", "quantity", "paper", "measured", "verdict")
	t.rule(5)
	allPass := true
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass() {
			verdict = "FAIL"
			allPass = false
		}
		t.row(c.artifact, c.quantity,
			fmt.Sprintf("%.4g%s", c.paper, c.unit),
			fmt.Sprintf("%.4g%s", c.measured, c.unit), verdict)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\n%d checks", len(checks))
	if allPass {
		fmt.Fprintln(p.Out, ", all pass")
		return nil
	}
	fmt.Fprintln(p.Out, "")
	return fmt.Errorf("scoreboard has failing checks")
}

// detectionLatencies measures the detection latency (in rounds) of the
// three deployments against an identical single-slot fault.
func detectionLatencies() ([3]int, error) {
	var out [3]int
	const faultRound = 8
	addOn := func(cfg sim.ClusterConfig) (int, error) {
		eng, runners, err := sim.NewDiagnosticCluster(cfg)
		if err != nil {
			return 0, err
		}
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 3, 1)))
		detected := -1
		runners[1].OnOutput = func(o core.RoundOutput) {
			if detected < 0 && o.ConsHV != nil && o.DiagnosedRound == faultRound && o.ConsHV[3] == core.Faulty {
				detected = o.Round
			}
		}
		if err := eng.RunRounds(faultRound + 8); err != nil {
			return 0, err
		}
		return detected - faultRound, nil
	}
	var err error
	if out[0], err = addOn(sim.ClusterConfig{Ls: []int{2, 0, 3, 1}}); err != nil {
		return out, err
	}
	if out[1], err = addOn(sim.ClusterConfig{Ls: sim.Staircase(4), AllSendCurrRound: true}); err != nil {
		return out, err
	}
	eng, runners, err := sim.NewLowLatCluster(sim.ClusterConfig{})
	if err != nil {
		return out, err
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 3, 1)))
	detected := -1
	runners[1].OnVerdict = func(v lowlatVerdict) {
		if detected < 0 && v.Round == faultRound && v.Node == 3 && v.Health == core.Faulty {
			detected = eng.Round()
		}
	}
	if err := eng.RunRounds(faultRound + 6); err != nil {
		return out, err
	}
	out[2] = detected - faultRound
	return out, nil
}

// lowlatVerdict aliases the verdict type to keep the signature readable.
type lowlatVerdict = lowlat.Verdict
