package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable(&buf)
	tb.row("a", "bb", "ccc")
	tb.rule(3)
	tb.row("longer", "x", "y")
	if err := tb.flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Columns align: the rule row contains dashes under each column.
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("rule row missing: %q", lines[1])
	}
}

func TestMsFormatting(t *testing.T) {
	for _, tt := range []struct {
		d    time.Duration
		want string
	}{
		{-time.Second, "-"},
		{517500 * time.Microsecond, "0.5175s"},
		{25 * time.Second, "25s"},
	} {
		if got := ms(tt.d); got != tt.want {
			t.Errorf("ms(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestAsciiPlot(t *testing.T) {
	p := asciiPlot{width: 21, height: 5, glyphs: []byte{'a', 'b'}, labels: []string{"one", "two"}}
	out := p.render([]float64{0, 1, 2}, [][]float64{{0, 0.5, 1}, {1, 1, 1}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0 |") || !strings.Contains(out, "0.0 |") {
		t.Fatalf("y ticks missing:\n%s", out)
	}
	if !strings.Contains(out, "a=one") || !strings.Contains(out, "b=two") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Degenerate inputs are safe.
	if got := p.render(nil, nil); got != "" {
		t.Fatalf("empty xs produced output: %q", got)
	}
	if got := (asciiPlot{}).render([]float64{1}, nil); got != "" {
		t.Fatalf("zero size produced output: %q", got)
	}
	// Constant x still renders.
	if got := p.render([]float64{5, 5}, [][]float64{{0.2, 0.9}}); got == "" {
		t.Fatal("constant x produced nothing")
	}
}
