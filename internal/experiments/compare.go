package experiments

import (
	"fmt"
	"strconv"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/lowlat"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
	"ttdiag/internal/tuning"
)

func init() {
	register(Experiment{
		ID:    "sec10-lowlat",
		Title: "Detection latency: add-on protocol vs system-level variant",
		Ref:   "Sec. 10",
		Run:   runSec10,
	})
	register(Experiment{
		ID:    "cmp-ttpc",
		Title: "Multiple coincident faults: add-on protocol vs TTP/C membership",
		Ref:   "Sec. 2 (related work claims)",
		Run:   runCmpTTPC,
	})
	register(Experiment{
		ID:    "cmp-isolation",
		Title: "Availability under abnormal transients: p/r vs immediate isolation vs α-count",
		Ref:   "Sec. 9",
		Run:   runCmpIsolation,
	})
}

// runSec10 measures the detection latency of the three deployments on an
// identical single-slot fault: the add-on protocol with unconstrained
// scheduling (k-3), the add-on protocol under the global send_curr_round
// predicate (k-2), and the constrained system-level variant (one round).
func runSec10(p Params) error {
	const faultRound = 8
	type variant struct {
		name    string
		latency int // detection round - fault round
	}
	var variants []variant

	measureAddOn := func(name string, cfg sim.ClusterConfig) error {
		eng, runners, err := sim.NewDiagnosticCluster(cfg)
		if err != nil {
			return err
		}
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 3, 1)))
		detected := -1
		runners[1].OnOutput = func(out core.RoundOutput) {
			if detected < 0 && out.ConsHV != nil && out.DiagnosedRound == faultRound && out.ConsHV[3] == core.Faulty {
				detected = out.Round
			}
		}
		if err := eng.RunRounds(faultRound + 8); err != nil {
			return err
		}
		if detected < 0 {
			return fmt.Errorf("%s never detected the fault", name)
		}
		variants = append(variants, variant{name: name, latency: detected - faultRound})
		return nil
	}

	if err := measureAddOn("add-on, unconstrained scheduling", sim.ClusterConfig{Ls: []int{2, 0, 3, 1}}); err != nil {
		return err
	}
	if err := measureAddOn("add-on, all send_curr_round", sim.ClusterConfig{Ls: sim.Staircase(4), AllSendCurrRound: true}); err != nil {
		return err
	}

	eng, runners, err := sim.NewLowLatCluster(sim.ClusterConfig{})
	if err != nil {
		return err
	}
	eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 3, 1)))
	detected := -1
	runners[1].OnVerdict = func(v lowlat.Verdict) {
		if detected < 0 && v.Round == faultRound && v.Node == 3 && v.Health == core.Faulty {
			detected = eng.Round()
		}
	}
	if err := eng.RunRounds(faultRound + 6); err != nil {
		return err
	}
	if detected < 0 {
		return fmt.Errorf("low-latency variant never detected the fault")
	}
	variants = append(variants, variant{name: "system-level (constrained)", latency: detected - faultRound})

	t := newTable(p.Out)
	t.row("deployment", "detection latency (rounds)", "paper")
	t.rule(3)
	paper := []string{"k-3 (Lemma 1), <= 4 worst case", "k-2 (Lemma 1)", "1"}
	for i, v := range variants {
		t.row(v.name, strconv.Itoa(v.latency), paper[i])
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nmembership: 2 executions of the respective protocol (see sec8-clique and the low-latency membership tests)")
	return nil
}

// runCmpTTPC compares the protocols under fault patterns beyond the
// single-fault assumption: two coincident asymmetric receive faults and a
// two-round communication blackout.
func runCmpTTPC(p Params) error {
	type outcome struct {
		scenario  string
		protocol  string
		aliveOrOK string
		verdict   string
	}
	var rows []outcome

	double := func(sched *tdma.Schedule) []tdma.Disturbance {
		return []tdma.Disturbance{
			fault.ReceiverBlind{Receiver: 4, Senders: []tdma.NodeID{1}, FromRound: 6, ToRound: 7},
			fault.ReceiverBlind{Receiver: 3, Senders: []tdma.NodeID{2}, FromRound: 6, ToRound: 7},
		}
	}
	blackout := func(sched *tdma.Schedule) []tdma.Disturbance {
		return []tdma.Disturbance{fault.NewTrain(fault.Blackout(sched, 6, 2))}
	}

	runTTPC := func(scenario string, ds func(*tdma.Schedule) []tdma.Disturbance) error {
		eng, nodes, err := sim.NewTTPCCluster(sim.ClusterConfig{})
		if err != nil {
			return err
		}
		for _, d := range ds(eng.Schedule()) {
			eng.Bus().AddDisturbance(d)
		}
		if err := eng.RunRounds(16); err != nil {
			return err
		}
		alive := 0
		for id := 1; id <= 4; id++ {
			if nodes[id].Alive() {
				alive++
			}
		}
		verdict := "survives"
		if alive < 4 {
			verdict = fmt.Sprintf("%d healthy node(s) killed", 4-alive)
		}
		if alive == 0 {
			verdict = "whole system down"
		}
		rows = append(rows, outcome{scenario, "TTP/C membership", fmt.Sprintf("%d/4 alive", alive), verdict})
		return nil
	}

	runOurs := func(scenario string, ds func(*tdma.Schedule) []tdma.Disturbance) error {
		eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
			Ls: sim.Staircase(4), AllSendCurrRound: true,
			PR: core.PRConfig{PenaltyThreshold: 10, RewardThreshold: 100},
		})
		if err != nil {
			return err
		}
		col := sim.NewCollector()
		for id := 1; id <= 4; id++ {
			col.HookDiag(id, runners[id])
		}
		for _, d := range ds(eng.Schedule()) {
			eng.Bus().AddDisturbance(d)
		}
		if err := eng.RunRounds(16); err != nil {
			return err
		}
		active := 0
		for id := 1; id <= 4; id++ {
			if runners[1].Last().Active[id] {
				active++
			}
		}
		verdict := "consistent diagnosis, all nodes kept"
		if err := sim.AuditTheorem1(eng, col, []int{1, 2, 3, 4}, 3, 10); err != nil {
			verdict = "audit failed: " + err.Error()
		} else if active < 4 {
			verdict = fmt.Sprintf("%d node(s) isolated", 4-active)
		}
		rows = append(rows, outcome{scenario, "add-on diagnostic", fmt.Sprintf("%d/4 active", active), verdict})
		return nil
	}

	for _, sc := range []struct {
		name string
		ds   func(*tdma.Schedule) []tdma.Disturbance
	}{
		{name: "2 coincident asymmetric faults", ds: double},
		{name: "2-round communication blackout", ds: blackout},
	} {
		if err := runTTPC(sc.name, sc.ds); err != nil {
			return err
		}
		if err := runOurs(sc.name, sc.ds); err != nil {
			return err
		}
	}

	t := newTable(p.Out)
	t.row("scenario", "protocol", "availability", "outcome")
	t.rule(4)
	for _, r := range rows {
		t.row(r.scenario, r.protocol, r.aliveOrOK, r.verdict)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nbandwidth: both protocols carry O(N) bits per message (N-bit vector)")
	return nil
}

// runCmpIsolation reproduces the Sec. 9 availability argument on both
// abnormal transient scenarios.
func runCmpIsolation(p Params) error {
	t := newTable(p.Out)
	t.row("scenario", "policy", "nodes isolated", "first isolation", "system down")
	t.rule(5)
	for _, ds := range []struct {
		spec tuning.DomainSpec
		scen fault.Scenario
	}{
		{spec: tuning.Automotive(), scen: fault.BlinkingLight()},
		{spec: tuning.Aerospace(), scen: fault.LightningBolt()},
	} {
		res, err := tuning.Derive(ds.spec)
		if err != nil {
			return err
		}
		outs, err := tuning.ComparePolicies(ds.scen, res, 0.95, 200)
		if err != nil {
			return err
		}
		for _, o := range outs {
			t.row(ds.scen.Name, o.Policy, strconv.Itoa(o.NodesIsolated), ms(o.FirstIsolation),
				strconv.FormatBool(o.SystemDown))
		}
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\npaper: immediate isolation after the first burst would isolate every node and restart the whole system")
	return nil
}
