package experiments

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "overhead",
		Title: "Protocol overhead vs cluster size: bandwidth and per-job CPU",
		Ref:   "Sec. 1 & 10 (low bandwidth requirements)",
		Run:   runOverhead,
	})
}

// runOverhead quantifies the integration cost the paper advertises as low:
// the diagnostic message stays at N bits per node per round, and one
// diagnostic-job execution (all five phases) is measured live with
// testing.Benchmark across cluster sizes. CPU numbers are machine-dependent
// and printed as measured; the bandwidth column is exact.
func runOverhead(p Params) error {
	t := newTable(p.Out)
	t.row("N", "dm size", "dm bits/round/bus", "job CPU (measured)", "allocs/job")
	t.rule(5)
	for _, n := range []int{4, 8, 16, 32, 64} {
		n := n
		res := testing.Benchmark(func(b *testing.B) {
			proto, err := core.NewProtocol(core.Config{
				N: n, ID: 1, L: 0, SendCurrRound: true, AllSendCurrRound: true,
				PR: core.PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 40},
			})
			if err != nil {
				b.Fatal(err)
			}
			dms := make([]core.Syndrome, n+1)
			for j := 1; j <= n; j++ {
				dms[j] = core.NewSyndrome(n, core.Healthy)
			}
			validity := core.NewSyndrome(n, core.Healthy)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := proto.Step(core.RoundInput{Round: i, DMs: dms, Validity: validity}); err != nil {
					b.Fatal(err)
				}
			}
		})
		t.row(strconv.Itoa(n),
			fmt.Sprintf("%d byte(s)", core.EncodedLen(n)),
			fmt.Sprintf("%d", n*n),
			(time.Duration(res.NsPerOp()) * time.Nanosecond).String(),
			strconv.FormatInt(res.AllocsPerOp(), 10))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\nbandwidth is the paper's O(N) bits per message / O(N^2) per round;"+
		" voting is O(N^2) per job\n")
	// A sanity line that is deterministic for the golden comparison lives
	// in the bandwidth column only; CPU numbers vary per machine.
	_ = sim.DefaultRoundLen
	return nil
}
