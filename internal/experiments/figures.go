package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ttdiag/internal/core"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/trace"
	"ttdiag/internal/tuning"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Interleaving of protocol phases across TDMA rounds",
		Ref:   "Figure 1",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Read alignment example (round k, l_i = 2)",
		Ref:   "Figure 2",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Setting the reward threshold R with rounds of 2.5 ms",
		Ref:   "Figure 3",
		Run:   runFig3,
	})
}

// runFig1 traces a 4-node cluster and prints, per round, which phase of
// which protocol instance each job execution belongs to: instance k runs
// local detection at round k+1, dissemination at k+1/k+2, aggregation and
// analysis at k+2 (AllSendCurrRound), interleaved with the neighbouring
// instances — the pipeline sketched in Fig. 1.
func runFig1(p Params) error {
	var rec trace.Recorder
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: sim.Staircase(4), AllSendCurrRound: true, Sink: &rec,
	})
	if err != nil {
		return err
	}
	diagnosedAt := make(map[int]int) // diagnosed round -> execution round
	runners[1].OnOutput = func(out core.RoundOutput) {
		if out.ConsHV != nil {
			diagnosedAt[out.DiagnosedRound] = out.Round
		}
	}
	const rounds = 8
	if err := eng.RunRounds(rounds); err != nil {
		return err
	}
	t := newTable(p.Out)
	t.row("round", "phases executed by every diagnostic job")
	t.rule(2)
	for k := 0; k < rounds; k++ {
		var phases []string
		phases = append(phases, fmt.Sprintf("detect(round %d)", k-1))
		phases = append(phases, fmt.Sprintf("disseminate(round %d)", k-1))
		if exec, ok := diagnosedAt[k-2]; ok && exec == k {
			phases = append(phases, fmt.Sprintf("aggregate+analyse+counters(round %d)", k-2))
		}
		t.row(strconv.Itoa(k), strings.Join(phases, ", "))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\n%d job executions traced; every instance completes in %d rounds (lag %d)\n\n",
		rec.Len(), 3, 2)
	fmt.Fprint(p.Out, trace.Gantt{Nodes: 4}.Render(rec.Events()))
	return nil
}

// runFig2 walks through the read-alignment example of Fig. 2: at round k a
// job with l_i = 2 combines entries 1..2 of the previous read with entries
// 3..N of the current one, so every aligned value was sent in round k-1.
func runFig2(p Params) error {
	const (
		n = 4
		l = 2
	)
	prev := []string{"", "dm1@k-1", "dm2@k-1", "dm3@k-2", "dm4@k-2"}
	curr := []string{"", "dm1@k", "dm2@k", "dm3@k-1", "dm4@k-1"}
	t := newTable(p.Out)
	t.row("j", "prev_dm (read at k-1)", "curr_dm (read at k)", "al_dm")
	t.rule(4)
	for j := 1; j <= n; j++ {
		al := curr[j]
		src := "curr"
		if j <= l {
			al = prev[j]
			src = "prev"
		}
		t.row(strconv.Itoa(j), prev[j], curr[j], fmt.Sprintf("%s (from %s)", al, src))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nall aligned values were sent in round k-1, as Lemma 1 requires")
	return nil
}

// runFig3 regenerates the Fig. 3 trade-off: probability of wrongly
// correlating a second independent external transient against the reward
// threshold R, for a sweep of transient-fault rates, with a Monte-Carlo
// cross-check at R = 10^6.
func runFig3(p Params) error {
	rates := []float64{
		1.0 / 600,    // one transient per 10 min (very harsh environment)
		1.0 / 3600,   // one per hour
		1.0 / 36000,  // one per 10 h
		1.0 / 252000, // one per 70 h
	}
	rateNames := []string{"1/10min", "1/1h", "1/10h", "1/70h"}
	rs := []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	t := newTable(p.Out)
	t.row(append([]string{"R", "R×T"}, rateNames...)...)
	t.rule(2 + len(rates))
	for _, pt := range tuning.Fig3Sweep(rs, rates, sim.DefaultRoundLen) {
		cells := []string{fmt.Sprintf("%g", float64(pt.R)), pt.Window.String()}
		for _, prob := range pt.Prob {
			cells = append(cells, fmt.Sprintf("%.4f", prob))
		}
		t.row(cells...)
	}
	if err := t.flush(); err != nil {
		return err
	}
	// ASCII rendering of the trade-off curves (x = log10 R, y = probability).
	xs := make([]float64, len(rs))
	series := make([][]float64, len(rates))
	for i := range series {
		series[i] = make([]float64, len(rs))
	}
	for xi, pt := range tuning.Fig3Sweep(rs, rates, sim.DefaultRoundLen) {
		xs[xi] = math.Log10(float64(pt.R))
		for i, prob := range pt.Prob {
			series[i][xi] = prob
		}
	}
	fmt.Fprintln(p.Out)
	fmt.Fprint(p.Out, asciiPlot{
		width: 61, height: 11,
		glyphs: []byte{'a', 'b', 'c', 'd'},
		labels: rateNames,
	}.render(xs, series))
	fmt.Fprintln(p.Out, "     x: log10(R) from 3 to 8")

	stream := rng.NewSource(p.Seed).Stream("fig3-mc")
	mc := tuning.CorrelationMonteCarlo(stream, rates[3], tuning.PaperRewardThreshold, sim.DefaultRoundLen, 200000)
	an := tuning.CorrelationProbability(rates[3], tuning.PaperRewardThreshold, sim.DefaultRoundLen)
	fmt.Fprintf(p.Out, "\nR=10^6 gives R×T ≈ 41.7 min; at 1/70h the correlation probability is %.4f"+
		" (Monte-Carlo %.4f) — the paper's \"less than 1%%\"\n", an, mc)
	return nil
}
