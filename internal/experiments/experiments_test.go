package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablate-vote",
		"cmp-isolation", "cmp-ttpc",
		"ext-reintegration",
		"fdir-loop",
		"fig1", "fig2", "fig3",
		"fleet-resilience",
		"healthy-isolation",
		"overhead",
		"port-platforms",
		"rare-event",
		"scale-resilience",
		"scoreboard",
		"sec10-lowlat",
		"sec8-bursts", "sec8-clique", "sec8-malicious", "sec8-pr",
		"sweep-threshold",
		"table1", "table2", "table3", "table4",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete: %+v", e.ID, e)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := Run("nope", Params{}); err == nil {
		t.Fatal("Run with unknown id accepted")
	}
}

// TestRunAllSmoke executes every experiment with a reduced repetition count
// and checks for the expected output markers.
func TestRunAllSmoke(t *testing.T) {
	markers := map[string][]string{
		"table1":            {"consistent health vector: 1100", "paper: 1 1 0 0"},
		"table2":            {"Automotive", "197", "40", "Aerospace", "17"},
		"table3":            {"blinking light", "lightning bolt", "500ms", "50"},
		"table4":            {"SC", "NSR", "0.518s", "0.205s"},
		"fig1":              {"aggregate+analyse", "round"},
		"fig2":              {"dm3@k-1", "Lemma 1"},
		"fig3":              {"41.7 min", "1e+06"},
		"sec8-bursts":       {"burst 8 slot(s) from slot 4", "passed"},
		"sec8-pr":           {"every 2nd round"},
		"sec8-malicious":    {"malicious node 4"},
		"sec8-clique":       {"minority clique"},
		"sec10-lowlat":      {"system-level", "add-on"},
		"cmp-ttpc":          {"TTP/C", "blackout"},
		"cmp-isolation":     {"immediate isolation", "alpha-count"},
		"port-platforms":    {"FlexRay", "SAFEbus", "TT-Ethernet", "pass"},
		"sweep-threshold":   {"latency", "availability", "197"},
		"ext-reintegration": {"downtime", "back in service", "true"},
		"healthy-isolation": {"p^P", "0 isolations"},
		"fdir-loop":         {"steer->n3", "steer->n1", "reintegrate"},
		"scoreboard":        {"17 checks, all pass"},
		"overhead":          {"O(N) bits", "byte(s)"},
		"rare-event":        {"multilevel splitting", "wrong-isolation", "second-transient", "naive MC"},
		"scale-resilience":  {"bound holds", "NO"},
		"ablate-vote":       {"tie-break to Faulty", "own-row"},
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			runs := 2
			if e.ID == "table4" {
				runs = 1 // the NSR class runs 25 simulated seconds per repetition
			}
			if err := Run(e.ID, Params{Seed: 1, Runs: runs, Out: &buf}); err != nil {
				t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
			}
			out := buf.String()
			for _, m := range markers[e.ID] {
				if !strings.Contains(out, m) {
					t.Errorf("output missing %q:\n%s", m, out)
				}
			}
		})
	}
}

// TestCampaignsAllPass asserts that every Sec. 8 campaign class passes all
// of its audits (the validation result of the paper).
func TestCampaignsAllPass(t *testing.T) {
	p := Params{Seed: 3, Runs: 4}
	campaigns := map[string]func(Params) ([]CampaignRow, error){
		"bursts":    BurstCampaign,
		"pr":        PRCampaign,
		"malicious": MaliciousCampaign,
		"clique":    CliqueCampaign,
	}
	for name, fn := range campaigns {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			rows, err := fn(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Passed != r.Runs {
					t.Errorf("%s / %s: %d/%d passed (%s)", name, r.Class, r.Passed, r.Runs, r.FirstFailure)
				}
			}
		})
	}
}
