// The rare-event experiment: multilevel-splitting estimates of diagnostic
// failure probabilities far below naive Monte-Carlo reach
// (internal/splitting). A node suffering independent per-round transient
// faults climbs its penalty counters toward (wrong) isolation; the penalty
// thresholds the protocol already computes are the importance levels. Two
// classes: wrong isolation (penalty reaches PenaltyThreshold+1 — the
// certification-relevant tail) and second transient (penalty reaches 2
// before a reward regenerates — a moderate event both splitting and naive
// MC can reach, anchoring the estimator).
package experiments

import (
	"fmt"
	"strconv"

	"ttdiag/internal/core"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/splitting"
)

func init() {
	register(Experiment{
		ID:    "rare-event",
		Title: "Multilevel splitting: wrong-isolation probability beyond naive Monte-Carlo reach",
		Ref:   "beyond the paper",
		Run:   runRareEvent,
	})
}

const (
	// rareFaultProb is the per-round benign-transient probability of the
	// target node's sending slot.
	rareFaultProb = 0.05
	// rareDefaultEffort is the per-level trial count; chosen so the
	// wrong-isolation estimate lands at <= 10% relative error.
	rareDefaultEffort = 14000
	// rareDefaultLevels makes the penalty threshold 7: with q = 0.05 per
	// round the isolation probability sits around 1e-9 - 1e-8, three-plus
	// orders of magnitude past what a naive campaign could resolve.
	rareDefaultLevels = 8
)

// rareClass is one estimated event class.
type rareClass struct {
	name   string
	detail string
	levels []int64
}

// runRareEvent runs one fixed-effort splitting estimation per class. The
// effort parameter replaces Monte-Carlo repetitions — Params.Runs does not
// multiply the work — and the estimate is bit-identical at any worker
// count (per-trial named streams, keyed-hash fault process; see
// internal/splitting).
func runRareEvent(p Params) error {
	effort := p.SplitEffort
	if effort <= 0 {
		effort = rareDefaultEffort
	}
	nLevels := p.SplitLevels
	if nLevels <= 0 {
		nLevels = rareDefaultLevels
	}
	if nLevels < 2 {
		return fmt.Errorf("rare-event: need at least 2 levels, got %d", nLevels)
	}
	penalty := nLevels - 1
	cluster := sim.ClusterConfig{
		N:  4,
		PR: core.PRConfig{PenaltyThreshold: int64(penalty), RewardThreshold: 2},
	}
	isoLevels := make([]int64, nLevels)
	for i := range isoLevels {
		isoLevels[i] = int64(i + 1)
	}
	classes := []rareClass{
		{
			name:   "wrong-isolation",
			detail: fmt.Sprintf("benign node isolated (penalty reaches %d)", penalty+1),
			levels: isoLevels,
		},
		{
			name:   "second-transient",
			detail: "second fault scored before a reward regenerates (penalty reaches 2)",
			levels: []int64{1, 2},
		},
	}

	fmt.Fprintf(p.Out, "fixed-effort multilevel splitting: %d trials/level, fault prob %.3g/round, %d-node cluster, penalty threshold %d, reward threshold %d\n",
		effort, rareFaultProb, cluster.N, penalty, cluster.PR.RewardThreshold)
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	reg := ws.Worker()
	for i, rc := range classes {
		cfg := splitting.Config{
			Cluster:   cluster,
			Levels:    rc.levels,
			Effort:    effort,
			FaultProb: rareFaultProb,
			Workers:   p.Workers,
			Name:      "rare/" + rc.name,
		}
		res, err := splitting.Run(cfg, src)
		if err != nil {
			return fmt.Errorf("rare-event: %s: %w", rc.name, err)
		}
		if err := renderRareClass(p, rc, res); err != nil {
			return err
		}
		recordRareClass(reg, rc.name, res)
		if p.Progress != nil {
			p.Progress(i)
		}
	}
	return p.recordMetrics("rare-event", ws)
}

func renderRareClass(p Params, rc rareClass, res *splitting.Result) error {
	fmt.Fprintf(p.Out, "\n-- %s: %s --\n", rc.name, rc.detail)
	t := newTable(p.Out)
	t.row("level", "threshold", "hits/trials", "p", "wilson 95%", "rounds")
	t.rule(6)
	for i, lr := range res.Levels {
		t.row(
			strconv.Itoa(i+1),
			strconv.FormatInt(lr.Threshold, 10),
			fmt.Sprintf("%d/%d", lr.Hits, lr.Trials),
			fmt.Sprintf("%.4f", lr.P),
			fmt.Sprintf("[%.4f, %.4f]", lr.WilsonLo, lr.WilsonHi),
			strconv.FormatInt(lr.Rounds, 10),
		)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "P = %.3e   relative error %.1f%%\n", res.P, 100*res.RelErr)
	fmt.Fprintf(p.Out, "simulated %d rounds (%d node-rounds, %d clone checkpoints)\n",
		res.Rounds, res.NodeRounds, res.Clones)
	if res.P > 0 && res.P < 1 {
		fmt.Fprintf(p.Out, "naive MC at the same error: %.2e trials = %.2e rounds (%.1e x more)\n",
			res.NaiveTrials, res.NaiveRounds, res.NaiveRounds/float64(res.Rounds))
	}
	return nil
}

// recordRareClass files the estimation's deterministic bookkeeping as
// metrics. Every value is taken from the Result — a pure function of (cfg,
// seed) — so the report is bit-identical at any worker count; there are no
// wall-clock instruments.
func recordRareClass(reg *metrics.Registry, class string, res *splitting.Result) {
	prefix := "rare/" + class + "/"
	reg.Counter(prefix + "rounds").Add(res.Rounds)
	reg.Counter(prefix + "clones").Add(int64(res.Clones))
	reg.Counter(prefix + "checkpoint_captures").Add(int64(res.Captures))
	reg.Counter(prefix + "checkpoint_restores").Add(res.Restores)
	occ := reg.Histogram(prefix+"level_occupancy", 0, 10, 100, 1000, 10000)
	for _, lr := range res.Levels {
		occ.Observe(int64(lr.Hits))
	}
}
