package experiments

import (
	"fmt"

	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

func init() {
	register(Experiment{
		ID:    "sec8-bursts",
		Title: "Burst injection campaign: 1 slot / 2 slots / 2 rounds from every slot",
		Ref:   "Sec. 8 (validation)",
		Run:   runSec8Bursts,
	})
	register(Experiment{
		ID:    "sec8-pr",
		Title: "Penalty/reward counter updates under periodic faults",
		Ref:   "Sec. 8 (validation)",
		Run:   runSec8PR,
	})
	register(Experiment{
		ID:    "sec8-malicious",
		Title: "Malicious node broadcasting random local syndromes",
		Ref:   "Sec. 8 (validation)",
		Run:   runSec8Malicious,
	})
	register(Experiment{
		ID:    "sec8-clique",
		Title: "Clique detection by the membership protocol",
		Ref:   "Sec. 8 (validation)",
		Run:   runSec8Clique,
	})
}

// CampaignRow is the outcome of one experiment class of the Sec. 8 campaign.
type CampaignRow struct {
	// Class names the experiment class.
	Class string
	// Runs and Passed count repetitions and successful audits.
	Runs, Passed int
	// FirstFailure describes the first failed audit, if any.
	FirstFailure string
}

func renderCampaign(p Params, rows []CampaignRow) error {
	t := newTable(p.Out)
	t.row("experiment class", "passed", "first failure")
	t.rule(3)
	total, passed := 0, 0
	for _, r := range rows {
		t.row(r.Class, fmt.Sprintf("%d/%d", r.Passed, r.Runs), r.FirstFailure)
		total += r.Runs
		passed += r.Passed
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\n%d/%d injections passed their audits\n", passed, total)
	return nil
}

// prototypeLs is the unconstrained node schedule used across the campaign
// (the add-on deployment with detection latency k-3).
var prototypeLs = []int{2, 0, 3, 1}

// diagWorker is the reusable per-worker state of a pooled diagnostic
// campaign: one cluster, one stream pool and one collector, reset/recycled
// per repetition, plus the worker's telemetry instruments when the campaign
// collects metrics (reg is nil otherwise and every metrics hook is a no-op).
type diagWorker struct {
	cl    *sim.DiagCluster
	rng   *rng.Pool
	col   *sim.Collector
	reg   *metrics.Registry
	sm    *core.StepMetrics // counter/gauge instruments, all runs
	sm0   *core.StepMetrics // run-0 variant with penalty trajectories, lazy
	sys   *sim.RunMetrics
	class string // unique series-name prefix of this campaign class
}

func newDiagWorker(p Params, ws *metrics.WorkerSet, class string, src *rng.Source, cfg sim.ClusterConfig) func() (*diagWorker, error) {
	return func() (*diagWorker, error) {
		cfg.Sink = p.Trace
		cl, err := sim.NewReusableDiagnosticCluster(cfg)
		if err != nil {
			return nil, err
		}
		w := &diagWorker{cl: cl, rng: src.NewPool(), col: sim.NewCollector(), class: class}
		if reg := ws.Worker(); reg != nil {
			w.reg = reg
			w.sm = core.NewStepMetrics(reg)
			w.sys = sim.NewRunMetrics(reg)
		}
		return w, nil
	}
}

// begin readies the worker for repetition run. Recycling the streams is
// safe here because the cluster reset has already dropped the disturbances
// that could still hold one. With metrics on, every protocol gets the
// worker's shared instruments (the lock-step engine steps them from one
// goroutine); run 0's node-1 observer additionally records the penalty
// trajectories — one observer, one run, as StepMetrics requires.
func (w *diagWorker) begin(run int) (*sim.Engine, []*sim.DiagRunner) {
	w.cl.Reset()
	w.rng.Recycle()
	w.col.Reset()
	if w.sm != nil {
		for id := 1; id < len(w.cl.Runners); id++ {
			w.cl.Runners[id].Protocol().SetMetrics(w.sm)
		}
		if run == 0 {
			w.cl.Runners[1].Protocol().SetMetrics(w.run0Metrics())
		}
	}
	return w.cl.Eng, w.cl.Runners
}

// run0Metrics builds (once) the StepMetrics variant that also appends the
// per-node penalty trajectories, named under the campaign class so series
// stay unique across the whole report.
func (w *diagWorker) run0Metrics() *core.StepMetrics {
	if w.sm0 == nil {
		sm := *w.sm
		n := len(w.cl.Runners) - 1
		sm.PenaltySeries = make([]*metrics.Series, n+1)
		for j := 1; j <= n; j++ {
			sm.PenaltySeries[j] = w.reg.Series(fmt.Sprintf("%s/penalty/node%d", w.class, j), 256)
		}
		w.sm0 = &sm
	}
	return w.sm0
}

// observe folds the completed repetition's system-level ground truth into
// the worker's registry; a no-op with metrics off.
func (w *diagWorker) observe(eng *sim.Engine) {
	if w.sys == nil {
		return
	}
	w.sys.ObserveTruth(eng)
	w.sys.ObserveIsolationLatency(eng, w.col)
}

// memWorker is the membership counterpart of diagWorker.
type memWorker struct {
	cl    *sim.MembershipCluster
	rng   *rng.Pool
	col   *sim.Collector
	reg   *metrics.Registry
	sm    *core.StepMetrics
	sm0   *core.StepMetrics
	sys   *sim.RunMetrics
	class string
}

func newMemWorker(p Params, ws *metrics.WorkerSet, class string, src *rng.Source, cfg sim.ClusterConfig) func() (*memWorker, error) {
	return func() (*memWorker, error) {
		cfg.Sink = p.Trace
		cl, err := sim.NewReusableMembershipCluster(cfg)
		if err != nil {
			return nil, err
		}
		w := &memWorker{cl: cl, rng: src.NewPool(), col: sim.NewCollector(), class: class}
		if reg := ws.Worker(); reg != nil {
			w.reg = reg
			w.sm = core.NewStepMetrics(reg)
			w.sys = sim.NewRunMetrics(reg)
		}
		return w, nil
	}
}

func (w *memWorker) begin(run int) (*sim.Engine, []*sim.MembershipRunner) {
	w.cl.Reset()
	w.rng.Recycle()
	w.col.Reset()
	if w.sm != nil {
		for id := 1; id < len(w.cl.Runners); id++ {
			w.cl.Runners[id].Service().Protocol().SetMetrics(w.sm)
		}
		if run == 0 {
			w.cl.Runners[1].Service().Protocol().SetMetrics(w.run0Metrics())
		}
	}
	return w.cl.Eng, w.cl.Runners
}

func (w *memWorker) run0Metrics() *core.StepMetrics {
	if w.sm0 == nil {
		sm := *w.sm
		n := len(w.cl.Runners) - 1
		sm.PenaltySeries = make([]*metrics.Series, n+1)
		for j := 1; j <= n; j++ {
			sm.PenaltySeries[j] = w.reg.Series(fmt.Sprintf("%s/penalty/node%d", w.class, j), 256)
		}
		w.sm0 = &sm
	}
	return w.sm0
}

// observe additionally folds the membership view transitions, which only
// exist on this worker kind.
func (w *memWorker) observe(eng *sim.Engine, runners []*sim.MembershipRunner) {
	if w.sys == nil {
		return
	}
	w.sys.ObserveTruth(eng)
	w.sys.ObserveIsolationLatency(eng, w.col)
	w.sys.ObserveViews(runners)
}

// runVerdict is the outcome of one campaign repetition: pass, or the audit
// failure text. Campaign run functions return it so that aggregation into a
// CampaignRow happens after the worker join, in run-index order.
type runVerdict struct {
	pass    bool
	failure string
}

// foldRow aggregates per-run verdicts (indexed by run) into one campaign
// row; FirstFailure is the failure of the lowest-indexed failing run, so it
// is identical at every worker count.
func foldRow(class string, verdicts []runVerdict) CampaignRow {
	row := CampaignRow{Class: class, Runs: len(verdicts)}
	for _, v := range verdicts {
		if v.pass {
			row.Passed++
		} else if row.FirstFailure == "" {
			row.FirstFailure = v.failure
		}
	}
	return row
}

// BurstCampaign runs the twelve burst experiment classes: bursts of one
// slot, two slots and two whole TDMA rounds, starting at each of the four
// sending slots. Every repetition shifts the injection round, and every run
// is audited for Theorem 1's correctness, completeness and consistency.
func BurstCampaign(p Params) ([]CampaignRow, error) {
	p = p.withDefaults()
	if p.batched() {
		return burstCampaignBatched(p)
	}
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	var rows []CampaignRow
	for _, slots := range []int{1, 2, 8} {
		for startSlot := 1; startSlot <= 4; startSlot++ {
			slots, startSlot := slots, startSlot
			class := fmt.Sprintf("sec8-bursts/%d-from-%d", slots, startSlot)
			verdicts, err := campaign.RunPooledWith(p.campaignOpts(), p.Runs,
				newDiagWorker(p, ws, class, src, sim.ClusterConfig{Ls: prototypeLs}),
				func(w *diagWorker, run int) (runVerdict, error) {
					eng, runners := w.begin(run)
					p.traceRun(class, run)
					stream := w.rng.Stream(fmt.Sprintf("sec8-bursts/%d-from-%d/run-%d", slots, startSlot, run))
					injectRound := 5 + stream.Intn(6)
					col := w.col
					for id := 1; id <= 4; id++ {
						col.HookDiag(id, runners[id])
					}
					eng.Bus().AddDisturbance(fault.NewTrain(
						fault.SlotBurst(eng.Schedule(), injectRound, startSlot, slots)))
					if err := eng.RunRounds(injectRound + 10); err != nil {
						return runVerdict{}, err
					}
					w.observe(eng)
					if err := sim.AuditTheorem1(eng, col, []int{1, 2, 3, 4}, 4, injectRound+6); err != nil {
						return runVerdict{failure: err.Error()}, nil
					}
					return runVerdict{pass: true}, nil
				})
			if err != nil {
				return nil, err
			}
			rows = append(rows, foldRow(
				fmt.Sprintf("burst %d slot(s) from slot %d", slots, startSlot), verdicts))
		}
	}
	if err := p.recordMetrics("sec8-bursts", ws); err != nil {
		return nil, err
	}
	return rows, nil
}

func runSec8Bursts(p Params) error {
	rows, err := BurstCampaign(p)
	if err != nil {
		return err
	}
	return renderCampaign(p, rows)
}

// PRCampaign reproduces the p/r validation class: a fault in one node's
// sending slot every second round for 20 rounds; either the penalty or the
// reward counter must advance every round, identically at every node.
func PRCampaign(p Params) ([]CampaignRow, error) {
	p = p.withDefaults()
	if p.batched() {
		return prCampaignBatched(p)
	}
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	verdicts, err := campaign.RunPooledWith(p.campaignOpts(), p.Runs,
		newDiagWorker(p, ws, "sec8-pr", src, sim.ClusterConfig{
			Ls: prototypeLs,
			PR: core.PRConfig{PenaltyThreshold: 1 << 30, RewardThreshold: 100},
		}),
		func(w *diagWorker, run int) (runVerdict, error) {
			eng, runners := w.begin(run)
			p.traceRun("sec8-pr", run)
			stream := w.rng.Stream(fmt.Sprintf("sec8-pr/run-%d", run))
			startRound := 6 + stream.Intn(4)
			target := 1 + stream.Intn(4)
			var bursts []fault.Burst
			for r := startRound; r < startRound+20; r += 2 {
				bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, target, 1))
			}
			eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
			if err := eng.RunRounds(startRound + 30); err != nil {
				return runVerdict{}, err
			}
			w.observe(eng)
			v := runVerdict{pass: true}
			for id := 1; id <= 4; id++ {
				pr := runners[id].Protocol().PenaltyReward()
				if pr.Penalty(target) != 10 {
					if v.pass {
						v = runVerdict{failure: fmt.Sprintf("node %d: penalty %d, want 10", id, pr.Penalty(target))}
					}
				}
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	if err := p.recordMetrics("sec8-pr", ws); err != nil {
		return nil, err
	}
	return []CampaignRow{foldRow("fault every 2nd round for 20 rounds", verdicts)}, nil
}

func runSec8PR(p Params) error {
	rows, err := PRCampaign(p)
	if err != nil {
		return err
	}
	return renderCampaign(p, rows)
}

// MaliciousCampaign runs the four malicious-node classes: each node in turn
// broadcasts random local syndromes; the obedient nodes must never diagnose
// a correct node as faulty and must stay consistent.
func MaliciousCampaign(p Params) ([]CampaignRow, error) {
	p = p.withDefaults()
	if p.batched() {
		return maliciousCampaignBatched(p)
	}
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	var rows []CampaignRow
	for mal := 1; mal <= 4; mal++ {
		mal := mal
		class := fmt.Sprintf("sec8-malicious/node-%d", mal)
		verdicts, err := campaign.RunPooledWith(p.campaignOpts(), p.Runs,
			newDiagWorker(p, ws, class, src, sim.ClusterConfig{Ls: prototypeLs}),
			func(w *diagWorker, run int) (runVerdict, error) {
				eng, runners := w.begin(run)
				p.traceRun(class, run)
				col := w.col
				for id := 1; id <= 4; id++ {
					col.HookDiag(id, runners[id])
				}
				eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(
					tdma.NodeID(mal), w.rng.Stream(fmt.Sprintf("mal-%d-%d", mal, run))))
				if err := eng.RunRounds(24); err != nil {
					return runVerdict{}, err
				}
				w.observe(eng)
				var obedient []int
				for id := 1; id <= 4; id++ {
					if id != mal {
						obedient = append(obedient, id)
					}
				}
				err := sim.AuditTheorem1(eng, col, obedient, 4, 20)
				if err == nil {
					for d := 4; d < 20 && err == nil; d++ {
						if hv := col.ConsHV[d][obedient[0]]; hv.CountFaulty() != 0 {
							err = fmt.Errorf("round %d: conviction %v", d, hv)
						}
					}
				}
				if err != nil {
					return runVerdict{failure: err.Error()}, nil
				}
				return runVerdict{pass: true}, nil
			})
		if err != nil {
			return nil, err
		}
		rows = append(rows, foldRow(fmt.Sprintf("malicious node %d", mal), verdicts))
	}
	if err := p.recordMetrics("sec8-malicious", ws); err != nil {
		return nil, err
	}
	return rows, nil
}

func runSec8Malicious(p Params) error {
	rows, err := MaliciousCampaign(p)
	if err != nil {
		return err
	}
	return renderCampaign(p, rows)
}

// CliqueCampaign reproduces the membership validation: the disturbance node
// sits between node 1 and the rest of the cluster, so node 1 misses another
// node's broadcast and forms a minority clique; every obedient node must
// install the view {2,3,4} in the same round, within two protocol
// executions.
func CliqueCampaign(p Params) ([]CampaignRow, error) {
	p = p.withDefaults()
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	verdicts, err := campaign.RunPooledWith(p.campaignOpts(), p.Runs,
		newMemWorker(p, ws, "sec8-clique", src, sim.ClusterConfig{Ls: prototypeLs}),
		func(w *memWorker, run int) (runVerdict, error) {
			eng, runners := w.begin(run)
			p.traceRun("sec8-clique", run)
			stream := w.rng.Stream(fmt.Sprintf("sec8-clique/run-%d", run))
			faultRound := 6 + stream.Intn(6)
			missedSender := tdma.NodeID(2 + stream.Intn(3))
			eng.Bus().AddDisturbance(fault.ReceiverBlind{
				Receiver: 1, Senders: []tdma.NodeID{missedSender},
				FromRound: faultRound, ToRound: faultRound + 1,
			})
			if err := eng.RunRounds(faultRound + 14); err != nil {
				return runVerdict{}, err
			}
			w.observe(eng, runners)
			lag := runners[1].Service().Protocol().Config().Lag()
			ref := runners[1].View()
			for id := 1; id <= 4; id++ {
				v := runners[id].View()
				if fmt.Sprint(v.Members) != "[2 3 4]" {
					return runVerdict{failure: fmt.Sprintf("node %d view %v", id, v.Members)}, nil
				}
				if v.FormedAtRound != ref.FormedAtRound || v.ID != ref.ID {
					return runVerdict{failure: fmt.Sprintf("node %d view disagrees with node 1", id)}, nil
				}
				if v.FormedAtRound > faultRound+2*(lag+1) {
					return runVerdict{failure: fmt.Sprintf("view formed at %d, fault at %d (liveness)", v.FormedAtRound, faultRound)}, nil
				}
			}
			return runVerdict{pass: true}, nil
		})
	if err != nil {
		return nil, err
	}
	if err := p.recordMetrics("sec8-clique", ws); err != nil {
		return nil, err
	}
	return []CampaignRow{foldRow("minority clique {1} via asymmetric receive fault", verdicts)}, nil
}

func runSec8Clique(p Params) error {
	rows, err := CliqueCampaign(p)
	if err != nil {
		return err
	}
	return renderCampaign(p, rows)
}
