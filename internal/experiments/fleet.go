// The fleet-resilience experiment: hierarchical diagnosis past the packed
// 64-node wall (internal/fleet). Every repetition runs a three-part fault
// scenario across a sharded fleet — an intra-shard burst audited by
// Theorem 1 inside its shard, a transient gateway-frame loss that must stay
// below the fleet-level penalty threshold, and a whole-shard outage the
// surviving gateways must isolate — while the fleet level's own health
// vectors are checked for cross-gateway consistency.
package experiments

import (
	"fmt"
	"strconv"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/fleet"
	"ttdiag/internal/metrics"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fleet-resilience",
		Title: "Hierarchical fleets: shard past the 64-node wall, diagnose shards one level up",
		Ref:   "beyond the paper",
		Run:   runFleetResilience,
	})
}

// fleetGatewayPR is the fleet-level penalty/reward tuning of the
// experiment: three faulty gateway rounds isolate a shard, eight fault-free
// rounds mint one reward.
var fleetGatewayPR = core.PRConfig{PenaltyThreshold: 3, RewardThreshold: 8}

// fleetRounds is the TDMA horizon of every repetition: long enough for the
// latest outage draw (round 11) to be isolated with rounds to spare.
const fleetRounds = 24

// fleetCase is one sweep entry.
type fleetCase struct{ nodes, shards int }

// runFleetResilience sweeps fleet geometries from 256 nodes in 4 shards to
// 4096 nodes in 64 shards (or a single geometry when -fleet/-shards pin
// one) and scores each over p.Runs scenario repetitions.
func runFleetResilience(p Params) error {
	sweep := []fleetCase{{256, 4}, {256, 16}, {1024, 16}, {4096, 64}}
	if p.FleetNodes > 0 || p.FleetShards > 0 {
		nodes, shards := p.FleetNodes, p.FleetShards
		if nodes == 0 {
			nodes = 1024
		}
		if shards == 0 {
			shards = 16
		}
		sweep = []fleetCase{{nodes, shards}}
	}
	t := newTable(p.Out)
	t.row("nodes", "shards", "shard size", "runs", "intra violations", "gw violations", "outages isolated", "mean latency")
	t.rule(8)
	src := rng.NewSource(p.Seed)
	ws := p.workerSet()
	for _, fc := range sweep {
		if err := runFleetCase(p, fc, src, ws, t); err != nil {
			return err
		}
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nevery node stays on the packed fast path; whole-shard outages are isolated by the same Alg. 1 pipeline one level up")
	return p.recordMetrics("fleet-resilience", ws)
}

func runFleetCase(p Params, fc fleetCase, src *rng.Source, ws *metrics.WorkerSet, t *table) error {
	c, err := fleet.New(fleet.Config{
		Nodes: fc.nodes, Shards: fc.shards, Rounds: fleetRounds,
		Workers: p.Workers, GatewayPR: fleetGatewayPR, Metrics: ws,
	})
	if err != nil {
		return err
	}
	var latHist *metrics.Histogram
	if reg := c.GatewayRegistry(); reg != nil {
		latHist = reg.Histogram("fleet/outage_isolation_latency_rounds", 2, 4, 8, 16, 32)
	}
	s := fc.shards
	intraViol, gwViol, isolated, latSum := 0, 0, 0, 0
	for run := 0; run < p.Runs; run++ {
		scen := src.Stream(fmt.Sprintf("fleet/N%d-S%d/run-%d/scenario", fc.nodes, fc.shards, run))
		victim := scen.Intn(s)
		outage, gwf := -1, -1
		outageRound, gwfRound := 0, 0
		if s >= 2 {
			outage = (victim + 1 + scen.Intn(s-1)) % s
			outageRound = 8 + scen.Intn(4)
			if s >= 3 {
				// A transient two-round frame loss at a third gateway: must
				// stay below the penalty threshold. (May coincide with the
				// victim — gateway faults never disturb intra-shard traffic.)
				gwf = (outage + 1 + scen.Intn(s-1)) % s
				gwfRound = 4 + scen.Intn(3)
			}
		}
		prefix := fmt.Sprintf("fleet/N%d-S%d/run-%d", fc.nodes, fc.shards, run)
		hooks := fleet.Hooks{
			Prepare: fleetBurstPrepare(prefix, victim),
			GatewayDrop: func(round, g int) bool {
				if outage >= 0 && g == outage+1 && round >= outageRound {
					return true
				}
				return gwf >= 0 && g == gwf+1 && round >= gwfRound && round < gwfRound+2
			},
		}
		res, err := c.Run(src, hooks)
		if err != nil {
			return err
		}
		for _, sr := range res.Shards {
			if sr.Verdict != "" {
				intraViol++
				break
			}
		}
		if gr := res.Gateway; gr != nil {
			gwViol += fleetGatewayViolations(gr, c.Sizes(), outage, gwf)
			if iso := gr.IsolationRound[outage+1]; iso >= 0 {
				isolated++
				lat := iso - outageRound
				latSum += lat
				if latHist != nil {
					latHist.Observe(int64(lat))
				}
			}
		}
		if p.Progress != nil {
			p.Progress(run)
		}
	}
	sizes := c.Sizes()
	minSz, maxSz := sizes[0], sizes[0]
	for _, sz := range sizes {
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	sizeCol := strconv.Itoa(minSz)
	if maxSz != minSz {
		sizeCol = fmt.Sprintf("%d-%d", minSz, maxSz)
	}
	isoCol, latCol := "-", "-"
	if s >= 2 {
		isoCol = fmt.Sprintf("%d/%d", isolated, p.Runs)
		if isolated > 0 {
			latCol = fmt.Sprintf("%.1f rounds", float64(latSum)/float64(isolated))
		}
	}
	t.row(strconv.Itoa(fc.nodes), strconv.Itoa(fc.shards), sizeCol, strconv.Itoa(p.Runs),
		strconv.Itoa(intraViol), strconv.Itoa(gwViol), isoCol, latCol)
	return nil
}

// fleetBurstPrepare injects a single-slot benign burst into the victim
// shard (node and round drawn from a run/shard-named stream) and audits
// Theorem 1 around the injection window.
func fleetBurstPrepare(prefix string, victim int) func(fleet.ShardRun) (func() string, error) {
	return func(sr fleet.ShardRun) (func() string, error) {
		if sr.Shard != victim {
			return nil, nil
		}
		stream := sr.Pool.Stream(fmt.Sprintf("%s/shard-%d", prefix, sr.Shard))
		inject := 6 + stream.Intn(3)
		node := 2 + stream.Intn(sr.Size-1)
		eng := sr.Cluster.Eng
		eng.Bus().AddDisturbance(fault.NewTrain(
			fault.SlotBurst(eng.Schedule(), inject, node, 1)))
		obedient := make([]int, sr.Size)
		for i := range obedient {
			obedient[i] = i + 1
		}
		col := sr.Collector
		return func() string {
			if err := sim.AuditTheorem1(eng, col, obedient, 4, inject+6); err != nil {
				return err.Error()
			}
			return ""
		}, nil
	}
}

// fleetGatewayViolations scores one repetition's fleet-level outcome: the
// consistency of every diagnosed gateway-round health vector across
// gateways, no spurious isolations (only the outage shard may be isolated —
// the transient gateway fault must stay below the threshold), and intact
// summary decoding at every surviving gateway.
func fleetGatewayViolations(gr *fleet.GatewayResult, sizes []int, outage, gwf int) int {
	viol := 0
	s := len(sizes)
	for _, hvs := range gr.HVs {
		if hvs == nil {
			continue
		}
		var ref core.BitSyndrome
		refSet := false
		for g := 1; g <= s; g++ {
			hv := hvs[g]
			if hv.Known == 0 {
				continue
			}
			if !refSet {
				ref, refSet = hv, true
			} else if hv != ref {
				viol++
			}
		}
	}
	for g := 1; g <= s; g++ {
		if g == outage+1 {
			continue
		}
		if gr.IsolationRound[g] >= 0 {
			viol++ // spurious isolation (includes the transient-fault gateway)
		}
		if gr.Received[g].Size != sizes[g-1] {
			viol++ // summary lost or corrupted at a surviving gateway
		}
	}
	return viol
}
