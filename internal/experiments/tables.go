package experiments

import (
	"fmt"
	"strconv"
	"time"

	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
	"ttdiag/internal/tuning"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Example diagnostic matrix with nodes 3 and 4 benign faulty",
		Ref:   "Table 1",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Experimental tuning of the p/r algorithm (P, s_i, R per domain)",
		Ref:   "Table 2",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Abnormal transient scenario definitions as injected",
		Ref:   "Table 3",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Time to incorrect isolation under abnormal transients",
		Ref:   "Table 4",
		Run:   runTable4,
	})
}

// runTable1 reproduces Table 1 end-to-end on the simulation stack: nodes 3
// and 4 are benign faulty senders in both the diagnosed round and the
// dissemination round; node 1's diagnostic matrix and the voted consistent
// health vector are printed.
func runTable1(p Params) error {
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: sim.Staircase(4), AllSendCurrRound: true,
	})
	if err != nil {
		return err
	}
	const diagRound = 6
	var bursts []fault.Burst
	for _, r := range []int{diagRound, diagRound + 1} {
		bursts = append(bursts,
			fault.SlotBurst(eng.Schedule(), r, 3, 1),
			fault.SlotBurst(eng.Schedule(), r, 4, 1))
	}
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))

	var matrix *core.Matrix
	var consHV core.Syndrome
	runners[1].OnOutput = func(out core.RoundOutput) {
		if out.DiagnosedRound == diagRound {
			matrix = out.Matrix
			consHV = out.ConsHV
		}
	}
	if err := eng.RunRounds(diagRound + 4); err != nil {
		return err
	}
	if matrix == nil {
		return fmt.Errorf("diagnosed round %d never analysed", diagRound)
	}
	fmt.Fprintf(p.Out, "diagnostic matrix at node 1 for diagnosed round %d:\n%s\n", diagRound, matrix)
	fmt.Fprintf(p.Out, "consistent health vector: %s   (paper: 1 1 0 0)\n", consHV)
	return nil
}

// runTable2 reruns the Sec. 9 tuning procedure for both domains and prints
// the Table 2 rows.
func runTable2(p Params) error {
	t := newTable(p.Out)
	t.row("Domain", "Class", "Example", "Tolerated outage", "p_i", "s_i", "P", "R", "TDMA")
	t.rule(9)
	for _, spec := range []tuning.DomainSpec{tuning.Automotive(), tuning.Aerospace(), tuning.AutomotiveUpperBound()} {
		res, err := tuning.Derive(spec)
		if err != nil {
			return err
		}
		for i, ct := range res.PerClass {
			domain := ""
			pCol, rCol, tCol := "", "", ""
			if i == 0 {
				domain = res.Domain
				pCol = strconv.FormatInt(res.P, 10)
				rCol = fmt.Sprintf("%g", float64(res.R))
				tCol = res.RoundLen.String()
			}
			t.row(domain, ct.Class.Name, ct.Class.Example, ct.Class.Outage.String(),
				strconv.FormatInt(ct.Penalty, 10), strconv.FormatInt(ct.Criticality, 10),
				pCol, rCol, tCol)
		}
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\npaper: automotive P=197, s = 40/6/1; aerospace P=17, s=1; R=10^6; T=2.5ms")
	return nil
}

// runTable3 prints the abnormal transient scenarios exactly as the injector
// lays them out.
func runTable3(p Params) error {
	t := newTable(p.Out)
	t.row("Scenario", "Burst", "TTReapp.", "# Inj.")
	t.rule(4)
	for _, scen := range []fault.Scenario{fault.BlinkingLight(), fault.LightningBolt()} {
		for i, ph := range scen.Phases {
			name := ""
			if i == 0 {
				name = scen.Name
			}
			t.row(name, ph.Burst.String(), ph.Reappearance.String(), strconv.Itoa(ph.Count))
		}
	}
	if err := t.flush(); err != nil {
		return err
	}
	for _, scen := range []fault.Scenario{fault.BlinkingLight(), fault.LightningBolt()} {
		fmt.Fprintf(p.Out, "%s: %d bursts spanning %v\n", scen.Name, scen.TotalBursts(), scen.Span())
	}
	return nil
}

// runTable4 measures the time to incorrect isolation per criticality class
// under the Table 3 scenarios, with the paper's 100 repetitions at random
// burst phase plus the deterministic round-aligned run.
func runTable4(p Params) error {
	paper := map[string]string{
		"Automotive/SC": "0.518s", "Automotive/SR": "4.595s", "Automotive/NSR": "24.475s",
		"Aerospace/SC": "0.205s",
	}
	t := newTable(p.Out)
	t.row("Setting", "Class", "s_i", "aligned", "mean(rand)", "p50", "p95", "min", "max", "isolated", "paper")
	t.rule(11)
	type domainScen struct {
		spec tuning.DomainSpec
		scen fault.Scenario
	}
	for _, ds := range []domainScen{
		{spec: tuning.Automotive(), scen: fault.BlinkingLight()},
		{spec: tuning.Aerospace(), scen: fault.LightningBolt()},
	} {
		res, err := tuning.Derive(ds.spec)
		if err != nil {
			return err
		}
		aligned, err := tuning.TimeToIncorrectIsolation(ds.scen, res, 1, p.Workers, p.Seed, false)
		if err != nil {
			return err
		}
		random, err := tuning.TimeToIncorrectIsolation(ds.scen, res, p.Runs, p.Workers, p.Seed, true)
		if err != nil {
			return err
		}
		for i, row := range random {
			al := time.Duration(-1)
			if aligned[i].IsolatedRuns > 0 {
				al = aligned[i].Mean
			}
			t.row(ds.spec.Name, row.Class, strconv.FormatInt(row.Criticality, 10),
				ms(al), ms(row.Mean), ms(row.Summary.P50), ms(row.Summary.P95), ms(row.Min), ms(row.Max),
				fmt.Sprintf("%d/%d", row.IsolatedRuns, row.Runs),
				paper[ds.spec.Name+"/"+row.Class])
		}
	}
	return t.flush()
}
