package experiments

import (
	"fmt"
	"strconv"
	"time"

	"ttdiag/internal/campaign"
	"ttdiag/internal/core"
	"ttdiag/internal/fault"
	"ttdiag/internal/platform"
	"ttdiag/internal/rng"
	"ttdiag/internal/sim"
	"ttdiag/internal/tdma"
)

func init() {
	register(Experiment{
		ID:    "port-platforms",
		Title: "The identical protocol code on FlexRay/TTP/C/SAFEbus/TT-Ethernet profiles",
		Ref:   "Sec. 10 (portability)",
		Run:   runPortability,
	})
	register(Experiment{
		ID:    "scale-resilience",
		Title: "Resiliency scales with N; the N > 2a+2s+b+1 bound is tight",
		Ref:   "Sec. 1 & Lemma 2",
		Run:   runScaleResilience,
	})
	register(Experiment{
		ID:    "ablate-vote",
		Title: "Ablating the voting rules: tie-break, self-opinion, own-row buffering",
		Ref:   "Sec. 5 design choices",
		Run:   runAblation,
	})
}

// runPortability executes the same fault scenario on every platform profile
// and reports detection outcome and latency — the protocol code is byte-for-
// byte the same, only the profile changes.
func runPortability(p Params) error {
	t := newTable(p.Out)
	t.row("platform", "N", "round", "slot", "dm bytes", "detected", "latency", "audit")
	t.rule(8)
	for _, prof := range platform.All() {
		eng, runners, err := sim.NewDiagnosticCluster(prof.ClusterConfig())
		if err != nil {
			return err
		}
		col := sim.NewCollector()
		obedient := make([]int, prof.N)
		for id := 1; id <= prof.N; id++ {
			col.HookDiag(id, runners[id])
			obedient[id-1] = id
		}
		const faultRound = 6
		eng.Bus().AddDisturbance(fault.NewTrain(fault.SlotBurst(eng.Schedule(), faultRound, 2, 1)))
		detected := -1
		collect := runners[1].OnOutput
		runners[1].OnOutput = func(out core.RoundOutput) {
			collect(out)
			if detected < 0 && out.ConsHV != nil && out.DiagnosedRound == faultRound && out.ConsHV[2] == core.Faulty {
				detected = out.Round
			}
		}
		if err := eng.RunRounds(20); err != nil {
			return err
		}
		audit := "pass"
		if err := sim.AuditTheorem1(eng, col, obedient, 4, 16); err != nil {
			audit = err.Error()
		}
		latency := "-"
		if detected >= 0 {
			latency = fmt.Sprintf("%d rounds (%v)", detected-faultRound,
				time.Duration(detected-faultRound)*eng.Schedule().RoundLen())
		}
		t.row(prof.Name, strconv.Itoa(prof.N), prof.RoundLen.String(), prof.SlotLen().String(),
			strconv.Itoa(len(runners[1].Last().Send)), strconv.FormatBool(detected >= 0), latency, audit)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nonly the profile changes: same protocol, same audits, N-bit messages everywhere")
	return nil
}

// runScaleResilience sweeps the cluster size and the number of coincident
// faults: inside the N > 2a+2s+b+1 bound every audit passes; violating the
// bound (two malicious voters against one correct voter at N = 4) produces
// observable correctness violations.
func runScaleResilience(p Params) error {
	t := newTable(p.Out)
	t.row("N", "a", "s", "b", "bound holds", "runs", "violations")
	t.rule(7)
	src := rng.NewSource(p.Seed)
	for _, n := range []int{4, 6, 8, 12, 16} {
		// The largest tolerable counts: s alone, b alone, and a mix with
		// one asymmetric fault.
		sMax := (n - 2) / 2
		bMax := n - 2
		cases := [][3]int{
			{0, sMax, 0},
			{0, 0, bMax},
			{1, 0, n - 4},
			{1, (n - 4) / 2, 0},
		}
		for _, c := range cases {
			a, s, b := c[0], c[1], c[2]
			if a < 0 || s < 0 || b < 0 || !(n > 2*a+2*s+b+1) {
				continue
			}
			violations, err := resilienceRuns(n, a, s, b, p.Runs, p.Workers, src)
			if err != nil {
				return err
			}
			t.row(strconv.Itoa(n), strconv.Itoa(a), strconv.Itoa(s), strconv.Itoa(b),
				"yes", strconv.Itoa(p.Runs), strconv.Itoa(violations))
		}
	}
	// Past the original N <= 16 cap: the same fault-mix cases at N = 32 and
	// N = 64 — every node still on the packed fast path — with one fixed
	// schedule per case so the lane-packed batched twin stays draw-identical
	// (see scale_wide.go).
	for _, n := range []int{32, 64} {
		sMax := (n - 2) / 2
		bMax := n - 2
		cases := [][3]int{
			{0, sMax, 0},
			{0, 0, bMax},
			{1, 0, n - 4},
			{1, (n - 4) / 2, 0},
		}
		for _, c := range cases {
			a, s, b := c[0], c[1], c[2]
			violations, err := resilienceRunsWide(n, a, s, b, p, src)
			if err != nil {
				return err
			}
			t.row(strconv.Itoa(n), strconv.Itoa(a), strconv.Itoa(s), strconv.Itoa(b),
				"yes", strconv.Itoa(p.Runs), strconv.Itoa(violations))
		}
	}
	// Bound violation: N=4 with two malicious syndrome sources
	// (4 > 2*2+1 is false) — correct nodes get convicted.
	violations, err := resilienceRuns(4, 0, 2, 0, p.Runs, p.Workers, src)
	if err != nil {
		return err
	}
	t.row("4", "0", "2", "0", "NO", strconv.Itoa(p.Runs), strconv.Itoa(violations))
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\ninside the bound: zero violations; outside it, two colluding random syndromes outvote the single correct witness")
	return nil
}

// resilienceRuns executes `runs` campaigns on an n-node cluster with a
// asymmetric (SOS), s symmetric-malicious and b benign coincident faults and
// returns how many runs violated a Theorem 1 audit. Each run derives its own
// streams (schedule draw and malicious payloads) from the master source, the
// fault mix and its run index, so the count is worker-count independent.
func resilienceRuns(n, a, s, b, runs, workers int, src *rng.Source) (int, error) {
	failed, err := campaign.RunPooled(workers, runs,
		newDiagWorker(Params{}, nil, "scale", src, sim.ClusterConfig{
			N: n, RoundLen: sim.DefaultRoundLen * time.Duration(n) / 4,
		}),
		func(w *diagWorker, run int) (bool, error) {
			cl := w.cl
			// ResetLs below performs the full cluster reset for this run, so
			// only the stream pool needs recycling here. Reseeding pooled
			// streams before the reset is safe: the previous run's
			// disturbances are never delivered again once ResetLs drops them.
			w.rng.Recycle()
			scope := fmt.Sprintf("scale/N%d-a%d-s%d-b%d/run-%d", n, a, s, b, run)
			stream := w.rng.Stream(scope)
			ls := make([]int, n)
			for i := range ls {
				ls[i] = stream.Intn(n)
			}
			if err := cl.ResetLs(ls); err != nil {
				return false, err
			}
			eng, runners := cl.Eng, cl.Runners
			w.col.Reset()
			col := w.col
			for id := 1; id <= n; id++ {
				col.HookDiag(id, runners[id])
			}
			// Assign fault roles to distinct nodes: 1..s malicious, then b
			// benign (corrupted slots in one round), then a asymmetric. Each
			// malicious node gets its own payload stream: the engine consumes
			// them lazily during the run, so they must not share draws with
			// anything else.
			var obedient []int
			node := 1
			for i := 0; i < s; i++ {
				eng.Bus().AddDisturbance(fault.NewMaliciousSyndrome(
					tdma.NodeID(node), w.rng.Stream(fmt.Sprintf("%s/mal-%d", scope, node))))
				node++
			}
			const faultRound = 8
			var bursts []fault.Burst
			for i := 0; i < b; i++ {
				bursts = append(bursts, fault.SlotBurst(eng.Schedule(), faultRound, node, 1))
				node++
			}
			if len(bursts) > 0 {
				eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
			}
			for i := 0; i < a; i++ {
				eng.Bus().AddDisturbance(fault.SOS{
					Sender: tdma.NodeID(node), Victims: []tdma.NodeID{tdma.NodeID((node % n) + 1)},
					FromRound: faultRound, ToRound: faultRound + 1,
				})
				node++
			}
			for id := 1; id <= n; id++ {
				if id > s {
					obedient = append(obedient, id)
				}
			}
			if err := eng.RunRounds(faultRound + 10); err != nil {
				return false, err
			}
			return sim.AuditTheorem1(eng, col, obedient, 4, faultRound+6) != nil, nil
		})
	if err != nil {
		return 0, err
	}
	return countTrue(failed), nil
}

// voteRule recomputes a verdict for target j from a diagnostic matrix under
// one of the ablated voting policies.
type voteRule func(m *core.Matrix, j int) (core.Opinion, bool)

// ablationRules returns the paper's rule and its three ablations. The
// observer parameter matters only for the own-row ablation, which discards
// the observer's locally buffered row to emulate a pure loop-back design.
func ablationRules(observer int) map[string]voteRule {
	return map[string]voteRule{
		"paper (Eqn. 1, self discarded, own row buffered)": func(m *core.Matrix, j int) (core.Opinion, bool) {
			return m.Vote(j)
		},
		"ablate: tie-break to Faulty": func(m *core.Matrix, j int) (core.Opinion, bool) {
			var f, h int
			for _, v := range m.Column(j) {
				switch v {
				case core.Faulty:
					f++
				case core.Healthy:
					h++
				}
			}
			if f+h == 0 {
				return core.Erased, false
			}
			if f >= h {
				return core.Faulty, true
			}
			return core.Healthy, true
		},
		"ablate: trust self-opinion": func(m *core.Matrix, j int) (core.Opinion, bool) {
			votes := append([]core.Opinion{m.Opinion(j, j)}, m.Column(j)...)
			return core.HMaj(votes)
		},
		"ablate: no own-row buffering (loop-back only)": func(m *core.Matrix, j int) (core.Opinion, bool) {
			var votes []core.Opinion
			for row := 1; row <= m.N(); row++ {
				if row == j || row == observer {
					continue
				}
				votes = append(votes, m.Opinion(row, j))
			}
			return core.HMaj(votes)
		},
	}
}

// ablationRuleOrder fixes the rendering order.
var ablationRuleOrder = []string{
	"paper (Eqn. 1, self discarded, own row buffered)",
	"ablate: tie-break to Faulty",
	"ablate: trust self-opinion",
	"ablate: no own-row buffering (loop-back only)",
}

// runAblation replays recorded diagnostic matrices under modified voting
// rules and counts property violations, justifying the design choices of
// Sec. 5:
//
//   - tie-break to Healthy (Eqn. 1's "else 1") — ties produced by a
//     malicious vote against a thinned column must not convict;
//   - discarding the diagnosed node's self-opinion — the only row that can
//     legally differ between obedient observers (an asymmetric sender's own
//     dissemination) must not influence its own verdict, or observers
//     diverge;
//   - buffering one's own row locally (Lemma 3) — without it a blackout
//     leaves every column undecidable.
//
// The scenario stays within the fault hypothesis for the paper's rules, so
// the paper row must be spotless while each ablation breaks a property.
func runAblation(p Params) error {
	eng, runners, err := sim.NewDiagnosticCluster(sim.ClusterConfig{
		Ls: sim.Staircase(4), AllSendCurrRound: true,
	})
	if err != nil {
		return err
	}
	stream := rng.NewSource(p.Seed).Stream("ablate")
	// Malicious syndromes from node 2 up to round 13; benign single-slot
	// faults on node 3 (each burst erases node 3's row for the preceding
	// diagnosed round and makes round r itself benign-faulty); a double
	// asymmetric SOS episode of node 3 at rounds 14/15 (honest voters only,
	// so the self-opinion divergence is deterministic); a blackout at
	// rounds 18-19.
	mal := fault.NewMaliciousSyndrome(2, stream)
	mal.ToRound = 13
	eng.Bus().AddDisturbance(mal)
	var bursts []fault.Burst
	for _, r := range []int{6, 8, 10, 12} {
		bursts = append(bursts, fault.SlotBurst(eng.Schedule(), r, 3, 1))
	}
	bursts = append(bursts, fault.Blackout(eng.Schedule(), 18, 2))
	eng.Bus().AddDisturbance(fault.NewTrain(bursts...))
	eng.Bus().AddDisturbance(fault.SOS{Sender: 3, Victims: []tdma.NodeID{1, 2}, FromRound: 14, ToRound: 15})
	eng.Bus().AddDisturbance(fault.SOS{Sender: 3, Victims: []tdma.NodeID{4}, FromRound: 15, ToRound: 16})

	// Collect every observer's matrix and agreed health vector per
	// diagnosed round; the paper rule is scored on the protocol's actual
	// ConsHV (which includes the collision-detector fallback of Lemma 3),
	// the ablations on re-votes over the recorded matrices.
	type obsRecord struct {
		m  *core.Matrix
		hv core.Syndrome
	}
	records := make(map[int]map[int]obsRecord) // diagRound -> observer -> record
	for id := 1; id <= 4; id++ {
		id := id
		runners[id].OnOutput = func(out core.RoundOutput) {
			if out.Matrix == nil {
				return
			}
			byObs := records[out.DiagnosedRound]
			if byObs == nil {
				byObs = make(map[int]obsRecord)
				records[out.DiagnosedRound] = byObs
			}
			byObs[id] = obsRecord{m: out.Matrix, hv: out.ConsHV}
		}
	}
	if err := eng.RunRounds(26); err != nil {
		return err
	}

	type counters struct{ wrongConvictions, missedFaults, undecided, inconsistent int }
	score := make(map[string]*counters, len(ablationRuleOrder))
	for _, name := range ablationRuleOrder {
		score[name] = &counters{}
	}

	verdictOf := func(name string, obs int, rec obsRecord, j int) (core.Opinion, bool) {
		if name == ablationRuleOrder[0] {
			// Paper rule: the value the protocol actually agreed on.
			return rec.hv[j], true
		}
		return ablationRules(obs)[name](rec.m, j)
	}

	for d := 4; d <= 22; d++ {
		byObs := records[d]
		truth := eng.Truth(d)
		if byObs == nil || truth == nil {
			continue
		}
		for _, name := range ablationRuleOrder {
			c := score[name]
			for j := 1; j <= 4; j++ {
				// Verdict at every observer; check agreement across them.
				var ref core.Opinion
				refSet, disagree := false, false
				for obs := 1; obs <= 4; obs++ {
					rec, ok := byObs[obs]
					if !ok {
						continue
					}
					v, decided := verdictOf(name, obs, rec, j)
					if !decided {
						v = core.Erased
					}
					if !refSet {
						ref, refSet = v, true
					} else if v != ref {
						disagree = true
					}
				}
				if disagree {
					c.inconsistent++
				}
				// Property checks at observer 1 (representative).
				v, decided := verdictOf(name, 1, byObs[1], j)
				switch {
				case !decided:
					c.undecided++
				case truth[j] == tdma.OutcomeCorrect && v == core.Faulty:
					c.wrongConvictions++
				case truth[j] == tdma.OutcomeBenign && v == core.Healthy:
					c.missedFaults++
				}
			}
		}
	}

	t := newTable(p.Out)
	t.row("voting rule", "wrong convictions", "missed faults", "undecided", "inconsistent")
	t.rule(5)
	for _, name := range ablationRuleOrder {
		c := score[name]
		t.row(name, strconv.Itoa(c.wrongConvictions), strconv.Itoa(c.missedFaults),
			strconv.Itoa(c.undecided), strconv.Itoa(c.inconsistent))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(p.Out, "\nonly the paper's combination of rules leaves every property intact")
	return nil
}
