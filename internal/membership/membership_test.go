package membership

import (
	"fmt"
	"testing"

	"ttdiag/internal/core"
)

func cfg(id int) core.Config {
	return core.Config{
		N: 4, ID: id, L: id - 1, SendCurrRound: true, AllSendCurrRound: true,
		PR: core.PRConfig{PenaltyThreshold: 1 << 40, RewardThreshold: 1 << 40},
	}
}

func TestNewForcesMembershipMode(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Protocol().Config().Mode; got != core.ModeMembership {
		t.Fatalf("mode = %d, want membership", got)
	}
}

func TestNewRejectsDiagnosticMode(t *testing.T) {
	c := cfg(1)
	c.Mode = core.ModeDiagnostic
	if _, err := New(c); err == nil {
		t.Fatal("diagnostic mode accepted")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	c := cfg(1)
	c.N = 1
	if _, err := New(c); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestInitialView(t *testing.T) {
	s, err := New(cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.ID != 0 || v.FormedAtRound != -1 {
		t.Fatalf("initial view = %+v", v)
	}
	if got := fmt.Sprint(v.Members); got != "[1 2 3 4]" {
		t.Fatalf("initial members = %v", got)
	}
	for j := 1; j <= 4; j++ {
		if !v.Contains(j) {
			t.Fatalf("initial view missing %d", j)
		}
	}
	if v.Contains(5) {
		t.Fatal("view contains node 5")
	}
}

func TestViewIsACopy(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	v := s.View()
	v.Members[0] = 99
	if s.View().Members[0] != 1 {
		t.Fatal("View() leaked internal storage")
	}
}

// step advances the service through one round with fabricated inputs that
// mimic the real dissemination pipeline: validityFaulty marks senders whose
// messages the node's controller locally detected as faulty this round;
// rowsAccuse marks nodes that all received peer syndromes accuse (as they
// would one round after a fault, once the peers' local syndromes carrying
// the accusation arrive).
func step(t *testing.T, s *Service, round int, validityFaulty, rowsAccuse []int) Output {
	t.Helper()
	in := core.RoundInput{
		Round:    round,
		DMs:      make([]core.Syndrome, 5),
		Validity: core.NewSyndrome(4, core.Healthy),
	}
	for _, f := range validityFaulty {
		in.Validity[f] = core.Faulty
	}
	row := core.NewSyndrome(4, core.Healthy)
	for _, f := range rowsAccuse {
		row[f] = core.Faulty
	}
	for j := 1; j <= 4; j++ {
		if in.Validity[j] == core.Healthy {
			in.DMs[j] = row.Clone()
		}
	}
	out, err := s.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runFaultEpisode drives the service through 12 rounds in which the given
// nodes fail benignly in round 4 (observed in the local validity bits) and
// the peers' syndromes accusing them arrive in round 5.
func runFaultEpisode(t *testing.T, s *Service, faulty ...int) (changedRounds []int) {
	t.Helper()
	for round := 0; round < 12; round++ {
		var out Output
		switch round {
		case 4:
			out = step(t, s, round, faulty, nil)
		case 5:
			out = step(t, s, round, nil, faulty)
		default:
			out = step(t, s, round, nil, nil)
		}
		if out.ViewChanged {
			changedRounds = append(changedRounds, round)
		}
	}
	return changedRounds
}

func TestViewChangeOnConsistentFault(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	changed := runFaultEpisode(t, s, 3)
	if len(changed) != 1 {
		t.Fatalf("view changed in rounds %v, want exactly one change", changed)
	}
	v := s.View()
	if got := fmt.Sprint(v.Members); got != "[1 2 4]" {
		t.Fatalf("members = %v", got)
	}
	if v.ID != 1 {
		t.Fatalf("view ID = %d, want 1", v.ID)
	}
	if v.FormedAtRound != changed[0] {
		t.Fatalf("FormedAtRound = %d, change observed at %d", v.FormedAtRound, changed[0])
	}
	// The accusing rows arrive at round 5, so the vote convicting node 3
	// happens in that same execution round.
	if changed[0] != 5 {
		t.Fatalf("view formed at round %d, want 5", changed[0])
	}
}

func TestExclusionIsPermanent(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	runFaultEpisode(t, s, 3)
	// Eight further clean rounds already ran inside the episode; more:
	for round := 12; round < 24; round++ {
		step(t, s, round, nil, nil)
	}
	if s.View().Contains(3) {
		t.Fatal("excluded node returned to the view")
	}
	if s.View().ID != 1 {
		t.Fatalf("view ID = %d after recovery rounds, want 1", s.View().ID)
	}
}

func TestMultipleExclusionsInOneRound(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	changed := runFaultEpisode(t, s, 3, 4)
	v := s.View()
	if got := fmt.Sprint(v.Members); got != "[1 2]" {
		t.Fatalf("members = %v", got)
	}
	if v.ID != 1 || len(changed) != 1 {
		t.Fatalf("two coincident exclusions must form one view: ID=%d changes=%v", v.ID, changed)
	}
}

func TestStepPropagatesProtocolError(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Step(core.RoundInput{Round: 7})
	if err == nil {
		t.Fatal("bad input accepted")
	}
}

func TestViewHistory(t *testing.T) {
	s, err := New(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	h := s.History()
	if len(h) != 1 || h[0].ID != 0 {
		t.Fatalf("initial history = %+v", h)
	}
	runFaultEpisode(t, s, 3)
	// Second episode excluding node 4.
	for round := 12; round < 24; round++ {
		switch round {
		case 16:
			step(t, s, round, []int{4}, nil)
		case 17:
			step(t, s, round, nil, []int{4})
		default:
			step(t, s, round, nil, nil)
		}
	}
	h = s.History()
	if len(h) != 3 {
		t.Fatalf("history has %d views, want 3: %+v", len(h), h)
	}
	if fmt.Sprint(h[0].Members) != "[1 2 3 4]" ||
		fmt.Sprint(h[1].Members) != "[1 2 4]" ||
		fmt.Sprint(h[2].Members) != "[1 2]" {
		t.Fatalf("history members wrong: %+v", h)
	}
	for i, v := range h {
		if v.ID != i {
			t.Fatalf("history IDs not sequential: %+v", h)
		}
	}
	// History returns copies.
	h[1].Members[0] = 99
	if s.History()[1].Members[0] != 1 {
		t.Fatal("History leaked internal storage")
	}
}
