// Package membership extends the diagnostic protocol into the group
// membership service of Sec. 7. The underlying core protocol runs in
// membership mode (analysis before dissemination, minority accusations); this
// package adds the view bookkeeping: a new unique view is formed whenever a
// member is consistently deemed faulty, and — because the consistent health
// vector is agreed by every obedient node — all obedient nodes install
// identical views in identical rounds (view synchrony over the diagnosed
// prefix of messages).
package membership

import (
	"fmt"
	"math/bits"
	"sort"

	"ttdiag/internal/core"
)

// View is one membership view: the set of nodes that have received the same
// set of messages (one clique).
type View struct {
	// ID increases by one per view change; the initial view has ID 0.
	ID int
	// Members are the node IDs in the view, ascending.
	Members []int
	// FormedAtRound is the (absolute) round in which the view was installed;
	// -1 for the initial view.
	FormedAtRound int
}

// Contains reports whether node j is in the view.
func (v View) Contains(j int) bool {
	for _, m := range v.Members {
		if m == j {
			return true
		}
	}
	return false
}

// clone returns a deep copy so callers can hold Views across steps.
func (v View) clone() View {
	return View{ID: v.ID, Members: append([]int(nil), v.Members...), FormedAtRound: v.FormedAtRound}
}

// Output is the result of one membership-service round.
type Output struct {
	// Diag is the underlying diagnostic round output (including minority
	// accusations raised in this round).
	Diag core.RoundOutput
	// ViewChanged reports whether a new view was installed in this round.
	ViewChanged bool
	// View is the current view after the round.
	View View
}

// Service is the per-node membership service: the modified diagnostic
// protocol plus view management. Create one per node and call Step once per
// TDMA round, exactly like core.Protocol.
type Service struct {
	proto   *core.Protocol
	view    View
	history []View
	out     []bool // out[j]: node j has been excluded from the membership
	// outMask mirrors out as a bit mask when the underlying protocol runs
	// the packed representation, so the per-round exclusion check is two
	// word operations instead of an N-entry scan.
	outMask uint64
}

// New builds the membership service for one node. The configuration's Mode
// is forced to core.ModeMembership.
func New(cfg core.Config) (*Service, error) {
	return newService(cfg, false)
}

// NewScalar is New pinned to the scalar reference protocol representation
// regardless of N (see core.NewScalarProtocol); differential tooling uses it
// to run the reference path on packed-eligible sizes.
func NewScalar(cfg core.Config) (*Service, error) {
	return newService(cfg, true)
}

func newService(cfg core.Config, forceScalar bool) (*Service, error) {
	if cfg.Mode != 0 && cfg.Mode != core.ModeMembership {
		return nil, fmt.Errorf("membership: config mode must be ModeMembership, got %d", cfg.Mode)
	}
	cfg.Mode = core.ModeMembership
	build := core.NewProtocol
	if forceScalar {
		build = core.NewScalarProtocol
	}
	proto, err := build(cfg)
	if err != nil {
		return nil, err
	}
	members := make([]int, cfg.N)
	for j := 1; j <= cfg.N; j++ {
		members[j-1] = j
	}
	return &Service{
		proto: proto,
		view:  View{ID: 0, Members: members, FormedAtRound: -1},
		out:   make([]bool, cfg.N+1),
	}, nil
}

// Protocol exposes the underlying diagnostic protocol.
func (s *Service) Protocol() *core.Protocol { return s.proto }

// Reset returns the service to its freshly constructed state — the
// underlying protocol restarts its warm-up, the initial full view is
// reinstalled and the view history is cleared — so one instance can be
// reused across campaign repetitions. Views handed out earlier are
// unaffected (View and History return copies).
func (s *Service) Reset() {
	s.proto.Reset()
	n := s.proto.Config().N
	members := make([]int, n)
	for j := 1; j <= n; j++ {
		members[j-1] = j
	}
	s.view = View{ID: 0, Members: members, FormedAtRound: -1}
	s.history = s.history[:0]
	for j := range s.out {
		s.out[j] = false
	}
	s.outMask = 0
}

// View returns the current view.
func (s *Service) View() View { return s.view.clone() }

// History returns every view installed so far, oldest first, including the
// initial full view. Obedient nodes hold identical histories (view
// synchrony applies to every transition).
func (s *Service) History() []View {
	out := make([]View, 0, len(s.history)+1)
	for _, v := range s.history {
		out = append(out, v.clone())
	}
	return append(out, s.view.clone())
}

// Step executes one round of the membership service. Like
// core.Protocol.Step, the input's slices stay caller-owned.
//
//ttdiag:noretain params
func (s *Service) Step(in core.RoundInput) (Output, error) {
	diag, err := s.proto.Step(in)
	if err != nil {
		return Output{}, err
	}
	return s.finish(diag), nil
}

// StepPacked executes one round on packed observations (the zero-conversion
// entry of the hot path, available when the underlying protocol runs the
// packed representation — see core.Protocol.StepPacked). The input's slices
// stay caller-owned.
//
//ttdiag:noretain params
func (s *Service) StepPacked(in core.PackedRoundInput) (Output, error) {
	diag, err := s.proto.StepPacked(in)
	if err != nil {
		return Output{}, err
	}
	return s.finish(diag), nil
}

// finish folds one diagnostic round into the view bookkeeping.
func (s *Service) finish(diag core.RoundOutput) Output {
	out := Output{Diag: diag}
	changed := false
	if diag.ConsHV != nil {
		if s.proto.Packed() {
			// Newly convicted members in two word ops: known-Faulty entries
			// not yet excluded.
			fresh := (diag.ConsHVBits.Known &^ diag.ConsHVBits.Op) &^ s.outMask
			if fresh != 0 {
				changed = true
				s.outMask |= fresh
				for rem := fresh; rem != 0; rem &= rem - 1 {
					s.out[bits.TrailingZeros64(rem)+1] = true
				}
			}
		} else {
			for j := 1; j <= s.proto.Config().N; j++ {
				if diag.ConsHV[j] == core.Faulty && !s.out[j] {
					s.out[j] = true
					changed = true
				}
			}
		}
	}
	if changed {
		var members []int
		for j := 1; j <= s.proto.Config().N; j++ {
			if !s.out[j] {
				members = append(members, j)
			}
		}
		sort.Ints(members)
		s.history = append(s.history, s.view)
		s.view = View{ID: s.view.ID + 1, Members: members, FormedAtRound: diag.Round}
	}
	out.ViewChanged = changed
	out.View = s.view.clone()
	return out
}
