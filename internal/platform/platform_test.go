package platform

import (
	"testing"
	"time"

	"ttdiag/internal/fault"
	"ttdiag/internal/sim"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.SlotLen() <= 0 {
			t.Errorf("%s: slot length %v", p.Name, p.SlotLen())
		}
		if len(p.SlotLens) == 0 && p.SlotLen()*time.Duration(p.N) != p.RoundLen {
			t.Errorf("%s: slots do not tile the round", p.Name)
		}
	}
}

func TestProfileNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range All() {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	if !seen["TTP/C"] || !seen["FlexRay"] || !seen["SAFEbus"] || !seen["TT-Ethernet"] {
		t.Errorf("missing profiles: %v", seen)
	}
}

func TestSpreadScheduleMixesSendCurrRound(t *testing.T) {
	for _, p := range All() {
		cfg := p.ClusterConfig()
		scr, nonSCR := 0, 0
		for i, l := range cfg.Ls {
			if l < i+1 {
				scr++
			} else {
				nonSCR++
			}
		}
		if scr == 0 || nonSCR == 0 {
			t.Errorf("%s: schedule %v does not mix send_curr_round values", p.Name, cfg.Ls)
		}
	}
}

// TestProtocolPortableAcrossProfiles runs the identical fault scenario on
// every platform profile and audits Theorem 1 — the protocol code is the
// same on all platforms, as Sec. 10 requires.
func TestProtocolPortableAcrossProfiles(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			eng, runners, err := sim.NewDiagnosticCluster(p.ClusterConfig())
			if err != nil {
				t.Fatal(err)
			}
			col := sim.NewCollector()
			obedient := make([]int, p.N)
			for id := 1; id <= p.N; id++ {
				col.HookDiag(id, runners[id])
				obedient[id-1] = id
			}
			eng.Bus().AddDisturbance(fault.NewTrain(
				fault.SlotBurst(eng.Schedule(), 6, 2, 1),
				fault.Blackout(eng.Schedule(), 10, 1),
			))
			if err := eng.RunRounds(20); err != nil {
				t.Fatal(err)
			}
			if err := sim.AuditTheorem1(eng, col, obedient, 4, 16); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiagnosticMessageBandwidth checks the Sec. 10 bandwidth claim on every
// profile: the diagnostic message is N bits (⌈N/8⌉ bytes).
func TestDiagnosticMessageBandwidth(t *testing.T) {
	for _, p := range All() {
		eng, runners, err := sim.NewDiagnosticCluster(p.ClusterConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunRounds(2); err != nil {
			t.Fatal(err)
		}
		want := (p.N + 7) / 8
		if got := len(runners[1].Last().Send); got != want {
			t.Errorf("%s: diagnostic message is %d bytes, want %d", p.Name, got, want)
		}
	}
}

func TestSAFEbusHeterogeneousTable(t *testing.T) {
	p := SAFEbus()
	if len(p.SlotLens) != p.N {
		t.Fatalf("SAFEbus slot table has %d entries", len(p.SlotLens))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.SlotLen(); got != 50*time.Microsecond {
		t.Fatalf("shortest slot = %v", got)
	}
	eng, _, err := sim.NewDiagnosticCluster(p.ClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eng.Schedule().Uniform() {
		t.Fatal("heterogeneous table not applied")
	}
	if eng.Schedule().RoundLen() != p.RoundLen {
		t.Fatalf("round length %v", eng.Schedule().RoundLen())
	}
}

func TestProfileValidateBadSlotTables(t *testing.T) {
	p := SAFEbus()
	p.SlotLens = p.SlotLens[:3]
	if err := p.Validate(); err == nil {
		t.Error("short slot table accepted")
	}
	p = SAFEbus()
	p.SlotLens[0] = 0
	if err := p.Validate(); err == nil {
		t.Error("zero slot accepted")
	}
	p = SAFEbus()
	p.SlotLens[0] += time.Microsecond
	if err := p.Validate(); err == nil {
		t.Error("non-tiling slot table accepted")
	}
}
