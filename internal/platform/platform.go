// Package platform provides representative configuration profiles of the
// time-triggered platforms the paper targets (Sec. 1 and Sec. 10): FlexRay,
// TTP/C, SAFEbus and TT-Ethernet. The add-on protocol only consumes
// observables every TT platform provides (validity bits, a collision
// detector, the schedule constants l_i / send_curr_round_i), so the same
// protocol code must run unchanged on all profiles — which the portability
// experiment and tests assert.
//
// The profiles are representative syntheses of the public platform
// characteristics (cluster sizes and cycle lengths), not bit-level models of
// the wire protocols: the diagnostic protocol never looks below the
// interface-variable abstraction, so nothing below it matters for the
// reproduction.
package platform

import (
	"fmt"
	"time"

	"ttdiag/internal/sim"
)

// Profile describes one TT platform deployment.
type Profile struct {
	// Name of the platform.
	Name string
	// N is a typical cluster size on the platform.
	N int
	// RoundLen is a typical TDMA round (communication cycle) length.
	RoundLen time.Duration
	// SlotLens optionally declares heterogeneous per-slot frame lengths
	// (ARINC-659-style tables); when set it overrides the uniform division
	// of RoundLen and must sum to it.
	SlotLens []time.Duration
	// BuiltinMembership records whether the platform ships its own
	// membership service (Sec. 1: FlexRay, SAFEbus and TT-Ethernet do not,
	// which is what makes the add-on protocol attractive there).
	BuiltinMembership bool
	// Notes is a one-line characterisation.
	Notes string
}

// FlexRay returns a representative FlexRay deployment: automotive X-by-wire
// cluster, 5 ms communication cycle, no standardized membership service.
func FlexRay() Profile {
	return Profile{
		Name:     "FlexRay",
		N:        10,
		RoundLen: 5 * time.Millisecond,
		Notes:    "automotive; static segment slots; no built-in membership",
	}
}

// TTPC returns a representative TTP/C deployment: the paper's prototype
// dimensions (layered TTP, 4 nodes, 2.5 ms round) with the platform's
// built-in membership available as a baseline.
func TTPC() Profile {
	return Profile{
		Name:              "TTP/C",
		N:                 4,
		RoundLen:          2500 * time.Microsecond,
		BuiltinMembership: true,
		Notes:             "the paper's prototype; built-in single-fault membership",
	}
}

// SAFEbus returns a representative SAFEbus (ARINC 659) deployment: avionics
// backplane, small frame times.
func SAFEbus() Profile {
	// ARINC 659 frames vary per message; the table below sums to the 1 ms
	// frame and exercises the heterogeneous-slot support.
	return Profile{
		Name:     "SAFEbus",
		N:        8,
		RoundLen: 1 * time.Millisecond,
		SlotLens: []time.Duration{
			200 * time.Microsecond, 100 * time.Microsecond,
			150 * time.Microsecond, 50 * time.Microsecond,
			150 * time.Microsecond, 100 * time.Microsecond,
			150 * time.Microsecond, 100 * time.Microsecond,
		},
		Notes: "avionics backplane; paired BIUs; heterogeneous frame table",
	}
}

// TTEthernet returns a representative TT-Ethernet deployment: larger cluster
// and cycle.
func TTEthernet() Profile {
	return Profile{
		Name:     "TT-Ethernet",
		N:        16,
		RoundLen: 8 * time.Millisecond,
		Notes:    "switched TT traffic class; no built-in membership",
	}
}

// All returns every profile.
func All() []Profile {
	return []Profile{TTPC(), FlexRay(), SAFEbus(), TTEthernet()}
}

// Validate checks that the profile yields a legal TDMA schedule.
func (p Profile) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("platform: %s: need at least 2 nodes, got %d", p.Name, p.N)
	}
	if p.RoundLen <= 0 {
		return fmt.Errorf("platform: %s: round length %v", p.Name, p.RoundLen)
	}
	if len(p.SlotLens) > 0 {
		if len(p.SlotLens) != p.N {
			return fmt.Errorf("platform: %s: %d slot lengths for %d nodes", p.Name, len(p.SlotLens), p.N)
		}
		var sum time.Duration
		for _, l := range p.SlotLens {
			if l <= 0 {
				return fmt.Errorf("platform: %s: non-positive slot length", p.Name)
			}
			sum += l
		}
		if sum != p.RoundLen {
			return fmt.Errorf("platform: %s: slot lengths sum to %v, round is %v", p.Name, sum, p.RoundLen)
		}
		return nil
	}
	if p.RoundLen%time.Duration(p.N) != 0 {
		return fmt.Errorf("platform: %s: round %v not divisible into %d slots", p.Name, p.RoundLen, p.N)
	}
	return nil
}

// SlotLen returns the sending-slot length of the profile (the shortest slot
// on heterogeneous tables).
func (p Profile) SlotLen() time.Duration {
	if len(p.SlotLens) > 0 {
		min := p.SlotLens[0]
		for _, l := range p.SlotLens[1:] {
			if l < min {
				min = l
			}
		}
		return min
	}
	return p.RoundLen / time.Duration(p.N)
}

// ClusterConfig builds a simulation configuration for the profile with the
// given penalty/reward settings left zero (detection-only defaults).
func (p Profile) ClusterConfig() sim.ClusterConfig {
	return sim.ClusterConfig{
		N:        p.N,
		RoundLen: p.RoundLen,
		SlotLens: p.SlotLens,
		// Unconstrained prototype-style scheduling: job positions spread
		// across the round, deliberately mixing send_curr_round values to
		// exercise the portable (k-3) path.
		Ls: spreadSchedule(p.N),
	}
}

// spreadSchedule assigns job positions that alternate between "right after
// round start" and "late in the round", giving a mix of send_curr_round
// truth values like a real integration would.
func spreadSchedule(n int) []int {
	ls := make([]int, n)
	for i := range ls {
		if i%2 == 0 {
			ls[i] = 0
		} else {
			ls[i] = n - 1
		}
	}
	return ls
}
