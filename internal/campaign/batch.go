package campaign

import "fmt"

// RunBatchedWith schedules runs repetitions as gangs of up to `gang` runs
// each and fans the gangs across the worker pool: gang g covers the
// contiguous run indices [g·gang, min((g+1)·gang, runs)) — the final gang is
// ragged when gang does not divide runs. The intended use is lane-packed
// batched execution, where one worker state advances a whole gang of
// repetitions at once (e.g. sim.BatchDiagCluster with one lane per run).
//
// fn receives the worker state, the gang's base run index and its width, and
// writes one result per run into out (out[i] belongs to run base+i; the
// slice views disjoint windows of the campaign result, so no locking is
// needed). The determinism contract of RunPooledWith carries over: fn must
// derive each run's randomness from base+i, never from the gang or worker
// identity, so the campaign result is bit-identical at every worker count
// AND every gang width. OnRunDone is invoked once per run of a completed
// gang, in run order within the gang.
func RunBatchedWith[S, T any](o Options, runs, gang int, newState func() (S, error), fn func(state S, base, width int, out []T) error) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("campaign: negative run count %d", runs)
	}
	if gang < 1 {
		return nil, fmt.Errorf("campaign: gang width %d must be >= 1", gang)
	}
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	results := make([]T, runs)
	gangs := (runs + gang - 1) / gang
	inner := o
	inner.OnRunDone = nil
	_, err := RunPooledWith(inner, gangs, newState, func(state S, g int) (struct{}, error) {
		base := g * gang
		width := gang
		if base+width > runs {
			width = runs - base
		}
		if err := fn(state, base, width, results[base:base+width:base+width]); err != nil {
			return struct{}{}, fmt.Errorf("gang of runs %d-%d: %w", base, base+width-1, err)
		}
		if o.OnRunDone != nil {
			for i := 0; i < width; i++ {
				o.OnRunDone(base + i)
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
