// Package campaign is the parallel Monte-Carlo campaign engine: it fans
// independent repetitions of a fault-injection experiment across a bounded
// worker pool while keeping the aggregate result bit-identical to the serial
// execution at any worker count.
//
// The determinism contract has two halves, and both are the caller's and the
// engine's job respectively:
//
//   - The caller's run function must be self-contained: it derives every
//     random stream it needs from the master seed and its own run index
//     (e.g. rng.Source.Stream("sec8-bursts/run-7")), shares no mutable state
//     with other runs, and never reads scheduling-dependent inputs. Named
//     stream derivation is order-independent by construction, so run 7 draws
//     the same sequence whether it executes first, last or concurrently.
//   - The engine writes each run's result into a pre-sized slice at the
//     run's own index and aggregates only after every worker has joined, so
//     result order — and therefore every downstream summary statistic and
//     rendered row — never depends on goroutine scheduling.
//
// Workers <= 0 selects GOMAXPROCS workers; Workers == 1 bypasses the pool
// entirely and recovers the exact serial execution.
package campaign

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

var clampLogOnce sync.Once

// Workers resolves a worker-count setting: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS), and explicit requests are clamped to
// GOMAXPROCS — workers beyond the schedulable CPUs only add contention, and
// the results are bit-identical at any worker count anyway. The first clamp
// is logged once per process so an over-provisioned configuration is visible.
func Workers(workers int) int {
	max := runtime.GOMAXPROCS(0)
	if workers <= 0 {
		return max
	}
	if workers > max {
		clampLogOnce.Do(func() {
			log.Printf("campaign: clamping %d requested workers to GOMAXPROCS=%d", workers, max)
		})
		return max
	}
	return workers
}

// Run executes fn(0) .. fn(runs-1) on a pool of the given number of workers
// and returns the results indexed by run. The result slice is identical for
// every worker count as long as fn is a pure function of its run index (see
// the package comment for the full contract).
//
// On failure the first error — the error of the lowest-indexed failing run
// that was observed — is returned and the remaining runs are cancelled;
// already-running repetitions finish or fail on their own, but no new run is
// dispatched. With workers == 1 the runs execute serially on the calling
// goroutine and the first error aborts the loop immediately, exactly like
// the pre-engine serial campaign loops.
func Run[T any](workers, runs int, fn func(run int) (T, error)) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("campaign: negative run count %d", runs)
	}
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	workers = Workers(workers)
	if workers > runs {
		workers = runs
	}
	results := make([]T, runs)
	if workers <= 1 {
		for run := 0; run < runs; run++ {
			v, err := fn(run)
			if err != nil {
				return nil, fmt.Errorf("campaign: run %d: %w", run, err)
			}
			results[run] = v
		}
		return results, nil
	}

	var (
		jobs = make(chan int)
		quit = make(chan struct{})
		wg   sync.WaitGroup

		mu       sync.Mutex
		once     sync.Once
		firstRun = -1
		firstErr error
	)
	fail := func(run int, err error) {
		mu.Lock()
		if firstRun < 0 || run < firstRun {
			firstRun, firstErr = run, err
		}
		mu.Unlock()
		once.Do(func() { close(quit) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case run, ok := <-jobs:
					if !ok {
						return
					}
					v, err := fn(run)
					if err != nil {
						fail(run, err)
						return
					}
					// Index-addressed write: no two runs share an index, so
					// the slice needs no lock and the final content is
					// independent of which worker executed which run.
					results[run] = v
				case <-quit:
					return
				}
			}
		}()
	}
dispatch:
	for run := 0; run < runs; run++ {
		select {
		case jobs <- run:
		case <-quit:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("campaign: run %d: %w", firstRun, firstErr)
	}
	return results, nil
}

// RunPooled is Run with per-worker reusable state: newState builds one state
// value per worker (serially, before any run starts), and every repetition
// dispatched to that worker receives the same state value. The intended use
// is a reusable simulation cluster that each repetition resets instead of
// rebuilding, which removes the per-run wiring allocations from the campaign
// hot path.
//
// The determinism contract of Run carries over unchanged, with one addition:
// fn must return the state to a scenario-independent condition before (or
// after) each repetition — typically by calling the cluster's Reset as its
// first action — so that a run's result never depends on which runs the
// worker executed before it.
func RunPooled[S, T any](workers, runs int, newState func() (S, error), fn func(state S, run int) (T, error)) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("campaign: negative run count %d", runs)
	}
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state constructor")
	}
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	workers = Workers(workers)
	if workers > runs {
		workers = runs
	}
	results := make([]T, runs)
	if workers <= 1 {
		state, err := newState()
		if err != nil {
			return nil, fmt.Errorf("campaign: worker 0 state: %w", err)
		}
		for run := 0; run < runs; run++ {
			v, err := fn(state, run)
			if err != nil {
				return nil, fmt.Errorf("campaign: run %d: %w", run, err)
			}
			results[run] = v
		}
		return results, nil
	}

	states := make([]S, workers)
	for w := 0; w < workers; w++ {
		state, err := newState()
		if err != nil {
			return nil, fmt.Errorf("campaign: worker %d state: %w", w, err)
		}
		states[w] = state
	}
	var (
		jobs = make(chan int)
		quit = make(chan struct{})
		wg   sync.WaitGroup

		mu       sync.Mutex
		once     sync.Once
		firstRun = -1
		firstErr error
	)
	fail := func(run int, err error) {
		mu.Lock()
		if firstRun < 0 || run < firstRun {
			firstRun, firstErr = run, err
		}
		mu.Unlock()
		once.Do(func() { close(quit) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(state S) {
			defer wg.Done()
			for {
				select {
				case run, ok := <-jobs:
					if !ok {
						return
					}
					v, err := fn(state, run)
					if err != nil {
						fail(run, err)
						return
					}
					results[run] = v
				case <-quit:
					return
				}
			}
		}(states[w])
	}
dispatchPooled:
	for run := 0; run < runs; run++ {
		select {
		case jobs <- run:
		case <-quit:
			break dispatchPooled
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("campaign: run %d: %w", firstRun, firstErr)
	}
	return results, nil
}
