// Package campaign is the parallel Monte-Carlo campaign engine: it fans
// independent repetitions of a fault-injection experiment across a bounded
// worker pool while keeping the aggregate result bit-identical to the serial
// execution at any worker count.
//
// The determinism contract has two halves, and both are the caller's and the
// engine's job respectively:
//
//   - The caller's run function must be self-contained: it derives every
//     random stream it needs from the master seed and its own run index
//     (e.g. rng.Source.Stream("sec8-bursts/run-7")), shares no mutable state
//     with other runs, and never reads scheduling-dependent inputs. Named
//     stream derivation is order-independent by construction, so run 7 draws
//     the same sequence whether it executes first, last or concurrently.
//   - The engine writes each run's result into a pre-sized slice at the
//     run's own index and aggregates only after every worker has joined, so
//     result order — and therefore every downstream summary statistic and
//     rendered row — never depends on goroutine scheduling.
//
// Workers <= 0 selects GOMAXPROCS workers; Workers == 1 bypasses the pool
// entirely and recovers the exact serial execution.
package campaign

import (
	"fmt"
	"log"
	"runtime"
	"sync"
)

var clampLogOnce sync.Once

// Workers resolves a worker-count setting: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS), and explicit requests are clamped to
// GOMAXPROCS — workers beyond the schedulable CPUs only add contention, and
// the results are bit-identical at any worker count anyway. The first clamp
// is logged once per process so an over-provisioned configuration is
// visible; library users who want to observe or silence the clamp instead
// pass Options.OnClamp to RunWith/RunPooledWith.
func Workers(workers int) int {
	return resolveWorkers(workers, nil)
}

// resolveWorkers clamps the requested worker count, reporting a clamp to
// onClamp when provided and falling back to the once-per-process log
// otherwise.
func resolveWorkers(workers int, onClamp func(requested, max int)) int {
	max := runtime.GOMAXPROCS(0)
	if workers <= 0 {
		return max
	}
	if workers > max {
		if onClamp != nil {
			onClamp(workers, max)
		} else {
			clampLogOnce.Do(func() {
				log.Printf("campaign: clamping %d requested workers to GOMAXPROCS=%d", workers, max)
			})
		}
		return max
	}
	return workers
}

// Options configures a campaign beyond the worker count. The zero value is
// valid and matches the plain Run/RunPooled behaviour.
type Options struct {
	// Workers bounds the worker pool: <= 0 means GOMAXPROCS, 1 recovers
	// serial execution; requests beyond GOMAXPROCS are clamped.
	Workers int
	// OnClamp, when non-nil, observes a worker-count clamp instead of the
	// once-per-process default log — library users and tests inject it to
	// count or silence the warning.
	OnClamp func(requested, max int)
	// OnRunDone, when non-nil, is invoked after every successfully completed
	// run with its run index. With more than one worker it is called
	// concurrently from the worker goroutines, in completion order — which
	// is scheduling-dependent, so OnRunDone is for wall-clock progress
	// reporting (see metrics.Progress.RunDone) and must never feed
	// deterministic outputs.
	OnRunDone func(run int)
}

// Run executes fn(0) .. fn(runs-1) on a pool of the given number of workers
// and returns the results indexed by run. The result slice is identical for
// every worker count as long as fn is a pure function of its run index (see
// the package comment for the full contract).
//
// On failure the first error — the error of the lowest-indexed failing run
// that was observed — is returned and the remaining runs are cancelled;
// already-running repetitions finish or fail on their own, but no new run is
// dispatched. With workers == 1 the runs execute serially on the calling
// goroutine and the first error aborts the loop immediately, exactly like
// the pre-engine serial campaign loops.
func Run[T any](workers, runs int, fn func(run int) (T, error)) ([]T, error) {
	return RunWith(Options{Workers: workers}, runs, fn)
}

// RunWith is Run with the full option set (injectable clamp observer,
// completion callback). The determinism contract is unchanged: the options
// affect only what is observed about the campaign, never its results.
func RunWith[T any](o Options, runs int, fn func(run int) (T, error)) ([]T, error) {
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	return RunPooledWith(o, runs,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, run int) (T, error) { return fn(run) })
}

// RunPooled is Run with per-worker reusable state: newState builds one state
// value per worker (serially, before any run starts), and every repetition
// dispatched to that worker receives the same state value. The intended use
// is a reusable simulation cluster that each repetition resets instead of
// rebuilding, which removes the per-run wiring allocations from the campaign
// hot path.
//
// The determinism contract of Run carries over unchanged, with one addition:
// fn must return the state to a scenario-independent condition before (or
// after) each repetition — typically by calling the cluster's Reset as its
// first action — so that a run's result never depends on which runs the
// worker executed before it.
func RunPooled[S, T any](workers, runs int, newState func() (S, error), fn func(state S, run int) (T, error)) ([]T, error) {
	return RunPooledWith(Options{Workers: workers}, runs, newState, fn)
}

// RunPooledWith is RunPooled with the full option set; it is the engine the
// other entry points delegate to.
func RunPooledWith[S, T any](o Options, runs int, newState func() (S, error), fn func(state S, run int) (T, error)) ([]T, error) {
	if runs < 0 {
		return nil, fmt.Errorf("campaign: negative run count %d", runs)
	}
	if newState == nil {
		return nil, fmt.Errorf("campaign: nil state constructor")
	}
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil run function")
	}
	workers := resolveWorkers(o.Workers, o.OnClamp)
	if workers > runs {
		workers = runs
	}
	results := make([]T, runs)
	if workers <= 1 {
		state, err := newState()
		if err != nil {
			return nil, fmt.Errorf("campaign: worker 0 state: %w", err)
		}
		for run := 0; run < runs; run++ {
			v, err := fn(state, run)
			if err != nil {
				return nil, fmt.Errorf("campaign: run %d: %w", run, err)
			}
			results[run] = v
			if o.OnRunDone != nil {
				o.OnRunDone(run)
			}
		}
		return results, nil
	}

	states := make([]S, workers)
	for w := 0; w < workers; w++ {
		state, err := newState()
		if err != nil {
			return nil, fmt.Errorf("campaign: worker %d state: %w", w, err)
		}
		states[w] = state
	}
	var (
		jobs = make(chan int)
		quit = make(chan struct{})
		wg   sync.WaitGroup

		mu       sync.Mutex
		once     sync.Once
		firstRun = -1
		firstErr error
	)
	fail := func(run int, err error) {
		mu.Lock()
		if firstRun < 0 || run < firstRun {
			firstRun, firstErr = run, err
		}
		mu.Unlock()
		once.Do(func() { close(quit) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(state S) {
			defer wg.Done()
			for {
				select {
				case run, ok := <-jobs:
					if !ok {
						return
					}
					v, err := fn(state, run)
					if err != nil {
						fail(run, err)
						return
					}
					// Index-addressed write: no two runs share an index, so
					// the slice needs no lock and the final content is
					// independent of which worker executed which run.
					results[run] = v
					if o.OnRunDone != nil {
						o.OnRunDone(run)
					}
				case <-quit:
					return
				}
			}
		}(states[w])
	}
dispatchPooled:
	for run := 0; run < runs; run++ {
		select {
		case jobs <- run:
		case <-quit:
			break dispatchPooled
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("campaign: run %d: %w", firstRun, firstErr)
	}
	return results, nil
}
