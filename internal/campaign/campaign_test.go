package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ttdiag/internal/rng"
)

// TestResultsIndexedByRun checks the core contract: results land at their
// run index for any worker count, identically to the serial execution.
func TestResultsIndexedByRun(t *testing.T) {
	const runs = 257
	fn := func(run int) (int, error) { return run * run, nil }
	want, err := Run(1, runs, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64, runs + 5} {
		got, err := Run(workers, runs, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != runs {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), runs)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSeededStreamsAreScheduleIndependent checks the full determinism story
// with real named streams: every run derives its own stream from the master
// seed and run index, so the drawn values are identical at any worker count.
func TestSeededStreamsAreScheduleIndependent(t *testing.T) {
	const runs = 64
	draw := func(run int) (uint64, error) {
		st := rng.NewSource(2007).Stream(fmt.Sprintf("campaign-test/run-%d", run))
		return st.Uint64(), nil
	}
	serial, err := Run(1, runs, draw)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(8, runs, draw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("run %d drew %d serially but %d with 8 workers", i, serial[i], parallel[i])
		}
	}
}

// TestFirstErrorPropagatesAndCancels checks the failure path: the injected
// error surfaces (wrapped, but errors.Is-discoverable, naming its run), and
// cancellation keeps the pool from dispatching the remaining runs.
func TestFirstErrorPropagatesAndCancels(t *testing.T) {
	boom := errors.New("injected failure")
	const runs = 1000
	var executed atomic.Int64
	_, err := Run(4, runs, func(run int) (struct{}, error) {
		executed.Add(1)
		if run == 0 {
			return struct{}{}, boom
		}
		// Keep the surviving workers busy long enough that an unbounded
		// dispatcher would provably have handed out far more runs.
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	if got := err.Error(); got != "campaign: run 0: injected failure" {
		t.Fatalf("error text = %q", got)
	}
	if n := executed.Load(); n >= runs {
		t.Fatalf("all %d runs executed despite an error in run 0", n)
	}
}

// TestSerialErrorAbortsImmediately pins the workers=1 fast path.
func TestSerialErrorAbortsImmediately(t *testing.T) {
	boom := errors.New("stop here")
	executed := 0
	_, err := Run(1, 10, func(run int) (int, error) {
		executed++
		if run == 3 {
			return 0, boom
		}
		return run, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if executed != 4 {
		t.Fatalf("executed %d runs, want 4 (0..3)", executed)
	}
}

// TestLowestFailingIndexWins makes the error choice deterministic enough to
// rely on: when several runs fail, the reported error belongs to the lowest
// observed run index.
func TestLowestFailingIndexWins(t *testing.T) {
	_, err := Run(8, 8, func(run int) (int, error) {
		return 0, fmt.Errorf("run %d failed", run)
	})
	if err == nil {
		t.Fatal("want an error")
	}
	// All eight runs fail; with eight workers every index is dispatched, so
	// the minimum over observed failures is run 0 regardless of scheduling.
	if got := err.Error(); got != "campaign: run 0: run 0 failed" {
		t.Fatalf("error text = %q", got)
	}
}

// TestEdgeCases covers zero runs, negative runs and a nil function.
func TestEdgeCases(t *testing.T) {
	got, err := Run(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("zero runs: results %v, err %v", got, err)
	}
	if _, err := Run(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative runs: want an error")
	}
	if _, err := Run[int](4, 4, nil); err == nil {
		t.Fatal("nil fn: want an error")
	}
}

// TestWorkersResolution pins the GOMAXPROCS defaulting and clamping.
func TestWorkersResolution(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if max >= 3 {
		if got := Workers(3); got != 3 {
			t.Fatalf("Workers(3) = %d", got)
		}
	}
	if got := Workers(max + 2); got != max {
		t.Fatalf("Workers(%d) = %d, want clamp to GOMAXPROCS=%d", max+2, got, max)
	}
	if got := Workers(0); got != max {
		t.Fatalf("Workers(0) = %d, want %d", got, max)
	}
	if got := Workers(-2); got != max {
		t.Fatalf("Workers(-2) = %d, want %d", got, max)
	}
}

// TestOnClampObserver checks the injectable clamp callback: it replaces the
// once-per-process log, fires with the requested and resolved counts, and
// still clamps.
func TestOnClampObserver(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	var gotRequested, gotMax int
	calls := 0
	o := Options{
		Workers: max + 7,
		OnClamp: func(requested, m int) { calls++; gotRequested, gotMax = requested, m },
	}
	results, err := RunWith(o, 2*max+4, func(run int) (int, error) { return run, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*max+4 {
		t.Fatalf("results len = %d", len(results))
	}
	if calls != 1 || gotRequested != max+7 || gotMax != max {
		t.Fatalf("OnClamp calls=%d requested=%d max=%d, want 1, %d, %d", calls, gotRequested, gotMax, max+7, max)
	}
	// No clamp, no callback.
	calls = 0
	if _, err := RunWith(Options{Workers: 1, OnClamp: func(int, int) { calls++ }}, 4,
		func(run int) (int, error) { return run, nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("OnClamp fired %d times without a clamp", calls)
	}
}

// TestOnRunDone checks the completion callback: every successful run is
// reported exactly once, at any worker count, and failed runs are not.
func TestOnRunDone(t *testing.T) {
	const runs = 24
	for _, workers := range []int{1, 4} {
		var done int64
		var seen [runs]int64
		o := Options{Workers: workers, OnRunDone: func(run int) {
			atomic.AddInt64(&done, 1)
			atomic.AddInt64(&seen[run], 1)
		}}
		if _, err := RunPooledWith(o, runs,
			func() (int, error) { return 0, nil },
			func(_ int, run int) (int, error) { return run, nil }); err != nil {
			t.Fatal(err)
		}
		if done != runs {
			t.Fatalf("workers=%d: OnRunDone fired %d times, want %d", workers, done, runs)
		}
		for run := range seen {
			if seen[run] != 1 {
				t.Fatalf("workers=%d: run %d reported %d times", workers, run, seen[run])
			}
		}
	}
	// A failing run must not be reported as done.
	var done int64
	_, err := RunWith(Options{Workers: 1, OnRunDone: func(int) { atomic.AddInt64(&done, 1) }}, 4,
		func(run int) (int, error) {
			if run == 2 {
				return 0, errors.New("boom")
			}
			return run, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	if done != 2 {
		t.Fatalf("OnRunDone fired %d times before the serial abort, want 2", done)
	}
}
