package campaign

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// TestRunBatchedWithDeterminism pins the gang scheduler's core contract:
// the result slice is identical at every worker count and every gang
// width, including gang widths that leave a ragged final gang.
func TestRunBatchedWithDeterminism(t *testing.T) {
	fn := func(_ struct{}, base, width int, out []int) error {
		if len(out) != width {
			return fmt.Errorf("out has %d entries, want %d", len(out), width)
		}
		for i := 0; i < width; i++ {
			run := base + i
			out[i] = run*run + 7
		}
		return nil
	}
	newState := func() (struct{}, error) { return struct{}{}, nil }
	for _, runs := range []int{0, 1, 5, 16, 20, 33} {
		var want []int
		for _, gang := range []int{1, 3, 16} {
			for _, workers := range []int{1, 4} {
				got, err := RunBatchedWith(Options{Workers: workers, OnClamp: func(int, int) {}},
					runs, gang, newState, fn)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != runs {
					t.Fatalf("runs=%d gang=%d workers=%d: %d results", runs, gang, workers, len(got))
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("runs=%d gang=%d workers=%d: results diverge", runs, gang, workers)
				}
			}
		}
	}
}

// TestRunBatchedWithGangShape checks the gang decomposition: contiguous
// disjoint windows in run order, full gangs except a single ragged tail.
func TestRunBatchedWithGangShape(t *testing.T) {
	var mu sync.Mutex
	type gangRec struct{ base, width int }
	var gangsSeen []gangRec
	_, err := RunBatchedWith(Options{Workers: 1}, 21, 8,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, base, width int, out []int) error {
			mu.Lock()
			gangsSeen = append(gangsSeen, gangRec{base, width})
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(gangsSeen, func(i, j int) bool { return gangsSeen[i].base < gangsSeen[j].base })
	want := []gangRec{{0, 8}, {8, 8}, {16, 5}}
	if !reflect.DeepEqual(gangsSeen, want) {
		t.Fatalf("gangs %v, want %v", gangsSeen, want)
	}
}

// TestRunBatchedWithOnRunDone checks the completion callback fires once per
// run with the run's own index.
func TestRunBatchedWithOnRunDone(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	_, err := RunBatchedWith(Options{Workers: 2, OnClamp: func(int, int) {}, OnRunDone: func(run int) {
		mu.Lock()
		seen[run]++
		mu.Unlock()
	}}, 11, 4,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, base, width int, out []int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 11 {
		t.Fatalf("OnRunDone saw %d distinct runs, want 11", len(seen))
	}
	for run, count := range seen {
		if run < 0 || run >= 11 || count != 1 {
			t.Fatalf("OnRunDone(%d) fired %d times", run, count)
		}
	}
}

// TestRunBatchedWithErrors pins the validation and failure surface.
func TestRunBatchedWithErrors(t *testing.T) {
	newState := func() (struct{}, error) { return struct{}{}, nil }
	if _, err := RunBatchedWith[struct{}, int](Options{}, 4, 0, newState, nil); err == nil {
		t.Fatal("gang width 0 accepted")
	}
	if _, err := RunBatchedWith[struct{}, int](Options{}, -1, 4, newState,
		func(_ struct{}, _, _ int, _ []int) error { return nil }); err == nil {
		t.Fatal("negative run count accepted")
	}
	_, err := RunBatchedWith(Options{Workers: 1}, 20, 8, newState,
		func(_ struct{}, base, width int, out []int) error {
			if base <= 9 && 9 < base+width {
				return fmt.Errorf("boom at 9")
			}
			return nil
		})
	if err == nil {
		t.Fatal("gang error not propagated")
	}
	if got := err.Error(); got != "campaign: run 1: gang of runs 8-15: boom at 9" {
		t.Fatalf("error = %q", got)
	}
}
