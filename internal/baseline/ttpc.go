// Package baseline implements the comparators the paper positions itself
// against: a TTP/C-style built-in membership protocol with the single-fault
// assumption and clique-avoidance counters (Kopetz et al.; Bauer &
// Paulitsch), the α-count fault-rate discriminator (Bondavalli et al.), and
// an immediate-isolation policy. Experiments use these to reproduce the
// paper's comparative claims: the add-on protocol tolerates multiple
// coincident and malicious faults where TTP/C-style membership does not, and
// the criticality-weighted penalty/reward algorithm preserves availability
// where immediate isolation shuts the whole system down.
package baseline

import (
	"fmt"

	"ttdiag/internal/core"
	"ttdiag/internal/tdma"
)

// TTPCNode is a simplified TTP/C-style membership controller. Every frame
// implicitly acknowledges the sender's membership view (the C-state): a
// receiver accepts a frame iff it is locally valid and carries a membership
// vector identical to the receiver's own; otherwise the sender is dropped
// from the receiver's view. Clique avoidance: before sending, a node checks
// whether it agreed with a majority of the frames since its last slot and
// fails silent otherwise. A sender whose own frame does not make it onto the
// bus (collision detector) also fails silent.
//
// The protocol diagnoses a single benign sender fault within two slots, but
// relies on the single-fault assumption: under coincident or malicious
// faults its views diverge or healthy nodes kill themselves — exactly the
// comparison of Sec. 2.
type TTPCNode struct {
	n, id  int
	member []bool
	agreed int
	failed int
	alive  bool
}

// NewTTPCNode builds the membership controller for node id of n.
func NewTTPCNode(n, id int) (*TTPCNode, error) {
	if n < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 nodes, got %d", n)
	}
	if id < 1 || id > n {
		return nil, fmt.Errorf("baseline: node id %d out of range 1..%d", id, n)
	}
	m := make([]bool, n+1)
	for j := 1; j <= n; j++ {
		m[j] = true
	}
	return &TTPCNode{n: n, id: id, member: m, alive: true}, nil
}

// Alive reports whether the node is still active (has not failed silent).
func (t *TTPCNode) Alive() bool { return t.alive }

// Members returns a copy of the node's current membership view (1-based).
func (t *TTPCNode) Members() []bool { return append([]bool(nil), t.member...) }

// MemberCount returns the size of the current view.
func (t *TTPCNode) MemberCount() int {
	c := 0
	for j := 1; j <= t.n; j++ {
		if t.member[j] {
			c++
		}
	}
	return c
}

// vector encodes the node's membership view as a syndrome (member = 1).
func (t *TTPCNode) vector() core.Syndrome {
	s := core.NewSyndrome(t.n, core.Faulty)
	for j := 1; j <= t.n; j++ {
		if t.member[j] {
			s[j] = core.Healthy
		}
	}
	return s
}

// Run implements the sim engine's Runner: it is scheduled right before the
// node's own slot. It performs the clique-avoidance check and stages the
// node's membership vector (the C-state carried by every frame).
func (t *TTPCNode) Run(_ int, _ *tdma.Controller) ([]byte, error) {
	if !t.alive {
		// A fail-silent node stages an empty frame, which every receiver's
		// local error detection rejects.
		return []byte{}, nil
	}
	// Clique avoidance: the node must have agreed with a majority of the
	// frames it judged since its last sending slot.
	if t.agreed+t.failed > 0 && t.failed >= t.agreed {
		t.kill()
		return []byte{}, nil
	}
	t.agreed, t.failed = 0, 0
	return t.vector().Encode(), nil
}

// OnSlotComplete implements the sim engine's SlotObserver: judge the frame
// of the completed slot.
func (t *TTPCNode) OnSlotComplete(round, slot int, ctrl *tdma.Controller) error {
	if !t.alive {
		return nil
	}
	if slot == t.id {
		// Sender-side check: a collision means the node's frame did not
		// reach the bus; under the single-fault assumption the sender
		// concludes it is the faulty one and fails silent (it would restart
		// and reintegrate in a real system).
		if collided, ok := ctrl.Collision(round); ok && collided {
			t.kill()
		}
		return nil
	}
	if !t.member[slot] {
		return nil
	}
	payload, valid := ctrl.ReadValue(tdma.NodeID(slot))
	if !valid {
		t.member[slot] = false
		t.failed++
		return nil
	}
	carried, err := core.DecodeSyndrome(payload, t.n)
	if err != nil {
		t.member[slot] = false
		t.failed++
		return nil
	}
	// Implicit acknowledgment: the frame validates only against an
	// identical membership view.
	if !carried.Equal(t.vector()) {
		t.member[slot] = false
		t.failed++
		return nil
	}
	t.agreed++
	return nil
}

func (t *TTPCNode) kill() {
	t.alive = false
	t.member[t.id] = false
}
